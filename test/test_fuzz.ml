(* Tests for the differential churn-fuzzing subsystem itself: the harness
   passes on healthy code, catches an injected solver bug, the shrinker
   minimizes, and repro artifacts round-trip and replay deterministically. *)

module Churn = Dcsim.Churn
module Harness = Fuzz.Harness
module Shrink = Fuzz.Shrink
module Artifact = Fuzz.Artifact

let check = Alcotest.check
let checki msg = check Alcotest.int msg
let checkb msg = check Alcotest.bool msg

(* {1 Churn traces} *)

let test_churn_roundtrip () =
  for seed = 0 to 9 do
    let trace = Churn.generate ~seed ~machines:6 ~length:80 in
    checki "length" 80 (List.length trace);
    let trace' = Churn.of_lines (Churn.to_lines trace) in
    checkb "serialization round-trips" true (trace = trace')
  done

let test_churn_deterministic () =
  let a = Churn.generate ~seed:42 ~machines:6 ~length:50 in
  let b = Churn.generate ~seed:42 ~machines:6 ~length:50 in
  let c = Churn.generate ~seed:43 ~machines:6 ~length:50 in
  checkb "same seed, same trace" true (a = b);
  checkb "different seed, different trace" false (a = c)

(* {1 Harness} *)

let test_harness_clean_seeds () =
  (* Healthy code under every race mode: no check may fire. *)
  for seed = 0 to 4 do
    let trace = Churn.generate ~seed ~machines:6 ~length:40 in
    match Harness.run Harness.default_config trace with
    | Ok () -> ()
    | Error f ->
        Alcotest.failf "seed %d: %a" seed Harness.pp_failure f
  done

let quincy_cs_only =
  {
    Harness.default_config with
    Harness.modes = [ Mcmf.Race.Cost_scaling_scratch_only ];
  }

let find_injected_failure () =
  (* The ε-ladder truncation makes cost scaling stop ε-optimal while
     claiming Optimal; the harness must catch it on some small seed. *)
  let cfg = { quincy_cs_only with Harness.inject_eps = 4096 } in
  let rec go seed =
    if seed > 9 then Alcotest.fail "injected eps-floor bug never caught"
    else
      let trace = Churn.generate ~seed ~machines:6 ~length:40 in
      match Harness.run cfg trace with
      | Error f -> (cfg, trace, f)
      | Ok () -> go (seed + 1)
  in
  go 0

let test_injected_bug_caught () =
  let _, _, f = find_injected_failure () in
  checkb "optimality-side check fired" true
    (List.mem f.Harness.f_check [ "optimality"; "oracle-cost" ])

let test_injected_bug_shrinks_and_replays () =
  let cfg, trace, f = find_injected_failure () in
  let fails events =
    match Harness.run cfg events with
    | Error f' -> f'.Harness.f_check = f.Harness.f_check
    | Ok () -> false
  in
  let shrunk = Shrink.minimize ~fails ~simplify:Shrink.simplify_event trace in
  checkb "shrunk to at most 10 events" true (List.length shrunk <= 10);
  checkb "shrunk trace still fails" true (fails shrunk);
  (* Deterministic replay: the single-solver mode must reproduce the same
     failure, twice, from the serialized artifact. *)
  let f' =
    match Harness.run cfg shrunk with
    | Error f' -> f'
    | Ok () -> Alcotest.fail "shrunk trace did not fail on re-run"
  in
  let artifact = Artifact.of_failure cfg f' shrunk in
  let artifact' = Artifact.of_string (Artifact.to_string artifact) in
  checkb "artifact round-trips" true
    (artifact'.Artifact.trace = shrunk
    && artifact'.Artifact.check = f'.Harness.f_check
    && artifact'.Artifact.inject_eps = 4096);
  let replay () = Harness.run (Artifact.config artifact') artifact'.Artifact.trace in
  match (replay (), replay ()) with
  | Error a, Error b ->
      check Alcotest.string "same check" a.Harness.f_check b.Harness.f_check;
      checki "same round" a.Harness.f_round b.Harness.f_round;
      checki "same event" a.Harness.f_event b.Harness.f_event
  | _ -> Alcotest.fail "replay did not reproduce the failure"

let test_forced_incremental_clean () =
  (* With the repair budget forced unbounded, every certified-previous-round
     schedule takes the O(changes) repair path — the oracle and validators
     must stay silent on healthy code. *)
  let cfg = { Harness.default_config with Harness.force_incremental = true } in
  for seed = 0 to 4 do
    let trace = Churn.generate ~seed ~machines:6 ~length:40 in
    match Harness.run cfg trace with
    | Ok () -> ()
    | Error f -> Alcotest.failf "forced-incremental seed %d: %a" seed Harness.pp_failure f
  done

let test_forced_incremental_canary_still_fails () =
  (* Forcing the repair path must not blind the harness: the ε-floor
     injection corrupts the very first adopted solve (there is no previous
     certified round to repair from), so the canary keeps failing. *)
  let cfg =
    {
      quincy_cs_only with
      Harness.inject_eps = 4096;
      Harness.force_incremental = true;
    }
  in
  let rec go seed =
    if seed > 9 then Alcotest.fail "injected bug not caught under forced incremental"
    else
      let trace = Churn.generate ~seed ~machines:6 ~length:40 in
      match Harness.run cfg trace with
      | Error f ->
          checkb "optimality-side check fired" true
            (List.mem f.Harness.f_check [ "optimality"; "oracle-cost" ])
      | Ok () -> go (seed + 1)
  in
  go 0

let test_injection_scoped () =
  (* The injection knob must be restored after a run, even a failing one. *)
  let cfg = { quincy_cs_only with Harness.inject_eps = 4096 } in
  let trace = Churn.generate ~seed:0 ~machines:6 ~length:40 in
  ignore (Harness.run cfg trace);
  checki "debug_eps_floor restored" 1 !Mcmf.Cost_scaling.debug_eps_floor

(* {1 Shrinker} *)

let test_shrink_minimizes () =
  (* Failure = contains both 3 and 7: the minimum is exactly [3; 7]. *)
  let fails l = List.mem 3 l && List.mem 7 l in
  let input = List.init 64 (fun i -> i) in
  let out = Shrink.minimize ~fails input in
  checkb "still fails" true (fails out);
  check Alcotest.(list int) "minimal" [ 3; 7 ] out

let test_shrink_one_minimal () =
  (* On an interval predicate the result must be 1-minimal: removing any
     single element breaks it. *)
  let fails l = List.length l >= 5 && List.for_all (fun x -> x mod 2 = 0) l in
  let input = List.init 40 (fun i -> i * 2) in
  let out = Shrink.minimize ~fails input in
  checkb "still fails" true (fails out);
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) out in
      checkb "1-minimal" false (fails without))
    out

let test_shrink_simplify () =
  let fails l = List.exists (fun x -> x >= 10) l in
  let simplify x = if x > 10 then [ 10; x / 2 ] else [] in
  let out = Shrink.minimize ~fails ~simplify [ 1; 2; 500; 4 ] in
  check Alcotest.(list int) "shrunk and simplified" [ 10 ] out

let test_shrink_event_simplifier () =
  checkb "round polls drop" true
    (Shrink.simplify_event (Churn.Round { polls = 9 })
    = [ Churn.Round { polls = 0 } ]);
  checkb "submit shrinks to one task" true
    (match
       Shrink.simplify_event
         (Churn.Submit { jid = 1; tasks = 5; duration = 3.0; locality = 2 })
     with
    | [ Churn.Submit { tasks = 1; _ } ] -> true
    | _ -> false);
  checkb "singleton submit is already minimal" true
    (Shrink.simplify_event
       (Churn.Submit { jid = 1; tasks = 1; duration = 3.0; locality = 2 })
    = [])

(* {1 Artifacts} *)

let test_artifact_rejects_garbage () =
  let bad s = try ignore (Artifact.of_string s); false with Failure _ -> true in
  checkb "empty" true (bad "");
  checkb "bad header" true (bad "not-an-artifact\n");
  checkb "truncated trace" true
    (bad "firmament-fuzz-artifact v1\nmode quincy-cs\nmachines 6\nslots 2\ninject-eps 1\ncheck x\ndetail y\ntrace 3\nbegin\n")

let () =
  Alcotest.run "fuzz"
    [
      ( "churn",
        [
          Alcotest.test_case "trace serialization round-trips" `Quick
            test_churn_roundtrip;
          Alcotest.test_case "generation is seed-deterministic" `Quick
            test_churn_deterministic;
        ] );
      ( "harness",
        [
          Alcotest.test_case "clean seeds pass all modes" `Slow
            test_harness_clean_seeds;
          Alcotest.test_case "injected eps-floor bug is caught" `Quick
            test_injected_bug_caught;
          Alcotest.test_case "injected bug shrinks to <=10 events and replays"
            `Slow test_injected_bug_shrinks_and_replays;
          Alcotest.test_case "injection is scoped to the run" `Quick
            test_injection_scoped;
          Alcotest.test_case "forced incremental path stays clean" `Slow
            test_forced_incremental_clean;
          Alcotest.test_case "canary still caught under forced incremental" `Quick
            test_forced_incremental_canary_still_fails;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "ddmin finds the 2-event core" `Quick
            test_shrink_minimizes;
          Alcotest.test_case "result is 1-minimal" `Quick test_shrink_one_minimal;
          Alcotest.test_case "per-event simplification" `Quick
            test_shrink_simplify;
          Alcotest.test_case "churn event simplifier" `Quick
            test_shrink_event_simplifier;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "rejects garbage" `Quick
            test_artifact_rejects_garbage;
        ] );
    ]
