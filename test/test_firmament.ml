(* Integration tests for the Firmament core: flow-network management,
   placement extraction (paper Listing 1), the three policies, and the
   scheduler's placement/migration/preemption loop. *)

module G = Flowgraph.Graph
module FN = Firmament.Flow_network
module W = Cluster.Workload

let checki msg = Alcotest.check Alcotest.int msg
let checkb msg = Alcotest.check Alcotest.bool msg

(* {1 Flow_network} *)

let test_fn_task_lifecycle () =
  let net = FN.create () in
  let n1 = FN.add_task net 10 in
  let _n2 = FN.add_task net 11 in
  checki "task count" 2 (FN.task_count net);
  checki "sink demand" (-2) (G.supply (FN.graph net) (FN.sink net));
  checki "task supply" 1 (G.supply (FN.graph net) n1);
  checkb "lookup" true (FN.task_node net 10 = Some n1);
  checkb "reverse lookup" true (FN.task_of_node net n1 = Some 10);
  FN.remove_task net 10 ~drain:false;
  checki "after removal" 1 (FN.task_count net);
  checki "sink demand shrinks" (-1) (G.supply (FN.graph net) (FN.sink net));
  checkb "gone" true (FN.task_node net 10 = None)

let test_fn_duplicate_task_rejected () =
  let net = FN.create () in
  ignore (FN.add_task net 1);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Flow_network.add_task: task 1 already present") (fun () ->
      ignore (FN.add_task net 1))

let test_fn_machine_and_aggregators () =
  let net = FN.create () in
  let m = FN.ensure_machine net 0 ~slots:4 in
  checkb "machine idempotent" true (FN.ensure_machine net 0 ~slots:4 = m);
  let sink_arc = FN.find_arc net m (FN.sink net) in
  checkb "machine has sink arc" true (sink_arc <> None);
  (match sink_arc with
  | Some a -> checki "slots capacity" 4 (G.capacity (FN.graph net) a)
  | None -> ());
  let u = FN.ensure_unscheduled net 7 in
  checkb "unsched idempotent" true (FN.ensure_unscheduled net 7 = u);
  Firmament.Policy.adjust_unscheduled_capacity net 7 ~delta:3;
  (match FN.find_arc net u (FN.sink net) with
  | Some a -> checki "unsched capacity grown" 3 (G.capacity (FN.graph net) a)
  | None -> Alcotest.fail "missing unsched sink arc");
  checkb "structure valid" true (FN.validate_structure net = [])

(* Build the canonical single-task chain task -> X -> machine -> sink with
   flow routed, for drain and extraction tests. *)
let routed_chain () =
  let net = FN.create () in
  let g = FN.graph net in
  let t = FN.add_task net 0 in
  let x = FN.ensure_cluster_agg net in
  let m = FN.ensure_machine net 0 ~slots:2 in
  let a_tx = G.add_arc g ~src:t ~dst:x ~cost:0 ~cap:1 in
  let a_xm = G.add_arc g ~src:x ~dst:m ~cost:0 ~cap:2 in
  let a_ms = Option.get (FN.find_arc net m (FN.sink net)) in
  G.push g a_tx 1;
  G.push g a_xm 1;
  G.push g a_ms 1;
  (net, t, x, m)

let test_fn_drain_removal_keeps_balance () =
  let net, _, x, m = routed_chain () in
  let g = FN.graph net in
  FN.remove_task net 0 ~drain:true;
  checki "x balanced" 0 (G.excess g x);
  checki "machine balanced" 0 (G.excess g m);
  checki "sink balanced" 0 (G.excess g (FN.sink net));
  checkb "feasible" true (Flowgraph.Validate.is_feasible g)

let test_fn_plain_removal_breaks_balance () =
  let net, _, x, _ = routed_chain () in
  let g = FN.graph net in
  FN.remove_task net 0 ~drain:false;
  (* The aggregator keeps its outgoing flow but lost its inflow: demand
     appears mid-graph (the expensive case of §5.3.2). *)
  checki "x in demand" (-1) (G.excess g x);
  checkb "infeasible" false (Flowgraph.Validate.is_feasible g)

let test_reroute_direct_moves_flow () =
  (* task -> X -> R -> m routed; reroute moves the unit onto a direct arc
     and leaves every node balanced. *)
  let net = FN.create () in
  let g = FN.graph net in
  let t = FN.add_task net 0 in
  let x = FN.ensure_cluster_agg net in
  let r = FN.ensure_rack net 0 in
  let m = FN.ensure_machine net 0 ~slots:2 in
  let a_tx = G.add_arc g ~src:t ~dst:x ~cost:5 ~cap:1 in
  let a_xr = G.add_arc g ~src:x ~dst:r ~cost:0 ~cap:4 in
  let a_rm = G.add_arc g ~src:r ~dst:m ~cost:0 ~cap:4 in
  let a_ms = Option.get (FN.find_arc net m (FN.sink net)) in
  List.iter (fun a -> G.push g a 1) [ a_tx; a_xr; a_rm; a_ms ];
  checkb "reroute succeeds" true (FN.reroute_direct net 0 0 ~cost:0);
  checkb "feasible" true (Flowgraph.Validate.is_feasible g);
  let direct = Option.get (FN.find_arc net t m) in
  checki "direct carries unit" 1 (G.flow g direct);
  checki "direct cost" 0 (G.cost g direct);
  checki "old path drained" 0 (G.flow g a_tx);
  checki "aggregator leg drained" 0 (G.flow g a_xr);
  checki "machine->sink untouched" 1 (G.flow g a_ms);
  (* Second call: already direct, a no-op. *)
  checkb "idempotent" true (FN.reroute_direct net 0 0 ~cost:0)

let test_reroute_direct_unrouted_fails () =
  let net = FN.create () in
  ignore (FN.add_task net 0);
  ignore (FN.ensure_machine net 3 ~slots:1);
  checkb "unrouted task cannot reroute" false (FN.reroute_direct net 0 3 ~cost:0)

let test_prune_task_arcs_keeps_selected () =
  let net = FN.create () in
  let g = FN.graph net in
  let t = FN.add_task net 0 in
  let m0 = FN.ensure_machine net 0 ~slots:1 in
  let m1 = FN.ensure_machine net 1 ~slots:1 in
  let u = FN.ensure_unscheduled net 0 in
  ignore (G.add_arc g ~src:t ~dst:m0 ~cost:1 ~cap:1);
  ignore (G.add_arc g ~src:t ~dst:m1 ~cost:2 ~cap:1);
  ignore (G.add_arc g ~src:t ~dst:u ~cost:9 ~cap:1);
  Firmament.Policy.prune_task_arcs net 0 ~keep:[ m0; u ];
  checkb "kept machine arc" true (FN.find_arc net t m0 <> None);
  checkb "kept unscheduled arc" true (FN.find_arc net t u <> None);
  checkb "pruned other machine" true (FN.find_arc net t m1 = None)

(* {1 Placement extraction} *)

let test_extract_simple_chain () =
  let net, _, _, _ = routed_chain () in
  let assignments = Firmament.Placement.extract net in
  Alcotest.(check (list (pair int (option int))))
    "task placed"
    [ (0, Some 0) ]
    (List.map (fun a -> (a.Firmament.Placement.task, a.Firmament.Placement.machine)) assignments)

let test_extract_unscheduled_task () =
  let net = FN.create () in
  let g = FN.graph net in
  let t = FN.add_task net 3 in
  let u = FN.ensure_unscheduled net 0 in
  Firmament.Policy.adjust_unscheduled_capacity net 0 ~delta:1;
  let a_tu = G.add_arc g ~src:t ~dst:u ~cost:5 ~cap:1 in
  G.push g a_tu 1;
  G.push g (Option.get (FN.find_arc net u (FN.sink net))) 1;
  let assignments = Firmament.Placement.extract net in
  Alcotest.(check (list (pair int (option int))))
    "unplaced"
    [ (3, None) ]
    (List.map (fun a -> (a.Firmament.Placement.task, a.Firmament.Placement.machine)) assignments)

let test_extract_multi_hop_aggregators () =
  (* Two tasks via rack aggregators on distinct machines. *)
  let net = FN.create () in
  let g = FN.graph net in
  let t0 = FN.add_task net 0 and t1 = FN.add_task net 1 in
  let r = FN.ensure_rack net 0 in
  let m0 = FN.ensure_machine net 0 ~slots:1 and m1 = FN.ensure_machine net 1 ~slots:1 in
  let arc s d c = G.add_arc g ~src:s ~dst:d ~cost:0 ~cap:c in
  let a0 = arc t0 r 1 and a1 = arc t1 r 1 in
  let rm0 = arc r m0 1 and rm1 = arc r m1 1 in
  G.push g a0 1;
  G.push g a1 1;
  G.push g rm0 1;
  G.push g rm1 1;
  G.push g (Option.get (FN.find_arc net m0 (FN.sink net))) 1;
  G.push g (Option.get (FN.find_arc net m1 (FN.sink net))) 1;
  let m = Firmament.Placement.extract_map net in
  checki "both placed" 2 (Hashtbl.length m);
  let m0' = Hashtbl.find m 0 and m1' = Hashtbl.find m 1 in
  checkb "distinct machines" true (m0' <> m1');
  checkb "valid ids" true (List.mem m0' [ 0; 1 ] && List.mem m1' [ 0; 1 ])

let test_extract_rejects_infeasible () =
  let net = FN.create () in
  ignore (FN.add_task net 0);
  (* Supply 1 with no flow: excess nonzero somewhere (task and sink). *)
  match Firmament.Placement.extract net with
  | _ -> Alcotest.fail "expected failure on infeasible flow"
  | exception Failure msg ->
      checkb "mentions infeasibility" true
        (String.length msg > 0
        && Option.is_some
             (String.index_opt msg 'i')
        &&
        let re = "infeasible" in
        let rec contains i =
          if i + String.length re > String.length msg then false
          else if String.sub msg i (String.length re) = re then true
          else contains (i + 1)
        in
        contains 0)

let test_extract_partial_reads_incomplete_flow () =
  (* Route only one of two tasks; the lenient extractor reports the other
     as unplaced instead of failing. *)
  let net = FN.create () in
  let g = FN.graph net in
  let t0 = FN.add_task net 0 in
  let _t1 = FN.add_task net 1 in
  let m = FN.ensure_machine net 0 ~slots:2 in
  let a = G.add_arc g ~src:t0 ~dst:m ~cost:0 ~cap:1 in
  G.push g a 1;
  G.push g (Option.get (FN.find_arc net m (FN.sink net))) 1;
  (match Firmament.Placement.extract net with
  | _ -> Alcotest.fail "strict extraction must reject infeasible flow"
  | exception Failure _ -> ());
  let partial = Firmament.Placement.extract_partial net in
  Alcotest.(check (list (pair int (option int))))
    "partial placements"
    [ (0, Some 0); (1, None) ]
    (List.map (fun p -> (p.Firmament.Placement.task, p.Firmament.Placement.machine)) partial)

let partial_pairs partial =
  List.map (fun p -> (p.Firmament.Placement.task, p.Firmament.Placement.machine)) partial

let test_extract_partial_backtracks_and_refunds () =
  (* Two tasks through an aggregator; a dead-end arc (flow parked at a
     rack that forwards nothing) is probed first thanks to head insertion.
     Both walks must probe it, refund it, and still place both tasks — a
     leaked probe budget would strand the second task. *)
  let net = FN.create () in
  let g = FN.graph net in
  let t0 = FN.add_task net 0 in
  let t1 = FN.add_task net 1 in
  let agg = FN.ensure_cluster_agg net in
  let m = FN.ensure_machine net 0 ~slots:2 in
  let dead = FN.ensure_rack net 0 in
  let a_t0 = G.add_arc g ~src:t0 ~dst:agg ~cost:0 ~cap:1 in
  let a_t1 = G.add_arc g ~src:t1 ~dst:agg ~cost:0 ~cap:1 in
  let a_am = G.add_arc g ~src:agg ~dst:m ~cost:0 ~cap:2 in
  (* Added last: iterated first by the walk. *)
  let a_ad = G.add_arc g ~src:agg ~dst:dead ~cost:0 ~cap:1 in
  List.iter (fun a -> G.push g a 1) [ a_t0; a_t1; a_ad ];
  G.push g a_am 2;
  G.push g (Option.get (FN.find_arc net m (FN.sink net))) 2;
  Alcotest.(check (list (pair int (option int))))
    "both tasks placed despite the dead-end probe"
    [ (0, Some 0); (1, Some 0) ]
    (partial_pairs (Firmament.Placement.extract_partial net))

let test_extract_partial_machine_sink_budget () =
  (* The walk reaches a machine whose sink arc carries no flow (excess
     parked there mid-solve): it must not claim that machine, and must
     back out and find the one whose flow actually drains. *)
  let net = FN.create () in
  let g = FN.graph net in
  let t0 = FN.add_task net 0 in
  let agg = FN.ensure_cluster_agg net in
  let m1 = FN.ensure_machine net 1 ~slots:1 in
  let m0 = FN.ensure_machine net 0 ~slots:1 in
  let a_t = G.add_arc g ~src:t0 ~dst:agg ~cost:0 ~cap:1 in
  let a_m1 = G.add_arc g ~src:agg ~dst:m1 ~cost:0 ~cap:1 in
  (* Added last, probed first: this unit parks at m0, never reaching the
     sink. *)
  let a_m0 = G.add_arc g ~src:agg ~dst:m0 ~cost:0 ~cap:1 in
  List.iter (fun a -> G.push g a 1) [ a_t; a_m1; a_m0 ];
  G.push g (Option.get (FN.find_arc net m1 (FN.sink net))) 1;
  Alcotest.(check (list (pair int (option int))))
    "placed on the machine with sink flow"
    [ (0, Some 1) ]
    (partial_pairs (Firmament.Placement.extract_partial net))

let test_extract_partial_never_oversubscribes () =
  (* Two units of task flow converge on a machine that forwards only one
     to the sink: at most one task may be attributed to it. *)
  let net = FN.create () in
  let g = FN.graph net in
  let t0 = FN.add_task net 0 in
  let t1 = FN.add_task net 1 in
  let m = FN.ensure_machine net 0 ~slots:2 in
  let a0 = G.add_arc g ~src:t0 ~dst:m ~cost:0 ~cap:1 in
  let a1 = G.add_arc g ~src:t1 ~dst:m ~cost:0 ~cap:1 in
  G.push g a0 1;
  G.push g a1 1;
  G.push g (Option.get (FN.find_arc net m (FN.sink net))) 1;
  let placed =
    List.filter
      (fun p -> p.Firmament.Placement.machine <> None)
      (Firmament.Placement.extract_partial net)
  in
  checki "exactly one placement" 1 (List.length placed)

let test_validate_structure_detects_drift () =
  let net = FN.create () in
  let m = FN.ensure_machine net 0 ~slots:2 in
  checkb "valid" true (FN.validate_structure net = []);
  (* A machine with a non-sink outgoing arc violates the invariant the
     placement extractor relies on. *)
  let other = FN.ensure_machine net 1 ~slots:2 in
  ignore (G.add_arc (FN.graph net) ~src:m ~dst:other ~cost:0 ~cap:1);
  checkb "violation reported" true (FN.validate_structure net <> [])

(* {1 Scheduler + policies, end to end} *)

let mk_cluster ~machines ~slots =
  let topo =
    Cluster.Topology.make ~machines ~machines_per_rack:2 ~slots_per_machine:slots ()
  in
  Cluster.State.create topo

let job_of_tasks ~jid ?(klass = Cluster.Types.Batch) ~submit tasks =
  W.make_job ~jid ~klass ~submit_time:submit ~tasks:(Array.of_list tasks)

let simple_job ~jid ~n ~submit ~duration =
  job_of_tasks ~jid ~submit
    (List.init n (fun i ->
         W.make_task ~tid:((jid * 1000) + i) ~job:jid ~submit_time:submit ~duration ()))

let solve_sched sched ~now = Firmament.Scheduler.schedule sched ~now

let test_load_spread_end_to_end () =
  let cluster = mk_cluster ~machines:4 ~slots:2 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_load_spread.make ~drain net st)
  in
  Firmament.Scheduler.submit_job sched (simple_job ~jid:0 ~n:4 ~submit:0. ~duration:10.);
  let round = solve_sched sched ~now:0. in
  checki "all started" 4 (List.length round.Firmament.Scheduler.started);
  checki "none waiting" 0 (Cluster.State.waiting_count cluster);
  (* Load-spreading: 4 tasks over 4 machines, one each. *)
  for m = 0 to 3 do
    checki "one per machine" 1 (Cluster.State.running_count cluster m)
  done;
  (* Finish two, submit three more: spreading continues. *)
  let t0, _ = List.nth round.Firmament.Scheduler.started 0 in
  let t1, _ = List.nth round.Firmament.Scheduler.started 1 in
  Firmament.Scheduler.finish_task sched t0 ~now:10.;
  Firmament.Scheduler.finish_task sched t1 ~now:10.;
  Firmament.Scheduler.submit_job sched (simple_job ~jid:1 ~n:3 ~submit:10. ~duration:10.);
  let round2 = solve_sched sched ~now:10. in
  checki "three more started" 3 (List.length round2.Firmament.Scheduler.started);
  let counts = List.init 4 (fun m -> Cluster.State.running_count cluster m) in
  checki "five running" 5 (List.fold_left ( + ) 0 counts);
  checkb "max spread" true (List.for_all (fun c -> c <= 2) counts)

let test_load_spread_oversubscription_waits () =
  let cluster = mk_cluster ~machines:2 ~slots:1 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_load_spread.make ~drain net st)
  in
  Firmament.Scheduler.submit_job sched (simple_job ~jid:0 ~n:5 ~submit:0. ~duration:10.);
  let round = solve_sched sched ~now:0. in
  checki "only capacity starts" 2 (List.length round.Firmament.Scheduler.started);
  checki "rest wait" 3 (Cluster.State.waiting_count cluster);
  checki "reported unscheduled" 3 round.Firmament.Scheduler.unscheduled

let quincy_task ~tid ~job ~submit ~duration ~input_mb ~input_machines =
  W.make_task ~tid ~job ~submit_time:submit ~duration ~input_mb ~input_machines ()

let test_quincy_prefers_local_data () =
  let cluster = mk_cluster ~machines:4 ~slots:2 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_quincy.make ~drain net st)
  in
  (* All input on machine 2: scheduling there transfers nothing. *)
  let t =
    quincy_task ~tid:0 ~job:0 ~submit:0. ~duration:10. ~input_mb:1000.
      ~input_machines:[ 2; 2; 2 ]
  in
  Firmament.Scheduler.submit_job sched (job_of_tasks ~jid:0 ~submit:0. [ t ]);
  let round = solve_sched sched ~now:0. in
  Alcotest.(check (list (pair int int))) "placed on data" [ (0, 2) ] round.Firmament.Scheduler.started

let test_quincy_falls_back_when_preferred_full () =
  let cluster = mk_cluster ~machines:2 ~slots:1 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_quincy.make ~drain net st)
  in
  let mk tid = quincy_task ~tid ~job:0 ~submit:0. ~duration:10. ~input_mb:100. ~input_machines:[ 0; 0; 0 ] in
  (* Two tasks both preferring machine 0 (slots 1): one falls back. *)
  Firmament.Scheduler.submit_job sched (job_of_tasks ~jid:0 ~submit:0. [ mk 0; mk 1 ]);
  let round = solve_sched sched ~now:0. in
  checki "both scheduled" 2 (List.length round.Firmament.Scheduler.started);
  let machines = List.map snd round.Firmament.Scheduler.started |> List.sort compare in
  Alcotest.(check (list int)) "one per machine" [ 0; 1 ] machines

let test_quincy_service_priority_preempts () =
  let cluster = mk_cluster ~machines:1 ~slots:1 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_quincy.make ~drain net st)
  in
  let batch = quincy_task ~tid:0 ~job:0 ~submit:0. ~duration:1000. ~input_mb:10. ~input_machines:[] in
  Firmament.Scheduler.submit_job sched (job_of_tasks ~jid:0 ~submit:0. [ batch ]);
  let r1 = solve_sched sched ~now:0. in
  checki "batch starts" 1 (List.length r1.Firmament.Scheduler.started);
  (* A service task arrives; the only slot is taken by batch work. *)
  let service = quincy_task ~tid:100 ~job:1 ~submit:5. ~duration:1e7 ~input_mb:0. ~input_machines:[] in
  Firmament.Scheduler.submit_job sched
    (job_of_tasks ~jid:1 ~klass:Cluster.Types.Service ~submit:5. [ service ]);
  let r2 = solve_sched sched ~now:5. in
  checkb "batch preempted" true (List.mem 0 r2.Firmament.Scheduler.preempted);
  Alcotest.(check (list (pair int int))) "service placed" [ (100, 0) ] r2.Firmament.Scheduler.started

let test_network_aware_avoids_loaded_machine () =
  let cluster = mk_cluster ~machines:2 ~slots:4 in
  (* Machine 0 is saturated by background traffic. *)
  let background m = if m = 0 then 9_900 else 0 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_network_aware.make ~bandwidth_used:background ~drain net st)
  in
  let t =
    W.make_task ~tid:0 ~job:0 ~submit_time:0. ~duration:10. ~net_demand_mbps:500 ()
  in
  Firmament.Scheduler.submit_job sched (job_of_tasks ~jid:0 ~submit:0. [ t ]);
  let round = solve_sched sched ~now:0. in
  Alcotest.(check (list (pair int int)))
    "avoids machine 0" [ (0, 1) ] round.Firmament.Scheduler.started

let test_network_aware_balances_bandwidth () =
  let cluster = mk_cluster ~machines:2 ~slots:8 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_network_aware.make ~drain net st)
  in
  let tasks =
    List.init 4 (fun i ->
        W.make_task ~tid:i ~job:0 ~submit_time:0. ~duration:100. ~net_demand_mbps:3000 ())
  in
  Firmament.Scheduler.submit_job sched (job_of_tasks ~jid:0 ~submit:0. tasks);
  let round = solve_sched sched ~now:0. in
  checki "all placed" 4 (List.length round.Firmament.Scheduler.started);
  (* 4 x 3000 Mbps over 2 x 10G links: the only non-overcommitting split
     is 2+2. *)
  checki "balanced" 2 (Cluster.State.running_count cluster 0);
  checki "balanced" 2 (Cluster.State.running_count cluster 1)

let test_machine_failure_reschedules () =
  let cluster = mk_cluster ~machines:2 ~slots:2 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_load_spread.make ~drain net st)
  in
  Firmament.Scheduler.submit_job sched (simple_job ~jid:0 ~n:2 ~submit:0. ~duration:100.);
  let r1 = solve_sched sched ~now:0. in
  checki "started" 2 (List.length r1.Firmament.Scheduler.started);
  (* Kill machine 0; its task must move to machine 1. *)
  Firmament.Scheduler.fail_machine sched 0;
  let r2 = solve_sched sched ~now:1. in
  checki "victim rescheduled" 1 (List.length r2.Firmament.Scheduler.started);
  checki "machine 1 hosts both" 2 (Cluster.State.running_count cluster 1);
  (* Restore machine 0: spreading brings one task back eventually on new
     submissions. *)
  Firmament.Scheduler.restore_machine sched 0;
  Firmament.Scheduler.submit_job sched (simple_job ~jid:1 ~n:1 ~submit:2. ~duration:100.);
  let r3 = solve_sched sched ~now:2. in
  checki "new task started" 1 (List.length r3.Firmament.Scheduler.started);
  checki "lands on restored machine" 1 (Cluster.State.running_count cluster 0)

let test_scheduler_parallel_race_mode () =
  (* End-to-end with the real two-domain race. *)
  let cluster = mk_cluster ~machines:4 ~slots:2 in
  let sched =
    Firmament.Scheduler.create
      ~config:{ Firmament.Scheduler.default_config with mode = Mcmf.Race.Race_parallel }
      cluster
      ~policy:(fun ~drain net st -> Firmament.Policy_quincy.make ~drain net st)
  in
  Firmament.Scheduler.submit_job sched (simple_job ~jid:0 ~n:6 ~submit:0. ~duration:10.);
  let round = solve_sched sched ~now:0. in
  checki "all placed" 6 (List.length round.Firmament.Scheduler.started);
  (* Subsequent incremental round after completions. *)
  let tid, _ = List.hd round.Firmament.Scheduler.started in
  Firmament.Scheduler.finish_task sched tid ~now:5.;
  Firmament.Scheduler.submit_job sched (simple_job ~jid:1 ~n:1 ~submit:5. ~duration:10.);
  let round2 = solve_sched sched ~now:5. in
  checki "replacement placed" 1 (List.length round2.Firmament.Scheduler.started)

let test_quincy_threshold_controls_arc_count () =
  (* A lower preference threshold admits more preference arcs (Fig. 15's
     mechanism). *)
  let arcs_for threshold =
    let cluster = mk_cluster ~machines:8 ~slots:2 in
    let sched =
      Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
          Firmament.Policy_quincy.make
            ~config:
              {
                Firmament.Policy_quincy.default_config with
                preference_threshold = threshold;
              }
            ~drain net st)
    in
    (* One block on each of 8 machines: per-machine fraction is 1/8 = 12.5%. *)
    let t =
      quincy_task ~tid:0 ~job:0 ~submit:0. ~duration:10. ~input_mb:800.
        ~input_machines:[ 0; 1; 2; 3; 4; 5; 6; 7 ]
    in
    Firmament.Scheduler.submit_job sched (job_of_tasks ~jid:0 ~submit:0. [ t ]);
    let net = Firmament.Scheduler.network sched in
    let tn = Option.get (FN.task_node net 0) in
    let g = FN.graph net in
    let count = ref 0 in
    G.iter_out g tn (fun a -> if G.is_forward a then incr count);
    !count
  in
  let narrow = arcs_for 0.14 in
  let wide = arcs_for 0.02 in
  checkb "2% threshold adds preference arcs" true (wide > narrow)

let test_network_aware_bucket_rounding () =
  let config = Firmament.Policy_network_aware.default_config in
  checki "rounds up" 200 (Firmament.Policy_network_aware.bucket_of ~config 101);
  checki "exact" 200 (Firmament.Policy_network_aware.bucket_of ~config 200);
  checki "minimum one bucket" 100 (Firmament.Policy_network_aware.bucket_of ~config 0)

let test_scheduler_quincy_mode_matches_firmament_placements () =
  (* Same workload under Quincy configuration (from-scratch cost scaling)
     and Firmament (race): identical placement *cost* since both optimal. *)
  let run mode =
    let cluster = mk_cluster ~machines:4 ~slots:2 in
    let sched =
      Firmament.Scheduler.create
        ~config:{ Firmament.Scheduler.default_config with mode }
        cluster
        ~policy:(fun ~drain net st -> Firmament.Policy_quincy.make ~drain net st)
    in
    let tasks =
      List.init 6 (fun i ->
          quincy_task ~tid:i ~job:0 ~submit:0. ~duration:10. ~input_mb:200.
            ~input_machines:[ i mod 4; (i + 1) mod 4; i mod 4 ])
    in
    Firmament.Scheduler.submit_job sched (job_of_tasks ~jid:0 ~submit:0. tasks);
    let _ = solve_sched sched ~now:0. in
    G.total_cost (FN.graph (Firmament.Scheduler.network sched))
  in
  let c_quincy = run Mcmf.Race.Cost_scaling_scratch_only in
  let c_firm = run Mcmf.Race.Fastest_sequential in
  checki "same optimal cost" c_quincy c_firm

(* {1 Degraded rounds: infeasible networks and round deadlines} *)

let all_race_modes =
  Mcmf.Race.
    [
      Race_parallel;
      Fastest_sequential;
      Relaxation_only;
      Incremental_cost_scaling_only;
      Cost_scaling_scratch_only;
    ]

let degraded_t =
  Alcotest.testable Firmament.Scheduler.pp_degraded (fun a b -> a = b)

(* A policy whose network is unroutable by construction: every task's only
   arc leads to a machine with a zero-capacity sink arc, and no
   unscheduled aggregator exists to absorb the supply. *)
let unroutable_policy ~drain:_ net _st =
  let g = FN.graph net in
  {
    Firmament.Policy.name = "unroutable";
    task_submitted =
      (fun (task : W.task) ->
        let tn = FN.add_task net task.W.tid in
        let m = FN.ensure_machine net 0 ~slots:0 in
        ignore (G.add_arc g ~src:tn ~dst:m ~cost:1 ~cap:1));
    task_finished = (fun _ -> ());
    task_started = (fun _ _ -> ());
    task_preempted = (fun _ -> ());
    machine_failed = (fun _ -> ());
    machine_restored = (fun _ -> ());
    refresh = (fun ~now:_ -> ());
  }

let test_scheduler_infeasible_round_fails_gracefully () =
  List.iter
    (fun mode ->
      let cluster = mk_cluster ~machines:1 ~slots:2 in
      let sched =
        Firmament.Scheduler.create
          ~config:{ Firmament.Scheduler.default_config with mode }
          cluster ~policy:unroutable_policy
      in
      Firmament.Scheduler.submit_job sched (simple_job ~jid:0 ~n:2 ~submit:0. ~duration:10.);
      let r1 = solve_sched sched ~now:0. in
      Alcotest.check degraded_t "failed round" `Failed r1.Firmament.Scheduler.degraded;
      checki "nothing started" 0 (List.length r1.Firmament.Scheduler.started);
      checki "all reported unscheduled" 2 r1.Firmament.Scheduler.unscheduled;
      checki "cluster untouched" 2 (Cluster.State.waiting_count cluster);
      (* Repair the network (give machine 0 its real slot capacity): the
         preserved pre-round graph must recover to a clean optimal round. *)
      let net = Firmament.Scheduler.network sched in
      let m = FN.ensure_machine net 0 ~slots:0 in
      (match FN.find_arc net m (FN.sink net) with
      | Some a -> G.set_capacity (FN.graph net) a 2
      | None -> Alcotest.fail "machine lost its sink arc");
      let r2 = solve_sched sched ~now:1. in
      Alcotest.check degraded_t "recovered" `None r2.Firmament.Scheduler.degraded;
      checki "both started" 2 (List.length r2.Firmament.Scheduler.started);
      checki "none waiting" 0 (Cluster.State.waiting_count cluster))
    all_race_modes

let test_scheduler_stopped_round_degrades_to_partial () =
  List.iter
    (fun mode ->
      let cluster = mk_cluster ~machines:4 ~slots:2 in
      let sched =
        Firmament.Scheduler.create
          ~config:{ Firmament.Scheduler.default_config with mode }
          cluster
          ~policy:(fun ~drain net st -> Firmament.Policy_load_spread.make ~drain net st)
      in
      Firmament.Scheduler.submit_job sched (simple_job ~jid:0 ~n:6 ~submit:0. ~duration:50.);
      let r1 = Firmament.Scheduler.schedule ~stop:(fun () -> true) sched ~now:0. in
      Alcotest.check degraded_t "partial round" `Partial r1.Firmament.Scheduler.degraded;
      for m = 0 to 3 do
        checkb "no oversubscription" true (Cluster.State.running_count cluster m <= 2)
      done;
      let r2 = solve_sched sched ~now:1. in
      Alcotest.check degraded_t "recovered" `None r2.Firmament.Scheduler.degraded;
      checki "everything running" 6
        (List.length r1.Firmament.Scheduler.started
        + List.length r2.Firmament.Scheduler.started);
      checki "none waiting" 0 (Cluster.State.waiting_count cluster))
    all_race_modes

let test_scheduler_midsolve_stop_capacity_valid () =
  (* Cancel the solve after a handful of polls, wherever that lands: the
     round reports a ladder rung, commits only capacity-valid placements,
     and the next unconstrained round recovers fully. *)
  List.iter
    (fun k ->
      let cluster = mk_cluster ~machines:4 ~slots:2 in
      let sched =
        Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
            Firmament.Policy_quincy.make ~drain net st)
      in
      let tasks =
        List.init 8 (fun i ->
            quincy_task ~tid:i ~job:0 ~submit:0. ~duration:50. ~input_mb:200.
              ~input_machines:[ i mod 4 ])
      in
      Firmament.Scheduler.submit_job sched (job_of_tasks ~jid:0 ~submit:0. tasks);
      let polls = ref 0 in
      let stop () =
        incr polls;
        !polls > k
      in
      let r1 = Firmament.Scheduler.schedule ~stop sched ~now:0. in
      checkb "on the ladder" true
        (List.mem r1.Firmament.Scheduler.degraded [ `None; `Partial ]);
      for m = 0 to 3 do
        checkb "no oversubscription" true (Cluster.State.running_count cluster m <= 2)
      done;
      let r2 = solve_sched sched ~now:1. in
      Alcotest.check degraded_t "recovers" `None r2.Firmament.Scheduler.degraded;
      checki "none waiting" 0 (Cluster.State.waiting_count cluster))
    [ 0; 1; 2; 5; 20 ]

let test_scheduler_config_deadline () =
  (* A zero deadline stops every solve immediately: rounds degrade to
     [`Partial] without exceptions. A generous one changes nothing. *)
  let run deadline =
    let cluster = mk_cluster ~machines:2 ~slots:2 in
    let sched =
      Firmament.Scheduler.create
        ~config:{ Firmament.Scheduler.default_config with deadline }
        cluster
        ~policy:(fun ~drain net st -> Firmament.Policy_load_spread.make ~drain net st)
    in
    Firmament.Scheduler.submit_job sched (simple_job ~jid:0 ~n:3 ~submit:0. ~duration:10.);
    let r = solve_sched sched ~now:0. in
    (r.Firmament.Scheduler.degraded, Cluster.State.waiting_count cluster)
  in
  let d0, _ = run (Some 0.) in
  Alcotest.check degraded_t "zero deadline degrades" `Partial d0;
  let d, waiting = run (Some 60.) in
  Alcotest.check degraded_t "generous deadline completes" `None d;
  checki "all placed" 0 waiting

let test_scheduler_phase_attribution () =
  (* A 10 ms deadline on a from-scratch solve of a large cluster cannot
     complete: the round degrades to [`Partial], and its [phase_ns] must
     attribute the spent budget across named phases whose durations sum
     to the round's wall time (the checkpoints are contiguous, so the sum
     is exact up to the instants before/after the schedule call). The
     instance must be big enough that a warm-started-workspace scratch
     solve still reliably blows the deadline. *)
  let machines = 1500 in
  let cluster = mk_cluster ~machines ~slots:4 in
  let sched =
    Firmament.Scheduler.create
      ~config:{ Firmament.Scheduler.default_config with deadline = Some 0.01 }
      cluster
      ~policy:(fun ~drain net st -> Firmament.Policy_load_spread.make ~drain net st)
  in
  Firmament.Scheduler.submit_job sched
    (simple_job ~jid:0 ~n:(machines * 4) ~submit:0. ~duration:50.);
  let w0 = Telemetry.Clock.now_ns () in
  let r = Firmament.Scheduler.schedule sched ~now:0. in
  let w1 = Telemetry.Clock.now_ns () in
  Alcotest.check degraded_t "10ms deadline degrades to partial" `Partial
    r.Firmament.Scheduler.degraded;
  let phases = r.Firmament.Scheduler.phase_ns in
  checkb "phases named" true
    (List.mem_assoc "refresh" phases && List.mem_assoc "solve" phases
    && List.mem_assoc "extract" phases && List.mem_assoc "apply" phases);
  List.iter
    (fun (p, d) -> checkb (p ^ " duration non-negative") true (d >= 0))
    phases;
  (* The deadline budget went to the solve phase. *)
  let solve_ns = List.assoc "solve" phases in
  checkb "solve consumed the deadline" true (solve_ns >= 8_000_000);
  let sum = List.fold_left (fun acc (_, d) -> acc + d) 0 phases in
  let wall = w1 - w0 in
  checkb "phase sum bounded by outer wall" true (sum <= wall);
  checkb "phase sum ~ round wall time" true
    (float_of_int sum >= 0.9 *. float_of_int wall)

(* {1 Pipelined rounds} *)

let discard_reason_t =
  Alcotest.testable Firmament.Scheduler.pp_discard_reason (fun a b -> a = b)

let round_sig (r : Firmament.Scheduler.round) =
  ( r.Firmament.Scheduler.degraded,
    r.Firmament.Scheduler.started,
    r.Firmament.Scheduler.migrated,
    r.Firmament.Scheduler.preempted,
    r.Firmament.Scheduler.unscheduled,
    r.Firmament.Scheduler.discarded )

(* A four-step cluster scenario (placements, completions, a machine
   failure, a restore) whose per-round optimum is unique — every
   candidate path has a strictly distinct cost — so two runs must produce
   identical rounds even under the nondeterministic parallel race. *)
let equivalence_script sched run_round =
  let task ~tid ~job ~submit ~prefer ~alt =
    quincy_task ~tid ~job ~submit ~duration:100. ~input_mb:90.
      ~input_machines:[ prefer; prefer; alt ]
  in
  Firmament.Scheduler.submit_job sched
    (job_of_tasks ~jid:0 ~submit:0.
       (List.init 8 (fun i ->
            task ~tid:i ~job:0 ~submit:0. ~prefer:(i mod 4) ~alt:((i + 2) mod 4))));
  let r1 = run_round ~now:0. in
  Firmament.Scheduler.finish_task sched 0 ~now:5.;
  Firmament.Scheduler.finish_task sched 1 ~now:5.;
  Firmament.Scheduler.submit_job sched
    (job_of_tasks ~jid:1 ~submit:5.
       [
         task ~tid:100 ~job:1 ~submit:5. ~prefer:0 ~alt:2;
         task ~tid:101 ~job:1 ~submit:5. ~prefer:1 ~alt:3;
       ]);
  let r2 = run_round ~now:5. in
  Firmament.Scheduler.fail_machine sched 3;
  let r3 = run_round ~now:6. in
  Firmament.Scheduler.restore_machine sched 3;
  let r4 = run_round ~now:7. in
  [ r1; r2; r3; r4 ]

let test_pipeline_equivalence_across_modes () =
  (* Driving rounds as begin_round + await + commit_round with no events
     in between must be indistinguishable from the synchronous schedule
     call: same starts, migrations, preemptions and (absent) discards,
     and an equally optimal adopted graph — in every race mode. *)
  List.iter
    (fun mode ->
      let mk () =
        let cluster = mk_cluster ~machines:4 ~slots:2 in
        Firmament.Scheduler.create
          ~config:{ Firmament.Scheduler.default_config with mode }
          cluster
          ~policy:(fun ~drain net st -> Firmament.Policy_quincy.make ~drain net st)
      in
      let sync_sched = mk () in
      let sync_rounds =
        equivalence_script sync_sched (fun ~now ->
            Firmament.Scheduler.schedule sync_sched ~now)
      in
      let split_sched = mk () in
      let split_rounds =
        equivalence_script split_sched (fun ~now ->
            let p = Firmament.Scheduler.begin_round split_sched ~now in
            let rt = Firmament.Scheduler.solver_runtime split_sched p in
            checkb "solver runtime non-negative" true (rt >= 0.);
            checkb "poll true after await" true
              (Firmament.Scheduler.poll split_sched p);
            Firmament.Scheduler.commit_round split_sched p ~now)
      in
      checki "both ran four rounds" (List.length sync_rounds) (List.length split_rounds);
      List.iteri
        (fun i (a, b) ->
          checkb (Printf.sprintf "round %d identical" (i + 1)) true
            (round_sig a = round_sig b);
          checkb (Printf.sprintf "round %d has no discards" (i + 1)) true
            (a.Firmament.Scheduler.discarded = []))
        (List.combine sync_rounds split_rounds);
      checki "first round places all eight" 8
        (List.length (List.hd sync_rounds).Firmament.Scheduler.started);
      let g_of s = FN.graph (Firmament.Scheduler.network s) in
      checkb "sync graph optimal" true (Flowgraph.Validate.is_optimal (g_of sync_sched));
      checkb "split graph optimal" true (Flowgraph.Validate.is_optimal (g_of split_sched));
      checki "same adopted solution cost"
        (G.total_cost (g_of sync_sched))
        (G.total_cost (g_of split_sched)))
    all_race_modes

let test_pipeline_stale_reconciliation () =
  (* Events absorbed while a solve is in flight invalidate exactly the
     placements they touch — the commit discards those, applies the rest,
     and leaves the warm start certified. *)
  let cluster = mk_cluster ~machines:3 ~slots:2 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_quincy.make ~drain net st)
  in
  let pref ~tid ~job ~m ~submit =
    quincy_task ~tid ~job ~submit ~duration:100. ~input_mb:90.
      ~input_machines:[ m; m; m ]
  in
  Firmament.Scheduler.submit_job sched
    (job_of_tasks ~jid:0 ~submit:0.
       [
         pref ~tid:0 ~job:0 ~m:0 ~submit:0.;
         pref ~tid:1 ~job:0 ~m:1 ~submit:0.;
         pref ~tid:2 ~job:0 ~m:2 ~submit:0.;
       ]);
  let r1 = solve_sched sched ~now:0. in
  checki "three running" 3 (List.length r1.Firmament.Scheduler.started);
  Firmament.Scheduler.submit_job sched
    (job_of_tasks ~jid:1 ~submit:1.
       [
         pref ~tid:10 ~job:1 ~m:0 ~submit:1.;
         pref ~tid:11 ~job:1 ~m:1 ~submit:1.;
         pref ~tid:12 ~job:1 ~m:2 ~submit:1.;
       ]);
  let p = Firmament.Scheduler.begin_round sched ~now:1. in
  (* Mid-solve: task 0 finishes; machine 2 dies, taking task 2 with it.
     The in-flight snapshot still routes 0 -> m0, 2 -> m2, 12 -> m2. *)
  Firmament.Scheduler.finish_task sched 0 ~now:1.;
  Firmament.Scheduler.fail_machine sched 2;
  let r2 = Firmament.Scheduler.commit_round sched p ~now:1. in
  Alcotest.(check (list (pair int int)))
    "fresh placements commit" [ (10, 0); (11, 1) ] r2.Firmament.Scheduler.started;
  Alcotest.(check (list (pair int discard_reason_t)))
    "exactly the stale placements discarded"
    [ (2, `Stale_task); (12, `Stale_machine) ]
    r2.Firmament.Scheduler.discarded;
  (* Task 0 finished mid-solve and the snapshot re-confirms the machine
     it was running on: a no-op replay, not a stale discard. *)
  checki "finished task's placement is a replay" 1 r2.Firmament.Scheduler.replayed;
  checki "no bogus preemptions" 0 (List.length r2.Firmament.Scheduler.preempted);
  checki "no bogus migrations" 0 (List.length r2.Firmament.Scheduler.migrated);
  checkb "network invariants hold" true
    (FN.validate_structure (Firmament.Scheduler.network sched) = []);
  (* The canonical graph was never corrupted by the stale snapshot: the
     next full round is clean and places the remaining waiting work. *)
  Firmament.Scheduler.restore_machine sched 2;
  let r3 = solve_sched sched ~now:2. in
  Alcotest.check degraded_t "warm start still certified" `None
    r3.Firmament.Scheduler.degraded;
  checki "victims and discards rescheduled" 2
    (List.length r3.Firmament.Scheduler.started);
  checki "none waiting" 0 (Cluster.State.waiting_count cluster)

let test_pipeline_one_round_in_flight () =
  let cluster = mk_cluster ~machines:2 ~slots:1 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_load_spread.make ~drain net st)
  in
  Firmament.Scheduler.submit_job sched (simple_job ~jid:0 ~n:1 ~submit:0. ~duration:10.);
  let p = Firmament.Scheduler.begin_round sched ~now:0. in
  Alcotest.check_raises "second begin rejected"
    (Invalid_argument "Scheduler.begin_round: a round is already in flight")
    (fun () -> ignore (Firmament.Scheduler.begin_round sched ~now:0.));
  let r = Firmament.Scheduler.commit_round sched p ~now:0. in
  checki "placed" 1 (List.length r.Firmament.Scheduler.started);
  Alcotest.check_raises "double commit rejected"
    (Invalid_argument "Scheduler.commit_round: not the round in flight")
    (fun () -> ignore (Firmament.Scheduler.commit_round sched p ~now:0.))

let test_quincy_machine_restored_reinstalls_preferences () =
  (* Regression: a task submitted while its data's machine is down gets
     no preference arc (dead machines are skipped); restoring the machine
     must reinstall the arc so the next round can place the task on its
     data instead of anywhere via the wildcard. *)
  let cluster = mk_cluster ~machines:2 ~slots:2 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_quincy.make ~drain net st)
  in
  Firmament.Scheduler.fail_machine sched 1;
  Firmament.Scheduler.submit_job sched
    (job_of_tasks ~jid:0 ~submit:0.
       [
         quincy_task ~tid:0 ~job:0 ~submit:0. ~duration:10. ~input_mb:500.
           ~input_machines:[ 1; 1; 1 ];
       ]);
  let net = Firmament.Scheduler.network sched in
  let tn = Option.get (FN.task_node net 0) in
  Firmament.Scheduler.restore_machine sched 1;
  (match FN.machine_node net 1 with
  | Some mn -> checkb "preference arc reinstalled" true (FN.find_arc net tn mn <> None)
  | None -> Alcotest.fail "machine 1 missing after restore");
  let r = solve_sched sched ~now:1. in
  Alcotest.(check (list (pair int int)))
    "placed on its data" [ (0, 1) ] r.Firmament.Scheduler.started

let test_quincy_refresh_wait_cost_bucketing () =
  (* Wait-cost aging is quantized to whole seconds: refreshes within the
     same bucket must not touch arc costs at all (no churn into the
     incremental solver's warm start), while crossing a bucket boundary
     must reprice the cached unscheduled arc — including across rounds
     that adopted fresh graph copies. *)
  let cluster = mk_cluster ~machines:1 ~slots:1 in
  let sched =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net st ->
        Firmament.Policy_quincy.make ~drain net st)
  in
  Firmament.Scheduler.submit_job sched (simple_job ~jid:0 ~n:2 ~submit:0. ~duration:100.);
  let _ = solve_sched sched ~now:0. in
  checki "one waits" 1 (Cluster.State.waiting_count cluster);
  let cost_changes () =
    (Flowgraph.Graph.peek_changes (FN.graph (Firmament.Scheduler.network sched)))
      .Flowgraph.Graph.cost_changes
  in
  let c0 = cost_changes () in
  let _ = solve_sched sched ~now:0.4 in
  let _ = solve_sched sched ~now:0.9 in
  checki "no cost churn within a wait bucket" 0 (cost_changes () - c0);
  let c1 = cost_changes () in
  let _ = solve_sched sched ~now:2.5 in
  checkb "bucket crossing reprices the unscheduled arc" true (cost_changes () > c1)

(* {1 Placement flow audit}

   Brute-force audit of the extraction pass: however the single-pass
   tracing attributes tasks, the number of tasks it assigns to a machine
   must equal (strict [extract] and [extract_snapshot] on an optimal flow)
   or never exceed ([extract_partial] on a stopped solver's pseudoflow)
   the flow that machine actually forwards to the sink. *)

(* A random Firmament-shaped network: tasks with direct preference arcs,
   a cluster-aggregator fallback and a per-job unscheduled path (so every
   instance is feasible). Returns the net plus (id, node) lists for the
   audit. *)
let random_audit_net seed =
  let rng = Random.State.make [| 0x706c61; seed |] in
  let net = FN.create () in
  let g = FN.graph net in
  let machines = 2 + Random.State.int rng 5 in
  let slots = 1 + Random.State.int rng 3 in
  let agg = FN.ensure_cluster_agg net in
  let mnodes =
    List.init machines (fun mid ->
        let mn = FN.ensure_machine net mid ~slots in
        ignore
          (G.add_arc g ~src:agg ~dst:mn ~cost:(1 + Random.State.int rng 6) ~cap:slots);
        (mid, mn))
  in
  let u = FN.ensure_unscheduled net 0 in
  let tasks = 1 + Random.State.int rng ((machines * slots) + 3) in
  let tnodes =
    List.init tasks (fun tid ->
        let t = FN.add_task net tid in
        Firmament.Policy.adjust_unscheduled_capacity net 0 ~delta:1;
        ignore (G.add_arc g ~src:t ~dst:u ~cost:(30 + Random.State.int rng 10) ~cap:1);
        ignore (G.add_arc g ~src:t ~dst:agg ~cost:(5 + Random.State.int rng 10) ~cap:1);
        for _ = 1 to 1 + Random.State.int rng 2 do
          let _, mn = List.nth mnodes (Random.State.int rng machines) in
          ignore (G.add_arc g ~src:t ~dst:mn ~cost:(Random.State.int rng 8) ~cap:1)
        done;
        (tid, t))
  in
  (net, tnodes, mnodes, agg, u)

let flow_audit ~exact net assignments mnodes =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun a ->
      match a.Firmament.Placement.machine with
      | Some mid ->
          Hashtbl.replace counts mid
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts mid))
      | None -> ())
    assignments;
  List.for_all
    (fun a ->
      match a.Firmament.Placement.machine with
      | Some mid -> List.mem_assoc mid mnodes
      | None -> true)
    assignments
  && List.for_all
       (fun (mid, mn) ->
         let f =
           G.flow (FN.graph net) (Option.get (FN.find_arc net mn (FN.sink net)))
         in
         let c = Option.value ~default:0 (Hashtbl.find_opt counts mid) in
         if exact then c = f else c <= f)
       mnodes

let prop_extract_matches_flow_audit =
  QCheck.Test.make
    ~name:"extract / extract_partial placements = machine sink flow" ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let net, tnodes, mnodes, _, _ = random_audit_net seed in
      let st = Mcmf.Ssp.solve (FN.graph net) in
      st.Mcmf.Solver_intf.outcome = Mcmf.Solver_intf.Optimal
      && begin
           let a = Firmament.Placement.extract net in
           List.length a = List.length tnodes
           && flow_audit ~exact:true net a mnodes
           (* On an optimal flow the lenient walk is an exact flow
              decomposition too. *)
           && flow_audit ~exact:true net (Firmament.Placement.extract_partial net) mnodes
         end)

let prop_extract_partial_capacity_valid_on_pseudoflow =
  QCheck.Test.make
    ~name:"extract_partial never exceeds sink flow on a stopped solve" ~count:80
    QCheck.(pair (int_bound 1_000_000) (int_bound 20))
    (fun (seed, polls) ->
      let net, _, mnodes, _, _ = random_audit_net seed in
      let n = ref 0 in
      let stop () =
        incr n;
        !n > polls
      in
      (* Whatever state the early-terminated solver leaves behind,
         placements must stay capacity-valid against the actual flow. *)
      ignore (Mcmf.Ssp.solve ~stop (FN.graph net));
      flow_audit ~exact:false net (Firmament.Placement.extract_partial net) mnodes)

let prop_extract_snapshot_matches_flow_audit =
  QCheck.Test.make ~name:"extract_snapshot = machine sink flow on a snapshot"
    ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let net, tnodes, mnodes, agg, _ = random_audit_net seed in
      let g = FN.graph net in
      let st = Mcmf.Ssp.solve g in
      st.Mcmf.Solver_intf.outcome = Mcmf.Solver_intf.Optimal
      && begin
           let snap = G.copy g in
           let classify n =
             match List.find_opt (fun (_, mn) -> mn = n) mnodes with
             | Some (mid, _) -> `Machine mid
             | None -> if n = agg then `Through else `Blocked
           in
           let a =
             Firmament.Placement.extract_snapshot snap ~sink:(FN.sink net)
               ~classify ~tasks:tnodes
           in
           let placed l =
             List.sort compare
               (List.map
                  (fun p ->
                    ( p.Firmament.Placement.task,
                      p.Firmament.Placement.machine <> None ))
                  l)
           in
           flow_audit ~exact:true net a mnodes
           (* Attribution through an aggregator may permute, but which
              tasks are placed at all is flow-determined. *)
           && placed a = placed (Firmament.Placement.extract net)
         end)

(* {1 Delta extraction under churn} *)

(* The incremental decomposition the scheduler maintains across rounds
   must describe the same flow as a from-scratch extraction of each
   round's certified solution, whatever mutation burst preceded the
   round. Attribution between tasks merging at an aggregator is
   ambiguous, so equality is on the decomposition invariants: tracked
   task set, per-machine counts, unscheduled count. *)
let summarize_assignments asgs =
  let machines = Hashtbl.create 16 in
  let unsched = ref 0 in
  let tids = ref [] in
  List.iter
    (fun { Firmament.Placement.task; machine } ->
      tids := task :: !tids;
      match machine with
      | Some mm ->
          Hashtbl.replace machines mm
            (1 + Option.value ~default:0 (Hashtbl.find_opt machines mm))
      | None -> incr unsched)
    asgs;
  ( List.sort compare !tids,
    List.sort compare (Hashtbl.fold (fun mm n acc -> (mm, n) :: acc) machines []),
    !unsched )

let prop_delta_extraction_matches_full =
  QCheck.Test.make ~name:"delta extraction = full extraction after churn bursts"
    ~count:30
    QCheck.(pair (int_bound 100_000) (int_bound 4))
    (fun (seed, mode_idx) ->
      let mode = List.nth all_race_modes mode_idx in
      let rng = Random.State.make [| 0xde17a; seed; mode_idx |] in
      let machines = 5 and slots = 2 in
      let cluster = mk_cluster ~machines ~slots in
      let sched =
        Firmament.Scheduler.create
          ~config:{ Firmament.Scheduler.default_config with mode }
          cluster
          ~policy:(fun ~drain net st -> Firmament.Policy_quincy.make ~drain net st)
      in
      let err = ref None in
      Firmament.Scheduler.set_round_observer sched
        (Some
           (fun (r : Firmament.Scheduler.round) _post ~certified ->
             match certified with
             | None -> ()
             | Some cg -> (
                 ignore r;
                 match Firmament.Scheduler.decomposition sched with
                 | None ->
                     if !err = None then
                       err := Some "adopted round left the delta workspace unsynced"
                 | Some delta ->
                     let net = Firmament.Scheduler.network sched in
                     let live = FN.graph net in
                     let full =
                       Fun.protect
                         ~finally:(fun () -> FN.set_graph net live)
                         (fun () ->
                           FN.set_graph net cg;
                           Firmament.Placement.extract net)
                     in
                     if
                       summarize_assignments delta <> summarize_assignments full
                       && !err = None
                     then err := Some "delta and full extraction disagree")));
      let next_jid = ref 0 in
      let now = ref 0. in
      let running () =
        let acc = ref [] in
        Cluster.State.iter_tasks cluster (fun t ->
            if W.is_running t then acc := t.W.tid :: !acc);
        List.sort compare !acc
      in
      let random_event () =
        match Random.State.int rng 6 with
        | 0 | 1 ->
            let jid = !next_jid in
            incr next_jid;
            let n = 1 + Random.State.int rng 3 in
            Firmament.Scheduler.submit_job sched
              (job_of_tasks ~jid ~submit:!now
                 (List.init n (fun i ->
                      quincy_task ~tid:((jid * 100) + i) ~job:jid ~submit:!now
                        ~duration:1000. ~input_mb:90.
                        ~input_machines:[ Random.State.int rng machines ])))
        | 2 -> (
            match running () with
            | [] -> ()
            | l ->
                Firmament.Scheduler.finish_task sched
                  (List.nth l (Random.State.int rng (List.length l)))
                  ~now:!now)
        | 3 -> (
            match running () with
            | [] -> ()
            | l ->
                Firmament.Scheduler.preempt_task sched
                  (List.nth l (Random.State.int rng (List.length l))))
        | 4 ->
            let m = Random.State.int rng machines in
            if Cluster.State.machine_is_live cluster m then
              Firmament.Scheduler.fail_machine sched m
        | _ ->
            let m = Random.State.int rng machines in
            if not (Cluster.State.machine_is_live cluster m) then
              Firmament.Scheduler.restore_machine sched m
      in
      (* Always at least one task so the first round has work. *)
      Firmament.Scheduler.submit_job sched
        (job_of_tasks ~jid:9999 ~submit:0.
           [ quincy_task ~tid:999900 ~job:9999 ~submit:0. ~duration:1000.
               ~input_mb:90. ~input_machines:[ 0 ] ]);
      for _round = 0 to 7 do
        let burst = Random.State.int rng 4 in
        for _i = 1 to burst do
          random_event ()
        done;
        ignore (Firmament.Scheduler.schedule sched ~now:!now);
        now := !now +. 1.
      done;
      match !err with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

(* The race orchestrator's solve phase used to blame the losing solver's
   tail on the round ([Fastest_sequential] ran the loser to completion);
   the split histograms make the winner's latency and the orchestration
   wait separately observable, and the loser is budget-capped so the
   wait can no longer exceed ~1x the winner. *)
let test_solve_win_wait_split () =
  let m = Telemetry.Metrics.global () in
  let id name =
    match Telemetry.Metrics.find m name with
    | Some id -> id
    | None -> Alcotest.failf "histogram %s not registered" name
  in
  let win = id "sched_phase_solve_win_ns" in
  let wait = id "sched_phase_solve_wait_ns" in
  let c0_win = Telemetry.Metrics.hist_count m win in
  let c0_wait = Telemetry.Metrics.hist_count m wait in
  let cluster = mk_cluster ~machines:4 ~slots:2 in
  let sched =
    Firmament.Scheduler.create
      ~config:
        {
          Firmament.Scheduler.default_config with
          mode = Mcmf.Race.Fastest_sequential;
          (* This test asserts both solvers ran; the repair path would
             resolve quiet rounds without running either. *)
          incremental = false;
        }
      cluster
      ~policy:(fun ~drain net st -> Firmament.Policy_quincy.make ~drain net st)
  in
  Firmament.Scheduler.submit_job sched (simple_job ~jid:0 ~n:6 ~submit:0. ~duration:50.);
  let rounds = 3 in
  for i = 1 to rounds do
    ignore (Firmament.Scheduler.schedule sched ~now:(float_of_int i))
  done;
  checki "every round observes a win split" rounds
    (Telemetry.Metrics.hist_count m win - c0_win);
  checki "every round observes a wait split" rounds
    (Telemetry.Metrics.hist_count m wait - c0_wait);
  (* Both solvers ran each round (the loser budget-capped, not skipped):
     the per-round loser stats stay observable. *)
  let r = Firmament.Scheduler.schedule sched ~now:10. in
  checkb "relaxation stats present" true
    (r.Firmament.Scheduler.relaxation_stats <> None);
  checkb "cost scaling stats present" true
    (r.Firmament.Scheduler.cost_scaling_stats <> None)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "firmament"
    [
      ( "flow-network",
        [
          Alcotest.test_case "task lifecycle" `Quick test_fn_task_lifecycle;
          Alcotest.test_case "duplicate task rejected" `Quick test_fn_duplicate_task_rejected;
          Alcotest.test_case "machines and aggregators" `Quick test_fn_machine_and_aggregators;
          Alcotest.test_case "drain removal keeps balance" `Quick test_fn_drain_removal_keeps_balance;
          Alcotest.test_case "reroute direct moves flow" `Quick test_reroute_direct_moves_flow;
          Alcotest.test_case "reroute fails when unrouted" `Quick
            test_reroute_direct_unrouted_fails;
          Alcotest.test_case "prune keeps selected arcs" `Quick test_prune_task_arcs_keeps_selected;
          Alcotest.test_case "plain removal breaks balance" `Quick
            test_fn_plain_removal_breaks_balance;
        ] );
      ( "placement",
        [
          Alcotest.test_case "partial extraction" `Quick test_extract_partial_reads_incomplete_flow;
          Alcotest.test_case "structure validation" `Quick test_validate_structure_detects_drift;
          Alcotest.test_case "simple chain" `Quick test_extract_simple_chain;
          Alcotest.test_case "unscheduled task" `Quick test_extract_unscheduled_task;
          Alcotest.test_case "multi-hop aggregators" `Quick test_extract_multi_hop_aggregators;
          Alcotest.test_case "rejects infeasible flow" `Quick test_extract_rejects_infeasible;
          Alcotest.test_case "partial walk backtracks and refunds" `Quick
            test_extract_partial_backtracks_and_refunds;
          Alcotest.test_case "partial walk claims machine sink budget" `Quick
            test_extract_partial_machine_sink_budget;
          Alcotest.test_case "partial walk never oversubscribes" `Quick
            test_extract_partial_never_oversubscribes;
        ] );
      ( "placement-audit",
        qcheck
          [
            prop_extract_matches_flow_audit;
            prop_extract_partial_capacity_valid_on_pseudoflow;
            prop_extract_snapshot_matches_flow_audit;
          ] );
      ( "scheduler",
        [
          Alcotest.test_case "load spreading end to end" `Quick test_load_spread_end_to_end;
          Alcotest.test_case "oversubscription leaves tasks waiting" `Quick
            test_load_spread_oversubscription_waits;
          Alcotest.test_case "quincy prefers local data" `Quick test_quincy_prefers_local_data;
          Alcotest.test_case "quincy falls back when preferred full" `Quick
            test_quincy_falls_back_when_preferred_full;
          Alcotest.test_case "quincy service priority preempts" `Quick
            test_quincy_service_priority_preempts;
          Alcotest.test_case "network-aware avoids loaded machine" `Quick
            test_network_aware_avoids_loaded_machine;
          Alcotest.test_case "network-aware balances bandwidth" `Quick
            test_network_aware_balances_bandwidth;
          Alcotest.test_case "machine failure reschedules" `Quick test_machine_failure_reschedules;
          Alcotest.test_case "quincy mode matches firmament cost" `Quick
            test_scheduler_quincy_mode_matches_firmament_placements;
          Alcotest.test_case "parallel race mode end to end" `Quick
            test_scheduler_parallel_race_mode;
          Alcotest.test_case "quincy threshold controls arcs" `Quick
            test_quincy_threshold_controls_arc_count;
          Alcotest.test_case "network-aware bucket rounding" `Quick
            test_network_aware_bucket_rounding;
        ] );
      ( "degraded-rounds",
        [
          Alcotest.test_case "infeasible network fails gracefully" `Quick
            test_scheduler_infeasible_round_fails_gracefully;
          Alcotest.test_case "stopped round degrades to partial" `Quick
            test_scheduler_stopped_round_degrades_to_partial;
          Alcotest.test_case "mid-solve stop stays capacity-valid" `Quick
            test_scheduler_midsolve_stop_capacity_valid;
          Alcotest.test_case "config deadline" `Quick test_scheduler_config_deadline;
          Alcotest.test_case "partial round attributes phases" `Quick
            test_scheduler_phase_attribution;
        ] );
      ( "pipelined-rounds",
        [
          Alcotest.test_case "split round equals synchronous round" `Quick
            test_pipeline_equivalence_across_modes;
          Alcotest.test_case "stale placements reconciled at commit" `Quick
            test_pipeline_stale_reconciliation;
          Alcotest.test_case "one round in flight" `Quick test_pipeline_one_round_in_flight;
          Alcotest.test_case "machine restore reinstalls preferences" `Quick
            test_quincy_machine_restored_reinstalls_preferences;
          Alcotest.test_case "refresh quantizes wait-cost churn" `Quick
            test_quincy_refresh_wait_cost_bucketing;
        ] );
      ( "delta-extraction",
        Alcotest.test_case "solve win/wait sub-phase split" `Quick
          test_solve_win_wait_split
        :: qcheck [ prop_delta_extraction_matches_full ] );
    ]
