(* Telemetry unit tests: histogram bucket arithmetic, registry behaviour,
   span-ring wraparound and epochs, exporter well-formedness, and
   snapshot determinism across identical replays. *)

module M = Telemetry.Metrics
module T = Telemetry.Trace

let checki msg = Alcotest.check Alcotest.int msg
let checkb msg = Alcotest.check Alcotest.bool msg
let checks msg = Alcotest.check Alcotest.string msg

(* {1 Histogram buckets} *)

let test_bucket_zero_and_negative () =
  checki "zero lands in bucket 0" 0 (M.bucket_of ~buckets:64 0);
  checki "negative lands in bucket 0" 0 (M.bucket_of ~buckets:64 (-5));
  checki "bucket 0 upper bound" 0 (M.bucket_le ~buckets:64 0)

let test_bucket_log_boundaries () =
  (* Bucket b >= 1 covers [2^(b-1), 2^b - 1]. *)
  checki "1 -> bucket 1" 1 (M.bucket_of ~buckets:64 1);
  for b = 1 to 61 do
    let lo = 1 lsl (b - 1) and hi = (1 lsl b) - 1 in
    let expect = min b 62 in
    checki (Printf.sprintf "lower edge of bucket %d" b) expect
      (M.bucket_of ~buckets:64 lo);
    checki (Printf.sprintf "upper edge of bucket %d" b) expect
      (M.bucket_of ~buckets:64 hi)
  done;
  (* Inclusive upper bounds match the bucket_of edges. *)
  for b = 1 to 61 do
    checki
      (Printf.sprintf "bucket_le %d" b)
      ((1 lsl b) - 1)
      (M.bucket_le ~buckets:64 b)
  done;
  checki "overflow bucket bound is max_int" max_int (M.bucket_le ~buckets:64 63)

let test_bucket_monotonic () =
  (* bucket_of is monotone in the value: probe around every power of two. *)
  let values = ref [ 0; max_int ] in
  for e = 0 to 61 do
    let p = 1 lsl e in
    values := (p - 1) :: p :: (p + 1) :: !values
  done;
  let values = List.sort_uniq compare !values in
  let prev = ref (-1) in
  List.iter
    (fun v ->
      let b = M.bucket_of ~buckets:64 v in
      checkb (Printf.sprintf "monotone at %d" v) true (b >= !prev);
      prev := b)
    values

let test_bucket_overflow_clamp () =
  (* A small histogram clamps everything past its range into its last
     bucket instead of dropping or wrapping. *)
  let reg = M.create () in
  let h = M.histogram reg ~buckets:8 "clamp_test" in
  M.observe reg h 0;
  M.observe reg h 1;
  M.observe reg h (1 lsl 20);
  M.observe reg h max_int;
  checki "count" 4 (M.hist_count reg h);
  checki "zero in bucket 0" 1 (M.hist_bucket reg h 0);
  checki "one in bucket 1" 1 (M.hist_bucket reg h 1);
  checki "overflow clamped to last bucket" 2 (M.hist_bucket reg h 7);
  checki "clamped bucket_of agrees" 7 (M.bucket_of ~buckets:8 (1 lsl 20));
  checki "sum keeps exact values" (1 + (1 lsl 20) + max_int) (M.hist_sum reg h)

let test_histogram_observe () =
  let reg = M.create () in
  let h = M.histogram reg "obs_test" in
  List.iter (M.observe reg h) [ 1; 2; 3; 4; 1000 ];
  checki "count" 5 (M.hist_count reg h);
  checki "sum" 1010 (M.hist_sum reg h);
  checki "bucket of 1" 1 (M.hist_bucket reg h 1);
  (* 2..3 share bucket 2 *)
  checki "bucket of 2-3" 2 (M.hist_bucket reg h 2);
  checki "bucket of 4" 1 (M.hist_bucket reg h 3);
  checki "bucket of 1000" 1 (M.hist_bucket reg h 10)

(* {1 Registry} *)

let test_registration_idempotent () =
  let reg = M.create () in
  let a = M.counter reg "foo_total" in
  let b = M.counter reg "foo_total" in
  checki "same id for same name" a b;
  checkb "kind clash raises" true
    (try
       ignore (M.gauge reg "foo_total");
       false
     with Invalid_argument _ -> true);
  checkb "invalid name raises" true
    (try
       ignore (M.counter reg "bad name!");
       false
     with Invalid_argument _ -> true)

let test_counter_gauge_ops () =
  let reg = M.create () in
  let c = M.counter reg "ops_total" in
  let g = M.gauge reg "level" in
  M.incr reg c;
  M.incr reg c;
  M.add reg c 5;
  M.set reg g 42;
  M.set reg g 17;
  checki "counter accumulates" 7 (M.value reg c);
  checki "gauge overwrites" 17 (M.value reg g)

let test_reset_keeps_registrations () =
  let reg = M.create () in
  let c = M.counter reg "reset_total" in
  let h = M.histogram reg ~buckets:4 "reset_hist" in
  M.incr reg c;
  M.observe reg h 3;
  M.reset reg;
  checki "counter zeroed" 0 (M.value reg c);
  checki "histogram zeroed" 0 (M.hist_count reg h);
  checkb "registration survives" true (M.find reg "reset_total" = Some c);
  M.incr reg c;
  checki "still usable" 1 (M.value reg c)

(* {1 Span ring} *)

let test_ring_wraparound () =
  let ring = T.create ~capacity:16 () in
  let p = T.register ring "phase" in
  for i = 0 to 39 do
    T.span ring ~phase:p ~t0:i ~t1:(i + 1)
  done;
  checki "capacity" 16 (T.capacity ring);
  checki "recorded counts everything" 40 (T.recorded ring);
  checki "length capped at capacity" 16 (T.length ring);
  let seen = ref [] in
  T.iter_recent ring (fun ~phase:_ ~round:_ ~t0 ~t1:_ -> seen := t0 :: !seen);
  let seen = List.rev !seen in
  checki "iterates retained spans" 16 (List.length seen);
  (* Oldest-first, and only the most recent 16 survive the wrap. *)
  Alcotest.(check (list int)) "keeps newest, oldest-first" (List.init 16 (fun i -> 24 + i)) seen

let test_ring_round_epochs () =
  let ring = T.create ~capacity:16 () in
  let p = T.register ring "phase" in
  checki "epoch starts at 0" 0 (T.round ring);
  T.span ring ~phase:p ~t0:0 ~t1:1;
  T.new_round ring;
  T.span ring ~phase:p ~t0:1 ~t1:2;
  T.new_round ring;
  T.span ring ~phase:p ~t0:2 ~t1:3;
  checki "epoch advanced" 2 (T.round ring);
  let rounds = ref [] in
  T.iter_recent ring (fun ~phase:_ ~round ~t0:_ ~t1:_ -> rounds := round :: !rounds);
  Alcotest.(check (list int)) "spans stamped with their round" [ 2; 1; 0 ] !rounds;
  T.reset ring;
  checki "reset drops spans" 0 (T.length ring);
  checki "reset rewinds the epoch" 0 (T.round ring);
  checks "registrations survive reset" "phase" (T.phase_name ring p)

(* {1 Exporters} *)

let mk_populated_registry () =
  let reg = M.create () in
  let c = M.counter reg ~help:"a counter" "exp_ops_total" in
  let g = M.gauge reg "exp_level" in
  let h = M.histogram reg ~help:"a histogram" ~buckets:6 "exp_dur_ns" in
  let h2 = M.histogram reg "exp_empty_ns" in
  ignore h2;
  M.add reg c 3;
  M.set reg g (-4);
  List.iter (M.observe reg h) [ 0; 1; 7; 1 lsl 40 ];
  reg

let test_prometheus_well_formed () =
  let reg = mk_populated_registry () in
  let out = Format.asprintf "%a" Telemetry.Export.prometheus reg in
  let lines = String.split_on_char '\n' out in
  let series = Hashtbl.create 64 and types = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if line = "" || String.length line >= 7 && String.sub line 0 7 = "# HELP " then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        let name = List.nth (String.split_on_char ' ' line) 2 in
        checkb ("unique TYPE for " ^ name) false (Hashtbl.mem types name);
        Hashtbl.replace types name ()
      end
      else
        match String.index_opt line ' ' with
        | None -> Alcotest.failf "malformed line: %S" line
        | Some i ->
            let key = String.sub line 0 i in
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            checkb ("unique series " ^ key) false (Hashtbl.mem series key);
            Hashtbl.replace series key ();
            checkb ("integer value in " ^ line) true
              (match int_of_string_opt v with Some _ -> true | None -> false))
    lines;
  checkb "counter TYPE present" true (Hashtbl.mem types "exp_ops_total");
  checkb "histogram TYPE present" true (Hashtbl.mem types "exp_dur_ns");
  checkb "+Inf bucket present" true
    (Hashtbl.mem series "exp_dur_ns_bucket{le=\"+Inf\"}");
  (* Cumulative buckets end at the total count. *)
  let find_value key =
    let v = ref None in
    List.iter
      (fun line ->
        match String.index_opt line ' ' with
        | Some i when String.sub line 0 i = key ->
            v := int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1))
        | _ -> ())
      lines;
    match !v with Some v -> v | None -> Alcotest.failf "missing series %s" key
  in
  checki "+Inf cumulative equals count"
    (find_value "exp_dur_ns_count")
    (find_value "exp_dur_ns_bucket{le=\"+Inf\"}")

let test_json_lines_shape () =
  let reg = mk_populated_registry () in
  let out = Format.asprintf "%a" Telemetry.Export.json_lines reg in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  checki "one line per metric" 4 (List.length lines);
  List.iter
    (fun l ->
      checkb ("object line: " ^ l) true
        (String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_summary_renders () =
  let reg = mk_populated_registry () in
  let out = Format.asprintf "%a" (Telemetry.Export.pp_summary ?pp_duration:None) reg in
  checkb "mentions every metric" true
    (List.for_all (contains out) [ "exp_ops_total"; "exp_level"; "exp_dur_ns" ])

(* {1 Clock} *)

let test_clock_monotonic () =
  let a = Telemetry.Clock.now_ns () in
  let b = Telemetry.Clock.now_ns () in
  checkb "clock never goes backward" true (b >= a);
  checkb "plausible magnitude" true (a > 0);
  checki "ns_of_s round trip" 1_500_000_000 (Telemetry.Clock.ns_of_s 1.5);
  checkb "s_of_ns round trip" true (abs_float (Telemetry.Clock.s_of_ns 1_500_000_000 -. 1.5) < 1e-9)

let test_deadline_stop_monotonic () =
  (* deadline_stop rides the shared monotonic clock: zero fires at the
     first poll, a generous deadline does not. *)
  let s0 = Mcmf.Solver_intf.deadline_stop 0. in
  checkb "zero deadline fires immediately" true (s0 ());
  let s60 = Mcmf.Solver_intf.deadline_stop 60. in
  checkb "generous deadline does not fire" false (s60 ())

(* {1 Snapshot determinism} *)

let test_snapshot_determinism () =
  (* Two identical replays must leave identical counter values in the
     global registry: the counters measure algorithmic work, which is
     deterministic for a single-solver mode and fixed solver time.
     (Duration histograms are wall-clock-dependent and excluded.) *)
  let trace =
    Cluster.Trace.generate
      {
        (Cluster.Trace.default_params ~machines:20 ()) with
        target_utilization = 0.7;
        horizon_s = 5.;
        seed = 7;
      }
  in
  let config =
    {
      Dcsim.Replay.default_config with
      scheduler =
        {
          Firmament.Scheduler.default_config with
          mode = Mcmf.Race.Relaxation_only;
        };
      solver_time = `Fixed 0.001;
      max_rounds = Some 40;
    }
  in
  let counters () =
    List.filter_map
      (fun (v : M.view) ->
        match v.kind with
        | M.Counter -> Some (v.name, v.data.(0))
        | M.Gauge | M.Histogram -> None)
      (M.views (M.global ()))
  in
  M.reset (M.global ());
  T.reset (T.global ());
  ignore (Dcsim.Replay.run config trace);
  let first = counters () in
  M.reset (M.global ());
  T.reset (T.global ());
  ignore (Dcsim.Replay.run config trace);
  let second = counters () in
  checkb "replay did some work" true
    (List.exists (fun (_, v) -> v > 0) first);
  Alcotest.(check (list (pair string int))) "identical counter snapshots" first second

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "zero and negative" `Quick test_bucket_zero_and_negative;
          Alcotest.test_case "log2 boundaries" `Quick test_bucket_log_boundaries;
          Alcotest.test_case "monotonicity" `Quick test_bucket_monotonic;
          Alcotest.test_case "overflow clamp" `Quick test_bucket_overflow_clamp;
          Alcotest.test_case "observe count/sum" `Quick test_histogram_observe;
        ] );
      ( "registry",
        [
          Alcotest.test_case "idempotent registration" `Quick test_registration_idempotent;
          Alcotest.test_case "counter and gauge ops" `Quick test_counter_gauge_ops;
          Alcotest.test_case "reset keeps registrations" `Quick
            test_reset_keeps_registrations;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "round epochs" `Quick test_ring_round_epochs;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus well-formed" `Quick test_prometheus_well_formed;
          Alcotest.test_case "json lines shape" `Quick test_json_lines_shape;
          Alcotest.test_case "summary renders" `Quick test_summary_renders;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "deadline_stop" `Quick test_deadline_stop_monotonic;
        ] );
      ( "determinism",
        [ Alcotest.test_case "identical replays, identical counters" `Quick
            test_snapshot_determinism ] );
    ]
