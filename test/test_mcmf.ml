(* Cross-checked tests for the MCMF solver suite: every algorithm must
   agree with every other (and with the optimality validators) on optimal
   cost, feasibility detection, and incremental re-optimization. *)

module G = Flowgraph.Graph
module Validate = Flowgraph.Validate
module Dimacs = Flowgraph.Dimacs
module S = Mcmf.Solver_intf

let checki msg = Alcotest.check Alcotest.int msg
let checkb msg = Alcotest.check Alcotest.bool msg

let outcome_t =
  Alcotest.testable
    (fun ppf o -> S.pp_outcome ppf o)
    (fun a b -> a = b)

type algorithm = {
  name : string;
  run : G.t -> S.stats;
}

let algorithms =
  [
    { name = "cycle-canceling"; run = (fun g -> Mcmf.Cycle_canceling.solve g) };
    { name = "ssp"; run = (fun g -> Mcmf.Ssp.solve g) };
    {
      name = "cost-scaling";
      run = (fun g -> Mcmf.Cost_scaling.solve (Mcmf.Cost_scaling.create ()) g);
    };
    {
      name = "cost-scaling-alpha9";
      run = (fun g -> Mcmf.Cost_scaling.solve (Mcmf.Cost_scaling.create ~alpha:9 ()) g);
    };
    { name = "relaxation"; run = (fun g -> Mcmf.Relaxation.solve g) };
    {
      name = "relaxation-no-ap";
      run = (fun g -> Mcmf.Relaxation.solve ~arc_prioritization:false g);
    };
  ]

(* {1 Hand instances} *)

(* Two sources, two paths of different cost, tight capacities: the optimum
   is forced to split flow and its cost is computable by hand. *)
let diamond () =
  let g = G.create () in
  let s1 = G.add_node g ~supply:3 in
  let s2 = G.add_node g ~supply:2 in
  let mid = G.add_node g ~supply:0 in
  let t = G.add_node g ~supply:(-5) in
  ignore (G.add_arc g ~src:s1 ~dst:mid ~cost:1 ~cap:2);
  ignore (G.add_arc g ~src:s1 ~dst:t ~cost:5 ~cap:3);
  ignore (G.add_arc g ~src:s2 ~dst:mid ~cost:2 ~cap:2);
  ignore (G.add_arc g ~src:s2 ~dst:t ~cost:4 ~cap:2);
  ignore (G.add_arc g ~src:mid ~dst:t ~cost:1 ~cap:3);
  g

(* Optimal: s1 sends 2 via mid (cost 1+1 each) and 1 direct (5);
   mid's capacity to t is 3, so s2 sends 1 via mid (2+1) and 1 direct (4).
   Total = 2*2 + 5 + 3 + 4 = 16. *)
let diamond_optimal_cost = 16

(* The paper's Figure 5 flow network: five tasks of two jobs, four
   machines, per-job unscheduled aggregators, one sink. Unit capacities on
   task arcs; T0 tasks pay 5 to stay unscheduled, T1 tasks pay 7. Task
   preference costs chosen so exactly one task (T01) stays unscheduled when
   machines have one slot each, as in the figure. *)
let figure5 () =
  let g = G.create () in
  let t00 = G.add_node g ~supply:1 in
  let t01 = G.add_node g ~supply:1 in
  let t02 = G.add_node g ~supply:1 in
  let t10 = G.add_node g ~supply:1 in
  let t11 = G.add_node g ~supply:1 in
  let m = Array.init 4 (fun _ -> G.add_node g ~supply:0) in
  let u0 = G.add_node g ~supply:0 in
  let u1 = G.add_node g ~supply:0 in
  let sink = G.add_node g ~supply:(-5) in
  let arc s d c cap = ignore (G.add_arc g ~src:s ~dst:d ~cost:c ~cap) in
  arc t00 m.(0) 2 1;
  arc t00 m.(1) 3 1;
  arc t01 m.(0) 1 1;
  arc t02 m.(1) 6 1;
  arc t02 m.(2) 4 1;
  arc t10 m.(2) 2 1;
  arc t10 m.(3) 1 1;
  arc t11 m.(3) 2 1;
  arc t00 u0 5 1;
  arc t01 u0 5 1;
  arc t02 u0 5 1;
  arc t10 u1 7 1;
  arc t11 u1 7 1;
  List.iter (fun mi -> arc mi sink 0 1) (Array.to_list m);
  arc u0 sink 0 3;
  arc u1 sink 0 2;
  (g, (t00, t01, t02, t10, t11), m, sink)

(* T00->M0 (2), T01 unscheduled (5), T02->M2... competition: T10 wants M3(1)
   and M2(2); T11 only M3(2). Best: T00->M0=2, T02->M1=6 or M2=4;
   T10->M2=2 or M3=1; T11->M3=2.
   Assign T02->M2(4) forces T10->M3(1) and T11 unscheduled(7): 2+5+4+1+7=19.
   Assign T02->M1(6), T10->M2(2), T11->M3(2), T01 unscheduled(5): 2+5+6+2+2=17.
   Assign T01->M0(1), T00->M1(3), T02->M2(4), T10->M3(1), T11 unsched(7): 16.
   Assign T01->M0(1), T00->M1(3), T02 unsched(5), T10->M2(2), T11->M3(2): 13. *)
let figure5_optimal_cost = 13

let test_diamond_all_algorithms () =
  List.iter
    (fun alg ->
      let g = diamond () in
      let st = alg.run g in
      Alcotest.check outcome_t (alg.name ^ " outcome") S.Optimal st.S.outcome;
      checki (alg.name ^ " cost") diamond_optimal_cost (G.total_cost g);
      checkb (alg.name ^ " valid") true (Validate.is_optimal g))
    algorithms

let test_figure5_all_algorithms () =
  List.iter
    (fun alg ->
      let g, _, _, _ = figure5 () in
      let st = alg.run g in
      Alcotest.check outcome_t (alg.name ^ " outcome") S.Optimal st.S.outcome;
      checki (alg.name ^ " cost") figure5_optimal_cost (G.total_cost g);
      checkb (alg.name ^ " valid") true (Validate.is_optimal g))
    algorithms

let test_figure5_placements () =
  (* The min-cost solution leaves exactly one task unscheduled. *)
  let g, (t00, t01, t02, t10, t11), m, _ = figure5 () in
  ignore (Mcmf.Relaxation.solve g);
  let scheduled t =
    let placed = ref false in
    G.iter_out g t (fun a ->
        if G.is_forward a && G.flow g a = 1 && Array.exists (fun x -> x = G.dst g a) m then
          placed := true);
    !placed
  in
  let placements = List.map scheduled [ t00; t01; t02; t10; t11 ] in
  checki "exactly four scheduled" 4
    (List.length (List.filter Fun.id placements))

let test_infeasible_detected () =
  (* A source with demand unreachable within capacity. *)
  List.iter
    (fun alg ->
      let g = G.create () in
      let s = G.add_node g ~supply:5 in
      let t = G.add_node g ~supply:(-5) in
      ignore (G.add_arc g ~src:s ~dst:t ~cost:1 ~cap:2);
      let st = alg.run g in
      Alcotest.check outcome_t (alg.name ^ " infeasible") S.Infeasible st.S.outcome)
    algorithms

let test_empty_graph () =
  List.iter
    (fun alg ->
      let g = G.create () in
      let st = alg.run g in
      Alcotest.check outcome_t (alg.name ^ " empty optimal") S.Optimal st.S.outcome)
    algorithms

let test_zero_supply_graph () =
  (* No supply: the zero flow must be recognized optimal even with
     tempting negative arcs absent; with a negative arc, flow circulates
     only if a negative cycle exists. *)
  List.iter
    (fun alg ->
      let g = G.create () in
      let a = G.add_node g ~supply:0 in
      let b = G.add_node g ~supply:0 in
      ignore (G.add_arc g ~src:a ~dst:b ~cost:3 ~cap:4);
      let st = alg.run g in
      Alcotest.check outcome_t (alg.name ^ " outcome") S.Optimal st.S.outcome;
      checki (alg.name ^ " cost") 0 (G.total_cost g))
    algorithms

let test_negative_arc_costs () =
  (* Negative arcs must be exploited: sending via the negative arc is
     cheaper despite a longer path. *)
  List.iter
    (fun alg ->
      let g = G.create () in
      let s = G.add_node g ~supply:1 in
      let v = G.add_node g ~supply:0 in
      let t = G.add_node g ~supply:(-1) in
      ignore (G.add_arc g ~src:s ~dst:t ~cost:1 ~cap:1);
      ignore (G.add_arc g ~src:s ~dst:v ~cost:2 ~cap:1);
      ignore (G.add_arc g ~src:v ~dst:t ~cost:(-4) ~cap:1);
      let st = alg.run g in
      Alcotest.check outcome_t (alg.name ^ " outcome") S.Optimal st.S.outcome;
      checki (alg.name ^ " cost") (-2) (G.total_cost g))
    algorithms

let test_negative_cycle_in_input () =
  (* A zero-supply graph containing a negative cycle: optimal flow
     saturates the cycle. Cost of cycle: 1 - 3 = -2 per unit, cap 2. *)
  List.iter
    (fun alg ->
      let g = G.create () in
      let a = G.add_node g ~supply:0 in
      let b = G.add_node g ~supply:0 in
      ignore (G.add_arc g ~src:a ~dst:b ~cost:1 ~cap:2);
      ignore (G.add_arc g ~src:b ~dst:a ~cost:(-3) ~cap:2);
      let st = alg.run g in
      Alcotest.check outcome_t (alg.name ^ " outcome") S.Optimal st.S.outcome;
      checki (alg.name ^ " cost") (-4) (G.total_cost g);
      checkb (alg.name ^ " optimal") true (Validate.is_optimal g))
    algorithms

(* {1 Random cross-checking} *)

(* Generate a feasible instance: [k] sources, one sink, a backbone arc from
   each source to the sink (guaranteeing feasibility) plus random arcs. *)
let random_instance (seed : int) =
  let rng = Random.State.make [| seed |] in
  let g = G.create () in
  let n = 4 + Random.State.int rng 12 in
  let nodes = Array.init n (fun _ -> G.add_node g ~supply:0) in
  let sink = nodes.(n - 1) in
  let total = ref 0 in
  for i = 0 to n - 2 do
    if Random.State.bool rng then begin
      let s = 1 + Random.State.int rng 5 in
      G.set_supply g nodes.(i) s;
      total := !total + s;
      (* Backbone: expensive but guarantees feasibility. *)
      ignore (G.add_arc g ~src:nodes.(i) ~dst:sink ~cost:(50 + Random.State.int rng 50) ~cap:s)
    end
  done;
  G.set_supply g sink (- !total);
  let arcs = n * 3 in
  for _ = 1 to arcs do
    let i = Random.State.int rng n and j = Random.State.int rng n in
    if i <> j then
      ignore
        (G.add_arc g ~src:nodes.(i) ~dst:nodes.(j)
           ~cost:(Random.State.int rng 41 - 5)
           ~cap:(Random.State.int rng 8))
  done;
  g

(* One instance per seed, cycling through all three NETGEN families so the
   agreement property exercises transportation, grid and scheduling shapes
   rather than a single ad-hoc topology. *)
let netgen_instance (seed : int) =
  let s = seed / 3 in
  let inst =
    match seed mod 3 with
    | 0 ->
        Flowgraph.Netgen.transportation
          ~sources:(3 + (s mod 8))
          ~sinks:(2 + (s mod 4))
          ~seed ()
    | 1 -> Flowgraph.Netgen.grid ~width:(3 + (s mod 5)) ~height:(2 + (s mod 4)) ~seed ()
    | _ ->
        Flowgraph.Netgen.scheduling
          ~tasks:(5 + (s mod 25))
          ~machines:(3 + (s mod 6))
          ~seed ()
  in
  inst.Flowgraph.Netgen.graph

(* Cost perturbations and capacity increases: arbitrary on any feasible
   instance (costs stay non-negative, capacity never shrinks, so the
   feasibility backbone survives). *)
let mutation_burst ~mseed g =
  let rng = Random.State.make [| 0x6d7574; mseed |] in
  let arcs = ref [] in
  G.iter_arcs g (fun a -> arcs := a :: !arcs);
  List.iter
    (fun a ->
      match Random.State.int rng 3 with
      | 0 -> G.set_cost g a (max 0 (G.cost g a + Random.State.int rng 21 - 5))
      | 1 -> G.set_capacity g a (G.capacity g a + Random.State.int rng 4)
      | _ -> ())
    !arcs

let prop_all_algorithms_agree =
  QCheck.Test.make
    ~name:"all algorithms agree on NETGEN families; incremental matches after burst"
    ~count:90
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      (* Phase 1: every algorithm, from scratch, on the same instance. *)
      let reference = ref None in
      let scratch_ok =
        List.for_all
          (fun alg ->
            let g = netgen_instance seed in
            let st = alg.run g in
            if st.S.outcome <> S.Optimal then false
            else if not (Validate.is_optimal g) then false
            else begin
              let c = G.total_cost g in
              match !reference with
              | None ->
                  reference := Some c;
                  true
              | Some c' -> c = c'
            end)
          algorithms
      in
      scratch_ok
      && begin
           (* Phase 2: warm incremental re-solves after a mutation burst
              must match a from-scratch solve of the mutated instance. *)
           let g_ref = netgen_instance seed in
           mutation_burst ~mseed:seed g_ref;
           let s_ref = Mcmf.Ssp.solve g_ref in
           let cs = Mcmf.Cost_scaling.create ~alpha:4 () in
           let g_cs = netgen_instance seed in
           ignore (Mcmf.Cost_scaling.solve cs g_cs);
           mutation_burst ~mseed:seed g_cs;
           let s_cs = Mcmf.Cost_scaling.solve ~incremental:true cs g_cs in
           let g_rx = netgen_instance seed in
           ignore (Mcmf.Relaxation.solve g_rx);
           mutation_burst ~mseed:seed g_rx;
           let s_rx = Mcmf.Relaxation.solve ~incremental:true g_rx in
           s_ref.S.outcome = S.Optimal
           && s_cs.S.outcome = S.Optimal
           && s_rx.S.outcome = S.Optimal
           && Validate.is_optimal g_cs && Validate.is_optimal g_rx
           && G.total_cost g_cs = G.total_cost g_ref
           && G.total_cost g_rx = G.total_cost g_ref
         end)

let prop_incremental_cost_scaling_matches =
  (* Solve, mutate randomly, re-solve incrementally; the incremental result
     must match a from-scratch solve of the mutated graph. *)
  QCheck.Test.make ~name:"incremental cost scaling = from scratch" ~count:80
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, mseed) ->
      let st = Mcmf.Cost_scaling.create ~alpha:4 () in
      let g = random_instance seed in
      let s1 = Mcmf.Cost_scaling.solve st g in
      if s1.S.outcome <> S.Optimal then QCheck.assume_fail ()
      else begin
        (* Random mutations: cost and capacity changes on existing arcs. *)
        let rng = Random.State.make [| mseed |] in
        let arcs = ref [] in
        G.iter_arcs g (fun a -> arcs := a :: !arcs);
        List.iter
          (fun a ->
            match Random.State.int rng 4 with
            | 0 -> G.set_cost g a (Random.State.int rng 41 - 5)
            | 1 -> G.set_capacity g a (G.capacity g a + Random.State.int rng 4)
            | 2 ->
                (* Never shrink a backbone arc below its source's supply:
                   keep the instance feasible. *)
                if G.cost g a < 50 then
                  G.set_capacity g a (max 0 (G.capacity g a - Random.State.int rng 3))
            | _ -> ())
          !arcs;
        let g_scratch = G.copy g in
        let s2 = Mcmf.Cost_scaling.solve ~incremental:true st g in
        let s3 = Mcmf.Cost_scaling.solve (Mcmf.Cost_scaling.create ()) g_scratch in
        s2.S.outcome = S.Optimal && s3.S.outcome = S.Optimal
        && G.total_cost g = G.total_cost g_scratch
        && Validate.is_optimal g
      end)

let prop_incremental_relaxation_matches =
  QCheck.Test.make ~name:"incremental relaxation = from scratch" ~count:80
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, mseed) ->
      let g = random_instance seed in
      let s1 = Mcmf.Relaxation.solve g in
      if s1.S.outcome <> S.Optimal then QCheck.assume_fail ()
      else begin
        let rng = Random.State.make [| mseed |] in
        let arcs = ref [] in
        G.iter_arcs g (fun a -> arcs := a :: !arcs);
        List.iter
          (fun a ->
            match Random.State.int rng 4 with
            | 0 -> G.set_cost g a (Random.State.int rng 41 - 5)
            | 1 -> G.set_capacity g a (G.capacity g a + Random.State.int rng 4)
            | _ -> ())
          !arcs;
        let g_scratch = G.copy g in
        let s2 = Mcmf.Relaxation.solve ~incremental:true g in
        let s3 = Mcmf.Relaxation.solve g_scratch in
        s2.S.outcome = S.Optimal && s3.S.outcome = S.Optimal
        && G.total_cost g = G.total_cost g_scratch
        && Validate.is_optimal g
      end)

let prop_price_refine_restores_slackness =
  QCheck.Test.make ~name:"price refine yields reduced-cost-optimal potentials" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = random_instance seed in
      let st = Mcmf.Relaxation.solve g in
      if st.S.outcome <> S.Optimal then QCheck.assume_fail ()
      else begin
        (* Scramble potentials, then refine. *)
        G.iter_nodes g (fun n -> G.set_potential g n (((n * 7919) mod 23) - 11));
        Mcmf.Price_refine.run g && Validate.is_reduced_cost_optimal g
      end)

let prop_price_refine_refuses_nonoptimal =
  QCheck.Test.make ~name:"price refine refuses non-optimal flow" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = random_instance seed in
      (* Find a negative cycle opportunity: route flow expensively by hand
         along a backbone arc while a cheaper alternative exists. This is
         just zero flow + an added negative cycle. *)
      let a = G.add_node g ~supply:0 in
      let b = G.add_node g ~supply:0 in
      ignore (G.add_arc g ~src:a ~dst:b ~cost:1 ~cap:1);
      ignore (G.add_arc g ~src:b ~dst:a ~cost:(-2) ~cap:1);
      not (Mcmf.Price_refine.run g))

(* {1 Golden DIMACS instance} *)

let test_golden_dimacs_instance () =
  (* A checked-in assignment-shaped instance with a known optimum (36);
     exercises file loading plus every solver on identical input. *)
  let path = "data/netgen_8.min" in
  List.iter
    (fun alg ->
      let g, _ = Dimacs.load path in
      let st = alg.run g in
      Alcotest.check outcome_t (alg.name ^ " outcome") S.Optimal st.S.outcome;
      checki (alg.name ^ " golden cost") 36 (G.total_cost g);
      checkb (alg.name ^ " valid") true (Validate.is_optimal g))
    algorithms

(* {1 Structural edge cases} *)

let test_parallel_arcs () =
  (* Two arcs between the same pair with different costs: cheap one fills
     first. *)
  List.iter
    (fun alg ->
      let g = G.create () in
      let s = G.add_node g ~supply:3 in
      let t = G.add_node g ~supply:(-3) in
      let cheap = G.add_arc g ~src:s ~dst:t ~cost:1 ~cap:2 in
      let dear = G.add_arc g ~src:s ~dst:t ~cost:5 ~cap:2 in
      let st = alg.run g in
      Alcotest.check outcome_t (alg.name ^ " outcome") S.Optimal st.S.outcome;
      checki (alg.name ^ " cheap saturated") 2 (G.flow g cheap);
      checki (alg.name ^ " dear partial") 1 (G.flow g dear);
      checki (alg.name ^ " cost") 7 (G.total_cost g))
    algorithms

let test_negative_self_loop () =
  (* A negative-cost self loop must be saturated by the optimum (it lowers
     cost without moving supply). *)
  List.iter
    (fun alg ->
      let g = G.create () in
      let a = G.add_node g ~supply:0 in
      let loop = G.add_arc g ~src:a ~dst:a ~cost:(-3) ~cap:4 in
      let st = alg.run g in
      Alcotest.check outcome_t (alg.name ^ " outcome") S.Optimal st.S.outcome;
      checki (alg.name ^ " loop saturated") 4 (G.flow g loop);
      checki (alg.name ^ " cost") (-12) (G.total_cost g))
    algorithms

let test_zero_capacity_arcs_ignored () =
  List.iter
    (fun alg ->
      let g = G.create () in
      let s = G.add_node g ~supply:1 in
      let t = G.add_node g ~supply:(-1) in
      ignore (G.add_arc g ~src:s ~dst:t ~cost:0 ~cap:0);
      ignore (G.add_arc g ~src:s ~dst:t ~cost:7 ~cap:1);
      let st = alg.run g in
      Alcotest.check outcome_t (alg.name ^ " outcome") S.Optimal st.S.outcome;
      checki (alg.name ^ " cost") 7 (G.total_cost g))
    algorithms

let test_optimality_maintaining_algorithms_leave_valid_duals () =
  (* Relaxation and SSP maintain reduced-cost optimality (paper Table 2):
     their final potentials must certify the solution. *)
  List.iter
    (fun (name, solve) ->
      let g = diamond () in
      let st : S.stats = solve g in
      Alcotest.check outcome_t (name ^ " outcome") S.Optimal st.S.outcome;
      checkb (name ^ " reduced-cost optimal potentials") true
        (Validate.is_reduced_cost_optimal g))
    [
      ("relaxation", fun g -> Mcmf.Relaxation.solve g);
      ("ssp", fun g -> Mcmf.Ssp.solve g);
    ]

let prop_duals_certify_relaxation =
  QCheck.Test.make ~name:"relaxation potentials certify optimality" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = random_instance seed in
      let st = Mcmf.Relaxation.solve g in
      if st.S.outcome <> S.Optimal then QCheck.assume_fail ()
      else Validate.is_reduced_cost_optimal g)

let test_max_flow_routes_feasible () =
  let g = diamond () in
  checkb "feasible" true (Mcmf.Max_flow.route g);
  checkb "flow feasible" true (Validate.is_feasible g);
  (* Max-flow ignores costs: the result need not be optimal. *)
  let g2 = G.create () in
  let s = G.add_node g2 ~supply:5 in
  let t = G.add_node g2 ~supply:(-5) in
  ignore (G.add_arc g2 ~src:s ~dst:t ~cost:1 ~cap:3);
  checkb "infeasible detected" false (Mcmf.Max_flow.route g2)

(* {1 Generator-driven stress tests} *)

let netgen_cost instance alg =
  let g = instance.Flowgraph.Netgen.graph in
  let st = alg.run g in
  Alcotest.check outcome_t (alg.name ^ " outcome") S.Optimal st.S.outcome;
  checkb (alg.name ^ " valid") true (Validate.is_optimal g);
  G.total_cost g

let agree_on mk =
  match List.map (fun alg -> netgen_cost (mk ()) alg) algorithms with
  | [] -> ()
  | c :: rest -> List.iter (fun c' -> checki "same optimal cost" c c') rest

let test_netgen_transportation_agreement () =
  agree_on (fun () ->
      Flowgraph.Netgen.transportation ~sources:12 ~sinks:6 ~seed:3 ())

let test_netgen_grid_agreement () =
  agree_on (fun () -> Flowgraph.Netgen.grid ~width:6 ~height:4 ~seed:4 ())

let test_netgen_scheduling_agreement () =
  agree_on (fun () -> Flowgraph.Netgen.scheduling ~tasks:40 ~machines:8 ~seed:5 ())

let prop_netgen_grid_agreement =
  QCheck.Test.make ~name:"grid instances: relaxation = cost scaling" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let solve mk_alg =
        let inst = Flowgraph.Netgen.grid ~width:5 ~height:3 ~seed () in
        let st = mk_alg inst.Flowgraph.Netgen.graph in
        let ok =
          st.S.outcome = S.Optimal && Validate.is_optimal inst.Flowgraph.Netgen.graph
        in
        (ok, G.total_cost inst.Flowgraph.Netgen.graph)
      in
      let ok1, c1 = solve (fun g -> Mcmf.Relaxation.solve g) in
      let ok2, c2 =
        solve (fun g -> Mcmf.Cost_scaling.solve (Mcmf.Cost_scaling.create ~alpha:4 ()) g)
      in
      ok1 && ok2 && c1 = c2)

let prop_incremental_random_change_stream =
  (* Long-horizon incremental soak: a stream of random structural changes
     interleaved with incremental solves must stay in lockstep with
     from-scratch solves at every step. *)
  QCheck.Test.make ~name:"incremental lockstep under change streams" ~count:25
    QCheck.(pair (int_bound 100_000) (list_of_size Gen.(int_range 4 12) (int_bound 1_000)))
    (fun (seed, steps) ->
      let inst = Flowgraph.Netgen.scheduling ~tasks:20 ~machines:5 ~seed () in
      let g = inst.Flowgraph.Netgen.graph in
      let st = Mcmf.Cost_scaling.create ~alpha:4 () in
      let ok = ref ((Mcmf.Cost_scaling.solve st g).S.outcome = S.Optimal) in
      let rng = Random.State.make [| seed + 1 |] in
      List.iter
        (fun _step ->
          if !ok then begin
            (* Random change: cost or capacity tweak on a random live arc. *)
            let arcs = ref [] in
            G.iter_arcs g (fun a -> arcs := a :: !arcs);
            (match !arcs with
            | [] -> ()
            | l ->
                let a = List.nth l (Random.State.int rng (List.length l)) in
                if Random.State.bool rng then
                  G.set_cost g a (1 + Random.State.int rng 2_000)
                else G.set_capacity g a (Random.State.int rng 4));
            let g_scratch = G.copy g in
            let s_inc = Mcmf.Cost_scaling.solve ~incremental:true st g in
            let s_scr =
              Mcmf.Cost_scaling.solve (Mcmf.Cost_scaling.create ~alpha:4 ()) g_scratch
            in
            ok :=
              s_inc.S.outcome = S.Optimal && s_scr.S.outcome = S.Optimal
              && G.total_cost g = G.total_cost g_scratch
              && Validate.is_optimal g
          end)
        steps;
      !ok)

let prop_netgen_always_feasible =
  QCheck.Test.make ~name:"generated instances are feasible" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let feasible (i : Flowgraph.Netgen.instance) =
        Mcmf.Max_flow.route i.Flowgraph.Netgen.graph
      in
      feasible (Flowgraph.Netgen.transportation ~sources:6 ~sinks:3 ~seed ())
      && feasible (Flowgraph.Netgen.grid ~width:4 ~height:3 ~seed ())
      && feasible (Flowgraph.Netgen.scheduling ~tasks:15 ~machines:4 ~seed ()))

let test_race_prepare_noop_without_cost_scaling () =
  (* Relaxation-only mode never needs scaled potentials: prepare must not
     touch the graph. *)
  let race = Mcmf.Race.create ~mode:Mcmf.Race.Relaxation_only () in
  let g = diamond () in
  ignore (Mcmf.Relaxation.solve g);
  let before = List.init 4 (fun n -> G.potential g n) in
  Mcmf.Race.prepare race g;
  let after = List.init 4 (fun n -> G.potential g n) in
  Alcotest.(check (list int)) "potentials untouched" before after

let test_deadline_stop_fires_after_elapsed () =
  let stop = S.deadline_stop 0.005 in
  checkb "not immediately" false (stop ());
  Unix.sleepf 0.01;
  checkb "after deadline" true (stop ())

let test_either_stop_combines () =
  let fired = ref false in
  let stop = S.either_stop (fun () -> !fired) S.never_stop in
  checkb "neither" false (stop ());
  fired := true;
  checkb "first fires" true (stop ())

let test_cost_scaling_rejects_bad_alpha () =
  Alcotest.check_raises "alpha < 2" (Invalid_argument "Cost_scaling.create: alpha < 2")
    (fun () -> ignore (Mcmf.Cost_scaling.create ~alpha:1 ()))

(* {1 Race orchestration} *)

let test_race_sequential () =
  let race = Mcmf.Race.create ~mode:Mcmf.Race.Fastest_sequential () in
  let g = diamond () in
  Mcmf.Race.prepare race g;
  let r = Mcmf.Race.solve race g in
  checki "cost" diamond_optimal_cost (G.total_cost r.Mcmf.Race.graph);
  checkb "both stats present" true
    (r.Mcmf.Race.relaxation_stats <> None && r.Mcmf.Race.cost_scaling_stats <> None)

let test_race_parallel () =
  let race = Mcmf.Race.create ~mode:Mcmf.Race.Race_parallel () in
  let g = diamond () in
  let r = Mcmf.Race.solve race g in
  checki "cost" diamond_optimal_cost (G.total_cost r.Mcmf.Race.graph);
  Alcotest.check outcome_t "winner optimal" S.Optimal r.Mcmf.Race.stats.S.outcome

let test_race_modes_agree () =
  let costs =
    List.map
      (fun mode ->
        let race = Mcmf.Race.create ~mode () in
        let g = random_instance 42 in
        let r = Mcmf.Race.solve race g in
        G.total_cost r.Mcmf.Race.graph)
      Mcmf.Race.
        [
          Race_parallel; Fastest_sequential; Relaxation_only; Incremental_cost_scaling_only;
          Cost_scaling_scratch_only;
        ]
  in
  match costs with
  | c :: rest -> List.iter (fun c' -> checki "same cost" c c') rest
  | [] -> ()

let test_race_incremental_sequence () =
  (* Drive several change->prepare->solve cycles through the orchestrator,
     checking optimality at each step (the scheduler's usage pattern). *)
  let race = Mcmf.Race.create ~mode:Mcmf.Race.Fastest_sequential () in
  let g = ref (diamond ()) in
  let r = Mcmf.Race.solve race !g in
  g := r.Mcmf.Race.graph;
  for i = 1 to 5 do
    Mcmf.Race.prepare race !g;
    (* Add one more source each round. *)
    let s = G.add_node !g ~supply:1 in
    let sink = ref (-1) in
    G.iter_nodes !g (fun n -> if G.supply !g n < 0 then sink := n);
    G.set_supply !g !sink (G.supply !g !sink - 1);
    ignore (G.add_arc !g ~src:s ~dst:!sink ~cost:(3 + i) ~cap:1);
    let r = Mcmf.Race.solve race !g in
    g := r.Mcmf.Race.graph;
    checkb "optimal each round" true (Validate.is_optimal !g)
  done

let test_race_recycle_rounds_stay_optimal () =
  (* The scheduler's steady-state protocol: adopt the winner's graph, hand
     the displaced one back through [recycle], mutate, solve again. Rounds
     after the first reuse scratch slots via [copy_into]; every one must
     still be optimal and agree with a from-scratch reference solve. *)
  let race = Mcmf.Race.create ~mode:Mcmf.Race.Fastest_sequential () in
  let g = ref (diamond ()) in
  for i = 1 to 8 do
    Mcmf.Race.prepare race !g;
    let r = Mcmf.Race.solve race !g in
    Alcotest.check outcome_t "optimal" S.Optimal r.Mcmf.Race.stats.S.outcome;
    let old = !g in
    g := r.Mcmf.Race.graph;
    if old != !g then Mcmf.Race.recycle race old;
    checkb "round optimal" true (Validate.is_optimal !g);
    let reference = G.copy !g in
    G.reset_flow reference;
    ignore (Mcmf.Ssp.solve reference);
    checki "matches scratch reference" (G.total_cost reference) (G.total_cost !g);
    (* Perturb one arc cost so the next round has real work. *)
    let some_arc = ref (-1) in
    G.iter_arcs !g (fun a -> if !some_arc < 0 then some_arc := a);
    G.set_cost !g !some_arc (1 + ((i * 3) mod 7))
  done

let test_race_handed_out_graph_never_clobbered () =
  (* A result graph the caller has NOT recycled must stay untouched by
     later rounds: its slot is empty, so subsequent solves may not write
     into it. (This is what lets the scheduler keep reading placements
     while the next round runs.) *)
  let race = Mcmf.Race.create ~mode:Mcmf.Race.Fastest_sequential () in
  let r1 = Mcmf.Race.solve race (diamond ()) in
  let kept = r1.Mcmf.Race.graph in
  let cost1 = G.total_cost kept in
  checki "first round optimal cost" diamond_optimal_cost cost1;
  (* Run several further rounds on other instances without recycling. *)
  for seed = 1 to 3 do
    let inst = Flowgraph.Netgen.transportation ~sources:6 ~sinks:5 ~seed () in
    let r = Mcmf.Race.solve race inst.Flowgraph.Netgen.graph in
    checkb "later result is a different graph" true (r.Mcmf.Race.graph != kept)
  done;
  checki "kept graph unchanged" cost1 (G.total_cost kept);
  checkb "kept graph still optimal" true (Validate.is_optimal kept);
  (* Once recycled, the slot may be reused... *)
  Mcmf.Race.recycle race kept;
  Mcmf.Race.recycle race kept;
  (* ...and double-recycle above must have been a harmless no-op: a round
     solved now still takes two distinct working copies. *)
  let r = Mcmf.Race.solve race (diamond ()) in
  checki "post-recycle round optimal" diamond_optimal_cost
    (G.total_cost r.Mcmf.Race.graph)

let test_race_recycling_input_is_rejected () =
  (* Recycling the live input graph must not let a later [take] alias it:
     the slot guards compare physically against the input. *)
  let race = Mcmf.Race.create ~mode:Mcmf.Race.Relaxation_only () in
  let g = diamond () in
  Mcmf.Race.recycle race g;
  let r = Mcmf.Race.solve race g in
  checkb "working copy is not the input" true (r.Mcmf.Race.graph != g);
  checki "still optimal" diamond_optimal_cost (G.total_cost r.Mcmf.Race.graph);
  (* The input keeps its zero flow: the solver worked on a copy. *)
  checki "input untouched" 0 (G.total_cost g)

(* {1 Incremental flow repair} *)

(* A change-set burst richer than [mutation_burst]: cost perturbations,
   capacity increases {e and cuts}, plus a handful of brand-new arcs —
   the full shape of a scheduler round's deltas minus task add/remove
   (covered end-to-end by the fuzz harness). Capacity cuts may make the
   instance infeasible; callers must accept a [No_path] give-up exactly
   when a scratch solve is infeasible. *)
let repair_burst ~mseed g =
  let rng = Random.State.make [| 0x726570; mseed |] in
  let arcs = ref [] in
  G.iter_arcs g (fun a -> arcs := a :: !arcs);
  List.iter
    (fun a ->
      match Random.State.int rng 6 with
      | 0 -> G.set_cost g a (max 0 (G.cost g a + Random.State.int rng 21 - 10))
      | 1 -> G.set_capacity g a (G.capacity g a + Random.State.int rng 4)
      | 2 -> G.set_capacity g a (max 0 (G.capacity g a - Random.State.int rng 2))
      | _ -> ())
    !arcs;
  let nodes = ref [] in
  G.iter_nodes g (fun v -> nodes := v :: !nodes);
  let nodes = Array.of_list !nodes in
  let n = Array.length nodes in
  if n >= 2 then
    for _ = 1 to 1 + Random.State.int rng 4 do
      let i = Random.State.int rng n and j = Random.State.int rng n in
      if i <> j then
        ignore
          (G.add_arc g ~src:nodes.(i) ~dst:nodes.(j)
             ~cost:(Random.State.int rng 30)
             ~cap:(Random.State.int rng 6))
    done

let prop_incremental_repair_matches_full =
  (* The tentpole property: starting from a certified optimal solution,
     [Incremental.repair] after an arbitrary mutation burst must land on
     the same objective cost as a from-scratch solve of the mutated
     instance, feasible and optimal per the validators — across all
     three NETGEN families. When the burst makes the instance
     infeasible, repair must give up [No_path], never mis-certify. *)
  QCheck.Test.make ~name:"incremental repair = full solve on NETGEN after burst"
    ~count:120
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, mseed) ->
      let g = netgen_instance seed in
      let s1 = Mcmf.Relaxation.solve g in
      if s1.S.outcome <> S.Optimal then QCheck.assume_fail ()
      else if not (Mcmf.Price_refine.certified ~scale:1 g) then
        QCheck.Test.fail_report "relaxation optimum not dual-feasible"
      else begin
        repair_burst ~mseed g;
        let g_scratch = G.copy g in
        G.reset_flow g_scratch;
        let s_ref = Mcmf.Ssp.solve g_scratch in
        match Mcmf.Incremental.repair ~scale:1 ~budget:max_int g with
        | Mcmf.Incremental.Repaired st ->
            if s_ref.S.outcome <> S.Optimal then
              QCheck.Test.fail_report "repair certified an infeasible instance"
            else
              st.S.outcome = S.Optimal
              && G.total_cost g = G.total_cost g_scratch
              && Validate.is_feasible g && Validate.is_optimal g
        | Mcmf.Incremental.Gave_up Mcmf.Incremental.No_path ->
            (* Sound give-up only on genuinely unroutable change sets. *)
            s_ref.S.outcome = S.Infeasible
        | Mcmf.Incremental.Gave_up r ->
            QCheck.Test.fail_report
              ("repair gave up: " ^ Mcmf.Incremental.reason_name r)
      end)

let prop_race_repair_path_matches =
  (* Race-level integration: prepare on the adopted optimum, mutate, then
     submit with a delta budget — whatever path the orchestrator takes
     (repair or full race), the result must match a scratch solve. *)
  QCheck.Test.make ~name:"race with delta budget = scratch solve" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let race = Mcmf.Race.create ~mode:Mcmf.Race.Fastest_sequential () in
      let r1 = Mcmf.Race.solve race (netgen_instance seed) in
      if r1.Mcmf.Race.stats.S.outcome <> S.Optimal then QCheck.assume_fail ()
      else begin
        let g = r1.Mcmf.Race.graph in
        Mcmf.Race.prepare race g;
        mutation_burst ~mseed:(seed lxor 0x5eed) g;
        let g_scratch = G.copy g in
        G.reset_flow g_scratch;
        let s_ref = Mcmf.Ssp.solve g_scratch in
        let r2 = Mcmf.Race.solve ~delta_budget:1_000_000 race g in
        r2.Mcmf.Race.stats.S.outcome = S.Optimal
        && s_ref.S.outcome = S.Optimal
        && G.total_cost r2.Mcmf.Race.graph = G.total_cost g_scratch
        && Validate.is_optimal r2.Mcmf.Race.graph
      end)

let counter_value name =
  let m = Telemetry.Metrics.global () in
  match Telemetry.Metrics.find m name with
  | Some id -> Telemetry.Metrics.value m id
  | None -> 0

let test_race_repair_taken_and_telemetry () =
  (* The orchestrator must actually take the repair path on a quiet round
     following prepare on the adopted graph, report [winner = Repair]
     with both per-solver stats absent, and count it in telemetry. *)
  let repairs0 = counter_value "mcmf_race_wins_repair_total" in
  let race = Mcmf.Race.create ~mode:Mcmf.Race.Fastest_sequential () in
  let r1 = Mcmf.Race.solve race (diamond ()) in
  Alcotest.check outcome_t "round 1 optimal" S.Optimal r1.Mcmf.Race.stats.S.outcome;
  let g = r1.Mcmf.Race.graph in
  Mcmf.Race.prepare race g;
  (* Small perturbation: one arc cost bump. *)
  let some_arc = ref (-1) in
  G.iter_arcs g (fun a -> if !some_arc < 0 then some_arc := a);
  G.set_cost g !some_arc (G.cost g !some_arc + 2);
  let r2 = Mcmf.Race.solve ~delta_budget:64 race g in
  Alcotest.check outcome_t "repair round optimal" S.Optimal r2.Mcmf.Race.stats.S.outcome;
  checkb "winner is Repair" true (r2.Mcmf.Race.winner = Mcmf.Race.Repair);
  checkb "no per-solver stats on repair rounds" true
    (r2.Mcmf.Race.relaxation_stats = None && r2.Mcmf.Race.cost_scaling_stats = None);
  checkb "repair win counted" true
    (counter_value "mcmf_race_wins_repair_total" > repairs0);
  checkb "repaired graph optimal" true (Validate.is_optimal r2.Mcmf.Race.graph);
  (* Without a fresh prepare (or after a round that did not certify), the
     next delta-budget submit must fall back to the full race. *)
  let g2 = r2.Mcmf.Race.graph in
  let r3 = Mcmf.Race.solve ~delta_budget:64 race (G.copy g2) in
  checkb "no repair without prepare on that graph" true
    (r3.Mcmf.Race.winner <> Mcmf.Race.Repair)

let test_repair_give_up_reasons () =
  (* No_path: a single-arc instance whose only route is cut to zero. *)
  let g = G.create () in
  let s = G.add_node g ~supply:1 in
  let t = G.add_node g ~supply:(-1) in
  let a = G.add_arc g ~src:s ~dst:t ~cost:1 ~cap:1 in
  ignore (Mcmf.Ssp.solve g);
  checkb "solved" true (Validate.is_optimal g);
  G.set_capacity g a 0;
  (match Mcmf.Incremental.repair ~scale:1 ~budget:64 g with
  | Mcmf.Incremental.Gave_up Mcmf.Incremental.No_path -> ()
  | Mcmf.Incremental.Gave_up r ->
      Alcotest.failf "expected No_path, got %s" (Mcmf.Incremental.reason_name r)
  | Mcmf.Incremental.Repaired _ -> Alcotest.fail "repaired an unroutable cut");
  (* Oversized: a burst minting more excess nodes than the budget. *)
  let g = netgen_instance 9 in
  ignore (Mcmf.Relaxation.solve g);
  repair_burst ~mseed:9 g;
  (match Mcmf.Incremental.repair ~scale:1 ~budget:0 g with
  | Mcmf.Incremental.Gave_up Mcmf.Incremental.Oversized -> ()
  | Mcmf.Incremental.Gave_up r ->
      Alcotest.failf "expected Oversized, got %s" (Mcmf.Incremental.reason_name r)
  | Mcmf.Incremental.Repaired _ -> Alcotest.fail "budget 0 must not repair");
  (* Stopped: the stop callback fires before the first augmentation. *)
  let g = G.create () in
  let s = G.add_node g ~supply:2 in
  let t = G.add_node g ~supply:(-2) in
  let a = G.add_arc g ~src:s ~dst:t ~cost:1 ~cap:2 in
  let b = G.add_arc g ~src:s ~dst:t ~cost:3 ~cap:2 in
  ignore b;
  ignore (Mcmf.Ssp.solve g);
  G.set_capacity g a 1;
  (match Mcmf.Incremental.repair ~stop:(fun () -> true) ~scale:1 ~budget:64 g with
  | Mcmf.Incremental.Gave_up Mcmf.Incremental.Stopped_mid_repair -> ()
  | Mcmf.Incremental.Gave_up r ->
      Alcotest.failf "expected Stopped, got %s" (Mcmf.Incremental.reason_name r)
  | Mcmf.Incremental.Repaired _ -> Alcotest.fail "stop must abandon the repair")

let test_repair_no_change_round () =
  (* Zero changes: repair finds nothing to do and certifies immediately. *)
  let g = netgen_instance 5 in
  ignore (Mcmf.Relaxation.solve g);
  let cost = G.total_cost g in
  match Mcmf.Incremental.repair ~scale:1 ~budget:1 g with
  | Mcmf.Incremental.Repaired st ->
      Alcotest.check outcome_t "optimal" S.Optimal st.S.outcome;
      checki "cost unchanged" cost (G.total_cost g)
  | Mcmf.Incremental.Gave_up r ->
      Alcotest.failf "no-change repair gave up: %s" (Mcmf.Incremental.reason_name r)

let test_race_winner_only_escalation () =
  (* With k=1, period=2, ratio=0 the escalation pattern is deterministic:
     round 1 full race, rounds 2-3 winner-only (the skipped loser reports
     no stats), round 4 a forced periodic re-race, then winner-only
     again. Every round must stay optimal. *)
  let wo0 = counter_value "mcmf_race_winner_only_total" in
  let race =
    Mcmf.Race.create ~mode:Mcmf.Race.Fastest_sequential ~incremental:false
      ~winner_only_k:1 ~winner_only_period:2 ~winner_only_ratio:0.0 ()
  in
  let both (r : Mcmf.Race.result) =
    (r.Mcmf.Race.relaxation_stats <> None, r.Mcmf.Race.cost_scaling_stats <> None)
  in
  let round () =
    let r = Mcmf.Race.solve race (diamond ()) in
    Alcotest.check outcome_t "round optimal" S.Optimal r.Mcmf.Race.stats.S.outcome;
    checki "round cost" diamond_optimal_cost (G.total_cost r.Mcmf.Race.graph);
    Mcmf.Race.recycle race r.Mcmf.Race.graph;
    both r
  in
  let expect_full (rx, cs) label = checkb (label ^ ": both solvers ran") true (rx && cs) in
  let expect_wo (rx, cs) label =
    checkb (label ^ ": exactly one solver ran") true ((rx || cs) && not (rx && cs))
  in
  expect_full (round ()) "round 1";
  expect_wo (round ()) "round 2";
  expect_wo (round ()) "round 3";
  expect_full (round ()) "round 4";
  expect_wo (round ()) "round 5";
  checki "winner-only rounds counted" 3
    (counter_value "mcmf_race_winner_only_total" - wo0);
  (* k=0 disables the escalation entirely. *)
  let race =
    Mcmf.Race.create ~mode:Mcmf.Race.Fastest_sequential ~incremental:false
      ~winner_only_k:0 ~winner_only_ratio:0.0 ()
  in
  for i = 1 to 4 do
    let r = Mcmf.Race.solve race (diamond ()) in
    checkb (Printf.sprintf "k=0 round %d runs both" i) true
      (r.Mcmf.Race.relaxation_stats <> None && r.Mcmf.Race.cost_scaling_stats <> None);
    Mcmf.Race.recycle race r.Mcmf.Race.graph
  done

(* {1 Degraded outcomes: infeasible and stopped races} *)

let all_race_modes =
  Mcmf.Race.
    [
      Race_parallel;
      Fastest_sequential;
      Relaxation_only;
      Incremental_cost_scaling_only;
      Cost_scaling_scratch_only;
    ]

let mode_name =
  Mcmf.Race.(
    function
    | Race_parallel -> "race"
    | Fastest_sequential -> "fastest"
    | Relaxation_only -> "relaxation"
    | Incremental_cost_scaling_only -> "incremental-cs"
    | Cost_scaling_scratch_only -> "quincy-cs")

let test_race_two_solver_stats_always_populated () =
  (* Whenever both racers actually ran, both stats fields must be [Some] —
     including rounds where the loser was cancelled or the whole race was
     deadline-stopped — so winner/loser margins stay observable. The
     single-solver modes conversely never fabricate stats for a solver
     that did not run. *)
  let check_two name (r : Mcmf.Race.result) =
    checkb (name ^ " relaxation stats present") true (r.Mcmf.Race.relaxation_stats <> None);
    checkb (name ^ " cost-scaling stats present") true
      (r.Mcmf.Race.cost_scaling_stats <> None);
    (match (r.Mcmf.Race.relaxation_stats, r.Mcmf.Race.cost_scaling_stats) with
    | Some rx, Some cs ->
        checkb (name ^ " rx runtime non-negative") true (rx.S.runtime >= 0.);
        checkb (name ^ " cs runtime non-negative") true (cs.S.runtime >= 0.)
    | _ -> ())
  in
  List.iter
    (fun mode ->
      let name = mode_name mode in
      let race = Mcmf.Race.create ~mode () in
      check_two (name ^ " clean") (Mcmf.Race.solve race (random_instance 11));
      (* A fresh orchestrator per scenario: the stopped round must not
         inherit warm scratch state from the clean one. *)
      let race = Mcmf.Race.create ~mode () in
      check_two
        (name ^ " stopped")
        (Mcmf.Race.solve ~stop:(fun () -> true) race (random_instance 12));
      let race = Mcmf.Race.create ~mode () in
      check_two
        (name ^ " zero deadline")
        (Mcmf.Race.solve ~stop:(Mcmf.Solver_intf.deadline_stop 0.) race
           (random_instance 13)))
    Mcmf.Race.[ Fastest_sequential; Race_parallel ];
  List.iter
    (fun (mode, rx_expected, cs_expected) ->
      let name = mode_name mode in
      let race = Mcmf.Race.create ~mode () in
      let r = Mcmf.Race.solve race (random_instance 14) in
      checkb (name ^ " rx stats") rx_expected (r.Mcmf.Race.relaxation_stats <> None);
      checkb (name ^ " cs stats") cs_expected (r.Mcmf.Race.cost_scaling_stats <> None))
    Mcmf.Race.
      [
        (Relaxation_only, true, false);
        (Incremental_cost_scaling_only, false, true);
        (Cost_scaling_scratch_only, false, true);
      ]

let test_race_infeasible_returns_untouched_input () =
  (* An unroutable instance must come back as a result (not an exception),
     with [graph] being the caller's input, flow-free: the warm start
     survives the bad round and recovers once the instance is repaired. *)
  List.iter
    (fun mode ->
      let name = mode_name mode in
      let race = Mcmf.Race.create ~mode () in
      let g = G.create () in
      let s = G.add_node g ~supply:5 in
      let t = G.add_node g ~supply:(-5) in
      let a = G.add_arc g ~src:s ~dst:t ~cost:1 ~cap:2 in
      let r = Mcmf.Race.solve race g in
      Alcotest.check outcome_t (name ^ " infeasible") S.Infeasible
        r.Mcmf.Race.stats.S.outcome;
      checkb (name ^ " returns the input graph") true (r.Mcmf.Race.graph == g);
      checki (name ^ " input flow untouched") 0 (G.flow g a);
      checkb (name ^ " no partial on infeasible") true (r.Mcmf.Race.partial = None);
      G.set_capacity g a 5;
      let r2 = Mcmf.Race.solve race g in
      Alcotest.check outcome_t (name ^ " optimal after repair") S.Optimal
        r2.Mcmf.Race.stats.S.outcome;
      checki (name ^ " cost after repair") 5 (G.total_cost r2.Mcmf.Race.graph))
    all_race_modes

let test_race_stopped_preserves_input () =
  List.iter
    (fun mode ->
      let name = mode_name mode in
      let race = Mcmf.Race.create ~mode () in
      let g = random_instance 7 in
      let flows g' =
        let acc = ref [] in
        G.iter_arcs g' (fun a -> acc := G.flow g' a :: !acc);
        !acc
      in
      let before = flows g in
      let r = Mcmf.Race.solve ~stop:(fun () -> true) race g in
      match r.Mcmf.Race.stats.S.outcome with
      | S.Stopped ->
          checkb (name ^ " input graph returned") true (r.Mcmf.Race.graph == g);
          checkb (name ^ " partial pseudoflow surfaced") true
            (r.Mcmf.Race.partial <> None);
          Alcotest.(check (list int)) (name ^ " input flow untouched") before (flows g)
      | S.Optimal -> () (* beat the first stop poll: also a legal outcome *)
      | S.Infeasible -> Alcotest.failf "%s: feasible instance reported infeasible" name)
    all_race_modes

let test_race_scratch_ignores_stale_flow () =
  (* A half-mutated pseudoflow on the input (as a stopped round leaves
     behind) must not leak into a ~scratch solve, nor be clobbered by it. *)
  List.iter
    (fun mode ->
      let name = mode_name mode in
      let race = Mcmf.Race.create ~mode () in
      let g = diamond () in
      let dirty = ref (-1) in
      G.iter_arcs g (fun a -> if G.cost g a = 5 then dirty := a);
      G.push g !dirty 1;
      let r = Mcmf.Race.solve ~scratch:true race g in
      Alcotest.check outcome_t (name ^ " optimal") S.Optimal r.Mcmf.Race.stats.S.outcome;
      checki (name ^ " cost") diamond_optimal_cost (G.total_cost r.Mcmf.Race.graph);
      checki (name ^ " stale input flow kept") 1 (G.flow g !dirty))
    all_race_modes

let prop_race_stop_never_corrupts =
  (* Cancel the solve after [k] polls, at whatever point that lands: the
     input stays coherent, so re-solving without a stop reaches the true
     optimum. *)
  QCheck.Test.make ~name:"stopped race leaves a re-solvable graph" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_bound 200))
    (fun (seed, k) ->
      let race = Mcmf.Race.create ~mode:Mcmf.Race.Fastest_sequential () in
      let g = random_instance seed in
      let polls = ref 0 in
      let stop () =
        incr polls;
        !polls > k
      in
      let r = Mcmf.Race.solve ~stop race g in
      match r.Mcmf.Race.stats.S.outcome with
      | S.Optimal -> Validate.is_optimal r.Mcmf.Race.graph
      | S.Stopped ->
          let r2 = Mcmf.Race.solve race g in
          r2.Mcmf.Race.stats.S.outcome = S.Optimal
          && Validate.is_optimal r2.Mcmf.Race.graph
      | S.Infeasible -> false)

let test_ensure_scale_shrinks_after_contraction () =
  (* Race orchestrators share one cost-scaling state across rounds; after
     a big instance the stored scale must come back down for a small one
     instead of inflating its ε ladder forever. *)
  let st = Mcmf.Cost_scaling.create ~alpha:4 () in
  let big = (Flowgraph.Netgen.scheduling ~tasks:60 ~machines:10 ~seed:1 ()).Flowgraph.Netgen.graph in
  let sb = Mcmf.Cost_scaling.solve st big in
  Alcotest.check outcome_t "big optimal" S.Optimal sb.S.outcome;
  let big_scale = Mcmf.Cost_scaling.ensure_scale st big in
  let g = diamond () in
  let shrunk = Mcmf.Cost_scaling.ensure_scale st g in
  checkb "scale shrank" true (shrunk < big_scale);
  checki "tracks the live node count" (G.node_count g + 2) shrunk;
  let s = Mcmf.Cost_scaling.solve st g in
  Alcotest.check outcome_t "small optimal at shrunk scale" S.Optimal s.S.outcome;
  checki "small cost" diamond_optimal_cost (G.total_cost g)

let test_ensure_scale_shrink_keeps_incremental_lockstep () =
  (* Warm potentials written before the contraction are rescaled, not
     discarded: an incremental re-solve after the shrink must still agree
     with a from-scratch solve. *)
  let st = Mcmf.Cost_scaling.create ~alpha:4 () in
  let g = diamond () in
  let s1 = Mcmf.Cost_scaling.solve st g in
  Alcotest.check outcome_t "first optimal" S.Optimal s1.S.outcome;
  (* The shared state visits a much larger graph, growing the scale... *)
  let big = (Flowgraph.Netgen.scheduling ~tasks:60 ~machines:10 ~seed:2 ()).Flowgraph.Netgen.graph in
  ignore (Mcmf.Cost_scaling.solve st big);
  (* ...then returns to the small warm graph with a changed cost. *)
  let changed = ref (-1) in
  G.iter_arcs g (fun a -> if G.cost g a = 5 then changed := a);
  G.set_cost g !changed 2;
  let g_scratch = G.copy g in
  G.reset_flow g_scratch;
  let s2 = Mcmf.Cost_scaling.solve ~incremental:true st g in
  let s3 = Mcmf.Cost_scaling.solve (Mcmf.Cost_scaling.create ()) g_scratch in
  Alcotest.check outcome_t "incremental optimal" S.Optimal s2.S.outcome;
  Alcotest.check outcome_t "scratch optimal" S.Optimal s3.S.outcome;
  checki "same cost as scratch" (G.total_cost g_scratch) (G.total_cost g);
  checkb "valid optimum" true (Validate.is_optimal g)

(* {1 Early termination (deadline) behaviour} *)

let test_deadline_stops () =
  (* A large random instance with an immediate deadline must stop quickly
     and report Stopped, leaving a usable intermediate state. *)
  let g = random_instance 7 in
  let st = Mcmf.Cost_scaling.solve ~stop:(fun () -> true) (Mcmf.Cost_scaling.create ()) g in
  Alcotest.check outcome_t "stopped" S.Stopped st.S.outcome

let test_stop_callback_polled () =
  let calls = ref 0 in
  let stop () =
    incr calls;
    false
  in
  let g = diamond () in
  ignore (Mcmf.Relaxation.solve ~stop g);
  checkb "not required to poll on tiny instances" true (!calls >= 0)

(* {1 Heap} *)

let test_heap_ordering () =
  let h = Mcmf.Heap.create ~capacity:8 in
  List.iter (fun (e, p) -> Mcmf.Heap.insert h e p) [ (0, 5); (1, 3); (2, 9); (3, 1) ];
  checki "size" 4 (Mcmf.Heap.size h);
  let order = List.init 4 (fun _ -> fst (Mcmf.Heap.pop_min h)) in
  Alcotest.check Alcotest.(list int) "pop order" [ 3; 1; 0; 2 ] order

let test_heap_decrease_key () =
  let h = Mcmf.Heap.create ~capacity:4 in
  Mcmf.Heap.insert h 0 10;
  Mcmf.Heap.insert h 1 5;
  Mcmf.Heap.insert h 0 1;
  (* decrease *)
  let e, p = Mcmf.Heap.pop_min h in
  checki "element" 0 e;
  checki "priority" 1 p;
  Mcmf.Heap.insert h 1 99;
  (* increase ignored *)
  let _, p = Mcmf.Heap.pop_min h in
  checki "kept lower priority" 5 p

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (int_bound 1000))
    (fun prios ->
      let h = Mcmf.Heap.create ~capacity:64 in
      List.iteri (fun i p -> Mcmf.Heap.insert h i p) prios;
      let rec drain last =
        if Mcmf.Heap.is_empty h then true
        else begin
          let _, p = Mcmf.Heap.pop_min h in
          p >= last && drain p
        end
      in
      drain min_int)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "mcmf"
    [
      ( "hand-instances",
        [
          Alcotest.test_case "diamond, all algorithms" `Quick test_diamond_all_algorithms;
          Alcotest.test_case "paper figure 5, all algorithms" `Quick test_figure5_all_algorithms;
          Alcotest.test_case "figure 5 placements" `Quick test_figure5_placements;
          Alcotest.test_case "infeasibility detected" `Quick test_infeasible_detected;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "zero-supply graph" `Quick test_zero_supply_graph;
          Alcotest.test_case "negative arc costs" `Quick test_negative_arc_costs;
          Alcotest.test_case "negative cycle in input" `Quick test_negative_cycle_in_input;
        ] );
      ( "cross-check",
        qcheck
          [
            prop_all_algorithms_agree;
            prop_incremental_cost_scaling_matches;
            prop_incremental_relaxation_matches;
            prop_price_refine_restores_slackness;
            prop_price_refine_refuses_nonoptimal;
          ] );
      ( "golden",
        [ Alcotest.test_case "netgen-8 instance" `Quick test_golden_dimacs_instance ] );
      ( "edge-cases",
        Alcotest.test_case "parallel arcs" `Quick test_parallel_arcs
        :: Alcotest.test_case "negative self loop" `Quick test_negative_self_loop
        :: Alcotest.test_case "zero-capacity arcs" `Quick test_zero_capacity_arcs_ignored
        :: Alcotest.test_case "dual certificates" `Quick
             test_optimality_maintaining_algorithms_leave_valid_duals
        :: Alcotest.test_case "max-flow feasibility oracle" `Quick test_max_flow_routes_feasible
        :: qcheck [ prop_duals_certify_relaxation ] );
      ( "netgen",
        Alcotest.test_case "transportation agreement" `Quick test_netgen_transportation_agreement
        :: Alcotest.test_case "grid agreement" `Quick test_netgen_grid_agreement
        :: Alcotest.test_case "scheduling agreement" `Quick test_netgen_scheduling_agreement
        :: qcheck
             [
               prop_netgen_grid_agreement;
               prop_incremental_random_change_stream;
               prop_netgen_always_feasible;
             ] );
      ( "race",
        [
          Alcotest.test_case "sequential race" `Quick test_race_sequential;
          Alcotest.test_case "parallel race" `Quick test_race_parallel;
          Alcotest.test_case "all modes agree" `Quick test_race_modes_agree;
          Alcotest.test_case "incremental sequence" `Quick test_race_incremental_sequence;
          Alcotest.test_case "prepare no-op without cost scaling" `Quick
            test_race_prepare_noop_without_cost_scaling;
          Alcotest.test_case "recycled rounds stay optimal" `Quick
            test_race_recycle_rounds_stay_optimal;
          Alcotest.test_case "handed-out graph never clobbered" `Quick
            test_race_handed_out_graph_never_clobbered;
          Alcotest.test_case "recycling the input is rejected" `Quick
            test_race_recycling_input_is_rejected;
          Alcotest.test_case "two-solver stats always populated" `Quick
            test_race_two_solver_stats_always_populated;
          Alcotest.test_case "winner-only escalation" `Quick
            test_race_winner_only_escalation;
        ] );
      ( "incremental-repair",
        Alcotest.test_case "repair path taken and counted" `Quick
          test_race_repair_taken_and_telemetry
        :: Alcotest.test_case "give-up reasons" `Quick test_repair_give_up_reasons
        :: Alcotest.test_case "no-change round" `Quick test_repair_no_change_round
        :: qcheck [ prop_incremental_repair_matches_full; prop_race_repair_path_matches ]
      );
      ( "degradation",
        Alcotest.test_case "infeasible returns untouched input" `Quick
          test_race_infeasible_returns_untouched_input
        :: Alcotest.test_case "stopped preserves input" `Quick test_race_stopped_preserves_input
        :: Alcotest.test_case "scratch ignores stale flow" `Quick
             test_race_scratch_ignores_stale_flow
        :: Alcotest.test_case "scale shrinks after contraction" `Quick
             test_ensure_scale_shrinks_after_contraction
        :: Alcotest.test_case "shrink keeps incremental lockstep" `Quick
             test_ensure_scale_shrink_keeps_incremental_lockstep
        :: qcheck [ prop_race_stop_never_corrupts ] );
      ( "termination",
        [
          Alcotest.test_case "deadline stops" `Quick test_deadline_stops;
          Alcotest.test_case "stop callback" `Quick test_stop_callback_polled;
          Alcotest.test_case "deadline_stop timing" `Quick test_deadline_stop_fires_after_elapsed;
          Alcotest.test_case "either_stop combines" `Quick test_either_stop_combines;
          Alcotest.test_case "alpha validation" `Quick test_cost_scaling_rejects_bad_alpha;
        ] );
      ( "heap",
        Alcotest.test_case "ordering" `Quick test_heap_ordering
        :: Alcotest.test_case "decrease key" `Quick test_heap_decrease_key
        :: qcheck [ prop_heap_sorts ] );
    ]
