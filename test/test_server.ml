(* Scheduler-service tests: wire-protocol codec properties (round-trip,
   truncation, adversarial inputs), the bounded admission queue, and a
   cooperative in-process end-to-end exchange — a real Unix-domain socket
   client interleaved with [Server.Service.step] calls, no threads. *)

module P = Server.Protocol
module A = Server.Admission
module Svc = Server.Service

let qcheck = List.map QCheck_alcotest.to_alcotest

(* {1 Frame generator} *)

let gen_u32 = QCheck.Gen.(int_range 0 0xFFFFFFFF)
let gen_tid = QCheck.Gen.(int_range 0 1_000_000_000_000)

(* 0xFFFFFFFF is the on-wire encoding of machine id -1, so an exact
   round-trip generator must not draw it as a literal id. *)
let gen_machine_opt = QCheck.Gen.(oneof [ return (-1); int_range 0 0xFFFFFFFE ])

let gen_duration =
  QCheck.Gen.(
    oneof [ return 0.; return 1.5; return 1e-9; float_bound_inclusive 1e6 ])

let gen_short_string =
  QCheck.Gen.(string_size ~gen:printable (int_range 0 80))

let gen_placement =
  QCheck.Gen.(
    map
      (fun (p_tid, kind, p_machine, p_from) ->
        let p_kind =
          match kind with 0 -> P.Start | 1 -> P.Migrate | _ -> P.Preempt
        in
        { P.p_tid; p_kind; p_machine; p_from })
      (quad gen_tid (int_range 0 2) gen_machine_opt gen_machine_opt))

let gen_frame =
  QCheck.Gen.(
    oneof
      [
        map
          (fun (seq, jid, task_count, (locality, duration)) ->
            P.Submit_job { seq; jid; task_count; duration; locality })
          (quad gen_u32 gen_u32 (int_range 1 1000) (pair gen_u32 gen_duration));
        map (fun (seq, tid) -> P.Finish_task { seq; tid }) (pair gen_u32 gen_tid);
        map (fun (seq, tid) -> P.Preempt_task { seq; tid }) (pair gen_u32 gen_tid);
        map (fun (seq, machine) -> P.Fail_machine { seq; machine }) (pair gen_u32 gen_u32);
        map
          (fun (seq, machine) -> P.Restore_machine { seq; machine })
          (pair gen_u32 gen_u32);
        map (fun seq -> P.Subscribe { seq }) gen_u32;
        map (fun seq -> P.Stats_query { seq }) gen_u32;
        map (fun seq -> P.Ack { seq }) gen_u32;
        map
          (fun (seq, retry_after_ms) -> P.Nack { seq; retry_after_ms })
          (pair gen_u32 gen_u32);
        map
          (fun (round, placements) -> P.Placement_delta { round; placements })
          (pair gen_u32 (list_size (int_range 0 12) gen_placement));
        map (fun (seq, json) -> P.Stats_reply { seq; json }) (pair gen_u32 gen_short_string);
        map (fun reason -> P.Shutdown { reason }) gen_short_string;
        map (fun message -> P.Protocol_error { message }) gen_short_string;
      ])

let arb_frame = QCheck.make ~print:(Format.asprintf "%a" P.pp) gen_frame

(* {1 Codec properties} *)

let prop_roundtrip =
  QCheck.Test.make ~name:"decode (encode f) = f, consuming every byte" ~count:500
    arb_frame (fun f ->
      let wire = P.encode f in
      let buf = Bytes.of_string wire in
      match P.decode buf ~off:0 ~len:(Bytes.length buf) with
      | `Frame (g, consumed) -> g = f && consumed = String.length wire
      | `Need_more | `Error _ -> false)

let prop_roundtrip_offset =
  QCheck.Test.make ~name:"decode is position-independent (nonzero offset)" ~count:200
    arb_frame (fun f ->
      let wire = P.encode f in
      let pad = 37 in
      let buf = Bytes.make (pad + String.length wire) '\xAA' in
      Bytes.blit_string wire 0 buf pad (String.length wire);
      match P.decode buf ~off:pad ~len:(String.length wire) with
      | `Frame (g, consumed) -> g = f && consumed = String.length wire
      | `Need_more | `Error _ -> false)

let prop_truncation =
  QCheck.Test.make
    ~name:"every strict prefix of a valid frame is `Need_more, never an exception"
    ~count:200 arb_frame (fun f ->
      let wire = P.encode f in
      let buf = Bytes.of_string wire in
      let ok = ref true in
      for cut = 0 to String.length wire - 1 do
        match P.decode buf ~off:0 ~len:cut with
        | `Need_more -> ()
        | `Frame _ | `Error _ -> ok := false
      done;
      !ok)

let prop_decode_total =
  QCheck.Test.make ~name:"decode never raises on arbitrary bytes" ~count:1000
    QCheck.(string_of_size Gen.(int_range 0 256))
    (fun s ->
      let buf = Bytes.of_string s in
      match P.decode buf ~off:0 ~len:(Bytes.length buf) with
      | `Frame _ | `Need_more | `Error _ -> true)

(* Adversarial inputs: each hand-crafted corruption must yield the right
   [`Error] — and rejecting it must not disturb a well-formed frame
   elsewhere in the stream (per-connection, not per-process damage). *)

let decode_str s =
  P.decode (Bytes.of_string s) ~off:0 ~len:(String.length s)

let check_error name expected s =
  match decode_str s with
  | `Error e when e = expected -> ()
  | `Error e ->
      Alcotest.failf "%s: expected %a, got %a" name P.pp_error expected P.pp_error e
  | `Frame (f, _) -> Alcotest.failf "%s: decoded %a" name P.pp f
  | `Need_more -> Alcotest.failf "%s: `Need_more" name

let set_byte s i c =
  let b = Bytes.of_string s in
  Bytes.set b i c;
  Bytes.to_string b

let test_adversarial () =
  let wire = P.encode (P.Ack { seq = 7 }) in
  check_error "garbage first byte" P.Bad_magic (set_byte wire 0 'X');
  check_error "garbage second byte" P.Bad_magic (set_byte wire 1 'X');
  check_error "all-garbage stream" P.Bad_magic "not a frame at all";
  check_error "version mismatch" (P.Bad_version 9) (set_byte wire 2 '\x09');
  check_error "unknown tag" (P.Unknown_tag 0x7F) (set_byte wire 3 '\x7F');
  check_error "corrupt payload" P.Crc_mismatch
    (set_byte wire (String.length wire - 1) '\xFF');
  check_error "corrupt declared CRC" P.Crc_mismatch (set_byte wire 8 '\x00');
  (* Oversized length prefix: rejected from the header alone, before any
     payload is buffered. *)
  let oversized =
    let b = Buffer.create 16 in
    Buffer.add_string b "\xF1\x4D\x01\x01";
    Buffer.add_int32_be b 0x7FFFFFFFl;
    Buffer.add_int32_be b 0l;
    Buffer.contents b
  in
  check_error "oversized length prefix" (P.Oversized 0x7FFFFFFF) oversized;
  (* Early rejection: bad magic/version is reported even before 4 bytes. *)
  (match decode_str "Z" with
  | `Error P.Bad_magic -> ()
  | _ -> Alcotest.fail "1-byte bad magic not rejected");
  (match decode_str "\xF1\x4D\x05" with
  | `Error (P.Bad_version 5) -> ()
  | _ -> Alcotest.fail "3-byte bad version not rejected")

(* Payload that passes CRC but violates frame invariants. *)
let forge tag payload =
  let b = Buffer.create 32 in
  Buffer.add_string b "\xF1\x4D\x01";
  Buffer.add_uint8 b tag;
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_int32_be b
    (Int32.of_int (P.crc32 payload ~off:0 ~len:(String.length payload)));
  Buffer.add_string b payload;
  Buffer.contents b

let test_malformed_payloads () =
  let u32 v =
    let b = Buffer.create 4 in
    Buffer.add_int32_be b (Int32.of_int v);
    Buffer.contents b
  in
  let is_malformed name s =
    match decode_str s with
    | `Error (P.Malformed _) -> ()
    | `Error e -> Alcotest.failf "%s: expected Malformed, got %a" name P.pp_error e
    | `Frame (f, _) -> Alcotest.failf "%s: decoded %a" name P.pp f
    | `Need_more -> Alcotest.failf "%s: `Need_more" name
  in
  (* Ack payload with trailing junk (valid CRC). *)
  is_malformed "trailing bytes" (forge 0x81 (u32 1 ^ "junk"));
  (* Truncated-in-payload: declared length shorter than the fields need. *)
  is_malformed "short ack payload" (forge 0x81 "\x00\x01");
  (* Submit_job with task_count = 0. *)
  let submit_payload task_count =
    let b = Buffer.create 24 in
    Buffer.add_string b (u32 1);
    Buffer.add_string b (u32 2);
    Buffer.add_uint16_be b task_count;
    Buffer.add_string b (u32 0);
    Buffer.add_int64_be b (Int64.bits_of_float 1.0);
    Buffer.contents b
  in
  is_malformed "task_count 0" (forge 0x01 (submit_payload 0));
  is_malformed "task_count 1001" (forge 0x01 (submit_payload 1001));
  (* NaN duration. *)
  let nan_payload =
    let b = Buffer.create 24 in
    Buffer.add_string b (u32 1);
    Buffer.add_string b (u32 2);
    Buffer.add_uint16_be b 4;
    Buffer.add_string b (u32 0);
    Buffer.add_int64_be b (Int64.bits_of_float Float.nan);
    Buffer.contents b
  in
  is_malformed "NaN duration" (forge 0x01 nan_payload);
  (* Placement with an unknown kind byte. *)
  let bad_kind =
    let b = Buffer.create 24 in
    Buffer.add_string b (u32 3);
    Buffer.add_uint16_be b 1;
    Buffer.add_uint8 b 9;
    Buffer.add_int64_be b 1L;
    Buffer.add_string b (u32 0);
    Buffer.add_string b (u32 0);
    Buffer.contents b
  in
  is_malformed "unknown placement kind" (forge 0x83 bad_kind)

let test_crc_vector () =
  (* The IEEE CRC-32 check value: crc32("123456789") = 0xCBF43926. *)
  Alcotest.(check int)
    "crc32 check value" 0xCBF43926
    (P.crc32 "123456789" ~off:0 ~len:9)

(* {1 Admission queue} *)

let test_admission () =
  let q = A.create ~capacity:3 in
  Alcotest.(check bool) "empty" true (A.is_empty q);
  Alcotest.(check bool) "push 1" true (A.push q 1);
  Alcotest.(check bool) "push 2" true (A.push q 2);
  Alcotest.(check bool) "push 3" true (A.push q 3);
  Alcotest.(check bool) "full" true (A.is_full q);
  Alcotest.(check bool) "push refused when full" false (A.push q 4);
  Alcotest.(check int) "rejected counted" 1 (A.rejected q);
  Alcotest.(check (option int)) "peek oldest" (Some 1) (A.peek q);
  Alcotest.(check (option int)) "pop FIFO 1" (Some 1) (A.pop q);
  Alcotest.(check (option int)) "pop FIFO 2" (Some 2) (A.pop q);
  Alcotest.(check bool) "room again" true (A.push q 5);
  Alcotest.(check (option int)) "pop FIFO 3" (Some 3) (A.pop q);
  Alcotest.(check (option int)) "pop wraps" (Some 5) (A.pop q);
  Alcotest.(check (option int)) "drained" None (A.pop q);
  (* Wrap-around exercise: interleave pushes and pops past the ring size. *)
  for i = 0 to 99 do
    Alcotest.(check bool) "wrap push" true (A.push q i);
    Alcotest.(check (option int)) "wrap pop" (Some i) (A.pop q)
  done;
  Alcotest.(check int) "capacity stable" 3 (A.capacity q)

(* {1 In-process end-to-end exchange} *)

(* A blocking-free test client: reads are non-blocking and interleaved
   with server [step]s, so one process plays both sides deterministically. *)
type client = { fd : Unix.file_descr; buf : Bytes.t; mutable len : int; mutable eof : bool }

let client_connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.set_nonblock fd;
  { fd; buf = Bytes.create (1 lsl 16); len = 0; eof = false }

let client_send c frame =
  let wire = P.encode frame in
  let n = Unix.write_substring c.fd wire 0 (String.length wire) in
  Alcotest.(check int) "short write" (String.length wire) n

let client_send_raw c s =
  ignore (Unix.write_substring c.fd s 0 (String.length s))

let client_read c =
  if not c.eof then
    match Unix.read c.fd c.buf c.len (Bytes.length c.buf - c.len) with
    | 0 -> c.eof <- true
    | n -> c.len <- c.len + n
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> c.eof <- true

let client_next_frame c =
  match P.decode c.buf ~off:0 ~len:c.len with
  | `Frame (f, consumed) ->
      Bytes.blit c.buf consumed c.buf 0 (c.len - consumed);
      c.len <- c.len - consumed;
      Some f
  | `Need_more -> None
  | `Error e -> Alcotest.failf "client got undecodable bytes: %a" P.pp_error e

(* Step the server until [c] yields a frame satisfying [want] (frames it
   skips are returned too so callers can assert on the full sequence). *)
let await srv c ~what want =
  let rec go n =
    if n = 0 then Alcotest.failf "timed out waiting for %s" what
    else
      match client_next_frame c with
      | Some f -> if want f then f else go (n - 1)
      | None ->
          Svc.step srv ~timeout_s:0.002;
          client_read c;
          go (n - 1)
  in
  go 2000

let test_config path =
  {
    Svc.default_config with
    listen = Svc.Unix_path path;
    machines = 24;
    machines_per_rack = 4;
    slots_per_machine = 4;
    linger_s = 0.005;
  }

let with_server path f =
  let srv = Svc.create (test_config path) in
  Fun.protect ~finally:(fun () -> Svc.stop srv) (fun () -> f srv)

let tmp_sock name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_e2e_submit_place_shutdown () =
  let path = tmp_sock "fmt_test_e2e.sock" in
  with_server path (fun srv ->
      let c = client_connect path in
      client_send c (P.Subscribe { seq = 1 });
      (match await srv c ~what:"subscribe ack" (fun _ -> true) with
      | P.Ack { seq = 1 } -> ()
      | f -> Alcotest.failf "expected Ack[1], got %a" P.pp f);
      client_send c
        (P.Submit_job { seq = 2; jid = 5; task_count = 3; duration = 60.; locality = 1 });
      (match await srv c ~what:"submit ack" (fun _ -> true) with
      | P.Ack { seq = 2 } -> ()
      | f -> Alcotest.failf "expected Ack[2], got %a" P.pp f);
      let delta =
        await srv c ~what:"placement delta" (function
          | P.Placement_delta _ -> true
          | _ -> false)
      in
      (match delta with
      | P.Placement_delta { placements; _ } ->
          let started =
            List.filter (fun p -> p.P.p_kind = P.Start) placements
            |> List.map (fun p -> p.P.p_tid)
            |> List.sort compare
          in
          Alcotest.(check (list int))
            "all three tasks placed under the tid convention" [ 5000; 5001; 5002 ]
            started;
          List.iter
            (fun p ->
              if p.P.p_kind = P.Start then
                Alcotest.(check bool) "placed on a real machine" true
                  (p.P.p_machine >= 0 && p.P.p_machine < 24))
            placements
      | f -> Alcotest.failf "expected Placement_delta, got %a" P.pp f);
      Alcotest.(check int) "cluster runs the tasks" 3
        (Cluster.State.live_task_count (Svc.cluster srv));
      (* Stats round-trip. *)
      client_send c (P.Stats_query { seq = 9 });
      (match
         await srv c ~what:"stats reply" (function
           | P.Stats_reply _ -> true
           | _ -> false)
       with
      | P.Stats_reply { seq; json } ->
          Alcotest.(check int) "stats seq echoed" 9 seq;
          Alcotest.(check bool) "stats carries rounds" true
            (String.length json > 2 && json.[0] = '{')
      | _ -> assert false);
      (* Graceful shutdown: Shutdown frame, then EOF — not ECONNRESET. *)
      Svc.request_shutdown srv;
      (match
         await srv c ~what:"shutdown frame" (function
           | P.Shutdown _ -> true
           | _ -> false)
       with
      | P.Shutdown _ -> ()
      | _ -> assert false);
      let rec drain n =
        if n > 0 && not c.eof then begin
          Svc.step srv ~timeout_s:0.002;
          client_read c;
          drain (n - 1)
        end
      in
      drain 200;
      Alcotest.(check bool) "orderly EOF after shutdown" true c.eof;
      Alcotest.(check bool) "server finished" true (Svc.finished srv);
      Unix.close c.fd)

let test_e2e_malformed_isolation () =
  let path = tmp_sock "fmt_test_iso.sock" in
  with_server path (fun srv ->
      let bad = client_connect path in
      let good = client_connect path in
      (* Let the server accept both before poisoning one. *)
      for _ = 1 to 5 do
        Svc.step srv ~timeout_s:0.002
      done;
      Alcotest.(check int) "both connected" 2 (Svc.connections srv);
      client_send_raw bad "this is not a frame";
      (match
         await srv bad ~what:"protocol error" (function
           | P.Protocol_error _ -> true
           | _ -> false)
       with
      | P.Protocol_error _ -> ()
      | _ -> assert false);
      let rec drain n =
        if n > 0 && not bad.eof then begin
          Svc.step srv ~timeout_s:0.002;
          client_read bad;
          drain (n - 1)
        end
      in
      drain 200;
      Alcotest.(check bool) "poisoned connection closed" true bad.eof;
      (* The well-behaved client is untouched: submits still flow. *)
      client_send good
        (P.Submit_job { seq = 1; jid = 9; task_count = 1; duration = 30.; locality = 0 });
      (match await srv good ~what:"ack on surviving connection" (fun _ -> true) with
      | P.Ack { seq = 1 } -> ()
      | f -> Alcotest.failf "expected Ack[1], got %a" P.pp f);
      Alcotest.(check int) "one connection left" 1 (Svc.connections srv);
      Unix.close bad.fd;
      Unix.close good.fd)

let test_e2e_backpressure () =
  let path = tmp_sock "fmt_test_bp.sock" in
  let config =
    { (test_config path) with queue_capacity = 4; batch_max = 4; linger_s = 10. }
  in
  let srv = Svc.create config in
  Fun.protect
    ~finally:(fun () -> Svc.stop srv)
    (fun () ->
      let c = client_connect path in
      (* Overrun the 4-slot admission queue without letting rounds drain
         it (huge linger, small batch): pushes 5..8 must NACK. *)
      for seq = 1 to 8 do
        client_send c (P.Finish_task { seq; tid = 123_456 })
      done;
      let acks = ref 0 and nacks = ref 0 in
      for _ = 1 to 8 do
        match await srv c ~what:"ack or nack" (fun _ -> true) with
        | P.Ack _ -> incr acks
        | P.Nack { retry_after_ms; _ } ->
            Alcotest.(check bool) "retry hint present" true (retry_after_ms > 0);
            incr nacks
        | f -> Alcotest.failf "unexpected %a" P.pp f
      done;
      Alcotest.(check int) "queue capacity admitted" 4 !acks;
      Alcotest.(check int) "overflow NACKed" 4 !nacks;
      Unix.close c.fd)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        Alcotest.test_case "adversarial header corruption" `Quick test_adversarial
        :: Alcotest.test_case "malformed payloads" `Quick test_malformed_payloads
        :: Alcotest.test_case "crc32 test vector" `Quick test_crc_vector
        :: qcheck
             [ prop_roundtrip; prop_roundtrip_offset; prop_truncation; prop_decode_total ]
      );
      ("admission", [ Alcotest.test_case "bounded FIFO ring" `Quick test_admission ]);
      ( "service",
        [
          Alcotest.test_case "submit, place, stats, graceful shutdown" `Quick
            test_e2e_submit_place_shutdown;
          Alcotest.test_case "malformed frame poisons one connection only" `Quick
            test_e2e_malformed_isolation;
          Alcotest.test_case "admission overflow NACKs with retry hint" `Quick
            test_e2e_backpressure;
        ] );
    ]
