(* Tests for the simulation layer: statistics, the max-min network model,
   trace replay semantics, the testbed engine, and the baseline
   schedulers. *)

module W = Cluster.Workload

let checki msg = Alcotest.check Alcotest.int msg
let checkb msg = Alcotest.check Alcotest.bool msg
let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

(* {1 Stats} *)

let test_percentiles () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  checkf "median" 3. (Dcsim.Stats.percentile xs 50.);
  checkf "min" 1. (Dcsim.Stats.percentile xs 0.);
  checkf "max" 5. (Dcsim.Stats.percentile xs 100.);
  checkf "interpolated" 3.5 (Dcsim.Stats.percentile xs 62.5);
  checkf "mean" 3. (Dcsim.Stats.mean xs);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Dcsim.Stats.percentile [] 50.))

let test_cdf_monotone () =
  let xs = List.init 100 (fun i -> float_of_int ((i * 7919) mod 100)) in
  let cdf = Dcsim.Stats.cdf ~points:10 xs in
  checki "points" 11 (List.length cdf);
  let rec mono = function
    | (v1, p1) :: ((v2, p2) :: _ as rest) -> v1 <= v2 && p1 <= p2 && mono rest
    | _ -> true
  in
  checkb "monotone" true (mono cdf)

(* {1 Netsim} *)

let topo40 () = Cluster.Topology.make ~machines:40 ~machines_per_rack:40 ~slots_per_machine:8 ()

let test_netsim_single_flow_full_rate () =
  let net = Dcsim.Netsim.create (topo40 ()) in
  (* 1250 MB at 10 Gbps = 1 second. *)
  ignore (Dcsim.Netsim.start_transfer net ~src:0 ~dst:1 ~mb:1250. ~task:7 ());
  (match Dcsim.Netsim.next_completion_time net with
  | Some t -> checkb "eta 1s" true (abs_float (t -. 1.) < 1e-6)
  | None -> Alcotest.fail "no completion");
  let completions = Dcsim.Netsim.advance net 2. in
  Alcotest.(check (list (pair (float 1e-6) int))) "completion" [ (1., 7) ] completions

let test_netsim_fair_sharing () =
  let net = Dcsim.Netsim.create (topo40 ()) in
  (* Two flows into the same destination NIC share 10 G: 5 G each. *)
  ignore (Dcsim.Netsim.start_transfer net ~src:0 ~dst:2 ~mb:1250. ~task:1 ());
  ignore (Dcsim.Netsim.start_transfer net ~src:1 ~dst:2 ~mb:1250. ~task:2 ());
  (match Dcsim.Netsim.next_completion_time net with
  | Some t -> checkb "eta 2s (half rate)" true (abs_float (t -. 2.) < 1e-6)
  | None -> Alcotest.fail "no completion");
  checki "dst sees 10G" 10_000 (Dcsim.Netsim.used_mbps net 2)

let test_netsim_priority_preempts_batch () =
  let net = Dcsim.Netsim.create (topo40 ()) in
  ignore (Dcsim.Netsim.add_background net ~src:5 ~dst:3 ~mbps:8_000. ());
  ignore (Dcsim.Netsim.start_transfer net ~src:0 ~dst:3 ~mb:1000. ~task:1 ());
  (* Batch flow gets only the residual 2 Gbps: 1000 MB at 2 Gbps = 4 s. *)
  (match Dcsim.Netsim.next_completion_time net with
  | Some t -> checkb "slowed by background" true (abs_float (t -. 4.) < 1e-3)
  | None -> Alcotest.fail "no completion");
  checkb "dst load includes background" true (Dcsim.Netsim.used_mbps net 3 >= 9_999)

let test_netsim_rate_rises_when_flow_leaves () =
  let net = Dcsim.Netsim.create (topo40 ()) in
  ignore (Dcsim.Netsim.start_transfer net ~src:0 ~dst:2 ~mb:625. ~task:1 ());
  ignore (Dcsim.Netsim.start_transfer net ~src:1 ~dst:2 ~mb:6250. ~task:2 ());
  (* Flow 1 finishes at 1 s (5 Gbps); flow 2 then speeds to 10 Gbps and
     carries 625 MB at 5 Gbps already done, 5625 left -> +4.5 s. *)
  let completions = Dcsim.Netsim.advance net 10. in
  (match completions with
  | [ (t1, 1); (t2, 2) ] ->
      checkb "first" true (abs_float (t1 -. 1.) < 1e-3);
      checkb "second accelerates" true (abs_float (t2 -. 5.5) < 1e-2)
  | _ -> Alcotest.fail "expected two completions");
  checki "idle now" 0 (Dcsim.Netsim.active_flows net)

let test_netsim_cancel () =
  let net = Dcsim.Netsim.create (topo40 ()) in
  ignore (Dcsim.Netsim.start_transfer net ~src:0 ~dst:1 ~mb:100000. ~task:9 ());
  Dcsim.Netsim.cancel_task_transfers net 9;
  checki "cancelled" 0 (Dcsim.Netsim.active_flows net);
  checkb "no completion" true (Dcsim.Netsim.next_completion_time net = None)

let test_netsim_three_flow_maxmin () =
  (* Flows: A:0->1, B:0->2, C:3->1. Egress 0 carries A,B; ingress 1
     carries A,C. Max-min: every flow's bottleneck link has 2 claimants,
     so all get 5 Gbps. *)
  let net = Dcsim.Netsim.create (topo40 ()) in
  ignore (Dcsim.Netsim.start_transfer net ~src:0 ~dst:1 ~mb:10000. ~task:1 ());
  ignore (Dcsim.Netsim.start_transfer net ~src:0 ~dst:2 ~mb:10000. ~task:2 ());
  ignore (Dcsim.Netsim.start_transfer net ~src:3 ~dst:1 ~mb:10000. ~task:3 ());
  checki "egress 0 full" 10_000 (Dcsim.Netsim.used_mbps net 0);
  checki "ingress 1 full" 10_000 (Dcsim.Netsim.used_mbps net 1);
  (* Machine 2 sees only flow B at its max-min rate of 5 Gbps. *)
  checki "machine 2 at half" 5_000 (Dcsim.Netsim.used_mbps net 2)

let test_netsim_external_source () =
  (* src = None models traffic from outside the cluster: only the
     destination NIC constrains it. *)
  let net = Dcsim.Netsim.create (topo40 ()) in
  ignore (Dcsim.Netsim.add_background net ~dst:4 ~mbps:2_500. ());
  checki "ingress only" 2_500 (Dcsim.Netsim.used_mbps net 4);
  checki "no source machine affected" 0 (Dcsim.Netsim.used_mbps net 0)

let test_netsim_advance_backwards_rejected () =
  let net = Dcsim.Netsim.create (topo40 ()) in
  ignore (Dcsim.Netsim.advance net 5.);
  Alcotest.check_raises "backwards" (Invalid_argument "Netsim.advance: time going backwards")
    (fun () -> ignore (Dcsim.Netsim.advance net 1.))

(* {1 Replay} *)

let small_trace ?(machines = 20) ?(util = 0.5) ?(horizon = 20.) ?(seed = 11) () =
  Cluster.Trace.generate
    {
      (Cluster.Trace.default_params ~machines ()) with
      target_utilization = util;
      horizon_s = horizon;
      batch_task_median_s = 10.;
      seed;
    }

let test_replay_places_all_and_finishes () =
  let trace = small_trace () in
  let cfg =
    { Dcsim.Replay.default_config with solver_time = `Fixed 0.01; max_sim_time = Some 400. }
  in
  let m = Dcsim.Replay.run cfg trace in
  (* Initial jobs are pre-placed in unmetered warm-up rounds; metrics
     cover the live replay only. *)
  checki "nothing left waiting" 0 m.Dcsim.Replay.unfinished_waiting;
  checkb "some batch tasks finished" true (List.length m.Dcsim.Replay.response_times > 0);
  checkb "latencies positive" true
    (List.for_all (fun l -> l >= 0.) m.Dcsim.Replay.placement_latencies)

let test_replay_fixed_solver_time_enters_latency () =
  (* With a fixed 1 s solver and an immediate workload, the first batch of
     placements must report >= 1 s of placement latency. *)
  let trace = small_trace ~horizon:0. () in
  let cfg =
    { Dcsim.Replay.default_config with solver_time = `Fixed 1.0; max_rounds = Some 5 }
  in
  let m = Dcsim.Replay.run cfg trace in
  checkb "latency includes solver runtime" true
    (List.for_all (fun l -> l >= 1.0 -. 1e-9) m.Dcsim.Replay.placement_latencies)

let test_replay_deterministic_with_fixed_solver () =
  let run () =
    let m =
      Dcsim.Replay.run
        { Dcsim.Replay.default_config with solver_time = `Fixed 0.02; max_sim_time = Some 200. }
        (small_trace ())
    in
    (m.Dcsim.Replay.tasks_placed, m.Dcsim.Replay.rounds, List.length m.Dcsim.Replay.response_times)
  in
  checkb "deterministic" true (run () = run ())

let test_replay_timeline_monotone () =
  let m =
    Dcsim.Replay.run
      { Dcsim.Replay.default_config with solver_time = `Fixed 0.01; max_sim_time = Some 100. }
      (small_trace ())
  in
  let rec mono = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && mono rest
    | _ -> true
  in
  checkb "timeline sorted" true (mono m.Dcsim.Replay.runtime_timeline)

let test_replay_measured_solver_time () =
  (* `Measured uses real wall-clock solve times: latencies are positive
     and the timeline matches round count. *)
  let m =
    Dcsim.Replay.run
      { Dcsim.Replay.default_config with max_sim_time = Some 100. }
      (small_trace ~machines:10 ())
  in
  checki "timeline = rounds" m.Dcsim.Replay.rounds
    (List.length m.Dcsim.Replay.runtime_timeline);
  checkb "runtimes positive" true
    (List.for_all (fun r -> r > 0.) m.Dcsim.Replay.algorithm_runtimes)

let test_replay_counts_preemptions () =
  (* A service job arriving on a full cluster forces preemptions, which
     replay must count and survive (epochs invalidate completions). *)
  let topology = Cluster.Topology.make ~machines:2 ~machines_per_rack:2 ~slots_per_machine:1 () in
  let batch_tasks =
    Array.init 2 (fun i -> W.make_task ~tid:i ~job:0 ~submit_time:0. ~duration:50. ())
  in
  let service_tasks =
    Array.init 1 (fun i -> W.make_task ~tid:(10 + i) ~job:1 ~submit_time:5. ~duration:1e6 ())
  in
  let trace =
    {
      Cluster.Trace.topology;
      initial_jobs = [ W.make_job ~jid:0 ~klass:Cluster.Types.Batch ~submit_time:0. ~tasks:batch_tasks ];
      arrivals =
        [ (5., W.make_job ~jid:1 ~klass:Cluster.Types.Service ~submit_time:5. ~tasks:service_tasks) ];
      machine_events = [];
      params = Cluster.Trace.default_params ~machines:2 ();
    }
  in
  let m =
    Dcsim.Replay.run
      { Dcsim.Replay.default_config with solver_time = `Fixed 0.01; max_sim_time = Some 200. }
      trace
  in
  checkb "preemption happened" true (m.Dcsim.Replay.preemptions >= 1)

let test_replay_survives_machine_failures () =
  (* Failure injection: machines die and return mid-replay; victims are
     rescheduled and the replay still drains. *)
  let trace =
    Cluster.Trace.generate
      {
        (Cluster.Trace.default_params ~machines:10 ()) with
        target_utilization = 0.5;
        horizon_s = 20.;
        batch_task_median_s = 10.;
        machine_mtbf_s = 4.;
        machine_downtime_s = 5.;
        seed = 21;
      }
  in
  checkb "events generated" true (trace.Cluster.Trace.machine_events <> []);
  let m =
    Dcsim.Replay.run
      { Dcsim.Replay.default_config with solver_time = `Fixed 0.01; max_sim_time = Some 500. }
      trace
  in
  (* Victims of injected failures are re-placed during the metered run. *)
  checkb "failures forced rescheduling" true (m.Dcsim.Replay.tasks_placed > 0)

let test_replay_deadline_degrades_gracefully () =
  (* A zero round deadline stops every non-trivial solve at its first
     poll: the replay must keep going (no exception, no corrupted
     network), count the degraded rounds, and terminate. The job is big
     enough that its round cannot finish inside the clock resolution. *)
  let topology =
    Cluster.Topology.make ~machines:40 ~machines_per_rack:4 ~slots_per_machine:8 ()
  in
  let tasks =
    Array.init 200 (fun i -> W.make_task ~tid:i ~job:0 ~submit_time:1. ~duration:50. ())
  in
  let trace =
    {
      Cluster.Trace.topology;
      initial_jobs = [];
      arrivals = [ (1., W.make_job ~jid:0 ~klass:Cluster.Types.Batch ~submit_time:1. ~tasks) ];
      machine_events = [];
      params = Cluster.Trace.default_params ~machines:40 ();
    }
  in
  let m =
    Dcsim.Replay.run
      {
        Dcsim.Replay.default_config with
        scheduler = { Firmament.Scheduler.default_config with deadline = Some 0. };
        max_rounds = Some 10;
      }
      trace
  in
  checkb "rounds ran" true (m.Dcsim.Replay.rounds > 0);
  checkb "deadline rounds counted as partial" true (m.Dcsim.Replay.partial_rounds > 0);
  checki "ladder accounting consistent" m.Dcsim.Replay.degraded_rounds
    (m.Dcsim.Replay.partial_rounds + m.Dcsim.Replay.infeasible_retries
   + m.Dcsim.Replay.failed_rounds);
  checki "nothing committed by degraded rounds" 200 m.Dcsim.Replay.unfinished_waiting

let test_replay_pipelined_reconciles () =
  (* Pipelined replay absorbs trace events while the solve is in flight
     and commits with stale-aware reconciliation: every dropped placement
     is accounted in [stale_placements], the flow network stays
     structurally clean, and the replay still drains. *)
  let trace =
    Cluster.Trace.generate
      {
        (Cluster.Trace.default_params ~machines:10 ()) with
        target_utilization = 0.6;
        horizon_s = 20.;
        batch_task_median_s = 10.;
        machine_mtbf_s = 4.;
        machine_downtime_s = 5.;
        seed = 21;
      }
  in
  let run pipelined =
    Dcsim.Replay.run
      {
        Dcsim.Replay.default_config with
        solver_time = `Fixed 0.05;
        pipelined;
        max_sim_time = Some 500.;
      }
      trace
  in
  let p = run true in
  checkb "rounds ran" true (p.Dcsim.Replay.rounds > 0);
  checkb "tasks placed" true (p.Dcsim.Replay.tasks_placed > 0);
  checkb "events absorbed mid-solve" true (p.Dcsim.Replay.events_absorbed_mid_solve > 0);
  checki "network structurally clean" 0 p.Dcsim.Replay.structure_violations;
  checkb "discards never negative" true (p.Dcsim.Replay.stale_placements >= 0);
  let s = run false in
  checki "synchronous replay absorbs nothing mid-solve" 0
    s.Dcsim.Replay.events_absorbed_mid_solve;
  checki "synchronous replay discards nothing" 0 s.Dcsim.Replay.stale_placements;
  checki "synchronous replay structurally clean" 0 s.Dcsim.Replay.structure_violations

let test_replay_generous_deadline_unaffected () =
  let trace = small_trace () in
  let m =
    Dcsim.Replay.run
      {
        Dcsim.Replay.default_config with
        scheduler = { Firmament.Scheduler.default_config with deadline = Some 30. };
        solver_time = `Fixed 0.01;
        max_sim_time = Some 400.;
      }
      trace
  in
  checki "no degraded rounds" 0 m.Dcsim.Replay.degraded_rounds;
  checki "nothing left waiting" 0 m.Dcsim.Replay.unfinished_waiting

(* {1 Workload builders} *)

let test_short_task_jobs_load () =
  let jobs =
    Dcsim.Workloads.short_task_jobs ~machines:100 ~slots:8 ~task_duration:1. ~tasks_per_job:10
      ~load:0.8 ~horizon:50. ~seed:3
  in
  checkb "nonempty" true (jobs <> []);
  let n_tasks = List.fold_left (fun acc (_, (j : W.job)) -> acc + Array.length j.W.tasks) 0 jobs in
  (* Expected: load * slots * horizon / duration = 0.8*800*50 = 32000 task-seconds /1s *)
  let expect = 32_000 in
  checkb "rate within 20%" true (abs (n_tasks - expect) < expect / 5)

let test_big_job_builder () =
  let j = Dcsim.Workloads.big_job ~jid:9 ~n_tasks:50 ~submit:3. ~duration:2. () in
  checki "tasks" 50 (Array.length j.W.tasks);
  checkb "tids unique" true
    (let ids = Array.to_list (Array.map (fun (t : W.task) -> t.W.tid) j.W.tasks) in
     List.length (List.sort_uniq compare ids) = 50)

(* {1 Baselines} *)

let mk_state machines slots =
  Cluster.State.create
    (Cluster.Topology.make ~machines ~machines_per_rack:40 ~slots_per_machine:slots ())

let dummy_task tid = W.make_task ~tid ~job:0 ~submit_time:0. ~duration:1. ()

let test_swarmkit_spreads () =
  let st = mk_state 4 4 in
  let b = Baselines.swarmkit () in
  let tasks = Array.init 8 (fun i -> dummy_task i) in
  Cluster.State.submit_job st (W.make_job ~jid:0 ~klass:Cluster.Types.Batch ~submit_time:0. ~tasks);
  Array.iter
    (fun (t : W.task) ->
      match b.Baselines.select st t with
      | Some m -> Cluster.State.place st t.W.tid m ~now:0.
      | None -> Alcotest.fail "no machine")
    tasks;
  for m = 0 to 3 do
    checki "even spread" 2 (Cluster.State.running_count st m)
  done

let test_baselines_respect_capacity () =
  List.iter
    (fun b ->
      let st = mk_state 2 1 in
      let tasks = Array.init 3 (fun i -> dummy_task i) in
      Cluster.State.submit_job st
        (W.make_job ~jid:0 ~klass:Cluster.Types.Batch ~submit_time:0. ~tasks);
      let placed = ref 0 in
      Array.iter
        (fun (t : W.task) ->
          match b.Baselines.select st t with
          | Some m when Cluster.State.free_slots_on st m > 0 ->
              Cluster.State.place st t.W.tid m ~now:0.;
              incr placed
          | Some _ -> checkb "only sparrow overbooks" true b.Baselines.worker_side_queue
          | None -> ())
        tasks;
      checkb (b.Baselines.name ^ " placed at most capacity") true (!placed <= 2))
    (Baselines.all ())

let test_baselines_avoid_dead_machines () =
  List.iter
    (fun b ->
      let st = mk_state 3 2 in
      ignore (Cluster.State.fail_machine st 1);
      let t = dummy_task 0 in
      Cluster.State.submit_job st
        (W.make_job ~jid:0 ~klass:Cluster.Types.Batch ~submit_time:0. ~tasks:[| t |]);
      for _ = 1 to 10 do
        match b.Baselines.select st t with
        | Some m -> checkb (b.Baselines.name ^ " avoids dead") true (m <> 1)
        | None -> ()
      done)
    (Baselines.all ())

(* {1 Testbed} *)

let test_testbed_isolation_baseline () =
  let topo = topo40 () in
  let arrivals = Dcsim.Workloads.testbed_short_batch ~machines:40 ~n_tasks:20 ~interarrival:5. ~seed:1 in
  let r = Dcsim.Testbed.run ~topology:topo ~arrivals ~background:[] Dcsim.Testbed.Isolation in
  checki "all finish" 20 r.Dcsim.Testbed.finished;
  (* 4-8 GB at 10G = 3.2-6.4s transfer + 3.5-5s compute. *)
  checkb "responses in range" true
    (List.for_all (fun t -> t > 6. && t < 12.) r.Dcsim.Testbed.response_times)

let test_testbed_baseline_runs () =
  let topo = topo40 () in
  let arrivals = Dcsim.Workloads.testbed_short_batch ~machines:40 ~n_tasks:30 ~interarrival:1. ~seed:2 in
  let r =
    Dcsim.Testbed.run ~topology:topo ~arrivals ~background:[]
      (Dcsim.Testbed.Baseline (Baselines.swarmkit ()))
  in
  checki "all finish" 30 r.Dcsim.Testbed.finished;
  checki "none stuck" 0 r.Dcsim.Testbed.unfinished

let test_testbed_firmament_beats_random_under_background () =
  let topo = topo40 () in
  let arrivals = Dcsim.Workloads.testbed_short_batch ~machines:40 ~n_tasks:40 ~interarrival:1.5 ~seed:3 in
  let background = Dcsim.Workloads.testbed_background ~machines:40 ~seed:4 in
  let p99 kind =
    let r = Dcsim.Testbed.run ~topology:topo ~arrivals ~background kind in
    checkb "finished most" true (r.Dcsim.Testbed.finished >= 35);
    Dcsim.Stats.percentile r.Dcsim.Testbed.response_times 90.
  in
  let firmament =
    p99
      (Dcsim.Testbed.Firmament
         (fun ~bandwidth_used ~drain net st ->
           Firmament.Policy_network_aware.make ~bandwidth_used ~drain net st))
  in
  let rand = p99 (Dcsim.Testbed.Baseline (Baselines.random ~seed:9 ())) in
  checkb "network-aware tail better than random" true (firmament <= rand)

(* {1 Property tests} *)

let prop_percentile_bounded_and_monotone =
  QCheck.Test.make ~name:"percentile stays within sample bounds, monotone in p"
    ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (float_range 0. 1e6))
        (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = List.fold_left min infinity xs in
      let hi = List.fold_left max neg_infinity xs in
      let p_lo = min p1 p2 and p_hi = max p1 p2 in
      let v_lo = Dcsim.Stats.percentile xs p_lo in
      let v_hi = Dcsim.Stats.percentile xs p_hi in
      lo <= v_lo && v_lo <= v_hi && v_hi <= hi)

let prop_churn_trace_roundtrip =
  QCheck.Test.make ~name:"churn traces serialize losslessly" ~count:100
    QCheck.(pair (int_bound 10_000) (int_range 1 120))
    (fun (seed, length) ->
      let t = Dcsim.Churn.generate ~seed ~machines:6 ~length in
      List.length t = length
      && Dcsim.Churn.of_lines (Dcsim.Churn.to_lines t) = t
      (* Same seed must regenerate the same trace: replayability of the
         fuzz driver's seed lists depends on it. *)
      && Dcsim.Churn.generate ~seed ~machines:6 ~length = t)

let prop_netsim_transfer_completes =
  QCheck.Test.make ~name:"a lone transfer finishes at exactly link rate"
    ~count:50
    QCheck.(pair (int_range 1 1000) (int_range 1 8))
    (fun (mb, dst) ->
      let net = Dcsim.Netsim.create (topo40 ()) in
      let mb = float_of_int mb in
      ignore (Dcsim.Netsim.start_transfer net ~src:0 ~dst ~mb ~task:1 ());
      (* 10 Gb/s = 1250 MB/s; after the exact transfer time (plus float
         slack) the flow must be gone and the completion reported. *)
      let horizon = (mb /. 1250.) +. 1e-9 in
      match Dcsim.Netsim.advance net horizon with
      | [ (_, 1) ] -> Dcsim.Netsim.active_flows net = 0
      | _ -> false)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "dcsim"
    [
      ( "stats",
        [
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "cdf monotone" `Quick test_cdf_monotone;
        ] );
      ( "properties",
        qcheck
          [
            prop_percentile_bounded_and_monotone;
            prop_churn_trace_roundtrip;
            prop_netsim_transfer_completes;
          ] );
      ( "netsim",
        [
          Alcotest.test_case "single flow full rate" `Quick test_netsim_single_flow_full_rate;
          Alcotest.test_case "fair sharing" `Quick test_netsim_fair_sharing;
          Alcotest.test_case "priority preempts batch" `Quick test_netsim_priority_preempts_batch;
          Alcotest.test_case "rate rises when flow leaves" `Quick
            test_netsim_rate_rises_when_flow_leaves;
          Alcotest.test_case "cancel" `Quick test_netsim_cancel;
          Alcotest.test_case "three-flow max-min" `Quick test_netsim_three_flow_maxmin;
          Alcotest.test_case "external source" `Quick test_netsim_external_source;
          Alcotest.test_case "time monotonicity" `Quick test_netsim_advance_backwards_rejected;
        ] );
      ( "replay",
        [
          Alcotest.test_case "measured solver time" `Quick test_replay_measured_solver_time;
          Alcotest.test_case "counts preemptions" `Quick test_replay_counts_preemptions;
          Alcotest.test_case "survives machine failures" `Quick
            test_replay_survives_machine_failures;
          Alcotest.test_case "places all and finishes" `Quick test_replay_places_all_and_finishes;
          Alcotest.test_case "solver time enters latency" `Quick
            test_replay_fixed_solver_time_enters_latency;
          Alcotest.test_case "deterministic with fixed solver" `Quick
            test_replay_deterministic_with_fixed_solver;
          Alcotest.test_case "timeline monotone" `Quick test_replay_timeline_monotone;
          Alcotest.test_case "deadline degrades gracefully" `Quick
            test_replay_deadline_degrades_gracefully;
          Alcotest.test_case "generous deadline unaffected" `Quick
            test_replay_generous_deadline_unaffected;
          Alcotest.test_case "pipelined replay reconciles" `Quick
            test_replay_pipelined_reconciles;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "short-task jobs load" `Quick test_short_task_jobs_load;
          Alcotest.test_case "big job builder" `Quick test_big_job_builder;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "swarmkit spreads" `Quick test_swarmkit_spreads;
          Alcotest.test_case "respect capacity" `Quick test_baselines_respect_capacity;
          Alcotest.test_case "avoid dead machines" `Quick test_baselines_avoid_dead_machines;
        ] );
      ( "testbed",
        [
          Alcotest.test_case "isolation baseline" `Quick test_testbed_isolation_baseline;
          Alcotest.test_case "baseline engine runs" `Quick test_testbed_baseline_runs;
          Alcotest.test_case "network-aware beats random under load" `Slow
            test_testbed_firmament_beats_random_under_background;
        ] );
    ]
