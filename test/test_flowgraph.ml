(* Unit and property tests for the flowgraph substrate: graph invariants,
   change classification (paper Table 3), validators, DIMACS I/O. *)

module G = Flowgraph.Graph
module Changes = Flowgraph.Changes
module Validate = Flowgraph.Validate
module Dimacs = Flowgraph.Dimacs
module Vec = Flowgraph.Vec

let check = Alcotest.check
let checki msg = check Alcotest.int msg
let checkb msg = check Alcotest.bool msg

(* {1 Vec} *)

let test_vec_push_pop () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 99 do
    checki "push index" i (Vec.push v i)
  done;
  checki "length" 100 (Vec.length v);
  for i = 99 downto 0 do
    checki "pop" i (Vec.pop v)
  done;
  checkb "empty" true (Vec.is_empty v)

let test_vec_grow_set () =
  let v = Vec.make 3 ~dummy:(-1) 7 in
  Vec.grow_to v 10 9;
  checki "old" 7 (Vec.get v 2);
  checki "new" 9 (Vec.get v 9);
  Vec.set v 0 42;
  checki "set" 42 (Vec.get v 0);
  let c = Vec.copy v in
  Vec.set v 0 0;
  checki "copy is independent" 42 (Vec.get c 0);
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get") (fun () -> ignore (Vec.get v 10))

let test_vec_iter_fold () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
  checki "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check
    Alcotest.(list (pair int int))
    "iteri" [ (0, 1); (1, 2); (2, 3); (3, 4) ] (List.rev !acc);
  check Alcotest.(list int) "to_list" [ 1; 2; 3; 4 ] (Vec.to_list v)

(* {1 Graph basics} *)

let triangle () =
  let g = G.create () in
  let a = G.add_node g ~supply:2 in
  let b = G.add_node g ~supply:0 in
  let c = G.add_node g ~supply:(-2) in
  let ab = G.add_arc g ~src:a ~dst:b ~cost:1 ~cap:5 in
  let bc = G.add_arc g ~src:b ~dst:c ~cost:2 ~cap:5 in
  let ac = G.add_arc g ~src:a ~dst:c ~cost:10 ~cap:5 in
  (g, a, b, c, ab, bc, ac)

let test_graph_construction () =
  let g, a, b, c, ab, _, _ = triangle () in
  checki "nodes" 3 (G.node_count g);
  checki "arcs" 3 (G.arc_count g);
  checki "supply a" 2 (G.supply g a);
  checki "excess a" 2 (G.excess g a);
  checki "excess c" (-2) (G.excess g c);
  checki "src" a (G.src g ab);
  checki "dst" b (G.dst g ab);
  checki "cost" 1 (G.cost g ab);
  checki "rev cost" (-1) (G.cost g (G.rev ab));
  checki "cap" 5 (G.capacity g ab);
  checki "flow" 0 (G.flow g ab);
  checkb "forward" true (G.is_forward ab);
  checkb "reverse" false (G.is_forward (G.rev ab))

let test_graph_push_excess () =
  let g, a, b, c, ab, bc, _ = triangle () in
  G.push g ab 2;
  checki "excess a after push" 0 (G.excess g a);
  checki "excess b after push" 2 (G.excess g b);
  checki "flow ab" 2 (G.flow g ab);
  checki "rescap ab" 3 (G.rescap g ab);
  checki "rescap rev ab" 2 (G.rescap g (G.rev ab));
  G.push g bc 2;
  checki "excess b drained" 0 (G.excess g b);
  checki "excess c" 0 (G.excess g c);
  checkb "feasible" true (Validate.is_feasible g);
  checki "total cost" ((2 * 1) + (2 * 2)) (G.total_cost g);
  (* Push back along the reverse arc. *)
  G.push g (G.rev bc) 1;
  checki "flow bc after unwind" 1 (G.flow g bc);
  checki "excess b" 1 (G.excess g b);
  Alcotest.check_raises "over-push" (Invalid_argument "Graph.push: exceeds residual capacity")
    (fun () -> G.push g ab 100)

let test_graph_remove_arc_credits_flow () =
  let g, a, b, _, ab, _, _ = triangle () in
  G.push g ab 2;
  G.remove_arc g ab;
  checki "arc count" 2 (G.arc_count g);
  checki "excess a credited" 2 (G.excess g a);
  checki "excess b debited" 0 (G.excess g b);
  checkb "dead arc" false (G.arc_is_live g ab)

let test_graph_remove_node_removes_incident () =
  let g, _, b, _, _, _, _ = triangle () in
  G.remove_node g b;
  checki "nodes" 2 (G.node_count g);
  checki "arcs" 1 (G.arc_count g);
  checkb "b dead" false (G.node_is_live g b);
  (* Recycled ids still work. *)
  let b' = G.add_node g ~supply:5 in
  checki "recycled id" b b';
  checki "fresh supply" 5 (G.supply g b');
  checki "fresh excess" 5 (G.excess g b');
  checki "no stale arcs" 0 (G.out_degree g b')

let test_graph_set_capacity_overflow () =
  let g, a, b, _, ab, _, _ = triangle () in
  G.push g ab 2;
  G.set_capacity g ab 1;
  checki "flow clamped" 1 (G.flow g ab);
  checki "capacity" 1 (G.capacity g ab);
  checki "excess a regains overflow" 1 (G.excess g a);
  checki "excess b loses overflow" 1 (G.excess g b);
  G.set_capacity g ab 7;
  checki "grown capacity" 7 (G.capacity g ab);
  checki "flow kept" 1 (G.flow g ab)

let test_graph_set_supply_shifts_excess () =
  let g, a, _, _, _, _, _ = triangle () in
  G.set_supply g a 5;
  checki "supply" 5 (G.supply g a);
  checki "excess follows" 5 (G.excess g a)

let test_graph_reset_flow () =
  let g, a, _, c, ab, bc, _ = triangle () in
  G.push g ab 2;
  G.push g bc 2;
  G.set_potential g a 3;
  G.reset_flow g;
  checki "flow zero" 0 (G.flow g ab);
  checki "excess restored" 2 (G.excess g a);
  checki "excess restored sink" (-2) (G.excess g c);
  checki "potential cleared" 0 (G.potential g a)

let test_graph_reduced_cost () =
  let g, a, b, _, ab, _, _ = triangle () in
  G.set_potential g a 4;
  G.set_potential g b 1;
  checki "reduced" (1 - 4 + 1) (G.reduced_cost g ab);
  checki "reduced rev" (-(1 - 4 + 1)) (G.reduced_cost g (G.rev ab))

let test_graph_iter_out_covers_both_directions () =
  let g, _, b, _, ab, bc, _ = triangle () in
  let seen = ref [] in
  G.iter_out g b (fun x -> seen := x :: !seen);
  checkb "contains forward bc" true (List.mem bc !seen);
  checkb "contains reverse of ab" true (List.mem (G.rev ab) !seen);
  checki "degree" 2 (List.length !seen)

let test_graph_change_summary () =
  let g, _, _, _, ab, _, _ = triangle () in
  ignore (G.take_changes g);
  G.set_cost g ab 99;
  G.set_capacity g ab 3;
  let s = G.take_changes g in
  checki "cost changes" 1 s.G.cost_changes;
  checki "cap changes" 1 s.G.capacity_changes;
  checki "max changed cost" 99 s.G.max_changed_cost;
  let s' = G.take_changes g in
  checki "reset" 0 s'.G.cost_changes

(* {1 Change classification — paper Table 3} *)

let test_table3_increase_capacity () =
  (* Negative reduced cost: new residual capacity breaks optimality. *)
  let e = Changes.capacity_change ~reduced_cost:(-1) ~flow:5 ~old_cap:5 ~new_cap:9 in
  checkb "breaks optimality" true e.Changes.breaks_optimality;
  checkb "keeps feasibility" false e.Changes.breaks_feasibility;
  (* Zero or positive reduced cost: stays optimal and feasible. *)
  List.iter
    (fun rc ->
      let e = Changes.capacity_change ~reduced_cost:rc ~flow:0 ~old_cap:5 ~new_cap:9 in
      checkb "green cell" false (e.Changes.breaks_optimality || e.Changes.breaks_feasibility))
    [ 0; 3 ]

let test_table3_decrease_capacity () =
  (* Breaks feasibility iff flow exceeds the new bound. *)
  let e = Changes.capacity_change ~reduced_cost:(-2) ~flow:5 ~old_cap:5 ~new_cap:3 in
  checkb "f > u' breaks feasibility" true e.Changes.breaks_feasibility;
  checkb "not optimality" false e.Changes.breaks_optimality;
  let e = Changes.capacity_change ~reduced_cost:0 ~flow:2 ~old_cap:5 ~new_cap:3 in
  checkb "f <= u' fine" false (e.Changes.breaks_feasibility || e.Changes.breaks_optimality)

let test_table3_increase_cost () =
  (* cpi < 0 -> breaks iff new reduced cost positive (arc was saturated). *)
  let e = Changes.cost_change ~reduced_cost_after:2 ~flow:5 ~forward_rescap:0 in
  checkb "c' > 0 with flow breaks" true e.Changes.breaks_optimality;
  (* cpi = 0 -> breaks iff carrying flow. *)
  let e = Changes.cost_change ~reduced_cost_after:1 ~flow:3 ~forward_rescap:2 in
  checkb "f > 0 breaks" true e.Changes.breaks_optimality;
  let e = Changes.cost_change ~reduced_cost_after:1 ~flow:0 ~forward_rescap:2 in
  checkb "f = 0 fine" false e.Changes.breaks_optimality;
  (* cpi > 0 -> still positive, no flow: fine. *)
  let e = Changes.cost_change ~reduced_cost_after:5 ~flow:0 ~forward_rescap:4 in
  checkb "green" false e.Changes.breaks_optimality

let test_table3_decrease_cost () =
  (* cpi > 0 -> breaks iff new reduced cost negative (spare capacity). *)
  let e = Changes.cost_change ~reduced_cost_after:(-1) ~flow:0 ~forward_rescap:4 in
  checkb "c' < 0 with rescap breaks" true e.Changes.breaks_optimality;
  (* Saturated arc going more negative stays compliant. *)
  let e = Changes.cost_change ~reduced_cost_after:(-3) ~flow:5 ~forward_rescap:0 in
  checkb "saturated fine" false e.Changes.breaks_optimality

let test_table3_supply_change () =
  checkb "delta breaks feasibility" true (Changes.supply_change ~delta:1).Changes.breaks_feasibility;
  checkb "no delta" false (Changes.supply_change ~delta:0).Changes.breaks_feasibility

let test_classify_arc_live () =
  let g, _, _, _, ab, _, _ = triangle () in
  let e = Changes.classify_arc g ab ~f:(fun () -> G.set_cost g ab (-4)) in
  checkb "cost drop on empty arc breaks optimality" true e.Changes.breaks_optimality;
  let e = Changes.classify_arc g ab ~f:(fun () -> G.set_capacity g ab 2) in
  checkb "cap shrink above flow fine" false e.Changes.breaks_feasibility

(* {1 Validators} *)

let test_validate_feasibility () =
  let g, _, _, _, ab, bc, _ = triangle () in
  checkb "initially infeasible (excess)" false (Validate.is_feasible g);
  G.push g ab 2;
  G.push g bc 2;
  checkb "feasible after routing" true (Validate.is_feasible g)

let test_validate_negative_cycle () =
  let g = G.create () in
  let a = G.add_node g ~supply:0 in
  let b = G.add_node g ~supply:0 in
  let ab = G.add_arc g ~src:a ~dst:b ~cost:1 ~cap:5 in
  ignore (G.add_arc g ~src:b ~dst:a ~cost:(-3) ~cap:5);
  checkb "has negative cycle" true (Validate.negative_cycle g <> None);
  checkb "not optimal" false (Validate.is_optimal g);
  (* Kill the cycle by zeroing capacity along one direction. *)
  G.set_capacity g ab 0;
  checkb "no cycle left" true (Validate.negative_cycle g = None)

let test_validate_reduced_cost () =
  let g, a, _, _, _, _, _ = triangle () in
  checkb "zero potentials, positive costs: rc-optimal" true (Validate.is_reduced_cost_optimal g);
  G.set_potential g a 10;
  checkb "skewed potentials violate" false (Validate.is_reduced_cost_optimal g);
  checkb "but are 10-optimal" true (Validate.is_epsilon_optimal g ~eps:10)

(* {1 DIMACS} *)

let test_dimacs_roundtrip () =
  let g, _, _, _, _, _, _ = triangle () in
  let text = Dimacs.emit g in
  let g', _ = Dimacs.parse_string text in
  checki "nodes" (G.node_count g) (G.node_count g');
  checki "arcs" (G.arc_count g) (G.arc_count g');
  let cost_multiset gr =
    let acc = ref [] in
    G.iter_arcs gr (fun a -> acc := (G.cost gr a, G.capacity gr a) :: !acc);
    List.sort compare !acc
  in
  check
    Alcotest.(list (pair int int))
    "arc data survives" (cost_multiset g) (cost_multiset g')

let test_dimacs_rejects_garbage () =
  Alcotest.check_raises "no problem line" (Failure "Dimacs.parse: missing problem line")
    (fun () -> ignore (Dimacs.parse_string "c nothing"));
  let bad = "p min 2 1\na 1 2 1 5 3" in
  Alcotest.check_raises "lower bound" (Failure "Dimacs.parse: non-zero lower bounds unsupported")
    (fun () -> ignore (Dimacs.parse_string bad))

let test_dimacs_state_roundtrip () =
  (* [emit_state]/[parse_state] must round-trip flows, potentials and the
     resulting excesses — it is the repro-artifact dump format. *)
  let g, na, nb, _, ab, bc, _ = triangle () in
  G.push g ab 2;
  G.push g bc 2;
  G.set_potential g na 7;
  G.set_potential g nb (-3);
  let g', _ = Dimacs.parse_state_string (Dimacs.emit_state g) in
  let flows gr =
    let acc = ref [] in
    G.iter_arcs gr (fun a -> acc := G.flow gr a :: !acc);
    List.rev !acc
  in
  let per_node f gr =
    let acc = ref [] in
    G.iter_nodes gr (fun n -> acc := f gr n :: !acc);
    List.sort compare !acc
  in
  check Alcotest.(list int) "flows survive (arc order)" (flows g) (flows g');
  check Alcotest.(list int) "potentials survive" (per_node G.potential g)
    (per_node G.potential g');
  check Alcotest.(list int) "excesses survive" (per_node G.excess g)
    (per_node G.excess g');
  (* Plain emit output is also valid state input (no state records). *)
  let g'', _ = Dimacs.parse_state_string (Dimacs.emit g) in
  checkb "plain emit parses as state" true
    (List.for_all (fun f -> f = 0) (flows g''))

let test_dimacs_solution_lines () =
  let g, _, _, _, ab, bc, _ = triangle () in
  G.push g ab 2;
  G.push g bc 2;
  let s = Dimacs.emit_solution g in
  checkb "has objective" true (String.length s > 0 && s.[0] = 's');
  checkb "mentions flow" true
    (String.split_on_char '\n' s
    |> List.exists (fun l -> String.length l > 0 && l.[0] = 'f'))

(* {1 Property tests} *)

let arbitrary_ops = QCheck.(list_of_size Gen.(int_range 1 60) (int_range 0 99))

let prop_excess_conservation =
  (* Sum of excesses always equals sum of supplies, under any mutation mix. *)
  QCheck.Test.make ~name:"excess conservation under random mutations" ~count:200 arbitrary_ops
    (fun ops ->
      let g = G.create () in
      let nodes = ref [] in
      let arcs = ref [] in
      let rand_node seed =
        match !nodes with
        | [] -> None
        | ns -> Some (List.nth ns (seed mod List.length ns))
      in
      let rand_arc seed =
        match !arcs with
        | [] -> None
        | az -> Some (List.nth az (seed mod List.length az))
      in
      List.iteri
        (fun i op ->
          match op mod 7 with
          | 0 -> nodes := G.add_node g ~supply:((i mod 5) - 2) :: !nodes
          | 1 -> (
              match (rand_node op, rand_node (op + i)) with
              | Some a, Some b when a <> b ->
                  arcs := G.add_arc g ~src:a ~dst:b ~cost:(op - 50) ~cap:(op mod 10) :: !arcs
              | _ -> ())
          | 2 -> (
              match rand_arc op with
              | Some a when G.arc_is_live g a ->
                  let d = min (G.rescap g a) 3 in
                  G.push g a d
              | _ -> ())
          | 3 -> (
              match rand_arc op with
              | Some a when G.arc_is_live g a -> G.set_capacity g a (op mod 6)
              | _ -> ())
          | 4 -> (
              match rand_arc op with
              | Some a when G.arc_is_live g a -> G.set_cost g a ((op mod 21) - 10)
              | _ -> ())
          | 5 -> (
              match rand_node op with
              | Some n when G.node_is_live g n -> G.set_supply g n ((op mod 9) - 4)
              | _ -> ())
          | 6 -> (
              match rand_arc op with
              | Some a when G.arc_is_live g a ->
                  G.remove_arc g a;
                  arcs := List.filter (fun x -> x <> a) !arcs
              | _ -> ())
          | _ -> ())
        ops;
      let sum_supply = ref 0 and sum_excess = ref 0 in
      G.iter_nodes g (fun n ->
          sum_supply := !sum_supply + G.supply g n;
          sum_excess := !sum_excess + G.excess g n);
      !sum_supply = !sum_excess)

let prop_flow_conservation =
  (* After pushes only, excess(n) = supply(n) + inflow - outflow. *)
  QCheck.Test.make ~name:"excess matches recomputed net flow" ~count:200 arbitrary_ops
    (fun ops ->
      let g = G.create () in
      let n = 8 in
      let nodes = Array.init n (fun i -> G.add_node g ~supply:(i - 4)) in
      let arcs = ref [] in
      List.iter
        (fun op ->
          let a = nodes.(op mod n) and b = nodes.((op / 3) mod n) in
          if a <> b then arcs := G.add_arc g ~src:a ~dst:b ~cost:op ~cap:(op mod 7) :: !arcs)
        ops;
      List.iteri
        (fun i a ->
          let d = min (G.rescap g a) (i mod 3) in
          G.push g a d)
        !arcs;
      let inflow = Array.make n 0 and outflow = Array.make n 0 in
      let index nd =
        let rec find i = if nodes.(i) = nd then i else find (i + 1) in
        find 0
      in
      G.iter_arcs g (fun a ->
          let f = G.flow g a in
          outflow.(index (G.src g a)) <- outflow.(index (G.src g a)) + f;
          inflow.(index (G.dst g a)) <- inflow.(index (G.dst g a)) + f);
      Array.for_all
        (fun i -> G.excess g nodes.(i) = G.supply g nodes.(i) + inflow.(i) - outflow.(i))
        (Array.init n Fun.id))

(* The active adjacency list must contain exactly the residual arcs with
   positive capacity, for every node, under any mutation sequence. *)
let active_list_consistent g =
  let ok = ref true in
  G.iter_nodes g (fun n ->
      (* Collect active list. *)
      let active = Hashtbl.create 8 in
      let it = ref (G.first_active g n) in
      while !it >= 0 do
        Hashtbl.replace active !it ();
        it := G.next_active g !it
      done;
      (* Compare against the full list filtered by rescap. *)
      let expected = Hashtbl.create 8 in
      G.iter_out g n (fun a -> if G.rescap g a > 0 then Hashtbl.replace expected a ());
      if Hashtbl.length active <> Hashtbl.length expected then ok := false
      else
        Hashtbl.iter (fun a () -> if not (Hashtbl.mem expected a) then ok := false) active);
  !ok

let prop_active_list_matches_rescap =
  QCheck.Test.make ~name:"active lists track positive residual capacity" ~count:300
    arbitrary_ops
    (fun ops ->
      let g = G.create () in
      let nodes = ref [] in
      let arcs = ref [] in
      let rand_node seed =
        match !nodes with [] -> None | ns -> Some (List.nth ns (seed mod List.length ns))
      in
      let rand_arc seed =
        match !arcs with [] -> None | az -> Some (List.nth az (seed mod List.length az))
      in
      List.iteri
        (fun i op ->
          match op mod 8 with
          | 0 -> nodes := G.add_node g ~supply:(i mod 3) :: !nodes
          | 1 -> (
              match (rand_node op, rand_node (op + i)) with
              | Some a, Some b when a <> b ->
                  arcs := G.add_arc g ~src:a ~dst:b ~cost:op ~cap:(op mod 5) :: !arcs
              | _ -> ())
          | 2 | 3 -> (
              match rand_arc op with
              | Some a when G.arc_is_live g a ->
                  let r = if op mod 2 = 0 then a else G.rev a in
                  G.push g r (min (G.rescap g r) ((op mod 3) + 1))
              | _ -> ())
          | 4 -> (
              match rand_arc op with
              | Some a when G.arc_is_live g a -> G.set_capacity g a (op mod 7)
              | _ -> ())
          | 5 -> (
              match rand_arc op with
              | Some a when G.arc_is_live g a ->
                  G.remove_arc g a;
                  arcs := List.filter (fun x -> x <> a) !arcs
              | _ -> ())
          | 6 -> (
              match rand_node op with
              | Some n when G.node_is_live g n && op mod 5 = 0 ->
                  (* Occasionally remove a node (and its arcs). *)
                  let dead = ref [] in
                  G.iter_out g n (fun a -> dead := (a land lnot 1) :: !dead);
                  G.remove_node g n;
                  nodes := List.filter (fun x -> x <> n) !nodes;
                  arcs := List.filter (fun a -> not (List.mem (a land lnot 1) !dead)) !arcs
              | _ -> ())
          | 7 -> if op mod 13 = 0 then G.reset_flow g
          | _ -> ())
        ops;
      active_list_consistent g)

let test_active_list_after_push_cycle () =
  let g, _, _, _, ab, _, _ = triangle () in
  checkb "initially consistent" true (active_list_consistent g);
  G.push g ab 5;
  (* Saturated: forward leaves active list, reverse joins. *)
  checkb "after saturation" true (active_list_consistent g);
  G.push g (G.rev ab) 5;
  checkb "after unwind" true (active_list_consistent g)

let test_fast_iteration_matches_iter_out () =
  let g, _, b, _, _, _, _ = triangle () in
  let via_closure = ref [] in
  G.iter_out g b (fun a -> via_closure := a :: !via_closure);
  let via_loop = ref [] in
  let it = ref (G.first_out g b) in
  while !it >= 0 do
    via_loop := !it :: !via_loop;
    it := G.next_out g !it
  done;
  check Alcotest.(list int) "same arcs" !via_closure !via_loop

let test_copy_is_independent () =
  let g, a, _, _, ab, _, _ = triangle () in
  let g2 = G.copy g in
  G.push g ab 3;
  G.set_supply g a 9;
  checki "copy keeps flow" 0 (G.flow g2 ab);
  checki "copy keeps supply" 2 (G.supply g2 a);
  checkb "copy active lists valid" true (active_list_consistent g2)

let test_max_arc_cost () =
  let g, _, _, _, _, _, _ = triangle () in
  checki "max cost" 10 (G.max_arc_cost g)

(* {2 copy_into ≡ copy} *)

(* Observational equality of two graphs: every accessor a solver or the
   placement extractor uses must agree — bounds, liveness, supplies,
   excesses, potentials, costs, residual capacities, adjacency and active
   list {e sequences} (order matters to arc prioritization), and the
   change counters. *)
let assert_graphs_identical msg (a : G.t) (b : G.t) =
  let ctx fmt = Printf.ksprintf (fun s -> msg ^ ": " ^ s) fmt in
  checki (ctx "node_bound") (G.node_bound a) (G.node_bound b);
  checki (ctx "node_count") (G.node_count a) (G.node_count b);
  checki (ctx "arc_bound") (G.arc_bound a) (G.arc_bound b);
  checki (ctx "arc_count") (G.arc_count a) (G.arc_count b);
  let list_of first next g n =
    let rec go acc a = if a < 0 then List.rev acc else go (a :: acc) (next g a) in
    go [] (first g n)
  in
  for n = 0 to G.node_bound a - 1 do
    checkb (ctx "node %d live" n) (G.node_is_live a n) (G.node_is_live b n);
    if G.node_is_live a n then begin
      checki (ctx "supply %d" n) (G.supply a n) (G.supply b n);
      checki (ctx "excess %d" n) (G.excess a n) (G.excess b n);
      checki (ctx "potential %d" n) (G.potential a n) (G.potential b n);
      Alcotest.(check (list int))
        (ctx "out-list %d" n)
        (list_of G.first_out G.next_out a n)
        (list_of G.first_out G.next_out b n);
      Alcotest.(check (list int))
        (ctx "active-list %d" n)
        (list_of G.first_active G.next_active a n)
        (list_of G.first_active G.next_active b n)
    end
  done;
  for arc = 0 to G.arc_bound a - 1 do
    checkb (ctx "arc %d live" arc) (G.arc_is_live a arc) (G.arc_is_live b arc);
    if G.arc_is_live a arc then begin
      checki (ctx "src %d" arc) (G.src a arc) (G.src b arc);
      checki (ctx "dst %d" arc) (G.dst a arc) (G.dst b arc);
      checki (ctx "cost %d" arc) (G.cost a arc) (G.cost b arc);
      checki (ctx "rescap %d" arc) (G.rescap a arc) (G.rescap b arc)
    end
  done;
  checki (ctx "total_cost") (G.total_cost a) (G.total_cost b);
  let ca = G.peek_changes a and cb = G.peek_changes b in
  checkb (ctx "change summary") true (ca = cb)

(* A grab-bag of interesting source graphs: fresh generator output,
   warm-started (solved, so flows/potentials/active lists are
   non-trivial), and structurally mutated (removals populate the free
   lists, additions recycle them). *)
let copy_into_cases () =
  let solved inst =
    ignore (Mcmf.Ssp.solve inst.Flowgraph.Netgen.graph);
    inst.Flowgraph.Netgen.graph
  in
  let mutated () =
    let inst = Flowgraph.Netgen.transportation ~sources:8 ~sinks:6 ~seed:5 () in
    let g = inst.Flowgraph.Netgen.graph in
    ignore (Mcmf.Ssp.solve g);
    (* Remove some arcs and a node, then add replacements so free lists
       are partially recycled and excesses are non-trivial. *)
    let arcs = ref [] in
    G.iter_arcs g (fun a -> arcs := a :: !arcs);
    List.iteri (fun i a -> if i mod 5 = 0 then G.remove_arc g a) !arcs;
    (match List.filter (G.node_is_live g) inst.Flowgraph.Netgen.sinks with
    | n :: _ -> G.remove_node g n
    | [] -> ());
    let live = ref [] in
    G.iter_nodes g (fun n -> live := n :: !live);
    (match !live with
    | x :: y :: _ -> ignore (G.add_arc g ~src:x ~dst:y ~cost:3 ~cap:7)
    | _ -> ());
    g
  in
  [
    ( "transportation",
      (Flowgraph.Netgen.transportation ~sources:12 ~sinks:9 ~seed:1 ()).Flowgraph.Netgen.graph
    );
    ("grid solved", solved (Flowgraph.Netgen.grid ~width:6 ~height:5 ~seed:2 ()));
    ( "scheduling solved",
      solved (Flowgraph.Netgen.scheduling ~tasks:40 ~machines:10 ~seed:3 ()) );
    ("mutated", mutated ());
    ("empty", G.create ());
  ]

let test_copy_into_matches_copy () =
  List.iter
    (fun (name, src) ->
      (* Into a fresh empty destination... *)
      let dst = G.create () in
      G.copy_into dst src;
      assert_graphs_identical (name ^ " into empty") (G.copy src) dst;
      (* ...and into a warm destination that already held a different,
         larger graph (the shrink case: dst's vecs must truncate). *)
      let big =
        (Flowgraph.Netgen.transportation ~sources:30 ~sinks:25 ~seed:99 ())
          .Flowgraph.Netgen.graph
      in
      let dst2 = G.copy big in
      G.copy_into dst2 src;
      assert_graphs_identical (name ^ " shrink") (G.copy src) dst2;
      (* The copy is independent: mutating dst must not touch src. *)
      let before = G.copy src in
      (match
         let acc = ref [] in
         G.iter_nodes dst2 (fun n -> acc := n :: !acc);
         !acc
       with
      | n :: _ -> G.set_supply dst2 n (G.supply dst2 n + 5)
      | [] -> ());
      assert_graphs_identical (name ^ " src untouched") before src)
    (copy_into_cases ())

let test_copy_into_self_noop () =
  let inst = Flowgraph.Netgen.grid ~width:4 ~height:4 ~seed:7 () in
  let g = inst.Flowgraph.Netgen.graph in
  let snapshot = G.copy g in
  G.copy_into g g;
  assert_graphs_identical "self copy_into" snapshot g

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "flowgraph"
    [
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "grow/set/copy" `Quick test_vec_grow_set;
          Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
        ] );
      ( "graph",
        [
          Alcotest.test_case "construction" `Quick test_graph_construction;
          Alcotest.test_case "push updates excess" `Quick test_graph_push_excess;
          Alcotest.test_case "remove arc credits flow" `Quick test_graph_remove_arc_credits_flow;
          Alcotest.test_case "remove node drops incident arcs" `Quick
            test_graph_remove_node_removes_incident;
          Alcotest.test_case "capacity decrease pushes back overflow" `Quick
            test_graph_set_capacity_overflow;
          Alcotest.test_case "supply change shifts excess" `Quick test_graph_set_supply_shifts_excess;
          Alcotest.test_case "reset flow" `Quick test_graph_reset_flow;
          Alcotest.test_case "reduced cost" `Quick test_graph_reduced_cost;
          Alcotest.test_case "out-list covers both directions" `Quick
            test_graph_iter_out_covers_both_directions;
          Alcotest.test_case "change summary" `Quick test_graph_change_summary;
        ] );
      ( "table3",
        [
          Alcotest.test_case "increase capacity" `Quick test_table3_increase_capacity;
          Alcotest.test_case "decrease capacity" `Quick test_table3_decrease_capacity;
          Alcotest.test_case "increase cost" `Quick test_table3_increase_cost;
          Alcotest.test_case "decrease cost" `Quick test_table3_decrease_cost;
          Alcotest.test_case "supply change" `Quick test_table3_supply_change;
          Alcotest.test_case "classify live arc" `Quick test_classify_arc_live;
        ] );
      ( "validate",
        [
          Alcotest.test_case "feasibility" `Quick test_validate_feasibility;
          Alcotest.test_case "negative cycle detection" `Quick test_validate_negative_cycle;
          Alcotest.test_case "reduced-cost optimality" `Quick test_validate_reduced_cost;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "state roundtrip" `Quick test_dimacs_state_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_dimacs_rejects_garbage;
          Alcotest.test_case "solution lines" `Quick test_dimacs_solution_lines;
        ] );
      ( "active-lists",
        Alcotest.test_case "push cycle" `Quick test_active_list_after_push_cycle
        :: Alcotest.test_case "fast iteration matches iter_out" `Quick
             test_fast_iteration_matches_iter_out
        :: Alcotest.test_case "copy independence" `Quick test_copy_is_independent
        :: Alcotest.test_case "max arc cost" `Quick test_max_arc_cost
        :: qcheck [ prop_active_list_matches_rescap ] );
      ( "copy-into",
        [
          Alcotest.test_case "matches copy (fresh/warm/mutated/shrink)" `Quick
            test_copy_into_matches_copy;
          Alcotest.test_case "self copy is a no-op" `Quick test_copy_into_self_noop;
        ] );
      ("properties", qcheck [ prop_excess_conservation; prop_flow_conservation ]);
    ]
