(* Tests for the cluster substrate: topology, workload lifecycle, event
   queue, state accounting, and the synthetic trace generator's calibrated
   distributions. *)

module W = Cluster.Workload
module T = Cluster.Types

let checki msg = Alcotest.check Alcotest.int msg
let checkb msg = Alcotest.check Alcotest.bool msg
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* {1 Topology} *)

let test_topology_shape () =
  let t = Cluster.Topology.make ~machines:100 ~machines_per_rack:40 ~slots_per_machine:12 () in
  checki "machines" 100 (Cluster.Topology.machine_count t);
  checki "racks" 3 (Cluster.Topology.rack_count t);
  checki "slots" 1200 (Cluster.Topology.total_slots t);
  checki "rack of 0" 0 (Cluster.Topology.rack_of t 0);
  checki "rack of 39" 0 (Cluster.Topology.rack_of t 39);
  checki "rack of 40" 1 (Cluster.Topology.rack_of t 40);
  checki "last rack size" 20 (List.length (Cluster.Topology.machines_in_rack t 2));
  Alcotest.check_raises "bad machine" (Invalid_argument "Topology.machine: bad id") (fun () ->
      ignore (Cluster.Topology.machine t 100));
  Alcotest.check_raises "bad params" (Invalid_argument "Topology.make: non-positive parameter")
    (fun () -> ignore (Cluster.Topology.make ~machines:0 ~machines_per_rack:1 ~slots_per_machine:1 ()))

(* {1 Workload lifecycle} *)

let test_task_lifecycle () =
  let t = W.make_task ~tid:1 ~job:0 ~submit_time:10. ~duration:5. () in
  checkb "waiting" true (W.is_waiting t);
  W.start t ~machine:3 ~now:12.;
  checkb "running" true (W.is_running t);
  checkb "machine" true (W.machine_of t = Some 3);
  checkf "placement latency" 2. t.W.placement_latency;
  W.finish t ~now:17.;
  (match t.W.state with
  | T.Finished { response_time } -> checkf "response" 7. response_time
  | _ -> Alcotest.fail "not finished");
  Alcotest.check_raises "double finish" (Invalid_argument "Workload.finish: task not running")
    (fun () -> W.finish t ~now:18.)

let test_task_preempt_keeps_first_latency () =
  let t = W.make_task ~tid:1 ~job:0 ~submit_time:0. ~duration:5. () in
  W.start t ~machine:0 ~now:1.;
  W.preempt t;
  checkb "waiting again" true (W.is_waiting t);
  W.start t ~machine:1 ~now:9.;
  checkf "placement latency is first placement's" 1. t.W.placement_latency

(* {1 Event queue} *)

let test_event_queue_ordering () =
  let q = Cluster.Event_queue.create () in
  Cluster.Event_queue.add q ~time:3. "c";
  Cluster.Event_queue.add q ~time:1. "a";
  Cluster.Event_queue.add q ~time:2. "b";
  Cluster.Event_queue.add q ~time:1. "a2";
  (* FIFO among equal timestamps *)
  let order = List.init 4 (fun _ -> snd (Cluster.Event_queue.pop q)) in
  Alcotest.(check (list string)) "order" [ "a"; "a2"; "b"; "c" ] order;
  checkb "empty" true (Cluster.Event_queue.is_empty q)

let test_event_queue_pop_until () =
  let q = Cluster.Event_queue.create () in
  List.iter (fun t -> Cluster.Event_queue.add q ~time:t t) [ 5.; 1.; 3.; 8. ];
  let early = Cluster.Event_queue.pop_until q 4. in
  Alcotest.(check (list (float 1e-9))) "early" [ 1.; 3. ] (List.map fst early);
  checki "left" 2 (Cluster.Event_queue.length q);
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.add: NaN time") (fun () ->
      Cluster.Event_queue.add q ~time:Float.nan 0.)

let prop_event_queue_sorted =
  QCheck.Test.make ~name:"event queue pops in time order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 60) (float_bound_inclusive 1000.))
    (fun times ->
      let q = Cluster.Event_queue.create () in
      List.iter (fun t -> Cluster.Event_queue.add q ~time:t ()) times;
      let rec drain last =
        if Cluster.Event_queue.is_empty q then true
        else begin
          let t, () = Cluster.Event_queue.pop q in
          t >= last && drain t
        end
      in
      drain neg_infinity)

(* {1 State} *)

let mk_state () =
  Cluster.State.create
    (Cluster.Topology.make ~machines:4 ~machines_per_rack:2 ~slots_per_machine:2 ())

let submit_simple st ~jid ~n =
  let tasks =
    Array.init n (fun i -> W.make_task ~tid:((jid * 100) + i) ~job:jid ~submit_time:0. ~duration:10. ())
  in
  Cluster.State.submit_job st (W.make_job ~jid ~klass:T.Batch ~submit_time:0. ~tasks)

let test_state_slot_accounting () =
  let st = mk_state () in
  submit_simple st ~jid:0 ~n:3;
  checki "waiting" 3 (Cluster.State.waiting_count st);
  checki "live" 3 (Cluster.State.live_task_count st);
  Cluster.State.place st 0 0 ~now:1.;
  Cluster.State.place st 1 0 ~now:1.;
  checki "machine 0 full" 0 (Cluster.State.free_slots_on st 0);
  Alcotest.check_raises "overplace"
    (Invalid_argument "State.place: machine 0 has no free slot") (fun () ->
      Cluster.State.place st 2 0 ~now:1.);
  Cluster.State.finish st 0 ~now:2.;
  checki "slot freed" 1 (Cluster.State.free_slots_on st 0);
  checki "live after finish" 2 (Cluster.State.live_task_count st);
  checkb "utilization" true (abs_float (Cluster.State.utilization st -. (1. /. 8.)) < 1e-9)

let test_state_preempt_returns_to_queue () =
  let st = mk_state () in
  submit_simple st ~jid:0 ~n:1;
  Cluster.State.place st 0 1 ~now:0.;
  checki "no waiting" 0 (Cluster.State.waiting_count st);
  Cluster.State.preempt st 0;
  checki "waiting again" 1 (Cluster.State.waiting_count st);
  checki "machine emptied" 0 (Cluster.State.running_count st 1);
  (* Waiting order: preempted task re-queues at the back. *)
  submit_simple st ~jid:1 ~n:1;
  let order = List.map (fun (t : W.task) -> t.W.tid) (Cluster.State.waiting_tasks st) in
  Alcotest.(check (list int)) "order" [ 0; 100 ] order

let test_state_machine_failure () =
  let st = mk_state () in
  submit_simple st ~jid:0 ~n:2;
  Cluster.State.place st 0 0 ~now:0.;
  Cluster.State.place st 1 0 ~now:0.;
  let victims = List.sort compare (Cluster.State.fail_machine st 0) in
  Alcotest.(check (list int)) "victims" [ 0; 1 ] victims;
  checkb "dead" false (Cluster.State.machine_is_live st 0);
  checki "free slots on dead machine" 0 (Cluster.State.free_slots_on st 0);
  checki "waiting" 2 (Cluster.State.waiting_count st);
  Cluster.State.restore_machine st 0;
  checkb "alive" true (Cluster.State.machine_is_live st 0);
  checki "capacity back" 2 (Cluster.State.free_slots_on st 0)

let test_state_duplicate_job_rejected () =
  let st = mk_state () in
  submit_simple st ~jid:0 ~n:1;
  Alcotest.check_raises "duplicate" (Invalid_argument "State.submit_job: duplicate job 0")
    (fun () -> submit_simple st ~jid:0 ~n:1)

(* {1 Trace generator} *)

let test_trace_steady_state_size () =
  let p =
    { (Cluster.Trace.default_params ~machines:500 ()) with target_utilization = 0.5; horizon_s = 0. }
  in
  let tr = Cluster.Trace.generate p in
  let total = List.fold_left (fun acc (j : W.job) -> acc + Array.length j.W.tasks) 0 tr.Cluster.Trace.initial_jobs in
  let expect = Cluster.Trace.steady_state_tasks p in
  checkb "within 2% of target"
    true
    (abs (total - expect) <= max 2 (expect / 50))

let test_trace_heavy_tail () =
  let sizes = Cluster.Trace.job_size_sample ~seed:7 50_000 in
  let big = Array.fold_left (fun acc s -> if s > 1000 then acc + 1 else acc) 0 sizes in
  let frac = float_of_int big /. 50_000. in
  (* Paper: 1.2% of jobs have over 1,000 tasks. *)
  checkb "tail fraction near 1.2%" true (frac > 0.006 && frac < 0.02);
  checkb "max beyond 20k possible" true (Array.fold_left max 0 sizes > 2_000)

let test_trace_deterministic () =
  let p = { (Cluster.Trace.default_params ~machines:100 ()) with horizon_s = 100. } in
  let t1 = Cluster.Trace.generate p and t2 = Cluster.Trace.generate p in
  checki "same jobs" (List.length t1.Cluster.Trace.initial_jobs)
    (List.length t2.Cluster.Trace.initial_jobs);
  checki "same arrivals" (List.length t1.Cluster.Trace.arrivals)
    (List.length t2.Cluster.Trace.arrivals);
  let sig_of tr =
    List.map
      (fun (t, (j : W.job)) -> (t, j.W.jid, Array.length j.W.tasks))
      tr.Cluster.Trace.arrivals
  in
  checkb "identical streams" true (sig_of t1 = sig_of t2)

let test_trace_speedup_shrinks_durations () =
  let base = { (Cluster.Trace.default_params ~machines:200 ()) with horizon_s = 0.; seed = 3 } in
  let fast = { base with speedup = 10. } in
  let median_batch tr =
    let ds = ref [] in
    List.iter
      (fun (j : W.job) ->
        if j.W.klass = T.Batch then
          Array.iter (fun (t : W.task) -> ds := t.W.duration :: !ds) j.W.tasks)
      tr.Cluster.Trace.initial_jobs;
    let a = Array.of_list !ds in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let m1 = median_batch (Cluster.Trace.generate base) in
  let m10 = median_batch (Cluster.Trace.generate fast) in
  checkb "10x speedup shrinks durations roughly 10x" true (m10 < m1 /. 4.)

let test_trace_arrivals_sorted_and_within_horizon () =
  let p = { (Cluster.Trace.default_params ~machines:2000 ()) with horizon_s = 50. } in
  let tr = Cluster.Trace.generate p in
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  checkb "sorted" true (sorted tr.Cluster.Trace.arrivals);
  checkb "in horizon" true (List.for_all (fun (t, _) -> t <= 50.) tr.Cluster.Trace.arrivals);
  checkb "locality present" true
    (List.for_all
       (fun (j : W.job) ->
         Array.for_all (fun (t : W.task) -> t.W.input_machines <> []) j.W.tasks)
       tr.Cluster.Trace.initial_jobs)

let test_trace_block_placements_span_threshold () =
  (* Locality fractions must straddle the Quincy thresholds: some machines
     hold >= 14% of a task's blocks, while large inputs scatter blocks so
     other holders sit between 2% and 14% (what Fig. 15 sweeps). *)
  let p = { (Cluster.Trace.default_params ~machines:400 ()) with horizon_s = 0.; seed = 5 } in
  let tr = Cluster.Trace.generate p in
  let concentrated = ref 0 and fine_grained = ref 0 and tasks = ref 0 in
  List.iter
    (fun (j : W.job) ->
      Array.iter
        (fun (t : W.task) ->
          if t.W.input_mb > 2000. then begin
            incr tasks;
            let total = float_of_int (List.length t.W.input_machines) in
            let counts = Hashtbl.create 8 in
            List.iter
              (fun m ->
                Hashtbl.replace counts m (1 + Option.value ~default:0 (Hashtbl.find_opt counts m)))
              t.W.input_machines;
            Hashtbl.iter
              (fun _ c ->
                let frac = float_of_int c /. total in
                if frac >= 0.14 then incr concentrated
                else if frac >= 0.02 then incr fine_grained)
              counts
          end)
        j.W.tasks)
    tr.Cluster.Trace.initial_jobs;
  checkb "has big-input tasks" true (!tasks > 10);
  checkb "some concentrated holders" true (!concentrated > 0);
  checkb "some fine-grained holders" true (!fine_grained > 0)

let test_trace_failure_injection_off_by_default () =
  let p = { (Cluster.Trace.default_params ~machines:50 ()) with horizon_s = 50. } in
  let tr = Cluster.Trace.generate p in
  checkb "no machine events" true (tr.Cluster.Trace.machine_events = [])

let test_trace_failure_events_paired () =
  let p =
    { (Cluster.Trace.default_params ~machines:50 ()) with
      horizon_s = 100.; machine_mtbf_s = 10.; machine_downtime_s = 7. }
  in
  let tr = Cluster.Trace.generate p in
  let fails =
    List.filter (fun (_, e) -> match e with Cluster.Trace.Machine_fails _ -> true | _ -> false)
      tr.Cluster.Trace.machine_events
  in
  let restores =
    List.filter
      (fun (_, e) -> match e with Cluster.Trace.Machine_restores _ -> true | _ -> false)
      tr.Cluster.Trace.machine_events
  in
  checkb "some failures" true (List.length fails > 0);
  checki "every failure has a restore" (List.length fails) (List.length restores);
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  checkb "sorted" true (sorted tr.Cluster.Trace.machine_events)

(* {1 Resources} *)

module R = Cluster.Resources

let test_resources_arithmetic () =
  let a = R.make ~cpu_milli:500 ~ram_mb:1024 () in
  let b = R.make ~cpu_milli:700 ~ram_mb:512 ~disk_mb:10 () in
  let s = R.add a b in
  checki "cpu adds" 1200 s.R.cpu_milli;
  checki "ram adds" 1536 s.R.ram_mb;
  let d = R.sub a b in
  checki "sub clamps at zero" 0 d.R.cpu_milli;
  checki "sub" 512 d.R.ram_mb;
  checkb "fits itself" true (R.fits ~request:a ~available:a);
  checkb "does not fit smaller" false (R.fits ~request:s ~available:a);
  checki "scale" 2400 (R.scale s 2).R.cpu_milli

let test_resources_dominant_share () =
  let cap = R.make ~cpu_milli:1000 ~ram_mb:1000 ~disk_mb:1000 () in
  let req = R.make ~cpu_milli:100 ~ram_mb:500 ~disk_mb:10 () in
  checkb "dominant is ram" true (abs_float (R.dominant_share ~request:req ~capacity:cap -. 0.5) < 1e-9);
  checkb "zero capacity" true (R.dominant_share ~request:req ~capacity:R.zero = 0.)

let test_state_multidimensional_fit () =
  (* A RAM-hungry task must not fit a machine already hosting another
     RAM-hungry task, even though a slot is free. *)
  let topo =
    Cluster.Topology.make ~machines:1 ~machines_per_rack:1 ~slots_per_machine:4
      ~resources_per_slot:(R.make ~cpu_milli:1000 ~ram_mb:1000 ())
      ()
  in
  let st = Cluster.State.create topo in
  let hungry tid =
    W.make_task ~tid ~job:0 ~submit_time:0. ~duration:10.
      ~request:(R.make ~cpu_milli:100 ~ram_mb:3000 ())
      ()
  in
  let tasks = [| hungry 0; hungry 1 |] in
  Cluster.State.submit_job st (W.make_job ~jid:0 ~klass:T.Batch ~submit_time:0. ~tasks);
  checkb "first fits" true (Cluster.State.fits_on st 0 tasks.(0));
  Cluster.State.place st 0 0 ~now:0.;
  checki "slots remain" 3 (Cluster.State.free_slots_on st 0);
  checkb "second blocked by RAM" false (Cluster.State.fits_on st 0 tasks.(1));
  checki "used ram accounted" 3000 (Cluster.State.used_resources st 0).R.ram_mb

let test_baselines_respect_resources () =
  (* Two machines; machine 0 is RAM-saturated: every baseline must route a
     RAM-hungry task to machine 1. *)
  let topo =
    Cluster.Topology.make ~machines:2 ~machines_per_rack:2 ~slots_per_machine:4
      ~resources_per_slot:(R.make ~cpu_milli:1000 ~ram_mb:1000 ())
      ()
  in
  let st = Cluster.State.create topo in
  let hungry tid =
    W.make_task ~tid ~job:0 ~submit_time:0. ~duration:10.
      ~request:(R.make ~cpu_milli:100 ~ram_mb:3500 ())
      ()
  in
  let tasks = Array.init 3 (fun i -> hungry i) in
  Cluster.State.submit_job st (W.make_job ~jid:0 ~klass:T.Batch ~submit_time:0. ~tasks);
  Cluster.State.place st 0 0 ~now:0.;
  List.iter
    (fun b ->
      (* Mesos only sees a rotating window of offers: allow a few calls. *)
      let rec try_select n =
        match b.Baselines.select st tasks.(1) with
        | Some m -> checkb (b.Baselines.name ^ " avoids saturated machine") true (m = 1)
        | None when n > 0 -> try_select (n - 1)
        | None -> Alcotest.fail (b.Baselines.name ^ " found no machine")
      in
      try_select 4)
    (List.filter (fun b -> not b.Baselines.worker_side_queue) (Baselines.all ()))

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cluster"
    [
      ("topology", [ Alcotest.test_case "shape" `Quick test_topology_shape ]);
      ( "workload",
        [
          Alcotest.test_case "lifecycle" `Quick test_task_lifecycle;
          Alcotest.test_case "preempt keeps first latency" `Quick
            test_task_preempt_keeps_first_latency;
        ] );
      ( "event-queue",
        Alcotest.test_case "ordering" `Quick test_event_queue_ordering
        :: Alcotest.test_case "pop_until" `Quick test_event_queue_pop_until
        :: qcheck [ prop_event_queue_sorted ] );
      ( "state",
        [
          Alcotest.test_case "slot accounting" `Quick test_state_slot_accounting;
          Alcotest.test_case "preempt returns to queue" `Quick test_state_preempt_returns_to_queue;
          Alcotest.test_case "machine failure" `Quick test_state_machine_failure;
          Alcotest.test_case "duplicate job rejected" `Quick test_state_duplicate_job_rejected;
        ] );
      ( "resources",
        [
          Alcotest.test_case "arithmetic" `Quick test_resources_arithmetic;
          Alcotest.test_case "dominant share" `Quick test_resources_dominant_share;
          Alcotest.test_case "multi-dimensional fit" `Quick test_state_multidimensional_fit;
          Alcotest.test_case "baselines respect resources" `Quick test_baselines_respect_resources;
        ] );
      ( "trace",
        [
          Alcotest.test_case "steady-state size" `Quick test_trace_steady_state_size;
          Alcotest.test_case "heavy-tailed job sizes" `Quick test_trace_heavy_tail;
          Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
          Alcotest.test_case "speedup shrinks durations" `Quick test_trace_speedup_shrinks_durations;
          Alcotest.test_case "arrivals sorted, locality present" `Quick
            test_trace_arrivals_sorted_and_within_horizon;
          Alcotest.test_case "block placements span thresholds" `Quick
            test_trace_block_placements_span_threshold;
          Alcotest.test_case "failure injection off by default" `Quick
            test_trace_failure_injection_off_by_default;
          Alcotest.test_case "failure events paired and sorted" `Quick
            test_trace_failure_events_paired;
        ] );
    ]
