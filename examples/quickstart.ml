(* Quickstart: schedule a small job on a toy cluster with Firmament.

   Builds a 4-machine cluster, submits a 6-task batch job, runs one
   flow-based scheduling round (relaxation racing incremental cost
   scaling), and prints where every task landed.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A cluster: 4 machines in racks of 2, 2 task slots each. *)
  let topology =
    Cluster.Topology.make ~machines:4 ~machines_per_rack:2 ~slots_per_machine:2 ()
  in
  let cluster = Cluster.State.create topology in

  (* A Firmament scheduler with the load-spreading policy (paper Fig. 6a). *)
  let scheduler =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net state ->
        Firmament.Policy_load_spread.make ~drain net state)
  in

  (* A job of six 30-second tasks. *)
  let tasks =
    Array.init 6 (fun i ->
        Cluster.Workload.make_task ~tid:i ~job:0 ~submit_time:0. ~duration:30. ())
  in
  let job =
    Cluster.Workload.make_job ~jid:0 ~klass:Cluster.Types.Batch ~submit_time:0. ~tasks
  in
  Firmament.Scheduler.submit_job scheduler job;

  (* One scheduling round: update the flow network, run the MCMF solvers,
     extract and apply the optimal placements. *)
  let round = Firmament.Scheduler.schedule scheduler ~now:0. in

  Printf.printf "solver: %s won in %.2f ms\n"
    (match round.Firmament.Scheduler.winner with
    | Mcmf.Race.Relaxation -> "relaxation"
    | Mcmf.Race.Cost_scaling -> "incremental cost scaling"
    | Mcmf.Race.Repair -> "incremental repair")
    (round.Firmament.Scheduler.algorithm_runtime *. 1000.);
  List.iter
    (fun (task, machine) -> Printf.printf "task %d -> machine %d\n" task machine)
    round.Firmament.Scheduler.started;

  (* The load-spreading policy balances tasks across machines. *)
  for m = 0 to 3 do
    Printf.printf "machine %d runs %d task(s)\n" m (Cluster.State.running_count cluster m)
  done;

  (* Tasks finish; slots free up for the next round. *)
  List.iter
    (fun (task, _) -> Firmament.Scheduler.finish_task scheduler task ~now:30.)
    round.Firmament.Scheduler.started;
  Printf.printf "cluster utilization after completion: %.0f%%\n"
    (Cluster.State.utilization cluster *. 100.)
