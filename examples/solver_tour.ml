(* Solver tour: the paper's Figure 5 flow network, solved by all four
   MCMF algorithms directly through the Flowgraph/Mcmf API.

   Demonstrates: building a scheduling flow network by hand, the residual
   representation, solving with each algorithm, verifying optimality, and
   exporting the instance in DIMACS format for external solvers.

   Run with: dune exec examples/solver_tour.exe *)

module G = Flowgraph.Graph

(* The network of paper Fig. 5: two jobs (3 + 2 tasks), four machines,
   per-job unscheduled aggregators, a single sink. All task arcs have unit
   capacity; costs express placement preferences. *)
let figure5 () =
  let g = G.create () in
  let task name = (name, G.add_node g ~supply:1) in
  let t00 = task "T0,0" and t01 = task "T0,1" and t02 = task "T0,2" in
  let t10 = task "T1,0" and t11 = task "T1,1" in
  let machines = Array.init 4 (fun _ -> G.add_node g ~supply:0) in
  let u0 = G.add_node g ~supply:0 and u1 = G.add_node g ~supply:0 in
  let sink = G.add_node g ~supply:(-5) in
  let arc src dst cost cap = ignore (G.add_arc g ~src ~dst ~cost ~cap) in
  (* Placement preferences (costs on direct arcs to machines). *)
  arc (snd t00) machines.(0) 2 1;
  arc (snd t00) machines.(1) 3 1;
  arc (snd t01) machines.(0) 1 1;
  arc (snd t02) machines.(1) 6 1;
  arc (snd t02) machines.(2) 4 1;
  arc (snd t10) machines.(2) 2 1;
  arc (snd t10) machines.(3) 1 1;
  arc (snd t11) machines.(3) 2 1;
  (* Unscheduled aggregators: job 0 tasks pay 5 to wait, job 1 tasks 7. *)
  List.iter (fun (_, t) -> arc t u0 5 1) [ t00; t01; t02 ];
  List.iter (fun (_, t) -> arc t u1 7 1) [ t10; t11 ];
  Array.iter (fun m -> arc m sink 0 1) machines;
  arc u0 sink 0 3;
  arc u1 sink 0 2;
  (g, [ t00; t01; t02; t10; t11 ], machines, sink)

let () =
  let algorithms =
    [
      ("cycle canceling", fun g -> Mcmf.Cycle_canceling.solve g);
      ("successive shortest path", fun g -> Mcmf.Ssp.solve g);
      ( "cost scaling (alpha=9)",
        fun g -> Mcmf.Cost_scaling.solve (Mcmf.Cost_scaling.create ~alpha:9 ()) g );
      ("relaxation", fun g -> Mcmf.Relaxation.solve g);
    ]
  in
  Printf.printf "%-28s %-10s %-10s %s\n" "algorithm" "outcome" "cost" "runtime";
  List.iter
    (fun (name, solve) ->
      let g, _, _, _ = figure5 () in
      let stats = solve g in
      Printf.printf "%-28s %-10s %-10d %.3f ms\n" name
        (Format.asprintf "%a" Mcmf.Solver_intf.pp_outcome stats.Mcmf.Solver_intf.outcome)
        (G.total_cost g)
        (stats.Mcmf.Solver_intf.runtime *. 1000.);
      assert (Flowgraph.Validate.is_optimal g))
    algorithms;

  (* Show the optimal placements found by relaxation: trace each task's
     unit of flow. *)
  let g, tasks, machines, _sink = figure5 () in
  ignore (Mcmf.Relaxation.solve g);
  print_newline ();
  List.iter
    (fun (name, t) ->
      let placed = ref None in
      G.iter_out g t (fun a ->
          if G.is_forward a && G.flow g a = 1 then begin
            match Array.find_index (fun m -> m = G.dst g a) machines with
            | Some m -> placed := Some m
            | None -> ()
          end);
      match !placed with
      | Some m -> Printf.printf "%s scheduled on M%d\n" name m
      | None -> Printf.printf "%s left unscheduled\n" name)
    tasks;

  (* DIMACS export: feed the same instance to cs2, lemon, etc. *)
  print_newline ();
  print_endline "DIMACS min-cost flow instance:";
  print_string (Flowgraph.Dimacs.emit g);
  print_endline "solution:";
  print_string (Flowgraph.Dimacs.emit_solution g)
