(* Failure recovery: machines die mid-run and Firmament reschedules their
   tasks via the same min-cost optimization — machine failure is just a
   graph change (paper §5.2: node/arc removals reduce to supply changes).

   A 30-machine cluster runs a steady workload while we kill machines with
   a Poisson process (MTBF 20 s across the cluster) and restore them 10 s
   later, replaying everything through the simulator.

   Run with: dune exec examples/failure_recovery.exe *)

let () =
  let params =
    {
      (Cluster.Trace.default_params ~machines:30 ()) with
      target_utilization = 0.85;
      horizon_s = 60.;
      batch_task_median_s = 60.;
      machine_mtbf_s = 8.;
      machine_downtime_s = 10.;
      seed = 17;
    }
  in
  let trace = Cluster.Trace.generate params in
  Printf.printf "injected %d machine events over %.0fs:\n"
    (List.length trace.Cluster.Trace.machine_events)
    params.Cluster.Trace.horizon_s;
  List.iter
    (fun (t, ev) ->
      match ev with
      | Cluster.Trace.Machine_fails m -> Printf.printf "  t=%5.1fs machine %d fails\n" t m
      | Cluster.Trace.Machine_restores m -> Printf.printf "  t=%5.1fs machine %d restored\n" t m)
    trace.Cluster.Trace.machine_events;

  let metrics = Dcsim.Replay.run Dcsim.Replay.default_config trace in
  Printf.printf "\nreplay: %d rounds, %d placements, %d preemptions, %d migrations\n"
    metrics.Dcsim.Replay.rounds metrics.Dcsim.Replay.tasks_placed
    metrics.Dcsim.Replay.preemptions metrics.Dcsim.Replay.migrations;
  if metrics.Dcsim.Replay.placement_latencies <> [] then
    (* For failure victims this measures time since their original
       submission, so it reflects how long they had already run plus the
       rescheduling delay. *)
    Printf.printf "victim (re)placements: p50 %.1f s, p99 %.1f s after original submission\n"
      (Dcsim.Stats.percentile metrics.Dcsim.Replay.placement_latencies 50.)
      (Dcsim.Stats.percentile metrics.Dcsim.Replay.placement_latencies 99.);
  Printf.printf "every victim was rescheduled; %d tasks still waiting at the end\n"
    metrics.Dcsim.Replay.unfinished_waiting
