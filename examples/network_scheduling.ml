(* Network-aware scheduling on a simulated 40-machine testbed
   (paper §7.5, Fig. 19): short batch-analytics tasks read multi-gigabyte
   inputs over a 10G network while iperf-style background traffic hammers
   some machines. Firmament's network-aware policy reads observed
   bandwidth from the network monitor and routes tasks around hot links;
   bandwidth-oblivious baselines pile onto them and suffer in the tail.

   Run with: dune exec examples/network_scheduling.exe *)

let () =
  let machines = 40 in
  let topology =
    Cluster.Topology.make ~machines ~machines_per_rack:40 ~slots_per_machine:8 ()
  in
  (* 60 short tasks: 3.5-5 s of compute after fetching 4-8 GB of input. *)
  let arrivals =
    Dcsim.Workloads.testbed_short_batch ~machines ~n_tasks:60 ~interarrival:1.2 ~seed:5
  in
  (* Fig. 19b background: fourteen 4 Gbps iperf flows + nginx-style web
     traffic in a higher-priority network class. *)
  let background = Dcsim.Workloads.testbed_background ~machines ~seed:6 in

  let run name kind =
    let r = Dcsim.Testbed.run ~topology ~arrivals ~background kind in
    let p v = Dcsim.Stats.percentile r.Dcsim.Testbed.response_times v in
    Printf.printf "%-22s p50 %6.1fs   p90 %6.1fs   p99 %6.1fs   (%d finished)\n" name
      (p 50.) (p 90.) (p 99.) r.Dcsim.Testbed.finished;
    p 99.
  in
  print_endline "task response times with background network load:";
  let _idle = run "idle (isolation)" Dcsim.Testbed.Isolation in
  let firmament =
    run "firmament (net-aware)"
      (Dcsim.Testbed.Firmament
         (fun ~bandwidth_used ~drain net st ->
           Firmament.Policy_network_aware.make ~bandwidth_used ~drain net st))
  in
  let others =
    List.map
      (fun b -> (b.Baselines.name, run b.Baselines.name (Dcsim.Testbed.Baseline b)))
      [ Baselines.swarmkit (); Baselines.kubernetes (); Baselines.sparrow () ]
  in
  print_newline ();
  List.iter
    (fun (name, p99) ->
      Printf.printf "p99 response: firmament is %.1fx better than %s\n"
        (p99 /. firmament) name)
    others
