(* Data-locality scheduling with the Quincy policy (paper Fig. 6b).

   Shows preference arcs in action: tasks run where their input blocks
   live when possible, fall back through rack and cluster aggregators
   when their preferred machines are busy, and a higher-priority service
   job preempts batch work via the min-cost optimization — no special
   preemption code path needed.

   Run with: dune exec examples/locality_scheduling.exe *)

module W = Cluster.Workload

let () =
  (* 8 machines, 2 racks, 2 slots each. *)
  let topology =
    Cluster.Topology.make ~machines:8 ~machines_per_rack:4 ~slots_per_machine:2 ()
  in
  let cluster = Cluster.State.create topology in
  let scheduler =
    Firmament.Scheduler.create cluster ~policy:(fun ~drain net state ->
        Firmament.Policy_quincy.make ~drain net state)
  in

  (* Batch tasks whose HDFS-style input blocks live on specific machines. *)
  let batch_task tid ~input_machines =
    W.make_task ~tid ~job:0 ~submit_time:0. ~duration:300. ~input_mb:2000.
      ~input_machines ()
  in
  let tasks =
    [|
      batch_task 0 ~input_machines:[ 2; 2; 5 ];   (* mostly on machine 2 *)
      batch_task 1 ~input_machines:[ 2; 2; 2 ];   (* entirely on machine 2 *)
      batch_task 2 ~input_machines:[ 6; 6; 7 ];   (* rack 1 data *)
      batch_task 3 ~input_machines:[ 0; 1; 3 ];   (* spread across rack 0 *)
    |]
  in
  Firmament.Scheduler.submit_job scheduler
    (W.make_job ~jid:0 ~klass:Cluster.Types.Batch ~submit_time:0. ~tasks);
  let round = Firmament.Scheduler.schedule scheduler ~now:0. in
  print_endline "batch job placements (input locality respected):";
  List.iter
    (fun (tid, m) ->
      let t = Cluster.State.task cluster tid in
      let fracs = Firmament.Policy_quincy.locality_fractions t in
      let local = Option.value ~default:0. (List.assoc_opt m fracs) in
      Printf.printf "  task %d -> machine %d (rack %d), %.0f%% of its input is local\n" tid m
        (Cluster.Topology.rack_of topology m)
        (local *. 100.))
    round.Firmament.Scheduler.started;

  (* A service job arrives and needs guaranteed slots: with Omega-style
     priorities its unscheduled cost dwarfs the batch tasks', so the
     optimizer preempts batch work if the cluster is tight. *)
  let fill =
    Array.init 12 (fun i ->
        W.make_task ~tid:(100 + i) ~job:1 ~submit_time:1. ~duration:600. ~input_mb:100. ())
  in
  Firmament.Scheduler.submit_job scheduler
    (W.make_job ~jid:1 ~klass:Cluster.Types.Batch ~submit_time:1. ~tasks:fill);
  ignore (Firmament.Scheduler.schedule scheduler ~now:1.);
  Printf.printf "\ncluster filled: utilization %.0f%%\n"
    (Cluster.State.utilization cluster *. 100.);

  let service =
    Array.init 2 (fun i ->
        W.make_task ~tid:(200 + i) ~job:2 ~submit_time:2. ~duration:1e6 ())
  in
  Firmament.Scheduler.submit_job scheduler
    (W.make_job ~jid:2 ~klass:Cluster.Types.Service ~submit_time:2. ~tasks:service);
  let round3 = Firmament.Scheduler.schedule scheduler ~now:2. in
  Printf.printf "\nservice job arrives on the full cluster:\n";
  List.iter
    (fun (tid, m) -> Printf.printf "  service task %d -> machine %d\n" tid m)
    round3.Firmament.Scheduler.started;
  Printf.printf "  batch tasks preempted to make room: %s\n"
    (String.concat ", " (List.map string_of_int round3.Firmament.Scheduler.preempted))
