(* Machine-readable benchmark output: experiments record flat metric maps
   here and [write] dumps them as a JSON array when `--json FILE` was
   given. Hand-rolled serialization — the only values are strings and
   floats, and we avoid a JSON dependency. *)

type record = { experiment : string; scale : float; metrics : (string * float) list }

let records : record list ref = ref []

let record ~experiment ~scale metrics =
  records := { experiment; scale; metrics } :: !records

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_field v =
  (* JSON has no NaN/inf; clamp to null-ish sentinel. *)
  if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

let write path =
  let oc = open_out path in
  let out = output_string oc in
  out "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then out ",\n";
      out
        (Printf.sprintf "  {\"experiment\": \"%s\", \"scale\": %s, \"metrics\": {"
           (escape r.experiment) (float_field r.scale));
      List.iteri
        (fun j (k, v) ->
          if j > 0 then out ", ";
          out (Printf.sprintf "\"%s\": %s" (escape k) (float_field v)))
        r.metrics;
      out "}}")
    (List.rev !records);
  out "\n]\n";
  close_out oc;
  Printf.eprintf "[bench] wrote %d record(s) to %s\n%!" (List.length !records) path
