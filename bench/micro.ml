(* Bechamel micro-benchmarks for the hot kernels underneath the
   experiments: graph mutation/scan primitives, the solver fast paths, and
   placement extraction. Run with `bench/main.exe micro`. *)

open Bechamel
open Toolkit

module G = Flowgraph.Graph

(* A mid-sized scheduling-shaped graph: tasks -> aggregator -> machines -> sink. *)
let scheduling_graph ~tasks ~machines =
  let g = G.create () in
  let sink = G.add_node g ~supply:(-tasks) in
  let agg = G.add_node g ~supply:0 in
  let ms =
    Array.init machines (fun _ ->
        let m = G.add_node g ~supply:0 in
        ignore (G.add_arc g ~src:m ~dst:sink ~cost:0 ~cap:8);
        m)
  in
  Array.iter (fun m -> ignore (G.add_arc g ~src:agg ~dst:m ~cost:1 ~cap:8)) ms;
  for i = 0 to tasks - 1 do
    let t = G.add_node g ~supply:1 in
    ignore (G.add_arc g ~src:t ~dst:agg ~cost:10 ~cap:1);
    ignore (G.add_arc g ~src:t ~dst:ms.(i mod machines) ~cost:((i mod 7) + 1) ~cap:1)
  done;
  g

let test_graph_push =
  let g = scheduling_graph ~tasks:100 ~machines:10 in
  let arc = ref (-1) in
  G.iter_arcs g (fun a -> if !arc < 0 && G.rescap g a > 1 then arc := a);
  Test.make ~name:"graph push/unpush"
    (Staged.stage (fun () ->
         G.push g !arc 1;
         G.push g (G.rev !arc) 1))

let test_active_scan =
  let g = scheduling_graph ~tasks:2000 ~machines:100 in
  (* The aggregator is node 1 by construction. *)
  Test.make ~name:"active-list scan (aggregator)"
    (Staged.stage (fun () ->
         let n = ref 0 in
         let it = ref (G.first_active g 1) in
         while !it >= 0 do
           incr n;
           it := G.next_active g !it
         done;
         Sys.opaque_identity !n))

let test_full_scan =
  let g = scheduling_graph ~tasks:2000 ~machines:100 in
  Test.make ~name:"full-list scan (aggregator)"
    (Staged.stage (fun () ->
         let n = ref 0 in
         let it = ref (G.first_out g 1) in
         while !it >= 0 do
           incr n;
           it := G.next_out g !it
         done;
         Sys.opaque_identity !n))

let test_relaxation_small =
  Test.make ~name:"relaxation solve (1k tasks)"
    (Staged.stage (fun () ->
         let g = scheduling_graph ~tasks:1000 ~machines:50 in
         ignore (Mcmf.Relaxation.solve g)))

let test_cost_scaling_small =
  Test.make ~name:"cost scaling solve (1k tasks)"
    (Staged.stage (fun () ->
         let g = scheduling_graph ~tasks:1000 ~machines:50 in
         ignore (Mcmf.Cost_scaling.solve (Mcmf.Cost_scaling.create ~alpha:9 ()) g)))

let test_graph_copy =
  let g = scheduling_graph ~tasks:2000 ~machines:100 in
  Test.make ~name:"graph copy (2k tasks)" (Staged.stage (fun () -> ignore (G.copy g)))

let test_graph_copy_into =
  (* The steady-state variant: after the first refresh the destination's
     arrays are warm, so each iteration is pure blits — this is the number
     Race.take pays per round. *)
  let g = scheduling_graph ~tasks:2000 ~machines:100 in
  let dst = G.create () in
  Test.make ~name:"graph copy_into warm dst (2k tasks)"
    (Staged.stage (fun () -> G.copy_into dst g))

let run () =
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        test_graph_push;
        test_active_scan;
        test_full_scan;
        test_graph_copy;
        test_graph_copy_into;
        test_relaxation_small;
        test_cost_scaling_small;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Dcsim.Stats.header "Microbenchmarks (ns/op, OLS on monotonic clock)";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "%-40s %12.1f ns\n" name est
      | Some [] | None -> Printf.printf "%-40s %12s\n" name "n/a")
    (List.sort compare rows)
