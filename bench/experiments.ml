(* One function per table and figure of the paper's evaluation. Each
   prints the same rows/series the paper reports, at a machine scale set
   by [--scale] (1.0 = paper-sized clusters; the default keeps the full
   suite in laptop territory). See EXPERIMENTS.md for recorded outputs and
   the paper-vs-measured comparison. *)

module G = Flowgraph.Graph
module FN = Firmament.Flow_network
module S = Mcmf.Solver_intf
module Stats = Dcsim.Stats

let row = Stats.row
let header = Stats.header
let pp = Setup.pp_secs

(* [--incr-budget N] override for the incremental-repair work budget
   (relabel operations before a point falls back to a full solve). [None]
   keeps the scheduler default; the sweep experiment threads it into the
   round config and records it in the JSON output. *)
let incr_budget : int option ref = ref None

let sweep_config () =
  match !incr_budget with
  | None -> Firmament.Scheduler.default_config
  | Some b -> { Firmament.Scheduler.default_config with incremental_budget = b }

(* {1 Static tables} *)

let table1 ~scale:_ () =
  header "Table 1: worst-case time complexities of MCMF algorithms";
  row [ "Algorithm"; "Worst-case complexity" ];
  row [ "Relaxation"; "O(M^3 C U^2)" ];
  row [ "Cycle canceling"; "O(N M^2 C U)" ];
  row [ "Cost scaling"; "O(N^2 M log(N C))" ];
  row [ "Succ. shortest path"; "O(N^2 U log N)" ];
  print_endline "(N nodes, M arcs, C max cost, U max capacity; M > N > C > U here)"

let table2 ~scale:_ () =
  header "Table 2: per-iteration preconditions of each algorithm";
  row [ "Algorithm"; "Feasibility"; "Red.-cost opt."; "eps-optimality" ];
  row [ "Relaxation"; "-"; "yes"; "-" ];
  row [ "Cycle canceling"; "yes"; "-"; "-" ];
  row [ "Cost scaling"; "yes"; "-"; "yes" ];
  row [ "Succ. shortest path"; "-"; "yes"; "-" ]

let table3 ~scale:_ () =
  header "Table 3: arc changes requiring solution reoptimization";
  let open Flowgraph.Changes in
  let show e =
    match (e.breaks_feasibility, e.breaks_optimality) with
    | false, false -> "ok"
    | true, false -> "breaks-feas"
    | false, true -> "breaks-opt"
    | true, true -> "breaks-both"
  in
  row [ "Change"; "cpi<0"; "cpi=0"; "cpi>0" ];
  (* Cells computed from the implementation, mirroring the paper's grid.
     Flow state per column follows complementary slackness: cpi<0 arcs are
     saturated, cpi>0 arcs are empty. *)
  row
    [
      "cap increase";
      show (capacity_change ~reduced_cost:(-1) ~flow:5 ~old_cap:5 ~new_cap:9);
      show (capacity_change ~reduced_cost:0 ~flow:2 ~old_cap:5 ~new_cap:9);
      show (capacity_change ~reduced_cost:1 ~flow:0 ~old_cap:5 ~new_cap:9);
    ];
  row
    [
      "cap decrease (f>u')";
      show (capacity_change ~reduced_cost:(-1) ~flow:5 ~old_cap:5 ~new_cap:3);
      show (capacity_change ~reduced_cost:0 ~flow:5 ~old_cap:5 ~new_cap:3);
      show (capacity_change ~reduced_cost:1 ~flow:0 ~old_cap:5 ~new_cap:3);
    ];
  row
    [
      "cost increase";
      show (cost_change ~reduced_cost_after:2 ~flow:5 ~forward_rescap:0);
      show (cost_change ~reduced_cost_after:1 ~flow:3 ~forward_rescap:2);
      show (cost_change ~reduced_cost_after:9 ~flow:0 ~forward_rescap:5);
    ];
  row
    [
      "cost decrease";
      show (cost_change ~reduced_cost_after:(-9) ~flow:5 ~forward_rescap:0);
      show (cost_change ~reduced_cost_after:(-1) ~flow:3 ~forward_rescap:2);
      show (cost_change ~reduced_cost_after:(-1) ~flow:0 ~forward_rescap:5);
    ]

(* {1 Solver scaling (Figs. 3 and 7)} *)

let measured_rounds s ~rounds ~solver =
  List.init rounds (fun i ->
      Setup.churn s ~frac:0.02 ~now:(float_of_int i);
      let stats, _g = Setup.time_solver s solver in
      stats.S.runtime)

let fig3 ~scale () =
  header "Figure 3: Quincy (from-scratch cost scaling) runtime vs cluster size";
  row [ "machines"; "p1"; "p25"; "p50"; "p75"; "p99"; "max" ];
  List.iter
    (fun machines ->
      let s = Setup.settle ~machines ~util:0.5 ~policy:Setup.Quincy ~seed:42 () in
      let st = Mcmf.Cost_scaling.create ~alpha:9 () in
      let runtimes =
        measured_rounds s ~rounds:7 ~solver:(fun g -> Mcmf.Cost_scaling.solve st g)
      in
      let p1, p25, p50, p75, p99 = Stats.five_number runtimes in
      row
        [
          string_of_int machines; pp p1; pp p25; pp p50; pp p75; pp p99;
          pp (Stats.maximum runtimes);
        ])
    (Setup.sizes ~scale [ 50; 450; 1250; 2500; 5000; 12500 ])

let fig7 ~scale () =
  header "Figure 7: average runtime of the four MCMF algorithms vs cluster size";
  row [ "machines"; "cycle-cancel"; "ssp"; "cost-scaling"; "relaxation" ];
  let deadline = 10. in
  (* Once an algorithm exceeds the deadline at some size, larger sizes are
     not attempted (the paper's plot similarly runs off the top). *)
  let cc_dead = ref false and ssp_dead = ref false in
  List.iter
    (fun machines ->
      let s = Setup.settle ~machines ~util:0.5 ~policy:Setup.Quincy ~seed:42 () in
      let measure solver =
        let xs =
          List.init 2 (fun i ->
              Setup.churn s ~frac:0.02 ~now:(float_of_int i);
              let stats, _ = Setup.time_solver s solver in
              (stats.S.outcome, stats.S.runtime))
        in
        if List.exists (fun (o, _) -> o = S.Stopped) xs then None
        else Some (Stats.mean (List.map snd xs))
      in
      let timed_out = Printf.sprintf ">=%.0fs" deadline in
      let show = function None -> timed_out | Some v -> pp v in
      let cc =
        if !cc_dead then timed_out
        else begin
          let r =
            measure (fun g -> Mcmf.Cycle_canceling.solve ~stop:(S.deadline_stop deadline) g)
          in
          if r = None then cc_dead := true;
          show r
        end
      in
      let ssp =
        if !ssp_dead then timed_out
        else begin
          let r = measure (fun g -> Mcmf.Ssp.solve ~stop:(S.deadline_stop deadline) g) in
          if r = None then ssp_dead := true;
          show r
        end
      in
      let cs =
        let st = Mcmf.Cost_scaling.create ~alpha:9 () in
        show (measure (fun g -> Mcmf.Cost_scaling.solve st g))
      in
      let rx = show (measure (fun g -> Mcmf.Relaxation.solve g)) in
      row [ string_of_int machines; cc; ssp; cs; rx ])
    (Setup.sizes ~scale [ 50; 1250; 2500; 5000; 12500 ])

(* {1 Relaxation edge cases (Figs. 8 and 9)} *)

let fig8 ~scale () =
  header "Figure 8: runtime near full cluster utilization (Quincy policy)";
  row [ "slot-util"; "relaxation"; "cost-scaling" ];
  let machines = max 100 (int_of_float (1250. *. scale)) in
  List.iter
    (fun target ->
      let s = Setup.settle ~machines ~util:0.90 ~policy:Setup.Quincy ~seed:42 () in
      let slots = Cluster.Topology.total_slots (Cluster.State.topology s.cluster) in
      let extra =
        int_of_float (float_of_int slots *. (target -. Cluster.State.utilization s.cluster))
      in
      if extra > 0 then Setup.submit_batch s ~n:extra ~now:1.;
      (* Relaxation's oversubscription blow-up is the point of the figure:
         cap the measurement and report the cap when exceeded. *)
      let deadline = 20. in
      let show (st : S.stats) =
        if st.S.outcome = S.Stopped then Printf.sprintf ">=%.0fs" deadline else pp st.S.runtime
      in
      let rx, _ =
        Setup.time_solver s (fun g -> Mcmf.Relaxation.solve ~stop:(S.deadline_stop deadline) g)
      in
      let st = Mcmf.Cost_scaling.create ~alpha:9 () in
      let cs, _ = Setup.time_solver s (fun g -> Mcmf.Cost_scaling.solve st g) in
      row [ Printf.sprintf "%.0f%%" (target *. 100.); show rx; show cs ])
    (* Targets beyond 100% are the paper's "oversubscribed case": more
       tasks than slots, the surplus forced onto unscheduled aggregators. *)
    [ 0.91; 0.93; 0.95; 0.97; 0.99; 1.0; 1.05; 1.15 ]

let fig9 ~scale () =
  header "Figure 9: arriving-job size vs runtime (load-spreading policy)";
  row [ "tasks-in-job"; "relaxation"; "cost-scaling" ];
  let machines = max 100 (int_of_float (1250. *. scale)) in
  List.iter
    (fun k ->
      let s = Setup.settle ~machines ~util:0.4 ~policy:Setup.Load_spread ~seed:42 () in
      Setup.submit_batch s ~n:k ~now:1.;
      let deadline = 20. in
      let show (st : S.stats) =
        if st.S.outcome = S.Stopped then Printf.sprintf ">=%.0fs" deadline else pp st.S.runtime
      in
      let rx, _ =
        Setup.time_solver s (fun g -> Mcmf.Relaxation.solve ~stop:(S.deadline_stop deadline) g)
      in
      let st = Mcmf.Cost_scaling.create ~alpha:9 () in
      let cs, _ = Setup.time_solver s (fun g -> Mcmf.Cost_scaling.solve st g) in
      row [ string_of_int k; show rx; show cs ])
    (List.filter_map
       (fun k ->
         let k = int_of_float (float_of_int k *. scale) in
         if k >= 10 then Some k else None)
       [ 100; 1000; 2000; 3000; 4000; 5000 ])

(* {1 Early termination (Fig. 10)} *)

let fig10 ~scale () =
  header "Figure 10: task misplacements under early termination";
  row [ "algorithm"; "fraction-of-runtime"; "misplaced-tasks" ];
  let machines = max 100 (int_of_float (1250. *. scale)) in
  let s = Setup.settle ~machines ~util:0.90 ~policy:Setup.Quincy ~seed:42 () in
  let slots = Cluster.Topology.total_slots (Cluster.State.topology s.cluster) in
  Setup.submit_batch s ~n:(slots / 12) ~now:1.;
  ignore (Firmament.Scheduler.schedule s.sched ~now:1.);
  Setup.churn s ~frac:0.05 ~now:2.;
  let net = Firmament.Scheduler.network s.sched in
  (* Reference optimum. *)
  let optimal_assignment solver =
    let _, g = Setup.time_solver s solver in
    let saved = FN.graph net in
    FN.set_graph net g;
    let m = Firmament.Placement.extract_partial net in
    FN.set_graph net saved;
    m
  in
  let misplacements ~full_runtime ~(solver : ?stop:S.stop -> G.t -> S.stats) =
    let reference = optimal_assignment (fun g -> solver g) in
    List.map
      (fun frac ->
        let deadline = full_runtime *. frac in
        let _, g =
          Setup.time_solver s (fun g -> solver ~stop:(S.deadline_stop deadline) g)
        in
        let saved = FN.graph net in
        FN.set_graph net g;
        let partial = Firmament.Placement.extract_partial net in
        FN.set_graph net saved;
        let mis =
          List.fold_left2
            (fun acc (a : Firmament.Placement.assignment) (b : Firmament.Placement.assignment) ->
              if a.Firmament.Placement.machine <> b.Firmament.Placement.machine then acc + 1
              else acc)
            0 partial reference
        in
        (frac, mis))
      [ 0.2; 0.4; 0.6; 0.8; 0.95 ]
  in
  let report name full_runtime solver =
    List.iter
      (fun (frac, mis) ->
        row [ name; Printf.sprintf "%.0f%%" (frac *. 100.); string_of_int mis ])
      (misplacements ~full_runtime ~solver)
  in
  let rx_full, _ = Setup.time_solver s (fun g -> Mcmf.Relaxation.solve g) in
  report "relaxation" rx_full.S.runtime (fun ?stop g -> Mcmf.Relaxation.solve ?stop g);
  let cs_state () = Mcmf.Cost_scaling.create ~alpha:9 () in
  let cs_full, _ = Setup.time_solver s (fun g -> Mcmf.Cost_scaling.solve (cs_state ()) g) in
  report "cost-scaling" cs_full.S.runtime (fun ?stop g ->
      Mcmf.Cost_scaling.solve ?stop (cs_state ()) g)

(* {1 Incrementality (Figs. 11, 12, 13)} *)

let fig11 ~scale () =
  header "Figure 11: incremental vs from-scratch cost scaling";
  row [ "policy"; "from-scratch"; "incremental"; "speedup" ];
  let machines = max 100 (int_of_float (1250. *. scale)) in
  List.iter
    (fun (name, policy) ->
      let s = Setup.settle ~machines ~util:0.5 ~policy ~seed:42 () in
      (* Warm graph: solve to optimality in place, price-refine (the paper
         always refines before applying changes, §6.2), then churn. *)
      let net = Firmament.Scheduler.network s.sched in
      let st = Mcmf.Cost_scaling.create ~alpha:9 () in
      ignore (Mcmf.Cost_scaling.solve st (FN.graph net));
      ignore
        (Mcmf.Price_refine.run ~scale:(Mcmf.Cost_scaling.ensure_scale st (FN.graph net))
           (FN.graph net));
      Setup.churn s ~frac:0.05 ~now:1.;
      let g_inc = G.copy (FN.graph net) in
      let inc = Mcmf.Cost_scaling.solve ~incremental:true st g_inc in
      let scr, _ =
        Setup.time_solver s (fun g -> Mcmf.Cost_scaling.solve (Mcmf.Cost_scaling.create ~alpha:9 ()) g)
      in
      row
        [
          name; pp scr.S.runtime; pp inc.S.runtime;
          Printf.sprintf "%.2fx" (scr.S.runtime /. Float.max 1e-9 inc.S.runtime);
        ])
    [ ("quincy", Setup.Quincy); ("load-spreading", Setup.Load_spread) ]

let fig12a ~scale () =
  header "Figure 12a: arc prioritization (AP) in relaxation, contended graph";
  row [ "variant"; "runtime" ];
  let machines = max 100 (int_of_float (1250. *. scale)) in
  let k = max 100 (int_of_float (3000. *. scale)) in
  let s = Setup.settle ~machines ~util:0.4 ~policy:Setup.Load_spread ~seed:42 () in
  Setup.submit_batch s ~n:k ~now:1.;
  let no_ap, _ =
    Setup.time_solver s (fun g -> Mcmf.Relaxation.solve ~arc_prioritization:false g)
  in
  let ap, _ = Setup.time_solver s (fun g -> Mcmf.Relaxation.solve ~arc_prioritization:true g) in
  row [ "no AP"; pp no_ap.S.runtime ];
  row [ "AP"; pp ap.S.runtime ];
  Printf.printf "reduction: %.0f%%\n"
    (100. *. (1. -. (ap.S.runtime /. Float.max 1e-9 no_ap.S.runtime)))

let fig12b ~scale () =
  header "Figure 12b: efficient task removal (TR) for incremental cost scaling";
  row [ "variant"; "runtime" ];
  let machines = max 100 (int_of_float (1250. *. scale)) in
  let run ~drain =
    let config =
      { Firmament.Scheduler.default_config with drain_on_removal = drain }
    in
    let s = Setup.settle ~config ~machines ~util:0.5 ~policy:Setup.Quincy ~seed:42 () in
    let net = Firmament.Scheduler.network s.sched in
    let st = Mcmf.Cost_scaling.create ~alpha:9 () in
    ignore (Mcmf.Cost_scaling.solve st (FN.graph net));
    ignore
      (Mcmf.Price_refine.run ~scale:(Mcmf.Cost_scaling.ensure_scale st (FN.graph net))
         (FN.graph net));
    (* Removal-heavy change batch. *)
    let live = Cluster.State.live_task_count s.cluster in
    Setup.finish_random s ~n:(live / 10) ~now:1.;
    let g = G.copy (FN.graph net) in
    (Mcmf.Cost_scaling.solve ~incremental:true st g).S.runtime
  in
  let no_tr = run ~drain:false in
  let tr = run ~drain:true in
  row [ "no TR"; pp no_tr ];
  row [ "TR"; pp tr ];
  Printf.printf "reduction: %.0f%%\n" (100. *. (1. -. (tr /. Float.max 1e-9 no_tr)))

let fig13 ~scale () =
  header "Figure 13: price refine at the relaxation -> cost scaling switch";
  row [ "percentile"; "cost-scaling"; "price-refine + cost-scaling" ];
  let machines = max 100 (int_of_float (1250. *. scale)) in
  let cs_runtimes ~price_refine =
    let config =
      {
        Firmament.Scheduler.default_config with
        mode = Mcmf.Race.Fastest_sequential;
        price_refine;
      }
    in
    let s = Setup.settle ~config ~machines ~util:0.6 ~policy:Setup.Quincy ~seed:42 () in
    List.filter_map
      (fun i ->
        Setup.churn s ~frac:0.03 ~now:(float_of_int i);
        let r = Setup.schedule s ~now:(float_of_int i) in
        Option.map
          (fun (st : S.stats) -> st.S.runtime)
          r.Firmament.Scheduler.cost_scaling_stats)
      (List.init 15 (fun i -> i + 1))
  in
  let plain = cs_runtimes ~price_refine:false in
  let refined = cs_runtimes ~price_refine:true in
  List.iter
    (fun p ->
      row
        [
          Printf.sprintf "p%.0f" p;
          pp (Stats.percentile plain p);
          pp (Stats.percentile refined p);
        ])
    [ 10.; 50.; 90. ];
  Printf.printf "median speedup: %.1fx\n"
    (Stats.percentile plain 50. /. Float.max 1e-9 (Stats.percentile refined 50.))

(* {1 End-to-end replay (Figs. 14, 15, 16, 17, 18)} *)

let replay_config ?(mode = Mcmf.Race.Fastest_sequential) ?(policy = Setup.Quincy)
    ?(max_rounds = 2000) ?max_sim_time () =
  {
    Dcsim.Replay.default_config with
    scheduler = { Firmament.Scheduler.default_config with mode };
    policy = Setup.policy_factory policy;
    max_rounds = Some max_rounds;
    max_sim_time;
  }

let trace ~machines ~util ~horizon ?(speedup = 1.) ?(seed = 42) ?machines_per_rack () =
  Cluster.Trace.generate
    {
      (Cluster.Trace.default_params ~machines ()) with
      target_utilization = util;
      horizon_s = horizon;
      speedup;
      seed;
      machines_per_rack =
        (match machines_per_rack with
        | Some m -> m
        | None -> (Cluster.Trace.default_params ~machines ()).Cluster.Trace.machines_per_rack);
    }

let fig14 ~scale () =
  header "Figure 14: task placement latency, Firmament vs Quincy (90% util)";
  (* A quarter of the paper's cluster at scale 1.0: the headline is the
     ratio between the configurations, which holds across sizes. *)
  let machines = max 150 (int_of_float (3125. *. scale)) in
  (* Mild acceleration keeps the arrival stream dense enough at scaled-down
     cluster sizes for a meaningful latency distribution. *)
  let tr = trace ~machines ~util:0.9 ~horizon:90. ~speedup:4. () in
  (* Fast solvers need more rounds to cover the same simulated horizon
     (each cheap round batches fewer events). *)
  let budget mode =
    match mode with Mcmf.Race.Cost_scaling_scratch_only -> 400 | _ -> 4000
  in
  let latencies mode =
    let m =
      Dcsim.Replay.run
        (replay_config ~mode ~max_rounds:(budget mode) ~max_sim_time:120. ())
        tr
    in
    m.Dcsim.Replay.placement_latencies
  in
  let firmament = latencies Mcmf.Race.Fastest_sequential in
  let quincy = latencies Mcmf.Race.Cost_scaling_scratch_only in
  row [ "percentile"; "firmament"; "quincy (cost scaling)" ];
  let safe xs p = match xs with [] -> "-" | _ -> pp (Stats.percentile xs p) in
  List.iter
    (fun p ->
      row [ Printf.sprintf "p%.0f" p; safe firmament p; safe quincy p ])
    [ 10.; 25.; 50.; 75.; 90.; 99. ];
  if firmament <> [] && quincy <> [] then
    Printf.printf "median speedup: %.1fx\n"
      (Stats.percentile quincy 50. /. Float.max 1e-9 (Stats.percentile firmament 50.))

let locality_of_placements tr cfg =
  (* Weighted input locality: fraction of input bytes local to the chosen
     machine across all placements (paper Table 15b). *)
  let local = ref 0. and total = ref 0. in
  let cluster_tasks : (int, Cluster.Workload.task) Hashtbl.t = Hashtbl.create 1024 in
  let note (job : Cluster.Workload.job) =
    Array.iter (fun (t : Cluster.Workload.task) -> Hashtbl.replace cluster_tasks t.Cluster.Workload.tid t) job.Cluster.Workload.tasks
  in
  List.iter note tr.Cluster.Trace.initial_jobs;
  List.iter (fun (_, j) -> note j) tr.Cluster.Trace.arrivals;
  let on_round ~sim:_ (r : Firmament.Scheduler.round) =
    List.iter
      (fun (tid, m) ->
        match Hashtbl.find_opt cluster_tasks tid with
        | None -> ()
        | Some t ->
            let fracs = Firmament.Policy_quincy.locality_fractions t in
            let f = Option.value ~default:0. (List.assoc_opt m fracs) in
            total := !total +. t.Cluster.Workload.input_mb;
            local := !local +. (f *. t.Cluster.Workload.input_mb))
      r.Firmament.Scheduler.started
  in
  let m = Dcsim.Replay.run_with ~config:cfg ~trace:tr ~on_round () in
  (m, if !total > 0. then !local /. !total else 0.)

(* Weighted input locality of a settled (optimal) bulk assignment: both
   solver configurations produce min-cost flows, so locality depends only
   on the threshold. *)
let settled_locality ~machines ~threshold =
  (* Scale the rack size with the cluster so the rack count (and hence the
     per-rack locality fractions the threshold gates) resembles the
     paper's 312-rack topology rather than collapsing to 2-3 racks. *)
  let machines_per_rack = max 4 (machines / 30) in
  let s =
    Setup.settle ~machines_per_rack ~machines ~util:0.9
      ~policy:(Setup.Quincy_threshold threshold) ~seed:42 ()
  in
  let topo = Cluster.State.topology s.Setup.cluster in
  let local = ref 0. and total = ref 0. in
  Cluster.State.iter_tasks s.Setup.cluster (fun t ->
      match Cluster.Workload.machine_of t with
      | Some m when t.Cluster.Workload.input_mb > 0. ->
          (* Rack-level locality, as in Quincy: fraction of the input
             stored in the chosen machine's rack (machine included). *)
          let rack = Cluster.Topology.rack_of topo m in
          let f =
            List.fold_left
              (fun acc (m', frac) ->
                if Cluster.Topology.rack_of topo m' = rack then acc +. frac else acc)
              0.
              (Firmament.Policy_quincy.locality_fractions t)
          in
          total := !total +. t.Cluster.Workload.input_mb;
          local := !local +. (f *. t.Cluster.Workload.input_mb)
      | _ -> ());
  if !total > 0. then !local /. !total else 0.

let fig15 ~scale () =
  header "Figure 15: preference-arc threshold sweep (14% vs 2%)";
  let machines = max 120 (int_of_float (2500. *. scale)) in
  row [ "config"; "threshold"; "alg p50"; "alg p99"; "input locality" ];
  List.iter
    (fun (mode_name, mode) ->
      List.iter
        (fun th ->
          let tr = trace ~machines ~util:0.9 ~horizon:30. ~speedup:4. () in
          let rounds =
            match mode with Mcmf.Race.Cost_scaling_scratch_only -> 250 | _ -> 2500
          in
          let cfg =
            replay_config ~mode ~policy:(Setup.Quincy_threshold th) ~max_rounds:rounds
              ~max_sim_time:45. ()
          in
          let m, _ = locality_of_placements tr cfg in
          let rts = m.Dcsim.Replay.algorithm_runtimes in
          let locality = settled_locality ~machines ~threshold:th in
          row
            [
              mode_name;
              Printf.sprintf "%.0f%%" (th *. 100.);
              pp (Stats.percentile rts 50.);
              pp (Stats.percentile rts 99.);
              Printf.sprintf "%.1f%%" (locality *. 100.);
            ])
        [ 0.14; 0.02 ])
    [
      ("firmament", Mcmf.Race.Fastest_sequential);
      ("quincy", Mcmf.Race.Cost_scaling_scratch_only);
    ]

let fig16 ~scale () =
  header "Figure 16: runtime timeline under transient oversubscription";
  let machines = max 150 (int_of_float (1250. *. scale)) in
  (* Steady 90% + an arrival burst pushing past capacity mid-trace. *)
  let mk_trace () =
    let tr = trace ~machines ~util:0.9 ~horizon:90. () in
    let slots = Cluster.Topology.total_slots tr.Cluster.Trace.topology in
    let burst =
      List.init 4 (fun i ->
          let t = 30. +. (2. *. float_of_int i) in
          ( t,
            Dcsim.Workloads.big_job ~jid:(900_000 + i) ~n_tasks:(slots / 20) ~submit:t
              ~duration:30.
              ~first_tid:(20_000_000 + (i * 100_000))
              () ))
    in
    {
      tr with
      Cluster.Trace.arrivals =
        List.sort (fun (a, _) (b, _) -> compare a b) (tr.Cluster.Trace.arrivals @ burst);
    }
  in
  row [ "mode"; "pre-burst p50"; "burst p50"; "burst max"; "post-burst p50" ];
  List.iter
    (fun (name, mode) ->
      let m = Dcsim.Replay.run (replay_config ~mode ~max_rounds:400 ()) (mk_trace ()) in
      let phase lo hi =
        List.filter_map
          (fun (t, rt) -> if t >= lo && t < hi then Some rt else None)
          m.Dcsim.Replay.runtime_timeline
      in
      let safe f xs = match xs with [] -> "-" | _ -> f xs in
      row
        [
          name;
          safe (fun xs -> pp (Stats.percentile xs 50.)) (phase 0. 30.);
          safe (fun xs -> pp (Stats.percentile xs 50.)) (phase 30. 60.);
          safe (fun xs -> pp (Stats.maximum xs)) (phase 30. 60.);
          safe (fun xs -> pp (Stats.percentile xs 50.)) (phase 60. 1e9);
        ])
    [
      ("relaxation-only", Mcmf.Race.Relaxation_only);
      ("quincy (cost scaling)", Mcmf.Race.Cost_scaling_scratch_only);
      ("firmament", Mcmf.Race.Fastest_sequential);
    ]

let fig17 ~scale () =
  header "Figure 17: job response time vs task duration (short-task jobs)";
  row [ "machines"; "task-duration"; "ideal"; "job-response p50"; "p90" ];
  let sizes =
    List.filter (fun m -> m >= 50) [ 100; max 150 (int_of_float (2500. *. scale)) ]
    |> List.sort_uniq compare
  in
  List.iter
    (fun machines ->
      List.iter
        (fun duration ->
          let slots = 8 in
          (* About 500 tasks per point keeps the round count tractable on
             small hosts; the breaking point shows in the p50/p90 lift. *)
          let horizon =
            500. *. duration /. (0.8 *. float_of_int (machines * slots))
          in
          let arrivals =
            Dcsim.Workloads.short_task_jobs ~machines ~slots ~task_duration:duration
              ~tasks_per_job:10 ~load:0.8 ~horizon ~seed:3
          in
          let topology =
            Cluster.Topology.make ~machines ~machines_per_rack:40 ~slots_per_machine:slots ()
          in
          let tr =
            { Cluster.Trace.topology; initial_jobs = []; arrivals; machine_events = [];
              params = Cluster.Trace.default_params ~machines () }
          in
          let m =
            Dcsim.Replay.run
              (replay_config ~policy:Setup.Load_spread ~max_rounds:3_000 ())
              tr
          in
          match m.Dcsim.Replay.job_response_times with
          | [] -> row [ string_of_int machines; pp duration; pp duration; "-"; "-" ]
          | rs ->
              row
                [
                  string_of_int machines;
                  pp duration;
                  pp duration;
                  pp (Stats.percentile rs 50.);
                  pp (Stats.percentile rs 90.);
                ])
        [ 2.; 0.5; 0.1; 0.02 ])
    sizes

let fig18 ~scale () =
  header "Figure 18: placement latency under accelerated Google trace";
  row [ "speedup"; "mode"; "p25"; "p50"; "p75"; "p99"; "max" ];
  let machines = max 150 (int_of_float (2500. *. scale)) in
  List.iter
    (fun speedup ->
      List.iter
        (fun (name, mode) ->
          let tr =
            trace ~machines ~util:0.8 ~horizon:30. ~speedup:(float_of_int speedup) ()
          in
          let m =
            Dcsim.Replay.run (replay_config ~mode ~max_rounds:400 ~max_sim_time:45. ()) tr
          in
          match m.Dcsim.Replay.placement_latencies with
          | [] -> row [ string_of_int speedup; name; "-"; "-"; "-"; "-"; "-" ]
          | ls ->
              row
                [
                  string_of_int speedup;
                  name;
                  pp (Stats.percentile ls 25.);
                  pp (Stats.percentile ls 50.);
                  pp (Stats.percentile ls 75.);
                  pp (Stats.percentile ls 99.);
                  pp (Stats.maximum ls);
                ])
        [
          ("firmament", Mcmf.Race.Fastest_sequential);
          ("relaxation-only", Mcmf.Race.Relaxation_only);
        ])
    [ 50; 150; 300 ]

(* {1 Local-testbed placement quality (Fig. 19)} *)

let fig19 ~background ~n_tasks () =
  let machines = 40 in
  let topology =
    Cluster.Topology.make ~machines ~machines_per_rack:40 ~slots_per_machine:8 ()
  in
  let arrivals =
    Dcsim.Workloads.testbed_short_batch ~machines ~n_tasks ~interarrival:1.2 ~seed:5
  in
  let bg = if background then Dcsim.Workloads.testbed_background ~machines ~seed:6 else [] in
  let schedulers =
    [
      ("idle (isolation)", Dcsim.Testbed.Isolation);
      ( "firmament",
        Dcsim.Testbed.Firmament
          (fun ~bandwidth_used ~drain net st ->
            Firmament.Policy_network_aware.make ~bandwidth_used ~drain net st) );
      ("swarmkit", Dcsim.Testbed.Baseline (Baselines.swarmkit ()));
      ("kubernetes", Dcsim.Testbed.Baseline (Baselines.kubernetes ()));
      ("mesos", Dcsim.Testbed.Baseline (Baselines.mesos ()));
      ("sparrow", Dcsim.Testbed.Baseline (Baselines.sparrow ()));
    ]
  in
  row [ "scheduler"; "p25"; "p50"; "p75"; "p90"; "p99" ];
  let tails = ref [] in
  List.iter
    (fun (name, kind) ->
      let r = Dcsim.Testbed.run ~topology ~arrivals ~background:bg kind in
      let rs = r.Dcsim.Testbed.response_times in
      if rs = [] then row [ name; "-"; "-"; "-"; "-"; "-" ]
      else begin
        tails := (name, Stats.percentile rs 99.) :: !tails;
        row
          [
            name;
            pp (Stats.percentile rs 25.);
            pp (Stats.percentile rs 50.);
            pp (Stats.percentile rs 75.);
            pp (Stats.percentile rs 90.);
            pp (Stats.percentile rs 99.);
          ]
      end)
    schedulers;
  (match List.assoc_opt "firmament" !tails with
  | Some f when f > 0. ->
      List.iter
        (fun (name, t) ->
          if name <> "firmament" && name <> "idle (isolation)" then
            Printf.printf "p99 %s / firmament = %.1fx\n" name (t /. f))
        (List.rev !tails)
  | _ -> ())

let fig19a ~scale () =
  header "Figure 19a: short batch tasks, idle network (40 machines)";
  fig19 ~background:false ~n_tasks:(max 40 (int_of_float (200. *. scale *. 10.))) ()

let fig19b ~scale () =
  header "Figure 19b: short batch tasks with background traffic (40 machines)";
  fig19 ~background:true ~n_tasks:(max 40 (int_of_float (200. *. scale *. 10.))) ()

(* {1 Steady-state allocation / round latency (tentpole perf metric)} *)

(* Drive [rounds] full scheduler rounds under [frac] churn on a settled
   cluster, sampling the telemetry phase histograms around the loop:
   returns per-round wall times, per-round allocated bytes, and per-phase
   means — including the solve_win/solve_wait sub-phase split (winner
   runtime vs orchestration wait). *)
let sched_phases =
  [
    "refresh"; "solve"; "solve_win"; "solve_wait"; "adopt"; "extract"; "prepare";
    "apply";
  ]

(* Exact minor-heap bytes allocated since program start — the
   steady-state allocation metric. Native OCaml 5.1's
   [Gc.allocated_bytes] adds promoted words where it should subtract
   them, so every minor collection inside a bracket inflates the delta
   by twice the survivor volume (measured: a steady-state scheduler
   round that really allocates ~0.9 MB reads as ~2.0 MB), and
   [Gc.quick_stat]'s [minor_words] field only advances at collection
   boundaries, quantizing short brackets to whole minor heaps.
   [Gc.minor_words] is the one exact counter (it adds the live young
   pointer delta); every steady-state allocation the memory-discipline
   rules police (cons cells, refs, closure spills, boxed returns) is a
   minor-heap allocation, so this is the figure the budgets assert on.
   Blocks above 256 words go directly to the major heap and are not
   counted here — those are one-time workspace growth, reported
   separately (and noisily: the major/promoted counters lag promotion
   events by up to a round) as [round_major_bytes]. *)
let gc_minor_bytes () = Gc.minor_words () *. 8.

(* Net direct-major bytes: major words minus promoted (promotions are
   already counted as minor allocation). Per-bracket values jitter by
   the survivor volume because promotion accounting lags; means over
   many rounds telescope most of it away. Informational only. *)
let gc_major_net_bytes () =
  let st = Gc.quick_stat () in
  (st.Gc.major_words -. st.Gc.promoted_words) *. 8.

let measure_sched_rounds s ~rounds ~frac =
  let reg = Telemetry.Metrics.global () in
  let phase_metrics =
    List.filter_map
      (fun phase ->
        Option.map
          (fun id -> (phase, id))
          (Telemetry.Metrics.find reg ("sched_phase_" ^ phase ^ "_ns")))
      sched_phases
  in
  (* One unmeasured warm-up round: the first post-settle round still pays
     history-dependent workspace growth (the scratch graphs' arc
     freelists are sized by the settle-time churn, which topology hints
     cannot predict), and that one-time cost would otherwise land in the
     first sample and dominate a 10-round allocation mean. *)
  Setup.churn s ~frac ~now:0.;
  ignore (Setup.schedule s ~now:0.);
  let phase_sum0 =
    List.map (fun (p, id) -> (p, Telemetry.Metrics.hist_sum reg id)) phase_metrics
  in
  let times = ref [] and bytes = ref [] and major = ref [] in
  for i = 1 to rounds do
    let now = float_of_int i in
    Setup.churn s ~frac ~now;
    let b0 = gc_minor_bytes () in
    let j0 = gc_major_net_bytes () in
    let t0 = Unix.gettimeofday () in
    ignore (Setup.schedule s ~now);
    times := (Unix.gettimeofday () -. t0) :: !times;
    bytes := (gc_minor_bytes () -. b0) :: !bytes;
    major := (gc_major_net_bytes () -. j0) :: !major
  done;
  let phase_means =
    List.map
      (fun (p, id) ->
        let s0 = List.assoc p phase_sum0 in
        let d = Telemetry.Metrics.hist_sum reg id - s0 in
        (p, float_of_int d *. 1e-9 /. float_of_int rounds))
      phase_metrics
  in
  (!times, !bytes, !major, phase_means)

(* Two measurements on a settled ~1k-machine cluster (at the default
   --scale 0.2):
   - solver-only warm rounds: prepare + Race.solve on the already-optimal
     graph, the pure steady-state re-solve the scratch-graph/workspace
     reuse targets;
   - full scheduler rounds with 1% churn: the end-to-end rounds/sec
     number, policy updates included.
   Reports mean/p99 wall time and allocated bytes per round, and
   records them for --json. *)
let alloc ~scale () =
  header "Steady-state rounds: latency and allocations per round";
  let machines = max 50 (int_of_float (5000. *. scale)) in
  let s = Setup.settle ~machines ~util:0.5 ~policy:Setup.Quincy ~seed:42 () in
  let net = Firmament.Scheduler.network s.Setup.sched in
  let stats_of xs =
    ( Stats.mean xs,
      Stats.percentile xs 50.,
      Stats.percentile xs 99. )
  in
  (* Solver-only warm rounds, mirroring the scheduler's adopt/recycle
     protocol on an unchanged optimal graph. *)
  let race = Mcmf.Race.create ~alpha:9 ~mode:Mcmf.Race.Fastest_sequential () in
  let g = ref (G.copy (FN.graph net)) in
  let solve_round () =
    Mcmf.Race.prepare race !g;
    let r = Mcmf.Race.solve race !g in
    (match r.Mcmf.Race.stats.S.outcome with
    | S.Optimal ->
        let old = !g in
        g := r.Mcmf.Race.graph;
        Mcmf.Race.recycle race old
    | S.Infeasible | S.Stopped -> ());
    r
  in
  ignore (solve_round ());
  (* warm-up: reach steady state *)
  let rounds = 40 in
  let times = ref [] and bytes = ref [] in
  for _ = 1 to rounds do
    let b0 = gc_minor_bytes () in
    let t0 = Unix.gettimeofday () in
    ignore (solve_round ());
    times := (Unix.gettimeofday () -. t0) :: !times;
    bytes := (gc_minor_bytes () -. b0) :: !bytes
  done;
  let t_mean, t_p50, t_p99 = stats_of !times in
  let b_mean, _, _ = stats_of !bytes in
  row [ "phase"; "mean"; "p50"; "p99"; "alloc/round" ];
  row
    [
      "solver-only (warm)"; pp t_mean; pp t_p50; pp t_p99;
      Printf.sprintf "%.0f B" b_mean;
    ];
  (* Full scheduler rounds with light churn. Telemetry phase histograms
     are sampled before/after the loop; the delta of each phase's sum
     divided by the round count gives phase-level means for the JSON. *)
  let times2, bytes2, major2, phase_means =
    measure_sched_rounds s ~rounds:20 ~frac:0.01
  in
  let t2_mean, t2_p50, t2_p99 = stats_of times2 in
  let b2_mean, _, _ = stats_of bytes2 in
  let j2_mean = Stats.mean major2 in
  row
    [
      "full round (1% churn)"; pp t2_mean; pp t2_p50; pp t2_p99;
      Printf.sprintf "%.0f B" b2_mean;
    ];
  Printf.printf "machines: %d, rounds/sec (full, mean): %.1f\n" machines
    (1. /. Float.max 1e-9 t2_mean);
  List.iter
    (fun (p, mean) -> Printf.printf "  phase %-8s mean %s\n" p (pp mean))
    phase_means;
  Json_out.record ~experiment:"alloc" ~scale
    ([
       ("machines", float_of_int machines);
       ("solver_mean_s", t_mean);
       ("solver_p50_s", t_p50);
       ("solver_p99_s", t_p99);
       ("solver_alloc_bytes", b_mean);
       ("round_mean_s", t2_mean);
       ("round_p50_s", t2_p50);
       ("round_p99_s", t2_p99);
       ("round_alloc_bytes", b2_mean);
       ("round_major_bytes", j2_mean);
       ("rounds_per_sec", 1. /. Float.max 1e-9 t2_mean);
     ]
    @ List.map (fun (p, mean) -> ("phase_" ^ p ^ "_mean_s", mean)) phase_means)

(* {1 Pipelined vs synchronous rounds} *)

(* Same accelerated trace replayed twice: once with the classic
   synchronous round loop, once with begin/commit pipelining (events that
   land inside the measured solver window are absorbed while the solve is
   in flight, then reconciled stale-aware at commit). The pipelining win
   is that event ingestion no longer waits out the solver — and the
   solver no longer waits out ingestion: in the synchronous loop every
   event batch is applied between rounds and its measured cost extends
   the round period, while the pipelined loop absorbs mid-window events
   during the solve for free. Stale discards are the price. The churn
   rate is moderate (speedup 15): at extreme churn every round
   interleaves, which keeps the canonical graph permanently off the last
   certified optimum and degrades the incremental-cost-scaling warm
   start (bounded by the relaxation racer, but visible); see
   EXPERIMENTS.md for that caveat. *)
let pipeline ~scale () =
  header "Pipelined vs synchronous scheduling rounds";
  let machines = max 150 (int_of_float (5000. *. scale)) in
  let mk_trace () = trace ~machines ~util:0.8 ~horizon:30. ~speedup:15. () in
  let run pipelined =
    Dcsim.Replay.run
      { (replay_config ~max_rounds:400 ~max_sim_time:45. ()) with pipelined }
      (mk_trace ())
  in
  let sync = run false in
  let pipe = run true in
  row
    [
      "mode"; "rounds"; "latency mean"; "p50"; "p99"; "makespan"; "mid-solve";
      "discards"; "replays";
    ];
  let line name (m : Dcsim.Replay.metrics) =
    let ls = m.Dcsim.Replay.placement_latencies in
    row
      [
        name;
        string_of_int m.Dcsim.Replay.rounds;
        (match ls with [] -> "-" | _ -> pp (Stats.mean ls));
        (match ls with [] -> "-" | _ -> pp (Stats.percentile ls 50.));
        (match ls with [] -> "-" | _ -> pp (Stats.percentile ls 99.));
        Printf.sprintf "%.1fs" m.Dcsim.Replay.sim_end;
        string_of_int m.Dcsim.Replay.events_absorbed_mid_solve;
        string_of_int m.Dcsim.Replay.stale_placements;
        string_of_int m.Dcsim.Replay.replayed_placements;
      ]
  in
  line "synchronous" sync;
  line "pipelined" pipe;
  Printf.printf
    "pipelined discards by reason: %d stale-task, %d stale-machine, %d capacity \
     (+%d no-op replays of mid-solve-finished tasks, not counted as discards)\n"
    pipe.Dcsim.Replay.stale_task_discards pipe.Dcsim.Replay.stale_machine_discards
    pipe.Dcsim.Replay.capacity_discards pipe.Dcsim.Replay.replayed_placements;
  let mean_of m =
    match m.Dcsim.Replay.placement_latencies with
    | [] -> 0.
    | ls -> Stats.mean ls
  in
  let s_mean = mean_of sync and p_mean = mean_of pipe in
  if s_mean > 0. then
    Printf.printf "mean placement latency: pipelined/sync = %.2fx\n" (p_mean /. s_mean);
  Json_out.record ~experiment:"pipeline" ~scale
    [
      ("machines", float_of_int machines);
      ("sync_latency_mean_s", s_mean);
      ("pipelined_latency_mean_s", p_mean);
      ("sync_makespan_s", sync.Dcsim.Replay.sim_end);
      ("pipelined_makespan_s", pipe.Dcsim.Replay.sim_end);
      ("events_mid_solve", float_of_int pipe.Dcsim.Replay.events_absorbed_mid_solve);
      ("stale_placements", float_of_int pipe.Dcsim.Replay.stale_placements);
      ("stale_task_discards", float_of_int pipe.Dcsim.Replay.stale_task_discards);
      ( "stale_machine_discards",
        float_of_int pipe.Dcsim.Replay.stale_machine_discards );
      ("capacity_discards", float_of_int pipe.Dcsim.Replay.capacity_discards);
      ("replayed_placements", float_of_int pipe.Dcsim.Replay.replayed_placements);
      ("structure_violations", float_of_int pipe.Dcsim.Replay.structure_violations);
    ]

(* {1 Scale sweep (paper Fig. 8's machine ladder, full rounds)} *)

(* One bench series per cluster size on the paper's evaluation ladder
   (Fig. 8 spans 1.2k–12.5k machines; 50k probes past it, the paper's
   headline "at scale" claim). Each point settles a cluster at 50%
   utilization and drives full scheduler rounds under 1% churn: round
   latency percentiles, per-phase means (including the delta-extraction
   phase and the solve win/wait split) and allocation per round. Points
   beyond the --scale budget are skipped so the default run stays small;
   --scale 1.0 reaches the full ladder. *)
let sweep ~scale () =
  header "Scale sweep: full scheduler rounds across the machine ladder";
  let ladder = [ 1_000; 5_000; 12_500; 50_000 ] in
  let budget = max 1_000 (int_of_float (50_000. *. scale)) in
  let points = List.filter (fun mch -> mch <= budget) ladder in
  (match List.filter (fun mch -> mch > budget) ladder with
  | [] -> ()
  | skipped ->
      Printf.printf "skipping %s machines (raise --scale to include)\n"
        (String.concat ", " (List.map string_of_int skipped)));
  row
    [
      "machines"; "round mean"; "p50"; "p99"; "solve"; "extract"; "alloc/round";
      "rounds/s";
    ];
  List.iter
    (fun machines ->
      let s =
        Setup.settle ~config:(sweep_config ()) ~machines ~util:0.5 ~policy:Setup.Quincy
          ~seed:42 ()
      in
      let rounds = if machines >= 12_500 then 10 else 20 in
      let times, bytes, major, phase_means =
        measure_sched_rounds s ~rounds ~frac:0.01
      in
      let mean = Stats.mean times in
      let p50 = Stats.percentile times 50. in
      let p99 = Stats.percentile times 99. in
      let b_mean = Stats.mean bytes in
      let j_mean = Stats.mean major in
      let phase p = Option.value ~default:0. (List.assoc_opt p phase_means) in
      row
        [
          string_of_int machines;
          pp mean;
          pp p50;
          pp p99;
          pp (phase "solve");
          pp (phase "extract");
          Printf.sprintf "%.0f B" b_mean;
          Printf.sprintf "%.1f" (1. /. Float.max 1e-9 mean);
        ];
      Json_out.record ~experiment:"sweep" ~scale
        ([
           ("machines", float_of_int machines);
           ("round_mean_s", mean);
           ("round_p50_s", p50);
           ("round_p99_s", p99);
           ("round_alloc_bytes", b_mean);
           ("round_major_bytes", j_mean);
           ("rounds_per_sec", 1. /. Float.max 1e-9 mean);
           ("incremental_budget", float_of_int (sweep_config ()).incremental_budget);
         ]
        @ List.map (fun (p, m) -> ("phase_" ^ p ^ "_mean_s", m)) phase_means))
    points

(* {1 Incremental delta-solve vs full race (ISSUE 7 tentpole)} *)

(* Small-delta rounds — a fixed handful of task events against the whole
   cluster, the regime the O(changes) repair path targets. Unlike
   [measure_sched_rounds]'s fractional churn, the event count here stays
   constant as machines grow, so the delta-vs-graph-size gap is what the
   series shows. Runs each ladder point twice on identically settled
   clusters: repair disabled (full-race baseline), then enabled. *)
let measure_small_delta_rounds s ~rounds ~events =
  let reg = Telemetry.Metrics.global () in
  let hist name =
    match Telemetry.Metrics.find reg name with
    | Some id -> id
    | None -> Format.kasprintf failwith "histogram %s not registered" name
  in
  let counter name =
    Option.map (fun id -> Telemetry.Metrics.value reg id) (Telemetry.Metrics.find reg name)
  in
  let solve_id = hist "sched_phase_solve_ns" in
  let repairs0 = counter "mcmf_race_wins_repair_total" in
  (* Two warm rounds: reach the adopted-optimal steady state the repair
     path starts from. *)
  for i = 1 to 2 do
    let now = float_of_int i in
    Setup.finish_random s ~n:(events / 2) ~now;
    Setup.submit_batch s ~n:(events / 2) ~now;
    ignore (Setup.schedule s ~now)
  done;
  let solve0 = Telemetry.Metrics.hist_sum reg solve_id in
  let repairs1 = counter "mcmf_race_wins_repair_total" in
  let times = ref [] in
  for i = 3 to rounds + 2 do
    let now = float_of_int i in
    Setup.finish_random s ~n:(events / 2) ~now;
    Setup.submit_batch s ~n:(events / 2) ~now;
    let t0 = Unix.gettimeofday () in
    ignore (Setup.schedule s ~now);
    times := (Unix.gettimeofday () -. t0) :: !times
  done;
  let solve_mean =
    float_of_int (Telemetry.Metrics.hist_sum reg solve_id - solve0)
    *. 1e-9 /. float_of_int rounds
  in
  let repair_rounds =
    match (counter "mcmf_race_wins_repair_total", repairs1, repairs0) with
    | Some now, Some warm, Some _ -> now - warm
    | _ -> 0
  in
  (!times, solve_mean, repair_rounds)

let incr ~scale () =
  header "Incremental repair: small-delta rounds, delta-solve vs full race";
  let ladder = [ 1_000; 5_000; 12_500; 50_000 ] in
  let budget = max 1_000 (int_of_float (50_000. *. scale)) in
  let points = List.filter (fun mch -> mch <= budget) ladder in
  (match List.filter (fun mch -> mch > budget) ladder with
  | [] -> ()
  | skipped ->
      Printf.printf "skipping %s machines (raise --scale to include)\n"
        (String.concat ", " (List.map string_of_int skipped)));
  let events = 32 in
  row
    [
      "machines"; "solve full"; "solve incr"; "speedup"; "round incr"; "repair rounds";
    ];
  List.iter
    (fun machines ->
      let rounds = if machines >= 12_500 then 10 else 20 in
      let run ~incremental =
        let config = { Firmament.Scheduler.default_config with incremental } in
        let s = Setup.settle ~config ~machines ~util:0.5 ~policy:Setup.Quincy ~seed:42 () in
        measure_small_delta_rounds s ~rounds ~events
      in
      let _, solve_full, _ = run ~incremental:false in
      let times_incr, solve_incr, repair_rounds = run ~incremental:true in
      let speedup = solve_full /. Float.max 1e-9 solve_incr in
      row
        [
          string_of_int machines;
          pp solve_full;
          pp solve_incr;
          Printf.sprintf "%.1fx" speedup;
          pp (Stats.mean times_incr);
          Printf.sprintf "%d/%d" repair_rounds rounds;
        ];
      Json_out.record ~experiment:"incr" ~scale
        [
          ("machines", float_of_int machines);
          ("delta_events", float_of_int events);
          ("rounds", float_of_int rounds);
          ("solve_full_mean_s", solve_full);
          ("solve_incr_mean_s", solve_incr);
          ("solve_speedup", speedup);
          ("round_incr_mean_s", Stats.mean times_incr);
          ("round_incr_p99_s", Stats.percentile times_incr 99.);
          ("repair_rounds", float_of_int repair_rounds);
        ])
    points

(* {1 Registry} *)

let all =
  [
    ("table1", "Worst-case MCMF complexities", table1);
    ("table2", "Algorithm per-iteration preconditions", table2);
    ("table3", "Arc-change reoptimization grid", table3);
    ("fig3", "Quincy runtime vs cluster size", fig3);
    ("fig7", "Four MCMF algorithms vs cluster size", fig7);
    ("fig8", "Runtime near full utilization", fig8);
    ("fig9", "Arriving-job size vs runtime", fig9);
    ("fig10", "Early-termination misplacements", fig10);
    ("fig11", "Incremental vs from-scratch cost scaling", fig11);
    ("fig12a", "Arc prioritization ablation", fig12a);
    ("fig12b", "Efficient task removal ablation", fig12b);
    ("fig13", "Price refine at algorithm switch", fig13);
    ("fig14", "Placement latency: Firmament vs Quincy", fig14);
    ("fig15", "Preference threshold sweep + locality", fig15);
    ("fig16", "Oversubscription timeline", fig16);
    ("fig17", "Short-task breaking point", fig17);
    ("fig18", "Accelerated-trace placement latency", fig18);
    ("fig19a", "Testbed, idle network", fig19a);
    ("fig19b", "Testbed, background traffic", fig19b);
    ("alloc", "Steady-state round latency + allocations", alloc);
    ("pipeline", "Pipelined vs synchronous rounds", pipeline);
    ("sweep", "Scale sweep across the machine ladder", sweep);
    ("incr", "Incremental delta-solve vs full race", incr);
  ]
