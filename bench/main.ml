(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
   for recorded outputs). *)

let usage () =
  print_endline "usage: bench/main.exe [EXPERIMENT ...] [--scale S] [--json FILE] [--list]";
  print_endline "  EXPERIMENT: one of the ids below, 'all', or 'micro'";
  print_endline "  --scale S : machine-count multiplier (1.0 = paper size; default 0.2)";
  print_endline "  --json FILE : also write machine-readable results (JSON array)";
  print_endline
    "  --incr-budget N : incremental-repair work budget override (sweep experiment)";
  print_endline "";
  List.iter
    (fun (name, descr, _) -> Printf.printf "  %-8s %s\n" name descr)
    Experiments.all;
  Printf.printf "  %-8s %s\n" "micro" "Bechamel microbenchmarks of the hot kernels"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 0.2 in
  let selected = ref [] in
  let json_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--list" :: _ ->
        usage ();
        exit 0
    | "--scale" :: v :: rest ->
        (match float_of_string_opt v with
        | Some s when s > 0. -> scale := s
        | Some _ | None ->
            prerr_endline "bench: --scale expects a positive number";
            exit 2);
        parse rest
    | "--json" :: f :: rest ->
        json_file := Some f;
        parse rest
    | "--incr-budget" :: v :: rest ->
        (match int_of_string_opt v with
        | Some b when b > 0 -> Experiments.incr_budget := Some b
        | Some _ | None ->
            prerr_endline "bench: --incr-budget expects a positive integer";
            exit 2);
        parse rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | x :: rest ->
        selected := x :: !selected;
        parse rest
  in
  parse args;
  let selected = match List.rev !selected with [] -> [ "all" ] | xs -> xs in
  let t0 = Unix.gettimeofday () in
  let run_one name =
    match name with
    | "all" ->
        List.iter
          (fun (n, _, f) ->
            Printf.eprintf "[bench] %s (scale %.2f)...\n%!" n !scale;
            let t = Unix.gettimeofday () in
            (try f ~scale:!scale ()
             with e ->
               (* One failed experiment must not kill the suite. *)
               Printf.printf "!! %s failed: %s\n%!" n (Printexc.to_string e));
            Printf.eprintf "[bench] %s done in %.1fs\n%!" n (Unix.gettimeofday () -. t))
          Experiments.all;
        Micro.run ()
    | "micro" -> Micro.run ()
    | _ -> (
        match List.find_opt (fun (n, _, _) -> n = name) Experiments.all with
        | Some (_, _, f) ->
            Printf.eprintf "[bench] %s (scale %.2f)...\n%!" name !scale;
            let t = Unix.gettimeofday () in
            f ~scale:!scale ();
            Printf.eprintf "[bench] %s done in %.1fs\n%!" name (Unix.gettimeofday () -. t)
        | None ->
            Printf.eprintf "bench: unknown experiment %S (try --list)\n" name;
            exit 2)
  in
  List.iter run_one selected;
  Option.iter Json_out.write !json_file;
  Printf.printf "\ntotal bench wall time: %.1fs (scale %.2f)\n"
    (Unix.gettimeofday () -. t0)
    !scale
