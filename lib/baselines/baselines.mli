(** Queue-based task-by-task schedulers (paper §2.1), used as comparison
    points in the §7.5 placement-quality experiments (Fig. 19).

    Each baseline reduces to a machine-selection function invoked for one
    task at a time, mirroring how the corresponding real system's
    scheduler behaves in a slot-based world:

    - {b SwarmKit}: least-loaded spreading (fewest running tasks).
    - {b Kubernetes}: feasibility filter, then least-requested scoring
      with deterministic tie-breaking on machine id.
    - {b Mesos}: offer-based — the framework sees a (rotating) subset of
      machines' offers and takes the first with a free slot.
    - {b Sparrow}: batch sampling with late binding — probe [2 × d]
      random machines, pick the least-queued probe; tasks may queue at
      workers ({!selection} returning a busy machine models the
      worker-side queue).
    - {b Random}: uniformly random feasible machine (a floor).

    Selection functions never place on dead machines. They return [None]
    when the scheduler would keep the task waiting in its queue. *)

type t = {
  name : string;
  select :
    Cluster.State.t -> Cluster.Workload.task -> Cluster.Types.machine_id option;
  worker_side_queue : bool;
      (** Sparrow-style: may select a machine with no free slot, queueing
          the task at that worker *)
  per_task_overhead_s : float;
      (** modeled scheduler processing time per task (queue-based
          schedulers' algorithm runtime) *)
}

val swarmkit : unit -> t
val kubernetes : unit -> t

(** [mesos ~offer_fraction ()] sees offers from a rotating
    [offer_fraction] of machines each decision. *)
val mesos : ?offer_fraction:float -> unit -> t

(** [sparrow ~probes ~seed ()] samples [probes] machines per task and
    picks the one with the shortest worker queue (running + queued). *)
val sparrow : ?probes:int -> ?seed:int -> unit -> t

val random : ?seed:int -> unit -> t

(** All five, in the order the paper's Fig. 19 legends list them. *)
val all : ?seed:int -> unit -> t list
