type t = {
  name : string;
  select :
    Cluster.State.t -> Cluster.Workload.task -> Cluster.Types.machine_id option;
  worker_side_queue : bool;
  per_task_overhead_s : float;
}

let live_machines state =
  let topo = Cluster.State.topology state in
  let acc = ref [] in
  Cluster.Topology.iter_machines topo (fun m ->
      if Cluster.State.machine_is_live state m.Cluster.Topology.id then
        acc := m.Cluster.Topology.id :: !acc);
  List.rev !acc

let feasible_for state task ms =
  List.filter (fun m -> Cluster.State.fits_on state m task) ms

(* Least running tasks; ties broken by lowest id (deterministic). *)
let least_loaded state ms =
  match ms with
  | [] -> None
  | _ ->
      Some
        (List.fold_left
           (fun best m ->
             if Cluster.State.running_count state m < Cluster.State.running_count state best
             then m
             else best)
           (List.hd ms) (List.tl ms))

let swarmkit () =
  {
    name = "swarmkit";
    select =
      (fun state task -> least_loaded state (feasible_for state task (live_machines state)));
    worker_side_queue = false;
    per_task_overhead_s = 0.0005;
  }

let kubernetes () =
  {
    name = "kubernetes";
    select =
      (fun state task ->
        (* Filter, then score: least-requested (free-slot fraction), with
           a mild preference for keeping some machines unfragmented. *)
        let feasible = feasible_for state task (live_machines state) in
        let score m =
          let info = Cluster.Topology.machine (Cluster.State.topology state) m in
          let free = Cluster.State.free_slots_on state m in
          (* 0..10 like kube-scheduler priorities. *)
          10 * free / max 1 info.Cluster.Topology.slots
        in
        match feasible with
        | [] -> None
        | _ ->
            Some
              (List.fold_left
                 (fun best m -> if score m > score best then m else best)
                 (List.hd feasible) (List.tl feasible)));
    worker_side_queue = false;
    per_task_overhead_s = 0.001;
  }

let mesos ?(offer_fraction = 0.25) () =
  let cursor = ref 0 in
  {
    name = "mesos";
    select =
      (fun state task ->
        (* A rotating window of resource offers; first fit wins. *)
        let ms = Array.of_list (live_machines state) in
        let n = Array.length ms in
        if n = 0 then None
        else begin
          let window = max 1 (int_of_float (offer_fraction *. float_of_int n)) in
          let found = ref None in
          let i = ref 0 in
          while !found = None && !i < window do
            let m = ms.((!cursor + !i) mod n) in
            if Cluster.State.fits_on state m task then found := Some m;
            incr i
          done;
          cursor := (!cursor + window) mod n;
          !found
        end);
    worker_side_queue = false;
    per_task_overhead_s = 0.002;
  }

let sparrow ?(probes = 2) ?(seed = 1) () =
  let rng = Random.State.make [| seed |] in
  {
    name = "sparrow";
    select =
      (fun state _task ->
        (* Batch sampling: probe d random machines, pick the least loaded;
           with late binding the task queues at that worker if busy. *)
        let ms = Array.of_list (live_machines state) in
        let n = Array.length ms in
        if n = 0 then None
        else begin
          let sampled = List.init (min probes n) (fun _ -> ms.(Random.State.int rng n)) in
          least_loaded state sampled
        end);
    worker_side_queue = true;
    per_task_overhead_s = 0.0002;
  }

let random ?(seed = 2) () =
  let rng = Random.State.make [| seed |] in
  {
    name = "random";
    select =
      (fun state task ->
        match feasible_for state task (live_machines state) with
        | [] -> None
        | ms ->
            let a = Array.of_list ms in
            Some a.(Random.State.int rng (Array.length a)));
    worker_side_queue = false;
    per_task_overhead_s = 0.0001;
  }

let all ?(seed = 1) () =
  [ swarmkit (); kubernetes (); mesos (); sparrow ~seed (); random ~seed:(seed + 1) () ]
