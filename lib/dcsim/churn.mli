(** Churn traces for the differential fuzz harness ({!Fuzz} library).

    A churn trace is a flat list of cluster events — task submit / finish /
    preempt, machine fail / restore, arc-cost perturbations — interleaved
    with scheduling rounds (synchronous, deadline-bounded via a
    deterministic poll budget, or split into [begin]/[commit] pairs with
    events absorbed mid-solve). Every event is {e total} under any prefix
    or subsequence of the trace: selectors are indices reduced modulo the
    current population, and structurally impossible events degrade to
    no-ops. That tolerance is what lets the shrinker drop arbitrary
    events and still replay a valid trace.

    This module owns the event model, the seeded generator and the text
    serialization (one event per line, floats in lossless [%h] form);
    the interpretation against a live {!Firmament.Scheduler} lives in the
    [fuzz] library. *)

type event =
  | Submit of { jid : int; tasks : int; duration : float; locality : int }
      (** submit a [tasks]-task batch job; [locality] seeds the synthetic
          input-block machine ids *)
  | Finish of int  (** finish the [k mod running]-th running task *)
  | Preempt of int  (** preempt the [k mod running]-th running task *)
  | Fail_machine of int  (** fail machine [m mod machines] (no-op if dead) *)
  | Restore_machine of int
      (** restore machine [m mod machines] (no-op if alive) *)
  | Perturb_costs of { seed : int; arcs : int }
      (** deterministically re-price up to [arcs] live arcs of the
          canonical graph (costs only, clamped non-negative; never
          capacities or supplies, so feasibility is preserved) *)
  | Round of { polls : int }
      (** run a synchronous scheduling round. [polls <= 0] solves to
          completion; [polls > 0] stops the solve after that many stop
          polls — a deterministic stand-in for a wall-clock deadline *)
  | Begin_round  (** dispatch a pipelined round (commits any prior one) *)
  | Commit_round  (** commit the in-flight round (no-op if none) *)

val pp : Format.formatter -> event -> unit

(** [generate ~seed ~machines ~length] draws a [length]-event trace,
    deterministically in [seed]. Job ids are unique within the trace (so
    any subsequence stays valid), and the trace always ends with a full
    [Round] so generated churn is actually scheduled. *)
val generate : seed:int -> machines:int -> length:int -> event list

(** One event per line; [of_line (to_line e) = e] (floats round-trip via
    hex notation). @raise Failure on a malformed line. *)
val to_line : event -> string

val of_line : string -> event
val to_lines : event list -> string list
val of_lines : string list -> event list
