type priority = High | Low

type flow = {
  id : int;
  src : Cluster.Types.machine_id option;
  dst : Cluster.Types.machine_id;
  priority : priority;
  demand_mbps : float;  (** rate cap; infinity for transfers *)
  mutable remaining_mb : float;  (** infinity for background flows *)
  task : Cluster.Types.task_id option;
  mutable rate : float;  (** current allocation, Mbps *)
}

type t = {
  topo : Cluster.Topology.t;
  flows : (int, flow) Hashtbl.t;
  mutable clock : float;
  mutable next_id : int;
}

let create topo = { topo; flows = Hashtbl.create 64; clock = 0.; next_id = 0 }
let now t = t.clock

(* Links are machine NIC directions: egress 2m, ingress 2m+1. *)
let egress m = 2 * m
let ingress m = (2 * m) + 1

let links_of f =
  match f.src with
  | Some s -> [ egress s; ingress f.dst ]
  | None -> [ ingress f.dst ]

let nic_mbps t m =
  float_of_int (Cluster.Topology.machine t.topo m).Cluster.Topology.net_capacity_mbps

(* Progressive-filling max-min for one class against residual capacities.
   Mutates [residual] and sets each flow's [rate]. *)
let max_min t residual flows =
  ignore t;
  let active = Hashtbl.create 16 in
  List.iter
    (fun f ->
      f.rate <- 0.;
      Hashtbl.replace active f.id f)
    flows;
  let eps = 1e-9 in
  let guard = ref 0 in
  while Hashtbl.length active > 0 && !guard < 10_000 do
    incr guard;
    (* Per-link active counts. *)
    let counts = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ f ->
        List.iter
          (fun l -> Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
          (links_of f))
      active;
    (* Smallest feasible uniform increment: link fair shares and remaining
       demand headroom. *)
    let step = ref infinity in
    Hashtbl.iter
      (fun l c ->
        let r = Option.value ~default:0. (Hashtbl.find_opt residual l) in
        step := Float.min !step (r /. float_of_int c))
      counts;
    Hashtbl.iter (fun _ f -> step := Float.min !step (f.demand_mbps -. f.rate)) active;
    if !step <= eps then begin
      (* Freeze everything touching a saturated link or at demand. *)
      let frozen = ref [] in
      Hashtbl.iter
        (fun id f ->
          let saturated =
            List.exists
              (fun l -> Option.value ~default:0. (Hashtbl.find_opt residual l) <= eps)
              (links_of f)
          in
          if saturated || f.rate >= f.demand_mbps -. eps then frozen := id :: !frozen)
        active;
      if !frozen = [] then
        (* No saturation and no demand bound: numerical corner; stop. *)
        Hashtbl.reset active
      else List.iter (fun id -> Hashtbl.remove active id) !frozen
    end
    else begin
      let s = !step in
      Hashtbl.iter
        (fun _ f ->
          f.rate <- f.rate +. s;
          List.iter
            (fun l ->
              Hashtbl.replace residual l
                (Option.value ~default:0. (Hashtbl.find_opt residual l) -. s))
            (links_of f))
        active;
      (* Freeze flows that hit a bound. *)
      let frozen = ref [] in
      Hashtbl.iter
        (fun id f ->
          let saturated =
            List.exists
              (fun l -> Option.value ~default:0. (Hashtbl.find_opt residual l) <= eps)
              (links_of f)
          in
          if saturated || f.rate >= f.demand_mbps -. eps then frozen := id :: !frozen)
        active;
      List.iter (fun id -> Hashtbl.remove active id) !frozen
    end
  done

let recompute t =
  let residual = Hashtbl.create 32 in
  Cluster.Topology.iter_machines t.topo (fun m ->
      let id = m.Cluster.Topology.id in
      Hashtbl.replace residual (egress id) (nic_mbps t id);
      Hashtbl.replace residual (ingress id) (nic_mbps t id));
  let high = ref [] and low = ref [] in
  Hashtbl.iter
    (fun _ f -> match f.priority with High -> high := f :: !high | Low -> low := f :: !low)
    t.flows;
  max_min t residual !high;
  max_min t residual !low

(* Progress all transfers from t.clock to [upto] at current rates. *)
let progress t upto =
  let dt = upto -. t.clock in
  if dt > 0. then
    Hashtbl.iter
      (fun _ f ->
        if f.remaining_mb < infinity then
          f.remaining_mb <- Float.max 0. (f.remaining_mb -. (f.rate /. 8. *. dt)))
      t.flows;
  t.clock <- upto

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let add_background t ?src ~dst ~mbps () =
  let id = fresh_id t in
  Hashtbl.replace t.flows id
    {
      id;
      src;
      dst;
      priority = High;
      demand_mbps = mbps;
      remaining_mb = infinity;
      task = None;
      rate = 0.;
    };
  recompute t;
  id

let start_transfer t ?src ~dst ~mb ~task () =
  let id = fresh_id t in
  Hashtbl.replace t.flows id
    {
      id;
      src;
      dst;
      priority = Low;
      demand_mbps = infinity;
      remaining_mb = Float.max 0.001 mb;
      task = Some task;
      rate = 0.;
    };
  recompute t;
  id

let remove_flow t id =
  if Hashtbl.mem t.flows id then begin
    Hashtbl.remove t.flows id;
    recompute t
  end

let cancel_task_transfers t task =
  let stale =
    Hashtbl.fold (fun id f acc -> if f.task = Some task then id :: acc else acc) t.flows []
  in
  List.iter (fun id -> Hashtbl.remove t.flows id) stale;
  if stale <> [] then recompute t

let next_completion_time t =
  Hashtbl.fold
    (fun _ f acc ->
      if f.remaining_mb < infinity && f.rate > 1e-9 then begin
        let eta = t.clock +. (f.remaining_mb *. 8. /. f.rate) in
        match acc with Some b when b <= eta -> acc | _ -> Some eta
      end
      else acc)
    t.flows None

let advance t upto =
  if upto < t.clock -. 1e-9 then invalid_arg "Netsim.advance: time going backwards";
  let completed = ref [] in
  let rec step () =
    match next_completion_time t with
    | Some eta when eta <= upto ->
        progress t eta;
        (* Complete every transfer that just drained. *)
        let done_flows =
          Hashtbl.fold
            (fun id f acc -> if f.remaining_mb <= 1e-6 then (id, f.task) :: acc else acc)
            t.flows []
        in
        List.iter
          (fun (id, task) ->
            Hashtbl.remove t.flows id;
            match task with
            | Some tk -> completed := (t.clock, tk) :: !completed
            | None -> ())
          done_flows;
        recompute t;
        step ()
    | Some _ | None -> progress t upto
  in
  step ();
  List.rev !completed

let used_mbps t m =
  let total = ref 0. in
  Hashtbl.iter
    (fun _ f ->
      if f.dst = m then total := !total +. f.rate;
      match f.src with Some s when s = m -> total := !total +. f.rate | _ -> ())
    t.flows;
  int_of_float !total

let active_flows t = Hashtbl.length t.flows
