(** Workload builders for the paper's experiments (one per setup that the
    generic {!Cluster.Trace} generator doesn't directly express). *)

(** [big_job ~jid ~n_tasks ~submit ~duration ()] is a single job with
    [n_tasks] identical tasks — the "large arriving job" of Fig. 8/9. *)
val big_job :
  jid:Cluster.Types.job_id ->
  n_tasks:int ->
  submit:float ->
  duration:float ->
  ?first_tid:int ->
  unit ->
  Cluster.Workload.job

(** [short_task_jobs ~machines ~slots ~task_duration ~tasks_per_job ~load
    ~horizon ~seed] is the Fig. 17 workload: jobs of [tasks_per_job]
    equal-duration tasks arriving as a Poisson process whose rate keeps the
    cluster at [load] (fraction of slots busy) assuming zero scheduler
    overhead. *)
val short_task_jobs :
  machines:int ->
  slots:int ->
  task_duration:float ->
  tasks_per_job:int ->
  load:float ->
  horizon:float ->
  seed:int ->
  (float * Cluster.Workload.job) list

(** [testbed_short_batch ~machines ~n_tasks ~interarrival ~seed] is the
    §7.5 workload: short batch-analytics tasks (3.5–5 s compute) reading
    4–8 GB inputs from a cluster filesystem (replicated blocks on random
    machines), submitted as single-task jobs. *)
val testbed_short_batch :
  machines:int ->
  n_tasks:int ->
  interarrival:float ->
  seed:int ->
  (float * Cluster.Workload.job) list

(** [testbed_background ~machines ~seed] is the Fig. 19b background load:
    fourteen iperf-style 4 Gbps UDP flows into seven servers (high-priority
    batch service class) plus three nginx-style web servers with seven HTTP
    clients. *)
val testbed_background : machines:int -> seed:int -> Testbed.background list
