module W = Cluster.Workload

(* Telemetry ids, registered once at module init. *)
let m = Telemetry.Metrics.global ()

let m_rounds =
  Telemetry.Metrics.counter m ~help:"metered replay rounds driven"
    "dcsim_rounds_total"

let m_warmup =
  Telemetry.Metrics.counter m ~help:"unmetered warm-up rounds at replay start"
    "dcsim_warmup_rounds_total"

let m_events_applied =
  Telemetry.Metrics.counter m ~help:"trace events applied" "dcsim_events_applied_total"

let m_events_stale =
  Telemetry.Metrics.counter m
    ~help:"trace events dropped as stale (epoch mismatch, dead machine)"
    "dcsim_events_stale_total"

let m_idle_jumps =
  Telemetry.Metrics.counter m
    ~help:"times the replay fast-forwarded to the next event"
    "dcsim_idle_jumps_total"

let m_events_mid_solve =
  Telemetry.Metrics.counter m
    ~help:"trace events applied while a pipelined solve was in flight"
    "dcsim_events_mid_solve_total"

let m_stale_placements =
  Telemetry.Metrics.counter m
    ~help:"solver placements discarded at commit (stale or capacity-rejected)"
    "dcsim_stale_placements_total"

let m_replayed_placements =
  Telemetry.Metrics.counter m
    ~help:
      "solver placements recognized as no-op replays of tasks that finished \
       mid-solve (not discards: nothing was invalidated)"
    "dcsim_replayed_placements_total"

type config = {
  scheduler : Firmament.Scheduler.config;
  policy :
    drain:bool -> Firmament.Flow_network.t -> Cluster.State.t -> Firmament.Policy.t;
  solver_time : [ `Measured | `Fixed of float ];
  pipelined : bool;
  max_sim_time : float option;
  max_rounds : int option;
}

let default_config =
  {
    scheduler = Firmament.Scheduler.default_config;
    policy = (fun ~drain net st -> Firmament.Policy_quincy.make ~drain net st);
    solver_time = `Measured;
    pipelined = false;
    max_sim_time = None;
    max_rounds = None;
  }

type metrics = {
  placement_latencies : float list;
  response_times : float list;
  job_response_times : float list;
  algorithm_runtimes : float list;
  runtime_timeline : (float * float) list;
  rounds : int;
  degraded_rounds : int;
  partial_rounds : int;
  infeasible_retries : int;
  failed_rounds : int;
  sim_end : float;
  tasks_placed : int;
  preemptions : int;
  migrations : int;
  unfinished_waiting : int;
  events_absorbed_mid_solve : int;
  stale_placements : int;
  stale_task_discards : int;
  stale_machine_discards : int;
  capacity_discards : int;
  replayed_placements : int;
  structure_violations : int;
}

type event =
  | Job_submit of W.job
  | Task_finish of Cluster.Types.task_id * int  (* epoch *)
  | Machine_event of Cluster.Trace.machine_event

let run_with ?(config = default_config) ~trace ~on_round () =
  let cluster = Cluster.State.create trace.Cluster.Trace.topology in
  let sched =
    Firmament.Scheduler.create ~config:config.scheduler cluster ~policy:config.policy
  in
  let events = Cluster.Event_queue.create () in
  (* Clone at intake: traces are reusable descriptions, tasks are mutable. *)
  List.iter
    (fun (t, job) -> Cluster.Event_queue.add events ~time:t (Job_submit (W.clone_job job)))
    trace.Cluster.Trace.arrivals;
  List.iter
    (fun (t, ev) -> Cluster.Event_queue.add events ~time:t (Machine_event ev))
    trace.Cluster.Trace.machine_events;
  (* Epochs invalidate completion events of preempted/migrated tasks. *)
  let epochs : (Cluster.Types.task_id, int) Hashtbl.t = Hashtbl.create 1024 in
  let epoch tid = Option.value ~default:0 (Hashtbl.find_opt epochs tid) in
  let bump tid = Hashtbl.replace epochs tid (epoch tid + 1) in
  (* Metrics accumulators. *)
  let placement_latencies = ref [] in
  let algorithm_runtimes = ref [] in
  let timeline = ref [] in
  let rounds = ref 0 in
  let partial_rounds = ref 0 in
  let infeasible_retries = ref 0 in
  let failed_rounds = ref 0 in
  let tasks_placed = ref 0 in
  let preemptions = ref 0 in
  let migrations = ref 0 in
  let sim = ref 0. in
  (* Initial jobs model tasks already running at time zero: place them in
     unmetered warm-up rounds (the paper's simulator starts from a
     populated snapshot), only scheduling their completions. *)
  List.iter
    (fun job -> Firmament.Scheduler.submit_job sched (W.clone_job job))
    trace.Cluster.Trace.initial_jobs;
  let rec warmup i =
    if i < 10 && Cluster.State.waiting_count cluster > 0 then begin
      Telemetry.Metrics.incr m m_warmup;
      let round = Firmament.Scheduler.schedule sched ~now:0. in
      List.iter
        (fun (tid, _m) ->
          Hashtbl.replace epochs tid 1;
          let task = Cluster.State.task cluster tid in
          Cluster.Event_queue.add events ~time:task.W.duration (Task_finish (tid, 1)))
        round.Firmament.Scheduler.started;
      if round.Firmament.Scheduler.started <> [] then warmup (i + 1)
    end
  in
  warmup 0;
  let apply_event (time, ev) =
    match ev with
    | Job_submit job ->
        Firmament.Scheduler.submit_job sched job;
        true
    | Task_finish (tid, e) ->
        let task = Cluster.State.task cluster tid in
        if e = epoch tid && W.is_running task then begin
          Firmament.Scheduler.finish_task sched tid ~now:time;
          true
        end
        else false
    | Machine_event (Cluster.Trace.Machine_fails m) ->
        if Cluster.State.machine_is_live cluster m then begin
          (* Victims return to the wait queue; their completions are
             invalidated here by bumping epochs below in the caller. *)
          let victims = ref [] in
          List.iter (fun tid -> victims := tid :: !victims)
            (Cluster.State.running_tasks_on cluster m);
          Firmament.Scheduler.fail_machine sched m;
          List.iter (fun tid -> bump tid) !victims;
          true
        end
        else false
    | Machine_event (Cluster.Trace.Machine_restores m) ->
        if not (Cluster.State.machine_is_live cluster m) then begin
          Firmament.Scheduler.restore_machine sched m;
          true
        end
        else false
  in
  let apply ev =
    let applied = apply_event ev in
    Telemetry.Metrics.incr m (if applied then m_events_applied else m_events_stale);
    applied
  in
  (* Ingesting events occupies the scheduler exactly like the solve does
     (the Fig. 2b accounting): in [`Measured] mode the measured wall
     clock of applying a batch advances simulated time. Events absorbed
     *inside* a pipelined solver window escape this charge — their
     application overlaps the in-flight solve instead of extending the
     round, which is the latency gain of pipelining. [`Fixed] mode
     charges nothing so deterministic tests stay deterministic. *)
  let ingest evs =
    match config.solver_time with
    | `Fixed _ -> List.fold_left (fun acc ev -> apply ev || acc) false evs
    | `Measured ->
        let t0 = Telemetry.Clock.now_ns () in
        let changed = List.fold_left (fun acc ev -> apply ev || acc) false evs in
        sim := !sim +. Telemetry.Clock.s_of_ns (Telemetry.Clock.now_ns () - t0);
        changed
  in
  let schedule_finish tid ~start =
    let task = Cluster.State.task cluster tid in
    Cluster.Event_queue.add events
      ~time:(start +. task.W.duration)
      (Task_finish (tid, epoch tid))
  in
  let out_of_budget () =
    (match config.max_sim_time with Some m when !sim >= m -> true | _ -> false)
    || match config.max_rounds with Some m when !rounds >= m -> true | _ -> false
  in
  let events_mid_solve = ref 0 in
  let stale_placements = ref 0 in
  let stale_task_discards = ref 0 in
  let stale_machine_discards = ref 0 in
  let capacity_discards = ref 0 in
  let replayed_placements = ref 0 in
  (* One scheduling round. Synchronous: the classic schedule call.
     Pipelined: dispatch the solve, then apply every trace event that
     lands inside the solver window *while the solve is in flight* — the
     pipelining gain is exactly that these reach the scheduler one round
     earlier — and commit with stale-aware reconciliation. Returns the
     round plus whether mid-solve events changed the cluster. *)
  let run_round ~now =
    if not config.pipelined then (Firmament.Scheduler.schedule sched ~now, false)
    else begin
      let p = Firmament.Scheduler.begin_round sched ~now in
      let window =
        match config.solver_time with
        | `Measured -> Firmament.Scheduler.solver_runtime sched p
        | `Fixed f -> f
      in
      let evs = Cluster.Event_queue.pop_until events (now +. window) in
      let applied_n =
        List.fold_left (fun acc ev -> if apply ev then acc + 1 else acc) 0 evs
      in
      Telemetry.Metrics.add m m_events_mid_solve applied_n;
      events_mid_solve := !events_mid_solve + applied_n;
      let round = Firmament.Scheduler.commit_round sched p ~now:(now +. window) in
      let ds = List.length round.Firmament.Scheduler.discarded in
      Telemetry.Metrics.add m m_stale_placements ds;
      stale_placements := !stale_placements + ds;
      List.iter
        (fun (_tid, reason) ->
          match reason with
          | `Stale_task -> incr stale_task_discards
          | `Stale_machine -> incr stale_machine_discards
          | `Capacity -> incr capacity_discards)
        round.Firmament.Scheduler.discarded;
      Telemetry.Metrics.add m m_replayed_placements
        round.Firmament.Scheduler.replayed;
      replayed_placements :=
        !replayed_placements + round.Firmament.Scheduler.replayed;
      (round, applied_n > 0)
    end
  in
  let running = ref true in
  let needs_round = ref true in
  while !running && not (out_of_budget ()) do
    let evs = Cluster.Event_queue.pop_until events !sim in
    let changed = ingest evs in
    if changed then needs_round := true;
    if !needs_round || Cluster.State.waiting_count cluster > 0 then begin
      let round, mid_changed = run_round ~now:!sim in
      incr rounds;
      Telemetry.Metrics.incr m m_rounds;
      (match round.Firmament.Scheduler.degraded with
      | `None -> ()
      | `Partial -> incr partial_rounds
      | `Infeasible_retry -> incr infeasible_retries
      | `Failed -> incr failed_rounds);
      let runtime =
        match config.solver_time with
        | `Measured -> round.Firmament.Scheduler.algorithm_runtime
        | `Fixed f -> f
      in
      sim := !sim +. runtime;
      algorithm_runtimes := runtime :: !algorithm_runtimes;
      timeline := (!sim, runtime) :: !timeline;
      on_round ~sim:!sim round;
      List.iter
        (fun (tid, _m) ->
          let task = Cluster.State.task cluster tid in
          placement_latencies := (!sim -. task.W.submit_time) :: !placement_latencies;
          incr tasks_placed;
          bump tid;
          schedule_finish tid ~start:!sim)
        round.Firmament.Scheduler.started;
      List.iter
        (fun (tid, _from, _to) ->
          (* Migration restarts the task from scratch. *)
          incr migrations;
          bump tid;
          schedule_finish tid ~start:!sim)
        round.Firmament.Scheduler.migrated;
      List.iter
        (fun tid ->
          incr preemptions;
          bump tid)
        round.Firmament.Scheduler.preempted;
      let progressed =
        round.Firmament.Scheduler.started <> []
        || round.Firmament.Scheduler.migrated <> []
        || round.Firmament.Scheduler.preempted <> []
      in
      (* Events absorbed mid-solve were committed against a stale
         snapshot's placements; the next round must re-solve for them. *)
      needs_round := mid_changed;
      if (not progressed) && (not changed) && not mid_changed then begin
        (* Nothing placeable right now: jump to the next event. *)
        Telemetry.Metrics.incr m m_idle_jumps;
        match Cluster.Event_queue.peek_time events with
        | Some te -> sim := Float.max !sim te
        | None -> running := false
      end
    end
    else begin
      Telemetry.Metrics.incr m m_idle_jumps;
      match Cluster.Event_queue.peek_time events with
      | Some te -> sim := Float.max !sim te
      | None -> running := false
    end
  done;
  (* Collect response times from finished tasks. *)
  let response_times = ref [] in
  let job_responses = ref [] in
  Cluster.State.iter_jobs cluster (fun job ->
      if job.W.klass = Cluster.Types.Batch then begin
        let all_done = ref true and worst = ref 0. in
        Array.iter
          (fun (task : W.task) ->
            match task.W.state with
            | Cluster.Types.Finished { response_time } ->
                response_times := response_time :: !response_times;
                worst := Float.max !worst response_time
            | Cluster.Types.Waiting | Cluster.Types.Running _ | Cluster.Types.Failed ->
                all_done := false)
          job.W.tasks;
        if !all_done && Array.length job.W.tasks > 0 then
          job_responses := !worst :: !job_responses
      end);
  {
    placement_latencies = List.rev !placement_latencies;
    response_times = !response_times;
    job_response_times = !job_responses;
    algorithm_runtimes = List.rev !algorithm_runtimes;
    runtime_timeline = List.rev !timeline;
    rounds = !rounds;
    degraded_rounds = !partial_rounds + !infeasible_retries + !failed_rounds;
    partial_rounds = !partial_rounds;
    infeasible_retries = !infeasible_retries;
    failed_rounds = !failed_rounds;
    sim_end = !sim;
    tasks_placed = !tasks_placed;
    preemptions = !preemptions;
    migrations = !migrations;
    unfinished_waiting = Cluster.State.waiting_count cluster;
    events_absorbed_mid_solve = !events_mid_solve;
    stale_placements = !stale_placements;
    stale_task_discards = !stale_task_discards;
    stale_machine_discards = !stale_machine_discards;
    capacity_discards = !capacity_discards;
    replayed_placements = !replayed_placements;
    structure_violations =
      List.length
        (Firmament.Flow_network.validate_structure
           (Firmament.Scheduler.network sched));
  }

let run config trace = run_with ~config ~trace ~on_round:(fun ~sim:_ _ -> ()) ()
