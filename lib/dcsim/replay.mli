(** Trace replay for flow-based schedulers — the equivalent of the paper's
    simulator (§7.1): it runs the {e real} Firmament code (policies, graph
    updates, MCMF solvers) against simulated machines and tasks, stubbing
    only task execution.

    Time accounting follows paper Fig. 2b: while the solver runs (its
    {e measured} wall-clock runtime, on this machine), simulated time
    advances and incoming events accumulate; they are applied before the
    next round. A task's placement latency is the simulated time between
    its submission and the completion of the solver run that placed it.
    Slots freed mid-run are reusable only from the next round — the effect
    that hurts long solver runs in Fig. 16. *)

type config = {
  scheduler : Firmament.Scheduler.config;
  policy :
    drain:bool -> Firmament.Flow_network.t -> Cluster.State.t -> Firmament.Policy.t;
  solver_time : [ `Measured | `Fixed of float ];
      (** [`Measured] charges the solver's measured wall-clock runtime
          {e and} the measured cost of applying each event batch to
          simulated time — the scheduler is busy while it ingests, so
          events queued behind a round delay it just like the solve
          does. Events absorbed inside a pipelined solver window are
          exempt: their ingestion overlaps the in-flight solve. [`Fixed]
          charges exactly the given solve time and nothing for
          ingestion, which makes replay deterministic for tests. *)
  pipelined : bool;
      (** when [true], each round dispatches the solve with
          {!Firmament.Scheduler.begin_round} and applies the trace events
          that fall inside the solver window {e while the solve is in
          flight} (they reach the scheduler one round earlier than in the
          synchronous model), then commits with stale-aware
          reconciliation; discarded placements are reported in
          [stale_placements]. The window is the measured solver runtime
          (or the [`Fixed] time). Default [false]. *)
  max_sim_time : float option;
  max_rounds : int option;
}

val default_config : config

type metrics = {
  placement_latencies : float list;  (** one per placement (first or re-) *)
  response_times : float list;  (** per finished batch task *)
  job_response_times : float list;  (** per finished batch job: max task response *)
  algorithm_runtimes : float list;  (** per scheduling round *)
  runtime_timeline : (float * float) list;  (** (sim time, algorithm runtime) *)
  rounds : int;
  degraded_rounds : int;
      (** rounds that did not reach [`None] on the degradation ladder
          (= partial + retried + failed) *)
  partial_rounds : int;  (** deadline-stopped rounds ([`Partial]) *)
  infeasible_retries : int;  (** rounds saved by the scratch retry *)
  failed_rounds : int;  (** rounds infeasible even after the retry *)
  sim_end : float;
  tasks_placed : int;
  preemptions : int;
  migrations : int;
  unfinished_waiting : int;  (** tasks still waiting when replay ended *)
  events_absorbed_mid_solve : int;
      (** trace events applied while a pipelined solve was in flight
          (always 0 when [pipelined = false]) *)
  stale_placements : int;
      (** solver placements the commit discarded instead of applying —
          stale against mid-solve events or capacity-rejected; every one
          is accounted here, none is silently committed. Equals
          [stale_task_discards + stale_machine_discards +
          capacity_discards]. *)
  stale_task_discards : int;
      (** discards whose task was genuinely invalidated mid-solve
          (preempted, or finished and re-placed elsewhere) *)
  stale_machine_discards : int;
      (** discards whose target machine failed mid-solve *)
  capacity_discards : int;
      (** discards rejected by the authoritative capacity re-check *)
  replayed_placements : int;
      (** placements recognized as no-op replays — the task finished
          mid-solve and the solver (re)confirmed the machine it was
          running on. Counted separately from [stale_placements]: nothing
          was invalidated, so treating them as stale would overstate
          commit churn (at one point 695 of 701 "stale" placements in the
          pipelined bench were replays of completed tasks) *)
  structure_violations : int;
      (** flow-network invariant violations at end of replay (see
          {!Firmament.Flow_network.validate_structure}); 0 on a healthy
          run, pipelined or not *)
}

(** [run config trace] replays [trace] to completion (or to the configured
    bounds) and returns the collected metrics. *)
val run : config -> Cluster.Trace.t -> metrics

(** [run_with ?config ~trace ~on_round ()] is {!run} with a per-round hook
    (used by the Fig. 16 timeline and the oversubscription experiments).
    The hook receives the simulated time at the {e end} of each round and
    that round's result. *)
val run_with :
  ?config:config ->
  trace:Cluster.Trace.t ->
  on_round:(sim:float -> Firmament.Scheduler.round -> unit) ->
  unit ->
  metrics
