(** Flow-level network simulator: the stand-in for the paper's 40-machine
    10 G testbed (§7.5).

    Models each machine's NIC as a full-duplex link (ingress and egress
    capacity) on a full-bisection fabric — the testbed's topology — and
    shares bandwidth between active flows by {e max-min fairness} via
    progressive filling, with two service classes: [`High] flows (the
    experiment's iperf-style background load, which the paper runs in a
    higher-priority network service class) are allocated first, and
    [`Low] flows (batch tasks' input transfers) share the residual.

    Advancing simulated time progresses transfers at their current rates,
    recomputing the allocation whenever a flow starts or finishes. The
    per-machine observed bandwidth ({!used_mbps}) is what the
    network-aware policy's monitoring callback reports. *)

type t

val create : Cluster.Topology.t -> t

(** Current simulated time (starts at 0). *)
val now : t -> float

(** [add_background t ?src ~dst ~mbps ()] starts a persistent high-priority
    flow ([src = None] models traffic from outside the cluster). Returns a
    flow id for {!remove_flow}. *)
val add_background :
  t -> ?src:Cluster.Types.machine_id -> dst:Cluster.Types.machine_id -> mbps:float -> unit -> int

val remove_flow : t -> int -> unit

(** [start_transfer t ?src ~dst ~mb ~task ()] starts a low-priority input
    transfer of [mb] megabytes for [task]. *)
val start_transfer :
  t ->
  ?src:Cluster.Types.machine_id ->
  dst:Cluster.Types.machine_id ->
  mb:float ->
  task:Cluster.Types.task_id ->
  unit ->
  int

(** [cancel_task_transfers t task] drops all of [task]'s transfers (task
    preempted or migrated). *)
val cancel_task_transfers : t -> Cluster.Types.task_id -> unit

(** Earliest absolute time at which some transfer completes at current
    rates, if any transfer is active. *)
val next_completion_time : t -> float option

(** [advance t time] moves simulated time forward, completing transfers on
    the way; returns [(completion_time, task)] pairs in order.
    @raise Invalid_argument if [time] is in the past. *)
val advance : t -> float -> (float * Cluster.Types.task_id) list

(** Observed bandwidth (ingress + egress) at a machine, in Mbps. *)
val used_mbps : t -> Cluster.Types.machine_id -> int

(** Number of active flows (all classes). *)
val active_flows : t -> int
