let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let mean xs =
  if xs = [] then invalid_arg "Stats.mean: empty";
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let minimum xs = List.fold_left Float.min infinity xs
let maximum xs = List.fold_left Float.max neg_infinity xs

let five_number xs =
  ( percentile xs 1.,
    percentile xs 25.,
    percentile xs 50.,
    percentile xs 75.,
    percentile xs 99. )

let cdf ?(points = 20) xs =
  if xs = [] then []
  else
    List.init (points + 1) (fun i ->
        let p = 100. *. float_of_int i /. float_of_int points in
        (percentile xs p, p /. 100.))

let pp_duration ppf s =
  if Float.abs s < 1e-3 then Format.fprintf ppf "%.0fµs" (s *. 1e6)
  else if Float.abs s < 1. then Format.fprintf ppf "%.1fms" (s *. 1e3)
  else Format.fprintf ppf "%.2fs" s

let row cells =
  List.iter (fun c -> Printf.printf "%-22s" c) cells;
  print_newline ()

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')
