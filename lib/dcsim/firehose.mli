(** Trace-to-wire replay pacing: turns a {!Churn} trace into a timed
    event stream a socket client ([firmament_loadgen]) can replay against
    [firmament_serve] at a multiple of real time.

    Two concerns stay out of this module by design: the wire encoding
    (the [server] library's protocol — dcsim does not depend on it) and
    index resolution ([Finish k] / [Preempt k] select the [k mod running]-th
    running task, which only the client's live placement-subscription view
    can resolve at send time). Here we decide {e which} events go on the
    wire and {e when}. *)

type timed = { due : float;  (** seconds from replay start *) ev : Churn.event }

(** [wire_events trace] keeps the events a scheduler service accepts over
    its socket protocol — [Submit], [Finish], [Preempt], [Fail_machine],
    [Restore_machine] — and drops the simulator-only ones (explicit
    [Round]/[Begin_round]/[Commit_round], which the server's admission
    batching owns, and [Perturb_costs], which mutates the solver graph
    directly and has no wire representation). *)
val wire_events : Churn.event list -> Churn.event list

(** [schedule ~rate trace] paces {!wire_events}[ trace] at [rate] {e task
    events per second}: a [Submit] of [n] tasks weighs [n], every other
    event weighs 1, and each event's [due] is the cumulative weight before
    it divided by [rate]. Replaying the result in order, sleeping until
    each [due], reproduces the trace's event mix at the requested
    firehose intensity. @raise Invalid_argument if [rate <= 0]. *)
val schedule : rate:float -> Churn.event list -> timed list

(** [shard ~shards evs] deals a timed stream round-robin onto [shards]
    connections, preserving order and [due] within each shard.
    @raise Invalid_argument if [shards < 1]. *)
val shard : shards:int -> timed list -> timed list array
