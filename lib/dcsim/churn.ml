type event =
  | Submit of { jid : int; tasks : int; duration : float; locality : int }
  | Finish of int
  | Preempt of int
  | Fail_machine of int
  | Restore_machine of int
  | Perturb_costs of { seed : int; arcs : int }
  | Round of { polls : int }
  | Begin_round
  | Commit_round

let pp ppf = function
  | Submit { jid; tasks; duration; locality } ->
      Format.fprintf ppf "submit job %d (%d tasks, %gs, locality %d)" jid tasks
        duration locality
  | Finish k -> Format.fprintf ppf "finish #%d" k
  | Preempt k -> Format.fprintf ppf "preempt #%d" k
  | Fail_machine m -> Format.fprintf ppf "fail machine %d" m
  | Restore_machine m -> Format.fprintf ppf "restore machine %d" m
  | Perturb_costs { seed; arcs } ->
      Format.fprintf ppf "perturb %d arcs (seed %d)" arcs seed
  | Round { polls } ->
      if polls <= 0 then Format.fprintf ppf "round"
      else Format.fprintf ppf "round (stop after %d polls)" polls
  | Begin_round -> Format.fprintf ppf "begin-round"
  | Commit_round -> Format.fprintf ppf "commit-round"

let generate ~seed ~machines ~length =
  let rng = Random.State.make [| 0x6675; 0x7a7a; seed |] in
  let machines = max 1 machines in
  let next_jid = ref 0 in
  let submit () =
    let jid = !next_jid in
    incr next_jid;
    Submit
      {
        jid;
        tasks = 1 + Random.State.int rng 4;
        duration = 50. +. float_of_int (Random.State.int rng 200);
        locality = Random.State.int rng 10_000;
      }
  in
  let events = ref [] in
  for _ = 1 to max 0 (length - 1) do
    let r = Random.State.int rng 100 in
    let ev =
      if r < 24 then submit ()
      else if r < 48 then
        (* Mostly full rounds; occasionally a deterministic poll-budget
           stop standing in for a deadline-cut partial round. *)
        Round
          {
            polls =
              (if Random.State.int rng 6 = 0 then 1 + Random.State.int rng 30 else 0);
          }
      else if r < 60 then Finish (Random.State.int rng 1_000)
      else if r < 66 then Preempt (Random.State.int rng 1_000)
      else if r < 73 then Fail_machine (Random.State.int rng machines)
      else if r < 81 then Restore_machine (Random.State.int rng machines)
      else if r < 89 then
        Perturb_costs
          { seed = Random.State.int rng 10_000; arcs = 1 + Random.State.int rng 8 }
      else if r < 95 then Begin_round
      else Commit_round
    in
    events := ev :: !events
  done;
  List.rev (Round { polls = 0 } :: !events)

(* Text form: one event per line, space-separated fields. Durations use
   lossless hex-float notation so [of_line (to_line e) = e] exactly. *)

let to_line = function
  | Submit { jid; tasks; duration; locality } ->
      Printf.sprintf "submit %d %d %h %d" jid tasks duration locality
  | Finish k -> Printf.sprintf "finish %d" k
  | Preempt k -> Printf.sprintf "preempt %d" k
  | Fail_machine m -> Printf.sprintf "fail %d" m
  | Restore_machine m -> Printf.sprintf "restore %d" m
  | Perturb_costs { seed; arcs } -> Printf.sprintf "perturb %d %d" seed arcs
  | Round { polls } -> Printf.sprintf "round %d" polls
  | Begin_round -> "begin"
  | Commit_round -> "commit"

let fail fmt = Format.kasprintf failwith fmt

let of_line line =
  let int s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> fail "Churn.of_line: expected integer, got %S in %S" s line
  in
  let flt s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail "Churn.of_line: expected float, got %S in %S" s line
  in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ "submit"; jid; tasks; duration; locality ] ->
      Submit
        { jid = int jid; tasks = int tasks; duration = flt duration; locality = int locality }
  | [ "finish"; k ] -> Finish (int k)
  | [ "preempt"; k ] -> Preempt (int k)
  | [ "fail"; m ] -> Fail_machine (int m)
  | [ "restore"; m ] -> Restore_machine (int m)
  | [ "perturb"; seed; arcs ] -> Perturb_costs { seed = int seed; arcs = int arcs }
  | [ "round"; polls ] -> Round { polls = int polls }
  | [ "begin" ] -> Begin_round
  | [ "commit" ] -> Commit_round
  | _ -> fail "Churn.of_line: unrecognized event %S" line

let to_lines events = List.map to_line events

let of_lines lines =
  List.filter_map
    (fun l -> if String.trim l = "" then None else Some (of_line l))
    lines
