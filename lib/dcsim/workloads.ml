module W = Cluster.Workload

let big_job ~jid ~n_tasks ~submit ~duration ?(first_tid = 1_000_000) () =
  let tasks =
    Array.init n_tasks (fun i ->
        W.make_task ~tid:(first_tid + i) ~job:jid ~submit_time:submit ~duration ())
  in
  W.make_job ~jid ~klass:Cluster.Types.Batch ~submit_time:submit ~tasks

let short_task_jobs ~machines ~slots ~task_duration ~tasks_per_job ~load ~horizon ~seed =
  let rng = Random.State.make [| seed |] in
  let total_slots = float_of_int (machines * slots) in
  (* Poisson arrivals: occupancy = rate * tasks_per_job * duration. *)
  let job_rate = load *. total_slots /. (float_of_int tasks_per_job *. task_duration) in
  let jobs = ref [] in
  let t = ref 0. in
  let jid = ref 0 in
  let tid = ref 0 in
  while !t < horizon do
    t := !t +. (-.(1. /. job_rate) *. log (max 1e-12 (Random.State.float rng 1.)));
    if !t < horizon then begin
      let tasks =
        Array.init tasks_per_job (fun _ ->
            let id = !tid in
            incr tid;
            W.make_task ~tid:id ~job:!jid ~submit_time:!t ~duration:task_duration ())
      in
      jobs := (!t, W.make_job ~jid:!jid ~klass:Cluster.Types.Batch ~submit_time:!t ~tasks) :: !jobs;
      incr jid
    end
  done;
  List.rev !jobs

let testbed_short_batch ~machines ~n_tasks ~interarrival ~seed =
  let rng = Random.State.make [| seed |] in
  List.init n_tasks (fun i ->
      let t = float_of_int i *. interarrival in
      let compute = 3.5 +. Random.State.float rng 1.5 in
      let input_mb = 4_000. +. Random.State.float rng 4_000. in
      let replicas = List.init 3 (fun _ -> Random.State.int rng machines) in
      let demand = int_of_float (input_mb *. 8. /. Float.max 1. compute) in
      let task =
        W.make_task ~tid:i ~job:i ~submit_time:t ~duration:compute ~input_mb
          ~input_machines:replicas
          ~net_demand_mbps:(min 9_000 demand)
          ()
      in
      (t, W.make_job ~jid:i ~klass:Cluster.Types.Batch ~submit_time:t ~tasks:[| task |]))

let testbed_background ~machines ~seed =
  let rng = Random.State.make [| seed |] in
  let pick () = Random.State.int rng machines in
  (* Fourteen iperf clients -> seven servers at 4 Gbps each (two per
     server), high priority. *)
  let iperf =
    List.concat_map
      (fun _server ->
        let dst = pick () in
        [
          { Testbed.bg_src = Some (pick ()); bg_dst = dst; bg_mbps = 4_000. };
          { Testbed.bg_src = Some (pick ()); bg_dst = dst; bg_mbps = 4_000. };
        ])
      (List.init 7 Fun.id)
  in
  (* Three nginx servers serving seven HTTP clients: lighter flows out of
     the web servers. *)
  let nginx =
    List.init 7 (fun i ->
        { Testbed.bg_src = Some (pick ()); bg_dst = pick (); bg_mbps = 300. +. float_of_int (i * 50) })
  in
  iperf @ nginx
