(** Local-testbed simulation for the §7.5 placement-quality experiments
    (Fig. 19): a 40-machine, 10 G cluster where short batch-analytics
    tasks read multi-GB inputs over the network ({!Netsim}), optionally
    competing with high-priority background traffic (iperf-style batch
    flows and nginx-style service flows).

    A task placed on machine [m] first transfers its input from a storage
    machine (unless it is local), then computes for its duration; its
    response time is therefore dominated by the bandwidth its transfer
    gets — which is exactly what distinguishes the network-aware policy
    from bandwidth-oblivious schedulers.

    The engine drives either the Firmament scheduler (any policy factory;
    use the network-aware one for the paper's setup, wired to
    {!Netsim.used_mbps} as its monitoring source) or a queue-based
    {!Baselines.t}, or the idealized isolation baseline ("Idle" in
    Fig. 19: every task alone on an idle network). *)

type kind =
  | Firmament of
      (bandwidth_used:(Cluster.Types.machine_id -> int) ->
      drain:bool ->
      Firmament.Flow_network.t ->
      Cluster.State.t ->
      Firmament.Policy.t)
  | Baseline of Baselines.t
  | Isolation  (** analytic lower bound: full NIC for every transfer *)

type background = {
  bg_src : Cluster.Types.machine_id option;
  bg_dst : Cluster.Types.machine_id;
  bg_mbps : float;
}

type result = {
  response_times : float list;  (** finished short-batch tasks *)
  placement_latencies : float list;
  finished : int;
  unfinished : int;
}

(** [run ~topology ~arrivals ~background kind] replays the workload to
    completion (bounded by [max_sim_time], default 10,000 s). *)
val run :
  ?max_sim_time:float ->
  topology:Cluster.Topology.t ->
  arrivals:(float * Cluster.Workload.job) list ->
  background:background list ->
  kind ->
  result
