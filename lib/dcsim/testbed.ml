module W = Cluster.Workload

type kind =
  | Firmament of
      (bandwidth_used:(Cluster.Types.machine_id -> int) ->
      drain:bool ->
      Firmament.Flow_network.t ->
      Cluster.State.t ->
      Firmament.Policy.t)
  | Baseline of Baselines.t
  | Isolation

type background = {
  bg_src : Cluster.Types.machine_id option;
  bg_dst : Cluster.Types.machine_id;
  bg_mbps : float;
}

type result = {
  response_times : float list;
  placement_latencies : float list;
  finished : int;
  unfinished : int;
}

type event = Arrival of W.job | Compute_done of Cluster.Types.task_id * int

(* Isolation: every task runs alone on an idle network. *)
let run_isolation ~topology ~arrivals =
  let nic m =
    float_of_int (Cluster.Topology.machine topology m).Cluster.Topology.net_capacity_mbps
  in
  let responses = ref [] in
  List.iter
    (fun (_t, job) ->
      Array.iter
        (fun (task : W.task) ->
          let transfer =
            match task.W.input_machines with
            | [] -> 0.
            | m :: _ -> task.W.input_mb *. 8. /. nic m
          in
          responses := (transfer +. task.W.duration) :: !responses)
        job.W.tasks)
    arrivals;
  {
    response_times = !responses;
    placement_latencies = List.map (fun _ -> 0.) !responses;
    finished = List.length !responses;
    unfinished = 0;
  }

let run ?(max_sim_time = 10_000.) ~topology ~arrivals ~background kind =
  match kind with
  | Isolation -> run_isolation ~topology ~arrivals
  | _ ->
      let cluster = Cluster.State.create topology in
      let net = Netsim.create topology in
      List.iter
        (fun bg -> ignore (Netsim.add_background net ?src:bg.bg_src ~dst:bg.bg_dst ~mbps:bg.bg_mbps ()))
        background;
      let events = Cluster.Event_queue.create () in
      (* Clone at intake: workload descriptions are reusable, tasks mutable. *)
      List.iter
        (fun (t, job) -> Cluster.Event_queue.add events ~time:t (Arrival (W.clone_job job)))
        arrivals;
      let epochs : (Cluster.Types.task_id, int) Hashtbl.t = Hashtbl.create 256 in
      let epoch tid = Option.value ~default:0 (Hashtbl.find_opt epochs tid) in
      let bump tid = Hashtbl.replace epochs tid (epoch tid + 1) in
      let placement_latencies = ref [] in
      let finished = ref 0 in
      let sim = ref 0. in
      (* Per-machine worker-side queues (Sparrow late binding). *)
      let worker_queues : (Cluster.Types.machine_id, Cluster.Types.task_id Queue.t) Hashtbl.t =
        Hashtbl.create 64
      in
      let worker_queue m =
        match Hashtbl.find_opt worker_queues m with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace worker_queues m q;
            q
      in
      (* Begin execution on a machine: transfer the input, then compute. *)
      let begin_execution tid m ~now =
        let task = Cluster.State.task cluster tid in
        placement_latencies := (now -. task.W.submit_time) :: !placement_latencies;
        let local = List.mem m task.W.input_machines in
        (* Read from the least-loaded replica (HDFS-style source choice —
           every scheduler benefits equally). *)
        let src =
          List.filter (fun s -> s <> m && Cluster.State.machine_is_live cluster s)
            task.W.input_machines
          |> List.sort (fun a b -> compare (Netsim.used_mbps net a) (Netsim.used_mbps net b))
          |> function
          | [] -> None
          | s :: _ -> Some s
        in
        if local || task.W.input_mb <= 0. || src = None then
          Cluster.Event_queue.add events ~time:(now +. task.W.duration)
            (Compute_done (tid, epoch tid))
        else
          ignore (Netsim.start_transfer net ?src ~dst:m ~mb:task.W.input_mb ~task:tid ())
      in
      (* Scheduler-specific machinery. *)
      let sched_and_policy =
        match kind with
        | Firmament policy ->
            let factory ~drain net' st =
              policy ~bandwidth_used:(fun m -> Netsim.used_mbps net m) ~drain net' st
            in
            Some (Firmament.Scheduler.create cluster ~policy:factory)
        | Baseline _ | Isolation -> None
      in
      let baseline = match kind with Baseline b -> Some b | _ -> None in
      let central_queue : Cluster.Types.task_id Queue.t = Queue.create () in
      let run_firmament_round () =
        match sched_and_policy with
        | None -> ()
        | Some sched ->
            let round = Firmament.Scheduler.schedule sched ~now:!sim in
            let runtime = round.Firmament.Scheduler.algorithm_runtime in
            (* Solver occupancy: effects land at sim + runtime. *)
            let t_eff = !sim +. runtime in
            List.iter
              (fun (tid, m) ->
                bump tid;
                begin_execution tid m ~now:t_eff)
              round.Firmament.Scheduler.started;
            List.iter
              (fun (tid, _old_m, m) ->
                bump tid;
                Netsim.cancel_task_transfers net tid;
                begin_execution tid m ~now:t_eff)
              round.Firmament.Scheduler.migrated;
            List.iter
              (fun tid ->
                bump tid;
                Netsim.cancel_task_transfers net tid)
              round.Firmament.Scheduler.preempted
      in
      let try_place_baseline tid =
        match baseline with
        | None -> false
        | Some b ->
            let task = Cluster.State.task cluster tid in
            let now = !sim +. b.Baselines.per_task_overhead_s in
            (match b.Baselines.select cluster task with
            | None -> false
            | Some m ->
                if Cluster.State.free_slots_on cluster m > 0 then begin
                  Cluster.State.place cluster tid m ~now;
                  bump tid;
                  begin_execution tid m ~now;
                  true
                end
                else if b.Baselines.worker_side_queue then begin
                  Queue.add tid (worker_queue m);
                  true
                end
                else false)
      in
      let drain_central_queue () =
        (* Retry head-of-line tasks until one fails to place. *)
        let continue = ref true in
        while !continue && not (Queue.is_empty central_queue) do
          let tid = Queue.peek central_queue in
          if try_place_baseline tid then ignore (Queue.pop central_queue) else continue := false
        done
      in
      let pop_worker_queue m =
        match Hashtbl.find_opt worker_queues m with
        | None -> ()
        | Some q ->
            if (not (Queue.is_empty q)) && Cluster.State.free_slots_on cluster m > 0 then begin
              let tid = Queue.pop q in
              Cluster.State.place cluster tid m ~now:!sim;
              bump tid;
              begin_execution tid m ~now:!sim
            end
      in
      let handle_event (time, ev) =
        sim := Float.max !sim time;
        match ev with
        | Arrival job -> (
            match sched_and_policy with
            | Some sched ->
                Firmament.Scheduler.submit_job sched job;
                run_firmament_round ()
            | None ->
                Cluster.State.submit_job cluster job;
                Array.iter
                  (fun (task : W.task) ->
                    if not (try_place_baseline task.W.tid) then
                      Queue.add task.W.tid central_queue)
                  job.W.tasks)
        | Compute_done (tid, e) ->
            if e = epoch tid && W.is_running (Cluster.State.task cluster tid) then begin
              let m = Option.get (W.machine_of (Cluster.State.task cluster tid)) in
              (match sched_and_policy with
              | Some sched ->
                  Firmament.Scheduler.finish_task sched tid ~now:!sim;
                  incr finished;
                  run_firmament_round ()
              | None ->
                  Cluster.State.finish cluster tid ~now:!sim;
                  incr finished;
                  pop_worker_queue m;
                  drain_central_queue ())
            end
      in
      let transfer_done (time, tid) =
        sim := Float.max !sim time;
        if W.is_running (Cluster.State.task cluster tid) then begin
          let task = Cluster.State.task cluster tid in
          Cluster.Event_queue.add events ~time:(!sim +. task.W.duration)
            (Compute_done (tid, epoch tid))
        end
      in
      let running = ref true in
      while !running && !sim < max_sim_time do
        let next_ev = Cluster.Event_queue.peek_time events in
        let next_tx = Netsim.next_completion_time net in
        match (next_ev, next_tx) with
        | None, None -> running := false
        | Some te, None ->
            ignore (Netsim.advance net te);
            List.iter handle_event (Cluster.Event_queue.pop_until events te)
        | None, Some tt ->
            let completions = Netsim.advance net tt in
            List.iter transfer_done completions
        | Some te, Some tt ->
            if tt <= te then List.iter transfer_done (Netsim.advance net tt)
            else begin
              ignore (Netsim.advance net te);
              List.iter handle_event (Cluster.Event_queue.pop_until events te)
            end
      done;
      let responses = ref [] in
      let unfinished = ref 0 in
      Cluster.State.iter_tasks cluster (fun task ->
          match task.W.state with
          | Cluster.Types.Finished { response_time } -> responses := response_time :: !responses
          | Cluster.Types.Waiting | Cluster.Types.Running _ -> incr unfinished
          | Cluster.Types.Failed -> ());
      {
        response_times = !responses;
        placement_latencies = !placement_latencies;
        finished = !finished;
        unfinished = !unfinished;
      }
