(** Small statistics helpers for the benchmark harness: percentiles,
    CDF tables, and fixed-width row printing in the shape of the paper's
    figures. *)

(** [percentile xs p] is the [p]-th percentile (0–100) by linear
    interpolation. @raise Invalid_argument on an empty list or p outside
    [0, 100]. *)
val percentile : float list -> float -> float

val mean : float list -> float
val minimum : float list -> float
val maximum : float list -> float

(** [five_number xs] is (p1, p25, p50, p75, p99) — the whisker/box set the
    paper's box plots report (Fig. 3, Fig. 18). *)
val five_number : float list -> float * float * float * float * float

(** [cdf ?points xs] is an evenly-spaced (value, cumulative fraction)
    table, suitable for printing a CDF series (Fig. 13/14/15/19). *)
val cdf : ?points:int -> float list -> (float * float) list

(** [pp_duration ppf s] prints seconds with an adaptive unit (µs/ms/s). *)
val pp_duration : Format.formatter -> float -> unit

(** [row cells] prints fixed-width table cells separated by two spaces. *)
val row : string list -> unit

(** [header title] prints an underlined section title (one per table or
    figure in the harness output). *)
val header : string -> unit
