type timed = { due : float; ev : Churn.event }

let on_wire = function
  | Churn.Submit _ | Churn.Finish _ | Churn.Preempt _ | Churn.Fail_machine _
  | Churn.Restore_machine _ ->
      true
  | Churn.Perturb_costs _ | Churn.Round _ | Churn.Begin_round
  | Churn.Commit_round ->
      false

let wire_events trace = List.filter on_wire trace

let weight = function Churn.Submit { tasks; _ } -> max 1 tasks | _ -> 1

let schedule ~rate trace =
  if rate <= 0. then invalid_arg "Firehose.schedule: rate must be positive";
  let cum = ref 0 in
  List.map
    (fun ev ->
      let due = float_of_int !cum /. rate in
      cum := !cum + weight ev;
      { due; ev })
    (wire_events trace)

let shard ~shards evs =
  if shards < 1 then invalid_arg "Firehose.shard: shards must be >= 1";
  let out = Array.make shards [] in
  List.iteri (fun i tv -> out.(i mod shards) <- tv :: out.(i mod shards)) evs;
  Array.map List.rev out
