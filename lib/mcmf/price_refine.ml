module G = Flowgraph.Graph

(* Persistent SPFA scratch. [dist] and [relax_count] are zeroed for every
   live node at the start of each run (O(live), not O(bound)); [in_queue]
   is epoch-stamped so stale entries from earlier runs never read as
   queued. *)
type workspace = {
  mutable nbound : int;
  mutable dist : int array;
  mutable in_queue : int array; (* = epoch <=> queued *)
  mutable relax_count : int array;
  mutable epoch : int;
  queue : Int_deque.t;
}

let create_workspace () =
  {
    nbound = 0;
    dist = [||];
    in_queue = [||];
    relax_count = [||];
    epoch = 0;
    queue = Int_deque.create ();
  }

let ws_ensure ws bound =
  if bound > ws.nbound then begin
    let n = ref (max 64 ws.nbound) in
    while !n < bound do
      n := !n * 2
    done;
    let n = !n in
    ws.dist <- Array.make n 0;
    ws.in_queue <- Array.make n 0;
    ws.relax_count <- Array.make n 0;
    ws.nbound <- n
  end

let reserve = ws_ensure

(* Read-only dual-feasibility check at an arbitrary scale: every residual
   arc must have nonnegative scaled reduced cost
   [cost·scale − p(src) + p(dst)]. With [scale = 1] and unscaled
   potentials this is plain reduced-cost optimality; with cost scaling's
   scale it certifies potentials already living in scaled units (e.g.
   after an incremental repair). *)
let certified ?(scale = 1) g =
  let ok = ref true in
  (try
     G.iter_arcs g (fun a0 ->
         let u = G.src g a0 and v = G.dst g a0 in
         let rc = (G.cost g a0 * scale) - G.potential g u + G.potential g v in
         if (G.rescap g a0 > 0 && rc < 0) || (G.rescap g (G.rev a0) > 0 && rc > 0)
         then begin
           ok := false;
           raise Exit
         end)
   with Exit -> ());
  !ok

(* Fast path: if the stored potentials already satisfy reduced-cost
   optimality in unscaled units (true whenever relaxation produced the
   solution — it maintains that invariant), valid scaled potentials are
   just [scale · p]: rc_scaled = scale · rc_unscaled >= 0. *)
let rescale_if_certified ~scale g =
  let ok = certified ~scale:1 g in
  if ok then
    G.iter_nodes g (fun v -> G.set_potential g v (G.potential g v * scale));
  ok

let run_spfa ~scale ws g =
  let bound = max 1 (G.node_bound g) in
  ws_ensure ws bound;
  ws.epoch <- ws.epoch + 1;
  let epoch = ws.epoch in
  let dist = ws.dist in
  let in_queue = ws.in_queue in
  let relax_count = ws.relax_count in
  let queue = ws.queue in
  Int_deque.clear queue;
  let n = G.node_count g in
  G.iter_nodes g (fun v ->
      dist.(v) <- 0;
      relax_count.(v) <- 0;
      in_queue.(v) <- epoch;
      Int_deque.push_back queue v);
  let ok = ref true in
  (try
     while not (Int_deque.is_empty queue) do
       let u = Int_deque.pop_front queue in
       in_queue.(u) <- 0;
       let it = ref (G.first_active g u) in
       while !it >= 0 do
         let a = !it in
         let v = G.dst g a in
         let d = dist.(u) + (G.cost g a * scale) in
         if d < dist.(v) then begin
           dist.(v) <- d;
           relax_count.(v) <- relax_count.(v) + 1;
           if relax_count.(v) > n + 1 then begin
             (* Negative residual cycle: the flow is not optimal. *)
             ok := false;
             raise Exit
           end;
           if in_queue.(v) <> epoch then begin
             Int_deque.push_back queue v;
             in_queue.(v) <- epoch
           end
         end;
         it := G.next_active g a
       done
     done
   with Exit -> ());
  if !ok then G.iter_nodes g (fun v -> G.set_potential g v (- dist.(v)));
  !ok

let m = Telemetry.Metrics.global ()

let m_certified =
  Telemetry.Metrics.counter m
    ~help:"price-refine runs resolved by the certified rescale fast path"
    "mcmf_price_refine_certified_total"

let m_spfa_ok =
  Telemetry.Metrics.counter m
    ~help:"price-refine SPFA runs that produced valid potentials"
    "mcmf_price_refine_spfa_ok_total"

let m_spfa_fail =
  Telemetry.Metrics.counter m
    ~help:"price-refine SPFA runs aborted on a negative residual cycle"
    "mcmf_price_refine_spfa_fail_total"

let run ?(scale = 1) ?workspace g =
  if rescale_if_certified ~scale g then begin
    Telemetry.Metrics.incr m m_certified;
    true
  end
  else begin
    let ws = match workspace with Some w -> w | None -> create_workspace () in
    let ok = run_spfa ~scale ws g in
    Telemetry.Metrics.incr m (if ok then m_spfa_ok else m_spfa_fail);
    ok
  end
