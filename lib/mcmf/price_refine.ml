module G = Flowgraph.Graph

(* Fast path: if the stored potentials already satisfy reduced-cost
   optimality in unscaled units (true whenever relaxation produced the
   solution — it maintains that invariant), valid scaled potentials are
   just [scale · p]: rc_scaled = scale · rc_unscaled >= 0. *)
let rescale_if_certified ~scale g =
  let ok = ref true in
  (try
     G.iter_arcs g (fun a0 ->
         let look a =
           if G.rescap g a > 0 && G.reduced_cost g a < 0 then begin
             ok := false;
             raise Exit
           end
         in
         look a0;
         look (G.rev a0))
   with Exit -> ());
  if !ok then
    G.iter_nodes g (fun v -> G.set_potential g v (G.potential g v * scale));
  !ok

let run_spfa ~scale g =
  let bound = max 1 (G.node_bound g) in
  let dist = Array.make bound 0 in
  let in_queue = Array.make bound true in
  let relax_count = Array.make bound 0 in
  let n = G.node_count g in
  let queue = Queue.create () in
  G.iter_nodes g (fun v -> Queue.add v queue);
  let ok = ref true in
  (try
     while not (Queue.is_empty queue) do
       let u = Queue.pop queue in
       in_queue.(u) <- false;
       let it = ref (G.first_active g u) in
       while !it >= 0 do
         let a = !it in
         let v = G.dst g a in
         let d = dist.(u) + (G.cost g a * scale) in
         if d < dist.(v) then begin
           dist.(v) <- d;
           relax_count.(v) <- relax_count.(v) + 1;
           if relax_count.(v) > n + 1 then begin
             (* Negative residual cycle: the flow is not optimal. *)
             ok := false;
             raise Exit
           end;
           if not in_queue.(v) then begin
             Queue.add v queue;
             in_queue.(v) <- true
           end
         end;
         it := G.next_active g a
       done
     done
   with Exit -> ());
  if !ok then G.iter_nodes g (fun v -> G.set_potential g v (- dist.(v)));
  !ok

let run ?(scale = 1) g = if rescale_if_certified ~scale g then true else run_spfa ~scale g
