module G = Flowgraph.Graph

(* O(changes) flow repair (paper §5: incremental min-cost max-flow).

   Input: a graph carrying the previous round's adopted optimal flow and
   its (scaled) potentials, mutated by the round's change set — node
   adds/removals, capacity cuts, cost changes, supply changes. The graph
   kernel keeps the pseudoflow consistent under those mutations
   (removals credit flow back as excesses, capacity cuts push overflow
   back), so what remains is a pseudoflow that is {e almost} optimal:
   reduced-cost violations and excesses appear only where the round
   touched the graph.

   Repair restores optimality locally:
   1. saturate every residual arc whose scaled reduced cost went
      negative (re-establishes dual feasibility; creates excesses only
      at endpoints of changed arcs);
   2. collect the excess nodes — if there are more than [budget], the
      delta was not small and the caller should run the full race;
   3. route each excess to a deficit with potential-guided Dijkstra
      over scaled reduced costs (all nonnegative after step 1), updating
      potentials only on the nodes the search actually settled:
      p(v) += dt − dist(v) for settled v keeps every reduced cost
      nonnegative while touching O(dirty region) nodes, unlike the full
      solvers' O(n) relabel;
   4. certify: zero excess everywhere and {!Price_refine.certified} at
      the caller's scale. Any failure returns the reason and the caller
      falls back to the untouched full race.

   The kernel mutates [g] (flows and potentials) — callers hand it a
   scratch copy so a give-up can discard the partial repair. *)

type reason = Oversized | No_path | Not_certified | Stopped_mid_repair

let reason_name = function
  | Oversized -> "oversized"
  | No_path -> "no_path"
  | Not_certified -> "not_certified"
  | Stopped_mid_repair -> "stopped"

type outcome = Repaired of Solver_intf.stats | Gave_up of reason

(* Persistent scratch: Ssp's Dijkstra arrays plus a [touched] stack of the
   nodes settled this augmentation (the only ones whose potentials move)
   and a [sources] stack of the round's excess nodes (collected once —
   augmentations only shrink excesses, never mint new ones). *)
type workspace = {
  mutable nbound : int;
  mutable dist : int array;
  mutable parent : int array;
  mutable seen : int array; (* = epoch <=> dist/parent valid this round *)
  mutable settled : int array; (* = epoch <=> settled this round *)
  mutable epoch : int;
  mutable touched : int array;
  mutable sources : int array;
  heap : Heap.t;
}

let create_workspace () =
  {
    nbound = 0;
    dist = [||];
    parent = [||];
    seen = [||];
    settled = [||];
    epoch = 0;
    touched = [||];
    sources = [||];
    heap = Heap.create ~capacity:16;
  }

let reserve ws bound =
  if bound > ws.nbound then begin
    let n = ref (max 64 ws.nbound) in
    while !n < bound do
      n := !n * 2
    done;
    let n = !n in
    ws.dist <- Array.make n 0;
    ws.parent <- Array.make n (-1);
    ws.seen <- Array.make n 0;
    ws.settled <- Array.make n 0;
    ws.touched <- Array.make n 0;
    ws.sources <- Array.make n 0;
    ws.nbound <- n
  end

let m = Telemetry.Metrics.global ()

let m_repairs =
  Telemetry.Metrics.counter m
    ~help:"incremental repairs that restored a certified optimal flow"
    "mcmf_incremental_repairs_total"

let m_giveup_oversized =
  Telemetry.Metrics.counter m
    ~help:"incremental repairs abandoned: change set larger than the budget"
    "mcmf_incremental_giveup_oversized_total"

let m_giveup_no_path =
  Telemetry.Metrics.counter m
    ~help:"incremental repairs abandoned: an excess could not reach a deficit"
    "mcmf_incremental_giveup_no_path_total"

let m_giveup_not_certified =
  Telemetry.Metrics.counter m
    ~help:"incremental repairs abandoned: price-refine certification failed"
    "mcmf_incremental_giveup_not_certified_total"

let m_giveup_stopped =
  Telemetry.Metrics.counter m
    ~help:"incremental repairs abandoned: stop callback fired mid-repair"
    "mcmf_incremental_giveup_stopped_total"

let m_repair_ns =
  Telemetry.Metrics.histogram m
    ~help:"wall time of successful incremental repairs (ns)"
    "mcmf_incremental_repair_ns"

let m_repair_augs =
  Telemetry.Metrics.histogram m
    ~help:"shortest-path augmentations per successful incremental repair"
    "mcmf_incremental_repair_augs"

let m_repair_touched =
  Telemetry.Metrics.histogram m
    ~help:"nodes settled (dirty-region size) per successful incremental repair"
    "mcmf_incremental_repair_touched"

let giveup_counter = function
  | Oversized -> m_giveup_oversized
  | No_path -> m_giveup_no_path
  | Not_certified -> m_giveup_not_certified
  | Stopped_mid_repair -> m_giveup_stopped

(* Saturate residual arcs with negative {e scaled} reduced cost.
   Establish-optimality at the cost-scaling scale: potentials carried
   over from the previous round live in scaled units, so feasibility
   must be judged there too. Returns the number of arcs saturated. *)
let saturate ~scale g =
  let n = ref 0 in
  G.iter_arcs g (fun a0 ->
      let u = G.src g a0 and v = G.dst g a0 in
      let rc = (G.cost g a0 * scale) - G.potential g u + G.potential g v in
      if rc < 0 then begin
        if G.rescap g a0 > 0 then begin
          G.push g a0 (G.rescap g a0);
          incr n
        end
      end
      else if rc > 0 then begin
        let a1 = G.rev a0 in
        if G.rescap g a1 > 0 then begin
          G.push g a1 (G.rescap g a1);
          incr n
        end
      end);
  !n

exception Give_up of reason

let repair ?(stop = Solver_intf.never_stop) ~scale ~budget ?workspace g =
  let t0 = Telemetry.Clock.now_ns () in
  let ws = match workspace with Some w -> w | None -> create_workspace () in
  let bound = max 1 (G.node_bound g) in
  reserve ws bound;
  let iterations = ref 0 in
  let pushes = ref 0 in
  let relabels = ref 0 in
  try
    ignore (saturate ~scale g);
    (* One excess sweep: augmentations only move flow from an excess to a
       deficit, so no node turns into a source later — the list is
       complete for the whole repair. *)
    let sources = ws.sources in
    let nsrc = ref 0 in
    let deficit_exists = ref false in
    G.iter_nodes g (fun v ->
        let e = G.excess g v in
        if e > 0 then begin
          if !nsrc >= budget then raise (Give_up Oversized);
          sources.(!nsrc) <- v;
          incr nsrc
        end
        else if e < 0 then deficit_exists := true);
    if !nsrc > 0 && not !deficit_exists then raise (Give_up No_path);
    let dist = ws.dist in
    let parent = ws.parent in
    let seen = ws.seen in
    let settled = ws.settled in
    let touched = ws.touched in
    let heap = ws.heap in
    let remaining = ref true in
    while !remaining do
      if stop () then raise (Give_up Stopped_mid_repair);
      ws.epoch <- ws.epoch + 1;
      let epoch = ws.epoch in
      Heap.clear heap;
      let live = ref 0 in
      for i = 0 to !nsrc - 1 do
        let s = sources.(i) in
        if G.node_is_live g s && G.excess g s > 0 then begin
          incr live;
          dist.(s) <- 0;
          parent.(s) <- -1;
          seen.(s) <- epoch;
          Heap.insert heap s 0
        end
      done;
      if !live = 0 then remaining := false
      else begin
        incr iterations;
        if !iterations > budget then raise (Give_up Oversized);
        (* Multi-source Dijkstra over scaled reduced costs, stopping at
           the first deficit. Every settled node is recorded in
           [touched] — the potential update below walks only those. *)
        let tlen = ref 0 in
        let target = ref (-1) in
        while !target < 0 && not (Heap.is_empty heap) do
          let u, du = Heap.pop_min heap in
          if settled.(u) <> epoch then begin
            settled.(u) <- epoch;
            touched.(!tlen) <- u;
            incr tlen;
            if G.excess g u < 0 then target := u
            else begin
              let it = ref (G.first_active g u) in
              while !it >= 0 do
                let a = !it in
                let v = G.dst g a in
                if settled.(v) <> epoch then begin
                  let rc =
                    (G.cost g a * scale) - G.potential g u + G.potential g v
                  in
                  let dv = du + rc in
                  if seen.(v) <> epoch || dv < dist.(v) then begin
                    dist.(v) <- dv;
                    parent.(v) <- a;
                    seen.(v) <- epoch;
                    Heap.insert heap v dv
                  end
                end;
                it := G.next_active g a
              done
            end
          end
        done;
        if !target < 0 then raise (Give_up No_path);
        let t = !target in
        let dt = dist.(t) in
        (* Local potential update: p(v) += dt − dist(v) for settled v
           only. Settled→settled arcs keep rc ≥ 0 by Dijkstra
           optimality (path arcs become rc = 0); settled→unsettled
           arcs gain rc ≥ 0 because any unsettled label is ≥ dt; arcs
           out of unsettled nodes only gain reduced cost. *)
        relabels := !relabels + !tlen;
        for i = 0 to !tlen - 1 do
          let v = touched.(i) in
          G.set_potential g v (G.potential g v + (dt - dist.(v)))
        done;
        let rec root v = if parent.(v) < 0 then v else root (G.src g parent.(v)) in
        let s = root t in
        let rec bottleneck v acc =
          if parent.(v) < 0 then acc
          else bottleneck (G.src g parent.(v)) (min acc (G.rescap g parent.(v)))
        in
        let amount = min (G.excess g s) (min (- G.excess g t) (bottleneck t max_int)) in
        let rec push v =
          if parent.(v) >= 0 then begin
            G.push g parent.(v) amount;
            incr pushes;
            push (G.src g parent.(v))
          end
        in
        push t
      end
    done;
    (* Certify before claiming optimality: every excess must be gone
       (deficits cancel exactly when the sources drain — verified
       directly) and the potentials must prove it. *)
    let clean = ref true in
    (try G.iter_nodes g (fun v -> if G.excess g v <> 0 then (clean := false; raise Exit))
     with Exit -> ());
    if not (!clean && Price_refine.certified ~scale g) then
      raise (Give_up Not_certified);
    let dt_ns = Telemetry.Clock.now_ns () - t0 in
    Telemetry.Metrics.incr m m_repairs;
    Telemetry.Metrics.observe m m_repair_ns dt_ns;
    Telemetry.Metrics.observe m m_repair_augs !iterations;
    Telemetry.Metrics.observe m m_repair_touched !relabels;
    Repaired
      (Solver_intf.stats ~iterations:!iterations ~pushes:!pushes
         ~relabels:!relabels Solver_intf.Optimal
         (Telemetry.Clock.s_of_ns dt_ns))
  with Give_up r ->
    Telemetry.Metrics.incr m (giveup_counter r);
    Gave_up r
