(** Relaxation (Bertsekas–Tseng 1988, RELAX) — paper §4, Table 1:
    O(M³·C·U²), yet the fastest algorithm in practice on scheduling graphs
    (Fig. 7): it does minimal work when tasks' flow destinations are
    uncontested, routing most flow in a single pass.

    The algorithm maintains reduced-cost optimality and works toward
    feasibility by dual ascent: starting from a surplus node it grows a set
    [S] connected by balanced (zero reduced cost) residual arcs. Whenever
    the surplus inside [S] exceeds the balanced capacity leaving it, a
    {e price rise} on [S] strictly improves the dual; otherwise [S] is
    extended along a balanced arc, and reaching a deficit node triggers a
    flow augmentation along the tree path.

    {b Arc prioritization} (paper §5.3.1, Fig. 12a): when enabled,
    balanced arcs leading to nodes with demand jump the candidate queue, a
    hybrid traversal biased depth-first toward demand — ~45 % faster on
    contended graphs. Enabled by default; disable to reproduce the
    ablation.

    {b Incremental mode} (paper §5.2): keeps the existing flow/potentials
    and repairs optimality violations first. The paper found this can be
    {e slower} than from scratch (large pre-built zero-reduced-cost trees
    must be traversed per source), which is why Firmament runs relaxation
    from scratch and leaves incrementality to cost scaling. *)

(** Persistent scratch (node-indexed arrays, queues, heap) reused across
    solves. Arrays grow to the largest node bound seen and are logically
    cleared by epoch bumps, so a warm solve allocates nothing here. A
    workspace is single-solve-at-a-time (not thread-safe) but remains
    valid after a solve that raised or was stopped. *)
type workspace

val create_workspace : unit -> workspace

(** [reserve ws bound] pre-sizes the node-indexed arrays for graphs of
    node bound [bound], so the first solve runs steady-state instead of
    growing mid-round. *)
val reserve : workspace -> int -> unit

(** [solve g] runs RELAX to completion on [g]. Without [?workspace] a
    fresh one is allocated for the call. *)
val solve :
  ?stop:Solver_intf.stop ->
  ?incremental:bool ->
  ?arc_prioritization:bool ->
  ?workspace:workspace ->
  Flowgraph.Graph.t ->
  Solver_intf.stats
