(** Price refine (Goldberg 1997; paper §6.2, Fig. 13).

    Recomputes node potentials to satisfy complementary slackness for the
    {e current} flow without changing the flow itself. Firmament applies it
    when switching from a relaxation solution to incremental cost scaling:
    relaxation's potentials satisfy only reduced-cost optimality and fit
    poorly into cost scaling's scaled-cost domain, forcing a high starting
    ε; refined potentials shrink the starting ε to the costliest arc
    change, making incremental cost scaling ≈4× faster.

    Implemented as a label-correcting shortest-path pass (SPFA) over the
    residual network from a virtual zero source: [pi(v) := -dist(v)] makes
    every residual reduced cost non-negative, which exists iff the flow is
    optimal. *)

(** Persistent SPFA scratch reused across runs; arrays are epoch-stamped
    or rewritten per live node, never refilled over the whole bound. *)
type workspace

val create_workspace : unit -> workspace

(** [reserve ws bound] pre-sizes the SPFA scratch for graphs of node
    bound [bound], so the first run grows nothing mid-round. *)
val reserve : workspace -> int -> unit

(** [certified ?scale g] is a read-only dual-feasibility check: [true] iff
    every residual arc has nonnegative {e scaled} reduced cost
    [cost·scale − p(src) + p(dst)] under [g]'s current potentials
    (default [scale = 1], i.e. plain reduced-cost optimality). Never
    mutates [g]. Used to certify incremental flow repairs whose
    potentials already live in cost scaling's scaled units. *)
val certified : ?scale:int -> Flowgraph.Graph.t -> bool

(** [run ?scale g] rewrites [g]'s potentials (multiplied by [scale], so
    they live in {!Cost_scaling}'s scaled-cost units; default 1). Returns
    [false] — leaving potentials untouched — if the current flow admits a
    negative residual cycle (i.e. is not optimal). Without [?workspace] a
    fresh one is allocated when the SPFA pass is needed. *)
val run : ?scale:int -> ?workspace:workspace -> Flowgraph.Graph.t -> bool
