type t = {
  mutable elts : int array; (* heap order *)
  mutable prios : int array;
  mutable pos : int array; (* elt -> index in elts, -1 if absent *)
  mutable size : int;
}

let create ~capacity =
  {
    elts = Array.make (max 1 capacity) (-1);
    prios = Array.make (max 1 capacity) 0;
    pos = Array.make (max 1 capacity) (-1);
    size = 0;
  }

let is_empty h = h.size = 0
let size h = h.size
let mem h e = e < Array.length h.pos && h.pos.(e) >= 0

let ensure h e =
  let n = Array.length h.pos in
  if e >= n then begin
    let n' = max (e + 1) (2 * n) in
    let grow a fill =
      let a' = Array.make n' fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    h.elts <- grow h.elts (-1);
    h.prios <- grow h.prios 0;
    h.pos <- grow h.pos (-1)
  end

let swap h i j =
  let ei = h.elts.(i) and ej = h.elts.(j) in
  let pi = h.prios.(i) and pj = h.prios.(j) in
  h.elts.(i) <- ej;
  h.elts.(j) <- ei;
  h.prios.(i) <- pj;
  h.prios.(j) <- pi;
  h.pos.(ej) <- i;
  h.pos.(ei) <- j

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if h.prios.(p) > h.prios.(i) then begin
      swap h p i;
      sift_up h p
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < h.size && h.prios.(l) < h.prios.(!m) then m := l;
  if r < h.size && h.prios.(r) < h.prios.(!m) then m := r;
  if !m <> i then begin
    swap h i !m;
    sift_down h !m
  end

let insert h e prio =
  ensure h e;
  let i = h.pos.(e) in
  if i < 0 then begin
    let i = h.size in
    h.size <- h.size + 1;
    h.elts.(i) <- e;
    h.prios.(i) <- prio;
    h.pos.(e) <- i;
    sift_up h i
  end
  else if prio < h.prios.(i) then begin
    h.prios.(i) <- prio;
    sift_up h i
  end

let pop_min h =
  if h.size = 0 then invalid_arg "Heap.pop_min: empty";
  let e = h.elts.(0) and p = h.prios.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.elts.(0) <- h.elts.(h.size);
    h.prios.(0) <- h.prios.(h.size);
    h.pos.(h.elts.(0)) <- 0
  end;
  h.pos.(e) <- -1;
  h.elts.(h.size) <- -1;
  if h.size > 0 then sift_down h 0;
  (e, p)

let clear h =
  for i = 0 to h.size - 1 do
    h.pos.(h.elts.(i)) <- -1;
    h.elts.(i) <- -1
  done;
  h.size <- 0
