module G = Flowgraph.Graph

(* Saturate every residual arc with negative reduced cost, establishing
   reduced-cost optimality at the price of feasibility (excesses appear at
   the endpoints). Shared with Relaxation. *)
let establish_optimality g =
  G.iter_arcs g (fun a0 ->
      if G.rescap g a0 > 0 && G.reduced_cost g a0 < 0 then G.push g a0 (G.rescap g a0);
      let a1 = G.rev a0 in
      if G.rescap g a1 > 0 && G.reduced_cost g a1 < 0 then G.push g a1 (G.rescap g a1))

(* Persistent Dijkstra scratch. [dist]/[parent] entries are valid only
   when [seen] carries the current round's epoch; [settled] is its own
   epoch stamp. One epoch bump replaces the three O(bound) Array.fills a
   fresh round used to pay. *)
type workspace = {
  mutable nbound : int;
  mutable dist : int array;
  mutable parent : int array;
  mutable seen : int array; (* = epoch <=> dist/parent valid this round *)
  mutable settled : int array; (* = epoch <=> settled this round *)
  mutable epoch : int;
  heap : Heap.t;
}

let create_workspace () =
  {
    nbound = 0;
    dist = [||];
    parent = [||];
    seen = [||];
    settled = [||];
    epoch = 0;
    heap = Heap.create ~capacity:16;
  }

let ws_ensure ws bound =
  if bound > ws.nbound then begin
    let n = ref (max 64 ws.nbound) in
    while !n < bound do
      n := !n * 2
    done;
    let n = !n in
    ws.dist <- Array.make n 0;
    ws.parent <- Array.make n (-1);
    ws.seen <- Array.make n 0;
    ws.settled <- Array.make n 0;
    ws.nbound <- n
  end

let solve ?(stop = Solver_intf.never_stop) ?workspace g =
  let t0 = Telemetry.Clock.now_ns () in
  let iterations = ref 0 in
  let pushes = ref 0 in
  let finish outcome =
    Solver_intf.stats ~iterations:!iterations ~pushes:!pushes outcome
      (Telemetry.Clock.s_of_ns (Telemetry.Clock.now_ns () - t0))
  in
  let bound = max 1 (G.node_bound g) in
  let ws = match workspace with Some w -> w | None -> create_workspace () in
  ws_ensure ws bound;
  let dist = ws.dist in
  let parent = ws.parent in
  let seen = ws.seen in
  let settled = ws.settled in
  let heap = ws.heap in
  establish_optimality g;
  try
    let rec round () =
      if stop () then raise Solver_intf.Stop;
      (* Multi-source Dijkstra from every excess node over reduced costs,
         seeded directly into the heap — no intermediate source list, and
         the per-round clears are one epoch bump plus the heap's
         O(previous size) reset. *)
      ws.epoch <- ws.epoch + 1;
      let epoch = ws.epoch in
      Heap.clear heap;
      let nsources = ref 0 in
      let deficit_exists = ref false in
      G.iter_nodes g (fun n ->
          let e = G.excess g n in
          if e > 0 then begin
            incr nsources;
            dist.(n) <- 0;
            parent.(n) <- -1;
            seen.(n) <- epoch;
            Heap.insert heap n 0
          end;
          if e < 0 then deficit_exists := true);
      if !nsources = 0 then finish Solver_intf.Optimal
      else if not !deficit_exists then finish Solver_intf.Infeasible
      else begin
        incr iterations;
        let target = ref (-1) in
        while !target < 0 && not (Heap.is_empty heap) do
          let u, du = Heap.pop_min heap in
          if settled.(u) <> epoch then begin
            settled.(u) <- epoch;
            if G.excess g u < 0 then target := u
            else begin
              let it = ref (G.first_active g u) in
              while !it >= 0 do
                let a = !it in
                let v = G.dst g a in
                if settled.(v) <> epoch then begin
                  let rc = G.reduced_cost g a in
                  let dv = du + rc in
                  if seen.(v) <> epoch || dv < dist.(v) then begin
                    dist.(v) <- dv;
                    parent.(v) <- a;
                    seen.(v) <- epoch;
                    Heap.insert heap v dv
                  end
                end;
                it := G.next_active g a
              done
            end
          end
        done;
        if !target < 0 then finish Solver_intf.Infeasible
        else begin
          let t = !target in
          let dt = dist.(t) in
          (* Potential update keeps all reduced costs non-negative. *)
          G.iter_nodes g (fun v ->
              let dv = if seen.(v) <> epoch then dt else min dist.(v) dt in
              G.set_potential g v (G.potential g v - dv));
          (* Augment from the path's root down to t. *)
          let rec root v = if parent.(v) < 0 then v else root (G.src g parent.(v)) in
          let s = root t in
          let rec bottleneck v acc =
            if parent.(v) < 0 then acc
            else bottleneck (G.src g parent.(v)) (min acc (G.rescap g parent.(v)))
          in
          let amount = min (G.excess g s) (min (- G.excess g t) (bottleneck t max_int)) in
          let rec push v =
            if parent.(v) >= 0 then begin
              G.push g parent.(v) amount;
              incr pushes;
              push (G.src g parent.(v))
            end
          in
          push t;
          round ()
        end
      end
    in
    round ()
  with Solver_intf.Stop -> finish Solver_intf.Stopped
