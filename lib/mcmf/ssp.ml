module G = Flowgraph.Graph

(* Saturate every residual arc with negative reduced cost, establishing
   reduced-cost optimality at the price of feasibility (excesses appear at
   the endpoints). Shared with Relaxation. *)
let establish_optimality g =
  G.iter_arcs g (fun a0 ->
      let fix a =
        if G.rescap g a > 0 && G.reduced_cost g a < 0 then G.push g a (G.rescap g a)
      in
      fix a0;
      fix (G.rev a0))

let solve ?(stop = Solver_intf.never_stop) g =
  let t0 = Unix.gettimeofday () in
  let iterations = ref 0 in
  let pushes = ref 0 in
  let finish outcome =
    Solver_intf.stats ~iterations:!iterations ~pushes:!pushes outcome
      (Unix.gettimeofday () -. t0)
  in
  let bound = max 1 (G.node_bound g) in
  let dist = Array.make bound max_int in
  let parent = Array.make bound (-1) in
  let settled = Array.make bound false in
  let heap = Heap.create ~capacity:bound in
  establish_optimality g;
  try
    let rec round () =
      if stop () then raise Solver_intf.Stop;
      (* Multi-source Dijkstra from every excess node over reduced costs. *)
      let sources = ref [] in
      let deficit_exists = ref false in
      G.iter_nodes g (fun n ->
          let e = G.excess g n in
          if e > 0 then sources := n :: !sources;
          if e < 0 then deficit_exists := true);
      match !sources with
      | [] -> finish Solver_intf.Optimal
      | srcs ->
          if not !deficit_exists then finish Solver_intf.Infeasible
          else begin
            incr iterations;
            Array.fill dist 0 bound max_int;
            Array.fill parent 0 bound (-1);
            Array.fill settled 0 bound false;
            Heap.clear heap;
            List.iter
              (fun s ->
                dist.(s) <- 0;
                Heap.insert heap s 0)
              srcs;
            let target = ref (-1) in
            while !target < 0 && not (Heap.is_empty heap) do
              let u, du = Heap.pop_min heap in
              if not settled.(u) then begin
                settled.(u) <- true;
                if G.excess g u < 0 then target := u
                else begin
                  let it = ref (G.first_active g u) in
                  while !it >= 0 do
                    let a = !it in
                    let v = G.dst g a in
                    if not settled.(v) then begin
                      let rc = G.reduced_cost g a in
                      let dv = du + rc in
                      if dv < dist.(v) then begin
                        dist.(v) <- dv;
                        parent.(v) <- a;
                        Heap.insert heap v dv
                      end
                    end;
                    it := G.next_active g a
                  done
                end
              end
            done;
            if !target < 0 then finish Solver_intf.Infeasible
            else begin
              let t = !target in
              let dt = dist.(t) in
              (* Potential update keeps all reduced costs non-negative. *)
              G.iter_nodes g (fun v ->
                  let dv = if dist.(v) = max_int then dt else min dist.(v) dt in
                  G.set_potential g v (G.potential g v - dv));
              (* Augment from the path's root down to t. *)
              let rec root v = if parent.(v) < 0 then v else root (G.src g parent.(v)) in
              let s = root t in
              let rec bottleneck v acc =
                if parent.(v) < 0 then acc
                else bottleneck (G.src g parent.(v)) (min acc (G.rescap g parent.(v)))
              in
              let amount = min (G.excess g s) (min (- G.excess g t) (bottleneck t max_int)) in
              let rec push v =
                if parent.(v) >= 0 then begin
                  G.push g parent.(v) amount;
                  incr pushes;
                  push (G.src g parent.(v))
                end
              in
              push t;
              round ()
            end
          end
    in
    round ()
  with Solver_intf.Stop -> finish Solver_intf.Stopped
