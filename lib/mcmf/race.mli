(** Firmament's solver orchestration (paper §6.1–6.2).

    Firmament speculatively executes {e relaxation (from scratch)} and
    {e incremental cost scaling} on copies of the scheduling graph and
    takes whichever finishes first: relaxation wins in the common case,
    cost scaling bounds placement latency in edge cases (oversubscription,
    huge arriving jobs). Predicting the winner would be brittle; running
    both is cheap because each is single-threaded.

    Use {!prepare} on the {e previous} optimal solution before applying
    cluster changes: it price-refines the potentials so the next
    incremental cost scaling run starts at an ε bounded by the costliest
    changed arc (§6.2, Fig. 13).

    {b Memory discipline} (DESIGN.md): the orchestrator owns two scratch
    graphs and the solvers' persistent workspaces, so a steady-state round
    allocates (almost) nothing. Each {!solve} refreshes scratch copies
    with {!Flowgraph.Graph.copy_into}; a graph exposed in the result
    ([graph] on Optimal, [partial] on Stopped) leaves its slot and belongs
    to the caller, who should hand a graph it no longer needs back with
    {!recycle} — typically the replaced canonical graph after adopting an
    optimum, or a consumed partial. Never recycling is safe (the next
    round falls back to allocating); recycling keeps rounds
    allocation-free. *)

type mode =
  | Race_parallel  (** two domains, first optimal result wins; the loser is cancelled *)
  | Fastest_sequential
      (** run both sequentially, report the faster — deterministic
          simulation of the race for single-core benchmarks. Runs last
          round's winner first and budgets the other solver by the
          winner's runtime (winner-preserving — see the implementation
          note), so a round costs at most ~2× the winner instead of
          winner plus the loser's unbounded tail *)
  | Relaxation_only
  | Incremental_cost_scaling_only
  | Cost_scaling_scratch_only  (** Quincy's configuration (cs2-style) *)

type t

(** [create ?alpha ?price_refine ~mode ()] builds an orchestrator.
    [alpha] is cost scaling's ε-division factor (paper tunes 9 for the
    Quincy policy); [price_refine] (default [true]) controls the §6.2
    transition optimization.

    [incremental] (default [true]) enables the O(changes) flow-repair
    path: {!prepare} then tracks which graph's potentials certify its
    flow as optimal, and a later {!submit} with [?delta_budget] on that
    same graph may resolve the round by {!Incremental.repair} instead of
    running any solver.

    [winner_only_k]/[winner_only_period]/[winner_only_ratio] tune the
    [Fastest_sequential] escalation: after [winner_only_k] consecutive
    rounds won by the same solver with a stable margin (the loser was
    budget-capped, or at least [winner_only_ratio]× slower), the loser is
    skipped entirely; a full re-race runs every [winner_only_period]
    winner-only rounds, or immediately when the lone solver fails to
    prove optimality. [winner_only_k <= 0] disables the escalation.

    [node_hint]/[arc_hint] pre-size the solver workspaces and the two
    pooled scratch graphs so the first round runs steady-state (no
    workspace growth mid-round). *)
val create :
  ?alpha:int ->
  ?price_refine:bool ->
  ?incremental:bool ->
  ?winner_only_k:int ->
  ?winner_only_period:int ->
  ?winner_only_ratio:float ->
  ?node_hint:int ->
  ?arc_hint:int ->
  mode:mode ->
  unit ->
  t

val mode : t -> mode

type winner =
  | Relaxation
  | Cost_scaling
  | Repair
      (** the round was resolved by the incremental flow-repair path;
          no solver ran *)

type result = {
  graph : Flowgraph.Graph.t;
      (** always a coherent graph to adopt as canonical: the winner's
          optimal solution when the round solved, and the {e untouched}
          input graph when it ended [Stopped] or [Infeasible] — a bad
          round never corrupts the caller's warm-start state *)
  partial : Flowgraph.Graph.t option;
      (** on [Stopped]: the stopped solver's intermediate pseudoflow
          (a structure-preserving copy of the input), suitable for
          best-effort placement extraction
          ({!Firmament.Placement.extract_partial}); [None] otherwise *)
  winner : winner;
  stats : Solver_intf.stats;  (** the winner's stats — inspect [outcome] *)
  relaxation_stats : Solver_intf.stats option;
      (** [Some] whenever relaxation actually ran this round — in a full
          two-solver round that includes the loser (cancelled or
          [Stopped] runs report their partial work), so winner/loser
          margins stay observable. [None] in modes that never run the
          solver, in winner-only escalated rounds (the skipped loser ran
          nothing — [mcmf_race_winner_only_total] counts those), and in
          rounds resolved by the [Repair] path (both are [None]). *)
  cost_scaling_stats : Solver_intf.stats option;
      (** same guarantee for cost scaling *)
}

(** [prepare t g] must be called on the canonical graph while it still
    holds the previous optimal solution, {e before} applying the next batch
    of cluster changes. Price-refines the potentials (no-op when price
    refine is disabled, the mode never runs cost scaling, or the flow is
    not optimal — first run), and records whether [g]'s potentials now
    certify its flow: only then may the next {!submit} with
    [?delta_budget] take the incremental repair path. A graph just
    adopted from a [Repair]-winner round skips the refine pass — the
    repair already certified it. *)
val prepare : t -> Flowgraph.Graph.t -> unit

(** A submitted solve. The working copies are taken from the input graph
    {e at submit time}, so the caller is free to mutate the input (apply
    cluster events, refresh costs) while the solve is outstanding — that
    is what makes pipelined scheduling rounds sound. *)
type handle

(** [submit ?stop ?scratch t g] dispatches a solve of [g] and returns
    immediately. In [Race_parallel] mode the two racing domains run
    detached behind the handle until {!await} joins them; in the
    sequential modes the solve runs eagerly during [submit] (there is no
    second core to overlap with) and the handle is ready at once. Either
    way the scratch copies are taken before [submit] returns, so [g] may
    be mutated afterwards without affecting the result.

    [?delta_budget] vouches that the round's change set is small (at most
    that many excess nodes / augmentations): if additionally [g] is the
    graph the last {!prepare} certified, the round is first attempted as
    an O(changes) {!Incremental.repair} on a scratch copy — on success
    the handle is ready at once with [winner = Repair]; on any give-up
    (reasons exported as [mcmf_incremental_giveup_*_total]) the
    configured mode runs untouched, exactly as if [delta_budget] had not
    been passed.

    At most one solve may be outstanding per [t] (the scratch pool and
    solver workspaces are single-occupancy).
    @raise Invalid_argument if a previous submit has not been awaited. *)
val submit :
  ?stop:Solver_intf.stop ->
  ?scratch:bool ->
  ?delta_budget:int ->
  t ->
  Flowgraph.Graph.t ->
  handle

(** [poll h] is [true] once every racer has finished, i.e. once {!await}
    will return without blocking. *)
val poll : handle -> bool

(** [await h] joins the racing domains (if any), assembles the result and
    returns the scratch copies the result does not expose to the pool.
    Idempotent: further calls return the memoized result. *)
val await : handle -> result

(** [solve ?stop ?scratch t g] is [await (submit ?stop ?scratch t g)] —
    the synchronous round. [g] itself is never mutated: every algorithm
    runs on a structure-preserving copy (same node/arc ids), and
    [result.graph] is the copy to adopt on success or [g] itself on a
    degraded outcome. Never raises on infeasibility or cancellation —
    inspect [result.stats.outcome]. When the two-solver modes disagree, an
    [Infeasible] verdict (a sound proof) takes precedence over [Stopped].

    [~scratch:true] discards the warm start: copies get a fresh
    {!Flowgraph.Graph.reset_flow} and cost scaling takes the full scratch
    ε ladder — the scheduler's second attempt after an [Infeasible]
    round. *)
val solve :
  ?stop:Solver_intf.stop ->
  ?scratch:bool ->
  ?delta_budget:int ->
  t ->
  Flowgraph.Graph.t ->
  result

(** [recycle t g] donates [g]'s storage back to [t]'s scratch pool, to be
    refreshed by a later {!solve}. Call it on graphs you own and no longer
    need — the canonical graph just replaced by an adopted [result.graph],
    or a [partial] whose placements have been extracted. [g] must no
    longer be read by the caller afterwards. Recycling a graph already in
    the pool, or more graphs than the pool holds, is a safe no-op. *)
val recycle : t -> Flowgraph.Graph.t -> unit
