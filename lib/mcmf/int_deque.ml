(* Circular-buffer deque of ints (node or arc ids). Shared by the solver
   workspaces: relaxation's prioritized candidate queue, cost scaling's
   active-node FIFO, price refine's SPFA queue. Grows by doubling, clears
   in O(1) — a persistent workspace must not pay O(capacity) per solve. *)

type t = { mutable buf : int array; mutable head : int; mutable len : int }

let create ?(capacity = 16) () = { buf = Array.make (max 16 capacity) (-1); head = 0; len = 0 }

let length d = d.len
let is_empty d = d.len = 0

let grow d =
  let n = Array.length d.buf in
  let buf' = Array.make (2 * n) (-1) in
  for i = 0 to d.len - 1 do
    buf'.(i) <- d.buf.((d.head + i) mod n)
  done;
  d.buf <- buf';
  d.head <- 0

let push_back d x =
  if d.len = Array.length d.buf then grow d;
  d.buf.((d.head + d.len) mod Array.length d.buf) <- x;
  d.len <- d.len + 1

let push_front d x =
  if d.len = Array.length d.buf then grow d;
  let n = Array.length d.buf in
  d.head <- (d.head + n - 1) mod n;
  d.buf.(d.head) <- x;
  d.len <- d.len + 1

let pop_front d =
  if d.len = 0 then raise Not_found;
  let x = d.buf.(d.head) in
  d.head <- (d.head + 1) mod Array.length d.buf;
  d.len <- d.len - 1;
  x

let clear d =
  d.head <- 0;
  d.len <- 0
