module G = Flowgraph.Graph

(* Circular-buffer deque of arc ids: arc prioritization pushes promising
   arcs (those leading to demand nodes) to the front, others to the back. *)
module Deque = struct
  type t = { mutable buf : int array; mutable head : int; mutable len : int }

  let create () = { buf = Array.make 16 (-1); head = 0; len = 0 }

  let grow d =
    let n = Array.length d.buf in
    let buf' = Array.make (2 * n) (-1) in
    for i = 0 to d.len - 1 do
      buf'.(i) <- d.buf.((d.head + i) mod n)
    done;
    d.buf <- buf';
    d.head <- 0

  let push_back d x =
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- x;
    d.len <- d.len + 1

  let push_front d x =
    if d.len = Array.length d.buf then grow d;
    let n = Array.length d.buf in
    d.head <- (d.head + n - 1) mod n;
    d.buf.(d.head) <- x;
    d.len <- d.len + 1

  let pop_front d =
    if d.len = 0 then raise Not_found;
    let x = d.buf.(d.head) in
    d.head <- (d.head + 1) mod Array.length d.buf;
    d.len <- d.len - 1;
    x

  let clear d =
    d.head <- 0;
    d.len <- 0
end

(* Binary min-heap of (key, arc) pairs, no decrease-key (entries are
   advisory; staleness is checked at pop). *)
module Arc_heap = struct
  type t = { mutable keys : int array; mutable arcs : int array; mutable len : int }

  let create () = { keys = Array.make 64 0; arcs = Array.make 64 (-1); len = 0 }

  let clear h = h.len <- 0
  let is_empty h = h.len = 0

  let push h key arc =
    if h.len = Array.length h.keys then begin
      let keys' = Array.make (2 * h.len) 0 and arcs' = Array.make (2 * h.len) (-1) in
      Array.blit h.keys 0 keys' 0 h.len;
      Array.blit h.arcs 0 arcs' 0 h.len;
      h.keys <- keys';
      h.arcs <- arcs'
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.keys.(!i) <- key;
    h.arcs.(!i) <- arc;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if h.keys.(p) > h.keys.(!i) then begin
        let tk = h.keys.(p) and ta = h.arcs.(p) in
        h.keys.(p) <- h.keys.(!i);
        h.arcs.(p) <- h.arcs.(!i);
        h.keys.(!i) <- tk;
        h.arcs.(!i) <- ta;
        i := p
      end
      else continue := false
    done

  let peek_key h = h.keys.(0)
  let peek_arc h = h.arcs.(0)

  let pop h =
    h.len <- h.len - 1;
    h.keys.(0) <- h.keys.(h.len);
    h.arcs.(0) <- h.arcs.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.len && h.keys.(l) < h.keys.(!m) then m := l;
      if r < h.len && h.keys.(r) < h.keys.(!m) then m := r;
      if !m <> !i then begin
        let tk = h.keys.(!m) and ta = h.arcs.(!m) in
        h.keys.(!m) <- h.keys.(!i);
        h.arcs.(!m) <- h.arcs.(!i);
        h.keys.(!i) <- tk;
        h.arcs.(!i) <- ta;
        i := !m
      end
      else continue := false
    done
end

(* One RELAX solve. The dual-ascent set S grows from a surplus node along
   balanced residual arcs; price rises are applied lazily (rise_total and
   per-member join marks) so a rise costs O(|S|)-free heap work instead of
   rescanning every member's adjacency — crucial on scheduling graphs
   whose aggregators have enormous degree. *)
let solve ?(stop = Solver_intf.never_stop) ?(incremental = false)
    ?(arc_prioritization = true) g =
  let t0 = Unix.gettimeofday () in
  let iterations = ref 0 in
  let pushes = ref 0 in
  let price_rises = ref 0 in
  let finish outcome =
    Solver_intf.stats ~iterations:!iterations ~pushes:!pushes ~relabels:!price_rises
      outcome
      (Unix.gettimeofday () -. t0)
  in
  if not incremental then G.reset_flow g;
  (* Establish reduced-cost optimality (possibly breaking feasibility). *)
  Ssp.establish_optimality g;
  let bound = max 1 (G.node_bound g) in
  let in_s = Array.make bound false in
  let rise_at_join = Array.make bound 0 in
  let s_members = ref [] in
  let pred = Array.make bound (-1) in
  let candidates = Deque.create () in
  let pos_heap = Arc_heap.create () in
  let rise_total = ref 0 in
  (* Surplus worklist. *)
  let worklist = Queue.create () in
  let in_worklist = Array.make bound false in
  let enqueue_surplus n =
    if G.excess g n > 0 && not in_worklist.(n) then begin
      Queue.add n worklist;
      in_worklist.(n) <- true
    end
  in
  G.iter_nodes g (fun n -> enqueue_surplus n);
  let exception Infeasible in
  let pending i = !rise_total - rise_at_join.(i) in
  (* Materialize the lazily accumulated price rises of this phase.
     Idempotent: committed members' join marks advance to the current
     rise level. *)
  let commit_rises () =
    List.iter
      (fun i ->
        let d = pending i in
        if d > 0 then begin
          G.set_potential g i (G.potential g i + d);
          rise_at_join.(i) <- !rise_total
        end)
      !s_members
  in
  let reset_phase () =
    List.iter (fun n -> in_s.(n) <- false) !s_members;
    s_members := [];
    Deque.clear candidates;
    Arc_heap.clear pos_heap;
    rise_total := 0
  in
  let add_candidate a =
    if arc_prioritization && G.excess g (G.dst g a) < 0 then Deque.push_front candidates a
    else Deque.push_back candidates a
  in
  (* Add node [j] to S; returns its contribution to (e_S, out_flux) and
     feeds the candidate deque / positive-arc heap. Only active (positive
     residual) arcs are scanned. out_flux tracks the rescap sum of deque
     entries; arcs that become internal are corrected lazily when their
     deque entry is popped (so no backward scan of j's full adjacency is
     ever needed). *)
  let add_to_s j =
    in_s.(j) <- true;
    rise_at_join.(j) <- !rise_total;
    s_members := j :: !s_members;
    let de = G.excess g j in
    let dflux = ref 0 in
    let it = ref (G.first_active g j) in
    while !it >= 0 do
      let a = !it in
      let k = G.dst g a in
      if not in_s.(k) then begin
        (* pending(j) = 0 right now, so raw reduced cost is effective. *)
        let rc = G.reduced_cost g a in
        if rc = 0 then begin
          dflux := !dflux + G.rescap g a;
          add_candidate a
        end
        else if rc > 0 then Arc_heap.push pos_heap (rc + !rise_total) a
      end;
      it := G.next_active g a
    done;
    (de, !dflux)
  in
  (* Saturate the balanced crossing arcs (they go reduced-cost-negative
     once prices rise), pick the smallest positive crossing reduced cost
     from the heap, and promote newly balanced arcs to candidates.
     Returns the updated (e_s, out_flux). *)
  let price_rise e_s out_flux =
    incr price_rises;
    let e_s = ref e_s and out_flux = ref out_flux in
    let continue = ref true in
    while !continue do
      match Deque.pop_front candidates with
      | exception Not_found ->
          continue := false;
          out_flux := 0
      | a ->
          let f = G.rescap g a in
          if (not in_s.(G.dst g a)) && f > 0 then begin
            G.push g a f;
            incr pushes;
            e_s := !e_s - f;
            enqueue_surplus (G.dst g a)
          end;
          (* Every pop removes the entry's contribution, stale or not. *)
          out_flux := !out_flux - f
    done;
    (* Find delta: smallest effective reduced cost among valid positive
       crossing arcs. *)
    let delta = ref (-1) in
    while !delta < 0 do
      if Arc_heap.is_empty pos_heap then raise Infeasible;
      let key = Arc_heap.peek_key pos_heap and a = Arc_heap.peek_arc pos_heap in
      if in_s.(G.dst g a) || G.rescap g a = 0 then Arc_heap.pop pos_heap
      else begin
        let eff = key - !rise_total in
        (* Entries are pushed with eff > 0 and eff only shrinks via
           rise_total; zero entries were promoted at their rise. *)
        delta := max 1 eff
      end
    done;
    rise_total := !rise_total + !delta;
    (* Promote arcs that just became balanced. *)
    let promoting = ref true in
    while !promoting do
      if Arc_heap.is_empty pos_heap then promoting := false
      else begin
        let key = Arc_heap.peek_key pos_heap and a = Arc_heap.peek_arc pos_heap in
        if in_s.(G.dst g a) || G.rescap g a = 0 then Arc_heap.pop pos_heap
        else if key - !rise_total <= 0 then begin
          Arc_heap.pop pos_heap;
          out_flux := !out_flux + G.rescap g a;
          add_candidate a
        end
        else promoting := false
      end
    done;
    (!e_s, !out_flux)
  in
  let augment t =
    let rec bottleneck v acc =
      if pred.(v) < 0 then acc
      else bottleneck (G.src g pred.(v)) (min acc (G.rescap g pred.(v)))
    in
    let rec root v = if pred.(v) < 0 then v else root (G.src g pred.(v)) in
    let s = root t in
    (* Saturating pushes during price rises may have drained the phase
       root's own excess even though S as a whole kept surplus; the
       remaining members are re-enqueued by the phase epilogue. *)
    let amount =
      max 0 (min (G.excess g s) (min (- G.excess g t) (bottleneck t max_int)))
    in
    if amount > 0 then begin
      let rec push_path v =
        if pred.(v) >= 0 then begin
          G.push g pred.(v) amount;
          incr pushes;
          push_path (G.src g pred.(v))
        end
      in
      push_path t
    end;
    enqueue_surplus s
  in
  try
    while not (Queue.is_empty worklist) do
      let s = Queue.pop worklist in
      in_worklist.(s) <- false;
      if G.excess g s > 0 then begin
        incr iterations;
        (* Poll on the first phase too: an already-expired deadline must
           stop the solve before any work, not 256 phases in. *)
        if !iterations land 255 = 1 && stop () then raise Solver_intf.Stop;
        reset_phase ();
        pred.(s) <- -1;
        let e0, f0 = add_to_s s in
        let e_s = ref e0 and out_flux = ref f0 in
        (try
           let running = ref true in
           let phase_steps = ref 0 in
           while !running do
             (* A single ascent phase can grow S across the whole graph;
                poll the deadline inside it too, not only per phase. The
                handler below commits pending rises, so stopping here
                still leaves materialized potentials. *)
             incr phase_steps;
             if !phase_steps land 1023 = 0 && stop () then raise Solver_intf.Stop;
             if !e_s <= 0 then
               (* The surplus moved out of S (saturating pushes). *)
               running := false
             else if !e_s > !out_flux then begin
               let e', f' = price_rise !e_s !out_flux in
               e_s := e';
               out_flux := f'
             end
             else begin
               (* Extend S along a balanced crossing arc. Entries going
                  stale (endpoint joined S) surrender their flux here. *)
               match Deque.pop_front candidates with
               | exception Not_found ->
                   (* Deque empty: true crossing flux is zero. *)
                   out_flux := 0
               | a ->
                   if in_s.(G.dst g a) then out_flux := !out_flux - G.rescap g a
                   else begin
                     let j = G.dst g a in
                     pred.(j) <- a;
                     if G.excess g j < 0 then begin
                       commit_rises ();
                       augment j;
                       running := false
                     end
                     else begin
                       let de, dflux = add_to_s j in
                       e_s := !e_s + de;
                       (* The popped arc is now internal: remove its
                          contribution along with the additions. *)
                       out_flux := !out_flux + dflux - G.rescap g a
                     end
                   end
             end
           done;
           (* Materialize any rises left pending by a non-augmenting
              phase end (idempotent after an augment), and hand surplus
              that moved between members back to the worklist. *)
           commit_rises ();
           List.iter (fun i -> enqueue_surplus i) !s_members
         with e ->
           commit_rises ();
           List.iter (fun i -> enqueue_surplus i) !s_members;
           raise e)
      end
    done;
    (* No surplus left; any remaining deficit means supplies did not sum
       to zero, i.e. the instance was infeasible from the start. *)
    let infeasible = ref false in
    G.iter_nodes g (fun n -> if G.excess g n <> 0 then infeasible := true);
    if !infeasible then finish Solver_intf.Infeasible else finish Solver_intf.Optimal
  with
  | Solver_intf.Stop -> finish Solver_intf.Stopped
  | Infeasible -> finish Solver_intf.Infeasible
