module G = Flowgraph.Graph
module Deque = Int_deque

(* Telemetry ids, registered once at module init. *)
let m = Telemetry.Metrics.global ()

let m_solves =
  Telemetry.Metrics.counter m ~help:"relaxation solves started"
    "mcmf_relaxation_solves_total"

let m_passes =
  Telemetry.Metrics.counter m ~help:"dual-ascent phases run"
    "mcmf_relaxation_passes_total"

let m_pushes =
  Telemetry.Metrics.counter m ~help:"pushes across all ascent phases"
    "mcmf_relaxation_pushes_total"

let m_price_rises =
  Telemetry.Metrics.counter m ~help:"lazy price rises applied"
    "mcmf_relaxation_price_rises_total"

let m_ap_front =
  Telemetry.Metrics.counter m
    ~help:"candidate arcs fast-pathed to the deque front (deficit endpoint)"
    "mcmf_relaxation_ap_front_total"

let m_ap_back =
  Telemetry.Metrics.counter m
    ~help:"candidate arcs appended to the deque back"
    "mcmf_relaxation_ap_back_total"

(* Binary min-heap of (key, arc) pairs, no decrease-key (entries are
   advisory; staleness is checked at pop). Lives in the workspace; [clear]
   is O(1). *)
module Arc_heap = struct
  type t = { mutable keys : int array; mutable arcs : int array; mutable len : int }

  let create () = { keys = Array.make 64 0; arcs = Array.make 64 (-1); len = 0 }

  let clear h = h.len <- 0
  let is_empty h = h.len = 0

  let push h key arc =
    if h.len = Array.length h.keys then begin
      let keys' = Array.make (2 * h.len) 0 and arcs' = Array.make (2 * h.len) (-1) in
      Array.blit h.keys 0 keys' 0 h.len;
      Array.blit h.arcs 0 arcs' 0 h.len;
      h.keys <- keys';
      h.arcs <- arcs'
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.keys.(!i) <- key;
    h.arcs.(!i) <- arc;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if h.keys.(p) > h.keys.(!i) then begin
        let tk = h.keys.(p) and ta = h.arcs.(p) in
        h.keys.(p) <- h.keys.(!i);
        h.arcs.(p) <- h.arcs.(!i);
        h.keys.(!i) <- tk;
        h.arcs.(!i) <- ta;
        i := p
      end
      else continue := false
    done

  let peek_key h = h.keys.(0)
  let peek_arc h = h.arcs.(0)

  let pop h =
    h.len <- h.len - 1;
    h.keys.(0) <- h.keys.(h.len);
    h.arcs.(0) <- h.arcs.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.len && h.keys.(l) < h.keys.(!m) then m := l;
      if r < h.len && h.keys.(r) < h.keys.(!m) then m := r;
      if !m <> !i then begin
        let tk = h.keys.(!m) and ta = h.arcs.(!m) in
        h.keys.(!m) <- h.keys.(!i);
        h.arcs.(!m) <- h.arcs.(!i);
        h.keys.(!i) <- tk;
        h.arcs.(!i) <- ta;
        i := !m
      end
      else continue := false
    done
end

(* Persistent per-solver scratch. All node-indexed arrays grow to the
   graph's node bound once and are then reused across solves; boolean sets
   are epoch-stamped so "clearing" them is a counter bump, never an
   O(bound) refill. Safe to reuse even after a solve aborted mid-phase
   (Stop / Infeasible): membership from a dead phase can never equal a
   fresh epoch. *)
type workspace = {
  mutable nbound : int;
  mutable in_s : int array; (* in_s.(n) = phase_epoch  <=>  n ∈ S *)
  mutable rise_at_join : int array;
  mutable pred : int array;
  mutable in_worklist : int array; (* = solve_epoch <=> queued *)
  mutable s_members : int array;
  mutable s_len : int;
  mutable phase_epoch : int;
  mutable solve_epoch : int;
  candidates : Deque.t;
  pos_heap : Arc_heap.t;
  worklist : Deque.t;
}

let create_workspace () =
  {
    nbound = 0;
    in_s = [||];
    rise_at_join = [||];
    pred = [||];
    in_worklist = [||];
    s_members = [||];
    s_len = 0;
    phase_epoch = 0;
    solve_epoch = 0;
    candidates = Deque.create ();
    pos_heap = Arc_heap.create ();
    worklist = Deque.create ();
  }

let ws_ensure ws bound =
  if bound > ws.nbound then begin
    let n = ref (max 64 ws.nbound) in
    while !n < bound do
      n := !n * 2
    done;
    let n = !n in
    (* Fresh zero-filled arrays: epochs start at 1, so stale zeros never
       read as current membership. *)
    ws.in_s <- Array.make n 0;
    ws.rise_at_join <- Array.make n 0;
    ws.pred <- Array.make n (-1);
    ws.in_worklist <- Array.make n 0;
    ws.s_members <- Array.make n 0;
    ws.nbound <- n
  end

let reserve = ws_ensure

(* One RELAX solve. The dual-ascent set S grows from a surplus node along
   balanced residual arcs; price rises are applied lazily (rise_total and
   per-member join marks) so a rise costs O(|S|)-free heap work instead of
   rescanning every member's adjacency — crucial on scheduling graphs
   whose aggregators have enormous degree. *)
let solve ?(stop = Solver_intf.never_stop) ?(incremental = false)
    ?(arc_prioritization = true) ?workspace g =
  let t0 = Telemetry.Clock.now_ns () in
  Telemetry.Metrics.incr m m_solves;
  let iterations = ref 0 in
  let pushes = ref 0 in
  let price_rises = ref 0 in
  let finish outcome =
    Telemetry.Metrics.add m m_passes !iterations;
    Telemetry.Metrics.add m m_pushes !pushes;
    Telemetry.Metrics.add m m_price_rises !price_rises;
    Solver_intf.stats ~iterations:!iterations ~pushes:!pushes ~relabels:!price_rises
      outcome
      (Telemetry.Clock.s_of_ns (Telemetry.Clock.now_ns () - t0))
  in
  if not incremental then G.reset_flow g;
  (* Establish reduced-cost optimality (possibly breaking feasibility). *)
  Ssp.establish_optimality g;
  let bound = max 1 (G.node_bound g) in
  let ws = match workspace with Some w -> w | None -> create_workspace () in
  ws_ensure ws bound;
  ws.solve_epoch <- ws.solve_epoch + 1;
  let solve_epoch = ws.solve_epoch in
  let in_s = ws.in_s in
  let rise_at_join = ws.rise_at_join in
  let pred = ws.pred in
  let in_worklist = ws.in_worklist in
  let candidates = ws.candidates in
  let pos_heap = ws.pos_heap in
  let worklist = ws.worklist in
  Deque.clear worklist;
  ws.s_len <- 0;
  let rise_total = ref 0 in
  let enqueue_surplus n =
    if G.excess g n > 0 && in_worklist.(n) <> solve_epoch then begin
      Deque.push_back worklist n;
      in_worklist.(n) <- solve_epoch
    end
  in
  G.iter_nodes g (fun n -> enqueue_surplus n);
  let exception Infeasible in
  let in_set n = in_s.(n) = ws.phase_epoch in
  let pending i = !rise_total - rise_at_join.(i) in
  (* Materialize the lazily accumulated price rises of this phase.
     Idempotent: committed members' join marks advance to the current
     rise level. *)
  let commit_rises () =
    for k = 0 to ws.s_len - 1 do
      let i = ws.s_members.(k) in
      let d = pending i in
      if d > 0 then begin
        G.set_potential g i (G.potential g i + d);
        rise_at_join.(i) <- !rise_total
      end
    done
  in
  let reset_phase () =
    ws.phase_epoch <- ws.phase_epoch + 1;
    ws.s_len <- 0;
    Deque.clear candidates;
    Arc_heap.clear pos_heap;
    rise_total := 0
  in
  let add_candidate a =
    if arc_prioritization && G.excess g (G.dst g a) < 0 then begin
      Telemetry.Metrics.incr m m_ap_front;
      Deque.push_front candidates a
    end
    else begin
      Telemetry.Metrics.incr m m_ap_back;
      Deque.push_back candidates a
    end
  in
  (* Phase accumulators and loop cursors, allocated once per solve: the
     helpers below mutate these instead of returning tuples — without
     flambda every tuple return and local ref is a minor-heap allocation,
     and these sit in the per-member hot path. *)
  let e_s = ref 0 and out_flux = ref 0 in
  let scan = ref (-1) in
  let pr_continue = ref false and pr_delta = ref 0 and pr_promoting = ref false in
  let running = ref false and phase_steps = ref 0 in
  (* Add node [j] to S, accumulating its contribution into [e_s] and
     [out_flux] and feeding the candidate deque / positive-arc heap. Only
     active (positive residual) arcs are scanned. out_flux tracks the
     rescap sum of deque entries; arcs that become internal are corrected
     lazily when their deque entry is popped (so no backward scan of j's
     full adjacency is ever needed). *)
  let add_to_s j =
    in_s.(j) <- ws.phase_epoch;
    rise_at_join.(j) <- !rise_total;
    ws.s_members.(ws.s_len) <- j;
    ws.s_len <- ws.s_len + 1;
    e_s := !e_s + G.excess g j;
    scan := G.first_active g j;
    while !scan >= 0 do
      let a = !scan in
      let k = G.dst g a in
      if not (in_set k) then begin
        (* pending(j) = 0 right now, so raw reduced cost is effective. *)
        let rc = G.reduced_cost g a in
        if rc = 0 then begin
          out_flux := !out_flux + G.rescap g a;
          add_candidate a
        end
        else if rc > 0 then Arc_heap.push pos_heap (rc + !rise_total) a
      end;
      scan := G.next_active g a
    done
  in
  (* Saturate the balanced crossing arcs (they go reduced-cost-negative
     once prices rise), pick the smallest positive crossing reduced cost
     from the heap, and promote newly balanced arcs to candidates.
     Updates [e_s] and [out_flux] in place. *)
  let price_rise () =
    incr price_rises;
    pr_continue := true;
    while !pr_continue do
      match Deque.pop_front candidates with
      | exception Not_found ->
          pr_continue := false;
          out_flux := 0
      | a ->
          let f = G.rescap g a in
          if (not (in_set (G.dst g a))) && f > 0 then begin
            G.push g a f;
            incr pushes;
            e_s := !e_s - f;
            enqueue_surplus (G.dst g a)
          end;
          (* Every pop removes the entry's contribution, stale or not. *)
          out_flux := !out_flux - f
    done;
    (* Find delta: smallest effective reduced cost among valid positive
       crossing arcs. *)
    pr_delta := -1;
    while !pr_delta < 0 do
      if Arc_heap.is_empty pos_heap then raise Infeasible;
      let key = Arc_heap.peek_key pos_heap and a = Arc_heap.peek_arc pos_heap in
      if in_set (G.dst g a) || G.rescap g a = 0 then Arc_heap.pop pos_heap
      else begin
        let eff = key - !rise_total in
        (* Entries are pushed with eff > 0 and eff only shrinks via
           rise_total; zero entries were promoted at their rise. *)
        pr_delta := max 1 eff
      end
    done;
    rise_total := !rise_total + !pr_delta;
    (* Promote arcs that just became balanced. *)
    pr_promoting := true;
    while !pr_promoting do
      if Arc_heap.is_empty pos_heap then pr_promoting := false
      else begin
        let key = Arc_heap.peek_key pos_heap and a = Arc_heap.peek_arc pos_heap in
        if in_set (G.dst g a) || G.rescap g a = 0 then Arc_heap.pop pos_heap
        else if key - !rise_total <= 0 then begin
          Arc_heap.pop pos_heap;
          out_flux := !out_flux + G.rescap g a;
          add_candidate a
        end
        else pr_promoting := false
      end
    done
  in
  (* Path helpers at solve level so augment allocates no closures. *)
  let rec bottleneck v acc =
    if pred.(v) < 0 then acc
    else bottleneck (G.src g pred.(v)) (min acc (G.rescap g pred.(v)))
  in
  let rec root v = if pred.(v) < 0 then v else root (G.src g pred.(v)) in
  let rec push_path v amount =
    if pred.(v) >= 0 then begin
      G.push g pred.(v) amount;
      incr pushes;
      push_path (G.src g pred.(v)) amount
    end
  in
  let augment t =
    let s = root t in
    (* Saturating pushes during price rises may have drained the phase
       root's own excess even though S as a whole kept surplus; the
       remaining members are re-enqueued by the phase epilogue. *)
    let amount =
      max 0 (min (G.excess g s) (min (- G.excess g t) (bottleneck t max_int)))
    in
    if amount > 0 then push_path t amount;
    enqueue_surplus s
  in
  let enqueue_members () =
    for k = 0 to ws.s_len - 1 do
      enqueue_surplus ws.s_members.(k)
    done
  in
  try
    while not (Deque.is_empty worklist) do
      let s = Deque.pop_front worklist in
      in_worklist.(s) <- 0;
      if G.excess g s > 0 then begin
        incr iterations;
        (* Poll on the first phase too: an already-expired deadline must
           stop the solve before any work, not 256 phases in. *)
        if !iterations land 255 = 1 && stop () then raise Solver_intf.Stop;
        reset_phase ();
        pred.(s) <- -1;
        e_s := 0;
        out_flux := 0;
        add_to_s s;
        (try
           running := true;
           phase_steps := 0;
           while !running do
             (* A single ascent phase can grow S across the whole graph;
                poll the deadline inside it too, not only per phase. The
                handler below commits pending rises, so stopping here
                still leaves materialized potentials. *)
             incr phase_steps;
             if !phase_steps land 1023 = 0 && stop () then raise Solver_intf.Stop;
             if !e_s <= 0 then
               (* The surplus moved out of S (saturating pushes). *)
               running := false
             else if !e_s > !out_flux then price_rise ()
             else begin
               (* Extend S along a balanced crossing arc. Entries going
                  stale (endpoint joined S) surrender their flux here. *)
               match Deque.pop_front candidates with
               | exception Not_found ->
                   (* Deque empty: true crossing flux is zero. *)
                   out_flux := 0
               | a ->
                   if in_set (G.dst g a) then out_flux := !out_flux - G.rescap g a
                   else begin
                     let j = G.dst g a in
                     pred.(j) <- a;
                     if G.excess g j < 0 then begin
                       commit_rises ();
                       augment j;
                       running := false
                     end
                     else begin
                       (* The popped arc is now internal: remove its
                          contribution; add_to_s accumulates the rest. *)
                       out_flux := !out_flux - G.rescap g a;
                       add_to_s j
                     end
                   end
             end
           done;
           (* Materialize any rises left pending by a non-augmenting
              phase end (idempotent after an augment), and hand surplus
              that moved between members back to the worklist. *)
           commit_rises ();
           enqueue_members ()
         with e ->
           commit_rises ();
           enqueue_members ();
           raise e)
      end
    done;
    (* No surplus left; any remaining deficit means supplies did not sum
       to zero, i.e. the instance was infeasible from the start. *)
    let infeasible = ref false in
    G.iter_nodes g (fun n -> if G.excess g n <> 0 then infeasible := true);
    if !infeasible then finish Solver_intf.Infeasible else finish Solver_intf.Optimal
  with
  | Solver_intf.Stop -> finish Solver_intf.Stopped
  | Infeasible -> finish Solver_intf.Infeasible
