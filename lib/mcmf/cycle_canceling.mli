(** Cycle canceling (Klein 1967) — paper §4, Table 1: O(N·M²·C·U).

    First computes any feasible flow by max-flow ({!Max_flow}), then
    repeatedly finds a negative-cost directed cycle in the residual network
    (Bellman–Ford) and saturates it, decreasing total cost each time. Ends
    at negative-cycle optimality. Always feasible, converging to optimal —
    the simplest and slowest solver; kept as a correctness oracle and for
    the Fig. 7 comparison. *)

val solve : ?stop:Solver_intf.stop -> Flowgraph.Graph.t -> Solver_intf.stats
