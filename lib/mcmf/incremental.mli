(** O(changes) incremental flow repair (paper §5).

    Takes a graph carrying the previous round's adopted {e optimal} flow
    and potentials, already mutated by the round's change set, and
    restores an optimal solution with work proportional to the dirty
    region: saturate reduced-cost violations, then route the resulting
    excesses to deficits with potential-guided Dijkstra whose potential
    update touches only settled nodes. The result is certified
    ({!Price_refine.certified} at the caller's scale + zero excess) —
    any doubt returns {!Gave_up} and the caller runs the full race on
    the untouched canonical graph. *)

(** Why a repair was abandoned (exported per-reason via telemetry
    [mcmf_incremental_giveup_*_total]). *)
type reason =
  | Oversized  (** more excess nodes or augmentations than [budget] *)
  | No_path  (** an excess could not reach any deficit *)
  | Not_certified  (** repair finished but certification failed *)
  | Stopped_mid_repair  (** the stop callback fired *)

val reason_name : reason -> string

type outcome = Repaired of Solver_intf.stats | Gave_up of reason

(** Persistent Dijkstra + bookkeeping scratch, epoch-stamped. *)
type workspace

val create_workspace : unit -> workspace

(** [reserve ws bound] pre-sizes the workspace for graphs of node bound
    [bound] so first use doesn't grow mid-round. *)
val reserve : workspace -> int -> unit

(** [repair ~scale ~budget g] mutates [g] (flows {e and} potentials, in
    cost scaling's scaled units at [scale]) toward a certified optimal
    solution. On [Gave_up] the graph is left partially repaired — hand
    the kernel a scratch copy, never the canonical graph. [budget] caps
    both the number of excess nodes and the number of augmentations
    before giving up [Oversized]. *)
val repair :
  ?stop:Solver_intf.stop ->
  scale:int ->
  budget:int ->
  ?workspace:workspace ->
  Flowgraph.Graph.t ->
  outcome
