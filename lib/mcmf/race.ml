module G = Flowgraph.Graph

type mode =
  | Race_parallel
  | Fastest_sequential
  | Relaxation_only
  | Incremental_cost_scaling_only
  | Cost_scaling_scratch_only

type t = {
  mode : mode;
  price_refine : bool;
  cs_state : Cost_scaling.state;
}

let create ?(alpha = 9) ?(price_refine = true) ~mode () =
  { mode; price_refine; cs_state = Cost_scaling.create ~alpha () }

let mode t = t.mode

type winner = Relaxation | Cost_scaling

type result = {
  graph : Flowgraph.Graph.t;
  winner : winner;
  stats : Solver_intf.stats;
  relaxation_stats : Solver_intf.stats option;
  cost_scaling_stats : Solver_intf.stats option;
}

let uses_cost_scaling t =
  match t.mode with
  | Relaxation_only -> false
  | Race_parallel | Fastest_sequential | Incremental_cost_scaling_only
  | Cost_scaling_scratch_only ->
      true

let prepare t g =
  if t.price_refine && uses_cost_scaling t then begin
    let scale = Cost_scaling.ensure_scale t.cs_state g in
    ignore (Price_refine.run ~scale g)
  end

let relax_result g stats =
  { graph = g; winner = Relaxation; stats; relaxation_stats = Some stats; cost_scaling_stats = None }

let cs_result g stats =
  { graph = g; winner = Cost_scaling; stats; relaxation_stats = None; cost_scaling_stats = Some stats }

let check_outcome r =
  (match r.stats.Solver_intf.outcome with
  | Solver_intf.Infeasible -> failwith "Race.solve: problem infeasible"
  | Solver_intf.Optimal | Solver_intf.Stopped -> ());
  r

let solve_sequential ?stop t g =
  let g_cs = G.copy g in
  let rx = Relaxation.solve ?stop g in
  let cs = Cost_scaling.solve ?stop ~incremental:true t.cs_state g_cs in
  let open Solver_intf in
  let pick_cs =
    match (rx.outcome, cs.outcome) with
    | Optimal, Optimal -> cs.runtime < rx.runtime
    | _, Optimal -> true
    | Optimal, _ -> false
    | _, _ -> cs.runtime < rx.runtime
  in
  if pick_cs then
    { graph = g_cs; winner = Cost_scaling; stats = cs;
      relaxation_stats = Some rx; cost_scaling_stats = Some cs }
  else
    { graph = g; winner = Relaxation; stats = rx;
      relaxation_stats = Some rx; cost_scaling_stats = Some cs }

(* Parallel race: both algorithms run in their own domain on their own
   graph; the first Optimal finisher flips the shared cancel flag. *)
let solve_parallel ?(stop = Solver_intf.never_stop) t g =
  let g_cs = G.copy g in
  let cancel = Atomic.make false in
  let stop' = Solver_intf.either_stop stop (Solver_intf.flag_stop cancel) in
  let announce stats =
    (match stats.Solver_intf.outcome with
    | Solver_intf.Optimal -> Atomic.set cancel true
    | Solver_intf.Infeasible | Solver_intf.Stopped -> ());
    stats
  in
  let d_rx = Domain.spawn (fun () -> announce (Relaxation.solve ~stop:stop' g)) in
  let d_cs =
    Domain.spawn (fun () ->
        announce (Cost_scaling.solve ~stop:stop' ~incremental:true t.cs_state g_cs))
  in
  let rx = Domain.join d_rx in
  let cs = Domain.join d_cs in
  let open Solver_intf in
  let pick_cs =
    match (rx.outcome, cs.outcome) with
    | Optimal, Optimal -> cs.runtime < rx.runtime
    | _, Optimal -> true
    | Optimal, _ -> false
    | _, _ -> cs.runtime < rx.runtime
  in
  if pick_cs then
    { graph = g_cs; winner = Cost_scaling; stats = cs;
      relaxation_stats = Some rx; cost_scaling_stats = Some cs }
  else
    { graph = g; winner = Relaxation; stats = rx;
      relaxation_stats = Some rx; cost_scaling_stats = Some cs }

let solve ?stop t g =
  check_outcome
    (match t.mode with
    | Relaxation_only -> relax_result g (Relaxation.solve ?stop g)
    | Incremental_cost_scaling_only ->
        cs_result g (Cost_scaling.solve ?stop ~incremental:true t.cs_state g)
    | Cost_scaling_scratch_only ->
        cs_result g (Cost_scaling.solve ?stop ~incremental:false t.cs_state g)
    | Fastest_sequential -> solve_sequential ?stop t g
    | Race_parallel -> solve_parallel ?stop t g)
