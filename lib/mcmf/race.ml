module G = Flowgraph.Graph

(* Telemetry ids, registered once at module init. *)
let m = Telemetry.Metrics.global ()
let tr = Telemetry.Trace.global ()

let m_solves =
  Telemetry.Metrics.counter m ~help:"race rounds run" "mcmf_race_solves_total"

let m_wins_rx =
  Telemetry.Metrics.counter m ~help:"rounds won by relaxation"
    "mcmf_race_wins_relaxation_total"

let m_wins_cs =
  Telemetry.Metrics.counter m ~help:"rounds won by cost scaling"
    "mcmf_race_wins_cost_scaling_total"

let m_rx_ns =
  Telemetry.Metrics.histogram m ~help:"relaxation wall time per round (ns)"
    "mcmf_race_relaxation_ns"

let m_cs_ns =
  Telemetry.Metrics.histogram m ~help:"cost scaling wall time per round (ns)"
    "mcmf_race_cost_scaling_ns"

let m_margin_ns =
  Telemetry.Metrics.histogram m
    ~help:"winner margin (loser minus winner wall time, ns) in two-solver rounds"
    "mcmf_race_margin_ns"

let m_wins_repair =
  Telemetry.Metrics.counter m
    ~help:"rounds resolved by the incremental flow-repair path (no solver ran)"
    "mcmf_race_wins_repair_total"

let m_winner_only =
  Telemetry.Metrics.counter m
    ~help:"sequential rounds that skipped the loser after a stable win streak"
    "mcmf_race_winner_only_total"

let m_winner_only_misses =
  Telemetry.Metrics.counter m
    ~help:"winner-only rounds that failed to prove optimality and re-raced"
    "mcmf_race_winner_only_misses_total"

let t_rx = Telemetry.Trace.register tr "race.relaxation"
let t_cs = Telemetry.Trace.register tr "race.cost_scaling"

type mode =
  | Race_parallel
  | Fastest_sequential
  | Relaxation_only
  | Incremental_cost_scaling_only
  | Cost_scaling_scratch_only

(* Besides the orchestration config, [t] owns the round-to-round memory:
   two scratch graphs (the racers' working copies, refreshed by
   [G.copy_into] instead of reallocated) and the persistent solver
   workspaces. A scratch slot is empty while its graph is exposed to the
   caller (as [result.graph] or [partial]); graphs come back through
   {!recycle} or by losing the race. *)
type t = {
  mode : mode;
  price_refine : bool;
  incremental : bool;
  cs_state : Cost_scaling.state;
  rx_ws : Relaxation.workspace;
  pr_ws : Price_refine.workspace;
  inc_ws : Incremental.workspace;
  mutable scratch_a : G.t option;
  mutable scratch_b : G.t option;
  (* The scratch pool and the solver workspaces are single-occupancy, so
     at most one submitted solve may be outstanding at a time. *)
  mutable in_flight : bool;
  (* Last round's winner, used by [Fastest_sequential] to run the likely
     winner first and budget the second solver by the first's runtime. *)
  mutable seq_first : winner;
  (* Incremental-repair eligibility: the one graph (by physical identity)
     whose potentials are known to certify its flow as optimal, and the
     scaled-cost units those potentials live in. Set by {!prepare} after
     adoption; a graph not physically equal to [pot_graph] never takes
     the repair path, which makes interleaved commits, partial rounds and
     failed refines safe by construction. *)
  mutable pot_graph : G.t option;
  mutable pot_scale : int;
  (* The copy a successful repair produced, so {!prepare} can skip the
     refine pass when the scheduler adopts it (its potentials were
     certified by the repair itself, at [repaired_scale]). *)
  mutable repaired_graph : G.t option;
  mutable repaired_scale : int;
  (* Adaptive winner-only escalation ([Fastest_sequential]): after [wo_k]
     consecutive rounds won by the same solver with a stable margin, skip
     the loser entirely; re-race after [wo_period] winner-only rounds, or
     immediately when the lone solver fails to prove optimality. *)
  wo_k : int;
  wo_period : int;
  wo_ratio : float;
  mutable wo_streak : int;
  mutable wo_since_race : int;
}

and winner = Relaxation | Cost_scaling | Repair

let create ?(alpha = 9) ?(price_refine = true) ?(incremental = true)
    ?(winner_only_k = 8) ?(winner_only_period = 32) ?(winner_only_ratio = 1.2)
    ?node_hint ?arc_hint ~mode () =
  let t =
    {
      mode;
      price_refine;
      incremental;
      cs_state = Cost_scaling.create ~alpha ();
      rx_ws = Relaxation.create_workspace ();
      pr_ws = Price_refine.create_workspace ();
      inc_ws = Incremental.create_workspace ();
      scratch_a = None;
      scratch_b = None;
      in_flight = false;
      seq_first = Cost_scaling;
      pot_graph = None;
      pot_scale = 1;
      repaired_graph = None;
      repaired_scale = 1;
      wo_k = winner_only_k;
      wo_period = winner_only_period;
      wo_ratio = winner_only_ratio;
      wo_streak = 0;
      wo_since_race = 0;
    }
  in
  (* First-round warmup: pre-size the solver workspaces and pre-build the
     scratch pool from the topology hints, so round 1 runs steady-state
     instead of paying workspace growth. *)
  (match node_hint with
  | Some n when n > 0 ->
      Relaxation.reserve t.rx_ws n;
      Cost_scaling.reserve t.cs_state n;
      Price_refine.reserve t.pr_ws n;
      Incremental.reserve t.inc_ws n;
      t.scratch_a <- Some (G.create ~node_hint:n ?arc_hint ());
      t.scratch_b <- Some (G.create ~node_hint:n ?arc_hint ())
  | _ -> ());
  t

let mode t = t.mode

(* Pop a scratch slot and refresh it into a copy of [g]; fall back to a
   fresh allocation when both slots are out (first rounds, or a caller
   that never recycles). The physical-equality guards keep a buggy
   recycle of the live input from silently corrupting the round. *)
let take t g =
  match t.scratch_a with
  | Some s when s != g ->
      t.scratch_a <- None;
      G.copy_into s g;
      s
  | _ -> (
      match t.scratch_b with
      | Some s when s != g ->
          t.scratch_b <- None;
          G.copy_into s g;
          s
      | _ -> G.copy g)

let give_back t s =
  match (t.scratch_a, t.scratch_b) with
  | Some a, _ when a == s -> ()
  | _, Some b when b == s -> ()
  | None, _ -> t.scratch_a <- Some s
  | _, None -> t.scratch_b <- Some s
  | Some _, Some _ -> ()

let recycle = give_back

type result = {
  graph : Flowgraph.Graph.t;
  partial : Flowgraph.Graph.t option;
  winner : winner;
  stats : Solver_intf.stats;
  relaxation_stats : Solver_intf.stats option;
  cost_scaling_stats : Solver_intf.stats option;
}

(* Return every working copy the result does not expose to its scratch
   slots. The exposed ones (adopted optimum, surfaced partial) belong to
   the caller until recycled. *)
let reclaim t result copies =
  List.iter
    (fun c ->
      if
        c != result.graph
        && (match result.partial with Some p -> c != p | None -> true)
      then give_back t c)
    copies

let uses_cost_scaling t =
  match t.mode with
  | Relaxation_only -> false
  | Race_parallel | Fastest_sequential | Incremental_cost_scaling_only
  | Cost_scaling_scratch_only ->
      true

let prepare t g =
  let repaired =
    match t.repaired_graph with Some r -> r == g | None -> false
  in
  t.repaired_graph <- None;
  if repaired then begin
    (* The repair itself certified this graph's potentials (at
       [repaired_scale]); the refine pass would be a no-op. *)
    t.pot_graph <- Some g;
    t.pot_scale <- t.repaired_scale
  end
  else if t.price_refine && uses_cost_scaling t then begin
    let scale = Cost_scaling.ensure_scale t.cs_state g in
    let ok = Price_refine.run ~scale ~workspace:t.pr_ws g in
    if ok && t.incremental then begin
      t.pot_graph <- Some g;
      t.pot_scale <- scale
    end
    else t.pot_graph <- None
  end
  else if t.incremental then begin
    (* No refine pass in this configuration; a read-only certification in
       unscaled units (relaxation's invariant) still unlocks the repair
       path when it holds. *)
    if Price_refine.certified ~scale:1 g then begin
      t.pot_graph <- Some g;
      t.pot_scale <- 1
    end
    else t.pot_graph <- None
  end

(* Assemble a result so that [graph] is always coherent: the winner's copy
   when it solved to optimality, otherwise the untouched input graph (the
   caller's warm start survives a bad round). A [Stopped] winner's
   intermediate pseudoflow is surfaced separately as [partial]. *)
let finish ~input ~solved ~winner ~relaxation_stats ~cost_scaling_stats stats =
  match stats.Solver_intf.outcome with
  | Solver_intf.Optimal ->
      { graph = solved; partial = None; winner; stats; relaxation_stats; cost_scaling_stats }
  | Solver_intf.Stopped ->
      { graph = input; partial = Some solved; winner; stats; relaxation_stats;
        cost_scaling_stats }
  | Solver_intf.Infeasible ->
      { graph = input; partial = None; winner; stats; relaxation_stats; cost_scaling_stats }

(* Pick between the two racers. Optimal beats everything (faster of two
   optima); an infeasibility proof is sound for the whole instance, so it
   beats a mere [Stopped]; two equal outcomes go to the faster solver. *)
let pick_cost_scaling rx cs =
  let open Solver_intf in
  match (rx.outcome, cs.outcome) with
  | Optimal, Optimal -> cs.runtime < rx.runtime
  | _, Optimal -> true
  | Optimal, _ -> false
  | Stopped, Infeasible -> true
  | Infeasible, Stopped -> false
  | _, _ -> cs.runtime < rx.runtime

(* Both racers' stats are always populated in a two-solver round — that is
   what makes the loser's margin observable. The margin histogram records
   loser − winner runtime; bucket 0 (≤ 0) collects rounds the winner took
   on outcome rank (Optimal / Infeasible beats Stopped) despite being
   slower. *)
let two_solver_result ~input ~g_rx ~g_cs rx cs =
  let rx_ns = Telemetry.Clock.ns_of_s rx.Solver_intf.runtime in
  let cs_ns = Telemetry.Clock.ns_of_s cs.Solver_intf.runtime in
  Telemetry.Metrics.observe m m_rx_ns rx_ns;
  Telemetry.Metrics.observe m m_cs_ns cs_ns;
  if pick_cost_scaling rx cs then begin
    Telemetry.Metrics.incr m m_wins_cs;
    Telemetry.Metrics.observe m m_margin_ns (rx_ns - cs_ns);
    finish ~input ~solved:g_cs ~winner:Cost_scaling ~relaxation_stats:(Some rx)
      ~cost_scaling_stats:(Some cs) cs
  end
  else begin
    Telemetry.Metrics.incr m m_wins_rx;
    Telemetry.Metrics.observe m m_margin_ns (cs_ns - rx_ns);
    finish ~input ~solved:g_rx ~winner:Relaxation ~relaxation_stats:(Some rx)
      ~cost_scaling_stats:(Some cs) rx
  end

(* Sequential "race": run last round's winner first, then give the other
   solver a time budget equal to the first's runtime (on top of the
   caller's stop). The cap is winner-preserving: a capped second solver
   either finishes Optimal faster than the first — and would have won
   uncapped too — or ends [Stopped]/slower and loses exactly as an
   uncapped slower run would ({!pick_cost_scaling} ranks Optimal above
   Stopped, ties by runtime). What the cap removes is the loser's
   unbounded tail: the round costs at most ~2× the winner instead of
   winner + loser. When the first solver does not prove optimality the
   second runs uncapped (it may still find an optimum, or a sound
   infeasibility proof). Capped losers land in the margin histogram's
   low buckets — the residual gap the solve_wait phase exposes. *)
let solve_sequential_full ?stop ~scratch t g =
  let g_rx = take t g in
  let g_cs = take t g in
  if scratch then begin
    G.reset_flow g_rx;
    G.reset_flow g_cs
  end;
  let run_rx ?stop () =
    let t0 = Telemetry.Trace.span_begin () in
    let rx = Relaxation.solve ?stop ~workspace:t.rx_ws g_rx in
    Telemetry.Trace.span_end tr ~phase:t_rx ~t0;
    rx
  in
  let run_cs ?stop () =
    let t0 = Telemetry.Trace.span_begin () in
    let cs = Cost_scaling.solve ?stop ~incremental:(not scratch) t.cs_state g_cs in
    Telemetry.Trace.span_end tr ~phase:t_cs ~t0;
    cs
  in
  let budget first =
    match first.Solver_intf.outcome with
    | Solver_intf.Optimal ->
        let cap = Solver_intf.deadline_stop first.Solver_intf.runtime in
        Some (match stop with None -> cap | Some s -> Solver_intf.either_stop s cap)
    | Solver_intf.Infeasible | Solver_intf.Stopped -> stop
  in
  let rx, cs =
    match t.seq_first with
    | Relaxation ->
        let rx = run_rx ?stop () in
        (rx, run_cs ?stop:(budget rx) ())
    | Cost_scaling | Repair ->
        let cs = run_cs ?stop () in
        (run_rx ?stop:(budget cs) (), cs)
  in
  let r = two_solver_result ~input:g ~g_rx ~g_cs rx cs in
  (* Streak accounting for the winner-only escalation: the margin is
     "stable" when the loser was budget-capped (it had not finished by
     the winner's runtime) or finished at least [wo_ratio] slower. Only
     warm rounds count — scratch retries are atypical. *)
  if not scratch then begin
    let winner_st, loser_st =
      match r.winner with
      | Relaxation -> (rx, cs)
      | Cost_scaling | Repair -> (cs, rx)
    in
    let margin_ok =
      loser_st.Solver_intf.outcome = Solver_intf.Stopped
      || loser_st.Solver_intf.runtime >= t.wo_ratio *. winner_st.Solver_intf.runtime
    in
    t.wo_streak <-
      (if not margin_ok then 0
       else if r.winner = t.seq_first then t.wo_streak + 1
       else 1);
    t.wo_since_race <- 0
  end;
  t.seq_first <- r.winner;
  reclaim t r [ g_rx; g_cs ];
  r

(* Winner-only round: after [wo_k] consecutive same-winner rounds with a
   stable margin, run only the expected winner. Any outcome other than a
   proven optimum immediately falls back to the full two-solver round
   (the skipped solver might have succeeded), and a full re-race happens
   every [wo_period] rounds regardless so a regime change (e.g. the
   cluster filling up, where relaxation degrades) is noticed. *)
let solve_sequential ?stop ~scratch t g =
  if
    scratch || t.wo_k <= 0 || t.wo_streak < t.wo_k
    || t.wo_since_race >= t.wo_period
  then solve_sequential_full ?stop ~scratch t g
  else begin
    let c = take t g in
    let st =
      match t.seq_first with
      | Relaxation ->
          let t0 = Telemetry.Trace.span_begin () in
          let rx = Relaxation.solve ?stop ~workspace:t.rx_ws c in
          Telemetry.Trace.span_end tr ~phase:t_rx ~t0;
          Telemetry.Metrics.observe m m_rx_ns
            (Telemetry.Clock.ns_of_s rx.Solver_intf.runtime);
          rx
      | Cost_scaling | Repair ->
          let t0 = Telemetry.Trace.span_begin () in
          let cs = Cost_scaling.solve ?stop ~incremental:true t.cs_state c in
          Telemetry.Trace.span_end tr ~phase:t_cs ~t0;
          Telemetry.Metrics.observe m m_cs_ns
            (Telemetry.Clock.ns_of_s cs.Solver_intf.runtime);
          cs
    in
    match st.Solver_intf.outcome with
    | Solver_intf.Optimal ->
        Telemetry.Metrics.incr m m_winner_only;
        t.wo_since_race <- t.wo_since_race + 1;
        let winner = t.seq_first in
        let relaxation_stats, cost_scaling_stats =
          match winner with
          | Relaxation ->
              Telemetry.Metrics.incr m m_wins_rx;
              (Some st, None)
          | Cost_scaling | Repair ->
              Telemetry.Metrics.incr m m_wins_cs;
              (None, Some st)
        in
        let r =
          finish ~input:g ~solved:c ~winner ~relaxation_stats
            ~cost_scaling_stats st
        in
        reclaim t r [ c ];
        r
    | Solver_intf.Infeasible | Solver_intf.Stopped ->
        (* The lone solver could not prove an optimum: the skipped one
           might have. Discard this attempt and re-race both. *)
        Telemetry.Metrics.incr m m_winner_only_misses;
        t.wo_streak <- 0;
        t.wo_since_race <- 0;
        give_back t c;
        solve_sequential_full ?stop ~scratch t g
  end

let solve_relaxation_only ?stop ~scratch t g =
  let c = take t g in
  if scratch then G.reset_flow c;
  let t0 = Telemetry.Trace.span_begin () in
  let rx = Relaxation.solve ?stop ~workspace:t.rx_ws c in
  Telemetry.Trace.span_end tr ~phase:t_rx ~t0;
  Telemetry.Metrics.observe m m_rx_ns (Telemetry.Clock.ns_of_s rx.Solver_intf.runtime);
  Telemetry.Metrics.incr m m_wins_rx;
  let r =
    finish ~input:g ~solved:c ~winner:Relaxation ~relaxation_stats:(Some rx)
      ~cost_scaling_stats:None rx
  in
  reclaim t r [ c ];
  r

let solve_cost_scaling_only ?stop ~incremental t g =
  let c = take t g in
  let t0 = Telemetry.Trace.span_begin () in
  let cs = Cost_scaling.solve ?stop ~incremental t.cs_state c in
  Telemetry.Trace.span_end tr ~phase:t_cs ~t0;
  Telemetry.Metrics.observe m m_cs_ns (Telemetry.Clock.ns_of_s cs.Solver_intf.runtime);
  Telemetry.Metrics.incr m m_wins_cs;
  let r =
    finish ~input:g ~solved:c ~winner:Cost_scaling ~relaxation_stats:None
      ~cost_scaling_stats:(Some cs) cs
  in
  reclaim t r [ c ];
  r

let solve_incremental_cs ?stop ~scratch t g =
  let c = take t g in
  if scratch then G.reset_flow c;
  let t0 = Telemetry.Trace.span_begin () in
  let cs = Cost_scaling.solve ?stop ~incremental:(not scratch) t.cs_state c in
  Telemetry.Trace.span_end tr ~phase:t_cs ~t0;
  Telemetry.Metrics.observe m m_cs_ns (Telemetry.Clock.ns_of_s cs.Solver_intf.runtime);
  Telemetry.Metrics.incr m m_wins_cs;
  let r =
    finish ~input:g ~solved:c ~winner:Cost_scaling ~relaxation_stats:None
      ~cost_scaling_stats:(Some cs) cs
  in
  reclaim t r [ c ];
  r

(* A submitted solve. The working copies were taken from the input at
   submit time, so the caller may mutate the input graph while the solve
   is outstanding. [Done] wraps a solve that ran eagerly during submit
   (sequential modes); [Running] tracks detached racing domains. *)
type inflight = {
  r_owner : t;
  r_copies : G.t list;
  r_done : int Atomic.t;  (* finished racers; poll is ready at [r_total] *)
  r_total : int;
  r_join : unit -> result;  (* joins the domains and assembles the result *)
  mutable r_result : result option;
}

type handle = Done of result | Running of inflight

(* Parallel race, detached: both algorithms run in their own domain on
   their own copy; the first Optimal finisher flips the shared cancel
   flag. Each domain uses a distinct persistent workspace ([rx_ws] vs.
   [cs_state]'s), so the scratch sharing is race-free. The domains are
   joined by {!await}, behind the returned handle. *)
let submit_parallel ?(stop = Solver_intf.never_stop) ~scratch t g =
  let g_rx = take t g in
  let g_cs = take t g in
  if scratch then begin
    G.reset_flow g_rx;
    G.reset_flow g_cs
  end;
  let cancel = Atomic.make false in
  let stop' = Solver_intf.either_stop stop (Solver_intf.flag_stop cancel) in
  let announce stats =
    (match stats.Solver_intf.outcome with
    | Solver_intf.Optimal -> Atomic.set cancel true
    | Solver_intf.Infeasible | Solver_intf.Stopped -> ());
    stats
  in
  let finished = Atomic.make 0 in
  let d_rx =
    Domain.spawn (fun () ->
        let t0 = Telemetry.Trace.span_begin () in
        let st = announce (Relaxation.solve ~stop:stop' ~workspace:t.rx_ws g_rx) in
        Telemetry.Trace.span_end tr ~phase:t_rx ~t0;
        Atomic.incr finished;
        st)
  in
  let d_cs =
    Domain.spawn (fun () ->
        let t0 = Telemetry.Trace.span_begin () in
        let st =
          announce
            (Cost_scaling.solve ~stop:stop' ~incremental:(not scratch) t.cs_state g_cs)
        in
        Telemetry.Trace.span_end tr ~phase:t_cs ~t0;
        Atomic.incr finished;
        st)
  in
  t.in_flight <- true;
  let join () =
    let rx = Domain.join d_rx in
    let cs = Domain.join d_cs in
    two_solver_result ~input:g ~g_rx ~g_cs rx cs
  in
  Running
    {
      r_owner = t;
      r_copies = [ g_rx; g_cs ];
      r_done = finished;
      r_total = 2;
      r_join = join;
      r_result = None;
    }

(* Delta path: when the caller vouches the round's change set is small
   ([delta_budget]) and the input graph is the one whose potentials
   {!prepare} certified, try an O(changes) flow repair on a scratch copy
   before dispatching any solver. A give-up (oversized delta, unroutable
   excess, failed certification, stop) recycles the copy and falls
   through to the configured mode untouched — the fallback ladder below
   never sees a difference. *)
let try_repair ?stop ~scratch ~delta_budget t g =
  if scratch || not t.incremental then None
  else
    match (delta_budget, t.pot_graph) with
    | Some budget, Some pg when pg == g && budget > 0 -> (
        let c = take t g in
        match
          Incremental.repair ?stop ~scale:t.pot_scale ~budget
            ~workspace:t.inc_ws c
        with
        | Incremental.Repaired stats ->
            t.repaired_graph <- Some c;
            t.repaired_scale <- t.pot_scale;
            Telemetry.Metrics.incr m m_wins_repair;
            Some
              {
                graph = c;
                partial = None;
                winner = Repair;
                stats;
                relaxation_stats = None;
                cost_scaling_stats = None;
              }
        | Incremental.Gave_up _ ->
            give_back t c;
            None)
    | _ -> None

let submit ?stop ?(scratch = false) ?delta_budget t g =
  if t.in_flight then invalid_arg "Race.submit: a solve is already in flight";
  Telemetry.Metrics.incr m m_solves;
  (* A repaired-copy marker is only meaningful between the submit that
     produced it and the {!prepare} of its adoption; a commit that did
     not adopt (interleaved reconcile) leaves it stale, and the copy may
     already be back in the scratch pool — drop it before it can
     spuriously match a future adoption. *)
  t.repaired_graph <- None;
  match try_repair ?stop ~scratch ~delta_budget t g with
  | Some r -> Done r
  | None -> (
      match t.mode with
      | Relaxation_only -> Done (solve_relaxation_only ?stop ~scratch t g)
      | Incremental_cost_scaling_only -> Done (solve_incremental_cs ?stop ~scratch t g)
      | Cost_scaling_scratch_only ->
          Done (solve_cost_scaling_only ?stop ~incremental:false t g)
      | Fastest_sequential -> Done (solve_sequential ?stop ~scratch t g)
      | Race_parallel -> submit_parallel ?stop ~scratch t g)

let poll = function
  | Done _ -> true
  | Running i -> i.r_result <> None || Atomic.get i.r_done >= i.r_total

let await = function
  | Done r -> r
  | Running i -> (
      match i.r_result with
      | Some r -> r
      | None ->
          let r = i.r_join () in
          reclaim i.r_owner r i.r_copies;
          i.r_owner.in_flight <- false;
          i.r_result <- Some r;
          r)

let solve ?stop ?scratch ?delta_budget t g =
  await (submit ?stop ?scratch ?delta_budget t g)
