(** Binary min-heap keyed by integer priority, with [decrease_key] support
    via element handles. Used by Dijkstra in {!Ssp} and by shortest-path
    subroutines. Elements are small non-negative ints (node ids). *)

type t

(** [create ~capacity] is an empty heap for elements in [0, capacity). *)
val create : capacity:int -> t

val is_empty : t -> bool
val size : t -> int

(** [insert h elt prio] inserts, or decreases the priority if [elt] is
    already present with a higher one. Increasing an existing priority is
    ignored. *)
val insert : t -> int -> int -> unit

(** [pop_min h] removes and returns [(elt, prio)] with minimal priority.
    @raise Invalid_argument on an empty heap. *)
val pop_min : t -> int * int

val mem : t -> int -> bool
val clear : t -> unit
