(** Cost scaling (Goldberg 1997) — the algorithm behind Quincy's cs2
    solver. Paper §4, Table 1: O(N²·M·log(N·C)).

    Push–relabel with ε-scaling: arc costs are multiplied by a scale factor
    [S > N] so that a 1-optimal flow on scaled costs is optimal on the
    originals; ε starts at the worst reduced-cost violation and is divided
    by the α-factor each iteration (Quincy used α = 2; the paper found
    α = 9 ≈ 30 % faster, §7.2). Each [refine] saturates negative
    reduced-cost arcs and discharges active nodes with the current-arc
    optimization.

    A {!state} value carries the α-factor and scale across runs, enabling
    {e incremental} re-optimization (paper §5.2): with [~incremental:true]
    the solver keeps the graph's flow and potentials and starts ε at the
    worst violation the latest graph changes introduced — after
    {!Price_refine}, that is bounded by the costliest changed arc (§6.2). *)

type state

(** [create ?alpha ()] makes solver state. [alpha >= 2] is the ε division
    factor. @raise Invalid_argument if [alpha < 2]. *)
val create : ?alpha:int -> unit -> state

val alpha : state -> int

(** [reserve state bound] pre-sizes the node-indexed scratch for graphs
    of node bound [bound], so the first solve runs steady-state instead
    of growing mid-round. *)
val reserve : state -> int -> unit

(** [ensure_scale state g] adjusts the cost scale factor to track [g]'s
    live node count and returns it: it grows whenever the node count
    exceeds it, and shrinks back down when the cluster has contracted to
    less than half the stored value (rescaling [g]'s potentials into the
    new units so the warm start stays consistent). {!Price_refine} needs
    it to write potentials in the solver's scaled units. *)
val ensure_scale : state -> Flowgraph.Graph.t -> int

(** [solve ?stop ?incremental state g] optimizes [g] in place. With
    [~incremental:false] (default) flow and potentials are reset first.
    On [Stopped], the graph holds the ε-optimal intermediate pseudoflow
    reached so far (used by the Fig. 10 early-termination experiment). *)
val solve :
  ?stop:Solver_intf.stop ->
  ?incremental:bool ->
  state ->
  Flowgraph.Graph.t ->
  Solver_intf.stats

(** Fault injection for the differential fuzz harness: when set above 1,
    every solve truncates its ε ladder at this floor and stops at a merely
    ε-optimal flow {e while still reporting [Optimal]} — exactly the class
    of silent-wrong-answer bug the from-scratch oracle and
    {!Flowgraph.Validate.is_optimal} exist to catch. Default [1] (off).
    Never set this outside tests or [firmament_fuzz --inject-eps]. *)
val debug_eps_floor : int ref
