module G = Flowgraph.Graph

(* One Bellman-Ford sweep to convergence or [n] rounds; returns the list of
   nodes whose distance was still improving in the final round (each lies on
   or is reachable from a negative cycle), plus the parent-arc array. *)
let bellman_ford g parent dist =
  Array.fill dist 0 (Array.length dist) 0;
  Array.fill parent 0 (Array.length parent) (-1);
  let n = G.node_count g in
  let updated = ref [] in
  let improved = ref true in
  let round = ref 0 in
  while !improved && !round <= n do
    improved := false;
    incr round;
    updated := [];
    G.iter_arcs g (fun a0 ->
        let relax a =
          if G.rescap g a > 0 then begin
            let u = G.src g a and v = G.dst g a in
            let d = dist.(u) + G.cost g a in
            if d < dist.(v) then begin
              dist.(v) <- d;
              parent.(v) <- a;
              improved := true;
              updated := v :: !updated
            end
          end
        in
        relax a0;
        relax (G.rev a0))
  done;
  if !improved then !updated else []

(* Walk [n] parent steps from [v] to land on a cycle, then collect its arcs. *)
let extract_cycle g parent n v =
  let u = ref v in
  for _ = 1 to n do
    if parent.(!u) >= 0 then u := G.src g parent.(!u)
  done;
  if parent.(!u) < 0 then None
  else begin
    let start = !u in
    let arcs = ref [] in
    let w = ref start in
    let ok = ref true in
    let continue = ref true in
    while !continue do
      let a = parent.(!w) in
      if a < 0 then begin
        ok := false;
        continue := false
      end
      else begin
        arcs := a :: !arcs;
        w := G.src g a;
        if !w = start then continue := false
      end
    done;
    if !ok then Some !arcs else None
  end

let cancel g arcs =
  let bottleneck = List.fold_left (fun m a -> min m (G.rescap g a)) max_int arcs in
  let cost = List.fold_left (fun c a -> c + G.cost g a) 0 arcs in
  if bottleneck > 0 && bottleneck < max_int && cost < 0 then begin
    List.iter (fun a -> G.push g a bottleneck) arcs;
    true
  end
  else false

let solve ?(stop = Solver_intf.never_stop) g =
  let t0 = Telemetry.Clock.now_ns () in
  let bound = max 1 (G.node_bound g) in
  let parent = Array.make bound (-1) in
  let dist = Array.make bound 0 in
  let iterations = ref 0 in
  let pushes = ref 0 in
  let finish outcome =
    Solver_intf.stats ~iterations:!iterations ~pushes:!pushes outcome
      (Telemetry.Clock.s_of_ns (Telemetry.Clock.now_ns () - t0))
  in
  if not (Max_flow.route ~stop g) then
    if stop () then finish Solver_intf.Stopped else finish Solver_intf.Infeasible
  else begin
    try
      let n = G.node_count g in
      let rec loop () =
        if stop () then raise Solver_intf.Stop;
        incr iterations;
        match bellman_ford g parent dist with
        | [] -> ()
        | candidates ->
            (* Cancel every distinct cycle reachable from this round's
               candidates; re-derived bottlenecks guard against arcs
               saturated by an earlier cancellation in the same round. *)
            let cancelled = ref false in
            List.iter
              (fun v ->
                match extract_cycle g parent n v with
                | Some arcs -> if cancel g arcs then cancelled := true
                | None -> ())
              candidates;
            (* A fresh Bellman-Ford always yields at least one cancelable
               cycle while one exists, so no progress means convergence. *)
            if !cancelled then loop ()
      in
      loop ();
      finish Solver_intf.Optimal
    with Solver_intf.Stop -> finish Solver_intf.Stopped
  end
