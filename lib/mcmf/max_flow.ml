module G = Flowgraph.Graph

(* BFS from all excess nodes simultaneously until a deficit node is found,
   augment along the discovered path, repeat. Terminates when no deficit is
   reachable from any remaining excess. *)
let route ?(stop = Solver_intf.never_stop) g =
  let bound = G.node_bound g in
  let parent = Array.make (max 1 bound) (-1) in
  let queue = Queue.create () in
  let rec augment () =
    if stop () then raise Solver_intf.Stop;
    Array.fill parent 0 (Array.length parent) (-1);
    Queue.clear queue;
    G.iter_nodes g (fun n ->
        if G.excess g n > 0 then begin
          parent.(n) <- max_int; (* root marker *)
          Queue.add n queue
        end);
    if not (Queue.is_empty queue) then begin
      (* BFS over residual arcs with spare capacity. *)
      let target = ref (-1) in
      (try
         while not (Queue.is_empty queue) do
           let u = Queue.pop queue in
           let it = ref (G.first_active g u) in
           while !it >= 0 do
             let a = !it in
             let v = G.dst g a in
             if parent.(v) = -1 then begin
               parent.(v) <- a;
               if G.excess g v < 0 then begin
                 target := v;
                 raise Exit
               end;
               Queue.add v queue
             end;
             it := G.next_active g a
           done
         done
       with Exit -> ());
      if !target >= 0 then begin
        (* Trace back to the root, find the bottleneck, push. *)
        let t = !target in
        let rec bottleneck v acc =
          let a = parent.(v) in
          if a = max_int then acc
          else bottleneck (G.src g a) (min acc (G.rescap g a))
        in
        let rec root v =
          let a = parent.(v) in
          if a = max_int then v else root (G.src g a)
        in
        let s = root t in
        let amount = min (G.excess g s) (min (- G.excess g t) (bottleneck t max_int)) in
        let rec push v =
          let a = parent.(v) in
          if a <> max_int then begin
            G.push g a amount;
            push (G.src g a)
          end
        in
        push t;
        augment ()
      end
    end
  in
  (try augment () with Solver_intf.Stop -> ());
  let feasible = ref true in
  G.iter_nodes g (fun n -> if G.excess g n <> 0 then feasible := false);
  !feasible
