(** Successive shortest path (Ahuja–Magnanti–Orlin §9.7) — paper §4,
    Table 1: O(N²·U·log N).

    Maintains reduced-cost optimality at every step and works toward
    feasibility: negative-cost arcs are saturated up front, then flow is
    repeatedly augmented from excess nodes to deficit nodes along shortest
    residual paths (multi-source Dijkstra on reduced costs), updating node
    potentials after each search so reduced costs stay non-negative. *)

(** Persistent Dijkstra scratch (distance/parent/settled arrays and the
    priority heap) reused across solves; per-round clearing is an epoch
    bump instead of O(node bound) refills. *)
type workspace

val create_workspace : unit -> workspace

val solve :
  ?stop:Solver_intf.stop -> ?workspace:workspace -> Flowgraph.Graph.t -> Solver_intf.stats

(** [establish_optimality g] saturates every residual arc with negative
    reduced cost, establishing reduced-cost optimality for the current
    potentials at the price of feasibility (excess appears at endpoints).
    Shared initialization of the optimality-maintaining algorithms
    (successive shortest path and relaxation, paper Table 2). *)
val establish_optimality : Flowgraph.Graph.t -> unit
