(** Feasibility routing by max-flow.

    [route g] ships as much supply as possible from excess nodes to deficit
    nodes over the residual network, ignoring costs (BFS augmenting paths,
    Edmonds–Karp style). Returns [true] if all excess was drained, i.e. the
    instance is feasible. Used by {!Cycle_canceling} to obtain its initial
    feasible flow, and by tests as a feasibility oracle. *)

val route : ?stop:Solver_intf.stop -> Flowgraph.Graph.t -> bool
