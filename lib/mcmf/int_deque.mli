(** Growable circular-buffer deque of ints, the queue primitive of the
    persistent solver workspaces: amortized O(1) pushes at both ends,
    O(1) [clear] (no O(capacity) refill between solves). *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool
val push_back : t -> int -> unit
val push_front : t -> int -> unit

(** [pop_front d] removes and returns the front element.
    @raise Not_found when empty. *)
val pop_front : t -> int

val clear : t -> unit
