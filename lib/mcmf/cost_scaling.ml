module G = Flowgraph.Graph

(* Telemetry ids, registered once at module init (ids are ints; the
   hot-path record calls below are plain array writes). *)
let m = Telemetry.Metrics.global ()
let tr = Telemetry.Trace.global ()

let m_solves =
  Telemetry.Metrics.counter m ~help:"cost-scaling solves started"
    "mcmf_cost_scaling_solves_total"

let m_phases =
  Telemetry.Metrics.counter m ~help:"epsilon phases (refine passes) run"
    "mcmf_cost_scaling_phases_total"

let m_pushes =
  Telemetry.Metrics.counter m ~help:"pushes across all epsilon phases"
    "mcmf_cost_scaling_pushes_total"

let m_relabels =
  Telemetry.Metrics.counter m ~help:"relabels across all epsilon phases"
    "mcmf_cost_scaling_relabels_total"

let m_phase_ns =
  Telemetry.Metrics.histogram m ~help:"per-epsilon-phase wall time (ns)"
    "mcmf_cost_scaling_phase_ns"

let m_phase_pushes =
  Telemetry.Metrics.histogram m ~help:"pushes per epsilon phase"
    "mcmf_cost_scaling_phase_pushes"

let m_phase_relabels =
  Telemetry.Metrics.histogram m ~help:"relabels per epsilon phase"
    "mcmf_cost_scaling_phase_relabels"

let t_phase = Telemetry.Trace.register tr "cost_scaling.eps_phase"

(* Besides the ε-scale carried across runs, the state owns the solver's
   persistent workspace: node-indexed scratch reused by every [refine] of
   every solve. [in_queue] is epoch-stamped (= queue_epoch iff queued) so
   clearing it between refines is a counter bump; [cur_arc] and [p_start]
   are written for every live node at refine start, so stale entries are
   never read. *)
type state = {
  alpha : int;
  mutable scale : int;
  mutable nbound : int;
  mutable in_queue : int array;
  mutable cur_arc : int array;
  mutable p_start : int array;
  mutable queue_epoch : int;
  active : Int_deque.t;
}

let create ?(alpha = 2) () =
  if alpha < 2 then invalid_arg "Cost_scaling.create: alpha < 2";
  {
    alpha;
    scale = 2;
    nbound = 0;
    in_queue = [||];
    cur_arc = [||];
    p_start = [||];
    queue_epoch = 0;
    active = Int_deque.create ();
  }

let ws_ensure st bound =
  if bound > st.nbound then begin
    let n = ref (max 64 st.nbound) in
    while !n < bound do
      n := !n * 2
    done;
    let n = !n in
    st.in_queue <- Array.make n 0;
    st.cur_arc <- Array.make n (-1);
    st.p_start <- Array.make n 0;
    st.nbound <- n
  end

let reserve = ws_ensure

let alpha st = st.alpha

(* Fault injection for the differential fuzz harness: a floor > 1 truncates
   the ε ladder below, so the solver stops at an ε-optimal (not optimal)
   flow while still reporting [Optimal]. Off (= 1) unless a test or
   [firmament_fuzz --inject-eps] flips it. *)
let debug_eps_floor = ref 1

let ensure_scale st g =
  let needed = G.node_count g + 2 in
  if st.scale < needed then st.scale <- needed
  else if st.scale > 2 * needed then begin
    (* The cluster shrank well below the stored scale: a stale large S
       inflates the scratch ladder's starting ε (C·S) and every reduced
       cost, wasting refine passes. Rescale the warm potentials into the
       new units so their reduced-cost signs survive (up to ±1 rounding
       per endpoint), then adopt the tight scale. *)
    let old = st.scale in
    G.iter_nodes g (fun n -> G.set_potential g n (G.potential g n * needed / old));
    st.scale <- needed
  end;
  st.scale

(* All reduced costs below are in scaled units: rc(a) = cost(a)*S - p(u) + p(v),
   with p the graph potentials (written in scaled units by this solver and by
   Price_refine when handed ~scale). *)

let solve ?(stop = Solver_intf.never_stop) ?(incremental = false) st g =
  let t0 = Telemetry.Clock.now_ns () in
  Telemetry.Metrics.incr m m_solves;
  let s = ensure_scale st g in
  let pushes = ref 0 in
  let relabels = ref 0 in
  let iterations = ref 0 in
  (* ε-phase bookkeeping, hoisted so a phase cut short by Stop or
     Infeasible is still recorded (closed from [finish]). *)
  let phase_open = ref false in
  let phase_t0 = ref 0 in
  let phase_p0 = ref 0 in
  let phase_r0 = ref 0 in
  let end_phase () =
    if !phase_open then begin
      phase_open := false;
      let t1 = Telemetry.Clock.now_ns () in
      Telemetry.Metrics.observe m m_phase_ns (t1 - !phase_t0);
      Telemetry.Metrics.observe m m_phase_pushes (!pushes - !phase_p0);
      Telemetry.Metrics.observe m m_phase_relabels (!relabels - !phase_r0);
      Telemetry.Trace.span tr ~phase:t_phase ~t0:!phase_t0 ~t1
    end
  in
  let finish outcome =
    end_phase ();
    Telemetry.Metrics.add m m_pushes !pushes;
    Telemetry.Metrics.add m m_relabels !relabels;
    Solver_intf.stats ~iterations:!iterations ~pushes:!pushes ~relabels:!relabels outcome
      (Telemetry.Clock.s_of_ns (Telemetry.Clock.now_ns () - t0))
  in
  if not incremental then G.reset_flow g;
  let bound = max 1 (G.node_bound g) in
  let rc a = (G.cost g a * s) - G.potential g (G.src g a) + G.potential g (G.dst g a) in
  (* Starting ε. From scratch, scaling must begin at C·S and work down —
     the zero flow has no reduced-cost violations, but starting at ε = 1
     degenerates into unscaled push-relabel. Incrementally, the worst
     violation the graph changes introduced suffices (paper §6.2: bounded
     by the costliest changed arc after price refine). *)
  let scratch_eps = max 1 (G.max_arc_cost g * s) in
  let eps0 =
    let m = ref 1 in
    G.iter_arcs g (fun a0 ->
        if G.rescap g a0 > 0 && -rc a0 > !m then m := -rc a0;
        let a1 = G.rev a0 in
        if G.rescap g a1 > 0 && -rc a1 > !m then m := -rc a1);
    if not incremental then max !m scratch_eps
    else if !m > 8 * scratch_eps then begin
      (* The warm potentials are wildly inconsistent with the graph (e.g.
         many new zero-potential nodes against old scaled duals, and no
         price refine ran): a from-scratch solve is strictly cheaper than
         descending from such an ε. *)
      G.reset_flow g;
      scratch_eps
    end
    else begin
      (* A warm start only helps when little work is left. If a large
         share of the supply is unrouted (e.g. the first solve of a fresh
         graph, where zero flow at zero potentials shows no violation at
         all), routing it at a tiny ε degenerates into unscaled
         push-relabel — take the full ladder instead. *)
      let unrouted = ref 0 and supply_total = ref 0 in
      G.iter_nodes g (fun n ->
          let e = G.excess g n and b = G.supply g n in
          if e > 0 then unrouted := !unrouted + e;
          if b > 0 then supply_total := !supply_total + b);
      if !unrouted * 5 > !supply_total && !m < scratch_eps then scratch_eps else !m
    end
  in
  ws_ensure st bound;
  let active = st.active in
  let cur_arc = st.cur_arc in
  let p_start = st.p_start in
  let n_live = G.node_count g in
  let exception Infeasible in
  (* Unbounded relabeling is the signature of infeasibility, but potentials
     can legitimately rise by ~n·C·S when routing fresh supply. Guard
     adaptively: when a node's rise exceeds the current limit, run a real
     max-flow feasibility check (once); if feasible, raise the limit and
     keep going. *)
  let rise_limit = ref (((3 * n_live) + 8) * (G.max_arc_cost g + 1) * s) in
  let feasibility_known = ref false in
  let suspect_infeasible () =
    if !feasibility_known then ()
    else begin
      feasibility_known := true;
      if not (Max_flow.route (G.copy g)) then raise Infeasible
    end;
    rise_limit := !rise_limit * 8
  in
  let refine eps =
    incr iterations;
    Telemetry.Metrics.incr m m_phases;
    end_phase ();
    phase_open := true;
    phase_t0 := Telemetry.Clock.now_ns ();
    phase_p0 := !pushes;
    phase_r0 := !relabels;
    if stop () then raise Solver_intf.Stop;
    (* Make the pseudoflow 0-optimal at current prices. Both directions
       are checked inline — an inner [let fix a = ...] helper would be a
       fresh closure per arc, megabytes per pass on cluster graphs. *)
    G.iter_arcs g (fun a0 ->
        if G.rescap g a0 > 0 && rc a0 < 0 then G.push g a0 (G.rescap g a0);
        let a1 = G.rev a0 in
        if G.rescap g a1 > 0 && rc a1 < 0 then G.push g a1 (G.rescap g a1));
    (* ...then discharge active nodes, pushing on admissible (rc < 0)
       residual arcs and relabeling when the current node has none. *)
    Int_deque.clear active;
    st.queue_epoch <- st.queue_epoch + 1;
    let epoch = st.queue_epoch in
    let in_queue = st.in_queue in
    G.iter_nodes g (fun n ->
        p_start.(n) <- G.potential g n;
        cur_arc.(n) <- G.first_out g n;
        if G.excess g n > 0 then begin
          Int_deque.push_back active n;
          in_queue.(n) <- epoch
        end);
    let steps = ref 0 in
    (* Hoisted out of the relabel path: without flambda a local ref is a
       minor-heap allocation, and relabels dominate warm rounds. *)
    let min_rc = ref 0 and it = ref (-1) in
    while not (Int_deque.is_empty active) do
      incr steps;
      if !steps land 1023 = 0 && stop () then raise Solver_intf.Stop;
      let u = Int_deque.pop_front active in
      in_queue.(u) <- 0;
      (* Discharge u completely. *)
      let continue = ref (G.excess g u > 0) in
      while !continue do
        let a = cur_arc.(u) in
        if a < 0 then begin
          (* Relabel: raise p(u) until some out-arc becomes admissible. *)
          incr relabels;
          min_rc := max_int;
          it := G.first_out g u;
          while !it >= 0 do
            if G.rescap g !it > 0 then begin
              let r = rc !it in
              if r < !min_rc then min_rc := r
            end;
            it := G.next_out g !it
          done;
          if !min_rc = max_int then raise Infeasible;
          G.set_potential g u (G.potential g u + !min_rc + eps);
          if G.potential g u - p_start.(u) > !rise_limit then suspect_infeasible ();
          cur_arc.(u) <- G.first_out g u
        end
        else begin
          if G.rescap g a > 0 && rc a < 0 then begin
            let d = min (G.excess g u) (G.rescap g a) in
            let v = G.dst g a in
            G.push g a d;
            incr pushes;
            if G.excess g v > 0 && in_queue.(v) <> epoch then begin
              Int_deque.push_back active v;
              in_queue.(v) <- epoch
            end
          end;
          if G.excess g u > 0 then cur_arc.(u) <- G.next_out g a
        end;
        if G.excess g u <= 0 then continue := false
      done
    done
  in
  try
    let eps_floor = max 1 !debug_eps_floor in
    let eps = ref eps0 in
    refine !eps;
    while !eps > eps_floor do
      eps := max 1 (!eps / st.alpha);
      refine !eps
    done;
    finish Solver_intf.Optimal
  with
  | Solver_intf.Stop -> finish Solver_intf.Stopped
  | Infeasible -> finish Solver_intf.Infeasible
