(** Common types shared by all MCMF algorithms (paper §4).

    Every solver consumes a {!Flowgraph.Graph.t} holding supplies, costs and
    capacities, and leaves the optimal flow (and its dual potentials) in the
    graph. Solvers are single-threaded, as in the paper; concurrency comes
    from racing two solvers on graph copies ({!Race}). *)

(** Why a solve ended. *)
type outcome =
  | Optimal  (** feasible flow, no negative residual cycle *)
  | Infeasible  (** supply cannot be routed within capacities *)
  | Stopped  (** cancelled by the stop callback or deadline; graph holds a best-effort intermediate state *)

let pp_outcome ppf o =
  Format.pp_print_string ppf
    (match o with
    | Optimal -> "optimal"
    | Infeasible -> "infeasible"
    | Stopped -> "stopped")

(** Solve statistics, used by the benchmark harness. [runtime] is wall-clock
    seconds of the algorithm proper (the paper's "algorithm runtime",
    Fig. 2b). *)
type stats = {
  outcome : outcome;
  runtime : float;
  iterations : int;  (** algorithm-specific unit: refines, augmentations, … *)
  pushes : int;
  relabels : int;  (** relabels / price rises / potential updates *)
}

let stats ?(iterations = 0) ?(pushes = 0) ?(relabels = 0) outcome runtime =
  { outcome; runtime; iterations; pushes; relabels }

(** A cooperative cancellation hook, polled periodically by inner loops.
    Return [true] to make the solver stop with {!Stopped}. *)
type stop = unit -> bool

let never_stop : stop = fun () -> false

(** [deadline_stop seconds] stops once at least [seconds] have elapsed
    from the call — so a zero deadline fires at the very first poll.
    Uses the shared monotonic clock ({!Telemetry.Clock}), so an NTP step
    during a round can neither eat the budget nor extend it. Combine
    with a flag via {!either_stop}. *)
let deadline_stop seconds : stop =
  let deadline = Telemetry.Clock.now_ns () + Telemetry.Clock.ns_of_s seconds in
  fun () -> Telemetry.Clock.now_ns () >= deadline

let flag_stop (flag : bool Atomic.t) : stop = fun () -> Atomic.get flag
let either_stop a b : stop = fun () -> a () || b ()

exception Stop
(** Raised internally when the stop callback fires; never escapes [solve]. *)
