(** Replayable repro artifacts.

    When the harness trips a check, [firmament_fuzz] shrinks the trace and
    writes one of these: a small text file holding the harness
    configuration, the failing check, the minimized event trace and a
    DIMACS state dump ({!Flowgraph.Dimacs.emit_state}) of the graph at the
    failure point. [firmament_fuzz --replay FILE] re-runs the trace under
    the recorded configuration and reports whether the same check still
    fires.

    Format (line-oriented, [v1]):
    {v
    firmament-fuzz-artifact v1
    mode <name>            # Harness.mode_name
    machines <n>
    slots <n>
    inject-eps <n>
    check <check-id>
    detail <one line>
    trace <n-events>
    <one Dcsim.Churn.to_line per event>
    graph
    <Flowgraph.Dimacs.emit_state lines, to EOF>
    v} *)

type t = {
  mode : Mcmf.Race.mode;
  machines : int;
  slots : int;
  inject_eps : int;
  check : string;  (** the check id that fired, e.g. [oracle-cost] *)
  detail : string;  (** human explanation (newlines flattened) *)
  trace : Dcsim.Churn.event list;  (** the (shrunk) failing trace *)
  graph : string;  (** DIMACS state dump of the graph at failure *)
}

(** [of_failure config failure trace] packages a harness failure. [trace]
    should be the already-shrunk event list. *)
val of_failure :
  Harness.config -> Harness.failure -> Dcsim.Churn.event list -> t

(** The harness configuration an artifact replays under: its recorded
    cluster shape and injection, restricted to the single recorded mode. *)
val config : t -> Harness.config

val to_string : t -> string

(** @raise Failure on a malformed artifact. *)
val of_string : string -> t

val save : string -> t -> unit

(** @raise Failure on a malformed artifact, [Sys_error] on I/O. *)
val load : string -> t
