type t = {
  mode : Mcmf.Race.mode;
  machines : int;
  slots : int;
  inject_eps : int;
  check : string;
  detail : string;
  trace : Dcsim.Churn.event list;
  graph : string;
}

let flatten s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let of_failure (cfg : Harness.config) (f : Harness.failure) trace =
  {
    mode = f.Harness.f_mode;
    machines = cfg.Harness.machines;
    slots = cfg.Harness.slots;
    inject_eps = cfg.Harness.inject_eps;
    check = f.Harness.f_check;
    detail = flatten f.Harness.f_detail;
    trace;
    graph = f.Harness.f_graph;
  }

let config t =
  {
    Harness.machines = t.machines;
    slots = t.slots;
    inject_eps = t.inject_eps;
    (* Not serialized: replays run with the default repair budget (the
       incremental path is on by default, so repair-found bugs still
       reproduce on eligible rounds). *)
    force_incremental = false;
    modes = [ t.mode ];
  }

let to_string t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "firmament-fuzz-artifact v1\n";
  Buffer.add_string b (Printf.sprintf "mode %s\n" (Harness.mode_name t.mode));
  Buffer.add_string b (Printf.sprintf "machines %d\n" t.machines);
  Buffer.add_string b (Printf.sprintf "slots %d\n" t.slots);
  Buffer.add_string b (Printf.sprintf "inject-eps %d\n" t.inject_eps);
  Buffer.add_string b (Printf.sprintf "check %s\n" t.check);
  Buffer.add_string b (Printf.sprintf "detail %s\n" (flatten t.detail));
  Buffer.add_string b (Printf.sprintf "trace %d\n" (List.length t.trace));
  List.iter
    (fun ev -> Buffer.add_string b (Dcsim.Churn.to_line ev ^ "\n"))
    t.trace;
  Buffer.add_string b "graph\n";
  Buffer.add_string b t.graph;
  if t.graph <> "" && t.graph.[String.length t.graph - 1] <> '\n' then
    Buffer.add_char b '\n';
  Buffer.contents b

let fail fmt = Format.kasprintf failwith fmt

let of_string s =
  let lines = String.split_on_char '\n' s in
  let expect_kv key = function
    | line :: rest when String.length line > String.length key
                        && String.sub line 0 (String.length key) = key
                        && line.[String.length key] = ' ' ->
        ( String.sub line
            (String.length key + 1)
            (String.length line - String.length key - 1),
          rest )
    | line :: _ -> fail "Artifact.of_string: expected %S line, got %S" key line
    | [] -> fail "Artifact.of_string: truncated before %S line" key
  in
  let lines =
    match lines with
    | "firmament-fuzz-artifact v1" :: rest -> rest
    | l :: _ -> fail "Artifact.of_string: bad header %S" l
    | [] -> fail "Artifact.of_string: empty input"
  in
  let mode, lines = expect_kv "mode" lines in
  let machines, lines = expect_kv "machines" lines in
  let slots, lines = expect_kv "slots" lines in
  let inject_eps, lines = expect_kv "inject-eps" lines in
  let check, lines = expect_kv "check" lines in
  let detail, lines = expect_kv "detail" lines in
  let n, lines = expect_kv "trace" lines in
  let n = int_of_string n in
  let rec take_trace k lines acc =
    if k = 0 then (List.rev acc, lines)
    else
      match lines with
      | [] -> fail "Artifact.of_string: trace truncated (%d events missing)" k
      | line :: rest -> take_trace (k - 1) rest (Dcsim.Churn.of_line line :: acc)
  in
  let trace, lines = take_trace n lines [] in
  let graph_lines =
    match lines with
    | "graph" :: rest -> rest
    | l :: _ -> fail "Artifact.of_string: expected \"graph\" separator, got %S" l
    | [] -> fail "Artifact.of_string: truncated before graph section"
  in
  {
    mode = Harness.mode_of_name mode;
    machines = int_of_string machines;
    slots = int_of_string slots;
    inject_eps = int_of_string inject_eps;
    check;
    detail;
    trace;
    graph = String.concat "\n" graph_lines;
  }

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
