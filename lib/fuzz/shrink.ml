(* Delta debugging (Zeller's ddmin) on event lists. The harness's event
   semantics are total under any subsequence (index selectors reduce
   modulo the live population; impossible events are no-ops), so every
   candidate the shrinker proposes is a valid trace — the predicate only
   decides whether it still fails. *)

let split_chunks lst n =
  let len = List.length lst in
  let base = len / n and extra = len mod n in
  let rec take k lst acc =
    if k = 0 then (List.rev acc, lst)
    else
      match lst with
      | [] -> (List.rev acc, [])
      | x :: tl -> take (k - 1) tl (x :: acc)
  in
  let rec go i lst acc =
    if i = n then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size lst [] in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 lst []

let remove_chunk chunks i =
  List.concat (List.filteri (fun j _ -> j <> i) chunks)

let rec ddmin ~fails events n =
  let len = List.length events in
  if len <= 1 then events
  else begin
    let n = min n len in
    let chunks = split_chunks events n in
    (* Try each complement (the trace minus one chunk), largest first. *)
    let rec try_complements i =
      if i >= List.length chunks then None
      else
        let candidate = remove_chunk chunks i in
        if candidate <> [] && fails candidate then Some candidate
        else try_complements (i + 1)
    in
    match try_complements 0 with
    | Some smaller -> ddmin ~fails smaller (max (n - 1) 2)
    | None -> if n < len then ddmin ~fails events (min len (2 * n)) else events
  end

let replace_at lst i v = List.mapi (fun j x -> if j = i then v else x) lst

let simplify_pass ~fails ~simplify events =
  let changed = ref false in
  let events = ref events in
  List.iteri
    (fun i _ ->
      let ev = List.nth !events i in
      let rec try_candidates = function
        | [] -> ()
        | c :: rest ->
            let candidate = replace_at !events i c in
            if fails candidate then begin
              events := candidate;
              changed := true
            end
            else try_candidates rest
      in
      try_candidates (simplify ev))
    !events;
  (!events, !changed)

let minimize ~fails ?(simplify = fun _ -> []) events =
  if not (fails events) then events
  else begin
    let minimal = ddmin ~fails events 2 in
    (* Per-event simplification to a fixpoint (bounded: each pass must
       strictly simplify at least one event, and candidates are finite). *)
    let rec fixpoint events budget =
      if budget = 0 then events
      else
        let events', changed = simplify_pass ~fails ~simplify events in
        if changed then fixpoint events' (budget - 1) else events'
    in
    fixpoint minimal 8
  end

let simplify_event (ev : Dcsim.Churn.event) : Dcsim.Churn.event list =
  match ev with
  | Dcsim.Churn.Round { polls } when polls > 0 -> [ Dcsim.Churn.Round { polls = 0 } ]
  | Dcsim.Churn.Submit ({ tasks; _ } as s) when tasks > 1 ->
      [ Dcsim.Churn.Submit { s with tasks = 1 } ]
  | Dcsim.Churn.Perturb_costs ({ arcs; _ } as p) when arcs > 1 ->
      [ Dcsim.Churn.Perturb_costs { p with arcs = 1 } ]
  | _ -> []
