(** Differential churn fuzzing of the scheduler (the standing gate every
    perf PR must pass; see DESIGN.md "Testing & fuzzing").

    [run] interprets a {!Dcsim.Churn} trace against the {e real}
    {!Firmament.Scheduler} — Quincy policy, real solvers — once per
    requested race mode, and after {e every} committed round checks, via
    the scheduler's round observer hook:

    {ul
    {- {b oracle} — on adopted-optimal rounds, the certified snapshot's
       objective cost (the solved graph, captured before post-commit
       policy mutations reroute started tasks) equals a from-scratch
       {!Mcmf.Ssp} solve of the same instance (the differential check:
       every mode, warm start and heuristic must agree with the slow
       oracle);}
    {- {b validators} — {!Flowgraph.Validate.is_feasible} and
       {!Flowgraph.Validate.is_optimal} hold on the certified snapshot,
       and {!Firmament.Flow_network.validate_structure} reports no drift
       on the canonical graph;}
    {- {b commit sanity} — placements never oversubscribe machine slots,
       never name a finished task or a dead machine;}
    {- {b phase accounting} — each round's [phase_ns] is well-formed and
       sums to at most the measured wall time of the scheduling call.}}

    The first violated check aborts the run with a {!failure} carrying
    the failing mode, round/event indices and a DIMACS state dump
    ({!Flowgraph.Dimacs.emit_state}) of the post-commit graph. *)

type config = {
  machines : int;  (** cluster size (2 machines per rack) *)
  slots : int;  (** slots per machine *)
  inject_eps : int;
      (** fault injection: {!Mcmf.Cost_scaling.debug_eps_floor} for the
          duration of the run (1 = off). Lets tests and
          [firmament_fuzz --inject-eps] prove the harness catches a
          solver that silently stops at an ε-optimal flow. *)
  force_incremental : bool;
      (** lift the scheduler's incremental-repair budget to (near)
          unbounded so every round whose previous solution certified
          takes the O(changes) repair path — the differential checks
          then gate {!Mcmf.Incremental} instead of the full race.
          Give-ups still fall back to the configured mode. *)
  modes : Mcmf.Race.mode list;  (** race modes to run, in order *)
}

(** 6 machines × 2 slots, no injection, all five race modes. *)
val default_config : config

val all_modes : Mcmf.Race.mode list

(** Mode names as used by artifacts and the [firmament_fuzz] CLI
    ([race], [fastest], [relaxation], [incremental-cs], [quincy-cs]). *)
val mode_name : Mcmf.Race.mode -> string

(** @raise Failure on an unknown name. *)
val mode_of_name : string -> Mcmf.Race.mode

type failure = {
  f_mode : Mcmf.Race.mode;  (** the race mode that failed *)
  f_round : int;  (** 0-based index of the committed round that failed *)
  f_event : int;  (** 0-based index of the trace event being applied *)
  f_check : string;
      (** which invariant broke: [oracle-cost], [oracle-infeasible],
          [optimality], [feasibility], [structure], [capacity],
          [stale-commit], [dead-machine], [phase-accounting] or
          [exception] *)
  f_detail : string;  (** one-line human explanation *)
  f_graph : string;
      (** {!Flowgraph.Dimacs.emit_state} dump of the canonical graph when
          the check fired (post-commit, or at the exception point) *)
}

val pp_failure : Format.formatter -> failure -> unit

(** [run config events] interprets the trace under each configured mode
    in turn; the first failing check wins. Deterministic for the
    single-solver modes ([relaxation], [incremental-cs], [quincy-cs]);
    the racing modes pick winners by wall clock, so distinct optima may
    steer later rounds differently between runs (the checks themselves
    are winner-independent). *)
val run : config -> Dcsim.Churn.event list -> (unit, failure) result

(** [run_mode config mode events] is {!run} restricted to one mode. *)
val run_mode :
  config -> Mcmf.Race.mode -> Dcsim.Churn.event list -> (unit, failure) result
