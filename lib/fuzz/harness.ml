module G = Flowgraph.Graph
module FN = Firmament.Flow_network
module S = Firmament.Scheduler
module W = Cluster.Workload

type config = {
  machines : int;
  slots : int;
  inject_eps : int;
  force_incremental : bool;
  modes : Mcmf.Race.mode list;
}

let all_modes =
  Mcmf.Race.
    [
      Race_parallel;
      Fastest_sequential;
      Relaxation_only;
      Incremental_cost_scaling_only;
      Cost_scaling_scratch_only;
    ]

let default_config =
  { machines = 6; slots = 2; inject_eps = 1; force_incremental = false; modes = all_modes }

let mode_name = function
  | Mcmf.Race.Race_parallel -> "race"
  | Mcmf.Race.Fastest_sequential -> "fastest"
  | Mcmf.Race.Relaxation_only -> "relaxation"
  | Mcmf.Race.Incremental_cost_scaling_only -> "incremental-cs"
  | Mcmf.Race.Cost_scaling_scratch_only -> "quincy-cs"

let mode_of_name = function
  | "race" -> Mcmf.Race.Race_parallel
  | "fastest" -> Mcmf.Race.Fastest_sequential
  | "relaxation" -> Mcmf.Race.Relaxation_only
  | "incremental-cs" -> Mcmf.Race.Incremental_cost_scaling_only
  | "quincy-cs" -> Mcmf.Race.Cost_scaling_scratch_only
  | s -> Format.kasprintf failwith "Harness.mode_of_name: unknown mode %S" s

type failure = {
  f_mode : Mcmf.Race.mode;
  f_round : int;
  f_event : int;
  f_check : string;
  f_detail : string;
  f_graph : string;
}

let pp_failure ppf f =
  Format.fprintf ppf "[%s] %s at round %d (event %d): %s" (mode_name f.f_mode)
    f.f_check f.f_round f.f_event f.f_detail

(* Per-mode interpreter state. [finished] remembers every task the trace
   finished, independently of the cluster's own bookkeeping — the point
   of the stale-commit check is to distrust the scheduler. *)
type st = {
  sched : S.t;
  cluster : Cluster.State.t;
  cfg : config;
  mode : Mcmf.Race.mode;
  finished : (int, unit) Hashtbl.t;
  mutable now : float;
  mutable round_idx : int;
  mutable event_idx : int;
  mutable pending : S.pending option;
  mutable pending_t0 : int;  (* Clock.now_ns at begin_round dispatch *)
  mutable sync_round : bool;
      (* the round being committed is synchronous ([S.schedule]): nothing
         can have interleaved, so an adopted-optimal claim must come with
         a certified snapshot. Pipelined commits may legitimately
         reconcile instead (which also reports [`None], minus snapshot). *)
  mutable fail : failure option;
}

let record st check detail =
  if st.fail = None then
    st.fail <-
      Some
        {
          f_mode = st.mode;
          f_round = st.round_idx;
          f_event = st.event_idx;
          f_check = check;
          f_detail = detail;
          f_graph = Flowgraph.Dimacs.emit_state (FN.graph (S.network st.sched));
        }

(* From-scratch SSP oracle: re-solve the committed instance with the
   slowest, simplest optimality-maintaining algorithm and compare
   objective costs. Runs on a copy; the canonical graph is never touched. *)
let oracle_check st g =
  let copy = G.copy g in
  G.reset_flow copy;
  let stats = Mcmf.Ssp.solve copy in
  match stats.Mcmf.Solver_intf.outcome with
  | Mcmf.Solver_intf.Optimal ->
      let oracle = G.total_cost copy and committed = G.total_cost g in
      if oracle <> committed then
        record st "oracle-cost"
          (Printf.sprintf
             "committed graph claims objective %d but the from-scratch SSP oracle \
              finds %d"
             committed oracle)
  | Mcmf.Solver_intf.Infeasible ->
      record st "oracle-infeasible"
        "oracle found the committed (supposedly optimal) instance infeasible"
  | Mcmf.Solver_intf.Stopped -> ()

(* Delta-extraction oracle: the scheduler's incremental decomposition
   (synced arc-by-arc across rounds) must describe the same flow as a
   from-scratch extraction of the certified solution. Attribution between
   tasks merging at an aggregator is ambiguous — either task may get the
   machine-bound unit — so the comparison is on the invariants every
   decomposition of one flow shares: the tracked task set, the per-machine
   task counts, and the number left unscheduled. The certified copy is
   mounted into the live network for the walk (same node ids, the tables
   stay valid) and the canonical graph is always restored. *)
let decomposition_check st cg =
  match S.decomposition st.sched with
  | None -> ()
  | Some delta -> (
      let net = S.network st.sched in
      let live = FN.graph net in
      match
        Fun.protect
          ~finally:(fun () -> FN.set_graph net live)
          (fun () ->
            FN.set_graph net cg;
            try Ok (Firmament.Placement.extract net) with Failure msg -> Error msg)
      with
      | Error msg ->
          record st "delta-extraction"
            (Printf.sprintf "full extraction of the certified flow failed: %s" msg)
      | Ok full ->
          let summarize asgs =
            let machines = Hashtbl.create 16 in
            let unsched = ref 0 in
            let tids = ref [] in
            List.iter
              (fun { Firmament.Placement.task; machine } ->
                tids := task :: !tids;
                match machine with
                | Some mm ->
                    Hashtbl.replace machines mm
                      (1 + Option.value ~default:0 (Hashtbl.find_opt machines mm))
                | None -> incr unsched)
              asgs;
            let counts =
              List.sort compare
                (Hashtbl.fold (fun mm n acc -> (mm, n) :: acc) machines [])
            in
            (List.sort compare !tids, counts, !unsched)
          in
          let d_tids, d_counts, d_unsched = summarize delta in
          let f_tids, f_counts, f_unsched = summarize full in
          if d_tids <> f_tids then
            record st "delta-extraction"
              (Printf.sprintf
                 "delta decomposition tracks %d tasks, full extraction %d, or the \
                  id sets differ"
                 (List.length d_tids) (List.length f_tids))
          else if d_counts <> f_counts || d_unsched <> f_unsched then
            record st "delta-extraction"
              (Printf.sprintf
                 "delta decomposition disagrees with full extraction: per-machine \
                  counts %s vs %s, unscheduled %d vs %d"
                 (String.concat ","
                    (List.map (fun (mm, n) -> Printf.sprintf "%d:%d" mm n) d_counts))
                 (String.concat ","
                    (List.map (fun (mm, n) -> Printf.sprintf "%d:%d" mm n) f_counts))
                 d_unsched f_unsched))

let known_phases =
  [ "refresh"; "solve"; "adopt"; "extract"; "prepare"; "apply" ]

let check_phases st (r : S.round) =
  (match r.S.phase_ns with
  | ("refresh", _) :: ("solve", _) :: _ -> ()
  | _ -> record st "phase-accounting" "phase_ns does not start [refresh; solve]");
  List.iter
    (fun (name, ns) ->
      if not (List.mem name known_phases) then
        record st "phase-accounting" (Printf.sprintf "unknown phase %S" name);
      if ns < 0 then
        record st "phase-accounting"
          (Printf.sprintf "phase %s has negative duration %d ns" name ns))
    r.S.phase_ns

(* The observer check battery, run on every committed round. [g] is the
   canonical post-commit graph (already carrying the placement diff's
   policy mutations); [certified] is the scheduler's pre-commit snapshot
   of the adopted optimal solution, present exactly when the round claims
   one — the graph on which feasibility/optimality/oracle checks are
   meaningful. *)
let check_round st (r : S.round) _post ~certified =
  if FN.validate_structure (S.network st.sched) <> [] then
    record st "structure"
      (String.concat "; " (FN.validate_structure (S.network st.sched)));
  check_phases st r;
  (* Commit sanity: capacity, liveness, staleness — on every rung of the
     degradation ladder. *)
  for m = 0 to st.cfg.machines - 1 do
    let running = Cluster.State.running_count st.cluster m in
    if running > st.cfg.slots then
      record st "capacity"
        (Printf.sprintf "machine %d runs %d tasks but has %d slots" m running
           st.cfg.slots)
  done;
  let check_placement tid mm =
    if Hashtbl.mem st.finished tid then
      record st "stale-commit"
        (Printf.sprintf "round committed finished task %d" tid);
    if not (Cluster.State.machine_is_live st.cluster mm) then
      record st "dead-machine"
        (Printf.sprintf "round placed task %d on dead machine %d" tid mm)
  in
  List.iter (fun (tid, mm) -> check_placement tid mm) r.S.started;
  List.iter (fun (tid, _, mm) -> check_placement tid mm) r.S.migrated;
  (* Optimality-side checks run on the certified snapshot, present exactly
     when the round adopted an optimal solve ([`None]/[`Infeasible_retry]);
     reconciled, partial and failed rounds have no certified solution to
     validate. *)
  (match (r.S.degraded, certified) with
  | (`None | `Infeasible_retry), None ->
      if st.sync_round then
        record st "structure"
          "synchronous round claims an adopted optimal solve but carries no \
           certified snapshot"
  | _, Some cg ->
      if not (Flowgraph.Validate.is_feasible cg) then
        record st "feasibility" "certified graph does not route all supply"
      else if not (Flowgraph.Validate.is_optimal cg) then
        record st "optimality"
          "certified graph has a negative-cost residual cycle (not optimal)"
      else begin
        oracle_check st cg;
        decomposition_check st cg
      end
  | (`Partial | `Failed), None -> ())

(* {1 Event application} *)

let running_tasks st =
  let acc = ref [] in
  Cluster.State.iter_tasks st.cluster (fun t ->
      if W.is_running t then acc := t.W.tid :: !acc);
  List.sort compare !acc

let pick lst k =
  match lst with [] -> None | _ -> Some (List.nth lst (k mod List.length lst))

let apply_submit st ~jid ~tasks ~duration ~locality =
  let tasks =
    Array.init (max 1 tasks) (fun i ->
        let block b = (locality + (i * 7) + (b * 13)) mod st.cfg.machines in
        W.make_task ~tid:((jid * 1000) + i) ~job:jid ~submit_time:st.now ~duration
          ~input_mb:(float_of_int (100 + (100 * (locality mod 8))))
          ~input_machines:[ block 0; block 1; block 2 ]
          ())
  in
  let klass =
    if locality mod 5 = 0 then Cluster.Types.Service else Cluster.Types.Batch
  in
  S.submit_job st.sched (W.make_job ~jid ~klass ~submit_time:st.now ~tasks)

let apply_perturb st ~seed ~arcs =
  let g = FN.graph (S.network st.sched) in
  let live = ref [] in
  G.iter_arcs g (fun a -> live := a :: !live);
  match !live with
  | [] -> ()
  | _ ->
      let pool = Array.of_list !live in
      let rng = Random.State.make [| 0x70657274; seed |] in
      for _ = 1 to max 1 arcs do
        let a = pool.(Random.State.int rng (Array.length pool)) in
        if G.arc_is_live g a then begin
          let delta = Random.State.int rng 11 - 3 in
          G.set_cost g a (max 0 (G.cost g a + delta))
        end
      done

(* Commit the in-flight round, if any, measuring total elapsed begin→commit
   wall time as the (loose but sound) bound for the phase sum: a pipelined
   round's phases exclude the overlap window, which is non-negative. *)
let commit_pending st =
  match st.pending with
  | None -> ()
  | Some p ->
      st.pending <- None;
      st.sync_round <- false;
      let r = S.commit_round st.sched p ~now:st.now in
      let w1 = Telemetry.Clock.now_ns () in
      let sum = List.fold_left (fun acc (_, d) -> acc + d) 0 r.S.phase_ns in
      if sum > w1 - st.pending_t0 then
        record st "phase-accounting"
          (Printf.sprintf
             "pipelined round phases sum to %d ns, more than the %d ns between \
              begin and commit"
             sum (w1 - st.pending_t0));
      st.round_idx <- st.round_idx + 1

let run_round st ~polls =
  commit_pending st;
  let stop =
    if polls <= 0 then None
    else begin
      let n = ref 0 in
      Some
        (fun () ->
          incr n;
          !n > polls)
    end
  in
  st.sync_round <- true;
  let w0 = Telemetry.Clock.now_ns () in
  let r = S.schedule ?stop st.sched ~now:st.now in
  let w1 = Telemetry.Clock.now_ns () in
  let sum = List.fold_left (fun acc (_, d) -> acc + d) 0 r.S.phase_ns in
  if sum > w1 - w0 then
    record st "phase-accounting"
      (Printf.sprintf "round phases sum to %d ns, more than the measured %d ns wall"
         sum (w1 - w0));
  st.round_idx <- st.round_idx + 1

let apply_event st (ev : Dcsim.Churn.event) =
  match ev with
  | Dcsim.Churn.Submit { jid; tasks; duration; locality } ->
      apply_submit st ~jid ~tasks ~duration ~locality
  | Finish k -> (
      match pick (running_tasks st) k with
      | Some tid ->
          S.finish_task st.sched tid ~now:st.now;
          Hashtbl.replace st.finished tid ()
      | None -> ())
  | Preempt k -> (
      match pick (running_tasks st) k with
      | Some tid -> S.preempt_task st.sched tid
      | None -> ())
  | Fail_machine m ->
      let m = m mod st.cfg.machines in
      if Cluster.State.machine_is_live st.cluster m then S.fail_machine st.sched m
  | Restore_machine m ->
      let m = m mod st.cfg.machines in
      if not (Cluster.State.machine_is_live st.cluster m) then
        S.restore_machine st.sched m
  | Perturb_costs { seed; arcs } -> apply_perturb st ~seed ~arcs
  | Round { polls } -> run_round st ~polls
  | Begin_round ->
      commit_pending st;
      st.pending_t0 <- Telemetry.Clock.now_ns ();
      st.pending <- Some (S.begin_round st.sched ~now:st.now)
  | Commit_round -> commit_pending st

let run_mode config mode events =
  let topo =
    Cluster.Topology.make ~machines:config.machines ~machines_per_rack:2
      ~slots_per_machine:config.slots ()
  in
  let cluster = Cluster.State.create topo in
  let sched =
    (* [force_incremental] lifts the repair budget so every eligible round
       takes the incremental path regardless of change-set size — the
       checks then exercise the repair kernel instead of the full race.
       (max_int/4 and not max_int: the scheduler's size gate multiplies
       the budget by 4.) *)
    let sched_config =
      if config.force_incremental then
        { S.default_config with mode; incremental_budget = max_int / 4 }
      else { S.default_config with mode }
    in
    S.create ~config:sched_config cluster
      ~policy:(fun ~drain net st -> Firmament.Policy_quincy.make ~drain net st)
  in
  let st =
    {
      sched;
      cluster;
      cfg = config;
      mode;
      finished = Hashtbl.create 64;
      now = 0.;
      round_idx = 0;
      event_idx = 0;
      pending = None;
      pending_t0 = 0;
      sync_round = false;
      fail = None;
    }
  in
  S.set_round_observer sched
    (Some (fun r g ~certified -> check_round st r g ~certified));
  let saved_floor = !Mcmf.Cost_scaling.debug_eps_floor in
  Mcmf.Cost_scaling.debug_eps_floor := max 1 config.inject_eps;
  Fun.protect
    ~finally:(fun () -> Mcmf.Cost_scaling.debug_eps_floor := saved_floor)
    (fun () ->
      (try
         List.iteri
           (fun i ev ->
             if st.fail = None then begin
               st.event_idx <- i;
               apply_event st ev;
               st.now <- st.now +. 0.5
             end)
           events;
         if st.fail = None then commit_pending st
       with exn ->
         record st "exception"
           (Printf.sprintf "event %d raised %s" st.event_idx
              (Printexc.to_string exn)));
      match st.fail with Some f -> Error f | None -> Ok ())

let run config events =
  let rec go = function
    | [] -> Ok ()
    | mode :: rest -> (
        match run_mode config mode events with
        | Ok () -> go rest
        | Error f -> Error f)
  in
  go config.modes
