(** Trace minimization: delta debugging (ddmin-style chunk bisection)
    followed by per-event simplification, against an arbitrary failure
    predicate. Used by [firmament_fuzz] to turn a failing churn trace
    into a minimal repro before writing the artifact. *)

(** [minimize ~fails ?simplify events] returns a sublist of [events]
    (with individual events possibly replaced by [simplify] candidates)
    on which [fails] still returns [true]. [fails events] itself must be
    [true] on entry — the result is then {e 1-minimal} with respect to
    single-event removal: deleting any one remaining event makes the
    failure disappear (assuming a deterministic predicate; a flaky one
    only costs minimality, never validity).

    [simplify ev] proposes cheaper stand-ins tried in order after the
    length is minimal (e.g. a one-task job for a five-task job); the
    first candidate that keeps the trace failing is kept.

    The predicate is invoked O(n log n + n·k) times for n events and k
    simplification candidates each. *)
val minimize :
  fails:('a list -> bool) -> ?simplify:('a -> 'a list) -> 'a list -> 'a list

(** [simplify_event ev] — the standard candidate list for churn events:
    drop a deadline poll budget, shrink a job to one task, a perturbation
    to one arc. *)
val simplify_event : Dcsim.Churn.event -> Dcsim.Churn.event list
