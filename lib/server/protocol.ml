type placement_kind = Start | Migrate | Preempt

type placement = {
  p_tid : int;
  p_kind : placement_kind;
  p_machine : int;
  p_from : int;
}

type frame =
  | Submit_job of {
      seq : int;
      jid : int;
      task_count : int;
      duration : float;
      locality : int;
    }
  | Finish_task of { seq : int; tid : int }
  | Preempt_task of { seq : int; tid : int }
  | Fail_machine of { seq : int; machine : int }
  | Restore_machine of { seq : int; machine : int }
  | Subscribe of { seq : int }
  | Stats_query of { seq : int }
  | Ack of { seq : int }
  | Nack of { seq : int; retry_after_ms : int }
  | Placement_delta of { round : int; placements : placement list }
  | Stats_reply of { seq : int; json : string }
  | Shutdown of { reason : string }
  | Protocol_error of { message : string }

let pp_kind ppf = function
  | Start -> Format.pp_print_string ppf "start"
  | Migrate -> Format.pp_print_string ppf "migrate"
  | Preempt -> Format.pp_print_string ppf "preempt"

let pp ppf = function
  | Submit_job { seq; jid; task_count; duration; locality } ->
      Format.fprintf ppf "submit_job[%d] jid=%d tasks=%d dur=%g loc=%d" seq jid
        task_count duration locality
  | Finish_task { seq; tid } -> Format.fprintf ppf "finish_task[%d] tid=%d" seq tid
  | Preempt_task { seq; tid } -> Format.fprintf ppf "preempt_task[%d] tid=%d" seq tid
  | Fail_machine { seq; machine } ->
      Format.fprintf ppf "fail_machine[%d] m=%d" seq machine
  | Restore_machine { seq; machine } ->
      Format.fprintf ppf "restore_machine[%d] m=%d" seq machine
  | Subscribe { seq } -> Format.fprintf ppf "subscribe[%d]" seq
  | Stats_query { seq } -> Format.fprintf ppf "stats_query[%d]" seq
  | Ack { seq } -> Format.fprintf ppf "ack[%d]" seq
  | Nack { seq; retry_after_ms } ->
      Format.fprintf ppf "nack[%d] retry_after=%dms" seq retry_after_ms
  | Placement_delta { round; placements } ->
      Format.fprintf ppf "placement_delta round=%d (%d placements:" round
        (List.length placements);
      List.iter
        (fun p ->
          Format.fprintf ppf " %d:%a@%d" p.p_tid pp_kind p.p_kind p.p_machine)
        placements;
      Format.pp_print_string ppf ")"
  | Stats_reply { seq; json } -> Format.fprintf ppf "stats_reply[%d] %s" seq json
  | Shutdown { reason } -> Format.fprintf ppf "shutdown (%s)" reason
  | Protocol_error { message } -> Format.fprintf ppf "protocol_error (%s)" message

(* {1 CRC-32 (IEEE), table-driven} *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s ~off ~len =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let crc32_bytes b ~off ~len =
  crc32 (Bytes.unsafe_to_string b) ~off ~len

(* {1 Encoding} *)

let version = 1
let header_size = 12
let max_payload = 1 lsl 20
let magic0 = '\xF1'
let magic1 = '\x4D'

let tag_of = function
  | Submit_job _ -> 0x01
  | Finish_task _ -> 0x02
  | Preempt_task _ -> 0x03
  | Fail_machine _ -> 0x04
  | Restore_machine _ -> 0x05
  | Subscribe _ -> 0x06
  | Stats_query _ -> 0x07
  | Ack _ -> 0x81
  | Nack _ -> 0x82
  | Placement_delta _ -> 0x83
  | Stats_reply _ -> 0x84
  | Shutdown _ -> 0x85
  | Protocol_error _ -> 0x86

let add_u32 b v = Buffer.add_int32_be b (Int32.of_int (v land 0xFFFFFFFF))
let add_u16 b v = Buffer.add_uint16_be b (v land 0xFFFF)
let add_i64 b v = Buffer.add_int64_be b (Int64.of_int v)

let kind_code = function Start -> 0 | Migrate -> 1 | Preempt -> 2

let payload_of f =
  let b = Buffer.create 32 in
  (match f with
  | Submit_job { seq; jid; task_count; duration; locality } ->
      add_u32 b seq;
      add_u32 b jid;
      add_u16 b task_count;
      add_u32 b locality;
      Buffer.add_int64_be b (Int64.bits_of_float duration)
  | Finish_task { seq; tid } | Preempt_task { seq; tid } ->
      add_u32 b seq;
      add_i64 b tid
  | Fail_machine { seq; machine } | Restore_machine { seq; machine } ->
      add_u32 b seq;
      add_u32 b machine
  | Subscribe { seq } | Stats_query { seq } | Ack { seq } -> add_u32 b seq
  | Nack { seq; retry_after_ms } ->
      add_u32 b seq;
      add_u32 b retry_after_ms
  | Placement_delta { round; placements } ->
      add_u32 b round;
      add_u16 b (List.length placements);
      List.iter
        (fun p ->
          Buffer.add_uint8 b (kind_code p.p_kind);
          add_i64 b p.p_tid;
          add_u32 b p.p_machine;
          add_u32 b p.p_from)
        placements
  | Stats_reply { seq; json } ->
      add_u32 b seq;
      Buffer.add_string b json
  | Shutdown { reason } -> Buffer.add_string b reason
  | Protocol_error { message } -> Buffer.add_string b message);
  Buffer.contents b

let encode_into b f =
  let payload = payload_of f in
  let len = String.length payload in
  if len > max_payload then
    invalid_arg "Protocol.encode: payload exceeds max_payload";
  Buffer.add_char b magic0;
  Buffer.add_char b magic1;
  Buffer.add_uint8 b version;
  Buffer.add_uint8 b (tag_of f);
  add_u32 b len;
  add_u32 b (crc32 payload ~off:0 ~len);
  Buffer.add_string b payload

let encode f =
  let b = Buffer.create 64 in
  encode_into b f;
  Buffer.contents b

(* {1 Decoding} *)

type error =
  | Bad_magic
  | Bad_version of int
  | Unknown_tag of int
  | Oversized of int
  | Crc_mismatch
  | Malformed of string

let pp_error ppf = function
  | Bad_magic -> Format.pp_print_string ppf "bad magic"
  | Bad_version v -> Format.fprintf ppf "unsupported protocol version %d" v
  | Unknown_tag t -> Format.fprintf ppf "unknown frame tag 0x%02x" t
  | Oversized n -> Format.fprintf ppf "payload length %d exceeds %d" n max_payload
  | Crc_mismatch -> Format.pp_print_string ppf "payload CRC mismatch"
  | Malformed m -> Format.fprintf ppf "malformed payload: %s" m

exception Bad of string

(* Cursor over the payload slice; every read is bounds-checked against the
   declared payload length, and the parser must consume it exactly. *)
type cursor = { buf : Bytes.t; limit : int; mutable pos : int }

let need c n =
  if c.pos + n > c.limit then raise (Bad "truncated field")

let u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let u16 c =
  need c 2;
  let v = Bytes.get_uint16_be c.buf c.pos in
  c.pos <- c.pos + 2;
  v

let u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_be c.buf c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let i64 c =
  need c 8;
  let v = Bytes.get_int64_be c.buf c.pos in
  c.pos <- c.pos + 8;
  match Int64.unsigned_to_int v with
  | Some n -> n
  | None -> raise (Bad "64-bit field out of int range")

let f64 c =
  need c 8;
  let v = Int64.float_of_bits (Bytes.get_int64_be c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let rest_string c =
  let s = Bytes.sub_string c.buf c.pos (c.limit - c.pos) in
  c.pos <- c.limit;
  s

(* Signed-on-the-wire machine ids: 0xFFFFFFFF denotes -1 (no machine). *)
let machine_of_u32 v = if v = 0xFFFFFFFF then -1 else v

let parse_payload tag c =
  match tag with
  | 0x01 ->
      let seq = u32 c in
      let jid = u32 c in
      let task_count = u16 c in
      let locality = u32 c in
      let duration = f64 c in
      if task_count < 1 || task_count > 1000 then
        raise (Bad "task_count out of range 1..1000");
      if not (Float.is_finite duration) || duration < 0. then
        raise (Bad "duration must be a non-negative finite float");
      Submit_job { seq; jid; task_count; duration; locality }
  | 0x02 ->
      let seq = u32 c in
      let tid = i64 c in
      Finish_task { seq; tid }
  | 0x03 ->
      let seq = u32 c in
      let tid = i64 c in
      Preempt_task { seq; tid }
  | 0x04 ->
      let seq = u32 c in
      let machine = u32 c in
      Fail_machine { seq; machine }
  | 0x05 ->
      let seq = u32 c in
      let machine = u32 c in
      Restore_machine { seq; machine }
  | 0x06 -> Subscribe { seq = u32 c }
  | 0x07 -> Stats_query { seq = u32 c }
  | 0x81 -> Ack { seq = u32 c }
  | 0x82 ->
      let seq = u32 c in
      let retry_after_ms = u32 c in
      Nack { seq; retry_after_ms }
  | 0x83 ->
      let round = u32 c in
      let n = u16 c in
      let rec go k acc =
        if k = 0 then List.rev acc
        else begin
          let kind =
            match u8 c with
            | 0 -> Start
            | 1 -> Migrate
            | 2 -> Preempt
            | k -> raise (Bad (Printf.sprintf "unknown placement kind %d" k))
          in
          let p_tid = i64 c in
          let p_machine = machine_of_u32 (u32 c) in
          let p_from = machine_of_u32 (u32 c) in
          go (k - 1) ({ p_tid; p_kind = kind; p_machine; p_from } :: acc)
        end
      in
      Placement_delta { round; placements = go n [] }
  | 0x84 ->
      let seq = u32 c in
      let json = rest_string c in
      Stats_reply { seq; json }
  | 0x85 -> Shutdown { reason = rest_string c }
  | 0x86 -> Protocol_error { message = rest_string c }
  | _ -> assert false (* tag validated before parsing *)

let known_tag = function
  | 0x01 | 0x02 | 0x03 | 0x04 | 0x05 | 0x06 | 0x07 | 0x81 | 0x82 | 0x83 | 0x84
  | 0x85 | 0x86 ->
      true
  | _ -> false

let decode buf ~off ~len =
  if len < 4 then
    (* Not enough for magic+version+tag; still validate what is there so a
       poisoned stream is rejected as early as possible. *)
    if len >= 1 && Bytes.get buf off <> magic0 then `Error Bad_magic
    else if len >= 2 && Bytes.get buf (off + 1) <> magic1 then `Error Bad_magic
    else if len >= 3 && Bytes.get_uint8 buf (off + 2) <> version then
      `Error (Bad_version (Bytes.get_uint8 buf (off + 2)))
    else `Need_more
  else if Bytes.get buf off <> magic0 || Bytes.get buf (off + 1) <> magic1 then
    `Error Bad_magic
  else if Bytes.get_uint8 buf (off + 2) <> version then
    `Error (Bad_version (Bytes.get_uint8 buf (off + 2)))
  else begin
    let tag = Bytes.get_uint8 buf (off + 3) in
    if not (known_tag tag) then `Error (Unknown_tag tag)
    else if len < header_size then `Need_more
    else begin
      let plen =
        Int32.to_int (Bytes.get_int32_be buf (off + 4)) land 0xFFFFFFFF
      in
      if plen > max_payload then `Error (Oversized plen)
      else if len < header_size + plen then `Need_more
      else begin
        let crc_declared =
          Int32.to_int (Bytes.get_int32_be buf (off + 8)) land 0xFFFFFFFF
        in
        if crc32_bytes buf ~off:(off + header_size) ~len:plen <> crc_declared
        then `Error Crc_mismatch
        else begin
          let c = { buf; limit = off + header_size + plen; pos = off + header_size } in
          match parse_payload tag c with
          | f ->
              if c.pos <> c.limit then
                `Error (Malformed "trailing bytes after payload")
              else `Frame (f, header_size + plen)
          | exception Bad m -> `Error (Malformed m)
        end
      end
    end
  end
