module S = Firmament.Scheduler
module W = Cluster.Workload
module P = Protocol

(* {1 Telemetry} *)

let m = Telemetry.Metrics.global ()

let m_connections_total =
  Telemetry.Metrics.counter m ~help:"client connections accepted"
    "srv_connections_total"

let m_connections_active =
  Telemetry.Metrics.gauge m ~help:"client connections currently open"
    "srv_connections_active"

let m_frames_in =
  Telemetry.Metrics.counter m ~help:"frames decoded from clients"
    "srv_frames_in_total"

let m_frames_out =
  Telemetry.Metrics.counter m ~help:"frames enqueued to clients"
    "srv_frames_out_total"

let m_protocol_errors =
  Telemetry.Metrics.counter m
    ~help:"malformed frames (connection rejected, server kept serving)"
    "srv_protocol_errors_total"

let m_events_admitted =
  Telemetry.Metrics.counter m ~help:"events accepted into the admission queue"
    "srv_events_admitted_total"

let m_events_nacked =
  Telemetry.Metrics.counter m
    ~help:"events refused with a NACK (admission queue full or shutting down)"
    "srv_events_nacked_total"

let m_events_applied =
  Telemetry.Metrics.counter m ~help:"admitted events applied to the scheduler"
    "srv_events_applied_total"

let m_events_dropped =
  Telemetry.Metrics.counter m
    ~help:"admitted events dropped as inapplicable (unknown task, dead \
           machine, duplicate job id, out-of-range machine id)"
    "srv_events_dropped_total"

let m_events_dropped_shutdown =
  Telemetry.Metrics.counter m
    ~help:"admitted events discarded by the shutdown drain"
    "srv_events_dropped_shutdown_total"

let m_queue_depth =
  Telemetry.Metrics.gauge m ~help:"admission queue depth" "srv_queue_depth"

let m_admission_wait_ns =
  Telemetry.Metrics.histogram m
    ~help:"admission-to-application wait per event (ns)" "srv_admission_wait_ns"

let m_batches =
  Telemetry.Metrics.counter m ~help:"admission batches applied" "srv_batches_total"

let m_batch_size =
  Telemetry.Metrics.histogram m ~help:"events per admission batch"
    "srv_batch_size"

let m_rounds =
  Telemetry.Metrics.counter m ~help:"scheduling rounds committed by the service"
    "srv_rounds_total"

let m_round_ns =
  Telemetry.Metrics.histogram m ~help:"begin-to-commit round wall time (ns)"
    "srv_round_ns"

let m_placements_pushed =
  Telemetry.Metrics.counter m ~help:"placements pushed to subscribers"
    "srv_placements_pushed_total"

let m_subscribers =
  Telemetry.Metrics.gauge m ~help:"current placement subscribers"
    "srv_subscribers"

let m_submit_to_push_ns =
  Telemetry.Metrics.histogram m
    ~help:"admission-to-placement-push latency per started task (ns)"
    "srv_submit_to_push_ns"

let m_slow_consumer_drops =
  Telemetry.Metrics.counter m
    ~help:"connections dropped for exceeding the outbound buffer cap"
    "srv_slow_consumer_drops_total"

let m_shutdowns =
  Telemetry.Metrics.counter m ~help:"graceful shutdown drains completed"
    "srv_shutdowns_total"

(* {1 Config} *)

type listen = Tcp of string * int | Unix_path of string

let listen_of_string s =
  match String.index_opt s ':' with
  | Some 4 when String.length s > 5 && String.sub s 0 5 = "unix:" ->
      Ok (Unix_path (String.sub s 5 (String.length s - 5)))
  | Some _ -> (
      match String.rindex_opt s ':' with
      | Some i -> (
          let host = String.sub s 0 i in
          let port = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 ->
              Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
          | _ -> Error (Printf.sprintf "invalid port %S" port))
      | None -> assert false)
  | None -> Error (Printf.sprintf "expected HOST:PORT or unix:PATH, got %S" s)

let pp_listen ppf = function
  | Tcp (h, p) -> Format.fprintf ppf "%s:%d" h p
  | Unix_path p -> Format.fprintf ppf "unix:%s" p

type config = {
  listen : listen;
  metrics_listen : listen option;
  machines : int;
  machines_per_rack : int;
  slots_per_machine : int;
  scheduler : S.config;
  policy :
    drain:bool -> Firmament.Flow_network.t -> Cluster.State.t -> Firmament.Policy.t;
  batch_max : int;
  linger_s : float;
  queue_capacity : int;
  max_out_buffer : int;
  shutdown_grace_s : float;
}

let default_config =
  {
    listen = Tcp ("127.0.0.1", 7117);
    metrics_listen = None;
    machines = 250;
    machines_per_rack = 8;
    slots_per_machine = 16;
    scheduler = S.default_config;
    policy = (fun ~drain net st -> Firmament.Policy_quincy.make ~drain net st);
    batch_max = 1024;
    linger_s = 0.02;
    queue_capacity = 4096;
    max_out_buffer = 8 * 1024 * 1024;
    shutdown_grace_s = 1.0;
  }

(* {1 Connections} *)

type conn = {
  cid : int;
  fd : Unix.file_descr;
  mutable inbuf : Bytes.t;
  mutable inlen : int;
  out : Buffer.t;
  mutable out_off : int;
  mutable closing : bool;  (* flush remaining output, then close *)
  mutable alive : bool;
}

type ev =
  | Ev_submit of { jid : int; tasks : int; duration : float; locality : int }
  | Ev_finish of int
  | Ev_preempt of int
  | Ev_fail of int
  | Ev_restore of int

type admitted = { ev : ev; t_admit_ns : int }

type t = {
  cfg : config;
  listener : Unix.file_descr;
  metrics_listener : Unix.file_descr option;
  sched : S.t;
  clu : Cluster.State.t;
  queue : admitted Admission.t;
  hub : Hub.t;
  conns : (int, conn) Hashtbl.t;
  http_conns : (int, conn) Hashtbl.t;
  mutable next_cid : int;
  t0_ns : int;
  mutable pending : S.pending option;
  mutable pending_t0_ns : int;
  mutable last_round_ns : int;
  jids : (int, unit) Hashtbl.t;
  submit_ns : (int, int) Hashtbl.t;  (* tid -> admission ns, until first start *)
  mutable shutdown_requested : bool;
  mutable finished : bool;
  mutable rounds : int;
}

let now_ns () = Telemetry.Clock.now_ns ()
let now_s t = float_of_int (now_ns () - t.t0_ns) *. 1e-9

let bind_listener = function
  | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      fd
  | Unix_path path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      fd

let create cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let topo =
    Cluster.Topology.make ~machines:cfg.machines
      ~machines_per_rack:cfg.machines_per_rack
      ~slots_per_machine:cfg.slots_per_machine ()
  in
  let clu = Cluster.State.create topo in
  let sched = S.create ~config:cfg.scheduler clu ~policy:cfg.policy in
  let listener = bind_listener cfg.listen in
  let metrics_listener = Option.map bind_listener cfg.metrics_listen in
  let t0 = now_ns () in
  {
    cfg;
    listener;
    metrics_listener;
    sched;
    clu;
    queue = Admission.create ~capacity:cfg.queue_capacity;
    hub = Hub.create ();
    conns = Hashtbl.create 64;
    http_conns = Hashtbl.create 4;
    next_cid = 0;
    t0_ns = t0;
    pending = None;
    pending_t0_ns = t0;
    last_round_ns = t0;
    jids = Hashtbl.create 4096;
    submit_ns = Hashtbl.create 4096;
    shutdown_requested = false;
    finished = false;
    rounds = 0;
  }

let scheduler t = t.sched
let cluster t = t.clu
let rounds_committed t = t.rounds
let connections t = Hashtbl.length t.conns
let request_shutdown t = t.shutdown_requested <- true
let finished t = t.finished

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    Hub.unsubscribe t.hub ~id:conn.cid;
    Telemetry.Metrics.set m m_subscribers (Hub.count t.hub);
    Hashtbl.remove t.conns conn.cid;
    Hashtbl.remove t.http_conns conn.cid;
    close_fd conn.fd;
    Telemetry.Metrics.set m m_connections_active (Hashtbl.length t.conns)
  end

let out_pending conn = Buffer.length conn.out - conn.out_off

(* Enqueue bytes; a consumer that lets its buffer exceed the cap is
   dropped — a wedged subscriber must not hold round results hostage. *)
let enqueue t conn s =
  if conn.alive then begin
    if out_pending conn + String.length s > t.cfg.max_out_buffer then begin
      Telemetry.Metrics.incr m m_slow_consumer_drops;
      close_conn t conn
    end
    else Buffer.add_string conn.out s
  end

let send_frame t conn f =
  Telemetry.Metrics.incr m m_frames_out;
  enqueue t conn (P.encode f)

let flush_conn t conn =
  let rec go () =
    let pending = out_pending conn in
    if pending > 0 then begin
      let chunk = min pending 65536 in
      let s = Buffer.sub conn.out conn.out_off chunk in
      match Unix.write_substring conn.fd s 0 chunk with
      | n ->
          conn.out_off <- conn.out_off + n;
          if n = chunk then go ()
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          close_conn t conn
    end
  in
  go ();
  if conn.alive && out_pending conn = 0 then begin
    Buffer.clear conn.out;
    conn.out_off <- 0;
    if conn.closing then close_conn t conn
  end

(* {1 Event application} *)

(* Mirrors the fuzz harness's churn interpretation: synthetic locality
   blocks derived from the submit's locality seed, tid = jid*1000+i. *)
let apply_submit t ~jid ~tasks ~duration ~locality ~t_admit_ns =
  if Hashtbl.mem t.jids jid then Telemetry.Metrics.incr m m_events_dropped
  else begin
    Hashtbl.add t.jids jid ();
    let now = now_s t in
    let machines = t.cfg.machines in
    let task_arr =
      Array.init tasks (fun i ->
          let block b = (locality + (i * 7) + (b * 13)) mod machines in
          let tid = (jid * 1000) + i in
          Hashtbl.replace t.submit_ns tid t_admit_ns;
          W.make_task ~tid ~job:jid ~submit_time:now ~duration
            ~input_mb:(float_of_int (100 + (100 * (locality mod 8))))
            ~input_machines:[ block 0; block 1; block 2 ]
            ())
    in
    let klass =
      if locality mod 5 = 0 then Cluster.Types.Service else Cluster.Types.Batch
    in
    S.submit_job t.sched (W.make_job ~jid ~klass ~submit_time:now ~tasks:task_arr)
  end

let task_running t tid =
  match Cluster.State.task t.clu tid with
  | task -> W.is_running task
  | exception _ -> false

let apply_event t (a : admitted) =
  Telemetry.Metrics.observe m m_admission_wait_ns (now_ns () - a.t_admit_ns);
  Telemetry.Metrics.incr m m_events_applied;
  match a.ev with
  | Ev_submit { jid; tasks; duration; locality } ->
      apply_submit t ~jid ~tasks ~duration ~locality ~t_admit_ns:a.t_admit_ns
  | Ev_finish tid ->
      if task_running t tid then begin
        S.finish_task t.sched tid ~now:(now_s t);
        Hashtbl.remove t.submit_ns tid
      end
      else Telemetry.Metrics.incr m m_events_dropped
  | Ev_preempt tid ->
      if task_running t tid then S.preempt_task t.sched tid
      else Telemetry.Metrics.incr m m_events_dropped
  | Ev_fail mid ->
      if mid >= 0 && mid < t.cfg.machines && Cluster.State.machine_is_live t.clu mid
      then S.fail_machine t.sched mid
      else Telemetry.Metrics.incr m m_events_dropped
  | Ev_restore mid ->
      if
        mid >= 0 && mid < t.cfg.machines
        && not (Cluster.State.machine_is_live t.clu mid)
      then S.restore_machine t.sched mid
      else Telemetry.Metrics.incr m m_events_dropped

let drain_apply t ~max_events =
  let applied = ref 0 in
  let continue = ref true in
  while !continue && !applied < max_events do
    match Admission.pop t.queue with
    | None -> continue := false
    | Some a ->
        apply_event t a;
        incr applied
  done;
  Telemetry.Metrics.set m m_queue_depth (Admission.length t.queue);
  !applied

(* {1 Round driving} *)

let push_placements t (r : S.round) =
  let placements =
    List.map
      (fun (tid, mm) -> { P.p_tid = tid; p_kind = P.Start; p_machine = mm; p_from = -1 })
      r.S.started
    @ List.map
        (fun (tid, mfrom, mto) ->
          { P.p_tid = tid; p_kind = P.Migrate; p_machine = mto; p_from = mfrom })
        r.S.migrated
    @ List.map
        (fun tid -> { P.p_tid = tid; p_kind = P.Preempt; p_machine = -1; p_from = -1 })
        r.S.preempted
  in
  let t_now = now_ns () in
  List.iter
    (fun (tid, _) ->
      match Hashtbl.find_opt t.submit_ns tid with
      | Some t_admit ->
          Telemetry.Metrics.observe m m_submit_to_push_ns (t_now - t_admit);
          Hashtbl.remove t.submit_ns tid
      | None -> ())
    r.S.started;
  match placements with
  | [] -> ()
  | _ when Hub.count t.hub = 0 -> ()
  | _ ->
      (* Placement_delta caps its count field at 65535; chunk huge rounds. *)
      let rec chunks acc = function
        | [] -> List.rev acc
        | l ->
            let rec take n acc l =
              match (n, l) with
              | 0, rest | _, ([] as rest) -> (List.rev acc, rest)
              | n, x :: rest -> take (n - 1) (x :: acc) rest
            in
            let chunk, rest = take 60_000 [] l in
            chunks (chunk :: acc) rest
      in
      List.iter
        (fun chunk ->
          let bytes =
            P.encode (P.Placement_delta { round = t.rounds; placements = chunk })
          in
          let n = Hub.broadcast t.hub bytes in
          Telemetry.Metrics.add m m_frames_out n;
          Telemetry.Metrics.add m m_placements_pushed (n * List.length chunk))
        (chunks [] placements)

let commit_pending t p =
  t.pending <- None;
  let r = S.commit_round t.sched p ~now:(now_s t) in
  t.rounds <- t.rounds + 1;
  let t_now = now_ns () in
  t.last_round_ns <- t_now;
  Telemetry.Metrics.incr m m_rounds;
  Telemetry.Metrics.observe m m_round_ns (t_now - t.pending_t0_ns);
  push_placements t r

let linger_ns t = int_of_float (t.cfg.linger_s *. 1e9)

let drive_rounds t =
  match t.pending with
  | Some p ->
      (* Ingestion overlapping the in-flight solve: apply what queued. *)
      if not (Admission.is_empty t.queue) then
        ignore (drain_apply t ~max_events:t.cfg.batch_max);
      if S.poll t.sched p then commit_pending t p
  | None ->
      let t_now = now_ns () in
      let lingered =
        match Admission.peek t.queue with
        | Some a -> t_now - a.t_admit_ns >= linger_ns t
        | None -> false
      in
      let backlog =
        Cluster.State.waiting_count t.clu > 0
        && t_now - t.last_round_ns >= linger_ns t
      in
      if Admission.length t.queue >= t.cfg.batch_max || lingered || backlog then begin
        let applied = drain_apply t ~max_events:t.cfg.batch_max in
        Telemetry.Metrics.incr m m_batches;
        Telemetry.Metrics.observe m m_batch_size applied;
        t.pending_t0_ns <- now_ns ();
        let p = S.begin_round t.sched ~now:(now_s t) in
        t.pending <- Some p;
        (* Sequential modes solved eagerly inside begin_round: commit now
           rather than waiting a select cycle. *)
        if S.poll t.sched p then commit_pending t p
      end

(* {1 Frame handling} *)

let stats_json t =
  let waiting = Cluster.State.waiting_count t.clu in
  let live = Cluster.State.live_task_count t.clu in
  Printf.sprintf
    "{\"uptime_s\":%.3f,\"rounds\":%d,\"machines\":%d,\"waiting\":%d,\"running\":%d,\"queue_depth\":%d,\"connections\":%d,\"subscribers\":%d,\"utilization\":%.4f}"
    (now_s t) t.rounds t.cfg.machines waiting (live - waiting)
    (Admission.length t.queue)
    (Hashtbl.length t.conns) (Hub.count t.hub)
    (Cluster.State.utilization t.clu)

let retry_after_ms t = max 1 (int_of_float (t.cfg.linger_s *. 2_000.))

let reject_conn t conn message =
  Telemetry.Metrics.incr m m_protocol_errors;
  send_frame t conn (P.Protocol_error { message });
  conn.closing <- true

let admit t conn ~seq ev =
  if t.shutdown_requested then begin
    Telemetry.Metrics.incr m m_events_nacked;
    send_frame t conn (P.Nack { seq; retry_after_ms = 0 })
  end
  else if Admission.push t.queue { ev; t_admit_ns = now_ns () } then begin
    Telemetry.Metrics.incr m m_events_admitted;
    Telemetry.Metrics.set m m_queue_depth (Admission.length t.queue);
    send_frame t conn (P.Ack { seq })
  end
  else begin
    Telemetry.Metrics.incr m m_events_nacked;
    send_frame t conn (P.Nack { seq; retry_after_ms = retry_after_ms t })
  end

let handle_frame t conn (f : P.frame) =
  Telemetry.Metrics.incr m m_frames_in;
  match f with
  | P.Submit_job { seq; jid; task_count; duration; locality } ->
      admit t conn ~seq (Ev_submit { jid; tasks = task_count; duration; locality })
  | P.Finish_task { seq; tid } -> admit t conn ~seq (Ev_finish tid)
  | P.Preempt_task { seq; tid } -> admit t conn ~seq (Ev_preempt tid)
  | P.Fail_machine { seq; machine } -> admit t conn ~seq (Ev_fail machine)
  | P.Restore_machine { seq; machine } -> admit t conn ~seq (Ev_restore machine)
  | P.Subscribe { seq } ->
      Hub.subscribe t.hub ~id:conn.cid ~send:(fun bytes -> enqueue t conn bytes);
      Telemetry.Metrics.set m m_subscribers (Hub.count t.hub);
      send_frame t conn (P.Ack { seq })
  | P.Stats_query { seq } ->
      send_frame t conn (P.Stats_reply { seq; json = stats_json t })
  | P.Ack _ | P.Nack _ | P.Placement_delta _ | P.Stats_reply _ | P.Shutdown _
  | P.Protocol_error _ ->
      reject_conn t conn "unexpected server-role frame from client"

let in_cap = P.header_size + P.max_payload

let handle_readable t conn =
  (* Read what the kernel has, then decode as many frames as arrived. *)
  let progress = ref true in
  while !progress && conn.alive && not conn.closing do
    progress := false;
    if conn.inlen = Bytes.length conn.inbuf && conn.inlen < in_cap then begin
      let bigger = Bytes.create (min in_cap (max 4096 (2 * conn.inlen))) in
      Bytes.blit conn.inbuf 0 bigger 0 conn.inlen;
      conn.inbuf <- bigger
    end;
    let room = Bytes.length conn.inbuf - conn.inlen in
    if room > 0 then begin
      match Unix.read conn.fd conn.inbuf conn.inlen room with
      | 0 -> close_conn t conn
      | n ->
          conn.inlen <- conn.inlen + n;
          progress := n = room;
          let off = ref 0 in
          let decoding = ref true in
          while !decoding && conn.alive && not conn.closing do
            match P.decode conn.inbuf ~off:!off ~len:(conn.inlen - !off) with
            | `Frame (f, consumed) ->
                off := !off + consumed;
                handle_frame t conn f
            | `Need_more -> decoding := false
            | `Error e ->
                reject_conn t conn (Format.asprintf "%a" P.pp_error e);
                decoding := false
          done;
          if !off > 0 then begin
            Bytes.blit conn.inbuf !off conn.inbuf 0 (conn.inlen - !off);
            conn.inlen <- conn.inlen - !off
          end
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          close_conn t conn
    end
    else if conn.inlen >= in_cap then
      (* A frame larger than header+max_payload can never decode; the
         decoder has necessarily reported Oversized already. *)
      close_conn t conn
  done

(* {1 Prometheus scrape endpoint} *)

let handle_http_readable t conn =
  match Unix.read conn.fd conn.inbuf conn.inlen (Bytes.length conn.inbuf - conn.inlen) with
  | 0 -> close_conn t conn
  | n ->
      conn.inlen <- conn.inlen + n;
      let req = Bytes.sub_string conn.inbuf 0 conn.inlen in
      (* Serve any complete GET request; we only have one resource. *)
      let complete =
        let len = String.length req in
        len >= 4 && String.sub req (len - 4) 4 = "\r\n\r\n"
      in
      if complete then begin
        let body = Telemetry.Export.prometheus_string (Telemetry.Metrics.global ()) in
        let resp =
          Printf.sprintf
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: %d\r\n\r\n%s"
            (String.length body) body
        in
        enqueue t conn resp;
        conn.closing <- true
      end
      else if conn.inlen = Bytes.length conn.inbuf then close_conn t conn
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn t conn

(* {1 Accept} *)

let accept_loop t listener ~http =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true listener with
    | fd, _addr ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let cid = t.next_cid in
        t.next_cid <- cid + 1;
        let conn =
          {
            cid;
            fd;
            inbuf = Bytes.create 4096;
            inlen = 0;
            out = Buffer.create 4096;
            out_off = 0;
            closing = false;
            alive = true;
          }
        in
        if http then Hashtbl.replace t.http_conns cid conn
        else begin
          Hashtbl.replace t.conns cid conn;
          Telemetry.Metrics.incr m m_connections_total;
          Telemetry.Metrics.set m m_connections_active (Hashtbl.length t.conns)
        end
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* {1 Shutdown drain} *)

let do_shutdown t =
  (* 1. Finish the round in flight (the configured deadline, if any,
     bounds this via the PR 1 degradation ladder) and push its deltas. *)
  (match t.pending with Some p -> commit_pending t p | None -> ());
  (* 2. Remaining admitted-but-unapplied events are dropped, visibly. *)
  let dropped = Admission.length t.queue in
  if dropped > 0 then begin
    Telemetry.Metrics.add m m_events_dropped_shutdown dropped;
    while not (Admission.is_empty t.queue) do
      ignore (Admission.pop t.queue)
    done
  end;
  Telemetry.Metrics.set m m_queue_depth 0;
  (* 3. Orderly goodbye on every connection, then a bounded flush. *)
  let goodbye = P.encode (P.Shutdown { reason = "server shutting down" }) in
  let live = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter
    (fun c ->
      Telemetry.Metrics.incr m m_frames_out;
      enqueue t c goodbye;
      c.closing <- true)
    live;
  let deadline = now_ns () + int_of_float (t.cfg.shutdown_grace_s *. 1e9) in
  let rec flush_all () =
    let pending =
      Hashtbl.fold (fun _ c acc -> if out_pending c > 0 then c :: acc else acc)
        t.conns []
    in
    if pending <> [] && now_ns () < deadline then begin
      let wfds = List.map (fun c -> c.fd) pending in
      (match Unix.select [] wfds [] 0.05 with
      | _, w, _ ->
          List.iter
            (fun c -> if List.mem c.fd w then flush_conn t c)
            pending
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      flush_all ()
    end
  in
  flush_all ();
  Hashtbl.iter (fun _ c -> close_fd c.fd) t.conns;
  Hashtbl.iter (fun _ c -> close_fd c.fd) t.http_conns;
  Hashtbl.reset t.conns;
  Hashtbl.reset t.http_conns;
  close_fd t.listener;
  Option.iter close_fd t.metrics_listener;
  Telemetry.Metrics.set m m_connections_active 0;
  Telemetry.Metrics.incr m m_shutdowns;
  t.finished <- true

(* {1 The event loop} *)

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []
let http_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.http_conns []

let step t ~timeout_s =
  if t.finished then ()
  else if t.shutdown_requested then do_shutdown t
  else begin
    let conns = conn_list t in
    let https = http_list t in
    let rfds =
      t.listener
      :: (match t.metrics_listener with Some fd -> [ fd ] | None -> [])
      @ List.filter_map
          (fun c -> if c.alive && not c.closing then Some c.fd else None)
          (conns @ https)
    in
    let wfds =
      List.filter_map
        (fun c -> if c.alive && out_pending c > 0 then Some c.fd else None)
        (conns @ https)
    in
    (match Unix.select rfds wfds [] timeout_s with
    | r, w, _ ->
        if List.mem t.listener r then accept_loop t t.listener ~http:false;
        (match t.metrics_listener with
        | Some fd when List.mem fd r -> accept_loop t fd ~http:true
        | _ -> ());
        List.iter
          (fun c -> if c.alive && List.mem c.fd r then handle_readable t c)
          conns;
        List.iter
          (fun c -> if c.alive && List.mem c.fd r then handle_http_readable t c)
          https;
        List.iter
          (fun c -> if c.alive && List.mem c.fd w then flush_conn t c)
          (conns @ https)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    if t.shutdown_requested then do_shutdown t
    else begin
      drive_rounds t;
      (* Frames produced by round commits (acks, deltas) go out without
         waiting for the next select round when the sockets allow. *)
      List.iter
        (fun c -> if c.alive && out_pending c > 0 then flush_conn t c)
        (conn_list t)
    end
  end

let idle_timeout t =
  if t.pending <> None then 0.002
  else
    match Admission.peek t.queue with
    | Some a ->
        let age = now_ns () - a.t_admit_ns in
        Float.max 0.001 (t.cfg.linger_s -. (float_of_int age *. 1e-9))
    | None -> if Cluster.State.waiting_count t.clu > 0 then t.cfg.linger_s else 0.05

let run t =
  while not t.finished do
    step t ~timeout_s:(idle_timeout t)
  done

let stop t =
  Hashtbl.iter (fun _ c -> close_fd c.fd) t.conns;
  Hashtbl.iter (fun _ c -> close_fd c.fd) t.http_conns;
  Hashtbl.reset t.conns;
  Hashtbl.reset t.http_conns;
  close_fd t.listener;
  Option.iter close_fd t.metrics_listener;
  t.finished <- true
