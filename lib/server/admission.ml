type 'a t = {
  ring : 'a option array;
  mutable head : int;  (* next pop *)
  mutable len : int;
  mutable rejected : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  { ring = Array.make capacity None; head = 0; len = 0; rejected = 0 }

let capacity q = Array.length q.ring
let length q = q.len
let is_empty q = q.len = 0
let is_full q = q.len = Array.length q.ring
let rejected q = q.rejected

let push q x =
  if is_full q then begin
    q.rejected <- q.rejected + 1;
    false
  end
  else begin
    let cap = Array.length q.ring in
    q.ring.((q.head + q.len) mod cap) <- Some x;
    q.len <- q.len + 1;
    true
  end

let pop q =
  if q.len = 0 then None
  else begin
    let x = q.ring.(q.head) in
    q.ring.(q.head) <- None;
    q.head <- (q.head + 1) mod Array.length q.ring;
    q.len <- q.len - 1;
    x
  end

let peek q = if q.len = 0 then None else q.ring.(q.head)
