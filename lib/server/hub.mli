(** Subscription hub: the set of connections that asked for placement
    pushes, addressed by connection id.

    The server encodes each committed round's placement diff once and
    {!broadcast}s the bytes; the hub fans them out through the per-
    connection [send] callbacks (which enqueue into that connection's
    outbound buffer — a send never blocks the event loop). A connection
    that disconnects or misbehaves is {!unsubscribe}d by the server's
    connection teardown. *)

type t

val create : unit -> t

(** [subscribe t ~id ~send] registers (or replaces) subscriber [id]. *)
val subscribe : t -> id:int -> send:(string -> unit) -> unit

val unsubscribe : t -> id:int -> unit
val is_subscribed : t -> id:int -> bool
val count : t -> int

(** [broadcast t bytes] sends [bytes] to every subscriber; returns how
    many received it. *)
val broadcast : t -> string -> int
