(** The [firmament_serve] daemon: a persistent scheduler service
    multiplexing many concurrent socket clients onto one pipelined
    Firmament scheduler.

    {2 Threading model}

    A single-threaded, non-blocking [select] event loop owns everything:
    the listener, every client connection, the admission queue and the
    scheduler. One {!step} = one select round: accept, read + decode
    frames, admit events (ACK) or refuse them (NACK backpressure when the
    bounded queue is full), drive the scheduling round state machine, and
    flush outbound buffers. Under [Race_parallel] the solve itself runs on
    background domains ({!Firmament.Scheduler.begin_round} dispatches,
    the loop keeps admitting and {e applying} events mid-solve — the PR 4
    stale-aware commit reconciles), so ingestion overlaps the solve; under
    the sequential modes the solve happens inside [begin_round] and the
    kernel socket buffers absorb the burst.

    {2 Round driving}

    Admitted events batch between rounds: a round starts when the queue
    reaches [batch_max], when the oldest admitted event has waited
    [linger_s], or when tasks are left waiting and [linger_s] elapsed
    since the last round. Each committed round's placement diff is encoded
    once as a {!Protocol.Placement_delta} and broadcast to subscribers.

    {2 Shutdown}

    {!request_shutdown} (signal-handler safe) makes the next {!step} drain:
    commit (or degrade, per the PR 1 ladder and the configured deadline)
    the in-flight round, push its deltas, send every client a
    {!Protocol.Shutdown} frame, flush outbound buffers within a bounded
    grace period, close everything and mark the server {!finished} —
    clients see an orderly goodbye, not ECONNRESET. *)

type listen = Tcp of string * int | Unix_path of string

(** ["HOST:PORT"] or ["unix:PATH"]. *)
val listen_of_string : string -> (listen, string) result

val pp_listen : Format.formatter -> listen -> unit

type config = {
  listen : listen;
  metrics_listen : listen option;
      (** optional Prometheus scrape endpoint: answers any HTTP GET with
          the global telemetry registry in text exposition format *)
  machines : int;
  machines_per_rack : int;
  slots_per_machine : int;
  scheduler : Firmament.Scheduler.config;
  policy :
    drain:bool -> Firmament.Flow_network.t -> Cluster.State.t -> Firmament.Policy.t;
  batch_max : int;  (** events applied per admission drain / round *)
  linger_s : float;  (** max wait before admitted events force a round *)
  queue_capacity : int;  (** admission-queue bound; overflow → NACK *)
  max_out_buffer : int;
      (** per-connection outbound cap in bytes; a subscriber that cannot
          keep up is dropped rather than allowed to wedge the loop *)
  shutdown_grace_s : float;  (** outbound flush budget during shutdown *)
}

(** 250 machines (8 per rack, 16 slots), [Fastest_sequential] solver,
    4096-event queue, 1024-event batches, 20 ms linger, TCP on
    127.0.0.1:7117, no metrics endpoint. *)
val default_config : config

type t

(** [create config] binds the listener(s) and builds the cluster +
    scheduler. SIGPIPE is set to ignore (writes to dead peers surface as
    [EPIPE] and close that connection).
    @raise Unix.Unix_error if binding fails. *)
val create : config -> t

val scheduler : t -> Firmament.Scheduler.t
val cluster : t -> Cluster.State.t
val rounds_committed : t -> int
val connections : t -> int

(** [step t ~timeout_s] runs one event-loop iteration, blocking in
    [select] at most [timeout_s]. Safe to call after {!finished} (no-op).
    Exposed so tests can interleave a client and the server
    cooperatively in one process. *)
val step : t -> timeout_s:float -> unit

(** [run t] loops {!step} until a shutdown request completes. *)
val run : t -> unit

(** Ask for a graceful drain; the next {!step} performs it. Safe to call
    from a signal handler. *)
val request_shutdown : t -> unit

val finished : t -> bool

(** Force-close every fd without draining (test teardown). *)
val stop : t -> unit
