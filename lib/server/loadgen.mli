(** Firehose load generator: the client side of the scheduler service.

    Drives [firmament_serve] over [connections] concurrent sockets from a
    single-threaded select loop: submits task events at a target rate,
    subscribes to placement pushes on its first connection, honors NACK
    backpressure (bounded retries after the server's retry-after hint),
    and measures {e end-to-end} submit→placement-notification latency per
    task — frame encode, socket, admission queue, batching linger, solve,
    commit and push all included.

    Two drive modes:
    {ul
    {- {!Synthetic} — an open-loop firehose: jobs of [tasks_per_job]
       tasks at [rate] task events/sec for [duration_s]; every placed
       task reports a [Finish] [task_duration_s] after its placement
       push arrives, so the cluster reaches a finish/submit steady state
       (a sustained rate counts submits {e and} finishes).}
    {- {!Trace} — replays a {!Dcsim.Churn} trace through
       {!Dcsim.Firehose.schedule} at [rate]; index-relative
       [Finish k]/[Preempt k] events are resolved against the client's
       live placement-subscription view, exactly like an external
       cluster manager would.}}

    Client-side telemetry lands in the global registry under [lg_*]
    (counters plus an [lg_e2e_latency_ns] histogram), exportable with the
    standard exporters. *)

type mode =
  | Synthetic of { tasks_per_job : int; task_duration_s : float }
  | Trace of Dcsim.Churn.event list

type config = {
  endpoint : Service.listen;
  connections : int;
  rate : float;  (** target task events per second, all connections *)
  duration_s : float;  (** synthetic send window (ignored by [Trace]) *)
  seed : int;
  mode : mode;
  jid_base : int;  (** first job id (disjoint ranges for parallel clients) *)
  max_retries : int;  (** per-event NACK retry budget before giving up *)
  drain_grace_s : float;  (** wait for in-flight placements after sending *)
}

val default_config : config

type report = {
  elapsed_s : float;  (** wall time of the send window *)
  task_events_sent : int;
      (** submit (weighted by task count) + finish + preempt + machine
          events handed to the socket layer *)
  task_events_acked : int;  (** of those, admitted by the server *)
  achieved_rate : float;  (** acked task events / elapsed send window *)
  submits : int;
  finishes : int;
  nacks : int;
  retries_exhausted : int;
  placements : int;  (** Start notifications received *)
  migrations : int;
  preempt_notices : int;
  protocol_errors : int;
      (** malformed inbound frames + server-reported protocol errors;
          0 on a healthy run *)
  server_shutdown : bool;  (** the server said goodbye mid-run *)
  stats_json : string option;  (** final server stats snapshot *)
  latencies_s : float list;  (** per-task end-to-end placement latency *)
}

(** [run config] connects, drives the firehose to completion and returns
    the report. @raise Unix.Unix_error if the initial connect fails. *)
val run : config -> report

val pp_report : Format.formatter -> report -> unit
