(** Bounded FIFO admission queue between the socket front-end and the
    scheduling rounds.

    The event loop pushes every decoded client event here; round driving
    pops batches (up to the configured batch size) and applies them to the
    scheduler between — or, pipelined, during — solves. The bound is the
    backpressure mechanism: {!push} refusing an event is what turns into a
    NACK frame with a retry-after hint on the wire.

    Plain single-threaded ring buffer (the server's event loop owns it);
    pushes and pops are O(1) and allocation-free once the ring is built. *)

type 'a t

(** [create ~capacity] is an empty queue holding at most [capacity]
    (>= 1) elements. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

(** [push q x] appends [x]; [false] (and no change) when full. *)
val push : 'a t -> 'a -> bool

(** [pop q] removes the oldest element. *)
val pop : 'a t -> 'a option

(** [peek q] is the oldest element without removing it. *)
val peek : 'a t -> 'a option

(** Total elements ever refused by {!push} (the NACK count source). *)
val rejected : 'a t -> int
