(** Wire protocol for the [firmament_serve] scheduler service.

    Frames are length-prefixed binary records over a byte stream (TCP or
    Unix-domain socket). Every frame starts with a fixed 12-byte header:

    {v
      offset  size  field
      0       2     magic        0xF1 0x4D
      2       1     version      (currently 1)
      3       1     frame tag
      4       4     payload length, big-endian unsigned
      8       4     CRC-32 (IEEE) of the payload, big-endian
      12      len   payload
    v}

    All payload integers are big-endian; 64-bit fields must be
    non-negative (they carry OCaml ints). Durations travel as the IEEE-754
    bits of a float ([Int64.bits_of_float]), so they round-trip exactly.

    Decoding is defensive: a frame with a bad magic, an unsupported
    version, an unknown tag, an oversized length prefix, a CRC mismatch or
    a payload that does not parse to exactly its declared length yields
    [`Error] — never an exception — and the server rejects the
    {e connection}, not the process. [`Need_more] means the buffer holds a
    valid prefix; feed more bytes and retry. *)

(** {1 Frames} *)

(** One task-placement decision pushed to subscribers. [p_machine] is
    [-1] for a preemption (the task returned to the wait queue);
    [p_from] is [-1] unless the placement is a migration. *)
type placement_kind = Start | Migrate | Preempt

type placement = {
  p_tid : int;
  p_kind : placement_kind;
  p_machine : int;
  p_from : int;
}

(** Client→server event frames carry a client-chosen sequence number
    [seq] (echoed in the matching {!Ack}/{!Nack}); task ids are derived
    deterministically from the job id ([tid = jid * 1000 + i], so
    [task_count <= 1000]), which lets clients match placement
    notifications without a server-side id-assignment round trip. *)
type frame =
  | Submit_job of {
      seq : int;
      jid : int;
      task_count : int;  (** 1..1000 (decoder-enforced) *)
      duration : float;  (** task runtime in seconds *)
      locality : int;  (** seeds the synthetic input-block machines *)
    }
  | Finish_task of { seq : int; tid : int }
  | Preempt_task of { seq : int; tid : int }
  | Fail_machine of { seq : int; machine : int }
  | Restore_machine of { seq : int; machine : int }
      (** machine add/remove map onto restore/fail of the configured
          topology envelope (the machine set is fixed at server start) *)
  | Subscribe of { seq : int }
      (** receive {!Placement_delta} pushes on this connection *)
  | Stats_query of { seq : int }
  | Ack of { seq : int }  (** event admitted to the admission queue *)
  | Nack of { seq : int; retry_after_ms : int }
      (** backpressure: the admission queue is full (or the server is
          shutting down, [retry_after_ms = 0]); retry after the hint *)
  | Placement_delta of { round : int; placements : placement list }
      (** one committed scheduling round's placement diff, pushed to
          every subscriber *)
  | Stats_reply of { seq : int; json : string }
  | Shutdown of { reason : string }
      (** orderly goodbye: the server is closing this connection *)
  | Protocol_error of { message : string }
      (** sent (best-effort) before the server drops a connection that
          fed it a malformed frame *)

val pp : Format.formatter -> frame -> unit

(** {1 Codec} *)

val version : int
val header_size : int

(** Hard cap on a frame's payload length (1 MiB): anything larger is
    rejected as {!Oversized} before buffering, so a hostile length
    prefix cannot trigger an allocation spike. *)
val max_payload : int

type error =
  | Bad_magic
  | Bad_version of int
  | Unknown_tag of int
  | Oversized of int
  | Crc_mismatch
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

(** [encode f] is the full wire representation (header + payload). *)
val encode : frame -> string

val encode_into : Buffer.t -> frame -> unit

(** [decode buf ~off ~len] attempts to parse one frame from
    [buf.[off .. off+len-1]]. [`Frame (f, consumed)] consumed exactly
    [consumed] bytes; [`Need_more] is an incomplete but so-far-valid
    prefix; [`Error] is a poisoned stream (the caller should drop the
    connection — resynchronization is not attempted). Never raises. *)
val decode :
  Bytes.t ->
  off:int ->
  len:int ->
  [ `Frame of frame * int | `Need_more | `Error of error ]

(** CRC-32 (IEEE 802.3, reflected, init/xorout [0xFFFFFFFF]) of
    [s.[off .. off+len-1]] — exposed for tests. *)
val crc32 : string -> off:int -> len:int -> int
