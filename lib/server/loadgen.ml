module P = Protocol

let m = Telemetry.Metrics.global ()

let m_sent =
  Telemetry.Metrics.counter m ~help:"task events sent" "lg_events_sent_total"

let m_acked =
  Telemetry.Metrics.counter m ~help:"task events admitted by the server"
    "lg_events_acked_total"

let m_nacks =
  Telemetry.Metrics.counter m ~help:"NACK backpressure responses" "lg_nacks_total"

let m_placements =
  Telemetry.Metrics.counter m ~help:"placement notifications received"
    "lg_placements_total"

let m_latency =
  Telemetry.Metrics.histogram m
    ~help:"end-to-end submit-to-placement-push latency (ns)" "lg_e2e_latency_ns"

let m_errors =
  Telemetry.Metrics.counter m ~help:"protocol errors observed by the client"
    "lg_protocol_errors_total"

type mode =
  | Synthetic of { tasks_per_job : int; task_duration_s : float }
  | Trace of Dcsim.Churn.event list

type config = {
  endpoint : Service.listen;
  connections : int;
  rate : float;
  duration_s : float;
  seed : int;
  mode : mode;
  jid_base : int;
  max_retries : int;
  drain_grace_s : float;
}

let default_config =
  {
    endpoint = Service.Tcp ("127.0.0.1", 7117);
    connections = 4;
    rate = 1000.;
    duration_s = 5.;
    seed = 42;
    mode = Synthetic { tasks_per_job = 8; task_duration_s = 1.0 };
    jid_base = 1;
    max_retries = 8;
    drain_grace_s = 1.0;
  }

type report = {
  elapsed_s : float;
  task_events_sent : int;
  task_events_acked : int;
  achieved_rate : float;
  submits : int;
  finishes : int;
  nacks : int;
  retries_exhausted : int;
  placements : int;
  migrations : int;
  preempt_notices : int;
  protocol_errors : int;
  server_shutdown : bool;
  stats_json : string option;
  latencies_s : float list;
}

(* {1 Client connections} *)

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : Bytes.t;
  mutable inlen : int;
  out : Buffer.t;
  mutable out_off : int;
  mutable alive : bool;
}

let connect endpoint =
  let fd, addr =
    match endpoint with
    | Service.Tcp (host, port) ->
        let a =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        ( Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0,
          Unix.ADDR_INET (a, port) )
    | Service.Unix_path path ->
        (Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
  in
  Unix.connect fd addr;
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  {
    fd;
    inbuf = Bytes.create 65536;
    inlen = 0;
    out = Buffer.create 65536;
    out_off = 0;
    alive = true;
  }

let out_pending c = Buffer.length c.out - c.out_off

let flush_conn c =
  let rec go () =
    let pending = out_pending c in
    if pending > 0 then begin
      let chunk = min pending 65536 in
      let s = Buffer.sub c.out c.out_off chunk in
      match Unix.write_substring c.fd s 0 chunk with
      | n ->
          c.out_off <- c.out_off + n;
          if n = chunk then go ()
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          c.alive <- false
    end
  in
  go ();
  if out_pending c = 0 then begin
    Buffer.clear c.out;
    c.out_off <- 0
  end

(* {1 Running-task view (for Trace-mode index resolution)} *)

type running_view = {
  mutable tids : int array;
  mutable len : int;
  index : (int, int) Hashtbl.t;  (* tid -> position in tids *)
}

let view_create () = { tids = Array.make 1024 0; len = 0; index = Hashtbl.create 1024 }

let view_add v tid =
  if not (Hashtbl.mem v.index tid) then begin
    if v.len = Array.length v.tids then begin
      let bigger = Array.make (2 * v.len) 0 in
      Array.blit v.tids 0 bigger 0 v.len;
      v.tids <- bigger
    end;
    v.tids.(v.len) <- tid;
    Hashtbl.replace v.index tid v.len;
    v.len <- v.len + 1
  end

let view_remove v tid =
  match Hashtbl.find_opt v.index tid with
  | None -> ()
  | Some i ->
      Hashtbl.remove v.index tid;
      let last = v.len - 1 in
      if i < last then begin
        let moved = v.tids.(last) in
        v.tids.(i) <- moved;
        Hashtbl.replace v.index moved i
      end;
      v.len <- last

let view_pick v k = if v.len = 0 then None else Some (v.tids.(k mod v.len))

(* {1 The driver} *)

type st = {
  cfg : config;
  conns : conn array;
  t0_ns : int;
  mutable next_seq : int;
  mutable next_conn : int;
  inflight : (int, int * string * int) Hashtbl.t;
      (* seq -> (weight, wire bytes for retry, attempts) *)
  submit_t : (int, int) Hashtbl.t;  (* tid -> send ns *)
  view : running_view;
  finish_q : (int * int) Queue.t;  (* (due_ns, tid), FIFO: constant duration *)
  mutable retry_q : (int * string * int * int) list;
      (* (due_ns, bytes, seq, weight) — kept sorted by insertion; retries
         share one linger-scaled delay so FIFO order is due order *)
  mutable sent : int;
  mutable acked : int;
  mutable submits : int;
  mutable finishes : int;
  mutable nacks : int;
  mutable retries_exhausted : int;
  mutable placements : int;
  mutable migrations : int;
  mutable preempt_notices : int;
  mutable protocol_errors : int;
  mutable server_shutdown : bool;
  mutable stats_json : string option;
  mutable latencies : float list;
}

let now_ns () = Telemetry.Clock.now_ns ()
let elapsed_ns st = now_ns () - st.t0_ns

let pick_conn st =
  (* Round-robin across live connections; None when all died. *)
  let n = Array.length st.conns in
  let rec go k =
    if k = n then None
    else begin
      let c = st.conns.((st.next_conn + k) mod n) in
      if c.alive then begin
        st.next_conn <- (st.next_conn + k + 1) mod n;
        Some c
      end
      else go (k + 1)
    end
  in
  go 0

let send_event st frame ~weight =
  match pick_conn st with
  | None -> false
  | Some c ->
      let seq = match (frame : P.frame) with
        | P.Submit_job { seq; _ } | P.Finish_task { seq; _ }
        | P.Preempt_task { seq; _ } | P.Fail_machine { seq; _ }
        | P.Restore_machine { seq; _ } ->
            seq
        | _ -> invalid_arg "send_event: not an event frame"
      in
      let bytes = P.encode frame in
      Hashtbl.replace st.inflight seq (weight, bytes, 0);
      Buffer.add_string c.out bytes;
      st.sent <- st.sent + weight;
      Telemetry.Metrics.add m m_sent weight;
      true

let fresh_seq st =
  let s = st.next_seq in
  st.next_seq <- s + 1;
  s

let retry_delay_ns = 50_000_000 (* fallback when the server gives no hint *)

let handle_frame st (f : P.frame) =
  match f with
  | P.Ack { seq } -> (
      match Hashtbl.find_opt st.inflight seq with
      | Some (weight, _, _) ->
          Hashtbl.remove st.inflight seq;
          st.acked <- st.acked + weight;
          Telemetry.Metrics.add m m_acked weight
      | None -> ())
  | P.Nack { seq; retry_after_ms } -> (
      st.nacks <- st.nacks + 1;
      Telemetry.Metrics.incr m m_nacks;
      match Hashtbl.find_opt st.inflight seq with
      | Some (weight, bytes, attempts) ->
          Hashtbl.remove st.inflight seq;
          if attempts >= st.cfg.max_retries || st.server_shutdown then
            st.retries_exhausted <- st.retries_exhausted + 1
          else begin
            let delay =
              if retry_after_ms > 0 then retry_after_ms * 1_000_000
              else retry_delay_ns
            in
            Hashtbl.replace st.inflight seq (weight, bytes, attempts + 1);
            st.retry_q <- (now_ns () + delay, bytes, seq, weight) :: st.retry_q
          end
      | None -> ())
  | P.Placement_delta { placements; _ } ->
      let t_now = now_ns () in
      List.iter
        (fun (p : P.placement) ->
          match p.p_kind with
          | P.Start ->
              st.placements <- st.placements + 1;
              Telemetry.Metrics.incr m m_placements;
              view_add st.view p.p_tid;
              (match Hashtbl.find_opt st.submit_t p.p_tid with
              | Some t_sent ->
                  Hashtbl.remove st.submit_t p.p_tid;
                  let d = t_now - t_sent in
                  Telemetry.Metrics.observe m m_latency d;
                  st.latencies <- (float_of_int d *. 1e-9) :: st.latencies;
                  (match st.cfg.mode with
                  | Synthetic { task_duration_s; _ } ->
                      Queue.add
                        ( t_now + int_of_float (task_duration_s *. 1e9),
                          p.p_tid )
                        st.finish_q
                  | Trace _ -> ())
              | None -> ())
          | P.Migrate ->
              st.migrations <- st.migrations + 1;
              view_add st.view p.p_tid
          | P.Preempt ->
              st.preempt_notices <- st.preempt_notices + 1;
              view_remove st.view p.p_tid)
        placements
  | P.Stats_reply { json; _ } -> st.stats_json <- Some json
  | P.Shutdown _ -> st.server_shutdown <- true
  | P.Protocol_error { message = _ } ->
      st.protocol_errors <- st.protocol_errors + 1;
      Telemetry.Metrics.incr m m_errors
  | P.Submit_job _ | P.Finish_task _ | P.Preempt_task _ | P.Fail_machine _
  | P.Restore_machine _ | P.Subscribe _ | P.Stats_query _ ->
      (* a server never sends client-role frames *)
      st.protocol_errors <- st.protocol_errors + 1;
      Telemetry.Metrics.incr m m_errors

let read_conn st c =
  let progress = ref true in
  while !progress && c.alive do
    progress := false;
    if c.inlen = Bytes.length c.inbuf then begin
      let bigger = Bytes.create (2 * c.inlen) in
      Bytes.blit c.inbuf 0 bigger 0 c.inlen;
      c.inbuf <- bigger
    end;
    let room = Bytes.length c.inbuf - c.inlen in
    match Unix.read c.fd c.inbuf c.inlen room with
    | 0 -> c.alive <- false
    | n ->
        c.inlen <- c.inlen + n;
        progress := n = room;
        let off = ref 0 in
        let decoding = ref true in
        while !decoding && c.alive do
          match P.decode c.inbuf ~off:!off ~len:(c.inlen - !off) with
          | `Frame (f, consumed) ->
              off := !off + consumed;
              handle_frame st f
          | `Need_more -> decoding := false
          | `Error _ ->
              st.protocol_errors <- st.protocol_errors + 1;
              Telemetry.Metrics.incr m m_errors;
              c.alive <- false;
              decoding := false
        done;
        if !off > 0 then begin
          Bytes.blit c.inbuf !off c.inbuf 0 (c.inlen - !off);
          c.inlen <- c.inlen - !off
        end
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        c.alive <- false
  done

let pump st ~timeout_s =
  let rfds = ref [] and wfds = ref [] in
  Array.iter
    (fun c ->
      if c.alive then begin
        rfds := c.fd :: !rfds;
        if out_pending c > 0 then wfds := c.fd :: !wfds
      end)
    st.conns;
  match Unix.select !rfds !wfds [] timeout_s with
  | r, w, _ ->
      Array.iter
        (fun c ->
          if c.alive && List.mem c.fd w then flush_conn c;
          if c.alive && List.mem c.fd r then read_conn st c)
        st.conns
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Local backpressure: pause generation while the socket layer is stuffed. *)
let out_stuffed st =
  Array.exists (fun c -> c.alive && out_pending c > 4 * 1024 * 1024) st.conns

let flush_retries st =
  match st.retry_q with
  | [] -> ()
  | q ->
      let t_now = now_ns () in
      let due, later = List.partition (fun (d, _, _, _) -> d <= t_now) q in
      st.retry_q <- later;
      List.iter
        (fun (_, bytes, seq, weight) ->
          match pick_conn st with
          | Some c when Hashtbl.mem st.inflight seq ->
              Buffer.add_string c.out bytes;
              st.sent <- st.sent + weight;
              Telemetry.Metrics.add m m_sent weight
          | _ -> ())
        (List.rev due)

(* {1 Event sources} *)

(* Synthetic firehose: jobs of [tasks_per_job] at [rate] task events/sec
   split evenly between submits and the finishes they later produce, so
   the sustained wire rate meets [rate] once placements flow. *)
let synthetic_due st ~tasks_per_job k =
  (* job k is due when k*tasks_per_job submit-events have been emitted at
     rate/2 (the other half of the budget belongs to finishes) *)
  float_of_int (k * tasks_per_job) /. (st.cfg.rate /. 2.)

let drive_synthetic st ~tasks_per_job ~next_job =
  let window_ns = int_of_float (st.cfg.duration_s *. 1e9) in
  let budget = ref 2048 in
  let continue = ref true in
  while !continue && !budget > 0 && not (out_stuffed st) do
    let t = elapsed_ns st in
    if t > window_ns then continue := false
    else begin
      let due_s = synthetic_due st ~tasks_per_job !next_job in
      if float_of_int t *. 1e-9 >= due_s then begin
        let jid = st.cfg.jid_base + !next_job in
        let seq = fresh_seq st in
        let frame =
          P.Submit_job
            {
              seq;
              jid;
              task_count = tasks_per_job;
              duration = 3600.;
              (* client-driven finishes; server-side duration is nominal *)
              locality = (st.cfg.seed * 7919) + !next_job;
            }
        in
        let t_send = now_ns () in
        for i = 0 to tasks_per_job - 1 do
          Hashtbl.replace st.submit_t ((jid * 1000) + i) t_send
        done;
        if send_event st frame ~weight:tasks_per_job then begin
          st.submits <- st.submits + tasks_per_job;
          incr next_job;
          decr budget
        end
        else continue := false
      end
      else continue := false
    end
  done;
  (* Finishes for placed tasks whose simulated runtime elapsed. *)
  let t_now = now_ns () in
  let fin = ref 2048 in
  let more = ref true in
  while !more && !fin > 0 && not (out_stuffed st) do
    match Queue.peek_opt st.finish_q with
    | Some (due, tid) when due <= t_now && elapsed_ns st <= window_ns ->
        ignore (Queue.pop st.finish_q);
        let seq = fresh_seq st in
        if send_event st (P.Finish_task { seq; tid }) ~weight:1 then begin
          st.finishes <- st.finishes + 1;
          view_remove st.view tid;
          decr fin
        end
        else more := false
    | _ -> more := false
  done

let drive_trace st ~schedule =
  let budget = ref 2048 in
  let continue = ref true in
  while !continue && !budget > 0 && not (out_stuffed st) do
    match !schedule with
    | [] -> continue := false
    | { Dcsim.Firehose.due; ev } :: rest ->
        if float_of_int (elapsed_ns st) *. 1e-9 < due then continue := false
        else begin
          schedule := rest;
          decr budget;
          let seq = fresh_seq st in
          let send frame ~weight = ignore (send_event st frame ~weight) in
          (match ev with
          | Dcsim.Churn.Submit { jid; tasks; duration; locality } ->
              let jid = st.cfg.jid_base + jid in
              let t_send = now_ns () in
              for i = 0 to tasks - 1 do
                Hashtbl.replace st.submit_t ((jid * 1000) + i) t_send
              done;
              st.submits <- st.submits + tasks;
              send
                (P.Submit_job { seq; jid; task_count = tasks; duration; locality })
                ~weight:tasks
          | Dcsim.Churn.Finish k -> (
              match view_pick st.view k with
              | Some tid ->
                  st.finishes <- st.finishes + 1;
                  view_remove st.view tid;
                  send (P.Finish_task { seq; tid }) ~weight:1
              | None -> ())
          | Dcsim.Churn.Preempt k -> (
              match view_pick st.view k with
              | Some tid ->
                  view_remove st.view tid;
                  send (P.Preempt_task { seq; tid }) ~weight:1
              | None -> ())
          | Dcsim.Churn.Fail_machine mid ->
              send (P.Fail_machine { seq; machine = mid }) ~weight:1
          | Dcsim.Churn.Restore_machine mid ->
              send (P.Restore_machine { seq; machine = mid }) ~weight:1
          | Dcsim.Churn.Perturb_costs _ | Dcsim.Churn.Round _
          | Dcsim.Churn.Begin_round | Dcsim.Churn.Commit_round ->
              (* Firehose.wire_events filtered these *)
              ())
        end
  done

(* {1 Run} *)

let run cfg =
  if cfg.connections < 1 then invalid_arg "Loadgen.run: connections must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let conns = Array.init cfg.connections (fun _ -> connect cfg.endpoint) in
  let st =
    {
      cfg;
      conns;
      t0_ns = now_ns ();
      next_seq = 1;
      next_conn = 0;
      inflight = Hashtbl.create 4096;
      submit_t = Hashtbl.create 4096;
      view = view_create ();
      finish_q = Queue.create ();
      retry_q = [];
      sent = 0;
      acked = 0;
      submits = 0;
      finishes = 0;
      nacks = 0;
      retries_exhausted = 0;
      placements = 0;
      migrations = 0;
      preempt_notices = 0;
      protocol_errors = 0;
      server_shutdown = false;
      stats_json = None;
      latencies = [];
    }
  in
  (* Subscribe on connection 0 so placement pushes flow before traffic. *)
  Buffer.add_string conns.(0).out (P.encode (P.Subscribe { seq = 0 }));
  flush_conn conns.(0);
  let schedule =
    ref
      (match cfg.mode with
      | Trace events -> Dcsim.Firehose.schedule ~rate:cfg.rate events
      | Synthetic _ -> [])
  in
  let next_job = ref 0 in
  let window_ns = int_of_float (cfg.duration_s *. 1e9) in
  let sending_done st =
    match cfg.mode with
    | Synthetic _ -> elapsed_ns st > window_ns
    | Trace _ -> !schedule = [] && st.retry_q = []
  in
  let any_alive () = Array.exists (fun c -> c.alive) st.conns in
  (* Send window. *)
  while (not (sending_done st)) && any_alive () && not st.server_shutdown do
    (match cfg.mode with
    | Synthetic { tasks_per_job; _ } -> drive_synthetic st ~tasks_per_job ~next_job
    | Trace _ -> drive_trace st ~schedule);
    flush_retries st;
    Array.iter (fun c -> if c.alive && out_pending c > 0 then flush_conn c) st.conns;
    pump st ~timeout_s:0.001
  done;
  let send_elapsed_s = float_of_int (elapsed_ns st) *. 1e-9 in
  (* Drain: let in-flight acks and placement pushes arrive. *)
  let drain_deadline = now_ns () + int_of_float (cfg.drain_grace_s *. 1e9) in
  while now_ns () < drain_deadline && any_alive () && not st.server_shutdown do
    pump st ~timeout_s:0.02
  done;
  (* Final stats snapshot over any still-live connection. *)
  (match Array.find_opt (fun c -> c.alive) st.conns with
  | Some c when not st.server_shutdown ->
      Buffer.add_string c.out (P.encode (P.Stats_query { seq = fresh_seq st }));
      flush_conn c;
      let deadline = now_ns () + 1_000_000_000 in
      while st.stats_json = None && c.alive && now_ns () < deadline do
        pump st ~timeout_s:0.02
      done
  | _ -> ());
  Array.iter (fun c -> if c.alive then try Unix.close c.fd with Unix.Unix_error _ -> ()) st.conns;
  {
    elapsed_s = send_elapsed_s;
    task_events_sent = st.sent;
    task_events_acked = st.acked;
    achieved_rate = float_of_int st.acked /. Float.max 1e-9 send_elapsed_s;
    submits = st.submits;
    finishes = st.finishes;
    nacks = st.nacks;
    retries_exhausted = st.retries_exhausted;
    placements = st.placements;
    migrations = st.migrations;
    preempt_notices = st.preempt_notices;
    protocol_errors = st.protocol_errors;
    server_shutdown = st.server_shutdown;
    stats_json = st.stats_json;
    latencies_s = st.latencies;
  }

let pp_report ppf r =
  let pct p =
    match r.latencies_s with
    | [] -> nan
    | l -> Dcsim.Stats.percentile l p
  in
  Format.fprintf ppf
    "@[<v>sent %d task events in %.2fs (%.0f/s acked), %d submits / %d \
     finishes@,placements %d (migrations %d, preempts %d)@,latency p50 %.1fms \
     p99 %.1fms max %.1fms (%d samples)@,nacks %d (retries exhausted %d), \
     protocol errors %d%s@]"
    r.task_events_sent r.elapsed_s r.achieved_rate r.submits r.finishes
    r.placements r.migrations r.preempt_notices
    (pct 50. *. 1e3) (pct 99. *. 1e3)
    (match r.latencies_s with [] -> nan | l -> Dcsim.Stats.maximum l *. 1e3)
    (List.length r.latencies_s) r.nacks r.retries_exhausted r.protocol_errors
    (if r.server_shutdown then ", server shut down" else "")
