type t = { subs : (int, string -> unit) Hashtbl.t }

let create () = { subs = Hashtbl.create 16 }
let subscribe t ~id ~send = Hashtbl.replace t.subs id send
let unsubscribe t ~id = Hashtbl.remove t.subs id
let is_subscribed t ~id = Hashtbl.mem t.subs id
let count t = Hashtbl.length t.subs

let broadcast t bytes =
  let n = ref 0 in
  Hashtbl.iter
    (fun _ send ->
      send bytes;
      incr n)
    t.subs;
  !n
