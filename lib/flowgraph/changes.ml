type effect = { breaks_feasibility : bool; breaks_optimality : bool }

let no_effect = { breaks_feasibility = false; breaks_optimality = false }

let ( ||| ) a b =
  {
    breaks_feasibility = a.breaks_feasibility || b.breaks_feasibility;
    breaks_optimality = a.breaks_optimality || b.breaks_optimality;
  }

let capacity_change ~reduced_cost ~flow ~old_cap ~new_cap =
  if new_cap > old_cap then
    { breaks_feasibility = false; breaks_optimality = reduced_cost < 0 }
  else if new_cap < old_cap then
    { breaks_feasibility = flow > new_cap; breaks_optimality = false }
  else no_effect

let cost_change ~reduced_cost_after ~flow ~forward_rescap =
  let bad_forward = reduced_cost_after < 0 && forward_rescap > 0 in
  let bad_flow = reduced_cost_after > 0 && flow > 0 in
  { breaks_feasibility = false; breaks_optimality = bad_forward || bad_flow }

let supply_change ~delta =
  { breaks_feasibility = delta <> 0; breaks_optimality = false }

let classify_arc g a ~f =
  let rc0 = Graph.reduced_cost g a in
  let flow0 = Graph.flow g a in
  let cap0 = Graph.capacity g a in
  let cost0 = Graph.cost g a in
  f ();
  let cap1 = Graph.capacity g a in
  let cost1 = Graph.cost g a in
  let eff_cap =
    if cap1 <> cap0 then
      capacity_change ~reduced_cost:rc0 ~flow:flow0 ~old_cap:cap0 ~new_cap:cap1
    else no_effect
  in
  let eff_cost =
    if cost1 <> cost0 then
      cost_change ~reduced_cost_after:(Graph.reduced_cost g a)
        ~flow:(Graph.flow g a) ~forward_rescap:(Graph.rescap g a)
    else no_effect
  in
  eff_cap ||| eff_cost
