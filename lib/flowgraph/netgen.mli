(** Random min-cost flow instance generators, in the spirit of the DIMACS
    implementation-challenge generators (NETGEN/GRIDGEN/GOTO) that the
    MCMF literature the paper draws on [24] benchmarks against.

    Three families:
    - {!transportation}: bipartite source→sink assignment problems with a
      feasibility backbone (classic NETGEN shape);
    - {!grid}: a w×h grid with supplies on the west edge and demands on
      the east, flow snaking through random-cost lattice arcs (GRIDGEN
      shape — hard for relaxation, friendly to cost scaling);
    - {!scheduling}: task/aggregator/machine/sink graphs with the exact
      structure of Firmament's scheduling networks, without needing the
      whole cluster substrate (used by solver stress tests and
      microbenchmarks).

    All generators are deterministic in [seed] and always produce feasible
    instances. *)

type instance = {
  graph : Graph.t;
  sources : Graph.node list;
  sinks : Graph.node list;
}

(** [transportation ~sources ~sinks ~supply_per_source ~max_cost ~seed ()]
    builds a dense-ish bipartite problem; every source also has a high-cost
    backbone arc to a sink, guaranteeing feasibility. *)
val transportation :
  sources:int ->
  sinks:int ->
  ?supply_per_source:int ->
  ?max_cost:int ->
  seed:int ->
  unit ->
  instance

(** [grid ~width ~height ~supply ~max_cost ~seed ()] builds a lattice with
    eastward and vertical arcs of random cost and ample capacity. *)
val grid :
  width:int -> height:int -> ?supply:int -> ?max_cost:int -> seed:int -> unit -> instance

(** [scheduling ~tasks ~machines ~slots ~pref_arcs ~max_cost ~seed ()]
    builds a Firmament-shaped network: task nodes (supply 1) with
    preference arcs to random machines, a cluster aggregator fallback, a
    per-instance unscheduled aggregator, machines with [slots] capacity to
    a single sink. *)
val scheduling :
  tasks:int ->
  machines:int ->
  ?slots:int ->
  ?pref_arcs:int ->
  ?max_cost:int ->
  seed:int ->
  unit ->
  instance
