(** DIMACS minimum-cost flow format I/O.

    The standard interchange format for MCMF instances (used by the DIMACS
    implementation challenge, cs2, and the Firmament/Flowlessly solvers).
    Lets the test suite ship golden instances and lets users debug graphs
    with external solvers.

    Node ids in the format are 1-based; they are mapped to fresh 0-based
    {!Graph.node} handles on parse. *)

(** [parse lines] builds a graph from DIMACS lines ([p]/[n]/[a]/[c] records).
    Returns the graph and the dense array mapping DIMACS id - 1 to graph
    node. @raise Failure on malformed input or unsupported lower bounds. *)
val parse : string list -> Graph.t * Graph.node array

val parse_string : string -> Graph.t * Graph.node array
val load : string -> Graph.t * Graph.node array

(** [emit g] renders [g] (supplies, arcs, costs, capacities) as DIMACS
    lines; flow is not emitted. Node ids are renumbered densely. *)
val emit : Graph.t -> string

val save : string -> Graph.t -> unit

(** [emit_state g] renders the instance {e plus} its current flow and node
    potentials. The extra state rides in comment-prefixed extension
    records ([c pi id p] per nonzero potential, [c fx k f] per
    flow-carrying arc, keyed by position in [a]-line order so parallel
    arcs stay unambiguous); external DIMACS tools skip them, while
    {!parse_state} restores them. This is the repro-artifact dump format
    of the fuzz harness. *)
val emit_state : Graph.t -> string

(** [parse_state lines] is {!parse} followed by restoring the flow and
    potentials from {!emit_state}'s extension records.
    @raise Failure on malformed records or flow outside [0, capacity]. *)
val parse_state : string list -> Graph.t * Graph.node array

val parse_state_string : string -> Graph.t * Graph.node array

(** [emit_solution g] renders the current flow as DIMACS [s]/[f] lines
    (objective value plus one line per arc with positive flow). *)
val emit_solution : Graph.t -> string
