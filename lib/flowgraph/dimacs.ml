let fail fmt = Format.kasprintf failwith fmt

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse lines =
  let g = Graph.create () in
  let nodes = ref [||] in
  let expect_int s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> fail "Dimacs.parse: expected integer, got %S" s
  in
  let node id =
    if id < 1 || id > Array.length !nodes then fail "Dimacs.parse: node id %d out of range" id;
    !nodes.(id - 1)
  in
  let seen_problem = ref false in
  List.iter
    (fun line ->
      match tokens line with
      | [] | "c" :: _ -> ()
      | [ "p"; "min"; n; _m ] ->
          if !seen_problem then fail "Dimacs.parse: duplicate problem line";
          seen_problem := true;
          let n = expect_int n in
          nodes := Array.init n (fun _ -> Graph.add_node g ~supply:0)
      | [ "n"; id; supply ] ->
          let nd = node (expect_int id) in
          Graph.set_supply g nd (expect_int supply)
      | [ "a"; src; dst; low; cap; cost ] ->
          if expect_int low <> 0 then fail "Dimacs.parse: non-zero lower bounds unsupported";
          ignore
            (Graph.add_arc g ~src:(node (expect_int src)) ~dst:(node (expect_int dst))
               ~cost:(expect_int cost) ~cap:(expect_int cap))
      | t :: _ -> fail "Dimacs.parse: unsupported record %S" t)
    lines;
  if not !seen_problem then fail "Dimacs.parse: missing problem line";
  ignore (Graph.take_changes g);
  (g, !nodes)

let parse_string s = parse (String.split_on_char '\n' s)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      parse (read []))

(* Dense renumbering: live node handles -> 1..N in iteration order. *)
let dense_ids g =
  let ids = Hashtbl.create 64 in
  let next = ref 0 in
  Graph.iter_nodes g (fun n ->
      incr next;
      Hashtbl.add ids n !next);
  ids

let emit g =
  let buf = Buffer.create 1024 in
  let ids = dense_ids g in
  Buffer.add_string buf
    (Printf.sprintf "p min %d %d\n" (Graph.node_count g) (Graph.arc_count g));
  Graph.iter_nodes g (fun n ->
      let b = Graph.supply g n in
      if b <> 0 then Buffer.add_string buf (Printf.sprintf "n %d %d\n" (Hashtbl.find ids n) b));
  Graph.iter_arcs g (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "a %d %d 0 %d %d\n"
           (Hashtbl.find ids (Graph.src g a))
           (Hashtbl.find ids (Graph.dst g a))
           (Graph.capacity g a) (Graph.cost g a)));
  Buffer.contents buf

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (emit g))

(* State round-trip: the instance plus its current flow and potentials,
   as comment-prefixed extension records ([c pi ...], [c fx ...]) that
   external DIMACS tools skip but [parse_state] restores. Flows are keyed
   by the arc's position in [a]-line order, not by endpoints, so parallel
   arcs stay unambiguous. *)
let emit_state g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (emit g);
  let ids = dense_ids g in
  Graph.iter_nodes g (fun n ->
      let p = Graph.potential g n in
      if p <> 0 then
        Buffer.add_string buf (Printf.sprintf "c pi %d %d\n" (Hashtbl.find ids n) p));
  let k = ref (-1) in
  Graph.iter_arcs g (fun a ->
      incr k;
      let f = Graph.flow g a in
      if f <> 0 then Buffer.add_string buf (Printf.sprintf "c fx %d %d\n" !k f));
  Buffer.contents buf

let parse_state lines =
  let g, nodes = parse lines in
  let arcs = ref [] in
  Graph.iter_arcs g (fun a -> arcs := a :: !arcs);
  let arcs = Array.of_list (List.rev !arcs) in
  let expect_int s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> fail "Dimacs.parse_state: expected integer, got %S" s
  in
  List.iter
    (fun line ->
      match tokens line with
      | [ "c"; "pi"; id; p ] ->
          let id = expect_int id in
          if id < 1 || id > Array.length nodes then
            fail "Dimacs.parse_state: potential for unknown node %d" id;
          Graph.set_potential g nodes.(id - 1) (expect_int p)
      | [ "c"; "fx"; k; f ] ->
          let k = expect_int k and f = expect_int f in
          if k < 0 || k >= Array.length arcs then
            fail "Dimacs.parse_state: flow for unknown arc %d" k;
          let a = arcs.(k) in
          if f < 0 || f > Graph.capacity g a then
            fail "Dimacs.parse_state: flow %d outside [0, cap] on arc %d" f k;
          Graph.push g a f
      | _ -> ())
    lines;
  ignore (Graph.take_changes g);
  (g, nodes)

let parse_state_string s = parse_state (String.split_on_char '\n' s)

let emit_solution g =
  let buf = Buffer.create 1024 in
  let ids = dense_ids g in
  Buffer.add_string buf (Printf.sprintf "s %d\n" (Graph.total_cost g));
  Graph.iter_arcs g (fun a ->
      let f = Graph.flow g a in
      if f > 0 then
        Buffer.add_string buf
          (Printf.sprintf "f %d %d %d\n"
             (Hashtbl.find ids (Graph.src g a))
             (Hashtbl.find ids (Graph.dst g a))
             f));
  Buffer.contents buf
