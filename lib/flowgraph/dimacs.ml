let fail fmt = Format.kasprintf failwith fmt

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse lines =
  let g = Graph.create () in
  let nodes = ref [||] in
  let expect_int s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> fail "Dimacs.parse: expected integer, got %S" s
  in
  let node id =
    if id < 1 || id > Array.length !nodes then fail "Dimacs.parse: node id %d out of range" id;
    !nodes.(id - 1)
  in
  let seen_problem = ref false in
  List.iter
    (fun line ->
      match tokens line with
      | [] | "c" :: _ -> ()
      | [ "p"; "min"; n; _m ] ->
          if !seen_problem then fail "Dimacs.parse: duplicate problem line";
          seen_problem := true;
          let n = expect_int n in
          nodes := Array.init n (fun _ -> Graph.add_node g ~supply:0)
      | [ "n"; id; supply ] ->
          let nd = node (expect_int id) in
          Graph.set_supply g nd (expect_int supply)
      | [ "a"; src; dst; low; cap; cost ] ->
          if expect_int low <> 0 then fail "Dimacs.parse: non-zero lower bounds unsupported";
          ignore
            (Graph.add_arc g ~src:(node (expect_int src)) ~dst:(node (expect_int dst))
               ~cost:(expect_int cost) ~cap:(expect_int cap))
      | t :: _ -> fail "Dimacs.parse: unsupported record %S" t)
    lines;
  if not !seen_problem then fail "Dimacs.parse: missing problem line";
  ignore (Graph.take_changes g);
  (g, !nodes)

let parse_string s = parse (String.split_on_char '\n' s)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      parse (read []))

(* Dense renumbering: live node handles -> 1..N in iteration order. *)
let dense_ids g =
  let ids = Hashtbl.create 64 in
  let next = ref 0 in
  Graph.iter_nodes g (fun n ->
      incr next;
      Hashtbl.add ids n !next);
  ids

let emit g =
  let buf = Buffer.create 1024 in
  let ids = dense_ids g in
  Buffer.add_string buf
    (Printf.sprintf "p min %d %d\n" (Graph.node_count g) (Graph.arc_count g));
  Graph.iter_nodes g (fun n ->
      let b = Graph.supply g n in
      if b <> 0 then Buffer.add_string buf (Printf.sprintf "n %d %d\n" (Hashtbl.find ids n) b));
  Graph.iter_arcs g (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "a %d %d 0 %d %d\n"
           (Hashtbl.find ids (Graph.src g a))
           (Hashtbl.find ids (Graph.dst g a))
           (Graph.capacity g a) (Graph.cost g a)));
  Buffer.contents buf

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (emit g))

let emit_solution g =
  let buf = Buffer.create 1024 in
  let ids = dense_ids g in
  Buffer.add_string buf (Printf.sprintf "s %d\n" (Graph.total_cost g));
  Graph.iter_arcs g (fun a ->
      let f = Graph.flow g a in
      if f > 0 then
        Buffer.add_string buf
          (Printf.sprintf "f %d %d %d\n"
             (Hashtbl.find ids (Graph.src g a))
             (Hashtbl.find ids (Graph.dst g a))
             f));
  Buffer.contents buf
