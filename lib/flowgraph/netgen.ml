type instance = {
  graph : Graph.t;
  sources : Graph.node list;
  sinks : Graph.node list;
}

let transportation ~sources ~sinks ?(supply_per_source = 5) ?(max_cost = 100) ~seed () =
  if sources <= 0 || sinks <= 0 then invalid_arg "Netgen.transportation: empty side";
  let rng = Random.State.make [| seed |] in
  let g = Graph.create () in
  let srcs = List.init sources (fun _ -> Graph.add_node g ~supply:supply_per_source) in
  let total = sources * supply_per_source in
  let per_sink = (total + sinks - 1) / sinks in
  let sks =
    List.init sinks (fun i ->
        (* Last sink absorbs the remainder so supplies balance exactly. *)
        let d = min per_sink (total - (i * per_sink)) in
        Graph.add_node g ~supply:(-(max 0 d)))
  in
  let sk_arr = Array.of_list sks in
  List.iter
    (fun s ->
      (* Feasibility backbone: an expensive arc to every sink. *)
      Array.iter
        (fun t ->
          ignore
            (Graph.add_arc g ~src:s ~dst:t
               ~cost:(max_cost + Random.State.int rng max_cost)
               ~cap:supply_per_source))
        sk_arr;
      (* A few cheap preference arcs. *)
      for _ = 1 to 3 do
        let t = sk_arr.(Random.State.int rng sinks) in
        ignore
          (Graph.add_arc g ~src:s ~dst:t
             ~cost:(1 + Random.State.int rng max_cost)
             ~cap:(1 + Random.State.int rng supply_per_source))
      done)
    srcs;
  ignore (Graph.take_changes g);
  { graph = g; sources = srcs; sinks = sks }

let grid ~width ~height ?(supply = 3) ?(max_cost = 50) ~seed () =
  if width < 2 || height < 1 then invalid_arg "Netgen.grid: too small";
  let rng = Random.State.make [| seed |] in
  let g = Graph.create () in
  let nodes = Array.init height (fun _ -> Array.init width (fun _ -> Graph.add_node g ~supply:0)) in
  for y = 0 to height - 1 do
    Graph.set_supply g nodes.(y).(0) supply;
    Graph.set_supply g nodes.(y).(width - 1) (-supply)
  done;
  let cap = supply * height in
  for y = 0 to height - 1 do
    for x = 0 to width - 2 do
      ignore
        (Graph.add_arc g ~src:nodes.(y).(x) ~dst:nodes.(y).(x + 1)
           ~cost:(1 + Random.State.int rng max_cost)
           ~cap)
    done
  done;
  for y = 0 to height - 2 do
    for x = 0 to width - 1 do
      ignore
        (Graph.add_arc g ~src:nodes.(y).(x) ~dst:nodes.(y + 1).(x)
           ~cost:(1 + Random.State.int rng max_cost)
           ~cap);
      ignore
        (Graph.add_arc g ~src:nodes.(y + 1).(x) ~dst:nodes.(y).(x)
           ~cost:(1 + Random.State.int rng max_cost)
           ~cap)
    done
  done;
  ignore (Graph.take_changes g);
  {
    graph = g;
    sources = List.init height (fun y -> nodes.(y).(0));
    sinks = List.init height (fun y -> nodes.(y).(width - 1));
  }

let scheduling ~tasks ~machines ?(slots = 8) ?(pref_arcs = 3) ?(max_cost = 1000) ~seed () =
  if machines <= 0 then invalid_arg "Netgen.scheduling: no machines";
  let rng = Random.State.make [| seed |] in
  let g = Graph.create () in
  let sink = Graph.add_node g ~supply:(-tasks) in
  let agg = Graph.add_node g ~supply:0 in
  let unsched = Graph.add_node g ~supply:0 in
  ignore (Graph.add_arc g ~src:unsched ~dst:sink ~cost:0 ~cap:tasks);
  let ms =
    Array.init machines (fun _ ->
        let m = Graph.add_node g ~supply:0 in
        ignore (Graph.add_arc g ~src:m ~dst:sink ~cost:0 ~cap:slots);
        ignore
          (Graph.add_arc g ~src:agg ~dst:m ~cost:(1 + Random.State.int rng (max_cost / 10)) ~cap:slots);
        m)
  in
  let srcs =
    List.init tasks (fun _ ->
        let t = Graph.add_node g ~supply:1 in
        ignore (Graph.add_arc g ~src:t ~dst:unsched ~cost:(2 * max_cost) ~cap:1);
        ignore (Graph.add_arc g ~src:t ~dst:agg ~cost:max_cost ~cap:1);
        for _ = 1 to pref_arcs do
          ignore
            (Graph.add_arc g ~src:t
               ~dst:(ms.(Random.State.int rng machines))
               ~cost:(1 + Random.State.int rng max_cost)
               ~cap:1)
        done;
        t)
  in
  ignore (Graph.take_changes g);
  { graph = g; sources = srcs; sinks = [ sink ] }
