(** Growable arrays.

    A thin dynamic-array implementation (OCaml 5.1's stdlib predates
    [Dynarray]). Elements are stored in a backing array that doubles on
    demand; all operations are amortized O(1). Used pervasively for node
    and arc storage in {!Graph}. *)

type 'a t

(** [create ?capacity ~dummy ()] is an empty vector whose backing array is
    pre-sized to at least [capacity] (default 8) slots. [dummy] fills
    unused backing slots and must be safe to retain (it is never returned
    by accessors). *)
val create : ?capacity:int -> dummy:'a -> unit -> 'a t

(** [make n ~dummy x] is a vector of length [n] filled with [x]. *)
val make : int -> dummy:'a -> 'a -> 'a t

val length : 'a t -> int

(** [get v i] is the [i]th element. @raise Invalid_argument if out of bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

(** [unsafe_get v i] / [unsafe_set v i x] skip the bounds check entirely
    (undefined behaviour out of bounds). Reserved for solver inner loops
    on indices proven live by construction — every other caller must use
    the checked API. See the "Memory discipline" section of DESIGN.md. *)
val unsafe_get : 'a t -> int -> 'a

val unsafe_set : 'a t -> int -> 'a -> unit

(** [push v x] appends [x] and returns its index. *)
val push : 'a t -> 'a -> int

(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)
val pop : 'a t -> 'a

(** [grow_to v n x] extends [v] with copies of [x] until its length is at
    least [n]; does nothing if already long enough. *)
val grow_to : 'a t -> int -> 'a -> unit

val clear : 'a t -> unit
val is_empty : 'a t -> bool
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t

(** [copy v] is an independent copy sharing no mutable state with [v]. *)
val copy : 'a t -> 'a t

(** [copy_into dst src] makes [dst] observationally equal to [src] without
    allocating when [dst]'s backing array already has capacity for
    [src]'s elements (a pair of blits otherwise). Handles both growth and
    shrink; a no-op when [dst == src]. *)
val copy_into : 'a t -> 'a t -> unit
