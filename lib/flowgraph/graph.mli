(** Mutable flow networks with paired residual arcs.

    The graph stores the {e residual network} directly: every call to
    {!add_arc} creates a pair of residual arcs — a forward arc at an even
    index [a] holding the unused capacity, and its reverse at [a lxor 1]
    holding the flow (so reverse residual capacity {e is} the flow on the
    forward arc). Costs on the reverse arc are the negation of the forward
    cost. This is the representation every MCMF algorithm in {!Mcmf}
    operates on.

    The graph also maintains, per node:
    - the {e supply} [b(i)] (positive at sources, negative at sinks);
    - the {e excess} [b(i) - net outflow], kept up to date by {!push},
      {!set_supply}, arc removal and capacity reduction. A flow is
      {e feasible} iff every excess is zero;
    - the dual {e potential} [pi(i)], shared by solvers so that incremental
      re-optimization and price refine can warm-start from previous duals.

    Nodes and arcs are plain integer handles; removed handles are recycled,
    so holding a handle across a removal is a bug. Handle validity can be
    checked with {!node_is_live} and {!arc_is_live}.

    {b Hot-kernel accessors are unchecked.} The read accessors and list
    walkers on this interface ({!dst}, {!src}, {!cost}, {!rescap},
    {!excess}, {!potential}, {!reduced_cost}, {!first_out}/{!next_out},
    {!first_active}/{!next_active}) and the flow kernel {!push} sit in
    solver inner loops and use {!Vec.unsafe_get}/{!Vec.unsafe_set}:
    passing a handle that is not a live id of {e this} graph is undefined
    behaviour, not an exception. Structural mutators ({!add_arc},
    {!remove_arc}, {!set_cost}, …) still validate their arguments. *)

type node = int
type arc = int

type t

(** [create ()] is an empty graph. [node_hint]/[arc_hint] pre-size internal
    storage. *)
val create : ?node_hint:int -> ?arc_hint:int -> unit -> t

(** {1 Nodes} *)

(** [add_node g ~supply] creates a node with the given supply and zero
    potential. *)
val add_node : t -> supply:int -> node

(** [remove_node g n] removes [n] and every incident arc pair. Flow carried
    by removed arcs is credited back to the surviving endpoints' excesses
    (paper §5.2: removals manifest as supply changes). *)
val remove_node : t -> node -> unit

(** [node_bound g] is an exclusive upper bound on live node ids — size
    scratch arrays with this. *)
val node_bound : t -> int

(** [node_count g] is the number of live nodes. *)
val node_count : t -> int

val node_is_live : t -> node -> bool
val supply : t -> node -> int

(** [set_supply g n b] updates the supply, shifting the node's excess by
    the same delta. *)
val set_supply : t -> node -> int -> unit

val excess : t -> node -> int
val potential : t -> node -> int
val set_potential : t -> node -> int -> unit
val iter_nodes : t -> (node -> unit) -> unit

(** {1 Arcs} *)

(** [add_arc g ~src ~dst ~cost ~cap] creates a forward/reverse residual
    pair carrying zero flow and returns the forward (even) arc.
    @raise Invalid_argument if [cap < 0] or an endpoint is dead. *)
val add_arc : t -> src:node -> dst:node -> cost:int -> cap:int -> arc

(** [remove_arc g a] removes the pair containing [a]; any flow on it is
    credited back to the endpoints' excesses. *)
val remove_arc : t -> arc -> unit

val arc_is_live : t -> arc -> bool

(** [arc_count g] is the number of live forward arcs. *)
val arc_count : t -> int

(** [arc_bound g] is an exclusive upper bound on live residual arc ids. *)
val arc_bound : t -> int

val src : t -> arc -> node
val dst : t -> arc -> node

(** [rev a] is the other member of [a]'s residual pair. *)
val rev : arc -> arc

(** [is_forward a] is [true] on the even, capacity-carrying member. *)
val is_forward : arc -> bool

val cost : t -> arc -> int

(** [rescap g a] is the residual capacity of residual arc [a]. *)
val rescap : t -> arc -> int

(** [flow g a] is the flow on forward arc [a] (i.e. [rescap g (rev a)]).
    @raise Invalid_argument on a reverse arc. *)
val flow : t -> arc -> int

(** [capacity g a] is the upper bound of forward arc [a]. *)
val capacity : t -> arc -> int

(** [arc_generation g a] is the process-unique stamp assigned to the arc
    pair occupying slot [a] when it was last created by {!add_arc} (0 if
    the slot was never used). Stamps survive {!copy}/{!copy_into} and
    change when a freed pair is recycled, so equal stamps across graph
    copies identify "the same arc" — the dirty-tracking primitive behind
    delta placement extraction. Works on dead slots (no liveness check);
    only bounds are validated. *)
val arc_generation : t -> arc -> int

(** [reduced_cost g a] is [cost a - pi (src a) + pi (dst a)]. *)
val reduced_cost : t -> arc -> int

(** [set_cost g a c] sets the forward cost to [c] (reverse to [-c]).
    @raise Invalid_argument on a reverse arc. *)
val set_cost : t -> arc -> int -> unit

(** [set_capacity g a u] resizes forward arc [a] to upper bound [u]. If the
    current flow exceeds [u], the overflow is pushed back into the
    endpoints' excesses (breaking feasibility, which the next incremental
    solve repairs — paper Table 3). *)
val set_capacity : t -> arc -> int -> unit

(** [push g a d] sends [d >= 0] units along residual arc [a], updating both
    residual capacities and the endpoint excesses.
    @raise Invalid_argument if [d] exceeds the residual capacity. *)
val push : t -> arc -> int -> unit

(** [iter_out g n f] applies [f] to every residual out-arc of [n] (both
    forward arcs leaving [n] and reverses of arcs entering it), regardless
    of residual capacity. *)
val iter_out : t -> node -> (arc -> unit) -> unit

(** [first_out g n] / [next_out g a] walk [n]'s residual out-list without
    allocating a closure ([-1] terminates). Hot-loop variant of
    {!iter_out}; the list is invalidated by arc insertion or removal at
    [n]. *)
val first_out : t -> node -> arc

val next_out : t -> arc -> arc

(** [first_active g n] / [next_active g a] walk the {e active} residual
    out-list of [n]: only arcs with positive residual capacity. Maintained
    incrementally by {!push}, {!set_capacity}, {!add_arc}, {!remove_arc}
    and {!reset_flow}. Scheduling graphs have high-degree aggregator nodes
    whose out-lists are dominated by zero-residual reverse arcs; shortest
    path and relaxation scans only ever need residual arcs, so walking the
    active list instead is the difference between O(active degree) and
    O(total degree) per scan. The list must not be mutated (no pushes on
    the scanned node's arcs) while being walked. *)
val first_active : t -> node -> arc

val next_active : t -> arc -> arc

(** [iter_arcs g f] applies [f] to every live forward arc. *)
val iter_arcs : t -> (arc -> unit) -> unit

val out_degree : t -> node -> int

(** {1 Whole-graph operations} *)

(** [total_cost g] is the primal objective: sum of [cost a * flow a] over
    forward arcs. *)
val total_cost : t -> int

(** [max_arc_cost g] is the largest absolute forward-arc cost (the [C] in
    complexity bounds), 0 if arcless. *)
val max_arc_cost : t -> int

(** [reset_flow g] zeroes all flow and potentials and restores every
    excess to its supply. *)
val reset_flow : t -> unit

(** [copy g] is a deep copy, safe to mutate from another domain. *)
val copy : t -> t

(** [copy_into dst src] makes [dst] observationally identical to
    [copy src] — same node/arc ids, supplies, excesses, potentials,
    costs, capacities, flows, adjacency and active lists, change
    counters — while reusing [dst]'s backing arrays whenever their
    capacity suffices (pure blits, zero allocation in steady state; a
    previously-larger [dst] shrinks correctly). This is the scratch-graph
    primitive behind {!Mcmf.Race}'s allocation-free rounds. No-op when
    [dst == src]. *)
val copy_into : t -> t -> unit

(** {1 Change tracking}

    Mutators accumulate a summary used by incremental solvers to warm-start
    (e.g. the ε at which incremental cost scaling must restart is bounded by
    the costliest changed arc — paper §6.2). *)

type change_summary = {
  structural : int;  (** node/arc additions and removals *)
  cost_changes : int;
  capacity_changes : int;
  supply_changes : int;
  max_changed_cost : int;
      (** max |cost| over arcs whose cost changed or that were added *)
}

val no_changes : change_summary

(** [take_changes g] returns the summary accumulated since the last call
    and resets it. *)
val take_changes : t -> change_summary

(** [peek_changes g] returns the summary without resetting. *)
val peek_changes : t -> change_summary
