type node = int
type arc = int

(* Struct-of-arrays layout. Residual arcs come in pairs: forward at even
   index [a], reverse at [a lxor 1]. Adjacency is a doubly-linked list of
   residual arc ids threaded through [next_out]/[prev_out], headed at
   [first_out.(n)], so arc removal is O(1). *)
type t = {
  (* per node *)
  supply : int Vec.t;
  excess : int Vec.t;
  potential : int Vec.t;
  first_out : int Vec.t; (* head of out-list, -1 if empty *)
  node_live : bool Vec.t;
  free_nodes : int Vec.t;
  mutable live_nodes : int;
  (* per residual arc *)
  head : int Vec.t; (* destination of the residual arc *)
  arc_cost : int Vec.t;
  rescap : int Vec.t;
  next_out : int Vec.t;
  prev_out : int Vec.t; (* -1 means "I am the list head" *)
  (* Active adjacency: per-node list of residual arcs with rescap > 0,
     maintained on every residual-capacity transition. *)
  first_active : int Vec.t;
  next_active : int Vec.t;
  prev_active : int Vec.t;
  active_flag : bool Vec.t;
  arc_live : bool Vec.t;
  (* Process-unique stamp assigned at [add_arc] (stored at the even slot
     of the pair). Survives [copy]/[copy_into], changes whenever a freed
     slot is recycled for a new arc — the delta placement extractor uses
     it to tell "same arc, changed flow" from "different arc reusing the
     id". *)
  arc_gen : int Vec.t;
  free_pairs : int Vec.t; (* even base index of each free pair *)
  mutable live_arcs : int; (* forward arcs only *)
  (* change tracking *)
  mutable ch_structural : int;
  mutable ch_cost : int;
  mutable ch_capacity : int;
  mutable ch_supply : int;
  mutable ch_max_cost : int;
}

type change_summary = {
  structural : int;
  cost_changes : int;
  capacity_changes : int;
  supply_changes : int;
  max_changed_cost : int;
}

let no_changes =
  {
    structural = 0;
    cost_changes = 0;
    capacity_changes = 0;
    supply_changes = 0;
    max_changed_cost = 0;
  }

let create ?(node_hint = 16) ?(arc_hint = 64) () =
  (* Residual storage holds two entries per arc pair. *)
  let n = max 8 node_hint and r = max 16 (2 * arc_hint) in
  {
    supply = Vec.create ~capacity:n ~dummy:0 ();
    excess = Vec.create ~capacity:n ~dummy:0 ();
    potential = Vec.create ~capacity:n ~dummy:0 ();
    first_out = Vec.create ~capacity:n ~dummy:(-1) ();
    node_live = Vec.create ~capacity:n ~dummy:false ();
    free_nodes = Vec.create ~dummy:(-1) ();
    live_nodes = 0;
    head = Vec.create ~capacity:r ~dummy:(-1) ();
    arc_cost = Vec.create ~capacity:r ~dummy:0 ();
    rescap = Vec.create ~capacity:r ~dummy:0 ();
    next_out = Vec.create ~capacity:r ~dummy:(-1) ();
    prev_out = Vec.create ~capacity:r ~dummy:(-1) ();
    first_active = Vec.create ~capacity:n ~dummy:(-1) ();
    next_active = Vec.create ~capacity:r ~dummy:(-1) ();
    prev_active = Vec.create ~capacity:r ~dummy:(-1) ();
    active_flag = Vec.create ~capacity:r ~dummy:false ();
    arc_live = Vec.create ~capacity:r ~dummy:false ();
    arc_gen = Vec.create ~capacity:r ~dummy:0 ();
    free_pairs = Vec.create ~dummy:(-1) ();
    live_arcs = 0;
    ch_structural = 0;
    ch_cost = 0;
    ch_capacity = 0;
    ch_supply = 0;
    ch_max_cost = 0;
  }

let node_bound g = Vec.length g.supply
let node_count g = g.live_nodes
let node_is_live g n = n >= 0 && n < node_bound g && Vec.get g.node_live n
let arc_bound g = Vec.length g.head
let arc_count g = g.live_arcs
let arc_is_live g a = a >= 0 && a < arc_bound g && Vec.get g.arc_live a

let check_node g n ctx = if not (node_is_live g n) then invalid_arg ("Graph: dead node in " ^ ctx)
let check_arc g a ctx = if not (arc_is_live g a) then invalid_arg ("Graph: dead arc in " ^ ctx)

let note_cost_change g c =
  g.ch_cost <- g.ch_cost + 1;
  if abs c > g.ch_max_cost then g.ch_max_cost <- abs c

let add_node g ~supply =
  g.ch_structural <- g.ch_structural + 1;
  g.live_nodes <- g.live_nodes + 1;
  if Vec.is_empty g.free_nodes then begin
    let n = Vec.push g.supply supply in
    ignore (Vec.push g.excess supply);
    ignore (Vec.push g.potential 0);
    ignore (Vec.push g.first_out (-1));
    ignore (Vec.push g.first_active (-1));
    ignore (Vec.push g.node_live true);
    n
  end
  else begin
    let n = Vec.pop g.free_nodes in
    Vec.set g.supply n supply;
    Vec.set g.excess n supply;
    Vec.set g.potential n 0;
    Vec.set g.first_out n (-1);
    Vec.set g.first_active n (-1);
    Vec.set g.node_live n true;
    n
  end

(* Unchecked Vec accessors for the kernels below. Every index fed to them
   is proven live by construction: it came off one of the graph's own
   intrusive lists, or was bounds-checked once on entry (see push). The
   checked API stays in force everywhere else — see DESIGN.md. *)
let uget = Vec.unsafe_get
let uset = Vec.unsafe_set

let rev a = a lxor 1
let is_forward a = a land 1 = 0
let dst g a = uget g.head a
let src g a = uget g.head (rev a)
let cost g a = uget g.arc_cost a
let rescap g a = uget g.rescap a

let flow g a =
  if not (is_forward a) then invalid_arg "Graph.flow: reverse arc";
  Vec.get g.rescap (rev a)

let capacity g a =
  if not (is_forward a) then invalid_arg "Graph.capacity: reverse arc";
  Vec.get g.rescap a + Vec.get g.rescap (rev a)

(* Generation stamp of the (live or dead) pair occupying slot [a]; 0 if
   the slot was never used. Deliberately unchecked on liveness so dirty
   scans can read dead slots. *)
let arc_generation g a =
  let a = a land lnot 1 in
  if a < 0 || a >= arc_bound g then invalid_arg "Graph.arc_generation: out of bounds";
  Vec.get g.arc_gen a

let supply g n = Vec.get g.supply n

let set_supply g n b =
  check_node g n "set_supply";
  let old = Vec.get g.supply n in
  if b <> old then begin
    Vec.set g.supply n b;
    Vec.set g.excess n (Vec.get g.excess n + b - old);
    g.ch_supply <- g.ch_supply + 1
  end

let excess g n = uget g.excess n
let potential g n = uget g.potential n
let set_potential g n p = uset g.potential n p

let reduced_cost g a =
  uget g.arc_cost a - uget g.potential (src g a) + uget g.potential (dst g a)

(* Link residual arc [a] (with head already set) into [from]'s out-list. *)
let link_out g ~from a =
  let h = Vec.get g.first_out from in
  Vec.set g.next_out a h;
  Vec.set g.prev_out a (-1);
  if h >= 0 then Vec.set g.prev_out h a;
  Vec.set g.first_out from a

let unlink_out g ~from a =
  let p = Vec.get g.prev_out a and n = Vec.get g.next_out a in
  if p >= 0 then Vec.set g.next_out p n else Vec.set g.first_out from n;
  if n >= 0 then Vec.set g.prev_out n p;
  Vec.set g.next_out a (-1);
  Vec.set g.prev_out a (-1)

(* Insert residual arc [a] (tail [from]) into the active list. *)
let activate g ~from a =
  if not (uget g.active_flag a) then begin
    uset g.active_flag a true;
    let h = uget g.first_active from in
    uset g.next_active a h;
    uset g.prev_active a (-1);
    if h >= 0 then uset g.prev_active h a;
    uset g.first_active from a
  end

let deactivate g ~from a =
  if uget g.active_flag a then begin
    uset g.active_flag a false;
    let p = uget g.prev_active a and n = uget g.next_active a in
    if p >= 0 then uset g.next_active p n else uset g.first_active from n;
    if n >= 0 then uset g.prev_active n p;
    uset g.next_active a (-1);
    uset g.prev_active a (-1)
  end

(* Reconcile arc [a]'s active-list membership with its residual capacity. *)
let sync_active g a =
  let from = uget g.head (rev a) in
  if uget g.rescap a > 0 then activate g ~from a else deactivate g ~from a

(* Process-wide arc-generation counter: every [add_arc] in any graph gets
   a distinct stamp, so a stamp equality across graph copies identifies
   "the same arc" even after a slot was freed and recycled. Atomic only
   for safety — arcs are added from the coordinating thread, never from
   solver domains. *)
let gen_counter = Atomic.make 1

let add_arc g ~src:s ~dst:d ~cost:c ~cap =
  if cap < 0 then invalid_arg "Graph.add_arc: negative capacity";
  check_node g s "add_arc";
  check_node g d "add_arc";
  g.ch_structural <- g.ch_structural + 1;
  if abs c > g.ch_max_cost then g.ch_max_cost <- abs c;
  g.live_arcs <- g.live_arcs + 1;
  let gen = Atomic.fetch_and_add gen_counter 1 in
  let a =
    if Vec.is_empty g.free_pairs then begin
      let a = Vec.push g.head d in
      ignore (Vec.push g.head s);
      ignore (Vec.push g.arc_cost c);
      ignore (Vec.push g.arc_cost (-c));
      ignore (Vec.push g.rescap cap);
      ignore (Vec.push g.rescap 0);
      ignore (Vec.push g.next_out (-1));
      ignore (Vec.push g.next_out (-1));
      ignore (Vec.push g.prev_out (-1));
      ignore (Vec.push g.prev_out (-1));
      ignore (Vec.push g.next_active (-1));
      ignore (Vec.push g.next_active (-1));
      ignore (Vec.push g.prev_active (-1));
      ignore (Vec.push g.prev_active (-1));
      ignore (Vec.push g.active_flag false);
      ignore (Vec.push g.active_flag false);
      ignore (Vec.push g.arc_live true);
      ignore (Vec.push g.arc_live true);
      ignore (Vec.push g.arc_gen gen);
      ignore (Vec.push g.arc_gen gen);
      a
    end
    else begin
      let a = Vec.pop g.free_pairs in
      Vec.set g.head a d;
      Vec.set g.head (a + 1) s;
      Vec.set g.arc_cost a c;
      Vec.set g.arc_cost (a + 1) (-c);
      Vec.set g.rescap a cap;
      Vec.set g.rescap (a + 1) 0;
      Vec.set g.arc_live a true;
      Vec.set g.arc_live (a + 1) true;
      Vec.set g.arc_gen a gen;
      Vec.set g.arc_gen (a + 1) gen;
      a
    end
  in
  link_out g ~from:s a;
  link_out g ~from:d (a + 1);
  sync_active g a;
  sync_active g (a + 1);
  a

let remove_arc g a0 =
  check_arc g a0 "remove_arc";
  let a = a0 land lnot 1 in
  (* Credit flow back to the endpoints. Removing an arc carrying f units
     means src regains f of outflow (excess rises) and dst loses f of
     inflow (excess falls). *)
  let f = Vec.get g.rescap (a + 1) in
  let s = Vec.get g.head (a + 1) and d = Vec.get g.head a in
  if f > 0 then begin
    Vec.set g.excess s (Vec.get g.excess s + f);
    Vec.set g.excess d (Vec.get g.excess d - f)
  end;
  deactivate g ~from:s a;
  deactivate g ~from:d (a + 1);
  unlink_out g ~from:s a;
  unlink_out g ~from:d (a + 1);
  Vec.set g.arc_live a false;
  Vec.set g.arc_live (a + 1) false;
  g.live_arcs <- g.live_arcs - 1;
  g.ch_structural <- g.ch_structural + 1;
  ignore (Vec.push g.free_pairs a)

let remove_node g n =
  check_node g n "remove_node";
  (* Each incident pair appears exactly once in n's out-list (the forward
     member for arcs leaving n, the reverse member for arcs entering). *)
  let rec drop () =
    let a = Vec.get g.first_out n in
    if a >= 0 then begin
      remove_arc g a;
      drop ()
    end
  in
  drop ();
  Vec.set g.node_live n false;
  Vec.set g.first_active n (-1);
  Vec.set g.supply n 0;
  Vec.set g.excess n 0;
  Vec.set g.potential n 0;
  g.live_nodes <- g.live_nodes - 1;
  g.ch_structural <- g.ch_structural + 1;
  ignore (Vec.push g.free_nodes n)

let set_cost g a c =
  check_arc g a "set_cost";
  if not (is_forward a) then invalid_arg "Graph.set_cost: reverse arc";
  if Vec.get g.arc_cost a <> c then begin
    Vec.set g.arc_cost a c;
    Vec.set g.arc_cost (rev a) (-c);
    note_cost_change g c
  end

let set_capacity g a u =
  check_arc g a "set_capacity";
  if not (is_forward a) then invalid_arg "Graph.set_capacity: reverse arc";
  if u < 0 then invalid_arg "Graph.set_capacity: negative capacity";
  let f = Vec.get g.rescap (rev a) in
  g.ch_capacity <- g.ch_capacity + 1;
  if u >= f then Vec.set g.rescap a (u - f)
  else begin
    (* Push the overflow back: the arc now carries exactly u. *)
    let over = f - u in
    let s = src g a and d = dst g a in
    Vec.set g.rescap (rev a) u;
    Vec.set g.rescap a 0;
    Vec.set g.excess s (Vec.get g.excess s + over);
    Vec.set g.excess d (Vec.get g.excess d - over)
  end;
  sync_active g a;
  sync_active g (rev a)

let push g a d =
  if d < 0 then invalid_arg "Graph.push: negative amount";
  (* This checked read also validates [a]; everything below may go
     unchecked (rev a lives in the same pair, heads are live nodes). *)
  if d > Vec.get g.rescap a then invalid_arg "Graph.push: exceeds residual capacity";
  if d > 0 then begin
    let s = src g a and t = dst g a in
    uset g.rescap a (uget g.rescap a - d);
    uset g.rescap (rev a) (uget g.rescap (rev a) + d);
    uset g.excess s (uget g.excess s - d);
    uset g.excess t (uget g.excess t + d);
    if uget g.rescap a = 0 then deactivate g ~from:s a;
    activate g ~from:t (rev a)
  end

let iter_out g n f =
  let rec go a =
    if a >= 0 then begin
      let nxt = Vec.get g.next_out a in
      f a;
      go nxt
    end
  in
  go (Vec.get g.first_out n)

let first_out g n = uget g.first_out n
let next_out g a = uget g.next_out a
let first_active g n = uget g.first_active n
let next_active g a = uget g.next_active a

let iter_nodes g f =
  for n = 0 to node_bound g - 1 do
    if Vec.get g.node_live n then f n
  done

let iter_arcs g f =
  let bound = arc_bound g in
  let a = ref 0 in
  while !a < bound do
    if Vec.get g.arc_live !a then f !a;
    a := !a + 2
  done

let out_degree g n =
  let d = ref 0 in
  iter_out g n (fun _ -> incr d);
  !d

let total_cost g =
  let acc = ref 0 in
  iter_arcs g (fun a -> acc := !acc + (cost g a * flow g a));
  !acc

let max_arc_cost g =
  let m = ref 0 in
  iter_arcs g (fun a -> if abs (cost g a) > !m then m := abs (cost g a));
  !m

let reset_flow g =
  iter_arcs g (fun a ->
      let u = capacity g a in
      Vec.set g.rescap a u;
      Vec.set g.rescap (rev a) 0;
      sync_active g a;
      sync_active g (rev a));
  iter_nodes g (fun n ->
      Vec.set g.excess n (Vec.get g.supply n);
      Vec.set g.potential n 0)

let copy g =
  {
    supply = Vec.copy g.supply;
    excess = Vec.copy g.excess;
    potential = Vec.copy g.potential;
    first_out = Vec.copy g.first_out;
    node_live = Vec.copy g.node_live;
    free_nodes = Vec.copy g.free_nodes;
    live_nodes = g.live_nodes;
    head = Vec.copy g.head;
    arc_cost = Vec.copy g.arc_cost;
    rescap = Vec.copy g.rescap;
    next_out = Vec.copy g.next_out;
    prev_out = Vec.copy g.prev_out;
    first_active = Vec.copy g.first_active;
    next_active = Vec.copy g.next_active;
    prev_active = Vec.copy g.prev_active;
    active_flag = Vec.copy g.active_flag;
    arc_live = Vec.copy g.arc_live;
    arc_gen = Vec.copy g.arc_gen;
    free_pairs = Vec.copy g.free_pairs;
    live_arcs = g.live_arcs;
    ch_structural = g.ch_structural;
    ch_cost = g.ch_cost;
    ch_capacity = g.ch_capacity;
    ch_supply = g.ch_supply;
    ch_max_cost = g.ch_max_cost;
  }

let copy_into dst src =
  if dst != src then begin
    Vec.copy_into dst.supply src.supply;
    Vec.copy_into dst.excess src.excess;
    Vec.copy_into dst.potential src.potential;
    Vec.copy_into dst.first_out src.first_out;
    Vec.copy_into dst.node_live src.node_live;
    Vec.copy_into dst.free_nodes src.free_nodes;
    dst.live_nodes <- src.live_nodes;
    Vec.copy_into dst.head src.head;
    Vec.copy_into dst.arc_cost src.arc_cost;
    Vec.copy_into dst.rescap src.rescap;
    Vec.copy_into dst.next_out src.next_out;
    Vec.copy_into dst.prev_out src.prev_out;
    Vec.copy_into dst.first_active src.first_active;
    Vec.copy_into dst.next_active src.next_active;
    Vec.copy_into dst.prev_active src.prev_active;
    Vec.copy_into dst.active_flag src.active_flag;
    Vec.copy_into dst.arc_live src.arc_live;
    Vec.copy_into dst.arc_gen src.arc_gen;
    Vec.copy_into dst.free_pairs src.free_pairs;
    dst.live_arcs <- src.live_arcs;
    dst.ch_structural <- src.ch_structural;
    dst.ch_cost <- src.ch_cost;
    dst.ch_capacity <- src.ch_capacity;
    dst.ch_supply <- src.ch_supply;
    dst.ch_max_cost <- src.ch_max_cost
  end

let peek_changes g =
  {
    structural = g.ch_structural;
    cost_changes = g.ch_cost;
    capacity_changes = g.ch_capacity;
    supply_changes = g.ch_supply;
    max_changed_cost = g.ch_max_cost;
  }

let take_changes g =
  let s = peek_changes g in
  g.ch_structural <- 0;
  g.ch_cost <- 0;
  g.ch_capacity <- 0;
  g.ch_supply <- 0;
  g.ch_max_cost <- 0;
  s
