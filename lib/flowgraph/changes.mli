(** Classification of graph changes (paper §5.2, Table 3).

    Every cluster event reduces to one of three graph-change types — supply,
    capacity, or cost changes. A change may invalidate the {e feasibility}
    of the current flow (some excess becomes non-zero) and/or its
    {e optimality} (complementary slackness stops holding). Incremental
    solvers use this classification to decide how much work a batch of
    changes forces them to redo. *)

type effect = {
  breaks_feasibility : bool;
  breaks_optimality : bool;
}

val no_effect : effect
val ( ||| ) : effect -> effect -> effect

(** [capacity_change ~reduced_cost ~flow ~old_cap ~new_cap] classifies
    resizing an arc, given its current reduced cost and flow.

    - Increasing capacity creates forward residual capacity; this breaks
      complementary slackness iff the reduced cost is negative.
    - Decreasing capacity below the current flow forces the overflow back
      into the endpoint excesses, breaking feasibility. *)
val capacity_change :
  reduced_cost:int -> flow:int -> old_cap:int -> new_cap:int -> effect

(** [cost_change ~reduced_cost_after ~flow ~forward_rescap] classifies a
    cost change: optimality breaks iff the new reduced cost is negative on
    an arc with forward residual capacity, or positive on an arc carrying
    flow. Cost changes never break feasibility. *)
val cost_change :
  reduced_cost_after:int -> flow:int -> forward_rescap:int -> effect

(** [supply_change ~delta] classifies changing a node's supply: any
    non-zero delta shifts the node's excess and breaks feasibility. *)
val supply_change : delta:int -> effect

(** [classify_arc g a ~f] applies the mutation [f] (which must only touch
    arc [a]) and returns the classified effect, computed from the state
    before and after. Convenience for tests and the graph manager. *)
val classify_arc : Graph.t -> Graph.arc -> f:(unit -> unit) -> effect
