(** Flow validity and optimality checkers.

    These implement the three optimality conditions of §4 of the paper
    (negative-cycle, reduced-cost, and complementary-slackness optimality)
    and are used by the test suite to verify every solver, and by solvers
    in debug builds. All run in polynomial time on the residual network. *)

type violation =
  | Nonzero_excess of Graph.node * int
  | Negative_rescap of Graph.arc * int
  | Negative_reduced_cost_arc of Graph.arc * int
      (** residual arc with capacity left and negative reduced cost *)
  | Slack_violation of Graph.arc * int
      (** forward arc with positive reduced cost carrying flow *)
  | Negative_cycle of Graph.node list

val pp_violation : Format.formatter -> violation -> unit

(** [feasibility g] returns all feasibility violations: non-zero excesses
    or negative residual capacities. *)
val feasibility : Graph.t -> violation list

val is_feasible : Graph.t -> bool

(** [reduced_cost_optimality g] checks condition 2 of §4 against the node
    potentials stored in [g]: no residual arc with spare capacity may have
    negative reduced cost. *)
val reduced_cost_optimality : Graph.t -> violation list

val is_reduced_cost_optimal : Graph.t -> bool

(** [is_epsilon_optimal g ~eps] checks the relaxed condition used by cost
    scaling: no residual arc with spare capacity has reduced cost < -eps. *)
val is_epsilon_optimal : Graph.t -> eps:int -> bool

(** [negative_cycle g] searches the residual network for a directed cycle
    of negative total cost (condition 1 of §4); [None] means the flow is
    optimal provided it is feasible. Bellman–Ford, O(N·M). *)
val negative_cycle : Graph.t -> Graph.node list option

(** [is_optimal g] is feasibility + negative-cycle-freedom: the
    potential-free ground truth used to cross-check all solvers. *)
val is_optimal : Graph.t -> bool

(** [check_exn g] raises [Failure] with a description if [g]'s flow is not
    feasible and optimal. *)
val check_exn : Graph.t -> unit
