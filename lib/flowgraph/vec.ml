type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) ~dummy () =
  { data = Array.make (max 8 capacity) dummy; len = 0; dummy }

let make n ~dummy x =
  let cap = max 8 n in
  let data = Array.make cap dummy in
  Array.fill data 0 n x;
  { data; len = n; dummy }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  Array.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  Array.unsafe_set v.data i x

(* Unchecked accessors for solver inner loops. Callers must prove
   [0 <= i < length v] by construction; see DESIGN.md "Memory discipline". *)
let unsafe_get v i = Array.unsafe_get v.data i
let unsafe_set v i x = Array.unsafe_set v.data i x

let ensure_capacity v n =
  let cap = Array.length v.data in
  if n > cap then begin
    let cap' =
      let c = ref (max 8 cap) in
      while !c < n do
        c := !c * 2
      done;
      !c
    in
    let data' = Array.make cap' v.dummy in
    Array.blit v.data 0 data' 0 v.len;
    v.data <- data'
  end

let push v x =
  ensure_capacity v (v.len + 1);
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1;
  v.len - 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  let x = Array.unsafe_get v.data v.len in
  Array.unsafe_set v.data v.len v.dummy;
  x

let grow_to v n x =
  if n > v.len then begin
    ensure_capacity v n;
    Array.fill v.data v.len (n - v.len) x;
    v.len <- n
  end

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let is_empty v = v.len = 0

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let to_list v =
  let rec build i acc = if i < 0 then acc else build (i - 1) (v.data.(i) :: acc) in
  build (v.len - 1) []

let of_list ~dummy xs =
  let v = create ~dummy () in
  List.iter (fun x -> ignore (push v x)) xs;
  v

let copy v = { data = Array.copy v.data; len = v.len; dummy = v.dummy }

let copy_into dst src =
  if dst != src then begin
    ensure_capacity dst src.len;
    Array.blit src.data 0 dst.data 0 src.len;
    if dst.len > src.len then
      (* Shrink: scrub the abandoned tail so no stale elements are
         retained (matters for GC when 'a is boxed). *)
      Array.fill dst.data src.len (dst.len - src.len) dst.dummy;
    dst.len <- src.len
  end
