type violation =
  | Nonzero_excess of Graph.node * int
  | Negative_rescap of Graph.arc * int
  | Negative_reduced_cost_arc of Graph.arc * int
  | Slack_violation of Graph.arc * int
  | Negative_cycle of Graph.node list

let pp_violation ppf = function
  | Nonzero_excess (n, e) -> Format.fprintf ppf "node %d has excess %d" n e
  | Negative_rescap (a, r) -> Format.fprintf ppf "arc %d has residual capacity %d" a r
  | Negative_reduced_cost_arc (a, c) ->
      Format.fprintf ppf "residual arc %d has negative reduced cost %d with spare capacity" a c
  | Slack_violation (a, c) ->
      Format.fprintf ppf "arc %d carries flow despite positive reduced cost %d" a c
  | Negative_cycle ns ->
      Format.fprintf ppf "negative-cost residual cycle through nodes %a"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        ns

let feasibility g =
  let vs = ref [] in
  Graph.iter_nodes g (fun n ->
      let e = Graph.excess g n in
      if e <> 0 then vs := Nonzero_excess (n, e) :: !vs);
  Graph.iter_arcs g (fun a ->
      if Graph.rescap g a < 0 then vs := Negative_rescap (a, Graph.rescap g a) :: !vs;
      let r = Graph.rev a in
      if Graph.rescap g r < 0 then vs := Negative_rescap (r, Graph.rescap g r) :: !vs);
  !vs

let is_feasible g = feasibility g = []

let residual_arc_violations g ~eps =
  let vs = ref [] in
  let consider a =
    if Graph.rescap g a > 0 then begin
      let rc = Graph.reduced_cost g a in
      if rc < -eps then vs := Negative_reduced_cost_arc (a, rc) :: !vs
    end
  in
  Graph.iter_arcs g (fun a ->
      consider a;
      consider (Graph.rev a));
  !vs

let reduced_cost_optimality g = residual_arc_violations g ~eps:0
let is_reduced_cost_optimal g = reduced_cost_optimality g = []
let is_epsilon_optimal g ~eps = residual_arc_violations g ~eps = []

(* Bellman-Ford over the residual network from a virtual super-source
   (distance 0 everywhere initially), detecting any negative cycle. *)
let negative_cycle g =
  let bound = Graph.node_bound g in
  if bound = 0 then None
  else begin
    let dist = Array.make bound 0 in
    let parent_arc = Array.make bound (-1) in
    let improved = ref true in
    let last_improved = ref (-1) in
    let rounds = ref 0 in
    let n_live = Graph.node_count g in
    while !improved && !rounds <= n_live do
      improved := false;
      incr rounds;
      Graph.iter_arcs g (fun a ->
          let relax a =
            if Graph.rescap g a > 0 then begin
              let u = Graph.src g a and v = Graph.dst g a in
              let d = dist.(u) + Graph.cost g a in
              if d < dist.(v) then begin
                dist.(v) <- d;
                parent_arc.(v) <- a;
                improved := true;
                last_improved := v
              end
            end
          in
          relax a;
          relax (Graph.rev a))
    done;
    if not !improved then None
    else begin
      (* Walk parents n times to land inside the cycle, then collect it. *)
      let v = ref !last_improved in
      for _ = 1 to n_live do
        v := Graph.src g parent_arc.(!v)
      done;
      let start = !v in
      let cycle = ref [ start ] in
      let u = ref (Graph.src g parent_arc.(start)) in
      while !u <> start do
        cycle := !u :: !cycle;
        u := Graph.src g parent_arc.(!u)
      done;
      Some !cycle
    end
  end

let is_optimal g = is_feasible g && negative_cycle g = None

let check_exn g =
  match feasibility g with
  | v :: _ -> failwith (Format.asprintf "infeasible flow: %a" pp_violation v)
  | [] -> (
      match negative_cycle g with
      | Some c -> failwith (Format.asprintf "non-optimal flow: %a" pp_violation (Negative_cycle c))
      | None -> ())
