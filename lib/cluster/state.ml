type t = {
  topology : Topology.t;
  tasks : (Types.task_id, Workload.task) Hashtbl.t;
  jobs : (Types.job_id, Workload.job) Hashtbl.t;
  (* Waiting set plus an insertion-ordered list (lazily compacted). *)
  waiting : (Types.task_id, unit) Hashtbl.t;
  mutable waiting_order : Types.task_id list;  (* newest first *)
  running_on : (Types.task_id, unit) Hashtbl.t array;  (* per machine *)
  machine_live : bool array;
  mutable used_slots : int;
  mutable live_tasks : int;
  (* Staleness epochs for pipelined scheduling rounds: a logical clock
     advanced by every event that can invalidate an in-flight placement
     (task finish/preemption, machine failure), and per-task/per-machine
     stamps of the last such event. A round stamps the clock at begin
     ([stamp_round]); at commit, anything stamped after the mark went
     stale mid-solve. *)
  mutable event_epoch : int;
  mutable round_mark : int;
  task_stale_at : (Types.task_id, int) Hashtbl.t;
  machine_stale_at : int array;
}

let create topology =
  let n = Topology.machine_count topology in
  {
    topology;
    tasks = Hashtbl.create 1024;
    jobs = Hashtbl.create 64;
    waiting = Hashtbl.create 1024;
    waiting_order = [];
    running_on = Array.init n (fun _ -> Hashtbl.create 8);
    machine_live = Array.make n true;
    used_slots = 0;
    live_tasks = 0;
    event_epoch = 0;
    round_mark = 0;
    task_stale_at = Hashtbl.create 1024;
    machine_stale_at = Array.make n 0;
  }

let invalidate_task t tid =
  t.event_epoch <- t.event_epoch + 1;
  Hashtbl.replace t.task_stale_at tid t.event_epoch

let topology t = t.topology

let task t tid =
  match Hashtbl.find_opt t.tasks tid with
  | Some task -> task
  | None -> invalid_arg (Printf.sprintf "State.task: unknown task %d" tid)

let job t jid =
  match Hashtbl.find_opt t.jobs jid with
  | Some j -> j
  | None -> invalid_arg (Printf.sprintf "State.job: unknown job %d" jid)

let job_of_task t tid = job t (task t tid).Workload.job

let submit_job t (j : Workload.job) =
  if Hashtbl.mem t.jobs j.Workload.jid then
    invalid_arg (Printf.sprintf "State.submit_job: duplicate job %d" j.Workload.jid);
  Hashtbl.add t.jobs j.Workload.jid j;
  Array.iter
    (fun (task : Workload.task) ->
      Hashtbl.add t.tasks task.Workload.tid task;
      Hashtbl.replace t.waiting task.Workload.tid ();
      t.waiting_order <- task.Workload.tid :: t.waiting_order;
      t.live_tasks <- t.live_tasks + 1)
    j.Workload.tasks

let machine_is_live t m = t.machine_live.(m)
let running_count t m = Hashtbl.length t.running_on.(m)

let free_slots_on t m =
  if not t.machine_live.(m) then 0
  else (Topology.machine t.topology m).Topology.slots - running_count t m

let used_resources t m =
  Hashtbl.fold
    (fun tid () acc -> Resources.add acc (task t tid).Workload.request)
    t.running_on.(m) Resources.zero

let fits_on t m (tk : Workload.task) =
  free_slots_on t m > 0
  && Resources.fits ~request:tk.Workload.request
       ~available:
         (Resources.sub (Topology.machine t.topology m).Topology.capacity (used_resources t m))

let place t tid m ~now =
  if not t.machine_live.(m) then invalid_arg "State.place: dead machine";
  if free_slots_on t m <= 0 then
    invalid_arg (Printf.sprintf "State.place: machine %d has no free slot" m);
  let task = task t tid in
  Workload.start task ~machine:m ~now;
  Hashtbl.remove t.waiting tid;
  Hashtbl.replace t.running_on.(m) tid ();
  t.used_slots <- t.used_slots + 1

let preempt t tid =
  let task = task t tid in
  match Workload.machine_of task with
  | None -> invalid_arg "State.preempt: task not running"
  | Some m ->
      Workload.preempt task;
      Hashtbl.remove t.running_on.(m) tid;
      Hashtbl.replace t.waiting tid ();
      t.waiting_order <- tid :: t.waiting_order;
      t.used_slots <- t.used_slots - 1;
      invalidate_task t tid

let finish t tid ~now =
  let task = task t tid in
  match Workload.machine_of task with
  | None -> invalid_arg "State.finish: task not running"
  | Some m ->
      Workload.finish task ~now;
      Hashtbl.remove t.running_on.(m) tid;
      t.used_slots <- t.used_slots - 1;
      t.live_tasks <- t.live_tasks - 1;
      invalidate_task t tid

let fail_machine t m =
  if not t.machine_live.(m) then []
  else begin
    let victims = Hashtbl.fold (fun tid () acc -> tid :: acc) t.running_on.(m) [] in
    List.iter (fun tid -> preempt t tid) victims;
    t.machine_live.(m) <- false;
    t.event_epoch <- t.event_epoch + 1;
    t.machine_stale_at.(m) <- t.event_epoch;
    victims
  end

let restore_machine t m = t.machine_live.(m) <- true

let stamp_round t = t.round_mark <- t.event_epoch
let event_epoch t = t.event_epoch
let round_epoch t = t.round_mark

let task_stale t tid =
  match Hashtbl.find_opt t.task_stale_at tid with
  | Some e -> e > t.round_mark
  | None -> false

let machine_stale t m = t.machine_stale_at.(m) > t.round_mark

let waiting_tasks t =
  (* Compact the order list (drop ids no longer waiting, dedup re-entries
     keeping the oldest position), oldest first. The compacted order is
     stored back, so the walk is O(currently waiting + appended since the
     last call) — without the write-back the list is an append-only
     history of every task that ever waited, and a per-round caller (the
     policy refresh) pays an ever-growing O(lifetime submissions) walk. *)
  let ordered = List.rev t.waiting_order in
  let seen = Hashtbl.create (Hashtbl.length t.waiting) in
  let live =
    List.filter
      (fun tid ->
        if Hashtbl.mem t.waiting tid && not (Hashtbl.mem seen tid) then begin
          Hashtbl.add seen tid ();
          true
        end
        else false)
      ordered
  in
  t.waiting_order <- List.rev live;
  List.map (fun tid -> task t tid) live

let waiting_count t = Hashtbl.length t.waiting

let running_tasks_on t m = Hashtbl.fold (fun tid () acc -> tid :: acc) t.running_on.(m) []

let live_task_count t = t.live_tasks

let utilization t =
  let live_slots = ref 0 in
  Topology.iter_machines t.topology (fun m ->
      if t.machine_live.(m.Topology.id) then live_slots := !live_slots + m.Topology.slots);
  if !live_slots = 0 then 1. else float_of_int t.used_slots /. float_of_int !live_slots

let iter_tasks t f = Hashtbl.iter (fun _ task -> f task) t.tasks
let iter_jobs t f = Hashtbl.iter (fun _ j -> f j) t.jobs
