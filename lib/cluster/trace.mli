(** Synthetic Google-like workload traces.

    Stand-in for the public Google cluster trace [30] used throughout the
    paper's simulations. The generator is calibrated to the published
    statistics the experiments depend on:

    - ≈150,000 live tasks in ≈1,800 jobs at steady state on 12,500
      machines (paper fn. 2) — scaled proportionally with cluster size,
      like the paper's subsampled traces;
    - heavy-tailed job sizes with ≈1.2 % of jobs exceeding 1,000 tasks and
      a maximum above 20,000 (§4.3);
    - batch/service split via Omega-style priority classification, with
      long-running service jobs holding a large share of slots and batch
      jobs providing the churn;
    - batch input sizes estimated from runtimes (paper methodology [8]),
      placed as replicated blocks on random machines to drive the Quincy
      policy's locality preference arcs;
    - per-task network-bandwidth requests for the network-aware policy.

    Everything is deterministic given [seed]. The [speedup] parameter
    divides durations and interarrival times (paper Fig. 18). *)

type params = {
  machines : int;
  machines_per_rack : int;
  slots_per_machine : int;
  target_utilization : float;  (** steady-state fraction of slots occupied *)
  service_slot_fraction : float;
      (** share of the occupied slots held by long-running service jobs *)
  batch_task_median_s : float;
  speedup : float;
  horizon_s : float;  (** length of the generated arrival stream, after speedup *)
  locality_replicas : int;  (** machines holding each task's input *)
  machine_mtbf_s : float;
      (** mean time between machine failures across the whole cluster;
          [infinity] (the default) disables failure injection. Failed
          machines restore after {!field-machine_downtime_s}. *)
  machine_downtime_s : float;
  seed : int;
}

(** Defaults modelled on the paper's setup: 40 machines/rack, 12
    slots/machine, 50 % utilization, median batch task of 120 s. *)
val default_params : machines:int -> unit -> params

(** A machine going down (tasks rescheduled) or coming back. *)
type machine_event = Machine_fails of Types.machine_id | Machine_restores of Types.machine_id

type t = {
  topology : Topology.t;
  initial_jobs : Workload.job list;
      (** jobs already in the cluster at time 0 (steady state), with
          residual durations; the replay engine places them first *)
  arrivals : (float * Workload.job) list;  (** time-ordered submission stream *)
  machine_events : (float * machine_event) list;  (** time-ordered failures/restores *)
  params : params;
}

val generate : params -> t

(** [steady_state_tasks p] is the expected number of concurrently live
    tasks implied by [p] (for sanity checks and reporting). *)
val steady_state_tasks : params -> int

(** [job_size_sample ~seed n] draws [n] job sizes from the heavy-tailed
    size distribution (exposed for tests and the Fig. 9 experiment). *)
val job_size_sample : seed:int -> int -> int array
