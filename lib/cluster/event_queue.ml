type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 16 None; size = 0; next_seq = 0 }
let is_empty q = q.size = 0
let length q = q.size

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get q i = match q.heap.(i) with Some e -> e | None -> assert false

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if entry_lt (get q i) (get q p) then begin
      swap q i p;
      sift_up q p
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < q.size && entry_lt (get q l) (get q !m) then m := l;
  if r < q.size && entry_lt (get q r) (get q !m) then m := r;
  if !m <> i then begin
    swap q i !m;
    sift_down q !m
  end

let add q ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  if q.size = Array.length q.heap then begin
    let h = Array.make (2 * q.size) None in
    Array.blit q.heap 0 h 0 q.size;
    q.heap <- h
  end;
  q.heap.(q.size) <- Some { time; seq = q.next_seq; payload };
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek_time q = if q.size = 0 then None else Some (get q 0).time

let pop q =
  if q.size = 0 then invalid_arg "Event_queue.pop: empty";
  let e = get q 0 in
  q.size <- q.size - 1;
  q.heap.(0) <- q.heap.(q.size);
  q.heap.(q.size) <- None;
  if q.size > 0 then sift_down q 0;
  (e.time, e.payload)

let pop_until q time =
  let rec go acc =
    match peek_time q with
    | Some t when t <= time -> go (pop q :: acc)
    | Some _ | None -> List.rev acc
  in
  go []
