(** Shared identifiers and basic enumerations for the cluster substrate. *)

type task_id = int
type job_id = int
type machine_id = int
type rack_id = int

(** Job classification, following Omega's priority-based scheme [32, §2.1]
    as the paper does: service jobs are long-running and take priority;
    batch jobs dominate counts. *)
type job_class = Batch | Service

let pp_job_class ppf c =
  Format.pp_print_string ppf (match c with Batch -> "batch" | Service -> "service")

(** Lifecycle of a task (paper Fig. 1): submitted, waiting to be placed,
    running on a machine, and eventually completed (or failed/evicted). *)
type task_state =
  | Waiting
  | Running of { machine : machine_id; started_at : float }
  | Finished of { response_time : float }
  | Failed

let pp_task_state ppf = function
  | Waiting -> Format.pp_print_string ppf "waiting"
  | Running { machine; _ } -> Format.fprintf ppf "running@%d" machine
  | Finished { response_time } -> Format.fprintf ppf "finished(%.3fs)" response_time
  | Failed -> Format.pp_print_string ppf "failed"
