type task = {
  tid : Types.task_id;
  job : Types.job_id;
  submit_time : float;
  duration : float;
  input_mb : float;
  input_machines : Types.machine_id list;
  net_demand_mbps : int;
  request : Resources.t;
  mutable state : Types.task_state;
  mutable placement_latency : float;
}

type job = {
  jid : Types.job_id;
  klass : Types.job_class;
  job_submit_time : float;
  tasks : task array;
}

let make_task ~tid ~job ~submit_time ~duration ?(input_mb = 0.) ?(input_machines = [])
    ?(net_demand_mbps = 0) ?(request = Resources.slot_equivalent) () =
  {
    tid;
    job;
    submit_time;
    duration;
    input_mb;
    input_machines;
    net_demand_mbps;
    request;
    state = Types.Waiting;
    placement_latency = -1.;
  }

let make_job ~jid ~klass ~submit_time ~tasks = { jid; klass; job_submit_time = submit_time; tasks }

let clone_job j =
  {
    j with
    tasks =
      Array.map
        (fun t -> { t with state = Types.Waiting; placement_latency = -1. })
        j.tasks;
  }

let is_waiting t = t.state = Types.Waiting
let is_running t = match t.state with Types.Running _ -> true | _ -> false

let machine_of t =
  match t.state with Types.Running { machine; _ } -> Some machine | _ -> None

let start t ~machine ~now =
  (match t.state with
  | Types.Waiting -> ()
  | s ->
      invalid_arg
        (Format.asprintf "Workload.start: task %d is %a" t.tid Types.pp_task_state s));
  if t.placement_latency < 0. then t.placement_latency <- now -. t.submit_time;
  t.state <- Types.Running { machine; started_at = now }

let preempt t =
  match t.state with
  | Types.Running _ -> t.state <- Types.Waiting
  | Types.Waiting | Types.Finished _ | Types.Failed ->
      invalid_arg "Workload.preempt: task not running"

let finish t ~now =
  match t.state with
  | Types.Running _ -> t.state <- Types.Finished { response_time = now -. t.submit_time }
  | _ -> invalid_arg "Workload.finish: task not running"
