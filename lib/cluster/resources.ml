type t = { cpu_milli : int; ram_mb : int; disk_mb : int }

let slot_equivalent = { cpu_milli = 1000; ram_mb = 4096; disk_mb = 50_000 }
let zero = { cpu_milli = 0; ram_mb = 0; disk_mb = 0 }

let make ?(cpu_milli = 0) ?(ram_mb = 0) ?(disk_mb = 0) () = { cpu_milli; ram_mb; disk_mb }

let add a b =
  {
    cpu_milli = a.cpu_milli + b.cpu_milli;
    ram_mb = a.ram_mb + b.ram_mb;
    disk_mb = a.disk_mb + b.disk_mb;
  }

let sub a b =
  {
    cpu_milli = max 0 (a.cpu_milli - b.cpu_milli);
    ram_mb = max 0 (a.ram_mb - b.ram_mb);
    disk_mb = max 0 (a.disk_mb - b.disk_mb);
  }

let scale v n =
  { cpu_milli = v.cpu_milli * n; ram_mb = v.ram_mb * n; disk_mb = v.disk_mb * n }

let fits ~request ~available =
  request.cpu_milli <= available.cpu_milli
  && request.ram_mb <= available.ram_mb
  && request.disk_mb <= available.disk_mb

let dominant_share ~request ~capacity =
  let frac r c = if c <= 0 then 0. else float_of_int r /. float_of_int c in
  Float.max
    (frac request.cpu_milli capacity.cpu_milli)
    (Float.max (frac request.ram_mb capacity.ram_mb) (frac request.disk_mb capacity.disk_mb))

let pp ppf v =
  Format.fprintf ppf "{cpu %dm, ram %dMB, disk %dMB}" v.cpu_milli v.ram_mb v.disk_mb

let equal a b = a = b
