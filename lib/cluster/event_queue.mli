(** Discrete-event simulation queue: a binary min-heap keyed by simulated
    time, with FIFO tie-breaking so same-timestamp events preserve
    insertion order (important for deterministic replay). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

(** [add q ~time ev] schedules [ev] at [time].
    @raise Invalid_argument if [time] is NaN. *)
val add : 'a t -> time:float -> 'a -> unit

(** [peek_time q] is the earliest scheduled time, if any. *)
val peek_time : 'a t -> float option

(** [pop q] removes and returns the earliest [(time, event)].
    @raise Invalid_argument on an empty queue. *)
val pop : 'a t -> float * 'a

(** [pop_until q time] removes all events scheduled at or before [time],
    in order. *)
val pop_until : 'a t -> float -> (float * 'a) list
