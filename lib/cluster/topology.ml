type machine = {
  id : Types.machine_id;
  rack : Types.rack_id;
  slots : int;
  net_capacity_mbps : int;
  capacity : Resources.t;
}

type t = {
  machines : machine array;
  racks : Types.machine_id list array;
  slots_per_machine : int;
}

let make ~machines ~machines_per_rack ~slots_per_machine ?(net_capacity_mbps = 10_000)
    ?(resources_per_slot = Resources.slot_equivalent) () =
  if machines <= 0 || machines_per_rack <= 0 || slots_per_machine <= 0 then
    invalid_arg "Topology.make: non-positive parameter";
  let rack_count = (machines + machines_per_rack - 1) / machines_per_rack in
  let capacity = Resources.scale resources_per_slot slots_per_machine in
  let ms =
    Array.init machines (fun id ->
        {
          id;
          rack = id / machines_per_rack;
          slots = slots_per_machine;
          net_capacity_mbps;
          capacity;
        })
  in
  let racks = Array.make rack_count [] in
  Array.iter (fun m -> racks.(m.rack) <- m.id :: racks.(m.rack)) ms;
  Array.iteri (fun i l -> racks.(i) <- List.rev l) racks;
  { machines = ms; racks; slots_per_machine }

let machine_count t = Array.length t.machines
let rack_count t = Array.length t.racks

let machine t id =
  if id < 0 || id >= Array.length t.machines then invalid_arg "Topology.machine: bad id";
  t.machines.(id)

let rack_of t id = (machine t id).rack

let machines_in_rack t r =
  if r < 0 || r >= Array.length t.racks then invalid_arg "Topology.machines_in_rack: bad rack";
  t.racks.(r)

let iter_machines t f = Array.iter f t.machines
let total_slots t = Array.fold_left (fun acc m -> acc + m.slots) 0 t.machines
let slots_per_machine t = t.slots_per_machine
