type params = {
  machines : int;
  machines_per_rack : int;
  slots_per_machine : int;
  target_utilization : float;
  service_slot_fraction : float;
  batch_task_median_s : float;
  speedup : float;
  horizon_s : float;
  locality_replicas : int;
  machine_mtbf_s : float;
  machine_downtime_s : float;
  seed : int;
}

let default_params ~machines () =
  {
    machines;
    machines_per_rack = 40;
    slots_per_machine = 12;
    target_utilization = 0.5;
    service_slot_fraction = 0.4;
    batch_task_median_s = 120.;
    speedup = 1.;
    horizon_s = 600.;
    locality_replicas = 3;
    machine_mtbf_s = infinity;
    machine_downtime_s = 30.;
    seed = 42;
  }

type machine_event = Machine_fails of Types.machine_id | Machine_restores of Types.machine_id

type t = {
  topology : Topology.t;
  initial_jobs : Workload.job list;
  arrivals : (float * Workload.job) list;
  machine_events : (float * machine_event) list;
  params : params;
}

(* {1 Distributions} *)

let lognormal rng ~median ~sigma =
  let u1 = Random.State.float rng 1. and u2 = Random.State.float rng 1. in
  let z = sqrt (-2. *. log (max 1e-12 u1)) *. cos (2. *. Float.pi *. u2) in
  median *. exp (sigma *. z)

let exponential rng ~mean = -.mean *. log (max 1e-12 (Random.State.float rng 1.))

(* Log-uniform integer in [lo, hi]. *)
let log_uniform rng lo hi =
  let llo = log (float_of_int lo) and lhi = log (float_of_int hi) in
  let v = exp (llo +. Random.State.float rng (lhi -. llo)) in
  max lo (min hi (int_of_float v))

(* Heavy-tailed job sizes: ~1.2 % of jobs exceed 1,000 tasks (paper §4.3),
   with a tail reaching beyond 20,000. *)
let job_size rng =
  let u = Random.State.float rng 1. in
  if u < 0.50 then 1
  else if u < 0.80 then 2 + Random.State.int rng 9
  else if u < 0.95 then log_uniform rng 11 100
  else if u < 0.988 then log_uniform rng 101 1000
  else log_uniform rng 1001 24_000

let job_size_sample ~seed n =
  let rng = Random.State.make [| seed |] in
  Array.init n (fun _ -> job_size rng)

(* Mean of the job-size mixture, used to calibrate the arrival rate.
   Estimated empirically once; memoized per process. *)
let mean_job_size =
  lazy
    (let sizes = job_size_sample ~seed:1234 20_000 in
     float_of_int (Array.fold_left ( + ) 0 sizes) /. float_of_int (Array.length sizes))

let batch_sigma = 1.4

(* Mean duration of the clamped batch-duration distribution, estimated
   empirically for rate calibration. *)
let batch_duration rng ~median =
  Float.max 1. (Float.min (4. *. 3600.) (lognormal rng ~median ~sigma:batch_sigma))

let mean_batch_duration ~median =
  let rng = Random.State.make [| 999 |] in
  let n = 20_000 in
  let s = ref 0. in
  for _ = 1 to n do
    s := !s +. batch_duration rng ~median
  done;
  !s /. float_of_int n

(* Batch input size from runtime, following the paper's methodology [8]:
   longer tasks read more, with lognormal spread. *)
let input_mb_of_duration rng d =
  Float.max 10. (Float.min 100_000. (d *. 5. *. lognormal rng ~median:1.0 ~sigma:0.5))

let net_demand_of rng input_mb duration =
  let mbps = input_mb *. 8. /. Float.max 1. duration in
  max 50 (min 2000 (int_of_float (mbps *. lognormal rng ~median:1.0 ~sigma:0.3)))

let random_machines rng ~machines ~k =
  let rec pick acc n =
    if n = 0 then acc
    else begin
      let m = Random.State.int rng machines in
      if List.mem m acc then pick acc n else pick (m :: acc) (n - 1)
    end
  in
  pick [] (min k machines)

(* HDFS-style block placement: the input is split into 256 MB blocks; each
   lands on one of [replicas] "home" machines (writer affinity) half the
   time, on a uniformly random machine otherwise. Per-machine locality
   fractions therefore range from ~1/blocks (scattered) up to ~50 %
   (concentrated) — which is what makes the preference-arc threshold of
   the Quincy policy meaningful (paper Fig. 15). *)
let block_placements rng ~machines ~replicas ~input_mb =
  let blocks = max 1 (min 40 (int_of_float (input_mb /. 64.))) in
  let homes = Array.of_list (random_machines rng ~machines ~k:(max 1 replicas)) in
  List.init blocks (fun _ ->
      if Random.State.bool rng then homes.(Random.State.int rng (Array.length homes))
      else Random.State.int rng machines)

let steady_state_tasks p =
  int_of_float
    (p.target_utilization
    *. float_of_int (p.machines * p.slots_per_machine))

(* {1 Generation} *)

let generate p =
  if p.machines <= 0 then invalid_arg "Trace.generate: machines <= 0";
  if p.target_utilization < 0. || p.target_utilization > 1.2 then
    invalid_arg "Trace.generate: utilization out of range";
  let rng = Random.State.make [| p.seed |] in
  let topology =
    Topology.make ~machines:p.machines ~machines_per_rack:p.machines_per_rack
      ~slots_per_machine:p.slots_per_machine ()
  in
  let next_task = ref 0 in
  let next_job = ref 0 in
  let fresh_task ~job ~submit_time ~duration =
    let tid = !next_task in
    incr next_task;
    let input_mb = input_mb_of_duration rng duration in
    Workload.make_task ~tid ~job ~submit_time ~duration ~input_mb
      ~input_machines:
        (block_placements rng ~machines:p.machines ~replicas:p.locality_replicas ~input_mb)
      ~net_demand_mbps:(net_demand_of rng input_mb duration)
      ()
  in
  let median = p.batch_task_median_s /. p.speedup in
  let fresh_job ~klass ~submit_time ~n_tasks ~duration_of =
    let jid = !next_job in
    incr next_job;
    let tasks = Array.init n_tasks (fun _ -> fresh_task ~job:jid ~submit_time ~duration:(duration_of ())) in
    Workload.make_job ~jid ~klass ~submit_time ~tasks
  in
  (* Initial steady state: service jobs holding a block of slots with very
     long durations, then batch jobs with residual durations filling the
     remainder of the utilization target. *)
  let total_slots = Topology.total_slots topology in
  let occupied_target = int_of_float (p.target_utilization *. float_of_int total_slots) in
  let service_target =
    int_of_float (p.service_slot_fraction *. float_of_int occupied_target)
  in
  let initial = ref [] in
  let service_placed = ref 0 in
  while !service_placed < service_target do
    let n = min (service_target - !service_placed) (5 + Random.State.int rng 200) in
    let duration_of () = 86_400. *. (1. +. Random.State.float rng 30.) in
    initial := fresh_job ~klass:Types.Service ~submit_time:0. ~n_tasks:n ~duration_of :: !initial;
    service_placed := !service_placed + n
  done;
  let batch_placed = ref 0 in
  let batch_target = occupied_target - service_target in
  while !batch_placed < batch_target do
    let n = min (batch_target - !batch_placed) (job_size rng) in
    (* Residual duration of an in-flight task is a fresh draw (memoryless
       enough for our purposes). *)
    let duration_of () = batch_duration rng ~median in
    initial := fresh_job ~klass:Types.Batch ~submit_time:0. ~n_tasks:n ~duration_of :: !initial;
    batch_placed := !batch_placed + n
  done;
  (* Arrival stream: Poisson job arrivals at the rate that sustains the
     batch share of the utilization target. *)
  let mean_dur = mean_batch_duration ~median in
  let task_rate = float_of_int batch_target /. mean_dur in
  let job_rate = task_rate /. Lazy.force mean_job_size in
  let arrivals = ref [] in
  let t = ref 0. in
  if job_rate > 0. then begin
    let continue = ref true in
    while !continue do
      t := !t +. exponential rng ~mean:(1. /. job_rate);
      if !t > p.horizon_s then continue := false
      else begin
        let n = job_size rng in
        let duration_of () = batch_duration rng ~median in
        arrivals :=
          (!t, fresh_job ~klass:Types.Batch ~submit_time:!t ~n_tasks:n ~duration_of) :: !arrivals
      end
    done
  end;
  (* Failure injection: cluster-wide Poisson failures; each victim comes
     back after the configured downtime. *)
  let machine_events =
    if p.machine_mtbf_s = infinity then []
    else begin
      let evs = ref [] in
      let t = ref 0. in
      let continue = ref true in
      while !continue do
        t := !t +. exponential rng ~mean:p.machine_mtbf_s;
        if !t > p.horizon_s then continue := false
        else begin
          let m = Random.State.int rng p.machines in
          evs := (!t +. p.machine_downtime_s, Machine_restores m) :: (!t, Machine_fails m) :: !evs
        end
      done;
      List.sort (fun (a, _) (b, _) -> compare a b) !evs
    end
  in
  {
    topology;
    initial_jobs = List.rev !initial;
    arrivals = List.rev !arrivals;
    machine_events;
    params = p;
  }
