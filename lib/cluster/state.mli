(** Mutable cluster runtime state shared by all schedulers: which tasks
    exist, where they run, slot accounting, machine liveness. This is the
    "cluster manager" side of paper Fig. 4 — schedulers read it to build
    their view and write placements back through it. *)

type t

val create : Topology.t -> t
val topology : t -> Topology.t

(** [submit_job t job] registers the job and queues all its tasks. *)
val submit_job : t -> Workload.job -> unit

val task : t -> Types.task_id -> Workload.task
val job : t -> Types.job_id -> Workload.job
val job_of_task : t -> Types.task_id -> Workload.job

(** [place t tid m ~now] starts waiting task [tid] on machine [m].
    @raise Invalid_argument if the machine is dead or has no free slot. *)
val place : t -> Types.task_id -> Types.machine_id -> now:float -> unit

(** [preempt t tid] stops a running task and returns it to the wait queue
    (flow-based scheduling may preempt and migrate, §2.2). *)
val preempt : t -> Types.task_id -> unit

(** [finish t tid ~now] completes a running task and frees its slot. *)
val finish : t -> Types.task_id -> now:float -> unit

(** [fail_machine t m] marks [m] dead and preempts everything on it;
    the victims' ids are returned. *)
val fail_machine : t -> Types.machine_id -> Types.task_id list

val restore_machine : t -> Types.machine_id -> unit
val machine_is_live : t -> Types.machine_id -> bool

(** {1 Staleness epochs}

    A logical event clock advanced by every state change that can
    invalidate an in-flight scheduling decision: task finish, task
    preemption (including machine-failure victims) and machine failure.
    A pipelined scheduler stamps the clock when it snapshots the cluster
    ({!stamp_round}); at commit time, {!task_stale} / {!machine_stale}
    tell it which of the solver's placements were computed against state
    that no longer holds and must be discarded. *)

(** [stamp_round t] records the current event epoch as the round mark. *)
val stamp_round : t -> unit

(** Current value of the event clock (advances on finish / preempt /
    machine failure). *)
val event_epoch : t -> int

(** The event epoch recorded by the last {!stamp_round}. *)
val round_epoch : t -> int

(** [task_stale t tid] is [true] iff [tid] finished or was preempted
    after the last {!stamp_round}. *)
val task_stale : t -> Types.task_id -> bool

(** [machine_stale t m] is [true] iff [m] failed after the last
    {!stamp_round} (a later restore does not clear it — placements aimed
    at the machine were still computed against a dead interval). *)
val machine_stale : t -> Types.machine_id -> bool

(** Waiting tasks in submission order. *)
val waiting_tasks : t -> Workload.task list

val waiting_count : t -> int
val running_count : t -> Types.machine_id -> int
val running_tasks_on : t -> Types.machine_id -> Types.task_id list
val free_slots_on : t -> Types.machine_id -> int

(** [used_resources t m] sums the requests of the tasks running on [m]. *)
val used_resources : t -> Types.machine_id -> Resources.t

(** [fits_on t m task] is Borg-style multi-dimensional feasibility (paper
    §7.1): the machine is live, has a free slot, and every dimension of
    the task's request fits into its remaining capacity. With default
    (slot-equivalent) requests this coincides with the slot check. *)
val fits_on : t -> Types.machine_id -> Workload.task -> bool
val live_task_count : t -> int

(** Fraction of live slots occupied. *)
val utilization : t -> float

val iter_tasks : t -> (Workload.task -> unit) -> unit
val iter_jobs : t -> (Workload.job -> unit) -> unit
