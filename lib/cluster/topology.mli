(** Cluster topology: machines grouped into racks, with slot counts and
    network capacities. Mirrors the testbed and simulated clusters of the
    paper (§7.1): homogeneous machines, rack-structured, slot-based
    assignment for comparability with Quincy. *)

type machine = {
  id : Types.machine_id;
  rack : Types.rack_id;
  slots : int;  (** schedulable task slots (paper uses slot-based assignment) *)
  net_capacity_mbps : int;  (** NIC capacity, used by the network-aware policy *)
  capacity : Resources.t;
      (** multi-dimensional capacity; defaults to [slots] slot-equivalents,
          making the resource check coincide with the slot check unless
          heterogeneous capacities or requests are configured *)
}

type t

(** [make ~machines ~machines_per_rack ~slots_per_machine ()] builds a
    homogeneous topology. [net_capacity_mbps] defaults to 10,000 (the 10G
    testbed NICs). @raise Invalid_argument on non-positive parameters. *)
val make :
  machines:int ->
  machines_per_rack:int ->
  slots_per_machine:int ->
  ?net_capacity_mbps:int ->
  ?resources_per_slot:Resources.t ->
  unit ->
  t

val machine_count : t -> int
val rack_count : t -> int
val machine : t -> Types.machine_id -> machine

(** [rack_of t m] is the rack housing machine [m]. *)
val rack_of : t -> Types.machine_id -> Types.rack_id

(** [machines_in_rack t r] lists machine ids in rack [r]. *)
val machines_in_rack : t -> Types.rack_id -> Types.machine_id list

val iter_machines : t -> (machine -> unit) -> unit
val total_slots : t -> int
val slots_per_machine : t -> int
