(** Jobs and tasks, with the lifecycle of paper Fig. 1.

    Tasks carry the attributes the scheduling policies consume: locality
    preferences (machines/racks storing their input, for the Quincy
    policy), input sizes (estimated from runtime as in the paper's
    methodology), and network-bandwidth requests (for the network-aware
    policy). *)

type task = {
  tid : Types.task_id;
  job : Types.job_id;
  submit_time : float;
  duration : float;  (** execution time once started, seconds *)
  input_mb : float;
  input_machines : Types.machine_id list;
      (** machines storing this task's input blocks (locality preferences) *)
  net_demand_mbps : int;  (** bandwidth request for the network-aware policy *)
  request : Resources.t;
      (** multi-dimensional resource request (defaults to one
          slot-equivalent, reducing to the paper's slot model) *)
  mutable state : Types.task_state;
  mutable placement_latency : float;  (** filled at first placement; -1 before *)
}

type job = {
  jid : Types.job_id;
  klass : Types.job_class;
  job_submit_time : float;
  tasks : task array;
}

(** [make_task ~tid ~job ~submit_time ~duration ()] builds a waiting task;
    optional attributes default to no locality, zero input and no network
    demand. *)
val make_task :
  tid:Types.task_id ->
  job:Types.job_id ->
  submit_time:float ->
  duration:float ->
  ?input_mb:float ->
  ?input_machines:Types.machine_id list ->
  ?net_demand_mbps:int ->
  ?request:Resources.t ->
  unit ->
  task

val make_job :
  jid:Types.job_id ->
  klass:Types.job_class ->
  submit_time:float ->
  tasks:task array ->
  job

(** [clone_job j] is a deep copy with every task reset to [Waiting];
    simulation engines clone at intake so one workload description can be
    replayed under several schedulers (tasks are mutable). *)
val clone_job : job -> job

val is_waiting : task -> bool
val is_running : task -> bool
val machine_of : task -> Types.machine_id option

(** [start task ~machine ~now] transitions to Running and records the
    placement latency on first start.
    @raise Invalid_argument if the task is already running or finished. *)
val start : task -> machine:Types.machine_id -> now:float -> unit

(** [preempt task] returns a running task to the waiting state. *)
val preempt : task -> unit

(** [finish task ~now] marks completion and records the response time. *)
val finish : task -> now:float -> unit
