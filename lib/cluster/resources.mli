(** Multi-dimensional resource vectors (paper §7.1).

    Firmament supports multi-dimensional feasibility checking as in Borg
    [35, §3.2]; the paper's evaluation uses slot-based assignment only for
    comparability with Quincy. This module provides the vector type and
    the feasibility arithmetic; {!State.fits_on} combines it with slot
    accounting, and policies/baselines use it to filter placement
    candidates. Slot-based scheduling falls out as the special case where
    every task requests exactly {!slot_equivalent}. *)

type t = {
  cpu_milli : int;  (** milli-cores, Kubernetes-style *)
  ram_mb : int;
  disk_mb : int;
}

(** The nominal resources behind one task slot. *)
val slot_equivalent : t

val zero : t
val make : ?cpu_milli:int -> ?ram_mb:int -> ?disk_mb:int -> unit -> t
val add : t -> t -> t

(** [sub a b] is component-wise subtraction, clamped at zero. *)
val sub : t -> t -> t

(** [scale v n] multiplies every dimension by [n]. *)
val scale : t -> int -> t

(** [fits ~request ~available] is true iff every dimension of [request]
    is at most the corresponding dimension of [available]. *)
val fits : request:t -> available:t -> bool

(** [dominant_share ~request ~capacity] is the largest per-dimension
    utilization fraction (the DRF "dominant share"); 0 for an empty
    capacity. *)
val dominant_share : request:t -> capacity:t -> float

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
