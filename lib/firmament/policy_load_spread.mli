(** Load-spreading policy (paper Fig. 6a).

    The simplest aggregator use: every task has an arc to a single
    cluster-wide aggregator [X]; the cost of each [X → machine] arc is
    proportional to the number of tasks already running there, so machines
    fill up evenly (as in Docker SwarmKit). The policy deliberately makes
    under-populated machines contended destinations, which is exactly the
    relaxation edge case of §4.3 (Fig. 9) and the incremental-cost-scaling
    workload of Fig. 11. *)

type config = {
  cost_per_running_task : int;  (** slope of the X→machine arc cost *)
  unscheduled_base : int;  (** cost of leaving a task waiting... *)
  wait_cost_per_second : int;  (** ...growing with its wait time *)
}

val default_config : config

(** [make ?config ~drain net cluster] wires the policy to a flow network
    and cluster state. [drain] enables the efficient-task-removal
    heuristic (paper §5.3.2). Creates the aggregator and all machine
    nodes up front. *)
val make :
  ?config:config -> drain:bool -> Flow_network.t -> Cluster.State.t -> Policy.t
