type t = {
  mutable keys : int array; (* -1 = empty slot *)
  mutable vals : int array;
  mutable mask : int; (* capacity - 1, capacity a power of two *)
  mutable count : int;
}

let rec pow2_above n c = if c >= n then c else pow2_above n (c * 2)

let create ?(capacity = 16) () =
  let cap = pow2_above (max 8 capacity) 8 in
  { keys = Array.make cap (-1); vals = Array.make cap 0; mask = cap - 1; count = 0 }

let length t = t.count

(* Murmur-style finalizer: linear probing needs well-mixed low bits. *)
let mix k =
  let h = k lxor (k lsr 33) in
  let h = h * 0xFF51AFD7ED558CC in
  let h = h lxor (h lsr 29) in
  h land max_int

let home t k = mix k land t.mask

(* Slot holding [k], or -1 if absent. *)
let rec probe t k i =
  let kk = Array.unsafe_get t.keys i in
  if kk = k then i else if kk < 0 then -1 else probe t k ((i + 1) land t.mask)

let find t k =
  let i = probe t k (home t k) in
  if i < 0 then -1 else Array.unsafe_get t.vals i

let mem t k = probe t k (home t k) >= 0

let rec insert t k v i =
  let kk = Array.unsafe_get t.keys i in
  if kk = k then t.vals.(i) <- v
  else if kk < 0 then begin
    t.keys.(i) <- k;
    t.vals.(i) <- v;
    t.count <- t.count + 1
  end
  else insert t k v ((i + 1) land t.mask)

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * Array.length old_keys in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  t.count <- 0;
  Array.iteri (fun i k -> if k >= 0 then insert t k old_vals.(i) (home t k)) old_keys

let set t k v =
  if k < 0 || v < 0 then invalid_arg "Int_table.set: negative key or value";
  if 2 * (t.count + 1) > Array.length t.keys then grow t;
  insert t k v (home t k)

let remove t k =
  let i = probe t k (home t k) in
  if i >= 0 then begin
    t.count <- t.count - 1;
    let mask = t.mask in
    (* Backward-shift deletion: pull displaced entries over the hole so
       every remaining key stays reachable from its home slot. *)
    let hole = ref i in
    let j = ref ((i + 1) land mask) in
    while t.keys.(!j) >= 0 do
      let h = home t t.keys.(!j) in
      (* Entry at [j] may fill the hole iff its home does not lie in the
         cyclic interval (hole, j] — i.e. probing from [h] would pass
         through the hole anyway. *)
      if (!j - h) land mask >= (!j - !hole) land mask then begin
        t.keys.(!hole) <- t.keys.(!j);
        t.vals.(!hole) <- t.vals.(!j);
        hole := !j
      end;
      j := (!j + 1) land mask
    done;
    t.keys.(!hole) <- -1
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) (-1);
  t.count <- 0

let iter t f =
  for i = 0 to Array.length t.keys - 1 do
    let k = Array.unsafe_get t.keys i in
    if k >= 0 then f k (Array.unsafe_get t.vals i)
  done
