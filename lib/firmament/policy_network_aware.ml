module G = Flowgraph.Graph
module FN = Flow_network

type config = {
  bucket_mbps : int;
  unscheduled_base : int;
  wait_cost_per_second : int;
}

let default_config = { bucket_mbps = 100; unscheduled_base = 100_000; wait_cost_per_second = 100 }

let bucket_of ~config demand =
  let b = (demand + config.bucket_mbps - 1) / config.bucket_mbps * config.bucket_mbps in
  max config.bucket_mbps b

let make ?(config = default_config) ?bandwidth_used ~drain net cluster =
  let topo = Cluster.State.topology cluster in
  (* Default observation: the sum of the demands of tasks we placed. *)
  let default_used m =
    List.fold_left
      (fun acc tid ->
        acc + (Cluster.State.task cluster tid).Cluster.Workload.net_demand_mbps)
      0
      (Cluster.State.running_tasks_on cluster m)
  in
  let used = Option.value ~default:default_used bandwidth_used in
  let bucket_refcount : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* Unit arcs currently installed from request aggregator [b] to machine
     [m] (convex bandwidth pricing; see refresh). *)
  let ra_arcs : (int * int, G.arc array) Hashtbl.t = Hashtbl.create 64 in
  Cluster.Topology.iter_machines topo (fun m ->
      ignore (FN.ensure_machine net m.Cluster.Topology.id ~slots:m.Cluster.Topology.slots));
  let unsched_cost (task : Cluster.Workload.task) ~now =
    config.unscheduled_base
    + (config.wait_cost_per_second
      * int_of_float (Float.max 0. (now -. task.Cluster.Workload.submit_time)))
  in
  let task_bucket (task : Cluster.Workload.task) =
    bucket_of ~config task.Cluster.Workload.net_demand_mbps
  in
  let retain_bucket b =
    Hashtbl.replace bucket_refcount b (1 + Option.value ~default:0 (Hashtbl.find_opt bucket_refcount b));
    FN.ensure_request_agg net b
  in
  let drop_ra_arcs ~pred =
    let stale = Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) ra_arcs [] in
    List.iter (fun k -> Hashtbl.remove ra_arcs k) stale
  in
  let release_bucket b =
    match Hashtbl.find_opt bucket_refcount b with
    | None -> ()
    | Some 1 ->
        Hashtbl.remove bucket_refcount b;
        FN.remove_request_agg net b;
        (* Arc ids are recycled; forget handles that just died. *)
        drop_ra_arcs ~pred:(fun (b', _) -> b' = b)
    | Some n -> Hashtbl.replace bucket_refcount b (n - 1)
  in
  let task_submitted (task : Cluster.Workload.task) =
    let tn = FN.add_task net task.Cluster.Workload.tid in
    let gr = FN.graph net in
    let u = FN.ensure_unscheduled net task.Cluster.Workload.job in
    ignore
      (G.add_arc gr ~src:tn ~dst:u
         ~cost:(unsched_cost task ~now:task.Cluster.Workload.submit_time)
         ~cap:1);
    let ra = retain_bucket (task_bucket task) in
    ignore (G.add_arc gr ~src:tn ~dst:ra ~cost:0 ~cap:1);
    Policy.adjust_unscheduled_capacity net task.Cluster.Workload.job ~delta:1
  in
  let task_finished (task : Cluster.Workload.task) =
    FN.remove_task net task.Cluster.Workload.tid ~drain;
    release_bucket (task_bucket task);
    Policy.adjust_unscheduled_capacity net task.Cluster.Workload.job ~delta:(-1)
  in
  let continuation_cost (task : Cluster.Workload.task) m =
    (* Exclude the task's own contribution to the observed bandwidth, so a
       migration (which restarts the task) must beat staying put by at
       least two requests' worth of load — hysteresis against thrashing. *)
    max 0 (used m - task.Cluster.Workload.net_demand_mbps)
  in
  let task_started (task : Cluster.Workload.task) m =
    let tid = task.Cluster.Workload.tid in
    if FN.reroute_direct net tid m ~cost:(continuation_cost task m) then begin
      match (FN.machine_node net m, FN.unscheduled_node net task.Cluster.Workload.job) with
      | Some mn, Some u -> Policy.prune_task_arcs net tid ~keep:[ mn; u ]
      | _ -> ()
    end
    else begin
      match (FN.task_node net tid, FN.machine_node net m) with
      | Some tn, Some mn ->
          ignore (FN.set_or_add_arc net ~src:tn ~dst:mn ~cost:(continuation_cost task m) ~cap:1)
      | _ -> ()
    end
  in
  let task_preempted (task : Cluster.Workload.task) =
    (* Back to competing via its request aggregator. *)
    match FN.task_node net task.Cluster.Workload.tid with
    | None -> ()
    | Some tn ->
        (match FN.unscheduled_node net task.Cluster.Workload.job with
        | Some u -> Policy.prune_task_arcs net task.Cluster.Workload.tid ~keep:[ u ]
        | None -> ());
        let ra = FN.ensure_request_agg net (task_bucket task) in
        ignore (FN.set_or_add_arc net ~src:tn ~dst:ra ~cost:0 ~cap:1)
  in
  let machine_failed m =
    FN.remove_machine net m;
    drop_ra_arcs ~pred:(fun (_, m') -> m' = m)
  in
  let machine_restored m =
    let info = Cluster.Topology.machine topo m in
    ignore (FN.ensure_machine net m ~slots:info.Cluster.Topology.slots)
  in
  let refresh ~now =
    let gr = FN.graph net in
    (* First traversal: observe per-machine bandwidth and free slots. *)
    let nic m = (Cluster.Topology.machine topo m).Cluster.Topology.net_capacity_mbps in
    let spare = Hashtbl.create 64 in
    Cluster.Topology.iter_machines topo (fun info ->
        let m = info.Cluster.Topology.id in
        if Cluster.State.machine_is_live cluster m then
          Hashtbl.replace spare m (max 0 (nic m - used m)));
    (* Second traversal: re-derive the dynamic RA -> machine arcs. "One
       arc for each task that fits" (Fig. 6c): parallel unit arcs whose
       costs rise by one request per additional task, so concurrent
       placements see the bandwidth they would add to each other. *)
    Hashtbl.iter
      (fun b _count ->
        match FN.ensure_request_agg net b with
        | ra ->
            Cluster.Topology.iter_machines topo (fun info ->
                let m = info.Cluster.Topology.id in
                match (FN.machine_node net m, Hashtbl.find_opt spare m) with
                | Some mn, Some sp ->
                    let fits = min (Cluster.State.free_slots_on cluster m) (sp / b) in
                    let arcs =
                      Option.value ~default:[||] (Hashtbl.find_opt ra_arcs (b, m))
                    in
                    let arcs = Array.to_list arcs in
                    let existing = List.filter (fun a -> G.arc_is_live gr a) arcs in
                    let n_existing = List.length existing in
                    let keep, extra =
                      if n_existing <= fits then (existing, [])
                      else
                        ( List.filteri (fun i _ -> i < fits) existing,
                          List.filteri (fun i _ -> i >= fits) existing )
                    in
                    List.iter (fun a -> G.remove_arc gr a) extra;
                    let added =
                      List.init
                        (max 0 (fits - List.length keep))
                        (fun _ -> G.add_arc gr ~src:ra ~dst:mn ~cost:0 ~cap:1)
                    in
                    let all = keep @ added in
                    List.iteri
                      (fun i a -> G.set_cost gr a (((i + 1) * b) + used m))
                      all;
                    Hashtbl.replace ra_arcs (b, m) (Array.of_list all)
                | _ -> ()))
      bucket_refcount;
    (* Keep continuation costs and unscheduled costs current. *)
    Cluster.State.iter_tasks cluster (fun task ->
        match Cluster.Workload.machine_of task with
        | Some m -> (
            match (FN.task_node net task.Cluster.Workload.tid, FN.machine_node net m) with
            | Some tn, Some mn -> (
                match FN.find_arc net tn mn with
                | Some a -> G.set_cost gr a (continuation_cost task m)
                | None -> ())
            | _ -> ())
        | None -> ());
    List.iter
      (fun (task : Cluster.Workload.task) ->
        match FN.task_node net task.Cluster.Workload.tid with
        | None -> ()
        | Some tn -> (
            match FN.unscheduled_node net task.Cluster.Workload.job with
            | None -> ()
            | Some u -> (
                match FN.find_arc net tn u with
                | Some a -> G.set_cost gr a (unsched_cost task ~now)
                | None -> ())))
      (Cluster.State.waiting_tasks cluster)
  in
  {
    Policy.name = "network-aware";
    task_submitted;
    task_finished;
    task_started;
    task_preempted;
    machine_failed;
    machine_restored;
    refresh;
  }
