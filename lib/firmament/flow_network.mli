(** The scheduling flow network (paper §3.2).

    Wraps a {!Flowgraph.Graph.t} with the node roles of Firmament's
    scheduling graphs — task nodes (sources of one unit of flow), machine
    nodes, policy-defined aggregators (cluster, rack, per-job unscheduled,
    request aggregators), and the single sink — and keeps the id maps
    policies and the placement extractor need.

    Invariants maintained here:
    - every task node has supply 1; the sink's supply is always
      [-(number of task nodes)], adjusted on task addition/removal;
    - machine nodes' only outgoing arc leads to the sink (checked by the
      placement extractor);
    - node handles remain valid across {!set_graph} because {!Race} deals
      in structure-preserving copies. *)

type node_kind =
  | Task_node of Cluster.Types.task_id
  | Machine_node of Cluster.Types.machine_id
  | Rack_node of Cluster.Types.rack_id
  | Cluster_agg
  | Unscheduled_agg of Cluster.Types.job_id
  | Request_agg of int  (** network-aware policy: keyed by bandwidth class *)
  | Sink

val pp_node_kind : Format.formatter -> node_kind -> unit

type t

(** [create ()] builds a network containing only the sink.
    [node_hint]/[arc_hint] pre-size the graph's storage (pass
    cluster-sized estimates to avoid growth doublings mid-round). *)
val create : ?node_hint:int -> ?arc_hint:int -> unit -> t

val graph : t -> Flowgraph.Graph.t

(** [set_graph t g] adopts a structure-preserving copy returned by the
    solver race (same node ids). *)
val set_graph : t -> Flowgraph.Graph.t -> unit

val sink : t -> Flowgraph.Graph.node
val kind : t -> Flowgraph.Graph.node -> node_kind

(** [kind_opt t n] is {!kind} but returns [None] for a node the network no
    longer tracks — e.g. one removed since a solver snapshot was taken. *)
val kind_opt : t -> Flowgraph.Graph.node -> node_kind option

(** {1 Node management} *)

(** [add_task t tid] creates the task's source node (supply 1) and grows
    the sink demand. @raise Invalid_argument if [tid] already has a node. *)
val add_task : t -> Cluster.Types.task_id -> Flowgraph.Graph.node

(** [remove_task t tid ~drain] removes the task node and shrinks the sink
    demand. With [~drain:true] (the efficient-task-removal heuristic,
    paper §5.3.2) the task's unit of flow is first walked to the sink and
    retired, leaving the solution balanced; with [false] the node is
    dropped directly, leaving demand at the downstream node for the next
    incremental solve to repair. *)
val remove_task : t -> Cluster.Types.task_id -> drain:bool -> unit

(** [reroute_direct t tid m] moves the task's unit of flow off whatever
    aggregator path currently carries it and onto the direct
    task→machine arc (creating that arc if missing, with the given
    [cost]). Policies call this when applying a placement so that the
    subsequent cheap continuation arc is {e saturated} rather than an
    open negative-reduced-cost arc — keeping the incremental solver's
    starting ε at the costliest true change (paper §6.2) instead of the
    full cost range. Returns [false] (graph untouched) if the task has no
    routed unit or its path does not traverse [m]. *)
val reroute_direct :
  t -> Cluster.Types.task_id -> Cluster.Types.machine_id -> cost:int -> bool

val task_node : t -> Cluster.Types.task_id -> Flowgraph.Graph.node option
val task_of_node : t -> Flowgraph.Graph.node -> Cluster.Types.task_id option

(** [ensure_machine t m] returns machine [m]'s node, creating it (with its
    arc to the sink, capacity [slots], cost 0) on first use. *)
val ensure_machine :
  t -> Cluster.Types.machine_id -> slots:int -> Flowgraph.Graph.node

val machine_node : t -> Cluster.Types.machine_id -> Flowgraph.Graph.node option
val machine_of_node : t -> Flowgraph.Graph.node -> Cluster.Types.machine_id option

(** [machine_sink_arc t m] is machine [m]'s cached machine→sink arc
    handle (the one created by {!ensure_machine}), or [None] for an
    unknown/removed machine. O(1); replaces the {!find_arc} out-list
    scans the placement extractor used to do per round. The handle stays
    valid across {!set_graph} because the race deals in
    structure-preserving copies. *)
val machine_sink_arc : t -> Cluster.Types.machine_id -> Flowgraph.Graph.arc option

(** [remove_machine t m] removes the machine node and all incident arcs
    (machine failure). *)
val remove_machine : t -> Cluster.Types.machine_id -> unit

val ensure_rack : t -> Cluster.Types.rack_id -> Flowgraph.Graph.node
val rack_node : t -> Cluster.Types.rack_id -> Flowgraph.Graph.node option
val ensure_cluster_agg : t -> Flowgraph.Graph.node

(** [ensure_unscheduled t j] returns job [j]'s unscheduled aggregator,
    creating it (with a zero-capacity arc to the sink, grown as tasks
    arrive) on first use. *)
val ensure_unscheduled : t -> Cluster.Types.job_id -> Flowgraph.Graph.node

val unscheduled_node : t -> Cluster.Types.job_id -> Flowgraph.Graph.node option
val remove_unscheduled : t -> Cluster.Types.job_id -> unit
val ensure_request_agg : t -> int -> Flowgraph.Graph.node
val remove_request_agg : t -> int -> unit

(** {1 Arc helpers} *)

(** [find_arc t src dst] is the forward arc from [src] to [dst], if any
    (linear in [src]'s degree). *)
val find_arc :
  t -> Flowgraph.Graph.node -> Flowgraph.Graph.node -> Flowgraph.Graph.arc option

(** [set_or_add_arc t ~src ~dst ~cost ~cap] updates the existing arc's
    cost/capacity or creates it. Returns the arc. *)
val set_or_add_arc :
  t ->
  src:Flowgraph.Graph.node ->
  dst:Flowgraph.Graph.node ->
  cost:int ->
  cap:int ->
  Flowgraph.Graph.arc

val task_count : t -> int

(** [iter_task_nodes t f] / [iter_machine_nodes t f] iterate the id maps. *)
val iter_task_nodes : t -> (Cluster.Types.task_id -> Flowgraph.Graph.node -> unit) -> unit

val iter_machine_nodes :
  t -> (Cluster.Types.machine_id -> Flowgraph.Graph.node -> unit) -> unit

(** [validate_structure t] checks the structural invariants listed above;
    returns human-readable violations (for tests and debug builds). *)
val validate_structure : t -> string list
