(** Scheduling-policy interface (paper §3.3, Fig. 6).

    A policy owns the shape and costs of the scheduling flow network. The
    scheduler notifies it of every cluster event so it can make the
    corresponding graph changes (paper §5.2: all events reduce to supply,
    capacity, and cost changes), and calls {!refresh} once per scheduling
    round, right before the solver — that is where the two-pass
    statistics-update traversal of §6.3 happens (e.g. per-machine task
    counts, observed network bandwidth, task wait times). *)

type t = {
  name : string;
  task_submitted : Cluster.Workload.task -> unit;
      (** new task: add its node, unscheduled arc and preference arcs *)
  task_finished : Cluster.Workload.task -> unit;
      (** remove the task's node (with the efficient-removal heuristic when
          enabled) and shrink its job's unscheduled capacity *)
  task_started : Cluster.Workload.task -> Cluster.Types.machine_id -> unit;
      (** placement applied: adjust arcs so continuing on this machine is
          the task's cheapest choice *)
  task_preempted : Cluster.Workload.task -> unit;
      (** task returned to the wait queue: restore its submission arcs *)
  machine_failed : Cluster.Types.machine_id -> unit;
  machine_restored : Cluster.Types.machine_id -> unit;
  refresh : now:float -> unit;
}

(** [unscheduled_capacity net job_id ~delta] grows (or shrinks) the
    capacity of a job's unscheduled-aggregator→sink arc, shared by all
    policies as tasks come and go. *)
val adjust_unscheduled_capacity :
  Flow_network.t -> Cluster.Types.job_id -> delta:int -> unit

(** [prune_task_arcs net tid ~keep] removes the task's outgoing arcs to
    every node not in [keep]. Policies prune a freshly placed task's
    unused alternatives so no stale-cost arc is left open (which would
    inflate the incremental solver's starting ε, §6.2); the alternatives
    are reinstalled if the task is later preempted. *)
val prune_task_arcs :
  Flow_network.t -> Cluster.Types.task_id -> keep:Flowgraph.Graph.node list -> unit
