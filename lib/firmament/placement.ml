module G = Flowgraph.Graph
module FN = Flow_network

type assignment = {
  task : Cluster.Types.task_id;
  machine : Cluster.Types.machine_id option;
}

let fail fmt = Format.kasprintf failwith fmt

(* Incoming flow arcs of [n]: reverse residual arcs in n's out-list whose
   residual capacity is the flow on their forward member. *)
let iter_incoming_flow g n f =
  let it = ref (G.first_out g n) in
  while !it >= 0 do
    let a = !it in
    if (not (G.is_forward a)) && G.rescap g a > 0 then
      f ~src:(G.dst g a) ~flow:(G.rescap g a);
    it := G.next_out g a
  done

let extract net =
  let g = FN.graph net in
  let sink = FN.sink net in
  G.iter_nodes g (fun n ->
      if G.excess g n <> 0 then
        fail "Placement.extract: infeasible flow (node %d has excess %d)" n (G.excess g n));
  (* Tokens and Kahn counters. *)
  let tokens : (G.node, Cluster.Types.machine_id list) Hashtbl.t = Hashtbl.create 256 in
  let give n tok =
    Hashtbl.replace tokens n (tok :: (Option.value ~default:[] (Hashtbl.find_opt tokens n)))
  in
  let take n =
    match Hashtbl.find_opt tokens n with
    | Some (tok :: rest) ->
        Hashtbl.replace tokens n rest;
        tok
    | Some [] | None -> fail "Placement.extract: node %d ran out of tokens" n
  in
  (* pending.(n) = machine-bound outgoing flow an aggregator still awaits
     tokens for. Tasks and machines are handled specially. *)
  let pending : (G.node, int) Hashtbl.t = Hashtbl.create 256 in
  let mappings : (Cluster.Types.task_id, Cluster.Types.machine_id) Hashtbl.t =
    Hashtbl.create 256
  in
  let ready = Queue.create () in
  (* Initialize counters for aggregator nodes and mint machine tokens. *)
  G.iter_nodes g (fun n ->
      match FN.kind net n with
      | FN.Sink | FN.Task_node _ | FN.Unscheduled_agg _ -> ()
      | FN.Machine_node m -> (
          match FN.find_arc net n sink with
          | None -> fail "Placement.extract: machine %d lacks a sink arc" m
          | Some a ->
              let f = G.flow g a in
              for _ = 1 to f do
                give n m
              done;
              if f > 0 then Queue.add n ready)
      | FN.Rack_node _ | FN.Cluster_agg | FN.Request_agg _ ->
          let out = ref 0 in
          let it = ref (G.first_out g n) in
          while !it >= 0 do
            let a = !it in
            if G.is_forward a then begin
              if G.dst g a = sink && G.flow g a > 0 then
                fail "Placement.extract: aggregator node %d sends flow directly to the sink" n;
              out := !out + G.flow g a
            end;
            it := G.next_out g a
          done;
          Hashtbl.replace pending n !out);
  (* Backward token propagation. *)
  let distribute n =
    iter_incoming_flow g n (fun ~src ~flow ->
        match FN.kind net src with
        | FN.Task_node tid ->
            if flow <> 1 then fail "Placement.extract: task %d sends flow %d" tid flow;
            Hashtbl.replace mappings tid (take n)
        | FN.Rack_node _ | FN.Cluster_agg | FN.Request_agg _ ->
            for _ = 1 to flow do
              give src (take n)
            done;
            let p = Hashtbl.find pending src - flow in
            Hashtbl.replace pending src p;
            if p = 0 then Queue.add src ready
            else if p < 0 then fail "Placement.extract: node %d over-received tokens" src
        | FN.Machine_node _ ->
            fail "Placement.extract: machine node %d receives flow from node %d downstream" src n
        | FN.Sink -> ()
        | FN.Unscheduled_agg j ->
            fail "Placement.extract: unscheduled aggregator %d feeds a machine-bound node" j)
  in
  while not (Queue.is_empty ready) do
    distribute (Queue.pop ready)
  done;
  let out = ref [] in
  FN.iter_task_nodes net (fun tid _node ->
      out := { task = tid; machine = Hashtbl.find_opt mappings tid } :: !out);
  List.sort (fun a b -> compare a.task b.task) !out

let extract_partial net =
  let g = FN.graph net in
  let sink = FN.sink net in
  (* Walk one unit of flow from [n] toward a machine, consuming it from a
     scratch per-arc budget so two tasks never claim the same unit. The
     walk backtracks: a branch that dead-ends (hop limit, exhausted
     budget, unscheduled aggregator) refunds every unit it consumed and
     the parent tries its next arc — an aborted probe must not leak flow
     that tasks sharing a path prefix could still claim. *)
  let budget : (G.arc, int) Hashtbl.t = Hashtbl.create 256 in
  let remaining a =
    match Hashtbl.find_opt budget a with Some r -> r | None -> G.flow g a
  in
  let consume a = Hashtbl.replace budget a (remaining a - 1) in
  let refund a = Hashtbl.replace budget a (remaining a + 1) in
  let rec walk n hops =
    if hops > 64 then None
    else if n = sink then None
    else
      match FN.kind net n with
      | FN.Machine_node m -> (
          (* Claim a unit of the machine's sink arc: a mid-solve
             pseudoflow may park excess at a machine node, and without
             this check more tasks could land here than the machine's
             slot capacity admits. *)
          match FN.find_arc net n sink with
          | Some a when remaining a > 0 ->
              consume a;
              Some m
          | Some _ | None -> None)
      | FN.Unscheduled_agg _ -> None
      | FN.Task_node _ | FN.Rack_node _ | FN.Cluster_agg | FN.Request_agg _ | FN.Sink ->
          let result = ref None in
          let it = ref (G.first_out g n) in
          while !result = None && !it >= 0 do
            let a = !it in
            if G.is_forward a && remaining a > 0 then begin
              consume a;
              match walk (G.dst g a) (hops + 1) with
              | Some _ as r -> result := r
              | None -> refund a
            end;
            it := G.next_out g a
          done;
          !result
  in
  let out = ref [] in
  FN.iter_task_nodes net (fun tid node ->
      out := { task = tid; machine = walk node 0 } :: !out);
  List.sort (fun a b -> compare a.task b.task) !out

let extract_snapshot g ~sink ~classify ~tasks =
  (* Same budget/backtracking walk as [extract_partial], but over a solver
     snapshot that may have diverged from the live network: node
     classification goes through [classify] (which the scheduler builds
     from the live tables plus its mid-solve event log) instead of the
     network's own kind table, so task and machine nodes removed — or
     whose ids were recycled — after the snapshot was taken are still
     interpreted as the snapshot saw them. *)
  let budget : (G.arc, int) Hashtbl.t = Hashtbl.create 256 in
  let remaining a =
    match Hashtbl.find_opt budget a with Some r -> r | None -> G.flow g a
  in
  let consume a = Hashtbl.replace budget a (remaining a - 1) in
  let refund a = Hashtbl.replace budget a (remaining a + 1) in
  let claim_sink_unit n =
    let sa = ref (-1) in
    let it = ref (G.first_out g n) in
    while !sa < 0 && !it >= 0 do
      let a = !it in
      if G.is_forward a && G.dst g a = sink then sa := a;
      it := G.next_out g a
    done;
    if !sa >= 0 && remaining !sa > 0 then begin
      consume !sa;
      true
    end
    else false
  in
  let rec expand n hops =
    let result = ref None in
    let it = ref (G.first_out g n) in
    while !result = None && !it >= 0 do
      let a = !it in
      if G.is_forward a && remaining a > 0 then begin
        consume a;
        match walk (G.dst g a) (hops + 1) with
        | Some _ as r -> result := r
        | None -> refund a
      end;
      it := G.next_out g a
    done;
    !result
  and walk n hops =
    if hops > 64 || n = sink then None
    else
      match classify n with
      | `Machine m -> if claim_sink_unit n then Some m else None
      | `Blocked -> None
      | `Through -> expand n hops
  in
  List.sort
    (fun a b -> compare a.task b.task)
    (List.rev_map
       (fun (tid, node) ->
         (* The entry node is always walked as a pass-through: it is the
            task's own node in the snapshot, whatever its id maps to in
            the live network by now. *)
         let machine = if G.node_is_live g node then expand node 0 else None in
         { task = tid; machine })
       tasks)

let extract_map net =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun { task; machine } ->
      match machine with Some m -> Hashtbl.replace tbl task m | None -> ())
    (extract net);
  tbl
