module G = Flowgraph.Graph
module FN = Flow_network

type assignment = {
  task : Cluster.Types.task_id;
  machine : Cluster.Types.machine_id option;
}

let fail fmt = Format.kasprintf failwith fmt

(* Stored decomposition paths are shallow: the deepest policy graph is
   task -> request-agg -> rack -> machine -> sink. The cap only bounds
   the preallocated per-task path storage; exceeding it means the graph
   is not the layered DAG the policies build and extraction fails. *)
let max_hops = 16

(* Hop cap for the backtracking pseudoflow walks (partial/snapshot),
   which may revisit layers while probing. Matches the historical cap. *)
let walk_hops = 64

exception Desync of string

(* A reusable extraction workspace (DESIGN.md "Memory discipline"): flat
   int arrays indexed by forward-arc slot [a/2] or by task slot, plus an
   {!Int_table} mapping task id -> slot. Holds two independent pieces of
   state:

   - the {e delta decomposition}: one stored sink path per task of the
     last graph synced via [extract_delta]/[extract], with [used.(s)]
     counting stored-path crossings of arc slot [s] (equal to that arc's
     flow when synced) and [gen.(s)] remembering the arc-pair generation
     stamp, so the next sync can walk only arcs whose flow or identity
     changed;
   - scratch budgets for the backtracking pseudoflow walks
     ([extract_partial]/[extract_snapshot]), epoch-stamped so they reset
     in O(1) and never disturb the delta state. *)
type workspace = {
  (* delta decomposition, per forward-arc slot *)
  mutable used : int array;
  mutable gen : int array;
  mutable flow_dirty : int array; (* epoch marks *)
  mutable gen_dirty : int array; (* epoch marks *)
  mutable epoch : int;
  (* tracked tasks: task id -> slot via [slots]; slot-indexed arrays *)
  slots : Int_table.t;
  mutable s_tid : int array; (* -1 = free slot *)
  mutable s_mach : int array; (* -1 = unscheduled *)
  mutable s_len : int array;
  mutable s_path : int array; (* slot * max_hops + i -> forward arc *)
  mutable s_top : int;
  mutable s_free : int array; (* free-slot stack *)
  mutable s_free_top : int;
  mutable n_unsched : int;
  mutable synced : bool;
  (* pending (tid, prev-mach) pairs during a sync *)
  mutable pend : int array;
  mutable pend_top : int;
  (* scratch budgets for pseudoflow walks, per forward-arc slot *)
  mutable budget : int array;
  mutable budget_mark : int array; (* epoch marks *)
  mutable budget_epoch : int;
}

(* [node_hint]/[arc_hint] pre-size the slot- and arc-indexed arrays from
   the topology (roughly one tracked task per task node, one forward-arc
   slot per arc pair), so the first adopted round syncs steady-state
   instead of growth-doubling through the whole cluster. *)
let create_workspace ?(node_hint = 0) ?(arc_hint = 0) () =
  let slot_cap = max 64 node_hint in
  let arc_cap = max 0 ((arc_hint + 1) / 2) in
  {
    used = Array.make arc_cap 0;
    gen = Array.make arc_cap 0;
    flow_dirty = Array.make arc_cap 0;
    gen_dirty = Array.make arc_cap 0;
    epoch = 0;
    slots = Int_table.create ();
    s_tid = Array.make slot_cap (-1);
    s_mach = Array.make slot_cap (-1);
    s_len = Array.make slot_cap 0;
    s_path = Array.make (slot_cap * max_hops) (-1);
    s_top = 0;
    s_free = Array.make 64 0;
    s_free_top = 0;
    n_unsched = 0;
    synced = false;
    pend = Array.make 128 0;
    pend_top = 0;
    budget = Array.make arc_cap 0;
    budget_mark = Array.make arc_cap 0;
    budget_epoch = 0;
  }

let grow_copy a n fill =
  let b = Array.make n fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_arc_capacity ws n =
  if Array.length ws.used < n then begin
    let cap = max n (2 * Array.length ws.used) in
    ws.used <- grow_copy ws.used cap 0;
    ws.gen <- grow_copy ws.gen cap 0;
    ws.flow_dirty <- grow_copy ws.flow_dirty cap 0;
    ws.gen_dirty <- grow_copy ws.gen_dirty cap 0
  end

let ensure_budget_capacity ws n =
  if Array.length ws.budget < n then begin
    let cap = max n (2 * Array.length ws.budget) in
    ws.budget <- grow_copy ws.budget cap 0;
    ws.budget_mark <- grow_copy ws.budget_mark cap 0
  end

let alloc_slot ws tid =
  let s =
    if ws.s_free_top > 0 then begin
      ws.s_free_top <- ws.s_free_top - 1;
      ws.s_free.(ws.s_free_top)
    end
    else begin
      if ws.s_top >= Array.length ws.s_tid then begin
        let cap = 2 * Array.length ws.s_tid in
        ws.s_tid <- grow_copy ws.s_tid cap (-1);
        ws.s_mach <- grow_copy ws.s_mach cap (-1);
        ws.s_len <- grow_copy ws.s_len cap 0;
        ws.s_path <- grow_copy ws.s_path (cap * max_hops) (-1)
      end;
      let s = ws.s_top in
      ws.s_top <- ws.s_top + 1;
      s
    end
  in
  ws.s_tid.(s) <- tid;
  ws.s_mach.(s) <- -1;
  ws.s_len.(s) <- 0;
  Int_table.set ws.slots tid s;
  s

let free_slot ws s =
  Int_table.remove ws.slots ws.s_tid.(s);
  ws.s_tid.(s) <- -1;
  if ws.s_free_top >= Array.length ws.s_free then
    ws.s_free <- grow_copy ws.s_free (2 * Array.length ws.s_free) 0;
  ws.s_free.(ws.s_free_top) <- s;
  ws.s_free_top <- ws.s_free_top + 1

let reset ws =
  Array.fill ws.used 0 (Array.length ws.used) 0;
  Array.fill ws.gen 0 (Array.length ws.gen) 0;
  Int_table.clear ws.slots;
  Array.fill ws.s_tid 0 (Array.length ws.s_tid) (-1);
  ws.s_top <- 0;
  ws.s_free_top <- 0;
  ws.n_unsched <- 0;
  ws.pend_top <- 0;
  ws.synced <- false

let push_pending ws tid prev =
  if ws.pend_top + 2 > Array.length ws.pend then
    ws.pend <- grow_copy ws.pend (2 * Array.length ws.pend) 0;
  ws.pend.(ws.pend_top) <- tid;
  ws.pend.(ws.pend_top + 1) <- prev;
  ws.pend_top <- ws.pend_top + 2

(* Drop task slot [s]'s stored path, returning its units of [used]. *)
let revoke_path ws s =
  for i = 0 to ws.s_len.(s) - 1 do
    let k = ws.s_path.((s * max_hops) + i) lsr 1 in
    ws.used.(k) <- ws.used.(k) - 1
  done;
  if ws.s_mach.(s) < 0 then ws.n_unsched <- ws.n_unsched - 1;
  free_slot ws s

(* Route task [tid]'s unit greedily along spare flow (flow - used > 0).
   On a feasible flow whose [used] never exceeds per-arc flow, spare
   obeys flow conservation at interior nodes, so the walk cannot dead-end
   and terminates on the layered policy DAG. *)
let route_task ws net g sink tid node =
  let s = alloc_slot ws tid in
  let v = ref node in
  let prev = ref node in
  let hops = ref 0 in
  while !v <> sink do
    if !hops >= max_hops then raise (Desync "path exceeds hop cap");
    let carrier = ref (-1) in
    let it = ref (G.first_out g !v) in
    while !carrier < 0 && !it >= 0 do
      let a = !it in
      if G.is_forward a && G.rescap g (G.rev a) - ws.used.(a lsr 1) > 0 then carrier := a;
      it := G.next_out g a
    done;
    if !carrier < 0 then
      raise (Desync (Printf.sprintf "no spare outgoing flow at node %d" !v));
    let a = !carrier in
    ws.s_path.((s * max_hops) + !hops) <- a;
    ws.used.(a lsr 1) <- ws.used.(a lsr 1) + 1;
    incr hops;
    prev := !v;
    v := G.dst g a
  done;
  ws.s_len.(s) <- !hops;
  match FN.kind_opt net !prev with
  | Some (FN.Machine_node m) -> ws.s_mach.(s) <- m
  | Some (FN.Unscheduled_agg _) ->
      ws.s_mach.(s) <- -1;
      ws.n_unsched <- ws.n_unsched + 1
  | _ ->
      raise
        (Desync (Printf.sprintf "node %d sends task flow directly to the sink" !prev))

(* One sync pass: dirty-scan the arcs, revoke paths the new flow no
   longer supports, re-route revoked and new tasks, [emit] each task
   whose stored path was (re)built. Raises {!Desync} if the stored state
   and the graph disagree structurally. *)
let sync_pass ws net ~emit =
  let g = FN.graph net in
  let sink = FN.sink net in
  let nslots = (G.arc_bound g + 1) / 2 in
  ensure_arc_capacity ws nslots;
  ws.epoch <- ws.epoch + 1;
  let epoch = ws.epoch in
  let any_dirty = ref false in
  (* Pass 1: per-arc dirty scan — flow or generation changed since the
     last sync. Dead slots read as flow 0 / generation 0. *)
  for k = 0 to nslots - 1 do
    let a = 2 * k in
    let live = G.arc_is_live g a in
    let flw = if live then G.rescap g (a + 1) else 0 in
    let gn = if live then G.arc_generation g a else 0 in
    if gn <> ws.gen.(k) then begin
      ws.gen_dirty.(k) <- epoch;
      ws.gen.(k) <- gn;
      any_dirty := true
    end;
    if flw <> ws.used.(k) then begin
      ws.flow_dirty.(k) <- epoch;
      any_dirty := true
    end
  done;
  ws.pend_top <- 0;
  if !any_dirty || FN.task_count net <> Int_table.length ws.slots then begin
    (* Pass 2: revoke stored paths invalidated by the dirty arcs. A path
       must go if any hop's arc identity changed, or if more stored
       paths cross a hop than the new flow supports (checked against
       [used] as revocations land, so exactly the overuse is revoked). *)
    if !any_dirty then
      for s = 0 to ws.s_top - 1 do
        let tid = ws.s_tid.(s) in
        if tid >= 0 then begin
          let len = ws.s_len.(s) in
          let base = s * max_hops in
          let touched = ref false in
          let must = ref false in
          for i = 0 to len - 1 do
            let k = ws.s_path.(base + i) lsr 1 in
            if ws.gen_dirty.(k) = epoch then begin
              touched := true;
              must := true
            end
            else if ws.flow_dirty.(k) = epoch then touched := true
          done;
          if !touched then begin
            let overused = ref false in
            if not !must then
              for i = 0 to len - 1 do
                let a = ws.s_path.(base + i) in
                if ws.used.(a lsr 1) > G.rescap g (a + 1) then overused := true
              done;
            if !must || !overused then begin
              let prev = ws.s_mach.(s) in
              revoke_path ws s;
              (* A task no longer in the network just drops out of the
                 decomposition; live tasks are re-routed below. *)
              if FN.task_node net tid <> None then push_pending ws tid prev
            end
          end
        end
      done;
    (* Pass 3: tasks the network has that we do not track yet. *)
    FN.iter_task_nodes net (fun tid _node ->
        if Int_table.find ws.slots tid < 0 then push_pending ws tid (-2));
    (* Pass 4: re-route. A task revoked in pass 2 is untracked by the
       time pass 3 scans, so it is pushed twice; the slot check routes
       (and emits) it exactly once. Emitted unconditionally — the
       caller's commit no-ops on unchanged assignments, and emitting
       re-routed tasks even when they land on the same machine keeps the
       delta sound if a task id is ever removed and re-added between
       syncs. *)
    let n = ws.pend_top in
    let i = ref 0 in
    while !i < n do
      let tid = ws.pend.(!i) in
      (match FN.task_node net tid with
      | None -> ()
      | Some node ->
          if Int_table.find ws.slots tid < 0 then begin
            route_task ws net g sink tid node;
            let m = ws.s_mach.(Int_table.find ws.slots tid) in
            emit tid (if m < 0 then None else Some m)
          end);
      i := !i + 2
    done
  end

let sync_with_rebuild ws net ~emit =
  ws.synced <- false;
  (try sync_pass ws net ~emit
   with Desync _ ->
     (* Stored state diverged from the graph (should not happen when the
        caller only syncs adopted optimal flows): rebuild from scratch.
        A failure on a clean rebuild is a genuine structural violation. *)
     reset ws;
     (try sync_pass ws net ~emit with Desync msg -> fail "Placement.extract: %s" msg));
  ws.synced <- true

let extract_delta ws net =
  if not ws.synced then reset ws;
  let changes = ref [] in
  let emit tid m = changes := (tid, m) :: !changes in
  sync_with_rebuild ws net ~emit;
  !changes

let delta_assignments ws =
  let out = ref [] in
  for s = ws.s_top - 1 downto 0 do
    let tid = ws.s_tid.(s) in
    if tid >= 0 then begin
      let m = ws.s_mach.(s) in
      out := { task = tid; machine = (if m < 0 then None else Some m) } :: !out
    end
  done;
  List.sort (fun a b -> compare a.task b.task) !out

let delta_lookup ws tid =
  match Int_table.find ws.slots tid with
  | -1 -> None
  | s ->
      let m = ws.s_mach.(s) in
      Some (if m < 0 then None else Some m)

let delta_unscheduled ws = ws.n_unsched
let delta_synced ws = ws.synced

let extract ?workspace net =
  let g = FN.graph net in
  G.iter_nodes g (fun n ->
      if G.excess g n <> 0 then
        fail "Placement.extract: infeasible flow (node %d has excess %d)" n (G.excess g n));
  let ws = match workspace with Some w -> w | None -> create_workspace () in
  ensure_arc_capacity ws ((G.arc_bound g + 1) / 2);
  reset ws;
  sync_with_rebuild ws net ~emit:(fun _ _ -> ());
  delta_assignments ws

(* --- backtracking pseudoflow walks (early-terminated solver states) --- *)

(* Arm the epoch-stamped per-arc budgets: [remaining] defaults to the
   arc's current flow the first time a slot is touched this walk. *)
let arm_budgets ws g =
  ensure_budget_capacity ws ((G.arc_bound g + 1) / 2);
  ws.budget_epoch <- ws.budget_epoch + 1

let remaining ws g a =
  let k = a lsr 1 in
  if ws.budget_mark.(k) = ws.budget_epoch then ws.budget.(k) else G.flow g a

let consume ws g a =
  let k = a lsr 1 in
  ws.budget.(k) <- remaining ws g a - 1;
  ws.budget_mark.(k) <- ws.budget_epoch

let refund ws g a =
  let k = a lsr 1 in
  ws.budget.(k) <- remaining ws g a + 1;
  ws.budget_mark.(k) <- ws.budget_epoch

let extract_partial ?workspace net =
  let g = FN.graph net in
  let sink = FN.sink net in
  let ws = match workspace with Some w -> w | None -> create_workspace () in
  arm_budgets ws g;
  (* Walk one unit of flow from [n] toward a machine, consuming it from
     the per-arc budget so two tasks never claim the same unit. The walk
     backtracks: a branch that dead-ends (hop limit, exhausted budget,
     unscheduled aggregator) refunds every unit it consumed and the
     parent tries its next arc — an aborted probe must not leak flow
     that tasks sharing a path prefix could still claim. *)
  let rec walk n hops =
    if hops > walk_hops then None
    else if n = sink then None
    else
      match FN.kind net n with
      | FN.Machine_node m -> (
          (* Claim a unit of the machine's sink arc: a mid-solve
             pseudoflow may park excess at a machine node, and without
             this check more tasks could land here than the machine's
             slot capacity admits. O(1) via the cached handle. *)
          match FN.machine_sink_arc net m with
          | Some a when remaining ws g a > 0 ->
              consume ws g a;
              Some m
          | Some _ | None -> None)
      | FN.Unscheduled_agg _ -> None
      | FN.Task_node _ | FN.Rack_node _ | FN.Cluster_agg | FN.Request_agg _ | FN.Sink ->
          let result = ref None in
          let it = ref (G.first_out g n) in
          while !result = None && !it >= 0 do
            let a = !it in
            if G.is_forward a && remaining ws g a > 0 then begin
              consume ws g a;
              match walk (G.dst g a) (hops + 1) with
              | Some _ as r -> result := r
              | None -> refund ws g a
            end;
            it := G.next_out g a
          done;
          !result
  in
  let out = ref [] in
  FN.iter_task_nodes net (fun tid node ->
      out := { task = tid; machine = walk node 0 } :: !out);
  List.sort (fun a b -> compare a.task b.task) !out

let extract_snapshot ?workspace g ~sink ~classify ~tasks =
  (* Same budget/backtracking walk as [extract_partial], but over a solver
     snapshot that may have diverged from the live network: node
     classification goes through [classify] (which the scheduler builds
     from the live tables plus its mid-solve event log) instead of the
     network's own kind table, so task and machine nodes removed — or
     whose ids were recycled — after the snapshot was taken are still
     interpreted as the snapshot saw them. Sink-arc claims scan the
     snapshot's out-list: cached handles describe the live network, not
     the snapshot. *)
  let ws = match workspace with Some w -> w | None -> create_workspace () in
  arm_budgets ws g;
  let claim_sink_unit n =
    let sa = ref (-1) in
    let it = ref (G.first_out g n) in
    while !sa < 0 && !it >= 0 do
      let a = !it in
      if G.is_forward a && G.dst g a = sink then sa := a;
      it := G.next_out g a
    done;
    if !sa >= 0 && remaining ws g !sa > 0 then begin
      consume ws g !sa;
      true
    end
    else false
  in
  let rec expand n hops =
    let result = ref None in
    let it = ref (G.first_out g n) in
    while !result = None && !it >= 0 do
      let a = !it in
      if G.is_forward a && remaining ws g a > 0 then begin
        consume ws g a;
        match walk (G.dst g a) (hops + 1) with
        | Some _ as r -> result := r
        | None -> refund ws g a
      end;
      it := G.next_out g a
    done;
    !result
  and walk n hops =
    if hops > walk_hops || n = sink then None
    else
      match classify n with
      | `Machine m -> if claim_sink_unit n then Some m else None
      | `Blocked -> None
      | `Through -> expand n hops
  in
  List.sort
    (fun a b -> compare a.task b.task)
    (List.rev_map
       (fun (tid, node) ->
         (* The entry node is always walked as a pass-through: it is the
            task's own node in the snapshot, whatever its id maps to in
            the live network by now. *)
         let machine = if G.node_is_live g node then expand node 0 else None in
         { task = tid; machine })
       tasks)

let extract_map net =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun { task; machine } ->
      match machine with Some m -> Hashtbl.replace tbl task m | None -> ())
    (extract net);
  tbl
