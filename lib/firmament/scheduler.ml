module FN = Flow_network

let log = Logs.Src.create "firmament.scheduler" ~doc:"Firmament scheduling rounds"

module Log = (val Logs.src_log log)

(* Telemetry ids, registered once at module init. Round phases are
   measured with contiguous checkpoints (each phase starts where the
   previous ended), so the per-phase durations of a round sum exactly to
   its wall time — that is what lets a deadline-bounded [`Partial] round
   show where the budget went. *)
let m = Telemetry.Metrics.global ()
let tr = Telemetry.Trace.global ()

let m_rounds =
  Telemetry.Metrics.counter m ~help:"scheduling rounds run" "sched_rounds_total"

let m_rounds_partial =
  Telemetry.Metrics.counter m ~help:"rounds degraded to partial (deadline hit)"
    "sched_rounds_partial_total"

let m_rounds_failed =
  Telemetry.Metrics.counter m ~help:"rounds failed (infeasible after scratch retry)"
    "sched_rounds_failed_total"

let m_rounds_retried =
  Telemetry.Metrics.counter m ~help:"rounds that needed the from-scratch retry"
    "sched_rounds_retried_total"

let m_started =
  Telemetry.Metrics.counter m ~help:"task starts committed" "sched_tasks_started_total"

let m_migrated =
  Telemetry.Metrics.counter m ~help:"task migrations committed"
    "sched_tasks_migrated_total"

let m_preempted =
  Telemetry.Metrics.counter m ~help:"task preemptions committed"
    "sched_tasks_preempted_total"

let m_unscheduled =
  Telemetry.Metrics.gauge m ~help:"tasks left waiting after the latest round"
    "sched_unscheduled_tasks"

let m_round_ns =
  Telemetry.Metrics.histogram m ~help:"whole-round wall time (ns)" "sched_round_ns"

let m_refresh_ns =
  Telemetry.Metrics.histogram m ~help:"policy-refresh phase (ns)" "sched_phase_refresh_ns"

let m_solve_ns =
  Telemetry.Metrics.histogram m ~help:"solve phase incl. infeasibility retry (ns)"
    "sched_phase_solve_ns"

let m_adopt_ns =
  Telemetry.Metrics.histogram m ~help:"graph adoption phase (swap + recycle) (ns)"
    "sched_phase_adopt_ns"

let m_extract_ns =
  Telemetry.Metrics.histogram m ~help:"placement extraction phase (ns)"
    "sched_phase_extract_ns"

let m_prepare_ns =
  Telemetry.Metrics.histogram m ~help:"price-refine preparation phase (ns)"
    "sched_phase_prepare_ns"

let m_apply_ns =
  Telemetry.Metrics.histogram m ~help:"placement-diff application phase (ns)"
    "sched_phase_apply_ns"

(* Graph-change batch applied since the previous round's solve. *)
let m_chg_structural =
  Telemetry.Metrics.counter m ~help:"structural graph changes applied"
    "sched_graph_structural_changes_total"

let m_chg_cost =
  Telemetry.Metrics.counter m ~help:"arc cost changes applied"
    "sched_graph_cost_changes_total"

let m_chg_capacity =
  Telemetry.Metrics.counter m ~help:"arc capacity changes applied"
    "sched_graph_capacity_changes_total"

let m_chg_supply =
  Telemetry.Metrics.counter m ~help:"node supply changes applied"
    "sched_graph_supply_changes_total"

let t_refresh = Telemetry.Trace.register tr "sched.refresh"
let t_solve = Telemetry.Trace.register tr "sched.solve"
let t_adopt = Telemetry.Trace.register tr "sched.adopt"
let t_extract = Telemetry.Trace.register tr "sched.extract"
let t_prepare = Telemetry.Trace.register tr "sched.prepare"
let t_apply = Telemetry.Trace.register tr "sched.apply"

type config = {
  mode : Mcmf.Race.mode;
  alpha : int;
  price_refine : bool;
  drain_on_removal : bool;
  deadline : float option;
}

let default_config =
  {
    mode = Mcmf.Race.Fastest_sequential;
    alpha = 9;
    price_refine = true;
    drain_on_removal = true;
    deadline = None;
  }

type degraded = [ `None | `Partial | `Infeasible_retry | `Failed ]

let pp_degraded ppf d =
  Format.pp_print_string ppf
    (match d with
    | `None -> "none"
    | `Partial -> "partial"
    | `Infeasible_retry -> "infeasible-retry"
    | `Failed -> "failed")

type round = {
  winner : Mcmf.Race.winner;
  solver_stats : Mcmf.Solver_intf.stats;
  relaxation_stats : Mcmf.Solver_intf.stats option;
  cost_scaling_stats : Mcmf.Solver_intf.stats option;
  algorithm_runtime : float;
  degraded : degraded;
  started : (Cluster.Types.task_id * Cluster.Types.machine_id) list;
  migrated :
    (Cluster.Types.task_id * Cluster.Types.machine_id * Cluster.Types.machine_id) list;
  preempted : Cluster.Types.task_id list;
  unscheduled : int;
  phase_ns : (string * int) list;
}

type t = {
  config : config;
  cluster : Cluster.State.t;
  net : FN.t;
  policy : Policy.t;
  race : Mcmf.Race.t;
  assigned : (Cluster.Types.task_id, Cluster.Types.machine_id) Hashtbl.t;
  (* Change-summary totals at the previous solve, for per-round deltas
     (the summary on the graph accumulates; nobody may reset it here —
     incremental solvers read it through their own channel). *)
  mutable last_changes : Flowgraph.Graph.change_summary;
}

let create ?(config = default_config) cluster ~policy =
  (* Pre-size the flow graph from the cluster's shape so steady-state
     rounds never pay growth doublings: one node per machine/rack plus
     roughly one task per slot (with aggregator and churn headroom), and
     a few arcs per node (task→aggregator→machine→sink chains). *)
  let topo = Cluster.State.topology cluster in
  let machines = Cluster.Topology.machine_count topo in
  let slots = Cluster.Topology.total_slots topo in
  let node_hint = (2 * (machines + slots)) + 64 in
  let net = FN.create ~node_hint ~arc_hint:(4 * node_hint) () in
  let p = policy ~drain:config.drain_on_removal net cluster in
  {
    config;
    cluster;
    net;
    policy = p;
    race =
      Mcmf.Race.create ~alpha:config.alpha ~price_refine:config.price_refine
        ~mode:config.mode ();
    assigned = Hashtbl.create 1024;
    last_changes = Flowgraph.Graph.peek_changes (FN.graph net);
  }

let network t = t.net
let cluster t = t.cluster
let policy_name t = t.policy.Policy.name

let submit_job t job =
  Cluster.State.submit_job t.cluster job;
  Array.iter (fun task -> t.policy.Policy.task_submitted task) job.Cluster.Workload.tasks

let finish_task t tid ~now =
  Cluster.State.finish t.cluster tid ~now;
  t.policy.Policy.task_finished (Cluster.State.task t.cluster tid);
  Hashtbl.remove t.assigned tid

let fail_machine t m =
  let victims = Cluster.State.fail_machine t.cluster m in
  t.policy.Policy.machine_failed m;
  List.iter
    (fun tid ->
      Hashtbl.remove t.assigned tid;
      t.policy.Policy.task_preempted (Cluster.State.task t.cluster tid))
    victims

let restore_machine t m =
  Cluster.State.restore_machine t.cluster m;
  t.policy.Policy.machine_restored m

(* Commit the feasible fraction of a deadline-stopped round: start waiting
   tasks whose unit of flow reached a machine in the intermediate
   pseudoflow. Running tasks are left alone — a half-solved flow is no
   grounds for migrations or preemptions — and every start is re-checked
   against the authoritative cluster state (machine live, slot free), so
   only capacity-valid placements commit. *)
let commit_partial t ~now partial_graph =
  let keep = FN.graph t.net in
  (* The canonical graph must come back even if extraction raises — an
     exception here must not leave the network pointing at the transient
     pseudoflow. *)
  let placements =
    Fun.protect
      ~finally:(fun () -> FN.set_graph t.net keep)
      (fun () ->
        FN.set_graph t.net partial_graph;
        Placement.extract_partial t.net)
  in
  (* Phase boundary between extraction and application, reported to the
     caller so [`Partial] rounds attribute their budget too. *)
  let t_extracted = Telemetry.Clock.now_ns () in
  let starts = ref [] in
  List.iter
    (fun { Placement.task; machine } ->
      match machine with
      | Some m
        when (not (Hashtbl.mem t.assigned task))
             && Cluster.Workload.is_waiting (Cluster.State.task t.cluster task)
             && Cluster.State.free_slots_on t.cluster m > 0 ->
          Cluster.State.place t.cluster task m ~now;
          Hashtbl.replace t.assigned task m;
          t.policy.Policy.task_started (Cluster.State.task t.cluster task) m;
          starts := (task, m) :: !starts
      | _ -> ())
    placements;
  (List.rev !starts, t_extracted)

(* Per-round delta of the graph's cumulative change summary. Clamped at
   zero: adopting a different graph object can lower the totals. *)
let record_changes t =
  let open Flowgraph.Graph in
  let s = peek_changes (FN.graph t.net) in
  let prev = t.last_changes in
  let d a b = max 0 (a - b) in
  Telemetry.Metrics.add m m_chg_structural (d s.structural prev.structural);
  Telemetry.Metrics.add m m_chg_cost (d s.cost_changes prev.cost_changes);
  Telemetry.Metrics.add m m_chg_capacity (d s.capacity_changes prev.capacity_changes);
  Telemetry.Metrics.add m m_chg_supply (d s.supply_changes prev.supply_changes);
  t.last_changes <- s

let schedule ?stop t ~now =
  Telemetry.Metrics.incr m m_rounds;
  Telemetry.Trace.new_round tr;
  let ck0 = Telemetry.Clock.now_ns () in
  t.policy.Policy.refresh ~now;
  let ck1 = Telemetry.Clock.now_ns () in
  Telemetry.Trace.span tr ~phase:t_refresh ~t0:ck0 ~t1:ck1;
  Telemetry.Metrics.observe m m_refresh_ns (ck1 - ck0);
  record_changes t;
  (* The round deadline covers the whole round, retry included: the stop
     predicate is armed here and shared by every solve below. *)
  let stop =
    let base = Option.value stop ~default:Mcmf.Solver_intf.never_stop in
    match t.config.deadline with
    | None -> base
    | Some d -> Mcmf.Solver_intf.either_stop base (Mcmf.Solver_intf.deadline_stop d)
  in
  let first = Mcmf.Race.solve ~stop t.race (FN.graph t.net) in
  let result, retried =
    match first.Mcmf.Race.stats.Mcmf.Solver_intf.outcome with
    | Mcmf.Solver_intf.Infeasible ->
        (* A warm start facing heavy churn can report a transient
           infeasibility; one fresh attempt (reset flow, scratch ε)
           separates that from a genuinely unroutable network. *)
        Log.warn (fun m -> m "round@%.3f infeasible; retrying from scratch" now);
        (Mcmf.Race.solve ~stop ~scratch:true t.race (FN.graph t.net), true)
    | Mcmf.Solver_intf.Optimal | Mcmf.Solver_intf.Stopped -> (first, false)
  in
  let ck2 = Telemetry.Clock.now_ns () in
  Telemetry.Trace.span tr ~phase:t_solve ~t0:ck1 ~t1:ck2;
  Telemetry.Metrics.observe m m_solve_ns (ck2 - ck1);
  if retried then Telemetry.Metrics.incr m m_rounds_retried;
  (* Close the round: shared metric recording plus the contiguous phase
     list ([("refresh", …); ("solve", …); branch phases]) whose durations
     sum to the round's wall time by construction. *)
  let close_round ~tail r =
    let t_end = match tail with [] -> ck2 | _ -> ck2 + List.fold_left (fun acc (_, d) -> acc + d) 0 tail in
    Telemetry.Metrics.observe m m_round_ns (t_end - ck0);
    Telemetry.Metrics.add m m_started (List.length r.started);
    Telemetry.Metrics.add m m_migrated (List.length r.migrated);
    Telemetry.Metrics.add m m_preempted (List.length r.preempted);
    Telemetry.Metrics.set m m_unscheduled r.unscheduled;
    { r with phase_ns = ("refresh", ck1 - ck0) :: ("solve", ck2 - ck1) :: tail }
  in
  let algorithm_runtime =
    result.Mcmf.Race.stats.Mcmf.Solver_intf.runtime
    +. (if retried then first.Mcmf.Race.stats.Mcmf.Solver_intf.runtime else 0.)
  in
  let base =
    {
      winner = result.Mcmf.Race.winner;
      solver_stats = result.Mcmf.Race.stats;
      relaxation_stats = result.Mcmf.Race.relaxation_stats;
      cost_scaling_stats = result.Mcmf.Race.cost_scaling_stats;
      algorithm_runtime;
      degraded = `None;
      started = [];
      migrated = [];
      preempted = [];
      unscheduled = 0;
      phase_ns = [];
    }
  in
  match result.Mcmf.Race.stats.Mcmf.Solver_intf.outcome with
  | Mcmf.Solver_intf.Infeasible ->
      (* Both attempts infeasible: report a failed round, keep the
         pre-round graph (Race returned it untouched) so the next round
         starts from coherent state. *)
      Telemetry.Metrics.incr m m_rounds_failed;
      Log.warn (fun m ->
          m "round@%.3f failed: infeasible after scratch retry; %d tasks left waiting" now
            (Cluster.State.waiting_count t.cluster));
      let unscheduled = Cluster.State.waiting_count t.cluster in
      let ck3 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_apply ~t0:ck2 ~t1:ck3;
      Telemetry.Metrics.observe m m_apply_ns (ck3 - ck2);
      close_round
        ~tail:[ ("apply", ck3 - ck2) ]
        { base with degraded = `Failed; unscheduled }
  | Mcmf.Solver_intf.Stopped ->
      (* Deadline hit: the canonical graph stays at the pre-round warm
         start; the stopped solver's pseudoflow is only read for
         best-effort placements. *)
      Telemetry.Metrics.incr m m_rounds_partial;
      let started, ext_end =
        match result.Mcmf.Race.partial with
        | Some pg ->
            let starts, te = commit_partial t ~now pg in
            (* The pseudoflow has been consumed; let the next round reuse
               its storage. *)
            Mcmf.Race.recycle t.race pg;
            (starts, te)
        | None -> ([], ck2)
      in
      Log.debug (fun m ->
          m "round@%.3f degraded to partial: %d best-effort starts, %d waiting" now
            (List.length started)
            (Cluster.State.waiting_count t.cluster));
      let unscheduled = Cluster.State.waiting_count t.cluster in
      let ck3 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_extract ~t0:ck2 ~t1:ext_end;
      Telemetry.Trace.span tr ~phase:t_apply ~t0:ext_end ~t1:ck3;
      Telemetry.Metrics.observe m m_extract_ns (ext_end - ck2);
      Telemetry.Metrics.observe m m_apply_ns (ck3 - ext_end);
      close_round
        ~tail:[ ("extract", ext_end - ck2); ("apply", ck3 - ext_end) ]
        { base with degraded = `Partial; started; unscheduled }
  | Mcmf.Solver_intf.Optimal ->
      let replaced = FN.graph t.net in
      FN.set_graph t.net result.Mcmf.Race.graph;
      (* Swap-on-optimal: the displaced canonical graph becomes the next
         round's scratch copy instead of garbage. *)
      Mcmf.Race.recycle t.race replaced;
      (* The adopted graph carries its own cumulative summary; re-sync the
         delta baseline so the next round doesn't misattribute. *)
      t.last_changes <- Flowgraph.Graph.peek_changes (FN.graph t.net);
      let ck3 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_adopt ~t0:ck2 ~t1:ck3;
      Telemetry.Metrics.observe m m_adopt_ns (ck3 - ck2);
      let placements = Placement.extract t.net in
      let ck4 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_extract ~t0:ck3 ~t1:ck4;
      Telemetry.Metrics.observe m m_extract_ns (ck4 - ck3);
      (* Price refine runs on the untouched optimal solution, before the
         placement diff mutates the graph (paper §6.2). *)
      Mcmf.Race.prepare t.race (FN.graph t.net);
      let ck5 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_prepare ~t0:ck4 ~t1:ck5;
      Telemetry.Metrics.observe m m_prepare_ns (ck5 - ck4);
      let starts = ref [] and migrations = ref [] and preempts = ref [] in
      let unscheduled = ref 0 in
      List.iter
        (fun { Placement.task; machine } ->
          match (Hashtbl.find_opt t.assigned task, machine) with
          | None, Some m -> starts := (task, m) :: !starts
          | Some m_old, Some m_new when m_old <> m_new ->
              migrations := (task, m_old, m_new) :: !migrations
          | Some _, Some _ -> ()
          | Some _, None -> preempts := task :: !preempts
          | None, None -> incr unscheduled)
        placements;
      (* Free slots first (preemptions and migration sources), then place. *)
      List.iter
        (fun tid ->
          Cluster.State.preempt t.cluster tid;
          Hashtbl.remove t.assigned tid;
          t.policy.Policy.task_preempted (Cluster.State.task t.cluster tid))
        !preempts;
      List.iter (fun (tid, _, _) -> Cluster.State.preempt t.cluster tid) !migrations;
      List.iter
        (fun (tid, _, m_new) ->
          Cluster.State.place t.cluster tid m_new ~now;
          Hashtbl.replace t.assigned tid m_new;
          t.policy.Policy.task_started (Cluster.State.task t.cluster tid) m_new)
        !migrations;
      List.iter
        (fun (tid, m) ->
          Cluster.State.place t.cluster tid m ~now;
          Hashtbl.replace t.assigned tid m;
          t.policy.Policy.task_started (Cluster.State.task t.cluster tid) m)
        !starts;
      Log.debug (fun m ->
          m "round@%.3f: %s won in %.4fs; %d started, %d migrated, %d preempted, %d waiting"
            now
            (match result.Mcmf.Race.winner with
            | Mcmf.Race.Relaxation -> "relaxation"
            | Mcmf.Race.Cost_scaling -> "cost scaling")
            base.algorithm_runtime (List.length !starts) (List.length !migrations)
            (List.length !preempts) !unscheduled);
      let ck6 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_apply ~t0:ck5 ~t1:ck6;
      Telemetry.Metrics.observe m m_apply_ns (ck6 - ck5);
      close_round
        ~tail:
          [
            ("adopt", ck3 - ck2);
            ("extract", ck4 - ck3);
            ("prepare", ck5 - ck4);
            ("apply", ck6 - ck5);
          ]
        {
          base with
          degraded = (if retried then `Infeasible_retry else `None);
          started = List.rev !starts;
          migrated = List.rev !migrations;
          preempted = List.rev !preempts;
          unscheduled = !unscheduled;
        }

let assignments t = t.assigned
