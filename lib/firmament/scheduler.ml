module FN = Flow_network

let log = Logs.Src.create "firmament.scheduler" ~doc:"Firmament scheduling rounds"

module Log = (val Logs.src_log log)

(* Telemetry ids, registered once at module init. Round phases are
   measured with contiguous checkpoints (each phase starts where the
   previous ended), so the per-phase durations of a round sum exactly to
   its wall time — that is what lets a deadline-bounded [`Partial] round
   show where the budget went. *)
let m = Telemetry.Metrics.global ()
let tr = Telemetry.Trace.global ()

let m_rounds =
  Telemetry.Metrics.counter m ~help:"scheduling rounds run" "sched_rounds_total"

let m_rounds_partial =
  Telemetry.Metrics.counter m ~help:"rounds degraded to partial (deadline hit)"
    "sched_rounds_partial_total"

let m_rounds_failed =
  Telemetry.Metrics.counter m ~help:"rounds failed (infeasible after scratch retry)"
    "sched_rounds_failed_total"

let m_rounds_retried =
  Telemetry.Metrics.counter m ~help:"rounds that needed the from-scratch retry"
    "sched_rounds_retried_total"

let m_started =
  Telemetry.Metrics.counter m ~help:"task starts committed" "sched_tasks_started_total"

let m_migrated =
  Telemetry.Metrics.counter m ~help:"task migrations committed"
    "sched_tasks_migrated_total"

let m_preempted =
  Telemetry.Metrics.counter m ~help:"task preemptions committed"
    "sched_tasks_preempted_total"

let m_unscheduled =
  Telemetry.Metrics.gauge m ~help:"tasks left waiting after the latest round"
    "sched_unscheduled_tasks"

let m_round_ns =
  Telemetry.Metrics.histogram m ~help:"whole-round wall time (ns)" "sched_round_ns"

let m_refresh_ns =
  Telemetry.Metrics.histogram m ~help:"policy-refresh phase (ns)" "sched_phase_refresh_ns"

let m_solve_ns =
  Telemetry.Metrics.histogram m ~help:"solve phase incl. infeasibility retry (ns)"
    "sched_phase_solve_ns"

(* Split attribution of the solve phase: [win] is the winning solver's
   algorithm runtime (retry attempts included), [wait] is everything else
   the round spent inside the solve phase — capped losers in sequential
   mode, dispatch copies, join overhead. These are observability
   sub-phases of [sched_phase_solve_ns], not additional round phases:
   win + wait ≈ solve, and the round's phase list is unchanged. *)
let m_solve_win_ns =
  Telemetry.Metrics.histogram m ~help:"winning solver's algorithm runtime (ns)"
    "sched_phase_solve_win_ns"

let m_solve_wait_ns =
  Telemetry.Metrics.histogram m
    ~help:"solve-phase time beyond the winner: losers, copies, join (ns)"
    "sched_phase_solve_wait_ns"

let m_adopt_ns =
  Telemetry.Metrics.histogram m ~help:"graph adoption phase (swap + recycle) (ns)"
    "sched_phase_adopt_ns"

let m_extract_ns =
  Telemetry.Metrics.histogram m ~help:"placement extraction phase (ns)"
    "sched_phase_extract_ns"

let m_prepare_ns =
  Telemetry.Metrics.histogram m ~help:"price-refine preparation phase (ns)"
    "sched_phase_prepare_ns"

let m_apply_ns =
  Telemetry.Metrics.histogram m ~help:"placement-diff application phase (ns)"
    "sched_phase_apply_ns"

(* Graph-change batch applied since the previous round's solve. *)
let m_chg_structural =
  Telemetry.Metrics.counter m ~help:"structural graph changes applied"
    "sched_graph_structural_changes_total"

let m_chg_cost =
  Telemetry.Metrics.counter m ~help:"arc cost changes applied"
    "sched_graph_cost_changes_total"

let m_chg_capacity =
  Telemetry.Metrics.counter m ~help:"arc capacity changes applied"
    "sched_graph_capacity_changes_total"

let m_chg_supply =
  Telemetry.Metrics.counter m ~help:"node supply changes applied"
    "sched_graph_supply_changes_total"

(* Pipelined-round observability: how much solver time the caller
   overlapped with other work, how long commit still had to wait, and
   which placements the stale-aware commit discarded. *)
let m_pipeline_overlap_ns =
  Telemetry.Metrics.histogram m
    ~help:"solver time overlapped with caller work between begin and commit (ns)"
    "sched_pipeline_overlap_ns"

let m_pipeline_wait_ns =
  Telemetry.Metrics.histogram m
    ~help:"commit-side wait for the in-flight solve (ns)" "sched_pipeline_wait_ns"

let m_rounds_overlapped =
  Telemetry.Metrics.counter m
    ~help:"rounds that absorbed cluster events while the solve was in flight"
    "sched_rounds_overlapped_total"

let m_stale_task_discards =
  Telemetry.Metrics.counter m
    ~help:"placements discarded at commit: task finished/preempted mid-solve"
    "sched_stale_task_discards_total"

let m_stale_machine_discards =
  Telemetry.Metrics.counter m
    ~help:"placements discarded at commit: machine failed mid-solve"
    "sched_stale_machine_discards_total"

let m_capacity_discards =
  Telemetry.Metrics.counter m
    ~help:"placements discarded at commit by the authoritative capacity re-check"
    "sched_capacity_discards_total"

let m_replays =
  Telemetry.Metrics.counter m
    ~help:
      "placements replaying a task that finished mid-solve on the machine it \
       actually ran on — harmless no-ops, not stale discards"
    "sched_noop_replays_total"

let t_refresh = Telemetry.Trace.register tr "sched.refresh"
let t_solve = Telemetry.Trace.register tr "sched.solve"
let t_adopt = Telemetry.Trace.register tr "sched.adopt"
let t_extract = Telemetry.Trace.register tr "sched.extract"
let t_prepare = Telemetry.Trace.register tr "sched.prepare"
let t_apply = Telemetry.Trace.register tr "sched.apply"

type config = {
  mode : Mcmf.Race.mode;
  alpha : int;
  price_refine : bool;
  drain_on_removal : bool;
  deadline : float option;
  incremental : bool;
  incremental_budget : int;
}

let default_config =
  {
    mode = Mcmf.Race.Fastest_sequential;
    alpha = 9;
    price_refine = true;
    drain_on_removal = true;
    deadline = None;
    incremental = true;
    incremental_budget = 512;
  }

type degraded = [ `None | `Partial | `Infeasible_retry | `Failed ]

let pp_degraded ppf d =
  Format.pp_print_string ppf
    (match d with
    | `None -> "none"
    | `Partial -> "partial"
    | `Infeasible_retry -> "infeasible-retry"
    | `Failed -> "failed")

type discard_reason = [ `Stale_task | `Stale_machine | `Capacity ]

let pp_discard_reason ppf r =
  Format.pp_print_string ppf
    (match r with
    | `Stale_task -> "stale-task"
    | `Stale_machine -> "stale-machine"
    | `Capacity -> "capacity")

type round = {
  winner : Mcmf.Race.winner;
  solver_stats : Mcmf.Solver_intf.stats;
  relaxation_stats : Mcmf.Solver_intf.stats option;
  cost_scaling_stats : Mcmf.Solver_intf.stats option;
  algorithm_runtime : float;
  degraded : degraded;
  started : (Cluster.Types.task_id * Cluster.Types.machine_id) list;
  migrated :
    (Cluster.Types.task_id * Cluster.Types.machine_id * Cluster.Types.machine_id) list;
  preempted : Cluster.Types.task_id list;
  unscheduled : int;
  discarded : (Cluster.Types.task_id * discard_reason) list;
  replayed : int;
  phase_ns : (string * int) list;
}

(* A begun-but-not-committed round. Everything the commit needs to decide
   whether the solver snapshot is still current: the graph change summary
   and cluster event epoch at dispatch, plus a log of the structural
   events absorbed while the solve was in flight (so the snapshot can be
   read back even though the live node tables moved on — including node
   ids recycled by the graph's freelist). *)
type pending = {
  p_handle : Mcmf.Race.handle;
  p_stop : Mcmf.Solver_intf.stop;
  p_epoch : int;
  p_changes : Flowgraph.Graph.change_summary;
  mutable p_mid_added : Cluster.Types.task_id list;
  mutable p_mid_finished : (Cluster.Types.task_id * Flowgraph.Graph.node) list;
  (* Begin-time assignments of tasks that finished mid-solve, captured
     before the finish dropped them from [assigned]: the commit uses
     these to tell a harmless replay (solver re-stating where a finished
     task actually ran) from a genuinely stale placement. *)
  mutable p_mid_fin_prev : (Cluster.Types.task_id * Cluster.Types.machine_id) list;
  mutable p_mid_failed : (Cluster.Types.machine_id * Flowgraph.Graph.node) list;
  p_ck0 : int;  (* round begin *)
  p_ck1 : int;  (* refresh end *)
  p_ck2 : int;  (* dispatch end; begin_round returned here *)
}

type t = {
  config : config;
  cluster : Cluster.State.t;
  net : FN.t;
  policy : Policy.t;
  race : Mcmf.Race.t;
  assigned : (Cluster.Types.task_id, Cluster.Types.machine_id) Hashtbl.t;
  (* Reusable extraction workspace: delta decomposition of the last
     adopted optimal flow plus scratch budgets for the pseudoflow walks. *)
  ws : Placement.workspace;
  (* Tasks whose delta-reported assignment was discarded at commit
     (stale/capacity): the decomposition thinks they are placed, the
     cluster does not, and the flow may not move again — re-emit their
     stored assignment on the next delta commit so they are not lost. *)
  retry : (Cluster.Types.task_id, unit) Hashtbl.t;
  (* Change-summary totals at the previous solve, for per-round deltas
     (the summary on the graph accumulates; nobody may reset it here —
     incremental solvers read it through their own channel). *)
  mutable last_changes : Flowgraph.Graph.change_summary;
  mutable pending : pending option;
  (* Debug observer for the fuzz harness: called once per committed round
     with the round record, the canonical post-commit graph and — on rounds
     that adopted a certified-optimal solve — a pre-commit snapshot of that
     solution (the post-commit graph itself already carries the placement
     diff's policy mutations, so it is not the thing the solver certified). *)
  mutable observer :
    (round -> Flowgraph.Graph.t -> certified:Flowgraph.Graph.t option -> unit)
    option;
}

let create ?(config = default_config) cluster ~policy =
  (* Pre-size the flow graph from the cluster's shape so steady-state
     rounds never pay growth doublings: one node per machine/rack plus
     roughly one task per slot (with aggregator and churn headroom), and
     a few arcs per node (task→aggregator→machine→sink chains). *)
  let topo = Cluster.State.topology cluster in
  let machines = Cluster.Topology.machine_count topo in
  let slots = Cluster.Topology.total_slots topo in
  let node_hint = (2 * (machines + slots)) + 64 in
  let arc_hint = 4 * node_hint in
  let net = FN.create ~node_hint ~arc_hint () in
  let p = policy ~drain:config.drain_on_removal net cluster in
  {
    config;
    cluster;
    net;
    policy = p;
    race =
      Mcmf.Race.create ~alpha:config.alpha ~price_refine:config.price_refine
        ~incremental:config.incremental ~node_hint ~arc_hint ~mode:config.mode ();
    assigned = Hashtbl.create 1024;
    ws = Placement.create_workspace ~node_hint ~arc_hint ();
    retry = Hashtbl.create 16;
    last_changes = Flowgraph.Graph.peek_changes (FN.graph net);
    pending = None;
    observer = None;
  }

let network t = t.net
let cluster t = t.cluster
let policy_name t = t.policy.Policy.name

(* Cluster events are legal while a round is in flight: the solvers work
   on copies taken at begin, so mutating the canonical graph here is
   safe. Each event that changes the task/machine node population is
   logged on the pending round, so the commit can still read the solver's
   snapshot with begin-time node identities. *)

let submit_job t job =
  Cluster.State.submit_job t.cluster job;
  (match t.pending with
  | Some p ->
      Array.iter
        (fun (task : Cluster.Workload.task) ->
          p.p_mid_added <- task.Cluster.Workload.tid :: p.p_mid_added)
        job.Cluster.Workload.tasks
  | None -> ());
  Array.iter (fun task -> t.policy.Policy.task_submitted task) job.Cluster.Workload.tasks

let finish_task t tid ~now =
  (match t.pending with
  | Some p when not (List.mem tid p.p_mid_added) -> (
      match FN.task_node t.net tid with
      | Some n ->
          p.p_mid_finished <- (tid, n) :: p.p_mid_finished;
          (match Hashtbl.find_opt t.assigned tid with
          | Some mm -> p.p_mid_fin_prev <- (tid, mm) :: p.p_mid_fin_prev
          | None -> ())
      | None -> ())
  | Some _ | None -> ());
  Cluster.State.finish t.cluster tid ~now;
  t.policy.Policy.task_finished (Cluster.State.task t.cluster tid);
  Hashtbl.remove t.assigned tid

let fail_machine t m =
  (match t.pending with
  | Some p -> (
      match FN.machine_node t.net m with
      | Some n -> p.p_mid_failed <- (m, n) :: p.p_mid_failed
      | None -> ())
  | None -> ());
  let victims = Cluster.State.fail_machine t.cluster m in
  t.policy.Policy.machine_failed m;
  List.iter
    (fun tid ->
      Hashtbl.remove t.assigned tid;
      t.policy.Policy.task_preempted (Cluster.State.task t.cluster tid))
    victims

let restore_machine t m =
  Cluster.State.restore_machine t.cluster m;
  t.policy.Policy.machine_restored m

(* Kick a running task back to the wait queue (an operator or fuzz-harness
   event, not a solver decision). The cluster stamps the task stale, so a
   solve in flight cannot re-commit a placement for it; the task node
   itself stays live, which is exactly what the snapshot reader expects. *)
let preempt_task t tid =
  Cluster.State.preempt t.cluster tid;
  Hashtbl.remove t.assigned tid;
  t.policy.Policy.task_preempted (Cluster.State.task t.cluster tid)

let set_round_observer t obs = t.observer <- obs

(* Extract best-effort placements from a deadline-stopped solver's
   pseudoflow when no events interleaved: the live network tables still
   describe the snapshot, so the partial graph can be mounted directly.
   The canonical graph must come back even if extraction raises — an
   exception here must not leave the network pointing at the transient
   pseudoflow. *)
let extract_partial_live t partial_graph =
  let keep = FN.graph t.net in
  Fun.protect
    ~finally:(fun () -> FN.set_graph t.net keep)
    (fun () ->
      FN.set_graph t.net partial_graph;
      Placement.extract_partial ~workspace:t.ws t.net)

(* Reading a solver snapshot after mid-solve events: the tasks that
   existed at begin are the current task nodes minus those submitted
   mid-solve, plus those that finished mid-solve (logged with their
   begin-time node ids before the policy removed them). *)
let snapshot_tasks t p =
  let added = Hashtbl.create 16 in
  List.iter (fun tid -> Hashtbl.replace added tid ()) p.p_mid_added;
  let acc = ref p.p_mid_finished in
  FN.iter_task_nodes t.net (fun tid n ->
      if not (Hashtbl.mem added tid) then acc := (tid, n) :: !acc);
  !acc

(* Node classification for the snapshot walk. Machines that failed
   mid-solve are looked up first: their begin-time node ids may since
   have been recycled by the graph freelist, and for reading the snapshot
   the failed-machine interpretation is the correct one (the stale check
   then discards anything routed there). Nodes the live network no longer
   knows and that are not logged failures can only be removed task nodes,
   which carry no inbound flow — blocking them is safe. *)
let snapshot_classifier t p =
  let failed = Hashtbl.create 8 in
  List.iter (fun (mid, n) -> Hashtbl.replace failed n mid) p.p_mid_failed;
  fun n ->
    match Hashtbl.find_opt failed n with
    | Some mid -> `Machine mid
    | None -> (
        match FN.kind_opt t.net n with
        | Some (FN.Machine_node mid) -> `Machine mid
        | Some (FN.Rack_node _ | FN.Cluster_agg | FN.Request_agg _) -> `Through
        | Some (FN.Task_node _ | FN.Unscheduled_agg _ | FN.Sink) | None -> `Blocked)

let extract_from_snapshot t p graph =
  Placement.extract_snapshot ~workspace:t.ws graph ~sink:(FN.sink t.net)
    ~classify:(snapshot_classifier t p) ~tasks:(snapshot_tasks t p)

(* Begin-time assignments of mid-solve-finished tasks, as a lookup for
   the commit's replay detection; [None] when no task finished. *)
let fin_prev_table p =
  match p.p_mid_fin_prev with
  | [] -> None
  | l ->
      let h = Hashtbl.create 16 in
      List.iter (fun (tid, mm) -> Hashtbl.replace h tid mm) l;
      Some h

(* A placement (re)stating that a task which finished mid-solve ran on
   the machine it actually occupied at round begin is a no-op replay —
   the solver simply had not seen the finish yet — not a stale
   placement. Anything else about a vanished task (a different machine,
   i.e. a would-be migration of a finished task) stays a discard. *)
let is_noop_replay fin_prev task mm =
  match fin_prev with
  | None -> false
  | Some h -> Hashtbl.find_opt h task = Some mm

(* Commit the feasible fraction of a deadline-stopped round: start waiting
   tasks whose unit of flow reached a machine in the intermediate
   pseudoflow. Running tasks are left alone — a half-solved flow is no
   grounds for migrations or preemptions — and every start is checked for
   staleness (task or target invalidated mid-solve) and re-checked against
   the authoritative cluster state (machine live, slot free), so only
   valid placements commit. *)
let commit_starts ?fin_prev t ~now placements =
  let starts = ref [] in
  let discarded = ref [] in
  let replayed = ref 0 in
  let discard tid reason counter =
    discarded := (tid, reason) :: !discarded;
    Telemetry.Metrics.incr m counter
  in
  List.iter
    (fun { Placement.task; machine } ->
      match machine with
      | Some mm ->
          if Hashtbl.mem t.assigned task then ()
          else if is_noop_replay fin_prev task mm then begin
            incr replayed;
            Telemetry.Metrics.incr m m_replays
          end
          else if Cluster.State.task_stale t.cluster task then
            discard task `Stale_task m_stale_task_discards
          else if Cluster.State.machine_stale t.cluster mm then
            discard task `Stale_machine m_stale_machine_discards
          else if
            Cluster.Workload.is_waiting (Cluster.State.task t.cluster task)
            && Cluster.State.free_slots_on t.cluster mm > 0
          then begin
            Cluster.State.place t.cluster task mm ~now;
            Hashtbl.replace t.assigned task mm;
            t.policy.Policy.task_started (Cluster.State.task t.cluster task) mm;
            starts := (task, mm) :: !starts
          end
          else discard task `Capacity m_capacity_discards
      | None -> ())
    placements;
  (List.rev !starts, List.rev !discarded, !replayed)

(* Diff the solver's placements against the current assignment and apply
   them. Stale placements — tasks finished or preempted mid-solve, or
   aimed at machines that failed mid-solve — are discarded during
   classification, before any state is mutated; every actual place is
   then re-checked against the authoritative cluster state, so a slot
   that vanished under an absorbed event can never be double-booked. *)
let commit_diff ?fin_prev t ~now placements =
  let starts = ref [] and migrations = ref [] and preempts = ref [] in
  let unscheduled = ref 0 in
  let discarded = ref [] in
  let replayed = ref 0 in
  let discard tid reason counter =
    discarded := (tid, reason) :: !discarded;
    Telemetry.Metrics.incr m counter
  in
  List.iter
    (fun { Placement.task; machine } ->
      match (Hashtbl.find_opt t.assigned task, machine) with
      | None, Some mm ->
          if is_noop_replay fin_prev task mm then begin
            incr replayed;
            Telemetry.Metrics.incr m m_replays
          end
          else if Cluster.State.task_stale t.cluster task then
            discard task `Stale_task m_stale_task_discards
          else if Cluster.State.machine_stale t.cluster mm then
            discard task `Stale_machine m_stale_machine_discards
          else starts := (task, mm) :: !starts
      | Some m_old, Some m_new when m_old <> m_new ->
          if Cluster.State.task_stale t.cluster task then
            discard task `Stale_task m_stale_task_discards
          else if Cluster.State.machine_stale t.cluster m_new then
            discard task `Stale_machine m_stale_machine_discards
          else migrations := (task, m_old, m_new) :: !migrations
      | Some _, Some _ -> ()
      | Some _, None ->
          if Cluster.State.task_stale t.cluster task then
            discard task `Stale_task m_stale_task_discards
          else preempts := task :: !preempts
      | None, None -> incr unscheduled)
    placements;
  (* Free slots first (preemptions and migration sources), then place. *)
  List.iter
    (fun tid ->
      Cluster.State.preempt t.cluster tid;
      Hashtbl.remove t.assigned tid;
      t.policy.Policy.task_preempted (Cluster.State.task t.cluster tid))
    !preempts;
  List.iter (fun (tid, _, _) -> Cluster.State.preempt t.cluster tid) !migrations;
  let placed_migrations = ref [] in
  List.iter
    (fun (tid, m_old, m_new) ->
      if Cluster.State.free_slots_on t.cluster m_new > 0 then begin
        Cluster.State.place t.cluster tid m_new ~now;
        Hashtbl.replace t.assigned tid m_new;
        t.policy.Policy.task_started (Cluster.State.task t.cluster tid) m_new;
        placed_migrations := (tid, m_old, m_new) :: !placed_migrations
      end
      else begin
        (* The slot vanished under the migration; the task was already
           preempted above and returns to the wait queue. *)
        Hashtbl.remove t.assigned tid;
        t.policy.Policy.task_preempted (Cluster.State.task t.cluster tid);
        discard tid `Capacity m_capacity_discards
      end)
    !migrations;
  let placed_starts = ref [] in
  List.iter
    (fun (tid, mm) ->
      if
        (not (Hashtbl.mem t.assigned tid))
        && Cluster.Workload.is_waiting (Cluster.State.task t.cluster tid)
        && Cluster.State.free_slots_on t.cluster mm > 0
      then begin
        Cluster.State.place t.cluster tid mm ~now;
        Hashtbl.replace t.assigned tid mm;
        t.policy.Policy.task_started (Cluster.State.task t.cluster tid) mm;
        placed_starts := (tid, mm) :: !placed_starts
      end
      else discard tid `Capacity m_capacity_discards)
    !starts;
  ( !placed_starts,
    !placed_migrations,
    List.rev !preempts,
    !unscheduled,
    List.rev !discarded,
    !replayed )

(* Per-round delta of the graph's cumulative change summary. Clamped at
   zero: adopting a different graph object can lower the totals. Returns
   the excess-creating part of the delta (structural + capacity + supply
   changes — cost changes alone shift reduced costs but mint no excess),
   the size heuristic for the incremental-repair path choice. *)
let record_changes t =
  let open Flowgraph.Graph in
  let s = peek_changes (FN.graph t.net) in
  let prev = t.last_changes in
  let d a b = max 0 (a - b) in
  let structural = d s.structural prev.structural in
  let capacity = d s.capacity_changes prev.capacity_changes in
  let supply = d s.supply_changes prev.supply_changes in
  Telemetry.Metrics.add m m_chg_structural structural;
  Telemetry.Metrics.add m m_chg_cost (d s.cost_changes prev.cost_changes);
  Telemetry.Metrics.add m m_chg_capacity capacity;
  Telemetry.Metrics.add m m_chg_supply supply;
  t.last_changes <- s;
  structural + capacity + supply

let begin_round ?stop t ~now =
  (match t.pending with
  | Some _ -> invalid_arg "Scheduler.begin_round: a round is already in flight"
  | None -> ());
  Telemetry.Metrics.incr m m_rounds;
  Telemetry.Trace.new_round tr;
  let ck0 = Telemetry.Clock.now_ns () in
  t.policy.Policy.refresh ~now;
  let ck1 = Telemetry.Clock.now_ns () in
  Telemetry.Trace.span tr ~phase:t_refresh ~t0:ck0 ~t1:ck1;
  Telemetry.Metrics.observe m m_refresh_ns (ck1 - ck0);
  let excess_delta = record_changes t in
  (* The round deadline covers the whole round, retry included: the stop
     predicate is armed here and shared by every solve of this round. *)
  let stop =
    let base = Option.value stop ~default:Mcmf.Solver_intf.never_stop in
    match t.config.deadline with
    | None -> base
    | Some d -> Mcmf.Solver_intf.either_stop base (Mcmf.Solver_intf.deadline_stop d)
  in
  (* Stamp the round epoch: the placements this solve will produce are
     relative to the cluster state as of this instant, and any event that
     bumps the epoch past the stamp marks its task/machine stale. *)
  Cluster.State.stamp_round t.cluster;
  (* Path choice: vouch for the O(changes) repair only when enabled and
     the round's excess-creating change delta is small. The vouch is a
     hint — the repair kernel still enforces the budget on the actual
     excess-node and augmentation counts and falls back to the full race
     on any doubt. Cost-only churn (policy refresh) is deliberately not
     counted: it mints no excess, only shortest-path re-routes. *)
  let delta_budget =
    if t.config.incremental && excess_delta <= 4 * t.config.incremental_budget
    then Some t.config.incremental_budget
    else None
  in
  let handle = Mcmf.Race.submit ~stop ?delta_budget t.race (FN.graph t.net) in
  let ck2 = Telemetry.Clock.now_ns () in
  (* Dispatch half of the solve phase; the wait half is traced by
     [commit_round], and the two sum to the round's solve attribution. *)
  Telemetry.Trace.span tr ~phase:t_solve ~t0:ck1 ~t1:ck2;
  let p =
    {
      p_handle = handle;
      p_stop = stop;
      p_epoch = Cluster.State.event_epoch t.cluster;
      p_changes = Flowgraph.Graph.peek_changes (FN.graph t.net);
      p_mid_added = [];
      p_mid_finished = [];
      p_mid_fin_prev = [];
      p_mid_failed = [];
      p_ck0 = ck0;
      p_ck1 = ck1;
      p_ck2 = ck2;
    }
  in
  t.pending <- Some p;
  p

let poll _t p = Mcmf.Race.poll p.p_handle

let solver_runtime _t p =
  (Mcmf.Race.await p.p_handle).Mcmf.Race.stats.Mcmf.Solver_intf.runtime

let commit_round t p ~now =
  (match t.pending with
  | Some q when q == p -> t.pending <- None
  | Some _ | None ->
      invalid_arg "Scheduler.commit_round: not the round in flight");
  let ckA = Telemetry.Clock.now_ns () in
  Telemetry.Metrics.observe m m_pipeline_overlap_ns (max 0 (ckA - p.p_ck2));
  let first = Mcmf.Race.await p.p_handle in
  let ckW = Telemetry.Clock.now_ns () in
  Telemetry.Metrics.observe m m_pipeline_wait_ns (ckW - ckA);
  let result, retried =
    match first.Mcmf.Race.stats.Mcmf.Solver_intf.outcome with
    | Mcmf.Solver_intf.Infeasible ->
        (* A warm start facing heavy churn can report a transient
           infeasibility; one fresh attempt (reset flow, scratch ε)
           separates that from a genuinely unroutable network. The retry
           snapshots the *current* graph, so its result is never stale. *)
        Log.warn (fun m -> m "round@%.3f infeasible; retrying from scratch" now);
        (Mcmf.Race.solve ~stop:p.p_stop ~scratch:true t.race (FN.graph t.net), true)
    | Mcmf.Solver_intf.Optimal | Mcmf.Solver_intf.Stopped -> (first, false)
  in
  let ck2 = Telemetry.Clock.now_ns () in
  Telemetry.Trace.span tr ~phase:t_solve ~t0:ckA ~t1:ck2;
  (* Solve attribution = dispatch half (begin_round) + wait/retry half. *)
  let solve_ns = (p.p_ck2 - p.p_ck1) + (ck2 - ckA) in
  Telemetry.Metrics.observe m m_solve_ns solve_ns;
  if retried then Telemetry.Metrics.incr m m_rounds_retried;
  (* Did the canonical graph or cluster state move while the solve was in
     flight? If not, the solved graph is byte-for-byte the round's
     snapshot and the synchronous commit paths apply unchanged. *)
  let interleaved =
    (not retried)
    && (p.p_mid_added <> []
       || p.p_mid_finished <> []
       || p.p_mid_failed <> []
       || Cluster.State.event_epoch t.cluster <> p.p_epoch
       || Flowgraph.Graph.peek_changes (FN.graph t.net) <> p.p_changes)
  in
  if interleaved then Telemetry.Metrics.incr m m_rounds_overlapped;
  (* Close the round: shared metric recording plus the contiguous phase
     list ([("refresh", …); ("solve", …); branch phases]) whose durations
     sum to the round's commit-side wall time by construction. *)
  let close_round ?certified ~tail r =
    let wall =
      (p.p_ck1 - p.p_ck0) + solve_ns
      + List.fold_left (fun acc (_, d) -> acc + d) 0 tail
    in
    Telemetry.Metrics.observe m m_round_ns wall;
    Telemetry.Metrics.add m m_started (List.length r.started);
    Telemetry.Metrics.add m m_migrated (List.length r.migrated);
    Telemetry.Metrics.add m m_preempted (List.length r.preempted);
    Telemetry.Metrics.set m m_unscheduled r.unscheduled;
    let r =
      { r with phase_ns = ("refresh", p.p_ck1 - p.p_ck0) :: ("solve", solve_ns) :: tail }
    in
    (match t.observer with
    | Some f -> f r (FN.graph t.net) ~certified
    | None -> ());
    r
  in
  let algorithm_runtime =
    result.Mcmf.Race.stats.Mcmf.Solver_intf.runtime
    +. (if retried then first.Mcmf.Race.stats.Mcmf.Solver_intf.runtime else 0.)
  in
  (* Split solve attribution: winner's algorithm runtime vs everything
     else the phase spent (capped losers, dispatch copies, join). *)
  let win_ns = Telemetry.Clock.ns_of_s algorithm_runtime in
  Telemetry.Metrics.observe m m_solve_win_ns win_ns;
  Telemetry.Metrics.observe m m_solve_wait_ns (max 0 (solve_ns - win_ns));
  let fin_prev = fin_prev_table p in
  let base =
    {
      winner = result.Mcmf.Race.winner;
      solver_stats = result.Mcmf.Race.stats;
      relaxation_stats = result.Mcmf.Race.relaxation_stats;
      cost_scaling_stats = result.Mcmf.Race.cost_scaling_stats;
      algorithm_runtime;
      degraded = `None;
      started = [];
      migrated = [];
      preempted = [];
      unscheduled = 0;
      discarded = [];
      replayed = 0;
      phase_ns = [];
    }
  in
  match result.Mcmf.Race.stats.Mcmf.Solver_intf.outcome with
  | Mcmf.Solver_intf.Infeasible ->
      (* Both attempts infeasible: report a failed round, keep the
         pre-round graph (Race returned it untouched) so the next round
         starts from coherent state. *)
      Telemetry.Metrics.incr m m_rounds_failed;
      Log.warn (fun m ->
          m "round@%.3f failed: infeasible after scratch retry; %d tasks left waiting" now
            (Cluster.State.waiting_count t.cluster));
      let unscheduled = Cluster.State.waiting_count t.cluster in
      let ck3 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_apply ~t0:ck2 ~t1:ck3;
      Telemetry.Metrics.observe m m_apply_ns (ck3 - ck2);
      close_round
        ~tail:[ ("apply", ck3 - ck2) ]
        { base with degraded = `Failed; unscheduled }
  | Mcmf.Solver_intf.Stopped ->
      (* Deadline hit: the canonical graph stays at the pre-round warm
         start; the stopped solver's pseudoflow is only read for
         best-effort placements — through the snapshot reader when events
         interleaved, since the pseudoflow's node ids then describe the
         begin-of-round network, not the current one. *)
      Telemetry.Metrics.incr m m_rounds_partial;
      let started, discarded, replayed, ext_end =
        match result.Mcmf.Race.partial with
        | Some pg ->
            let placements =
              if interleaved then extract_from_snapshot t p pg
              else extract_partial_live t pg
            in
            let ext_end = Telemetry.Clock.now_ns () in
            let started, discarded, replayed = commit_starts ?fin_prev t ~now placements in
            (* The pseudoflow has been consumed; let the next round reuse
               its storage. *)
            Mcmf.Race.recycle t.race pg;
            (started, discarded, replayed, ext_end)
        | None -> ([], [], 0, ck2)
      in
      List.iter (fun (tid, _) -> Hashtbl.replace t.retry tid ()) discarded;
      Log.debug (fun m ->
          m "round@%.3f degraded to partial: %d best-effort starts, %d waiting" now
            (List.length started)
            (Cluster.State.waiting_count t.cluster));
      let unscheduled = Cluster.State.waiting_count t.cluster in
      let ck3 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_extract ~t0:ck2 ~t1:ext_end;
      Telemetry.Trace.span tr ~phase:t_apply ~t0:ext_end ~t1:ck3;
      Telemetry.Metrics.observe m m_extract_ns (ext_end - ck2);
      Telemetry.Metrics.observe m m_apply_ns (ck3 - ext_end);
      close_round
        ~tail:[ ("extract", ext_end - ck2); ("apply", ck3 - ext_end) ]
        { base with degraded = `Partial; started; unscheduled; discarded; replayed }
  | Mcmf.Solver_intf.Optimal when interleaved ->
      (* Reconcile: the canonical graph absorbed events while the solve
         was in flight, so the solved snapshot cannot be adopted — doing
         so would silently undo those events. Read its placements through
         the mid-solve event log, apply the stale-filtered diff, and keep
         the canonical (event-current) graph as the next round's warm
         start. No price refine either: the canonical flow was never
         certified optimal. *)
      let placements = extract_from_snapshot t p result.Mcmf.Race.graph in
      Mcmf.Race.recycle t.race result.Mcmf.Race.graph;
      let ck4 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_extract ~t0:ck2 ~t1:ck4;
      Telemetry.Metrics.observe m m_extract_ns (ck4 - ck2);
      let started, migrated, preempted, unscheduled, discarded, replayed =
        commit_diff ?fin_prev t ~now placements
      in
      List.iter (fun (tid, _) -> Hashtbl.replace t.retry tid ()) discarded;
      Log.debug (fun m ->
          m
            "round@%.3f reconciled: %d started, %d migrated, %d preempted, %d \
             discarded stale"
            now (List.length started) (List.length migrated)
            (List.length preempted) (List.length discarded));
      let ck5 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_apply ~t0:ck4 ~t1:ck5;
      Telemetry.Metrics.observe m m_apply_ns (ck5 - ck4);
      close_round
        ~tail:[ ("extract", ck4 - ck2); ("apply", ck5 - ck4) ]
        { base with started; migrated; preempted; unscheduled; discarded; replayed }
  | Mcmf.Solver_intf.Optimal ->
      let replaced = FN.graph t.net in
      FN.set_graph t.net result.Mcmf.Race.graph;
      (* Swap-on-optimal: the displaced canonical graph becomes the next
         round's scratch copy instead of garbage. *)
      Mcmf.Race.recycle t.race replaced;
      (* The adopted graph carries its own cumulative summary; re-sync the
         delta baseline so the next round doesn't misattribute. *)
      t.last_changes <- Flowgraph.Graph.peek_changes (FN.graph t.net);
      (* Snapshot the certified-optimal solution for the observer before
         the placement diff reroutes started tasks' arcs. Copy only on
         demand: the hook is a debug facility, off in production. *)
      let certified =
        match t.observer with
        | Some _ -> Some (Flowgraph.Graph.copy (FN.graph t.net))
        | None -> None
      in
      let ck3 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_adopt ~t0:ck2 ~t1:ck3;
      Telemetry.Metrics.observe m m_adopt_ns (ck3 - ck2);
      (* Delta extraction: sync the stored decomposition to the adopted
         flow and get back only the tasks whose path was rebuilt (the
         first adopted round reports everything). Tasks whose earlier
         delta commit was discarded re-enter via the retry set — their
         flow may not move again, so the decomposition's stored
         assignment is re-stated until the cluster accepts or the solver
         re-routes them. *)
      let changes = Placement.extract_delta t.ws t.net in
      let changes =
        if Hashtbl.length t.retry = 0 then changes
        else
          Hashtbl.fold
            (fun tid () acc ->
              if List.exists (fun (tid', _) -> tid' = tid) acc then acc
              else
                match Placement.delta_lookup t.ws tid with
                | Some mo -> (tid, mo) :: acc
                | None -> acc)
            t.retry changes
      in
      Hashtbl.reset t.retry;
      let placements =
        List.rev_map (fun (task, machine) -> { Placement.task; machine }) changes
      in
      let ck4 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_extract ~t0:ck3 ~t1:ck4;
      Telemetry.Metrics.observe m m_extract_ns (ck4 - ck3);
      (* Price refine runs on the untouched optimal solution, before the
         placement diff mutates the graph (paper §6.2). *)
      Mcmf.Race.prepare t.race (FN.graph t.net);
      let ck5 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_prepare ~t0:ck4 ~t1:ck5;
      Telemetry.Metrics.observe m m_prepare_ns (ck5 - ck4);
      let started, migrated, preempted, _unscheduled, discarded, replayed =
        commit_diff t ~now placements
      in
      List.iter (fun (tid, _) -> Hashtbl.replace t.retry tid ()) discarded;
      (* The delta change list omits tasks whose assignment did not move,
         so the (None, None) count commit_diff derives from it undercounts;
         the authoritative number is the cluster's post-commit wait queue. *)
      let unscheduled = Cluster.State.waiting_count t.cluster in
      Log.debug (fun m ->
          m "round@%.3f: %s won in %.4fs; %d started, %d migrated, %d preempted, %d waiting"
            now
            (match result.Mcmf.Race.winner with
            | Mcmf.Race.Relaxation -> "relaxation"
            | Mcmf.Race.Cost_scaling -> "cost scaling"
            | Mcmf.Race.Repair -> "incremental repair")
            base.algorithm_runtime (List.length started) (List.length migrated)
            (List.length preempted) unscheduled);
      let ck6 = Telemetry.Clock.now_ns () in
      Telemetry.Trace.span tr ~phase:t_apply ~t0:ck5 ~t1:ck6;
      Telemetry.Metrics.observe m m_apply_ns (ck6 - ck5);
      close_round ?certified
        ~tail:
          [
            ("adopt", ck3 - ck2);
            ("extract", ck4 - ck3);
            ("prepare", ck5 - ck4);
            ("apply", ck6 - ck5);
          ]
        {
          base with
          degraded = (if retried then `Infeasible_retry else `None);
          started;
          migrated;
          preempted;
          unscheduled;
          discarded;
          replayed;
        }

(* A synchronous round is exactly the pipelined pair with nothing in
   between: no event can interleave, so [commit_round] always takes the
   fast (non-reconciling) paths and behaves as the pre-pipelining
   scheduler did. *)
let schedule ?stop t ~now = commit_round t (begin_round ?stop t ~now) ~now

let assignments t = t.assigned

(* Debug/oracle access to the delta decomposition: what the workspace
   believes the last adopted flow assigned, or [None] before the first
   adopted round (or after a failed sync). *)
let decomposition t =
  if Placement.delta_synced t.ws then Some (Placement.delta_assignments t.ws)
  else None
