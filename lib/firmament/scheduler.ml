module FN = Flow_network

let log = Logs.Src.create "firmament.scheduler" ~doc:"Firmament scheduling rounds"

module Log = (val Logs.src_log log)

type config = {
  mode : Mcmf.Race.mode;
  alpha : int;
  price_refine : bool;
  drain_on_removal : bool;
}

let default_config =
  {
    mode = Mcmf.Race.Fastest_sequential;
    alpha = 9;
    price_refine = true;
    drain_on_removal = true;
  }

type round = {
  winner : Mcmf.Race.winner;
  solver_stats : Mcmf.Solver_intf.stats;
  relaxation_stats : Mcmf.Solver_intf.stats option;
  cost_scaling_stats : Mcmf.Solver_intf.stats option;
  algorithm_runtime : float;
  started : (Cluster.Types.task_id * Cluster.Types.machine_id) list;
  migrated :
    (Cluster.Types.task_id * Cluster.Types.machine_id * Cluster.Types.machine_id) list;
  preempted : Cluster.Types.task_id list;
  unscheduled : int;
}

type t = {
  config : config;
  cluster : Cluster.State.t;
  net : FN.t;
  policy : Policy.t;
  race : Mcmf.Race.t;
  assigned : (Cluster.Types.task_id, Cluster.Types.machine_id) Hashtbl.t;
}

let create ?(config = default_config) cluster ~policy =
  let net = FN.create () in
  let p = policy ~drain:config.drain_on_removal net cluster in
  {
    config;
    cluster;
    net;
    policy = p;
    race =
      Mcmf.Race.create ~alpha:config.alpha ~price_refine:config.price_refine
        ~mode:config.mode ();
    assigned = Hashtbl.create 1024;
  }

let network t = t.net
let cluster t = t.cluster
let policy_name t = t.policy.Policy.name

let submit_job t job =
  Cluster.State.submit_job t.cluster job;
  Array.iter (fun task -> t.policy.Policy.task_submitted task) job.Cluster.Workload.tasks

let finish_task t tid ~now =
  Cluster.State.finish t.cluster tid ~now;
  t.policy.Policy.task_finished (Cluster.State.task t.cluster tid);
  Hashtbl.remove t.assigned tid

let fail_machine t m =
  let victims = Cluster.State.fail_machine t.cluster m in
  t.policy.Policy.machine_failed m;
  List.iter
    (fun tid ->
      Hashtbl.remove t.assigned tid;
      t.policy.Policy.task_preempted (Cluster.State.task t.cluster tid))
    victims

let restore_machine t m =
  Cluster.State.restore_machine t.cluster m;
  t.policy.Policy.machine_restored m

let schedule ?stop t ~now =
  t.policy.Policy.refresh ~now;
  let result = Mcmf.Race.solve ?stop t.race (FN.graph t.net) in
  FN.set_graph t.net result.Mcmf.Race.graph;
  let base =
    {
      winner = result.Mcmf.Race.winner;
      solver_stats = result.Mcmf.Race.stats;
      relaxation_stats = result.Mcmf.Race.relaxation_stats;
      cost_scaling_stats = result.Mcmf.Race.cost_scaling_stats;
      algorithm_runtime = result.Mcmf.Race.stats.Mcmf.Solver_intf.runtime;
      started = [];
      migrated = [];
      preempted = [];
      unscheduled = 0;
    }
  in
  match result.Mcmf.Race.stats.Mcmf.Solver_intf.outcome with
  | Mcmf.Solver_intf.Stopped | Mcmf.Solver_intf.Infeasible ->
      { base with unscheduled = Cluster.State.waiting_count t.cluster }
  | Mcmf.Solver_intf.Optimal ->
      let placements = Placement.extract t.net in
      (* Price refine runs on the untouched optimal solution, before the
         placement diff mutates the graph (paper §6.2). *)
      Mcmf.Race.prepare t.race (FN.graph t.net);
      let starts = ref [] and migrations = ref [] and preempts = ref [] in
      let unscheduled = ref 0 in
      List.iter
        (fun { Placement.task; machine } ->
          match (Hashtbl.find_opt t.assigned task, machine) with
          | None, Some m -> starts := (task, m) :: !starts
          | Some m_old, Some m_new when m_old <> m_new ->
              migrations := (task, m_old, m_new) :: !migrations
          | Some _, Some _ -> ()
          | Some _, None -> preempts := task :: !preempts
          | None, None -> incr unscheduled)
        placements;
      (* Free slots first (preemptions and migration sources), then place. *)
      List.iter
        (fun tid ->
          Cluster.State.preempt t.cluster tid;
          Hashtbl.remove t.assigned tid;
          t.policy.Policy.task_preempted (Cluster.State.task t.cluster tid))
        !preempts;
      List.iter (fun (tid, _, _) -> Cluster.State.preempt t.cluster tid) !migrations;
      List.iter
        (fun (tid, _, m_new) ->
          Cluster.State.place t.cluster tid m_new ~now;
          Hashtbl.replace t.assigned tid m_new;
          t.policy.Policy.task_started (Cluster.State.task t.cluster tid) m_new)
        !migrations;
      List.iter
        (fun (tid, m) ->
          Cluster.State.place t.cluster tid m ~now;
          Hashtbl.replace t.assigned tid m;
          t.policy.Policy.task_started (Cluster.State.task t.cluster tid) m)
        !starts;
      Log.debug (fun m ->
          m "round@%.3f: %s won in %.4fs; %d started, %d migrated, %d preempted, %d waiting"
            now
            (match result.Mcmf.Race.winner with
            | Mcmf.Race.Relaxation -> "relaxation"
            | Mcmf.Race.Cost_scaling -> "cost scaling")
            base.algorithm_runtime (List.length !starts) (List.length !migrations)
            (List.length !preempts) !unscheduled);
      {
        base with
        started = List.rev !starts;
        migrated = List.rev !migrations;
        preempted = List.rev !preempts;
        unscheduled = !unscheduled;
      }

let assignments t = t.assigned
