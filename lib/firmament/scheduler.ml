module FN = Flow_network

let log = Logs.Src.create "firmament.scheduler" ~doc:"Firmament scheduling rounds"

module Log = (val Logs.src_log log)

type config = {
  mode : Mcmf.Race.mode;
  alpha : int;
  price_refine : bool;
  drain_on_removal : bool;
  deadline : float option;
}

let default_config =
  {
    mode = Mcmf.Race.Fastest_sequential;
    alpha = 9;
    price_refine = true;
    drain_on_removal = true;
    deadline = None;
  }

type degraded = [ `None | `Partial | `Infeasible_retry | `Failed ]

let pp_degraded ppf d =
  Format.pp_print_string ppf
    (match d with
    | `None -> "none"
    | `Partial -> "partial"
    | `Infeasible_retry -> "infeasible-retry"
    | `Failed -> "failed")

type round = {
  winner : Mcmf.Race.winner;
  solver_stats : Mcmf.Solver_intf.stats;
  relaxation_stats : Mcmf.Solver_intf.stats option;
  cost_scaling_stats : Mcmf.Solver_intf.stats option;
  algorithm_runtime : float;
  degraded : degraded;
  started : (Cluster.Types.task_id * Cluster.Types.machine_id) list;
  migrated :
    (Cluster.Types.task_id * Cluster.Types.machine_id * Cluster.Types.machine_id) list;
  preempted : Cluster.Types.task_id list;
  unscheduled : int;
}

type t = {
  config : config;
  cluster : Cluster.State.t;
  net : FN.t;
  policy : Policy.t;
  race : Mcmf.Race.t;
  assigned : (Cluster.Types.task_id, Cluster.Types.machine_id) Hashtbl.t;
}

let create ?(config = default_config) cluster ~policy =
  (* Pre-size the flow graph from the cluster's shape so steady-state
     rounds never pay growth doublings: one node per machine/rack plus
     roughly one task per slot (with aggregator and churn headroom), and
     a few arcs per node (task→aggregator→machine→sink chains). *)
  let topo = Cluster.State.topology cluster in
  let machines = Cluster.Topology.machine_count topo in
  let slots = Cluster.Topology.total_slots topo in
  let node_hint = (2 * (machines + slots)) + 64 in
  let net = FN.create ~node_hint ~arc_hint:(4 * node_hint) () in
  let p = policy ~drain:config.drain_on_removal net cluster in
  {
    config;
    cluster;
    net;
    policy = p;
    race =
      Mcmf.Race.create ~alpha:config.alpha ~price_refine:config.price_refine
        ~mode:config.mode ();
    assigned = Hashtbl.create 1024;
  }

let network t = t.net
let cluster t = t.cluster
let policy_name t = t.policy.Policy.name

let submit_job t job =
  Cluster.State.submit_job t.cluster job;
  Array.iter (fun task -> t.policy.Policy.task_submitted task) job.Cluster.Workload.tasks

let finish_task t tid ~now =
  Cluster.State.finish t.cluster tid ~now;
  t.policy.Policy.task_finished (Cluster.State.task t.cluster tid);
  Hashtbl.remove t.assigned tid

let fail_machine t m =
  let victims = Cluster.State.fail_machine t.cluster m in
  t.policy.Policy.machine_failed m;
  List.iter
    (fun tid ->
      Hashtbl.remove t.assigned tid;
      t.policy.Policy.task_preempted (Cluster.State.task t.cluster tid))
    victims

let restore_machine t m =
  Cluster.State.restore_machine t.cluster m;
  t.policy.Policy.machine_restored m

(* Commit the feasible fraction of a deadline-stopped round: start waiting
   tasks whose unit of flow reached a machine in the intermediate
   pseudoflow. Running tasks are left alone — a half-solved flow is no
   grounds for migrations or preemptions — and every start is re-checked
   against the authoritative cluster state (machine live, slot free), so
   only capacity-valid placements commit. *)
let commit_partial t ~now partial_graph =
  let keep = FN.graph t.net in
  (* The canonical graph must come back even if extraction raises — an
     exception here must not leave the network pointing at the transient
     pseudoflow. *)
  let placements =
    Fun.protect
      ~finally:(fun () -> FN.set_graph t.net keep)
      (fun () ->
        FN.set_graph t.net partial_graph;
        Placement.extract_partial t.net)
  in
  let starts = ref [] in
  List.iter
    (fun { Placement.task; machine } ->
      match machine with
      | Some m
        when (not (Hashtbl.mem t.assigned task))
             && Cluster.Workload.is_waiting (Cluster.State.task t.cluster task)
             && Cluster.State.free_slots_on t.cluster m > 0 ->
          Cluster.State.place t.cluster task m ~now;
          Hashtbl.replace t.assigned task m;
          t.policy.Policy.task_started (Cluster.State.task t.cluster task) m;
          starts := (task, m) :: !starts
      | _ -> ())
    placements;
  List.rev !starts

let schedule ?stop t ~now =
  t.policy.Policy.refresh ~now;
  (* The round deadline covers the whole round, retry included: the stop
     predicate is armed here and shared by every solve below. *)
  let stop =
    let base = Option.value stop ~default:Mcmf.Solver_intf.never_stop in
    match t.config.deadline with
    | None -> base
    | Some d -> Mcmf.Solver_intf.either_stop base (Mcmf.Solver_intf.deadline_stop d)
  in
  let first = Mcmf.Race.solve ~stop t.race (FN.graph t.net) in
  let result, retried =
    match first.Mcmf.Race.stats.Mcmf.Solver_intf.outcome with
    | Mcmf.Solver_intf.Infeasible ->
        (* A warm start facing heavy churn can report a transient
           infeasibility; one fresh attempt (reset flow, scratch ε)
           separates that from a genuinely unroutable network. *)
        Log.warn (fun m -> m "round@%.3f infeasible; retrying from scratch" now);
        (Mcmf.Race.solve ~stop ~scratch:true t.race (FN.graph t.net), true)
    | Mcmf.Solver_intf.Optimal | Mcmf.Solver_intf.Stopped -> (first, false)
  in
  let algorithm_runtime =
    result.Mcmf.Race.stats.Mcmf.Solver_intf.runtime
    +. (if retried then first.Mcmf.Race.stats.Mcmf.Solver_intf.runtime else 0.)
  in
  let base =
    {
      winner = result.Mcmf.Race.winner;
      solver_stats = result.Mcmf.Race.stats;
      relaxation_stats = result.Mcmf.Race.relaxation_stats;
      cost_scaling_stats = result.Mcmf.Race.cost_scaling_stats;
      algorithm_runtime;
      degraded = `None;
      started = [];
      migrated = [];
      preempted = [];
      unscheduled = 0;
    }
  in
  match result.Mcmf.Race.stats.Mcmf.Solver_intf.outcome with
  | Mcmf.Solver_intf.Infeasible ->
      (* Both attempts infeasible: report a failed round, keep the
         pre-round graph (Race returned it untouched) so the next round
         starts from coherent state. *)
      Log.warn (fun m ->
          m "round@%.3f failed: infeasible after scratch retry; %d tasks left waiting" now
            (Cluster.State.waiting_count t.cluster));
      { base with degraded = `Failed; unscheduled = Cluster.State.waiting_count t.cluster }
  | Mcmf.Solver_intf.Stopped ->
      (* Deadline hit: the canonical graph stays at the pre-round warm
         start; the stopped solver's pseudoflow is only read for
         best-effort placements. *)
      let started =
        match result.Mcmf.Race.partial with
        | Some pg ->
            let starts = commit_partial t ~now pg in
            (* The pseudoflow has been consumed; let the next round reuse
               its storage. *)
            Mcmf.Race.recycle t.race pg;
            starts
        | None -> []
      in
      Log.debug (fun m ->
          m "round@%.3f degraded to partial: %d best-effort starts, %d waiting" now
            (List.length started)
            (Cluster.State.waiting_count t.cluster));
      {
        base with
        degraded = `Partial;
        started;
        unscheduled = Cluster.State.waiting_count t.cluster;
      }
  | Mcmf.Solver_intf.Optimal ->
      let replaced = FN.graph t.net in
      FN.set_graph t.net result.Mcmf.Race.graph;
      (* Swap-on-optimal: the displaced canonical graph becomes the next
         round's scratch copy instead of garbage. *)
      Mcmf.Race.recycle t.race replaced;
      let placements = Placement.extract t.net in
      (* Price refine runs on the untouched optimal solution, before the
         placement diff mutates the graph (paper §6.2). *)
      Mcmf.Race.prepare t.race (FN.graph t.net);
      let starts = ref [] and migrations = ref [] and preempts = ref [] in
      let unscheduled = ref 0 in
      List.iter
        (fun { Placement.task; machine } ->
          match (Hashtbl.find_opt t.assigned task, machine) with
          | None, Some m -> starts := (task, m) :: !starts
          | Some m_old, Some m_new when m_old <> m_new ->
              migrations := (task, m_old, m_new) :: !migrations
          | Some _, Some _ -> ()
          | Some _, None -> preempts := task :: !preempts
          | None, None -> incr unscheduled)
        placements;
      (* Free slots first (preemptions and migration sources), then place. *)
      List.iter
        (fun tid ->
          Cluster.State.preempt t.cluster tid;
          Hashtbl.remove t.assigned tid;
          t.policy.Policy.task_preempted (Cluster.State.task t.cluster tid))
        !preempts;
      List.iter (fun (tid, _, _) -> Cluster.State.preempt t.cluster tid) !migrations;
      List.iter
        (fun (tid, _, m_new) ->
          Cluster.State.place t.cluster tid m_new ~now;
          Hashtbl.replace t.assigned tid m_new;
          t.policy.Policy.task_started (Cluster.State.task t.cluster tid) m_new)
        !migrations;
      List.iter
        (fun (tid, m) ->
          Cluster.State.place t.cluster tid m ~now;
          Hashtbl.replace t.assigned tid m;
          t.policy.Policy.task_started (Cluster.State.task t.cluster tid) m)
        !starts;
      Log.debug (fun m ->
          m "round@%.3f: %s won in %.4fs; %d started, %d migrated, %d preempted, %d waiting"
            now
            (match result.Mcmf.Race.winner with
            | Mcmf.Race.Relaxation -> "relaxation"
            | Mcmf.Race.Cost_scaling -> "cost scaling")
            base.algorithm_runtime (List.length !starts) (List.length !migrations)
            (List.length !preempts) !unscheduled);
      {
        base with
        degraded = (if retried then `Infeasible_retry else `None);
        started = List.rev !starts;
        migrated = List.rev !migrations;
        preempted = List.rev !preempts;
        unscheduled = !unscheduled;
      }

let assignments t = t.assigned
