module G = Flowgraph.Graph
module FN = Flow_network

type config = {
  cost_per_running_task : int;
  unscheduled_base : int;
  wait_cost_per_second : int;
}

let default_config =
  { cost_per_running_task = 100; unscheduled_base = 100_000; wait_cost_per_second = 100 }

let make ?(config = default_config) ~drain net cluster =
  let topo = Cluster.State.topology cluster in
  let x = FN.ensure_cluster_agg net in
  let sink = FN.sink net in
  ignore sink;
  let machine_arcs = Hashtbl.create 64 in
  (* X -> machine is a convex cost: the k-th concurrent task on a machine
     costs more than the (k-1)-th, so spreading happens even within one
     batch. Decomposed into [slots] parallel unit arcs with increasing
     cost, refreshed per round as tasks start and finish. *)
  let ensure_machine m =
    let slots = (Cluster.Topology.machine topo m).Cluster.Topology.slots in
    let mn = FN.ensure_machine net m ~slots in
    if not (Hashtbl.mem machine_arcs m) then begin
      let arcs =
        Array.init slots (fun i ->
            G.add_arc (FN.graph net) ~src:x ~dst:mn
              ~cost:(config.cost_per_running_task * i)
              ~cap:1)
      in
      Hashtbl.replace machine_arcs m arcs
    end
  in
  Cluster.Topology.iter_machines topo (fun m -> ensure_machine m.Cluster.Topology.id);
  let unsched_cost (task : Cluster.Workload.task) ~now =
    config.unscheduled_base
    + (config.wait_cost_per_second
      * int_of_float (Float.max 0. (now -. task.Cluster.Workload.submit_time)))
  in
  let task_submitted (task : Cluster.Workload.task) =
    let tn = FN.add_task net task.Cluster.Workload.tid in
    let g = FN.graph net in
    let u = FN.ensure_unscheduled net task.Cluster.Workload.job in
    ignore (G.add_arc g ~src:tn ~dst:u ~cost:(unsched_cost task ~now:task.Cluster.Workload.submit_time) ~cap:1);
    ignore (G.add_arc g ~src:tn ~dst:x ~cost:0 ~cap:1);
    Policy.adjust_unscheduled_capacity net task.Cluster.Workload.job ~delta:1
  in
  let task_finished (task : Cluster.Workload.task) =
    FN.remove_task net task.Cluster.Workload.tid ~drain;
    Policy.adjust_unscheduled_capacity net task.Cluster.Workload.job ~delta:(-1)
  in
  let task_started (task : Cluster.Workload.task) m =
    (* Pin continuation: staying put is free, so only contention moves it. *)
    match (FN.task_node net task.Cluster.Workload.tid, FN.machine_node net m) with
    | Some tn, Some mn -> ignore (FN.set_or_add_arc net ~src:tn ~dst:mn ~cost:0 ~cap:1)
    | _ -> ()
  in
  let task_preempted (task : Cluster.Workload.task) =
    (* Drop the continuation arc; the task competes via X again. *)
    match Cluster.Workload.machine_of task with
    | _ -> (
        match FN.task_node net task.Cluster.Workload.tid with
        | None -> ()
        | Some tn ->
            let g = FN.graph net in
            let to_remove = ref [] in
            let it = ref (G.first_out g tn) in
            while !it >= 0 do
              let a = !it in
              if G.is_forward a && FN.machine_of_node net (G.dst g a) <> None then
                to_remove := a :: !to_remove;
              it := G.next_out g a
            done;
            List.iter (fun a -> G.remove_arc g a) !to_remove)
  in
  let machine_failed m =
    Hashtbl.remove machine_arcs m;
    FN.remove_machine net m
  in
  let machine_restored m = ensure_machine m in
  let refresh ~now =
    let g = FN.graph net in
    (* First traversal: per-machine statistics (running task counts);
       second: cost updates on the X->machine and unscheduled arcs. The
       i-th spare unit on a machine with r running tasks costs (r + i). *)
    Hashtbl.iter
      (fun m arcs ->
        let r = Cluster.State.running_count cluster m in
        Array.iteri
          (fun i a ->
            if G.arc_is_live g a then
              G.set_cost g a (config.cost_per_running_task * (r + i)))
          arcs)
      machine_arcs;
    List.iter
      (fun (task : Cluster.Workload.task) ->
        match FN.task_node net task.Cluster.Workload.tid with
        | None -> ()
        | Some tn -> (
            match FN.unscheduled_node net task.Cluster.Workload.job with
            | None -> ()
            | Some u -> (
                match FN.find_arc net tn u with
                | Some a -> G.set_cost g a (unsched_cost task ~now)
                | None -> ())))
      (Cluster.State.waiting_tasks cluster)
  in
  {
    Policy.name = "load-spreading";
    task_submitted;
    task_finished;
    task_started;
    task_preempted;
    machine_failed;
    machine_restored;
    refresh;
  }
