(** Network-aware policy (paper Fig. 6c, §7.5).

    Avoids overcommitting machines' network bandwidth: each task connects
    to a {e request aggregator} for its bandwidth-request class; request
    aggregators have arcs only to machines with enough spare bandwidth and
    free slots, with cost [request + currently used bandwidth] so load
    balances across lightly-loaded links. Arcs are re-derived from observed
    bandwidth on every {!Policy.refresh}, which is how the policy reacts to
    background traffic (the Fig. 19b experiment).

    The observed per-machine bandwidth is obtained through the
    [bandwidth_used] callback, so a network simulator (or a real cluster
    monitor) can report flows the scheduler did not itself place. *)

type config = {
  bucket_mbps : int;  (** request classes are rounded up to this grain *)
  unscheduled_base : int;
  wait_cost_per_second : int;
}

val default_config : config

(** [bucket_of ~config demand] is the request-aggregator class for a
    demand in Mbps (minimum one bucket). *)
val bucket_of : config:config -> int -> int

val make :
  ?config:config ->
  ?bandwidth_used:(Cluster.Types.machine_id -> int) ->
  drain:bool ->
  Flow_network.t ->
  Cluster.State.t ->
  Policy.t
