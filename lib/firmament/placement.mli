(** Task-placement extraction from the optimal flow (paper §6.3,
    Listing 1).

    Firmament allows arbitrary aggregators between tasks and machines, so
    paths can be longer than in Quincy; this generalizes Quincy's
    extraction to a single backward pass. Starting from machine nodes
    (which mint one token per unit of flow they forward to the sink),
    tokens are propagated backwards along flow-carrying arcs; a node
    distributes its tokens once it has received one per unit of its own
    outgoing machine-bound flow (Kahn-style readiness, which makes the
    "revisit" loop of Listing 1 a strict single pass). Tasks whose unit of
    flow drains through an unscheduled aggregator receive no token and are
    reported unplaced. *)

type assignment = {
  task : Cluster.Types.task_id;
  machine : Cluster.Types.machine_id option;  (** [None] = left unscheduled *)
}

(** [extract net] reads the current (feasible) flow in [net] and returns
    one assignment per task node.
    @raise Failure if the flow is infeasible (non-zero excess) or violates
    the structural invariants the extraction relies on. *)
val extract : Flow_network.t -> assignment list

(** [extract_map net] is {!extract} as a hash table over scheduled tasks
    only. *)
val extract_map :
  Flow_network.t -> (Cluster.Types.task_id, Cluster.Types.machine_id) Hashtbl.t

(** [extract_partial net] reads placements out of a possibly {e infeasible
    or non-optimal} intermediate flow (an early-terminated solver run,
    paper §5.1/Fig. 10): each task's unit of flow is walked toward the
    sink with backtracking over a per-arc flow budget (an aborted branch
    refunds what it consumed, so a dead-end probe never leaks flow away
    from tasks sharing a path prefix); reaching a machine additionally
    claims a unit of its sink arc, so no machine is ever attributed more
    tasks than its flow toward the sink — placements are capacity-valid
    even on a pseudoflow with excess parked mid-graph. Tasks whose flow is
    unrouted or parks at an unscheduled aggregator report [None]. Unlike
    {!extract} this never fails, but concurrent units through an
    aggregator may be attributed to either upstream task. *)
val extract_partial : Flow_network.t -> assignment list

(** [extract_snapshot g ~sink ~classify ~tasks] is the {!extract_partial}
    walk applied to a solver {e snapshot} [g] that may have structurally
    diverged from the live network (nodes added or removed by cluster
    events absorbed while the solve was in flight). [tasks] lists the
    tasks that existed when the snapshot was taken, with their node ids
    {e in the snapshot}; [classify] maps an interior node to how the
    snapshot saw it — [`Machine m] (a machine, possibly failed since; the
    walk claims a unit of its sink arc), [`Through] (an aggregator), or
    [`Blocked] (unscheduled aggregators and anything unroutable). Entry
    nodes are always treated as pass-through. On an optimal snapshot this
    is an exact flow decomposition; on a pseudoflow it is best-effort and
    capacity-valid, like {!extract_partial}. *)
val extract_snapshot :
  Flowgraph.Graph.t ->
  sink:Flowgraph.Graph.node ->
  classify:
    (Flowgraph.Graph.node ->
    [ `Machine of Cluster.Types.machine_id | `Through | `Blocked ]) ->
  tasks:(Cluster.Types.task_id * Flowgraph.Graph.node) list ->
  assignment list
