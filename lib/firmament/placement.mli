(** Task-placement extraction from the optimal flow (paper §6.3,
    Listing 1).

    Firmament allows arbitrary aggregators between tasks and machines,
    so paths can be longer than in Quincy; this generalizes Quincy's
    extraction to a flow decomposition: each task's unit of flow is
    assigned one concrete sink path, and the penultimate node (machine
    or unscheduled aggregator) decides its placement. When several
    tasks' units merge at an aggregator the attribution between them is
    ambiguous; any decomposition of the same flow yields the same
    scheduled-task set and the same per-machine task counts.

    Extraction is {e incremental}: a {!workspace} retains the previous
    decomposition, and {!extract_delta} re-walks only tasks whose stored
    path crosses an arc whose flow or identity changed since the last
    sync (per-arc generation stamps, {!Flowgraph.Graph.arc_generation}).
    A full {!extract} is the same machinery run from an empty workspace.
    All hot-path state lives in preallocated int arrays (epoch-stamped
    marks, an {!Int_table} for task slots) — steady-state syncs allocate
    only the returned change list. *)

type assignment = {
  task : Cluster.Types.task_id;
  machine : Cluster.Types.machine_id option;  (** [None] = left unscheduled *)
}

(** A reusable extraction state: the delta decomposition plus scratch
    budgets for the pseudoflow walks. One per scheduler; safe to share
    between {!extract_delta} and {!extract_partial}/{!extract_snapshot}
    (the walks use separate epoch-stamped budgets and never disturb the
    delta state). Not thread-safe. *)
type workspace

(** [node_hint]/[arc_hint] (the {!Flow_network.create} topology hints)
    pre-size the tracked-task and per-arc arrays so the first adopted
    round builds the decomposition without growth doublings. *)
val create_workspace : ?node_hint:int -> ?arc_hint:int -> unit -> workspace

(** [extract ?workspace net] reads the current (feasible) flow in [net]
    and returns one assignment per task node, sorted by task id. Resets
    [workspace] (if given) and rebuilds the decomposition from scratch,
    leaving it synced to [net]'s current flow.
    @raise Failure if the flow is infeasible (non-zero excess) or
    violates the structural invariants extraction relies on (task flow
    reaching the sink from a non-machine, non-unscheduled node; paths
    deeper than the policy DAG allows). *)
val extract : ?workspace:workspace -> Flow_network.t -> assignment list

(** [extract_delta ws net] incrementally syncs [ws] to [net]'s current
    flow and returns the tasks whose stored path was rebuilt, with their
    new assignment — a superset of the tasks whose assignment actually
    changed (attribution churn between tasks sharing aggregators can
    re-route a task onto the machine it already occupied; callers must
    treat the list as idempotent updates, not edges). Tasks that left
    the network are dropped silently. On the first call (or after a
    failed sync) this is a full rebuild reporting every task.
    @raise Failure as {!extract}. *)
val extract_delta :
  workspace ->
  Flow_network.t ->
  (Cluster.Types.task_id * Cluster.Types.machine_id option) list

(** [delta_assignments ws] is the full decomposition currently stored in
    [ws], sorted by task id — what {!extract} would have returned at the
    last successful sync. Meaningless while {!delta_synced} is false. *)
val delta_assignments : workspace -> assignment list

(** [delta_lookup ws tid] is [None] if [tid] is untracked, otherwise
    [Some machine_opt] — its stored assignment. *)
val delta_lookup :
  workspace -> Cluster.Types.task_id -> Cluster.Types.machine_id option option

(** [delta_unscheduled ws] is the number of tracked tasks currently
    decomposed through an unscheduled aggregator. *)
val delta_unscheduled : workspace -> int

(** [delta_synced ws] is true when the last sync completed successfully
    (the stored decomposition matches some graph's flow exactly). *)
val delta_synced : workspace -> bool

(** [extract_map net] is {!extract} as a hash table over scheduled tasks
    only. *)
val extract_map :
  Flow_network.t -> (Cluster.Types.task_id, Cluster.Types.machine_id) Hashtbl.t

(** [extract_partial net] reads placements out of a possibly {e infeasible
    or non-optimal} intermediate flow (an early-terminated solver run,
    paper §5.1/Fig. 10): each task's unit of flow is walked toward the
    sink with backtracking over a per-arc flow budget (an aborted branch
    refunds what it consumed, so a dead-end probe never leaks flow away
    from tasks sharing a path prefix); reaching a machine additionally
    claims a unit of its sink arc — via the O(1) cached handle
    ({!Flow_network.machine_sink_arc}) — so no machine is ever attributed
    more tasks than its flow toward the sink: placements are
    capacity-valid even on a pseudoflow with excess parked mid-graph.
    Tasks whose flow is unrouted or parks at an unscheduled aggregator
    report [None]. Unlike {!extract} this never fails, but concurrent
    units through an aggregator may be attributed to either upstream
    task. Budgets live in [workspace] (fresh one if omitted) and do not
    disturb its delta state. *)
val extract_partial : ?workspace:workspace -> Flow_network.t -> assignment list

(** [extract_snapshot g ~sink ~classify ~tasks] is the {!extract_partial}
    walk applied to a solver {e snapshot} [g] that may have structurally
    diverged from the live network (nodes added or removed by cluster
    events absorbed while the solve was in flight). [tasks] lists the
    tasks that existed when the snapshot was taken, with their node ids
    {e in the snapshot}; [classify] maps an interior node to how the
    snapshot saw it — [`Machine m] (a machine, possibly failed since; the
    walk claims a unit of its sink arc, located by scanning the
    snapshot's out-list since cached handles describe the live network),
    [`Through] (an aggregator), or [`Blocked] (unscheduled aggregators
    and anything unroutable). Entry nodes are always treated as
    pass-through. On an optimal snapshot this is an exact flow
    decomposition; on a pseudoflow it is best-effort and capacity-valid,
    like {!extract_partial}. *)
val extract_snapshot :
  ?workspace:workspace ->
  Flowgraph.Graph.t ->
  sink:Flowgraph.Graph.node ->
  classify:
    (Flowgraph.Graph.node ->
    [ `Machine of Cluster.Types.machine_id | `Through | `Blocked ]) ->
  tasks:(Cluster.Types.task_id * Flowgraph.Graph.node) list ->
  assignment list
