(** Task-placement extraction from the optimal flow (paper §6.3,
    Listing 1).

    Firmament allows arbitrary aggregators between tasks and machines, so
    paths can be longer than in Quincy; this generalizes Quincy's
    extraction to a single backward pass. Starting from machine nodes
    (which mint one token per unit of flow they forward to the sink),
    tokens are propagated backwards along flow-carrying arcs; a node
    distributes its tokens once it has received one per unit of its own
    outgoing machine-bound flow (Kahn-style readiness, which makes the
    "revisit" loop of Listing 1 a strict single pass). Tasks whose unit of
    flow drains through an unscheduled aggregator receive no token and are
    reported unplaced. *)

type assignment = {
  task : Cluster.Types.task_id;
  machine : Cluster.Types.machine_id option;  (** [None] = left unscheduled *)
}

(** [extract net] reads the current (feasible) flow in [net] and returns
    one assignment per task node.
    @raise Failure if the flow is infeasible (non-zero excess) or violates
    the structural invariants the extraction relies on. *)
val extract : Flow_network.t -> assignment list

(** [extract_map net] is {!extract} as a hash table over scheduled tasks
    only. *)
val extract_map :
  Flow_network.t -> (Cluster.Types.task_id, Cluster.Types.machine_id) Hashtbl.t

(** [extract_partial net] reads placements out of a possibly {e infeasible
    or non-optimal} intermediate flow (an early-terminated solver run,
    paper §5.1/Fig. 10): each task's unit of flow is walked toward the
    sink with backtracking over a per-arc flow budget (an aborted branch
    refunds what it consumed, so a dead-end probe never leaks flow away
    from tasks sharing a path prefix); reaching a machine additionally
    claims a unit of its sink arc, so no machine is ever attributed more
    tasks than its flow toward the sink — placements are capacity-valid
    even on a pseudoflow with excess parked mid-graph. Tasks whose flow is
    unrouted or parks at an unscheduled aggregator report [None]. Unlike
    {!extract} this never fails, but concurrent units through an
    aggregator may be attributed to either upstream task. *)
val extract_partial : Flow_network.t -> assignment list
