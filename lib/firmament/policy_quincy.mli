(** Quincy's locality-oriented policy (paper Fig. 6b, after [22, §4.2]).

    Batch tasks get low-cost {e preference arcs} to machines and racks that
    hold at least a threshold fraction of their input data, and fall back
    to the cluster aggregator [X] (wildcard placement, full remote read)
    otherwise. Costs are proportional to the data that would have to be
    transferred; the cost of waiting grows with time, and a running task's
    arc to its current machine drops to zero (its input is already local),
    so preemption happens only when the optimizer finds it worthwhile.

    The {b preference threshold} is the knob of Fig. 15: Quincy's original
    ~14 % (few arcs per task) versus 2 % (many fine-grained arcs, better
    locality — affordable only because Firmament's solver scales). *)

type config = {
  preference_threshold : float;
      (** minimum fraction of a task's input on a machine/rack to earn a
          preference arc *)
  rack_locality_discount : float;
      (** fraction of the transfer cost saved by rack locality *)
  unscheduled_base : int;
  wait_cost_per_second : int;
  service_priority_factor : int;
      (** multiplier on service tasks' unscheduled cost: makes the
          optimizer displace batch work for service jobs (Omega-style
          priorities, §7.1) *)
}

val default_config : config

(** [locality_fractions task] aggregates the task's input-block placements
    into per-machine fractions (exposed for tests and the Fig. 15 locality
    measurement). *)
val locality_fractions :
  Cluster.Workload.task -> (Cluster.Types.machine_id * float) list

val make :
  ?config:config -> drain:bool -> Flow_network.t -> Cluster.State.t -> Policy.t
