type t = {
  name : string;
  task_submitted : Cluster.Workload.task -> unit;
  task_finished : Cluster.Workload.task -> unit;
  task_started : Cluster.Workload.task -> Cluster.Types.machine_id -> unit;
  task_preempted : Cluster.Workload.task -> unit;
  machine_failed : Cluster.Types.machine_id -> unit;
  machine_restored : Cluster.Types.machine_id -> unit;
  refresh : now:float -> unit;
}

module G = Flowgraph.Graph

let adjust_unscheduled_capacity net j ~delta =
  let u = Flow_network.ensure_unscheduled net j in
  let sink = Flow_network.sink net in
  match Flow_network.find_arc net u sink with
  | None -> invalid_arg "Policy.adjust_unscheduled_capacity: missing sink arc"
  | Some a ->
      let g = Flow_network.graph net in
      G.set_capacity g a (max 0 (G.capacity g a + delta))

(* Remove every outgoing forward arc of a task node except those leading
   into [keep] (typically the placement's direct arc and the unscheduled
   aggregator). Used by policies when a task starts running: pruning the
   unused alternatives (rather than leaving them open at stale costs)
   keeps the warm solution certified, so the incremental solver's ε stays
   small (paper §6.2). *)
let prune_task_arcs net tid ~keep =
  match Flow_network.task_node net tid with
  | None -> ()
  | Some tn ->
      let g = Flow_network.graph net in
      let stale = ref [] in
      let it = ref (G.first_out g tn) in
      while !it >= 0 do
        let a = !it in
        if G.is_forward a && not (List.mem (G.dst g a) keep) then stale := a :: !stale;
        it := G.next_out g a
      done;
      List.iter (fun a -> G.remove_arc g a) !stale
