module G = Flowgraph.Graph

type node_kind =
  | Task_node of Cluster.Types.task_id
  | Machine_node of Cluster.Types.machine_id
  | Rack_node of Cluster.Types.rack_id
  | Cluster_agg
  | Unscheduled_agg of Cluster.Types.job_id
  | Request_agg of int
  | Sink

let pp_node_kind ppf = function
  | Task_node t -> Format.fprintf ppf "task:%d" t
  | Machine_node m -> Format.fprintf ppf "machine:%d" m
  | Rack_node r -> Format.fprintf ppf "rack:%d" r
  | Cluster_agg -> Format.pp_print_string ppf "cluster-agg"
  | Unscheduled_agg j -> Format.fprintf ppf "unscheduled:%d" j
  | Request_agg b -> Format.fprintf ppf "request-agg:%d" b
  | Sink -> Format.pp_print_string ppf "sink"

type t = {
  mutable g : G.t;
  sink : G.node;
  kinds : (G.node, node_kind) Hashtbl.t;
  tasks : (Cluster.Types.task_id, G.node) Hashtbl.t;
  machines : (Cluster.Types.machine_id, G.node) Hashtbl.t;
  racks : (Cluster.Types.rack_id, G.node) Hashtbl.t;
  unscheduled : (Cluster.Types.job_id, G.node) Hashtbl.t;
  request_aggs : (int, G.node) Hashtbl.t;
  (* Cached machine->sink arc handles, maintained by
     [ensure_machine]/[remove_machine]. Arc ids survive graph copies and
     [set_graph] swaps between structure-preserving copies, so readers
     (placement extraction, validation) can use them on any adopted
     solution graph without re-scanning out-lists. *)
  sink_arcs : (Cluster.Types.machine_id, G.arc) Hashtbl.t;
  mutable cluster_agg : G.node option;
  mutable n_tasks : int;
}

let create ?node_hint ?arc_hint () =
  let g = G.create ?node_hint ?arc_hint () in
  let sink = G.add_node g ~supply:0 in
  let kinds = Hashtbl.create 256 in
  Hashtbl.replace kinds sink Sink;
  {
    g;
    sink;
    kinds;
    tasks = Hashtbl.create 256;
    machines = Hashtbl.create 64;
    racks = Hashtbl.create 16;
    unscheduled = Hashtbl.create 16;
    request_aggs = Hashtbl.create 16;
    sink_arcs = Hashtbl.create 64;
    cluster_agg = None;
    n_tasks = 0;
  }

let graph t = t.g
let set_graph t g = t.g <- g
let sink t = t.sink

let kind t n =
  match Hashtbl.find_opt t.kinds n with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "Flow_network.kind: unknown node %d" n)

let kind_opt t n = Hashtbl.find_opt t.kinds n

let task_count t = t.n_tasks

let add_task t tid =
  if Hashtbl.mem t.tasks tid then
    invalid_arg (Printf.sprintf "Flow_network.add_task: task %d already present" tid);
  let n = G.add_node t.g ~supply:1 in
  Hashtbl.replace t.kinds n (Task_node tid);
  Hashtbl.replace t.tasks tid n;
  t.n_tasks <- t.n_tasks + 1;
  G.set_supply t.g t.sink (- t.n_tasks);
  n

let task_node t tid = Hashtbl.find_opt t.tasks tid

let task_of_node t n =
  match Hashtbl.find_opt t.kinds n with Some (Task_node tid) -> Some tid | _ -> None

let machine_node t m = Hashtbl.find_opt t.machines m

let machine_of_node t n =
  match Hashtbl.find_opt t.kinds n with Some (Machine_node m) -> Some m | _ -> None

(* Walk the task's unit of flow to the sink and retire it (paper §5.3.2):
   after this the rest of the solution is untouched and stays balanced. *)
let drain_task_flow t node =
  let rec walk n =
    if n <> t.sink then begin
      (* Find any outgoing forward arc carrying flow. *)
      let carrier = ref (-1) in
      let it = ref (G.first_out t.g n) in
      while !carrier < 0 && !it >= 0 do
        let a = !it in
        if G.is_forward a && G.rescap t.g (G.rev a) > 0 then carrier := a;
        it := G.next_out t.g a
      done;
      if !carrier >= 0 then begin
        G.push t.g (G.rev !carrier) 1;
        walk (G.dst t.g !carrier)
      end
    end
  in
  walk node

let remove_task t tid ~drain =
  match Hashtbl.find_opt t.tasks tid with
  | None -> invalid_arg (Printf.sprintf "Flow_network.remove_task: unknown task %d" tid)
  | Some n ->
      if drain then drain_task_flow t n;
      G.remove_node t.g n;
      Hashtbl.remove t.tasks tid;
      Hashtbl.remove t.kinds n;
      t.n_tasks <- t.n_tasks - 1;
      G.set_supply t.g t.sink (- t.n_tasks)

(* Move the task's unit onto the direct task->machine arc. The task's own
   first hop is cancelled, and one unit of any flow-decomposition path from
   that hop's head to the machine is cancelled via a backward search from
   the machine along flow-carrying arcs. The search never expands task
   nodes and stops at the target aggregator, so high-degree aggregators
   are never scanned. *)
let reroute_direct t tid m ~cost =
  match (Hashtbl.find_opt t.tasks tid, Hashtbl.find_opt t.machines m) with
  | Some tn, Some mn ->
      (* The task's unique carrier (its one unit of flow). *)
      let first_hop = ref (-1) in
      let it = ref (G.first_out t.g tn) in
      while !first_hop < 0 && !it >= 0 do
        let a = !it in
        if G.is_forward a && G.rescap t.g (G.rev a) > 0 then first_hop := a;
        it := G.next_out t.g a
      done;
      if !first_hop < 0 then false (* unrouted *)
      else if G.dst t.g !first_hop = mn then true (* already direct *)
      else begin
        let target = G.dst t.g !first_hop in
        (* Backward DFS from the machine: follow reverse residual arcs
           (one per unit of inbound flow) until reaching [target]. *)
        let parent : (G.node, G.arc) Hashtbl.t = Hashtbl.create 16 in
        let stack = ref [ mn ] in
        let found = ref false in
        while (not !found) && !stack <> [] do
          match !stack with
          | [] -> ()
          | n :: rest ->
              stack := rest;
              let it = ref (G.first_active t.g n) in
              while (not !found) && !it >= 0 do
                let a = !it in
                (* Reverse residual arcs n->p mirror flow p->n. *)
                if not (G.is_forward a) then begin
                  let p = G.dst t.g a in
                  if p = target then begin
                    Hashtbl.replace parent p a;
                    found := true
                  end
                  else if not (Hashtbl.mem parent p) then begin
                    match Hashtbl.find_opt t.kinds p with
                    | Some (Rack_node _ | Cluster_agg | Request_agg _) ->
                        Hashtbl.replace parent p a;
                        stack := p :: !stack
                    | Some
                        ( Task_node _ | Machine_node _ | Unscheduled_agg _ | Sink )
                    | None ->
                        ()
                  end
                end;
                it := G.next_active t.g a
              done
        done;
        if not !found then false
        else begin
          (* Cancel the task's own first hop... *)
          G.push t.g (G.rev !first_hop) 1;
          (* ...cancel one unit along the discovered chain (pushing on the
             reverse arcs walks the reduction from the machine back to the
             target aggregator)... *)
          let rec unwind n =
            if n <> mn then begin
              let a = Hashtbl.find parent n in
              (* a runs src->n with src closer to the machine. *)
              G.push t.g a 1;
              unwind (G.src t.g a)
            end
          in
          unwind target;
          (* ...and route the unit directly. *)
          let direct =
            match
              (let found = ref None in
               let it = ref (G.first_out t.g tn) in
               while !found = None && !it >= 0 do
                 let a = !it in
                 if G.is_forward a && G.dst t.g a = mn then found := Some a;
                 it := G.next_out t.g a
               done;
               !found)
            with
            | Some a ->
                G.set_cost t.g a cost;
                a
            | None -> G.add_arc t.g ~src:tn ~dst:mn ~cost ~cap:1
          in
          G.push t.g direct 1;
          true
        end
      end
  | _ -> false

let ensure_machine t m ~slots =
  match Hashtbl.find_opt t.machines m with
  | Some n -> n
  | None ->
      let n = G.add_node t.g ~supply:0 in
      Hashtbl.replace t.kinds n (Machine_node m);
      Hashtbl.replace t.machines m n;
      let a = G.add_arc t.g ~src:n ~dst:t.sink ~cost:0 ~cap:slots in
      Hashtbl.replace t.sink_arcs m a;
      n

let remove_machine t m =
  match Hashtbl.find_opt t.machines m with
  | None -> ()
  | Some n ->
      G.remove_node t.g n;
      Hashtbl.remove t.machines m;
      Hashtbl.remove t.sink_arcs m;
      Hashtbl.remove t.kinds n

let machine_sink_arc t m = Hashtbl.find_opt t.sink_arcs m

let ensure_rack t r =
  match Hashtbl.find_opt t.racks r with
  | Some n -> n
  | None ->
      let n = G.add_node t.g ~supply:0 in
      Hashtbl.replace t.kinds n (Rack_node r);
      Hashtbl.replace t.racks r n;
      n

let rack_node t r = Hashtbl.find_opt t.racks r

let ensure_cluster_agg t =
  match t.cluster_agg with
  | Some n -> n
  | None ->
      let n = G.add_node t.g ~supply:0 in
      Hashtbl.replace t.kinds n Cluster_agg;
      t.cluster_agg <- Some n;
      n

let ensure_unscheduled t j =
  match Hashtbl.find_opt t.unscheduled j with
  | Some n -> n
  | None ->
      let n = G.add_node t.g ~supply:0 in
      Hashtbl.replace t.kinds n (Unscheduled_agg j);
      Hashtbl.replace t.unscheduled j n;
      ignore (G.add_arc t.g ~src:n ~dst:t.sink ~cost:0 ~cap:0);
      n

let unscheduled_node t j = Hashtbl.find_opt t.unscheduled j

let remove_unscheduled t j =
  match Hashtbl.find_opt t.unscheduled j with
  | None -> ()
  | Some n ->
      G.remove_node t.g n;
      Hashtbl.remove t.unscheduled j;
      Hashtbl.remove t.kinds n

let ensure_request_agg t b =
  match Hashtbl.find_opt t.request_aggs b with
  | Some n -> n
  | None ->
      let n = G.add_node t.g ~supply:0 in
      Hashtbl.replace t.kinds n (Request_agg b);
      Hashtbl.replace t.request_aggs b n;
      n

let remove_request_agg t b =
  match Hashtbl.find_opt t.request_aggs b with
  | None -> ()
  | Some n ->
      G.remove_node t.g n;
      Hashtbl.remove t.request_aggs b;
      Hashtbl.remove t.kinds n

let find_arc t src dst =
  let found = ref None in
  let it = ref (G.first_out t.g src) in
  while !found = None && !it >= 0 do
    let a = !it in
    if G.is_forward a && G.dst t.g a = dst then found := Some a;
    it := G.next_out t.g a
  done;
  !found

let set_or_add_arc t ~src ~dst ~cost ~cap =
  match find_arc t src dst with
  | Some a ->
      G.set_cost t.g a cost;
      G.set_capacity t.g a cap;
      a
  | None -> G.add_arc t.g ~src ~dst ~cost ~cap

let iter_task_nodes t f = Hashtbl.iter f t.tasks
let iter_machine_nodes t f = Hashtbl.iter f t.machines

let validate_structure t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  if G.supply t.g t.sink <> -t.n_tasks then
    err "sink supply %d does not match -%d task nodes" (G.supply t.g t.sink) t.n_tasks;
  Hashtbl.iter
    (fun tid n ->
      if not (G.node_is_live t.g n) then err "task %d maps to dead node %d" tid n
      else if G.supply t.g n <> 1 then err "task %d has supply %d" tid (G.supply t.g n))
    t.tasks;
  Hashtbl.iter
    (fun m n ->
      if not (G.node_is_live t.g n) then err "machine %d maps to dead node %d" m n
      else begin
        (* The cached sink-arc handle must be a live n->sink arc... *)
        (match Hashtbl.find_opt t.sink_arcs m with
        | None -> err "machine %d has no cached sink arc" m
        | Some a ->
            if not (G.arc_is_live t.g a) then err "machine %d cached sink arc %d is dead" m a
            else if G.src t.g a <> n || G.dst t.g a <> t.sink then
              err "machine %d cached sink arc %d runs %d->%d, expected %d->sink" m a
                (G.src t.g a) (G.dst t.g a) n);
        (* ...and remain the machine's only outgoing forward arc. *)
        let it = ref (G.first_out t.g n) in
        while !it >= 0 do
          let a = !it in
          if G.is_forward a && G.dst t.g a <> t.sink then
            err "machine %d has a non-sink outgoing arc to node %d" m (G.dst t.g a);
          it := G.next_out t.g a
        done
      end)
    t.machines;
  List.rev !errs
