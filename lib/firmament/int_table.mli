(** Preallocated open-addressing map from non-negative int keys to
    non-negative int values.

    Replaces fresh [Hashtbl]s on the round hot path (placement
    extraction workspaces): storage is two flat int arrays reused across
    rounds, lookups and updates allocate nothing in steady state, and
    [clear] retains capacity. Linear probing with backward-shift
    deletion (no tombstones), load factor ≤ 1/2.

    Both keys and values must be ≥ 0 — [find]'s "absent" result is [-1]. *)

type t

(** [create ?capacity ()] pre-sizes the table for about [capacity]
    entries (default 16; rounded up to a power of two internally). *)
val create : ?capacity:int -> unit -> t

val length : t -> int

(** [find t k] is the value bound to [k], or [-1] if absent. Never
    allocates. *)
val find : t -> int -> int

val mem : t -> int -> bool

(** [set t k v] binds [k] to [v], replacing any previous binding.
    Amortized allocation-free (doubles storage when load exceeds 1/2).
    @raise Invalid_argument if [k < 0] or [v < 0]. *)
val set : t -> int -> int -> unit

(** [remove t k] drops [k]'s binding if present (backward-shift, so
    probe chains stay compact and later finds never slow down). *)
val remove : t -> int -> unit

(** [clear t] empties the table, keeping its storage. *)
val clear : t -> unit

(** [iter t f] applies [f key value] to every binding, in storage order.
    [f] must not mutate [t]. *)
val iter : t -> (int -> int -> unit) -> unit
