module G = Flowgraph.Graph
module FN = Flow_network
module Resources = Cluster.Resources

type config = {
  preference_threshold : float;
  rack_locality_discount : float;
  unscheduled_base : int;
  wait_cost_per_second : int;
  service_priority_factor : int;
}

let default_config =
  {
    preference_threshold = 0.14;
    rack_locality_discount = 0.7;
    unscheduled_base = 1_000;
    wait_cost_per_second = 50;
    service_priority_factor = 10;
  }

let locality_fractions (task : Cluster.Workload.task) =
  let placements = task.Cluster.Workload.input_machines in
  let total = List.length placements in
  if total = 0 then []
  else begin
    let counts = Hashtbl.create 8 in
    List.iter
      (fun m -> Hashtbl.replace counts m (1 + Option.value ~default:0 (Hashtbl.find_opt counts m)))
      placements;
    Hashtbl.fold (fun m c acc -> (m, float_of_int c /. float_of_int total) :: acc) counts []
  end

let make ?(config = default_config) ~drain net cluster =
  let topo = Cluster.State.topology cluster in
  let x = FN.ensure_cluster_agg net in
  let g () = FN.graph net in
  (* Backbone: X -> rack -> machine -> sink, all zero-cost. The X -> rack
     capacity is the rack's full slot complement (an upper bound; the
     rack -> machine arcs enforce the live capacity). *)
  let rack_total_slots r =
    List.fold_left
      (fun acc m -> acc + (Cluster.Topology.machine topo m).Cluster.Topology.slots)
      0
      (Cluster.Topology.machines_in_rack topo r)
  in
  let ensure_machine m =
    let info = Cluster.Topology.machine topo m in
    let mn = FN.ensure_machine net m ~slots:info.Cluster.Topology.slots in
    let r = info.Cluster.Topology.rack in
    let rn = FN.ensure_rack net r in
    if FN.find_arc net rn mn = None then begin
      ignore (G.add_arc (g ()) ~src:rn ~dst:mn ~cost:0 ~cap:info.Cluster.Topology.slots);
      ignore (FN.set_or_add_arc net ~src:x ~dst:rn ~cost:0 ~cap:(rack_total_slots r))
    end;
    mn
  in
  Cluster.Topology.iter_machines topo (fun m -> ignore (ensure_machine m.Cluster.Topology.id));
  let transfer_cost (task : Cluster.Workload.task) = 10 + int_of_float task.Cluster.Workload.input_mb in
  let unsched_cost (task : Cluster.Workload.task) ~now =
    let base = config.unscheduled_base + (2 * transfer_cost task) in
    let job = Cluster.State.job cluster task.Cluster.Workload.job in
    let prio =
      match job.Cluster.Workload.klass with
      | Cluster.Types.Service -> config.service_priority_factor
      | Cluster.Types.Batch -> 1
    in
    (prio * base)
    + (config.wait_cost_per_second
      * int_of_float (Float.max 0. (now -. task.Cluster.Workload.submit_time)))
  in
  (* Each waiting task's unscheduled-arc handle, maintained by
     [install_arcs] (which replaces the arc) and [task_finished] (which
     removes the node). Arc handles survive graph adoption because the
     race deals in structure-preserving copies, so [refresh] can update
     wait costs without re-finding the arc by scan every round. *)
  let unsched_arcs : (Cluster.Types.task_id, G.arc) Hashtbl.t =
    Hashtbl.create 256
  in
  (* Remove every outgoing arc of the task node, then install the arcs of
     Fig. 6b: unscheduled, wildcard via X, and preference arcs to machines
     and racks above the locality threshold. *)
  let install_arcs (task : Cluster.Workload.task) ~now =
    let tid = task.Cluster.Workload.tid in
    let tn =
      match FN.task_node net tid with Some n -> n | None -> FN.add_task net tid
    in
    let gr = g () in
    let stale = ref [] in
    let it = ref (G.first_out gr tn) in
    while !it >= 0 do
      let a = !it in
      if G.is_forward a then stale := a :: !stale;
      it := G.next_out gr a
    done;
    List.iter (fun a -> G.remove_arc gr a) !stale;
    let u = FN.ensure_unscheduled net task.Cluster.Workload.job in
    Hashtbl.replace unsched_arcs tid
      (G.add_arc gr ~src:tn ~dst:u ~cost:(unsched_cost task ~now) ~cap:1);
    let cost_remote = transfer_cost task in
    ignore (G.add_arc gr ~src:tn ~dst:x ~cost:cost_remote ~cap:1);
    let fractions = locality_fractions task in
    let rack_fraction = Hashtbl.create 4 in
    (* Multi-dimensional feasibility check (paper §7.1): no preference arc
       to a machine whose capacity can never hold the task's request. *)
    let can_ever_fit m =
      Resources.fits ~request:task.Cluster.Workload.request
        ~available:(Cluster.Topology.machine topo m).Cluster.Topology.capacity
    in
    List.iter
      (fun (m, frac) ->
        (* Machines can disappear (failures); skip their preferences. *)
        if Cluster.State.machine_is_live cluster m && can_ever_fit m then begin
          let r = Cluster.Topology.rack_of topo m in
          Hashtbl.replace rack_fraction r
            (frac +. Option.value ~default:0. (Hashtbl.find_opt rack_fraction r));
          if frac >= config.preference_threshold then begin
            match FN.machine_node net m with
            | Some mn ->
                let cost = int_of_float (float_of_int cost_remote *. (1. -. frac)) in
                ignore (G.add_arc gr ~src:tn ~dst:mn ~cost ~cap:1)
            | None -> ()
          end
        end)
      fractions;
    Hashtbl.iter
      (fun r frac ->
        if frac >= config.preference_threshold then begin
          match FN.rack_node net r with
          | Some rn ->
              let cost =
                int_of_float
                  (float_of_int cost_remote *. (1. -. (config.rack_locality_discount *. frac)))
              in
              ignore (G.add_arc gr ~src:tn ~dst:rn ~cost ~cap:1)
          | None -> ()
        end)
      rack_fraction
  in
  let task_submitted (task : Cluster.Workload.task) =
    install_arcs task ~now:task.Cluster.Workload.submit_time;
    Policy.adjust_unscheduled_capacity net task.Cluster.Workload.job ~delta:1
  in
  let task_finished (task : Cluster.Workload.task) =
    Hashtbl.remove unsched_arcs task.Cluster.Workload.tid;
    FN.remove_task net task.Cluster.Workload.tid ~drain;
    Policy.adjust_unscheduled_capacity net task.Cluster.Workload.job ~delta:(-1)
  in
  let task_started (task : Cluster.Workload.task) m =
    (* Input now local: continuing here is free. Move the task's unit onto
       the direct arc and drop the unused alternatives so the warm
       solution stays certified for the next incremental solve. *)
    let tid = task.Cluster.Workload.tid in
    if FN.reroute_direct net tid m ~cost:0 then begin
      match (FN.machine_node net m, FN.unscheduled_node net task.Cluster.Workload.job) with
      | Some mn, Some u -> Policy.prune_task_arcs net tid ~keep:[ mn; u ]
      | _ -> ()
    end
    else begin
      match (FN.task_node net tid, FN.machine_node net m) with
      | Some tn, Some mn -> ignore (FN.set_or_add_arc net ~src:tn ~dst:mn ~cost:0 ~cap:1)
      | _ -> ()
    end
  in
  let task_preempted (task : Cluster.Workload.task) =
    install_arcs task ~now:task.Cluster.Workload.submit_time
  in
  let machine_failed m = FN.remove_machine net m in
  let machine_restored m =
    ignore (ensure_machine m);
    (* A failed machine's preference arcs were dropped with its node (and
       [install_arcs] skips dead machines), so waiting tasks whose inputs
       live on [m] are left with only wildcard routes. Reinstall their arc
       sets now that the machine (and its rack path) is back, so the next
       round can place them locally again. *)
    List.iter
      (fun (task : Cluster.Workload.task) ->
        if List.mem m task.Cluster.Workload.input_machines then
          install_arcs task ~now:task.Cluster.Workload.submit_time)
      (Cluster.State.waiting_tasks cluster)
  in
  let refresh ~now =
    let gr = g () in
    List.iter
      (fun (task : Cluster.Workload.task) ->
        match Hashtbl.find_opt unsched_arcs task.Cluster.Workload.tid with
        | None -> ()
        | Some a ->
            (* [unsched_cost] quantizes waiting time to whole seconds, so
               the cost is unchanged on most rounds; only touch the graph
               (and dirty the solver's warm start) when it moved. *)
            let c = unsched_cost task ~now in
            if G.cost gr a <> c then G.set_cost gr a c)
      (Cluster.State.waiting_tasks cluster)
  in
  {
    Policy.name = "quincy";
    task_submitted;
    task_finished;
    task_started;
    task_preempted;
    machine_failed;
    machine_restored;
    refresh;
  }
