(** The Firmament scheduler (paper Fig. 4).

    Owns the scheduling flow network, a {!Policy.t} that keeps it in sync
    with cluster events, and the {!Mcmf.Race} solver orchestrator. Each
    {!schedule} call performs one flow-based scheduling round (paper
    Fig. 2b): refresh policy statistics, run the solver(s), adopt the
    winning solution, extract placements, and apply the diff against the
    current assignment (task starts, migrations, preemptions).

    Rounds degrade instead of crashing. Every round lands on one rung of
    the degradation ladder ({!type:degraded}):
    {ul
    {- [`None] — the solver reached optimality; the full placement diff
       was applied.}
    {- [`Partial] — the round deadline (or caller stop) fired mid-solve.
       The canonical flow network keeps the pre-round warm start; the
       stopped solver's intermediate pseudoflow is read once with
       {!Placement.extract_partial} to start whatever waiting tasks it
       feasibly routed (capacity re-checked against the cluster state);
       running tasks are never migrated or preempted on partial
       information.}
    {- [`Infeasible_retry] — the warm-started solve reported
       infeasibility, a single from-scratch retry succeeded; the round
       otherwise behaves like [`None].}
    {- [`Failed] — the scratch retry was infeasible too (a genuinely
       unroutable network, e.g. zero-capacity sink arcs). No state
       changes; the pre-round graph is preserved so the next round (after
       the network is repaired) recovers from a coherent warm start.}}

    Invariant: the flow network owned by this scheduler is never left
    mid-solve between rounds — {!Mcmf.Race.solve} works on copies, and a
    degraded round keeps the pre-round graph.

    {2 Pipelined rounds}

    A round can also be split at the solver boundary: {!begin_round}
    refreshes the policy, stamps the round epoch and dispatches the solve
    on a snapshot; {!commit_round} awaits the result and applies it.
    Between the two, cluster events ({!submit_job}, {!finish_task},
    {!fail_machine}, {!restore_machine}) may mutate the canonical graph —
    the solver works on its own copies. At commit, placements involving a
    task or machine invalidated mid-solve are {e discarded} rather than
    applied (reported in [round.discarded] with a {!discard_reason}), and
    every remaining placement is re-checked against the authoritative
    cluster state, so absorbed events can never be double-booked or
    silently undone. When events interleaved with an optimal solve, the
    solved snapshot is read through the mid-solve event log and the
    canonical (event-current) graph is kept as the next warm start; when
    nothing interleaved, commit takes exactly the synchronous paths.

    Configured with [mode = Cost_scaling_scratch_only] and the Quincy
    policy, this {e is} the paper's Quincy baseline (§7.1). *)

type config = {
  mode : Mcmf.Race.mode;
  alpha : int;  (** cost scaling's ε-division factor (paper tunes 9) *)
  price_refine : bool;  (** §6.2 switching optimization *)
  drain_on_removal : bool;  (** §5.3.2 efficient task removal *)
  deadline : float option;
      (** per-round wall-clock budget in seconds. Covers the whole round
          including the infeasibility retry; when it fires, the round
          degrades to [`Partial] instead of running long. [None] (the
          default) never stops a solve. *)
  incremental : bool;
      (** enable the O(changes) incremental-repair path (default [true]):
          when the previous round's adopted solution is certified optimal
          and this round's change set is small, the round is solved by
          {!Mcmf.Incremental.repair} on the warm graph instead of running
          the full solver race; any repair give-up falls back to the
          configured [mode] untouched *)
  incremental_budget : int;
      (** repair budget (default 512): the per-round cap on excess nodes
          and augmentations the repair may perform before giving up. The
          repair path is only attempted when the round's
          structural+capacity+supply change count is at most 4× this
          (cost-only churn mints no excess and does not count) *)
}

val default_config : config

(** How far a round degraded (the ladder
    [`None → `Partial → `Infeasible_retry → `Failed]; see the module
    docs). *)
type degraded = [ `None | `Partial | `Infeasible_retry | `Failed ]

val pp_degraded : Format.formatter -> degraded -> unit

(** Why a solver placement was dropped at commit instead of applied:
    the task finished or was preempted mid-solve ([`Stale_task]), the
    target machine failed mid-solve ([`Stale_machine]), or the
    authoritative capacity re-check found no free slot ([`Capacity]). *)
type discard_reason = [ `Stale_task | `Stale_machine | `Capacity ]

val pp_discard_reason : Format.formatter -> discard_reason -> unit

(** What one scheduling round did. *)
type round = {
  winner : Mcmf.Race.winner;
  solver_stats : Mcmf.Solver_intf.stats;
  relaxation_stats : Mcmf.Solver_intf.stats option;
  cost_scaling_stats : Mcmf.Solver_intf.stats option;
  algorithm_runtime : float;
      (** wall-clock solve time of the round: the winner's runtime, plus
          the failed first attempt's on an [`Infeasible_retry] round *)
  degraded : degraded;
  started : (Cluster.Types.task_id * Cluster.Types.machine_id) list;
  migrated :
    (Cluster.Types.task_id * Cluster.Types.machine_id * Cluster.Types.machine_id) list;
      (** (task, from, to) *)
  preempted : Cluster.Types.task_id list;
  unscheduled : int;  (** live tasks left waiting by this round *)
  discarded : (Cluster.Types.task_id * discard_reason) list;
      (** solver placements dropped at commit: stale (the task or target
          machine was invalidated by an event absorbed mid-solve) or
          capacity-rejected. Always [[]] on a synchronous {!schedule}
          round with no concurrent events. *)
  replayed : int;
      (** solver placements recognized as no-op replays at commit: the
          task finished mid-solve and the solver (re)confirmed the very
          machine it was running on when the solve began. Nothing was
          invalidated — the solution is simply describing a task that
          completed meanwhile — so these are counted here instead of
          being misreported as [`Stale_task] discards. *)
  phase_ns : (string * int) list;
      (** where the round's wall time went, as [(phase, nanoseconds)] in
          execution order. Phases are measured with contiguous monotonic
          checkpoints, so the durations sum to the round's wall time
          exactly — for a pipelined round, the wall time {e excluding}
          the overlap window between [begin_round] and [commit_round]
          (the solve phase counts the dispatch and wait halves only).
          Always starts [("refresh", _); ("solve", _)]; an optimal round
          continues [adopt; extract; prepare; apply] (or
          [extract; apply] when mid-solve events forced reconciliation),
          a [`Partial] round [extract; apply], a [`Failed] round
          [apply] — which is what shows where a deadline-bounded round
          actually spent its budget. *)
}

type t

(** [create ?config cluster ~policy] builds a scheduler. [policy] is a
    factory ({!Policy_quincy.make}-style) invoked with the network this
    scheduler owns. *)
val create :
  ?config:config ->
  Cluster.State.t ->
  policy:(drain:bool -> Flow_network.t -> Cluster.State.t -> Policy.t) ->
  t

val network : t -> Flow_network.t
val cluster : t -> Cluster.State.t
val policy_name : t -> string

(** {1 Cluster events} — keep the policy's graph in sync. *)

val submit_job : t -> Cluster.Workload.job -> unit
val finish_task : t -> Cluster.Types.task_id -> now:float -> unit

(** [fail_machine t m] kills the machine; its tasks return to the wait
    queue and will be rescheduled by the next round. *)
val fail_machine : t -> Cluster.Types.machine_id -> unit

val restore_machine : t -> Cluster.Types.machine_id -> unit

(** [preempt_task t tid] kicks a running task back to the wait queue (an
    operator/fuzz-harness event, not a solver decision). The cluster
    stamps the task stale, so a solve in flight cannot re-commit a
    placement for it. *)
val preempt_task : t -> Cluster.Types.task_id -> unit

(** {1 Scheduling} *)

(** [schedule ?stop t ~now] runs one round. Never raises on an infeasible
    or deadline-stopped solve: the round reports how it degraded in
    [round.degraded] (see the ladder above). [stop] is combined with the
    configured round deadline, if any. Equivalent to
    [commit_round t (begin_round ?stop t ~now) ~now]. *)
val schedule : ?stop:Mcmf.Solver_intf.stop -> t -> now:float -> round

(** A scheduling round in flight: dispatched by {!begin_round}, awaiting
    {!commit_round}. *)
type pending

(** [begin_round ?stop t ~now] refreshes the policy, stamps the round
    epoch and dispatches the solve on a snapshot of the flow network
    (under [mode = Race_parallel] the solvers run on background domains;
    sequential modes solve eagerly here). Cluster events may be applied
    to [t] while the round is pending. At most one round may be in
    flight per scheduler.
    @raise Invalid_argument if a round is already pending. *)
val begin_round : ?stop:Mcmf.Solver_intf.stop -> t -> now:float -> pending

(** [poll t p] is [true] once the dispatched solve has finished (always
    [true] under the sequential modes). *)
val poll : t -> pending -> bool

(** [solver_runtime t p] blocks until the solve finishes and returns the
    winner's wall-clock runtime in seconds — what a simulator needs to
    know how long the solver window was, before committing. *)
val solver_runtime : t -> pending -> float

(** [commit_round t p ~now] awaits the solve and applies its result with
    stale-aware reconciliation (see the module docs).
    @raise Invalid_argument if [p] is not the round in flight. *)
val commit_round : t -> pending -> now:float -> round

(** Current task → machine assignment (running tasks only). *)
val assignments :
  t -> (Cluster.Types.task_id, Cluster.Types.machine_id) Hashtbl.t

(** [decomposition t] is the incremental extractor's current view of the
    solved flow — the full per-task decomposition stored in the delta
    workspace ({!Placement.delta_assignments}) — or [None] when the last
    round did not leave the workspace synced (degraded rounds, modes that
    bypass delta extraction). A debugging/oracle hook: the fuzz harness
    compares it against a from-scratch {!Placement.extract} of the
    certified solution. *)
val decomposition : t -> Placement.assignment list option

(** {1 Debugging}

    [set_round_observer t (Some f)] installs a debug hook called once per
    committed round — synchronous or pipelined, on every rung of the
    degradation ladder — with the finished {!round} record and the
    {e canonical post-commit graph} (the next round's warm start, not the
    solver's scratch copy). On rounds that adopted a certified-optimal
    solve ([degraded] is [`None] or [`Infeasible_retry]), [~certified]
    additionally carries a private copy of that solution taken {e before}
    the placement diff rerouted started tasks' arcs — the snapshot on
    which feasibility/optimality validation is meaningful; it is [None] on
    reconciled, partial and failed rounds. The fuzz harness uses the hook
    to validate every round and to dump the pre-failure graph into repro
    artifacts. The observer must not mutate the canonical graph (the
    certified copy is the observer's to keep). [None] uninstalls. *)
val set_round_observer :
  t ->
  (round -> Flowgraph.Graph.t -> certified:Flowgraph.Graph.t option -> unit)
  option ->
  unit
