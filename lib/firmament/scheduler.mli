(** The Firmament scheduler (paper Fig. 4).

    Owns the scheduling flow network, a {!Policy.t} that keeps it in sync
    with cluster events, and the {!Mcmf.Race} solver orchestrator. Each
    {!schedule} call performs one flow-based scheduling round (paper
    Fig. 2b): refresh policy statistics, run the solver(s), adopt the
    winning solution, extract placements, and apply the diff against the
    current assignment (task starts, migrations, preemptions).

    Configured with [mode = Cost_scaling_scratch_only] and the Quincy
    policy, this {e is} the paper's Quincy baseline (§7.1). *)

type config = {
  mode : Mcmf.Race.mode;
  alpha : int;  (** cost scaling's ε-division factor (paper tunes 9) *)
  price_refine : bool;  (** §6.2 switching optimization *)
  drain_on_removal : bool;  (** §5.3.2 efficient task removal *)
}

val default_config : config

(** What one scheduling round did. *)
type round = {
  winner : Mcmf.Race.winner;
  solver_stats : Mcmf.Solver_intf.stats;
  relaxation_stats : Mcmf.Solver_intf.stats option;
  cost_scaling_stats : Mcmf.Solver_intf.stats option;
  algorithm_runtime : float;  (** the winner's wall-clock solve time *)
  started : (Cluster.Types.task_id * Cluster.Types.machine_id) list;
  migrated :
    (Cluster.Types.task_id * Cluster.Types.machine_id * Cluster.Types.machine_id) list;
      (** (task, from, to) *)
  preempted : Cluster.Types.task_id list;
  unscheduled : int;  (** live tasks left waiting by this round *)
}

type t

(** [create ?config cluster ~policy] builds a scheduler. [policy] is a
    factory ({!Policy_quincy.make}-style) invoked with the network this
    scheduler owns. *)
val create :
  ?config:config ->
  Cluster.State.t ->
  policy:(drain:bool -> Flow_network.t -> Cluster.State.t -> Policy.t) ->
  t

val network : t -> Flow_network.t
val cluster : t -> Cluster.State.t
val policy_name : t -> string

(** {1 Cluster events} — keep the policy's graph in sync. *)

val submit_job : t -> Cluster.Workload.job -> unit
val finish_task : t -> Cluster.Types.task_id -> now:float -> unit

(** [fail_machine t m] kills the machine; its tasks return to the wait
    queue and will be rescheduled by the next round. *)
val fail_machine : t -> Cluster.Types.machine_id -> unit

val restore_machine : t -> Cluster.Types.machine_id -> unit

(** {1 Scheduling} *)

(** [schedule ?stop t ~now] runs one round. With a [stop] that fires
    mid-solve the round applies no changes and reports the partial stats. *)
val schedule : ?stop:Mcmf.Solver_intf.stop -> t -> now:float -> round

(** Current task → machine assignment (running tasks only). *)
val assignments :
  t -> (Cluster.Types.task_id, Cluster.Types.machine_id) Hashtbl.t
