(** The Firmament scheduler (paper Fig. 4).

    Owns the scheduling flow network, a {!Policy.t} that keeps it in sync
    with cluster events, and the {!Mcmf.Race} solver orchestrator. Each
    {!schedule} call performs one flow-based scheduling round (paper
    Fig. 2b): refresh policy statistics, run the solver(s), adopt the
    winning solution, extract placements, and apply the diff against the
    current assignment (task starts, migrations, preemptions).

    Rounds degrade instead of crashing. Every round lands on one rung of
    the degradation ladder ({!type:degraded}):
    {ul
    {- [`None] — the solver reached optimality; the full placement diff
       was applied.}
    {- [`Partial] — the round deadline (or caller stop) fired mid-solve.
       The canonical flow network keeps the pre-round warm start; the
       stopped solver's intermediate pseudoflow is read once with
       {!Placement.extract_partial} to start whatever waiting tasks it
       feasibly routed (capacity re-checked against the cluster state);
       running tasks are never migrated or preempted on partial
       information.}
    {- [`Infeasible_retry] — the warm-started solve reported
       infeasibility, a single from-scratch retry succeeded; the round
       otherwise behaves like [`None].}
    {- [`Failed] — the scratch retry was infeasible too (a genuinely
       unroutable network, e.g. zero-capacity sink arcs). No state
       changes; the pre-round graph is preserved so the next round (after
       the network is repaired) recovers from a coherent warm start.}}

    Invariant: the flow network owned by this scheduler is never left
    mid-solve between rounds — {!Mcmf.Race.solve} works on copies, and a
    degraded round keeps the pre-round graph.

    Configured with [mode = Cost_scaling_scratch_only] and the Quincy
    policy, this {e is} the paper's Quincy baseline (§7.1). *)

type config = {
  mode : Mcmf.Race.mode;
  alpha : int;  (** cost scaling's ε-division factor (paper tunes 9) *)
  price_refine : bool;  (** §6.2 switching optimization *)
  drain_on_removal : bool;  (** §5.3.2 efficient task removal *)
  deadline : float option;
      (** per-round wall-clock budget in seconds. Covers the whole round
          including the infeasibility retry; when it fires, the round
          degrades to [`Partial] instead of running long. [None] (the
          default) never stops a solve. *)
}

val default_config : config

(** How far a round degraded (the ladder
    [`None → `Partial → `Infeasible_retry → `Failed]; see the module
    docs). *)
type degraded = [ `None | `Partial | `Infeasible_retry | `Failed ]

val pp_degraded : Format.formatter -> degraded -> unit

(** What one scheduling round did. *)
type round = {
  winner : Mcmf.Race.winner;
  solver_stats : Mcmf.Solver_intf.stats;
  relaxation_stats : Mcmf.Solver_intf.stats option;
  cost_scaling_stats : Mcmf.Solver_intf.stats option;
  algorithm_runtime : float;
      (** wall-clock solve time of the round: the winner's runtime, plus
          the failed first attempt's on an [`Infeasible_retry] round *)
  degraded : degraded;
  started : (Cluster.Types.task_id * Cluster.Types.machine_id) list;
  migrated :
    (Cluster.Types.task_id * Cluster.Types.machine_id * Cluster.Types.machine_id) list;
      (** (task, from, to) *)
  preempted : Cluster.Types.task_id list;
  unscheduled : int;  (** live tasks left waiting by this round *)
  phase_ns : (string * int) list;
      (** where the round's wall time went, as [(phase, nanoseconds)] in
          execution order. Phases are measured with contiguous monotonic
          checkpoints, so the durations sum to the round's wall time
          exactly. Always starts [("refresh", _); ("solve", _)]; an
          optimal round continues [adopt; extract; prepare; apply], a
          [`Partial] round [extract; apply], a [`Failed] round [apply] —
          which is what shows where a deadline-bounded round actually
          spent its budget. *)
}

type t

(** [create ?config cluster ~policy] builds a scheduler. [policy] is a
    factory ({!Policy_quincy.make}-style) invoked with the network this
    scheduler owns. *)
val create :
  ?config:config ->
  Cluster.State.t ->
  policy:(drain:bool -> Flow_network.t -> Cluster.State.t -> Policy.t) ->
  t

val network : t -> Flow_network.t
val cluster : t -> Cluster.State.t
val policy_name : t -> string

(** {1 Cluster events} — keep the policy's graph in sync. *)

val submit_job : t -> Cluster.Workload.job -> unit
val finish_task : t -> Cluster.Types.task_id -> now:float -> unit

(** [fail_machine t m] kills the machine; its tasks return to the wait
    queue and will be rescheduled by the next round. *)
val fail_machine : t -> Cluster.Types.machine_id -> unit

val restore_machine : t -> Cluster.Types.machine_id -> unit

(** {1 Scheduling} *)

(** [schedule ?stop t ~now] runs one round. Never raises on an infeasible
    or deadline-stopped solve: the round reports how it degraded in
    [round.degraded] (see the ladder above). [stop] is combined with the
    configured round deadline, if any. *)
val schedule : ?stop:Mcmf.Solver_intf.stop -> t -> now:float -> round

(** Current task → machine assignment (running tasks only). *)
val assignments :
  t -> (Cluster.Types.task_id, Cluster.Types.machine_id) Hashtbl.t
