(* Flat parallel int arrays + an atomic write cursor. A span record is
   four unsafe array writes; Atomic.fetch_and_add claims a slot without
   locking so both racing solver domains can trace concurrently. *)

type phase = int

type t = {
  mask : int; (* capacity - 1; capacity is a power of two *)
  phases : int array;
  t0s : int array;
  t1s : int array;
  rounds : int array;
  head : int Atomic.t; (* total spans ever recorded *)
  mutable epoch : int;
  mutable names : string array;
  mutable n_names : int;
  by_name : (string, int) Hashtbl.t;
}

let round_pow2 c =
  let rec go p = if p >= c then p else go (p * 2) in
  go 16

let create ?(capacity = 1024) () =
  let capacity = round_pow2 (max 16 (min (1 lsl 20) capacity)) in
  {
    mask = capacity - 1;
    phases = Array.make capacity 0;
    t0s = Array.make capacity 0;
    t1s = Array.make capacity 0;
    rounds = Array.make capacity 0;
    head = Atomic.make 0;
    epoch = 0;
    names = Array.make 16 "";
    n_names = 0;
    by_name = Hashtbl.create 32;
  }

let global_ring = ref None

let global () =
  match !global_ring with
  | Some t -> t
  | None ->
      let t = create () in
      global_ring := Some t;
      t

let register t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
      if t.n_names = Array.length t.names then begin
        let names' = Array.make (2 * t.n_names) "" in
        Array.blit t.names 0 names' 0 t.n_names;
        t.names <- names'
      end;
      let id = t.n_names in
      t.names.(id) <- name;
      t.n_names <- id + 1;
      Hashtbl.replace t.by_name name id;
      id

let phase_name t p =
  if p < 0 || p >= t.n_names then invalid_arg "Telemetry.Trace.phase_name";
  t.names.(p)

let span t ~phase ~t0 ~t1 =
  let slot = Atomic.fetch_and_add t.head 1 land t.mask in
  Array.unsafe_set t.phases slot phase;
  Array.unsafe_set t.t0s slot t0;
  Array.unsafe_set t.t1s slot t1;
  Array.unsafe_set t.rounds slot t.epoch

let span_begin () = Clock.now_ns ()
let span_end t ~phase ~t0 = span t ~phase ~t0 ~t1:(Clock.now_ns ())
let new_round t = t.epoch <- t.epoch + 1
let set_round t r = t.epoch <- r
let round t = t.epoch
let capacity t = t.mask + 1
let recorded t = Atomic.get t.head
let length t = min (Atomic.get t.head) (t.mask + 1)

let iter_recent t f =
  let head = Atomic.get t.head in
  let n = min head (t.mask + 1) in
  for i = head - n to head - 1 do
    let slot = i land t.mask in
    f ~phase:t.phases.(slot) ~round:t.rounds.(slot) ~t0:t.t0s.(slot)
      ~t1:t.t1s.(slot)
  done

let reset t =
  Atomic.set t.head 0;
  t.epoch <- 0;
  Array.fill t.phases 0 (t.mask + 1) 0;
  Array.fill t.t0s 0 (t.mask + 1) 0;
  Array.fill t.t1s 0 (t.mask + 1) 0;
  Array.fill t.rounds 0 (t.mask + 1) 0
