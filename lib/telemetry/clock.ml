external now_ns : unit -> int = "caml_telemetry_now_ns" [@@noalloc]

let s_of_ns ns = float_of_int ns *. 1e-9
let now_s () = s_of_ns (now_ns ())

let ns_of_s s =
  let ns = s *. 1e9 in
  if ns >= float_of_int max_int then max_int
  else if ns <= float_of_int min_int then min_int
  else int_of_float ns
