let is_duration name =
  let n = String.length name in
  n >= 3 && String.sub name (n - 3) 3 = "_ns"

(* Prometheus text exposition 0.0.4. Histogram buckets are cumulative and
   end with le="+Inf"; counts/sums are plain integers. *)
let prometheus ppf metrics =
  let views = Metrics.views metrics in
  List.iter
    (fun (v : Metrics.view) ->
      if v.help <> "" then Format.fprintf ppf "# HELP %s %s@." v.name v.help;
      Format.fprintf ppf "# TYPE %s %a@." v.name Metrics.pp_kind v.kind;
      match v.kind with
      | Counter | Gauge -> Format.fprintf ppf "%s %d@." v.name v.data.(0)
      | Histogram ->
          let cum = ref 0 in
          for b = 0 to v.buckets - 1 do
            cum := !cum + v.data.(b);
            (* "+Inf" only on the final bucket: bucket 62's numeric bound
               (2^62 - 1) coincides with max_int on 64-bit OCaml, and two
               "+Inf" series would be a duplicate. *)
            if b = v.buckets - 1 then
              Format.fprintf ppf "%s_bucket{le=\"+Inf\"} %d@." v.name !cum
            else
              Format.fprintf ppf "%s_bucket{le=\"%d\"} %d@." v.name
                (Metrics.bucket_le ~buckets:v.buckets b)
                !cum
          done;
          Format.fprintf ppf "%s_sum %d@." v.name v.data.(v.buckets + 1);
          Format.fprintf ppf "%s_count %d@." v.name v.data.(v.buckets))
    views

let prometheus_string metrics = Format.asprintf "%a" prometheus metrics

let json_lines ppf metrics =
  let views = Metrics.views metrics in
  List.iter
    (fun (v : Metrics.view) ->
      match v.kind with
      | Counter | Gauge ->
          Format.fprintf ppf "{\"name\":%S,\"kind\":\"%a\",\"value\":%d}@."
            v.name Metrics.pp_kind v.kind v.data.(0)
      | Histogram ->
          Format.fprintf ppf
            "{\"name\":%S,\"kind\":\"histogram\",\"count\":%d,\"sum\":%d,\"buckets\":["
            v.name v.data.(v.buckets) v.data.(v.buckets + 1);
          let first = ref true in
          for b = 0 to v.buckets - 1 do
            if v.data.(b) <> 0 then begin
              if not !first then Format.pp_print_char ppf ',';
              first := false;
              if b = v.buckets - 1 then
                Format.fprintf ppf "[\"+Inf\",%d]" v.data.(b)
              else
                Format.fprintf ppf "[%d,%d]"
                  (Metrics.bucket_le ~buckets:v.buckets b)
                  v.data.(b)
            end
          done;
          Format.fprintf ppf "]}@.")
    views

let trace_json_lines ppf trace =
  Trace.iter_recent trace (fun ~phase ~round ~t0 ~t1 ->
      Format.fprintf ppf
        "{\"phase\":%S,\"round\":%d,\"t0_ns\":%d,\"t1_ns\":%d,\"dur_ns\":%d}@."
        (Trace.phase_name trace phase)
        round t0 t1 (t1 - t0))

let default_pp_duration ppf s = Format.fprintf ppf "%.6gs" s

let pp_summary ?(pp_duration = default_pp_duration) ppf metrics =
  let views = Metrics.views metrics in
  let width =
    List.fold_left
      (fun w (v : Metrics.view) -> max w (String.length v.name))
      0 views
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (v : Metrics.view) ->
      Format.fprintf ppf "%-*s  " width v.name;
      (match v.kind with
      | Counter | Gauge ->
          if is_duration v.name then
            pp_duration ppf (Clock.s_of_ns v.data.(0))
          else Format.fprintf ppf "%d" v.data.(0)
      | Histogram ->
          let count = v.data.(v.buckets) and sum = v.data.(v.buckets + 1) in
          if is_duration v.name then begin
            Format.fprintf ppf "count=%d total=%a" count pp_duration
              (Clock.s_of_ns sum);
            if count > 0 then
              Format.fprintf ppf " mean=%a" pp_duration
                (Clock.s_of_ns (sum / count))
          end
          else begin
            Format.fprintf ppf "count=%d sum=%d" count sum;
            if count > 0 then Format.fprintf ppf " mean=%.1f"
                (float_of_int sum /. float_of_int count)
          end);
      Format.fprintf ppf "@,")
    views;
  Format.fprintf ppf "@]"
