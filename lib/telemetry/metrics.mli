(** Allocation-disciplined metrics registry.

    Metrics are registered {e once at startup} (module initialization of
    the instrumented library) and yield an int {!id} indexing
    preallocated storage; the hot-path record calls ({!incr}, {!add},
    {!set}, {!observe}) are plain int-array writes and allocate nothing —
    safe inside the solvers' allocation-free steady state (DESIGN.md
    "Memory discipline").

    Three kinds:
    - {b counters} — monotonically increasing ints ([_total] names);
    - {b gauges} — last-written int values (per-round instantaneous
      readings, e.g. the latest round's phase durations);
    - {b histograms} — fixed-bucket log₂-scale distributions: bucket 0
      holds values ≤ 0 and bucket [b ≥ 1] holds [2^(b-1) .. 2^b - 1],
      with the last bucket absorbing everything larger (overflow clamp).
      Durations are observed in integer nanoseconds from
      {!Clock.now_ns}, so a 64-bucket histogram spans 1 ns to ~73 years.

    Registration is idempotent per name: re-registering an existing name
    with the same kind returns the existing id (so module-level
    registration against {!global} is safe under re-linking), and with a
    different kind raises. Names must be valid Prometheus metric names
    ([[a-zA-Z_:][a-zA-Z0-9_:]*]).

    Concurrency: record calls are unsynchronized int writes. The
    instrumented call sites keep them race-free by construction — the
    two racing solver domains write disjoint metric ids — and a torn
    read can at worst misreport one sample, never corrupt the heap. *)

type t

type id = int
type kind = Counter | Gauge | Histogram

val pp_kind : Format.formatter -> kind -> unit

(** [create ()] is an empty registry. *)
val create : unit -> t

(** The process-wide registry all built-in instrumentation records into.
    Created on first use. *)
val global : unit -> t

(** {1 Registration (startup, cold)} *)

(** [counter t name] registers a counter. @raise Invalid_argument on a
    malformed name or a kind clash with an existing metric. *)
val counter : t -> ?help:string -> string -> id

val gauge : t -> ?help:string -> string -> id

(** [histogram t name] registers a log₂ histogram with [buckets]
    (default 64, clamped to [2..64]) buckets. *)
val histogram : t -> ?help:string -> ?buckets:int -> string -> id

(** {1 Recording (hot, never allocates)} *)

val incr : t -> id -> unit
val add : t -> id -> int -> unit

(** [set t id v] overwrites a gauge. *)
val set : t -> id -> int -> unit

(** [observe t id v] adds [v] to a histogram: bumps its bucket, count
    and sum. *)
val observe : t -> id -> int -> unit

(** {1 Reading and maintenance (cold)} *)

(** [value t id] reads a counter or gauge. *)
val value : t -> id -> int

val hist_count : t -> id -> int
val hist_sum : t -> id -> int

(** [hist_bucket t id b] is the (non-cumulative) count in bucket [b]. *)
val hist_bucket : t -> id -> int -> int

val find : t -> string -> id option

(** [reset t] zeroes every metric's storage, keeping registrations.
    Used between replays for deterministic-snapshot comparisons and by
    long-lived processes that export per-epoch deltas. *)
val reset : t -> unit

(** One metric's state, decoupled from the registry (data is a copy). A
    histogram's [data] is laid out as [buckets] bucket counts followed
    by total count and sum. *)
type view = {
  name : string;
  help : string;
  kind : kind;
  buckets : int;  (** 0 for counters and gauges *)
  data : int array;
}

(** [views t] snapshots every metric in registration order. *)
val views : t -> view list

(** {1 Bucket arithmetic (exposed for tests and exporters)} *)

(** [bucket_of ~buckets v] is the bucket index [v] falls into. *)
val bucket_of : buckets:int -> int -> int

(** [bucket_le ~buckets b] is bucket [b]'s inclusive upper bound
    ([max_int] for the overflow bucket). *)
val bucket_le : buckets:int -> int -> int
