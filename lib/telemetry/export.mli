(** Exporters over {!Metrics} snapshots and {!Trace} rings.

    All exporters are cold-path: they run at end-of-run (or on an
    explicit dump request), never inside a scheduling round, so they are
    free to allocate. *)

val prometheus : Format.formatter -> Metrics.t -> unit
(** Prometheus text exposition format (version 0.0.4): one [# HELP] and
    [# TYPE] comment per metric, histograms expanded to cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count]. Bucket upper
    bounds are the histogram's log₂ boundaries with the overflow bucket
    as [le="+Inf"]. Values are integers (durations are exported in the
    nanosecond unit they were observed in — the [_ns] name suffix is the
    unit marker). *)

val prometheus_string : Metrics.t -> string
(** {!prometheus} rendered to a string — what a scrape endpoint (the
    [firmament_serve] [--metrics-listen] HTTP responder) serves as its
    response body. *)

val json_lines : Format.formatter -> Metrics.t -> unit
(** One JSON object per line per metric:
    [{"name":...,"kind":...,"value":N}] for counters and gauges,
    [{"name":...,"kind":"histogram","count":N,"sum":N,"buckets":[[le,n],...]}]
    for histograms (non-cumulative counts, empty buckets omitted). *)

val trace_json_lines : Format.formatter -> Trace.t -> unit
(** Retained spans oldest-first, one JSON object per line:
    [{"phase":...,"round":N,"t0_ns":N,"t1_ns":N,"dur_ns":N}]. *)

val pp_summary :
  ?pp_duration:(Format.formatter -> float -> unit) ->
  Format.formatter ->
  Metrics.t ->
  unit
(** Human-readable table. Metrics whose name ends in [_ns] are rendered
    as durations via [pp_duration] (seconds; callers typically pass
    [Dcsim.Stats.pp_duration] — defaults to a plain ["%.6gs"]);
    histograms additionally show count and mean. *)
