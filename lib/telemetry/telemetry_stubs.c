/* Monotonic clock for Telemetry.Clock.

   Returns nanoseconds since an arbitrary epoch as a tagged OCaml int
   (63 bits hold ~146 years of uptime), so the OCaml side can declare the
   external [@@noalloc]: a timestamp read never touches the heap, which
   is what lets span tracing run inside the solvers' allocation-free
   steady state. CLOCK_MONOTONIC is immune to NTP step adjustments,
   unlike gettimeofday. */

#include <caml/mlvalues.h>
#include <time.h>

#ifdef CLOCK_MONOTONIC

CAMLprim value caml_telemetry_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}

#else

/* Fallback for platforms without CLOCK_MONOTONIC: wall clock, scaled to
   the same unit. Monotonicity is then only best-effort. */
#include <sys/time.h>

CAMLprim value caml_telemetry_now_ns(value unit)
{
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return Val_long((intnat)tv.tv_sec * 1000000000 + (intnat)tv.tv_usec * 1000);
}

#endif
