(** The one clock every timed component shares.

    Monotonic (CLOCK_MONOTONIC): never jumps backward or forward under
    NTP adjustment, so span durations and solver deadlines stay honest.
    Timestamps are nanoseconds since an arbitrary epoch — only
    differences are meaningful; do not mix with wall-clock time.

    {!now_ns} is [@@noalloc]: reading the clock never allocates, so
    timestamping is safe inside the solvers' allocation-free hot loops
    (a 63-bit int holds ~146 years of nanoseconds). *)

(** Current monotonic time in nanoseconds. Never allocates. *)
external now_ns : unit -> int = "caml_telemetry_now_ns" [@@noalloc]

(** [now_s ()] is {!now_ns} in seconds (allocates the float box; use
    {!now_ns} in hot paths). *)
val now_s : unit -> float

(** [ns_of_s s] / [s_of_ns ns] convert between the clock's unit and
    float seconds (saturating on overflow for absurd inputs). *)
val ns_of_s : float -> int

val s_of_ns : int -> float
