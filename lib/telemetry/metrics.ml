type id = int
type kind = Counter | Gauge | Histogram

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram")

(* Storage is one int array per metric, indexed by the metric's id:
   length 1 for counters/gauges; length [buckets + 2] for histograms
   (bucket counts, then total count, then sum). Everything the hot path
   touches is preallocated at registration; record calls are pure array
   writes. *)
type t = {
  mutable names : string array;
  mutable helps : string array;
  mutable kinds : kind array;
  mutable data : int array array;
  mutable n : int;
  by_name : (string, int) Hashtbl.t;
}

let create () =
  {
    names = Array.make 16 "";
    helps = Array.make 16 "";
    kinds = Array.make 16 Counter;
    data = Array.make 16 [||];
    n = 0;
    by_name = Hashtbl.create 64;
  }

let global_registry = ref None

let global () =
  match !global_registry with
  | Some t -> t
  | None ->
      let t = create () in
      global_registry := Some t;
      t

let max_buckets = 64
let default_buckets = 64

let valid_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  &&
  let ok = ref true in
  String.iter
    (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> () | _ -> ok := false)
    s;
  !ok

let grow t =
  if t.n = Array.length t.names then begin
    let cap = 2 * t.n in
    let resize a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 t.n;
      a'
    in
    t.names <- resize t.names "";
    t.helps <- resize t.helps "";
    t.kinds <- resize t.kinds Counter;
    t.data <- resize t.data [||]
  end

let register t ~help ~kind ~cells name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Telemetry.Metrics: invalid metric name %S" name);
  match Hashtbl.find_opt t.by_name name with
  | Some id ->
      if t.kinds.(id) <> kind then
        invalid_arg
          (Format.asprintf "Telemetry.Metrics: %s already registered as a %a" name
             pp_kind t.kinds.(id));
      id
  | None ->
      grow t;
      let id = t.n in
      t.names.(id) <- name;
      t.helps.(id) <- help;
      t.kinds.(id) <- kind;
      t.data.(id) <- Array.make cells 0;
      t.n <- id + 1;
      Hashtbl.replace t.by_name name id;
      id

let counter t ?(help = "") name = register t ~help ~kind:Counter ~cells:1 name
let gauge t ?(help = "") name = register t ~help ~kind:Gauge ~cells:1 name

let histogram t ?(help = "") ?(buckets = default_buckets) name =
  let buckets = max 2 (min max_buckets buckets) in
  register t ~help ~kind:Histogram ~cells:(buckets + 2) name

(* {1 Hot path} — ids come from registration (always < n), so the
   unchecked accesses are bounds-proven; a local ref here would be a
   minor-heap allocation per call (no flambda), hence the branchy
   straight-line bucket computation. *)

let incr t id =
  let a = Array.unsafe_get t.data id in
  Array.unsafe_set a 0 (Array.unsafe_get a 0 + 1)

let add t id v =
  let a = Array.unsafe_get t.data id in
  Array.unsafe_set a 0 (Array.unsafe_get a 0 + v)

let set t id v =
  let a = Array.unsafe_get t.data id in
  Array.unsafe_set a 0 v

let bucket_of ~buckets v =
  if v <= 0 then 0
  else begin
    (* 1 + floor(log2 v) via branchless-ish binary reduction, clamped to
       the overflow bucket. *)
    let b1 = if v >= 1 lsl 32 then 32 else 0 in
    let v1 = v lsr b1 in
    let b2 = if v1 >= 1 lsl 16 then 16 else 0 in
    let v2 = v1 lsr b2 in
    let b3 = if v2 >= 1 lsl 8 then 8 else 0 in
    let v3 = v2 lsr b3 in
    let b4 = if v3 >= 1 lsl 4 then 4 else 0 in
    let v4 = v3 lsr b4 in
    let b5 = if v4 >= 4 then 2 else 0 in
    let v5 = v4 lsr b5 in
    let b6 = if v5 >= 2 then 1 else 0 in
    let b = b1 + b2 + b3 + b4 + b5 + b6 + 1 in
    if b > buckets - 1 then buckets - 1 else b
  end

let bucket_le ~buckets b =
  if b >= buckets - 1 then max_int else if b <= 0 then 0 else (1 lsl b) - 1

let observe t id v =
  let a = Array.unsafe_get t.data id in
  let buckets = Array.length a - 2 in
  let b = bucket_of ~buckets v in
  Array.unsafe_set a b (Array.unsafe_get a b + 1);
  Array.unsafe_set a buckets (Array.unsafe_get a buckets + 1);
  Array.unsafe_set a (buckets + 1) (Array.unsafe_get a (buckets + 1) + v)

(* {1 Cold path} *)

let check t id =
  if id < 0 || id >= t.n then invalid_arg "Telemetry.Metrics: unknown metric id"

let value t id =
  check t id;
  t.data.(id).(0)

let hist_data t id =
  check t id;
  if t.kinds.(id) <> Histogram then
    invalid_arg (Printf.sprintf "Telemetry.Metrics: %s is not a histogram" t.names.(id));
  t.data.(id)

let hist_count t id =
  let a = hist_data t id in
  a.(Array.length a - 2)

let hist_sum t id =
  let a = hist_data t id in
  a.(Array.length a - 1)

let hist_bucket t id b =
  let a = hist_data t id in
  let buckets = Array.length a - 2 in
  if b < 0 || b >= buckets then invalid_arg "Telemetry.Metrics.hist_bucket: out of range";
  a.(b)

let find t name = Hashtbl.find_opt t.by_name name

let reset t =
  for id = 0 to t.n - 1 do
    Array.fill t.data.(id) 0 (Array.length t.data.(id)) 0
  done

type view = {
  name : string;
  help : string;
  kind : kind;
  buckets : int;
  data : int array;
}

let views t =
  List.init t.n (fun id ->
      {
        name = t.names.(id);
        help = t.helps.(id);
        kind = t.kinds.(id);
        buckets =
          (match t.kinds.(id) with
          | Histogram -> Array.length t.data.(id) - 2
          | Counter | Gauge -> 0);
        data = Array.copy t.data.(id);
      })
