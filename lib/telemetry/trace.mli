(** Lightweight span tracing into a preallocated ring buffer.

    A span is a named phase with begin/end monotonic timestamps
    ({!Clock.now_ns}) plus the scheduling-round epoch it ran in. Phase
    names are registered once at startup, yielding an int id; recording
    a span ({!span}, or {!span_begin}/{!span_end}) writes four ints into
    flat preallocated arrays and allocates nothing, so tracing is safe
    inside the solvers' allocation-free steady state.

    The ring keeps the most recent [capacity] spans (power of two,
    default 1024) and overwrites the oldest on wrap. The write cursor is
    an [Atomic.fetch_and_add] so the two racing solver domains can claim
    slots concurrently without tearing each other's records. *)

type t

type phase = int
(** A registered phase name. *)

val create : ?capacity:int -> unit -> t
(** [create ()] is an empty ring. [capacity] (default 1024) is rounded
    up to a power of two and clamped to [[16, 1 lsl 20]]. *)

val global : unit -> t
(** The process-wide ring all built-in instrumentation records into. *)

(** {1 Registration (startup, cold)} *)

val register : t -> string -> phase
(** [register t name] names a phase. Idempotent per name. *)

val phase_name : t -> phase -> string

(** {1 Recording (hot, never allocates)} *)

val span : t -> phase:phase -> t0:int -> t1:int -> unit
(** [span t ~phase ~t0 ~t1] records a completed span with explicit
    begin/end timestamps from {!Clock.now_ns}. *)

val span_begin : unit -> int
(** [span_begin ()] is just {!Clock.now_ns} — named for call-site
    legibility. *)

val span_end : t -> phase:phase -> t0:int -> unit
(** [span_end t ~phase ~t0] records a span ending now. *)

val new_round : t -> unit
(** Advance the round epoch; subsequent spans are stamped with it. *)

val set_round : t -> int -> unit
(** Pin the epoch (used by replay to align spans with trace rounds). *)

(** {1 Reading and maintenance (cold)} *)

val round : t -> int
(** Current round epoch (starts at 0). *)

val capacity : t -> int

val length : t -> int
(** Number of spans currently retained (≤ capacity). *)

val recorded : t -> int
(** Total spans ever recorded, including ones overwritten on wrap. *)

val iter_recent :
  t -> (phase:phase -> round:int -> t0:int -> t1:int -> unit) -> unit
(** [iter_recent t f] visits retained spans oldest-first. Spans being
    concurrently overwritten may be skipped; intended for end-of-run
    export, not mid-solve inspection. *)

val reset : t -> unit
(** Drop all spans and reset the epoch to 0, keeping registrations. *)
