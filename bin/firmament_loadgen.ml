(* firmament_loadgen: firehose client for firmament_serve.

     dune exec bin/firmament_loadgen.exe -- --connect 127.0.0.1:7117 \
       --rate 10000 --duration 10 --connections 4

   Replays a synthetic open-loop firehose (or a Dcsim.Churn trace with
   --trace-events) across N connections and reports end-to-end
   submit-to-placement-notification latency percentiles. Exit is nonzero
   if any protocol error was observed. *)

open Cmdliner

let listen_conv =
  let parse s =
    match Server.Service.listen_of_string s with
    | Ok l -> Ok l
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Server.Service.pp_listen)

let with_out path f =
  match path with
  | "-" ->
      f Format.std_formatter;
      Format.pp_print_flush Format.std_formatter ()
  | _ ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let ppf = Format.formatter_of_out_channel oc in
          f ppf;
          Format.pp_print_flush ppf ())

let run endpoint connections rate duration tasks_per_job task_duration seed trace_events
    trace_machines jid_base max_retries drain_grace metrics_out json =
  let mode =
    match trace_events with
    | Some length ->
        Server.Loadgen.Trace
          (Dcsim.Churn.generate ~seed ~machines:trace_machines ~length)
    | None ->
        Server.Loadgen.Synthetic
          { tasks_per_job; task_duration_s = task_duration }
  in
  let config =
    {
      Server.Loadgen.endpoint;
      connections;
      rate;
      duration_s = duration;
      seed;
      mode;
      jid_base;
      max_retries;
      drain_grace_s = drain_grace;
    }
  in
  let r = Server.Loadgen.run config in
  if json then
    let pct p = Dcsim.Stats.percentile r.latencies_s p in
    Printf.printf
      "{\"elapsed_s\":%.3f,\"task_events_sent\":%d,\"task_events_acked\":%d,\
       \"achieved_rate\":%.1f,\"submits\":%d,\"finishes\":%d,\"nacks\":%d,\
       \"retries_exhausted\":%d,\"placements\":%d,\"migrations\":%d,\
       \"preempt_notices\":%d,\"protocol_errors\":%d,\"server_shutdown\":%b,\
       \"latency_p50_s\":%g,\"latency_p99_s\":%g,\"latency_max_s\":%g,\
       \"latency_samples\":%d}\n"
      r.elapsed_s r.task_events_sent r.task_events_acked r.achieved_rate r.submits
      r.finishes r.nacks r.retries_exhausted r.placements r.migrations r.preempt_notices
      r.protocol_errors r.server_shutdown (pct 50.) (pct 99.)
      (Dcsim.Stats.maximum r.latencies_s)
      (List.length r.latencies_s)
  else Format.printf "%a@." Server.Loadgen.pp_report r;
  Option.iter
    (fun p ->
      with_out p (fun ppf ->
          Telemetry.Export.prometheus ppf (Telemetry.Metrics.global ())))
    metrics_out;
  if r.protocol_errors > 0 then exit 2

let cmd =
  let endpoint =
    Arg.(
      value
      & opt listen_conv (Server.Service.Tcp ("127.0.0.1", 7117))
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Server endpoint: $(b,HOST:PORT) or $(b,unix:PATH).")
  in
  let connections =
    Arg.(
      value & opt int 4
      & info [ "connections" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let rate =
    Arg.(
      value & opt float 1000.
      & info [ "rate" ] ~docv:"EVENTS_PER_SEC"
          ~doc:"Target task events per second across all connections.")
  in
  let duration =
    Arg.(
      value & opt float 5.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Synthetic-mode send window.")
  in
  let tasks_per_job =
    Arg.(
      value & opt int 8
      & info [ "tasks-per-job" ] ~docv:"N" ~doc:"Synthetic-mode job width.")
  in
  let task_duration =
    Arg.(
      value & opt float 1.0
      & info [ "task-duration" ] ~docv:"SECONDS"
          ~doc:
            "Synthetic-mode task lifetime: each placed task reports a finish this \
             long after its placement notification arrives.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.") in
  let trace_events =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-events" ] ~docv:"N"
          ~doc:
            "Replay an $(docv)-event $(b,Dcsim.Churn) trace (generated from \
             $(b,--seed)) instead of the synthetic firehose.")
  in
  let trace_machines =
    Arg.(
      value & opt int 250
      & info [ "trace-machines" ] ~docv:"N"
          ~doc:"Machine-id range for generated trace events (match the server).")
  in
  let jid_base =
    Arg.(
      value & opt int 1
      & info [ "jid-base" ] ~docv:"N"
          ~doc:"First job id (give parallel loadgen processes disjoint ranges).")
  in
  let max_retries =
    Arg.(
      value & opt int 8
      & info [ "max-retries" ] ~docv:"N" ~doc:"Per-event NACK retry budget.")
  in
  let drain_grace =
    Arg.(
      value & opt float 1.0
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:"Wait for in-flight placements after the send window closes.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write client telemetry in Prometheus text exposition format to $(docv) \
             ($(b,-) for stdout).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as a single JSON object on stdout.")
  in
  let doc = "firehose load generator for firmament_serve" in
  Cmd.v
    (Cmd.info "firmament_loadgen" ~doc)
    Term.(
      const run $ endpoint $ connections $ rate $ duration $ tasks_per_job $ task_duration
      $ seed $ trace_events $ trace_machines $ jid_base $ max_retries $ drain_grace
      $ metrics_out $ json)

let () = exit (Cmd.eval cmd)
