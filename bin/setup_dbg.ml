(* Shared scaffolding for the benchmark experiments: settled clusters,
   controlled churn, and solver measurement on graph copies. *)

module G = Flowgraph.Graph
module FN = Firmament.Flow_network
module W = Cluster.Workload

type policy_kind = Quincy | Quincy_threshold of float | Load_spread | Network_aware

let policy_factory kind ~drain net st =
  match kind with
  | Quincy -> Firmament.Policy_quincy.make ~drain net st
  | Quincy_threshold th ->
      Firmament.Policy_quincy.make
        ~config:{ Firmament.Policy_quincy.default_config with preference_threshold = th }
        ~drain net st
  | Load_spread -> Firmament.Policy_load_spread.make ~drain net st
  | Network_aware -> Firmament.Policy_network_aware.make ~drain net st

(* A cluster settled into steady state: initial jobs submitted and placed. *)
type settled = {
  sched : Firmament.Scheduler.t;
  cluster : Cluster.State.t;
  trace : Cluster.Trace.t;
  rng : Random.State.t;
  mutable next_jid : int;
  mutable next_tid : int;
}

let settle ?(config = Firmament.Scheduler.default_config) ~machines ~util ~policy ~seed () =
  let params =
    {
      (Cluster.Trace.default_params ~machines ()) with
      target_utilization = util;
      horizon_s = 0.;
      seed;
    }
  in
  let trace = Cluster.Trace.generate params in
  let cluster = Cluster.State.create trace.Cluster.Trace.topology in
  let sched = Firmament.Scheduler.create ~config cluster ~policy:(policy_factory policy) in
  List.iter
    (fun job -> Firmament.Scheduler.submit_job sched (W.clone_job job))
    trace.Cluster.Trace.initial_jobs;
  (* A few rounds to settle (one usually suffices). *)
  let rec go i =
    let r = Firmament.Scheduler.schedule sched ~now:0. in
    if i < 5 && r.Firmament.Scheduler.started <> [] && Cluster.State.waiting_count cluster > 0
    then go (i + 1)
  in
  go 0;
  {
    sched;
    cluster;
    trace;
    rng = Random.State.make [| seed + 77 |];
    next_jid = 1_000_000;
    next_tid = 10_000_000;
  }

(* Submit one fresh batch job of [n] tasks through the scheduler's policy
   (graph changes included), without scheduling. *)
let submit_batch ?(duration = 120.) ?(input_mb = 500.) s ~n ~now =
  let machines = Cluster.Topology.machine_count (Cluster.State.topology s.cluster) in
  let jid = s.next_jid in
  s.next_jid <- jid + 1;
  let tasks =
    Array.init n (fun _ ->
        let tid = s.next_tid in
        s.next_tid <- tid + 1;
        let replicas = List.init 3 (fun _ -> Random.State.int s.rng machines) in
        W.make_task ~tid ~job:jid ~submit_time:now ~duration ~input_mb
          ~input_machines:replicas
          ~net_demand_mbps:(200 + Random.State.int s.rng 800)
          ())
  in
  Firmament.Scheduler.submit_job s.sched
    (W.make_job ~jid ~klass:Cluster.Types.Batch ~submit_time:now ~tasks)

(* Finish [n] random running tasks through the scheduler (frees slots and
   removes their nodes, with the configured removal heuristic). *)
let finish_random s ~n ~now =
  let running = ref [] in
  Cluster.State.iter_tasks s.cluster (fun t -> if W.is_running t then running := t.W.tid :: !running);
  let arr = Array.of_list !running in
  let len = Array.length arr in
  if len > 0 then begin
    (* Partial Fisher-Yates for a random sample. *)
    let k = min n len in
    for i = 0 to k - 1 do
      let j = i + Random.State.int s.rng (len - i) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    for i = 0 to k - 1 do
      Firmament.Scheduler.finish_task s.sched arr.(i) ~now
    done
  end

(* One churn step: completions + a same-sized batch arrival, then refresh.
   Leaves the graph updated but unsolved. *)
let churn s ~frac ~now =
  let live = Cluster.State.live_task_count s.cluster in
  let n = max 1 (int_of_float (frac *. float_of_int live)) in
  finish_random s ~n ~now;
  submit_batch s ~n ~now

(* Measure an algorithm on a fresh copy of the network's graph.
   [from_scratch] resets flow and potentials first. *)
let time_solver ?(from_scratch = true) s solver =
  let g = G.copy (FN.graph (Firmament.Scheduler.network s.sched)) in
  if from_scratch then G.reset_flow g;
  let stats = solver g in
  (stats, g)

let schedule s ~now = Firmament.Scheduler.schedule s.sched ~now

(* Machine-count ladder for size sweeps, scaled and deduplicated. *)
let sizes ~scale base = List.sort_uniq compare (List.map (fun m -> max 25 (int_of_float (float_of_int m *. scale))) base)

let pp_secs v =
  if v < 0.001 then Printf.sprintf "%.0fµs" (v *. 1e6)
  else if v < 1. then Printf.sprintf "%.1fms" (v *. 1e3)
  else Printf.sprintf "%.2fs" v
