module S = Mcmf.Solver_intf
let () =
  let refine = bool_of_string Sys.argv.(1) in
  let config = { Firmament.Scheduler.default_config with
                 mode = Mcmf.Race.Fastest_sequential; price_refine = refine } in
  let s = Setup_dbg.settle ~config ~machines:125 ~util:0.6 ~policy:Setup_dbg.Quincy ~seed:42 () in
  for i = 1 to 6 do
    Setup_dbg.churn s ~frac:0.03 ~now:(float_of_int i);
    let r = Setup_dbg.schedule s ~now:(float_of_int i) in
    (match r.Firmament.Scheduler.cost_scaling_stats with
     | Some st -> Printf.printf "round %d: cs=%.1fms refines=%d pushes=%d winner=%s\n%!"
         i (st.S.runtime*.1000.) st.S.iterations st.S.pushes
         (match r.Firmament.Scheduler.winner with Mcmf.Race.Relaxation -> "rx" | _ -> "cs")
     | None -> ())
  done
