(* firmament_serve: persistent Firmament scheduler daemon.

     dune exec bin/firmament_serve.exe -- --listen 127.0.0.1:7117 \
       --machines 1000 --metrics-listen 127.0.0.1:9117

   Speaks the length-prefixed binary protocol of Server.Protocol over TCP
   or Unix sockets; SIGINT/SIGTERM drain gracefully (in-flight round
   committed, Shutdown frames sent, exit 0). *)

open Cmdliner

type policy = Quincy | Load_spread | Network_aware

let policy_conv =
  Arg.enum
    [ ("quincy", Quincy); ("load-spread", Load_spread); ("network-aware", Network_aware) ]

let mode_conv =
  Arg.enum
    Mcmf.Race.
      [
        ("race", Race_parallel);
        ("fastest", Fastest_sequential);
        ("relaxation", Relaxation_only);
        ("incremental-cs", Incremental_cost_scaling_only);
        ("quincy-cs", Cost_scaling_scratch_only);
      ]

let listen_conv =
  let parse s =
    match Server.Service.listen_of_string s with
    | Ok l -> Ok l
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Server.Service.pp_listen)

let with_out path f =
  match path with
  | "-" ->
      f Format.std_formatter;
      Format.pp_print_flush Format.std_formatter ()
  | _ ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let ppf = Format.formatter_of_out_channel oc in
          f ppf;
          Format.pp_print_flush ppf ())

let run listen metrics_listen machines machines_per_rack slots policy mode deadline
    incremental_budget batch_max linger_ms queue_cap grace_s metrics_out metrics_summary =
  let policy_factory ~drain net st =
    match policy with
    | Quincy -> Firmament.Policy_quincy.make ~drain net st
    | Load_spread -> Firmament.Policy_load_spread.make ~drain net st
    | Network_aware -> Firmament.Policy_network_aware.make ~drain net st
  in
  let scheduler =
    {
      Firmament.Scheduler.default_config with
      mode;
      deadline;
      incremental_budget =
        (match incremental_budget with
        | Some b -> b
        | None -> Firmament.Scheduler.default_config.incremental_budget);
    }
  in
  let config =
    {
      Server.Service.default_config with
      listen;
      metrics_listen;
      machines;
      machines_per_rack;
      slots_per_machine = slots;
      scheduler;
      policy = policy_factory;
      batch_max;
      linger_s = linger_ms /. 1000.;
      queue_capacity = queue_cap;
      shutdown_grace_s = grace_s;
    }
  in
  let t = Server.Service.create config in
  let graceful _ = Server.Service.request_shutdown t in
  Sys.set_signal Sys.sigint (Sys.Signal_handle graceful);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful);
  Format.printf "firmament_serve: listening on %a (%d machines, %d slots each)%t@."
    Server.Service.pp_listen listen machines slots (fun ppf ->
      Option.iter
        (fun ml -> Format.fprintf ppf ", metrics on %a" Server.Service.pp_listen ml)
        metrics_listen);
  Server.Service.run t;
  let reg = Telemetry.Metrics.global () in
  Option.iter
    (fun p -> with_out p (fun ppf -> Telemetry.Export.prometheus ppf reg))
    metrics_out;
  if metrics_summary then
    Format.printf "%a@."
      (Telemetry.Export.pp_summary ~pp_duration:Dcsim.Stats.pp_duration)
      reg;
  Format.printf "firmament_serve: drained %d rounds, bye@."
    (Server.Service.rounds_committed t)

let cmd =
  let listen =
    Arg.(
      value
      & opt listen_conv (Server.Service.Tcp ("127.0.0.1", 7117))
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:"Endpoint to serve on: $(b,HOST:PORT) or $(b,unix:PATH).")
  in
  let metrics_listen =
    Arg.(
      value
      & opt (some listen_conv) None
      & info [ "metrics-listen" ] ~docv:"ADDR"
          ~doc:
            "Optional Prometheus scrape endpoint: any HTTP GET receives the \
             telemetry registry in text exposition format.")
  in
  let machines =
    Arg.(value & opt int 250 & info [ "machines" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let machines_per_rack =
    Arg.(value & opt int 8 & info [ "machines-per-rack" ] ~docv:"N" ~doc:"Rack width.")
  in
  let slots =
    Arg.(value & opt int 16 & info [ "slots" ] ~docv:"N" ~doc:"Slots per machine.")
  in
  let policy =
    Arg.(
      value & opt policy_conv Quincy
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Scheduling policy: $(b,quincy), $(b,load-spread) or $(b,network-aware).")
  in
  let mode =
    Arg.(
      value
      & opt mode_conv Mcmf.Race.Fastest_sequential
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Solver orchestration: $(b,race), $(b,fastest), $(b,relaxation), \
             $(b,incremental-cs) or $(b,quincy-cs).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-round wall-clock deadline; overruns degrade to partial placement.")
  in
  let incremental_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "incremental-budget" ] ~docv:"N"
          ~doc:
            "Work budget (relabel operations) for the O(changes) incremental repair \
             path before falling back to a full solve. Default: the scheduler's \
             built-in budget.")
  in
  let batch_max =
    Arg.(
      value & opt int 1024
      & info [ "batch-max" ] ~docv:"N" ~doc:"Admitted events per scheduling round.")
  in
  let linger_ms =
    Arg.(
      value & opt float 20.
      & info [ "linger-ms" ] ~docv:"MS"
          ~doc:"Max time an admitted event waits before forcing a round.")
  in
  let queue_cap =
    Arg.(
      value & opt int 4096
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Admission-queue bound; overflow is NACKed with a retry-after hint.")
  in
  let grace_s =
    Arg.(
      value & opt float 1.0
      & info [ "shutdown-grace" ] ~docv:"SECONDS"
          ~doc:"Outbound flush budget during graceful shutdown.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "After shutdown, write telemetry in Prometheus text exposition format to \
             $(docv) ($(b,-) for stdout).")
  in
  let metrics_summary =
    Arg.(
      value & flag
      & info [ "metrics-summary" ]
          ~doc:"Print a human-readable telemetry summary after shutdown.")
  in
  let doc = "persistent Firmament scheduler service over TCP/Unix sockets" in
  Cmd.v
    (Cmd.info "firmament_serve" ~doc)
    Term.(
      const run $ listen $ metrics_listen $ machines $ machines_per_rack $ slots $ policy
      $ mode $ deadline $ incremental_budget $ batch_max $ linger_ms $ queue_cap $ grace_s
      $ metrics_out $ metrics_summary)

let () = exit (Cmd.eval cmd)
