(* Tiny shared formatting helpers for the CLI front-ends. *)

let pp_secs v =
  if v < 0.001 then Printf.sprintf "%.0fµs" (v *. 1e6)
  else if v < 1. then Printf.sprintf "%.1fms" (v *. 1e3)
  else Printf.sprintf "%.2fs" v
