(* firmament_fuzz: differential churn fuzzing of the Firmament scheduler.

   Fuzz mode — generate seeded churn traces, run each through the real
   scheduler in every requested race mode, check every committed round
   against the SSP oracle and the flow validators; on failure, shrink the
   trace to a minimal repro and write a replayable artifact:

     dune exec bin/firmament_fuzz.exe -- --seeds 0..99

   Replay mode — re-run a previously written artifact and report whether
   the recorded failure still reproduces (exit 0) or not (exit 2 — the
   bug is fixed or was environment-dependent):

     dune exec bin/firmament_fuzz.exe -- --replay fuzz-artifacts/seed-7.repro *)

open Cmdliner

let parse_seeds spec =
  let fail () =
    Format.kasprintf failwith
      "bad --seeds %S (expected N, A..B, or a comma-separated list)" spec
  in
  match String.index_opt spec '.' with
  | Some _ -> (
      match String.split_on_char '.' spec with
      | [ a; ""; b ] | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b when a <= b -> List.init (b - a + 1) (fun i -> a + i)
          | _ -> fail ())
      | _ -> fail ())
  | None ->
      String.split_on_char ',' spec
      |> List.map (fun s ->
             match int_of_string_opt (String.trim s) with
             | Some n -> n
             | None -> fail ())

let seeds_conv =
  let parse s =
    match parse_seeds s with
    | seeds -> Ok seeds
    | exception Failure m -> Error (`Msg m)
  in
  let print ppf seeds =
    Format.fprintf ppf "%s" (String.concat "," (List.map string_of_int seeds))
  in
  Arg.conv (parse, print)

let mode_conv =
  Arg.enum
    (("all", None)
    :: List.map
         (fun m -> (Fuzz.Harness.mode_name m, Some m))
         Fuzz.Harness.all_modes)

(* Shrink against the failing mode only, holding the check id fixed so the
   artifact stays faithful to the original failure. *)
let shrink_failure cfg (f : Fuzz.Harness.failure) trace =
  let cfg = { cfg with Fuzz.Harness.modes = [ f.Fuzz.Harness.f_mode ] } in
  let fails events =
    match Fuzz.Harness.run_mode cfg f.Fuzz.Harness.f_mode events with
    | Error f' -> f'.Fuzz.Harness.f_check = f.Fuzz.Harness.f_check
    | Ok () -> false
  in
  Fuzz.Shrink.minimize ~fails ~simplify:Fuzz.Shrink.simplify_event trace

let report_failure seed (f : Fuzz.Harness.failure) ~events ~shrunk ~path =
  Printf.printf "seed %d: FAIL %s\n" seed
    (Format.asprintf "%a" Fuzz.Harness.pp_failure f);
  Printf.printf "seed %d: shrunk %d -> %d events, artifact %s\n%!" seed events
    (List.length shrunk) path

let fuzz seeds events machines slots inject_eps force_incremental mode artifact_dir =
  let cfg =
    {
      Fuzz.Harness.machines;
      slots;
      inject_eps;
      force_incremental;
      modes =
        (match mode with None -> Fuzz.Harness.all_modes | Some m -> [ m ]);
    }
  in
  let failures = ref 0 in
  List.iter
    (fun seed ->
      let trace = Dcsim.Churn.generate ~seed ~machines ~length:events in
      match Fuzz.Harness.run cfg trace with
      | Ok () -> ()
      | Error f ->
          incr failures;
          let shrunk = shrink_failure cfg f trace in
          (* Re-run the shrunk trace so the artifact's graph dump matches
             the trace it ships (the original dump belongs to the full
             trace). Fall back to the original failure if the shrunk trace
             is flaky under a racing mode. *)
          let f' =
            match
              Fuzz.Harness.run_mode
                { cfg with modes = [ f.Fuzz.Harness.f_mode ] }
                f.Fuzz.Harness.f_mode shrunk
            with
            | Error f' -> f'
            | Ok () -> f
          in
          let artifact = Fuzz.Artifact.of_failure cfg f' shrunk in
          (try Unix.mkdir artifact_dir 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let path = Filename.concat artifact_dir (Printf.sprintf "seed-%d.repro" seed) in
          Fuzz.Artifact.save path artifact;
          report_failure seed f ~events:(List.length trace) ~shrunk ~path)
    seeds;
  if !failures = 0 then begin
    Printf.printf "fuzz: %d seeds clean (%d events each, %d machines x %d slots)\n"
      (List.length seeds) events machines slots;
    0
  end
  else begin
    Printf.printf "fuzz: %d/%d seeds FAILED\n" !failures (List.length seeds);
    1
  end

let replay path =
  let artifact = Fuzz.Artifact.load path in
  let cfg = Fuzz.Artifact.config artifact in
  Printf.printf "replaying %s: %d events, mode %s, expecting %s\n%!" path
    (List.length artifact.Fuzz.Artifact.trace)
    (Fuzz.Harness.mode_name artifact.Fuzz.Artifact.mode)
    artifact.Fuzz.Artifact.check;
  match Fuzz.Harness.run cfg artifact.Fuzz.Artifact.trace with
  | Error f when f.Fuzz.Harness.f_check = artifact.Fuzz.Artifact.check ->
      Printf.printf "reproduced: %s\n"
        (Format.asprintf "%a" Fuzz.Harness.pp_failure f);
      0
  | Error f ->
      Printf.printf "different failure (recorded %s): %s\n"
        artifact.Fuzz.Artifact.check
        (Format.asprintf "%a" Fuzz.Harness.pp_failure f);
      2
  | Ok () ->
      Printf.printf "did not reproduce: trace runs clean\n";
      2

let run replay_file seeds events machines slots inject_eps force_incremental mode
    artifact_dir =
  match replay_file with
  | Some path -> replay path
  | None ->
      fuzz seeds events machines slots inject_eps force_incremental mode artifact_dir

let cmd =
  let replay_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a repro artifact instead of fuzzing. Exits 0 if the \
                recorded failure reproduces, 2 if not.")
  in
  let seeds =
    Arg.(
      value
      & opt seeds_conv (parse_seeds "0..19")
      & info [ "seeds" ] ~docv:"SPEC"
          ~doc:"Seeds to fuzz: $(b,N), $(b,A..B) (inclusive) or \
                $(b,a,b,c).")
  in
  let events =
    Arg.(
      value & opt int 60
      & info [ "events" ] ~docv:"N" ~doc:"Churn-trace length per seed.")
  in
  let machines =
    Arg.(
      value & opt int 6
      & info [ "machines" ] ~docv:"N" ~doc:"Cluster size (2 machines per rack).")
  in
  let slots =
    Arg.(
      value & opt int 2
      & info [ "slots" ] ~docv:"N" ~doc:"Task slots per machine.")
  in
  let inject_eps =
    Arg.(
      value & opt int 1
      & info [ "inject-eps" ] ~docv:"EPS"
          ~doc:"Fault injection: floor the cost-scaling \xCE\xB5 ladder at \
                $(docv) so the solver stops early while still claiming \
                optimality. The harness must catch this ($(b,1) = off; used \
                to validate the harness itself).")
  in
  let force_incremental =
    Arg.(
      value & flag
      & info [ "force-incremental" ]
          ~doc:"Lift the scheduler's incremental-repair budget so every \
                round with a certified previous solution takes the \
                O(changes) repair path; the oracle and validators then \
                gate the repair kernel instead of the full race.")
  in
  let mode =
    Arg.(
      value & opt mode_conv None
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Restrict to one race mode ($(b,race), $(b,fastest), \
                $(b,relaxation), $(b,incremental-cs), $(b,quincy-cs)) or \
                $(b,all).")
  in
  let artifact_dir =
    Arg.(
      value & opt string "fuzz-artifacts"
      & info [ "artifact-dir" ] ~docv:"DIR"
          ~doc:"Directory for shrunk repro artifacts.")
  in
  let doc = "differential churn fuzzing of the Firmament scheduler" in
  Cmd.v
    (Cmd.info "firmament_fuzz" ~doc)
    Term.(
      const run $ replay_file $ seeds $ events $ machines $ slots $ inject_eps
      $ force_incremental $ mode $ artifact_dir)

let () = exit (Cmd.eval' cmd)
