(* mcmf_solve: command-line min-cost max-flow solver over DIMACS files.

   Reads a DIMACS `min` instance, solves it with the chosen algorithm
   (default: Firmament's race of relaxation vs incremental cost scaling),
   and writes the DIMACS solution lines to stdout.

     dune exec bin/mcmf_solve.exe -- instance.min -a relaxation *)

open Cmdliner

type algorithm = Race | Relaxation | Cost_scaling | Ssp | Cycle_canceling

let algorithm_conv =
  Arg.enum
    [
      ("race", Race);
      ("relaxation", Relaxation);
      ("cost-scaling", Cost_scaling);
      ("ssp", Ssp);
      ("cycle-canceling", Cycle_canceling);
    ]

let solve path algorithm alpha deadline quiet =
  let g, _nodes =
    match path with
    | Some p -> Flowgraph.Dimacs.load p
    | None ->
        let rec read acc =
          match input_line stdin with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        Flowgraph.Dimacs.parse (read [])
  in
  let stop =
    match deadline with
    | Some d -> Mcmf.Solver_intf.deadline_stop d
    | None -> Mcmf.Solver_intf.never_stop
  in
  let stats, solved =
    match algorithm with
    | Relaxation -> (Mcmf.Relaxation.solve ~stop g, g)
    | Cost_scaling -> (Mcmf.Cost_scaling.solve ~stop (Mcmf.Cost_scaling.create ~alpha ()) g, g)
    | Ssp -> (Mcmf.Ssp.solve ~stop g, g)
    | Cycle_canceling -> (Mcmf.Cycle_canceling.solve ~stop g, g)
    | Race ->
        let race = Mcmf.Race.create ~alpha ~mode:Mcmf.Race.Race_parallel () in
        let r = Mcmf.Race.solve ~stop race g in
        (r.Mcmf.Race.stats, r.Mcmf.Race.graph)
  in
  (match stats.Mcmf.Solver_intf.outcome with
  | Mcmf.Solver_intf.Optimal ->
      if not quiet then
        Printf.eprintf "c optimal in %.6f s (%d iterations, %d pushes)\n"
          stats.Mcmf.Solver_intf.runtime stats.Mcmf.Solver_intf.iterations
          stats.Mcmf.Solver_intf.pushes;
      print_string (Flowgraph.Dimacs.emit_solution solved);
      `Ok ()
  | Mcmf.Solver_intf.Infeasible ->
      prerr_endline "c infeasible";
      `Error (false, "instance is infeasible")
  | Mcmf.Solver_intf.Stopped ->
      prerr_endline "c stopped at deadline (solution incomplete)";
      `Error (false, "deadline reached"))

let cmd =
  let path =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"DIMACS min-cost flow instance (stdin if omitted).")
  in
  let algorithm =
    Arg.(
      value & opt algorithm_conv Race
      & info [ "a"; "algorithm" ] ~docv:"ALG"
          ~doc:"Algorithm: $(b,race), $(b,relaxation), $(b,cost-scaling), $(b,ssp) or \
                $(b,cycle-canceling).")
  in
  let alpha =
    Arg.(value & opt int 9 & info [ "alpha" ] ~docv:"N" ~doc:"Cost scaling's ε division factor.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Give up after this much wall-clock time.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the stats comment.") in
  let doc = "solve DIMACS min-cost max-flow instances with Firmament's solvers" in
  Cmd.v
    (Cmd.info "mcmf_solve" ~doc)
    Term.(ret (const solve $ path $ algorithm $ alpha $ deadline $ quiet))

let () = exit (Cmd.eval cmd)
