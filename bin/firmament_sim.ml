(* firmament_sim: replay a synthetic Google-like cluster trace against the
   Firmament scheduler and report scheduling metrics.

     dune exec bin/firmament_sim.exe -- --machines 500 --util 0.9 \
       --policy quincy --mode race --horizon 60 *)

open Cmdliner

type policy = Quincy | Load_spread | Network_aware

let policy_conv =
  Arg.enum [ ("quincy", Quincy); ("load-spread", Load_spread); ("network-aware", Network_aware) ]

let mode_conv =
  Arg.enum
    Mcmf.Race.
      [
        ("race", Race_parallel);
        ("fastest", Fastest_sequential);
        ("relaxation", Relaxation_only);
        ("incremental-cs", Incremental_cost_scaling_only);
        ("quincy-cs", Cost_scaling_scratch_only);
      ]

(* Exporter plumbing for --metrics-out / --metrics-json / --metrics-summary:
   dump the global telemetry registry after the replay. *)
let with_out path f =
  match path with
  | "-" ->
      f Format.std_formatter;
      Format.pp_print_flush Format.std_formatter ()
  | _ ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let ppf = Format.formatter_of_out_channel oc in
          f ppf;
          Format.pp_print_flush ppf ())

let export_metrics metrics_out metrics_json metrics_summary =
  let reg = Telemetry.Metrics.global () in
  Option.iter (fun p -> with_out p (fun ppf -> Telemetry.Export.prometheus ppf reg)) metrics_out;
  Option.iter (fun p -> with_out p (fun ppf -> Telemetry.Export.json_lines ppf reg)) metrics_json;
  if metrics_summary then begin
    Printf.printf "\ntelemetry:\n%!";
    Format.printf "%a@."
      (Telemetry.Export.pp_summary ~pp_duration:Dcsim.Stats.pp_duration)
      reg
  end

let run machines util horizon speedup seed policy mode max_rounds deadline
    incremental_budget pipelined metrics_out metrics_json metrics_summary =
  let trace =
    Cluster.Trace.generate
      {
        (Cluster.Trace.default_params ~machines ()) with
        target_utilization = util;
        horizon_s = horizon;
        speedup;
        seed;
      }
  in
  let policy_factory ~drain net st =
    match policy with
    | Quincy -> Firmament.Policy_quincy.make ~drain net st
    | Load_spread -> Firmament.Policy_load_spread.make ~drain net st
    | Network_aware -> Firmament.Policy_network_aware.make ~drain net st
  in
  let config =
    {
      Dcsim.Replay.default_config with
      scheduler =
        {
          Firmament.Scheduler.default_config with
          mode;
          deadline;
          incremental_budget =
            (match incremental_budget with
            | Some b -> b
            | None -> Firmament.Scheduler.default_config.incremental_budget);
        };
      policy = policy_factory;
      pipelined;
      max_rounds = Some max_rounds;
    }
  in
  Printf.printf
    "replaying: %d machines, %.0f%% target utilization, %.0fs horizon, %gx speedup%s\n%!"
    machines (util *. 100.) horizon speedup
    (if pipelined then ", pipelined rounds" else "");
  let m = Dcsim.Replay.run config trace in
  let open Dcsim.Replay in
  Printf.printf "rounds                 %d\n" m.rounds;
  Printf.printf "degraded rounds        %d (partial %d, infeasible-retry %d, failed %d)\n"
    m.degraded_rounds m.partial_rounds m.infeasible_retries m.failed_rounds;
  Printf.printf "tasks placed           %d\n" m.tasks_placed;
  Printf.printf "preemptions            %d\n" m.preemptions;
  Printf.printf "migrations             %d\n" m.migrations;
  if pipelined then begin
    Printf.printf "events mid-solve       %d\n" m.events_absorbed_mid_solve;
    Printf.printf "stale discards         %d\n" m.stale_placements
  end;
  Printf.printf "simulated end          %.2f s\n" m.sim_end;
  if m.structure_violations > 0 then
    Printf.printf "WARNING: %d flow-network invariant violations at end of replay\n"
      m.structure_violations;
  let series name xs =
    match xs with
    | [] -> Printf.printf "%-22s (none)\n" name
    | _ ->
        Printf.printf "%-22s p50 %-10s p90 %-10s p99 %-10s max %-10s\n" name
          (Setup_shared.pp_secs (Dcsim.Stats.percentile xs 50.))
          (Setup_shared.pp_secs (Dcsim.Stats.percentile xs 90.))
          (Setup_shared.pp_secs (Dcsim.Stats.percentile xs 99.))
          (Setup_shared.pp_secs (Dcsim.Stats.maximum xs))
  in
  series "algorithm runtime" m.algorithm_runtimes;
  series "placement latency" m.placement_latencies;
  series "task response time" m.response_times;
  export_metrics metrics_out metrics_json metrics_summary

let cmd =
  let machines =
    Arg.(value & opt int 250 & info [ "machines" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let util =
    Arg.(
      value & opt float 0.8
      & info [ "util" ] ~docv:"FRACTION" ~doc:"Target steady-state slot utilization.")
  in
  let horizon =
    Arg.(value & opt float 60. & info [ "horizon" ] ~docv:"SECONDS" ~doc:"Arrival-stream length.")
  in
  let speedup =
    Arg.(
      value & opt float 1.
      & info [ "speedup" ] ~docv:"X" ~doc:"Trace acceleration factor (paper Fig. 18).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.") in
  let policy =
    Arg.(
      value & opt policy_conv Quincy
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Scheduling policy: $(b,quincy), $(b,load-spread) or $(b,network-aware).")
  in
  let mode =
    Arg.(
      value
      & opt mode_conv Mcmf.Race.Fastest_sequential
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Solver orchestration: $(b,race), $(b,fastest), $(b,relaxation), \
             $(b,incremental-cs) or $(b,quincy-cs).")
  in
  let max_rounds =
    Arg.(value & opt int 500 & info [ "max-rounds" ] ~docv:"N" ~doc:"Scheduling-round budget.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-round wall-clock deadline. A round that exceeds it degrades to \
             best-effort partial placement instead of running long.")
  in
  let incremental_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "incremental-budget" ] ~docv:"N"
          ~doc:
            "Work budget (relabel operations) for the O(changes) incremental repair \
             path before falling back to a full solve. Default: the scheduler's \
             built-in budget.")
  in
  let pipelined =
    Arg.(
      value & flag
      & info [ "pipelined" ]
          ~doc:
            "Overlap solver execution with event ingestion: each round dispatches \
             the solve, applies the trace events that fall inside the measured \
             solver window while the solve runs, and commits with stale-aware \
             reconciliation (discards are reported).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write end-of-run telemetry (round phases, solver race margins, \
             \xCE\xB5-phase work, graph-change batches) in Prometheus text exposition \
             format to $(docv) ($(b,-) for stdout).")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write end-of-run telemetry as JSON lines to $(docv) ($(b,-) for stdout).")
  in
  let metrics_summary =
    Arg.(
      value & flag
      & info [ "metrics-summary" ]
          ~doc:"Print a human-readable telemetry summary after the replay report.")
  in
  let doc = "replay a synthetic cluster trace against the Firmament scheduler" in
  Cmd.v
    (Cmd.info "firmament_sim" ~doc)
    Term.(
      const run $ machines $ util $ horizon $ speedup $ seed $ policy $ mode $ max_rounds
      $ deadline $ incremental_budget $ pipelined $ metrics_out $ metrics_json
      $ metrics_summary)

let () = exit (Cmd.eval cmd)
